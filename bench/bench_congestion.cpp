// Experiment E10 — Section 5's congestion discussion (ablation).
//
// Sparsifying the cube funnels broadcast traffic over fewer edges.  This
// harness quantifies that: total edge hops, distinct edges touched, max
// per-edge load across the schedule, the per-round load (must be 1 —
// the schedules are feasible in the unit-capacity model), and collisions
// against random competing unicast flows.  The dilated-network variant
// (edge capacity c) is exercised via the validator.
#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_congestion_table() {
  std::cout << "\n=== E10: Section 5 — edge congestion of Broadcast_k vs Q_n binomial ===\n";
  TextTable t({"graph", "k", "edges", "hops", "edges used", "mean load",
               "max load", "per-round"});
  const int n = 12;
  {
    const auto schedule = hypercube_binomial_broadcast(n, 0);
    const auto s = analyze_congestion(schedule);
    const Graph q = make_hypercube(n);
    char mean[32];
    std::snprintf(mean, sizeof(mean), "%.2f", s.mean_edge_load);
    t.add_row({"Q_12", "1", std::to_string(q.num_edges()),
               std::to_string(s.total_edge_hops), std::to_string(s.distinct_edges_used),
               mean, std::to_string(s.max_edge_load_total),
               std::to_string(s.max_edge_load_per_round)});
  }
  for (int k : {2, 3, 4}) {
    const auto spec = design_sparse_hypercube(n, k);
    const auto schedule = make_broadcast_schedule(spec, 0);
    const auto s = analyze_congestion(schedule);
    char mean[32];
    std::snprintf(mean, sizeof(mean), "%.2f", s.mean_edge_load);
    t.add_row({"G(12,k=" + std::to_string(k) + ")", std::to_string(k),
               std::to_string(spec.num_edges()), std::to_string(s.total_edge_hops),
               std::to_string(s.distinct_edges_used), mean,
               std::to_string(s.max_edge_load_total),
               std::to_string(s.max_edge_load_per_round)});
  }
  t.print(std::cout);
  std::cout << "Expected shape: larger k -> fewer edges and more hops funneled over\n"
               "them (higher mean/max load), while per-round load stays 1 (the\n"
               "paper's model is respected).\n";
}

void print_competing_traffic() {
  std::cout << "\n--- Competing unicast flows: collisions per round (100 flows) ---\n";
  TextTable t({"graph", "round 1", "mid round", "last round", "total"});
  std::mt19937_64 rng(2026);
  const int n = 12;
  for (int k : {2, 3, 4}) {
    const auto spec = design_sparse_hypercube(n, k);
    const auto schedule = make_broadcast_schedule(spec, 0);
    const auto hits = competing_traffic_collisions(schedule, n, k, 100, rng);
    std::size_t total = 0;
    for (std::size_t h : hits) total += h;
    t.add_row({"G(12,k=" + std::to_string(k) + ")", std::to_string(hits.front()),
               std::to_string(hits[hits.size() / 2]), std::to_string(hits.back()),
               std::to_string(total)});
  }
  t.print(std::cout);
  std::cout << "Expected shape: later rounds carry exponentially more calls, so\n"
               "collisions with background traffic concentrate there.\n";
}

void print_failure_injection() {
  std::cout << "\n--- Failure injection: drop rate vs informed coverage (n=10, k=3) ---\n";
  TextTable t({"drop rate", "calls kept", "informed", "complete"});
  const auto spec = design_sparse_hypercube(10, 3);
  const SparseHypercubeView view(spec);
  const auto schedule = make_broadcast_schedule(spec, 0);
  std::mt19937_64 rng(7);
  for (double rate : {0.0, 0.01, 0.05, 0.1, 0.25}) {
    const auto degraded = drop_calls(schedule, rate, rng);
    ValidationOptions opt;
    opt.k = 3;
    opt.require_completion = false;
    opt.forbid_redundant_receivers = false;
    const auto rep = validate_broadcast(view, degraded, opt);
    char rs[16];
    std::snprintf(rs, sizeof(rs), "%.2f", rate);
    t.add_row({rs, std::to_string(degraded.num_calls()),
               std::to_string(rep.informed) + "/" + std::to_string(spec.num_vertices()),
               rep.informed == spec.num_vertices() ? "yes" : "no"});
  }
  t.print(std::cout);
  std::cout << "Expected shape: early-round drops cascade — losing a few percent of\n"
               "calls loses a large informed fraction (doubling trees are fragile).\n\n";
}

void BM_CongestionAnalysis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 3);
  const auto schedule = make_broadcast_schedule(spec, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_congestion(schedule));
  }
}
BENCHMARK(BM_CongestionAnalysis)->DenseRange(8, 16, 2);

void BM_DropCalls(benchmark::State& state) {
  const auto spec = design_sparse_hypercube(12, 3);
  const auto schedule = make_broadcast_schedule(spec, 0);
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drop_calls(schedule, 0.05, rng));
  }
}
BENCHMARK(BM_DropCalls);

}  // namespace

int main(int argc, char** argv) {
  print_congestion_table();
  print_competing_traffic();
  print_failure_injection();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
