#!/usr/bin/env python3
"""Bench-regression gate: compare freshly recorded bench artifacts
against the committed perf-trajectory baselines.

The repo commits its measured trajectory (BENCH_schedule.json from
bench_schedule, BENCH_sweep.jsonl from shc_sweep).  CI re-records both
on every push and this script fails the job when the trajectory would
silently degrade:

  * a *gated* row is missing from the fresh recording;
  * a gated row's exact counters (calls / rounds / groups / exchanges /
    minimum_time...) drift at all — those are deterministic facts about
    the certified schedules, so any drift is a correctness change that
    must be accompanied by a baseline update in the same commit;
  * a gated row's wall time regresses more than the tolerance (default
    25 %) relative to the committed baseline.  Rows faster than the
    noise floor (0.5 s) are exempt from the timing check (their
    counters are still gated); improvements always pass.

Beyond the per-row checks, two machine-independent gates:

  * the BM_SymbolicCertifyThreads/{1,2,4,8} rows must report identical
    group/frontier/claim counters — the engine's reports are bit-for-bit
    thread-invariant, so any divergence is a determinism bug, not noise.
    Their wall times are never gated (they measure the host's cores);
  * the designed-63 / SymbolicCertify-48 *time ratio* must not regress
    beyond its committed ratio.  Both rows slow down together on a slower
    runner, so the ratio stays binding even when SHC_BENCH_TOLERANCE is
    widened for absolute times (CI runs with 1.5);
  * the ServeEngine rows (BM_ServeThroughput/64, mixed-load /47) gate
    the cache/admission accounting exactly (queries, hits, refusals);
    their wall times are thread-scheduler-dependent and stay ungated,
    with the mixed row bound to BM_SymbolicCertifyThreads/1 by ratio.

Overrides for noisy runners (documented in README.md):

  SHC_BENCH_TOLERANCE=0.60        widen the allowed real-time regression
  SHC_BENCH_RATIO_TOLERANCE=0.75  widen the ratio gate (default 0.5)
  SHC_BENCH_SKIP=1                skip the gate entirely (counters included)

Both are also available as --tolerance / --skip.  Only the Python
standard library is used.

Usage:
  python3 bench/check_bench.py \
      [--fresh-schedule BENCH_schedule.fresh.json] \
      [--fresh-sweep BENCH_sweep.fresh.jsonl] \
      [--baseline-schedule BENCH_schedule.json] \
      [--baseline-sweep BENCH_sweep.jsonl] \
      [--tolerance 0.25] [--skip]
"""

import argparse
import json
import os
import sys

# Gated bench_schedule rows (benchmark name prefix -> exact counters).
# BM_StreamingCertify/30 is deliberately ungated: it needs a ~26 GB
# big-memory box and CI skips recording it.
GATED_SCHEDULE = {
    "BM_StreamingCertify/20": ["calls", "minimum_time"],
    "BM_StreamingCertify/24": ["calls", "minimum_time"],
    "BM_SymbolicCertify/40": ["calls", "groups", "minimum_time",
                              "rounds_checked"],
    "BM_SymbolicCertify/48": ["calls", "groups", "minimum_time",
                              "rounds_checked"],
    "BM_SymbolicCertify/63": ["calls", "groups", "minimum_time",
                              "rounds_checked"],
    "BM_SymbolicCertifyDesigned/63": ["calls", "groups", "minimum_time",
                                      "rounds_checked"],
    "BM_SymbolicGossip/26": ["exchanges", "groups", "rounds_checked",
                             "union_cache_hits", "union_cache_misses"],
    "BM_SymbolicGossip/33": ["exchanges", "groups", "rounds_checked",
                             "union_cache_hits", "union_cache_misses"],
    "BM_SymbolicGossip/40": ["exchanges", "groups", "rounds_checked",
                             "union_cache_hits", "union_cache_misses"],
    "BM_SymbolicCertifyThreads/1": ["groups", "peak_frontier_subcubes",
                                    "occupancy_claims", "rounds_checked",
                                    "minimum_time"],
    "BM_SymbolicCertifyThreads/2": ["groups", "peak_frontier_subcubes",
                                    "occupancy_claims", "rounds_checked",
                                    "minimum_time"],
    "BM_SymbolicCertifyThreads/4": ["groups", "peak_frontier_subcubes",
                                    "occupancy_claims", "rounds_checked",
                                    "minimum_time"],
    "BM_SymbolicCertifyThreads/8": ["groups", "peak_frontier_subcubes",
                                    "occupancy_claims", "rounds_checked",
                                    "minimum_time"],
    # The ServeEngine rows: cache accounting is deterministic (one cold
    # run per distinct key, everything else hits), so the counts are
    # exact facts; p95_ms / qps are measurements, never gated here.
    "BM_ServeThroughput/64": ["queries", "ok", "cache_hits", "distinct_keys"],
    "BM_ServeThroughputMixed/47": ["small_queries", "heavy_ok", "refused"],
}

# Rows whose wall time is a function of the host's core count (or, for
# the serve rows, of thread-scheduler timing under 64 concurrent
# clients): counters stay gated, the absolute time never is.  The
# mixed-load serve row is covered machine-independently by a ratio gate
# against the designed-47 single-thread row instead.
TIME_UNGATED = {f"BM_SymbolicCertifyThreads/{t}" for t in (1, 2, 4, 8)} | {
    "BM_ServeThroughput/64",
    "BM_ServeThroughputMixed/47",
}

# Thread-count invariance: these fresh rows must agree on these counters
# with each other (not merely with the baseline) — the symbolic reports
# are bit-for-bit identical at every thread count by contract.
THREAD_INVARIANT_ROWS = [f"BM_SymbolicCertifyThreads/{t}" for t in (1, 2, 4, 8)]
# Deliberately absent: reduce_tree_tasks — how many subtrees were farmed
# to the pool is a function of the thread count by design; it is
# telemetry, never part of the determinism contract.
THREAD_INVARIANT_COUNTERS = ["groups", "peak_frontier_subcubes",
                             "occupancy_claims", "rounds_checked"]

# Machine-independent time gates: (numerator row, denominator row).  The
# committed ratio is a property of the engine, not the runner, so this
# stays binding under a widened absolute tolerance.
RATIO_GATES = [
    ("BM_SymbolicCertifyDesigned/63", "BM_SymbolicCertify/48"),
    # Mixed serve load vs the same designed-47 certification run bare:
    # the ratio is the service overhead (admission, cache, 64 small
    # tenants), which must not balloon even on a slower runner.
    ("BM_ServeThroughputMixed/47", "BM_SymbolicCertifyThreads/1"),
]

# Gated shc_sweep rows: identity -> exact counters.  Grid rows are keyed
# (engine, n, k, model); every committed row of these engines is gated.
SWEEP_COUNTERS = {
    "streaming": ["rounds", "calls", "minimum_time", "ok"],
    "symbolic": ["rounds", "calls", "groups", "minimum_time", "ok",
                 "rounds_checked", "union_cache_hits", "union_cache_misses"],
    "symbolic-gossip": ["rounds", "exchanges", "groups", "complete", "ok",
                        "rounds_checked", "union_cache_hits",
                        "union_cache_misses"],
}

NOISE_FLOOR_SECONDS = 0.5


def sweep_identity(row):
    return (row.get("engine", "streaming"), row.get("n"), row.get("k"),
            row.get("model", ""))


def load_schedule(path):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        # Strip google-benchmark decorations: ".../iterations:1" etc.
        base = name.split("/iterations:")[0]
        rows[base] = bench
    return rows


def load_sweep(path):
    rows = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            rows[sweep_identity(row)] = row
    return rows


def check_counters(what, gate_keys, fresh, baseline, failures):
    for key in gate_keys:
        if key not in baseline:
            continue  # baseline predates the counter; nothing to gate
        if key not in fresh:
            failures.append(f"{what}: counter '{key}' missing from the "
                            "fresh recording")
            continue
        fv, bv = fresh[key], baseline[key]
        if fv != bv:
            failures.append(
                f"{what}: counter '{key}' drifted (baseline {bv!r}, "
                f"fresh {fv!r}) — a deterministic fact changed; update the "
                "committed baseline in the same commit if intentional")


def check_time(what, fresh_secs, base_secs, tolerance, failures):
    if base_secs is None or fresh_secs is None:
        return
    if base_secs < NOISE_FLOOR_SECONDS:
        return
    if fresh_secs > base_secs * (1.0 + tolerance):
        failures.append(
            f"{what}: real time regressed {fresh_secs:.2f}s vs baseline "
            f"{base_secs:.2f}s (> {tolerance:.0%} tolerance; raise "
            "SHC_BENCH_TOLERANCE for a known-noisy runner, or fix the "
            "regression)")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh-schedule", default="BENCH_schedule.fresh.json")
    ap.add_argument("--fresh-sweep", default="BENCH_sweep.fresh.jsonl")
    ap.add_argument("--baseline-schedule", default="BENCH_schedule.json")
    ap.add_argument("--baseline-sweep", default="BENCH_sweep.jsonl")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("SHC_BENCH_TOLERANCE", "0.25")))
    ap.add_argument("--ratio-tolerance", type=float,
                    default=float(os.environ.get("SHC_BENCH_RATIO_TOLERANCE",
                                                 "0.5")))
    ap.add_argument("--skip", action="store_true",
                    default=os.environ.get("SHC_BENCH_SKIP", "") == "1")
    args = ap.parse_args(argv)

    if args.skip:
        print("check_bench: SKIPPED (SHC_BENCH_SKIP/--skip set)")
        return 0

    failures = []

    try:
        fresh_sched = load_schedule(args.fresh_schedule)
        base_sched = load_schedule(args.baseline_schedule)
    except OSError as e:
        print(f"check_bench: cannot read schedule artifact: {e}",
              file=sys.stderr)
        return 2

    for name, counters in GATED_SCHEDULE.items():
        base = base_sched.get(name)
        if base is None:
            continue  # the baseline does not carry this row yet
        fresh = fresh_sched.get(name)
        if fresh is None:
            failures.append(f"schedule row '{name}': gated row missing from "
                            "the fresh recording")
            continue
        check_counters(f"schedule row '{name}'", counters, fresh, base,
                       failures)
        if name not in TIME_UNGATED:
            check_time(f"schedule row '{name}'", fresh.get("real_time"),
                       base.get("real_time"), args.tolerance, failures)

    # Thread-count invariance across the fresh scaling rows.
    present = [(n, fresh_sched[n]) for n in THREAD_INVARIANT_ROWS
               if n in fresh_sched]
    if len(present) >= 2:
        ref_name, ref = present[0]
        for name, row in present[1:]:
            for key in THREAD_INVARIANT_COUNTERS:
                if key in ref and key in row and row[key] != ref[key]:
                    failures.append(
                        f"thread invariance: '{name}' counter '{key}' "
                        f"({row[key]!r}) differs from '{ref_name}' "
                        f"({ref[key]!r}) — symbolic reports must be "
                        "bit-for-bit identical at every thread count")

    # Machine-independent ratio gates.
    for num_name, den_name in RATIO_GATES:
        rows = [base_sched.get(num_name), base_sched.get(den_name),
                fresh_sched.get(num_name), fresh_sched.get(den_name)]
        if any(r is None for r in rows):
            continue  # absolute gates already flag missing rows
        times = [r.get("real_time") for r in rows]
        if any(t is None for t in times):
            continue
        bn, bd, fn, fd = times
        if bd < NOISE_FLOOR_SECONDS or fd < NOISE_FLOOR_SECONDS:
            continue
        base_ratio, fresh_ratio = bn / bd, fn / fd
        if fresh_ratio > base_ratio * (1.0 + args.ratio_tolerance):
            failures.append(
                f"ratio gate '{num_name}' / '{den_name}': {fresh_ratio:.2f} "
                f"vs committed {base_ratio:.2f} (> {args.ratio_tolerance:.0%} "
                "tolerance) — this gate is machine-independent; the "
                "numerator's engine got relatively slower")

    try:
        fresh_sweep = load_sweep(args.fresh_sweep)
        base_sweep = load_sweep(args.baseline_sweep)
    except OSError as e:
        print(f"check_bench: cannot read sweep artifact: {e}", file=sys.stderr)
        return 2

    for identity, base in sorted(base_sweep.items(), key=str):
        engine = identity[0]
        counters = SWEEP_COUNTERS.get(engine)
        if counters is None:
            continue
        what = (f"sweep row engine={engine} n={identity[1]} k={identity[2]}"
                + (f" model={identity[3]}" if identity[3] else ""))
        fresh = fresh_sweep.get(identity)
        if fresh is None:
            failures.append(f"{what}: gated row missing from the fresh sweep")
            continue
        check_counters(what, counters, fresh, base, failures)
        check_time(what, fresh.get("seconds"), base.get("seconds"),
                   args.tolerance, failures)

    if failures:
        print(f"check_bench: {len(failures)} failure(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    gated = len([n for n in GATED_SCHEDULE if n in base_sched]) + len(
        [i for i in base_sweep if i[0] in SWEEP_COUNTERS])
    print(f"check_bench: OK ({gated} gated rows, tolerance "
          f"{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
