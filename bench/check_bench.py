#!/usr/bin/env python3
"""Bench-regression gate: compare freshly recorded bench artifacts
against the committed perf-trajectory baselines.

The repo commits its measured trajectory (BENCH_schedule.json from
bench_schedule, BENCH_sweep.jsonl from shc_sweep).  CI re-records both
on every push and this script fails the job when the trajectory would
silently degrade:

  * a *gated* row is missing from the fresh recording;
  * a gated row's exact counters (calls / rounds / groups / exchanges /
    minimum_time...) drift at all — those are deterministic facts about
    the certified schedules, so any drift is a correctness change that
    must be accompanied by a baseline update in the same commit;
  * a gated row's wall time regresses more than the tolerance (default
    25 %) relative to the committed baseline.  Rows faster than the
    noise floor (0.5 s) are exempt from the timing check (their
    counters are still gated); improvements always pass.

Overrides for noisy runners (documented in README.md):

  SHC_BENCH_TOLERANCE=0.60   widen the allowed real-time regression
  SHC_BENCH_SKIP=1           skip the gate entirely (counters included)

Both are also available as --tolerance / --skip.  Only the Python
standard library is used.

Usage:
  python3 bench/check_bench.py \
      [--fresh-schedule BENCH_schedule.fresh.json] \
      [--fresh-sweep BENCH_sweep.fresh.jsonl] \
      [--baseline-schedule BENCH_schedule.json] \
      [--baseline-sweep BENCH_sweep.jsonl] \
      [--tolerance 0.25] [--skip]
"""

import argparse
import json
import os
import sys

# Gated bench_schedule rows (benchmark name prefix -> exact counters).
# BM_StreamingCertify/30 is deliberately ungated: it needs a ~26 GB
# big-memory box and CI skips recording it.
GATED_SCHEDULE = {
    "BM_StreamingCertify/20": ["calls", "minimum_time"],
    "BM_StreamingCertify/24": ["calls", "minimum_time"],
    "BM_SymbolicCertify/40": ["calls", "groups", "minimum_time"],
    "BM_SymbolicCertify/48": ["calls", "groups", "minimum_time"],
    "BM_SymbolicCertify/63": ["calls", "groups", "minimum_time"],
    "BM_SymbolicCertifyDesigned/63": ["calls", "groups", "minimum_time"],
    "BM_SymbolicGossip/26": ["exchanges", "groups"],
    "BM_SymbolicGossip/33": ["exchanges", "groups"],
    "BM_SymbolicGossip/40": ["exchanges", "groups"],
}

# Gated shc_sweep rows: identity -> exact counters.  Grid rows are keyed
# (engine, n, k, model); every committed row of these engines is gated.
SWEEP_COUNTERS = {
    "streaming": ["rounds", "calls", "minimum_time", "ok"],
    "symbolic": ["rounds", "calls", "groups", "minimum_time", "ok"],
    "symbolic-gossip": ["rounds", "exchanges", "groups", "complete", "ok"],
}

NOISE_FLOOR_SECONDS = 0.5


def sweep_identity(row):
    return (row.get("engine", "streaming"), row.get("n"), row.get("k"),
            row.get("model", ""))


def load_schedule(path):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        # Strip google-benchmark decorations: ".../iterations:1" etc.
        base = name.split("/iterations:")[0]
        rows[base] = bench
    return rows


def load_sweep(path):
    rows = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            rows[sweep_identity(row)] = row
    return rows


def check_counters(what, gate_keys, fresh, baseline, failures):
    for key in gate_keys:
        if key not in baseline:
            continue  # baseline predates the counter; nothing to gate
        if key not in fresh:
            failures.append(f"{what}: counter '{key}' missing from the "
                            "fresh recording")
            continue
        fv, bv = fresh[key], baseline[key]
        if fv != bv:
            failures.append(
                f"{what}: counter '{key}' drifted (baseline {bv!r}, "
                f"fresh {fv!r}) — a deterministic fact changed; update the "
                "committed baseline in the same commit if intentional")


def check_time(what, fresh_secs, base_secs, tolerance, failures):
    if base_secs is None or fresh_secs is None:
        return
    if base_secs < NOISE_FLOOR_SECONDS:
        return
    if fresh_secs > base_secs * (1.0 + tolerance):
        failures.append(
            f"{what}: real time regressed {fresh_secs:.2f}s vs baseline "
            f"{base_secs:.2f}s (> {tolerance:.0%} tolerance; raise "
            "SHC_BENCH_TOLERANCE for a known-noisy runner, or fix the "
            "regression)")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh-schedule", default="BENCH_schedule.fresh.json")
    ap.add_argument("--fresh-sweep", default="BENCH_sweep.fresh.jsonl")
    ap.add_argument("--baseline-schedule", default="BENCH_schedule.json")
    ap.add_argument("--baseline-sweep", default="BENCH_sweep.jsonl")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("SHC_BENCH_TOLERANCE", "0.25")))
    ap.add_argument("--skip", action="store_true",
                    default=os.environ.get("SHC_BENCH_SKIP", "") == "1")
    args = ap.parse_args(argv)

    if args.skip:
        print("check_bench: SKIPPED (SHC_BENCH_SKIP/--skip set)")
        return 0

    failures = []

    try:
        fresh_sched = load_schedule(args.fresh_schedule)
        base_sched = load_schedule(args.baseline_schedule)
    except OSError as e:
        print(f"check_bench: cannot read schedule artifact: {e}",
              file=sys.stderr)
        return 2

    for name, counters in GATED_SCHEDULE.items():
        base = base_sched.get(name)
        if base is None:
            continue  # the baseline does not carry this row yet
        fresh = fresh_sched.get(name)
        if fresh is None:
            failures.append(f"schedule row '{name}': gated row missing from "
                            "the fresh recording")
            continue
        check_counters(f"schedule row '{name}'", counters, fresh, base,
                       failures)
        check_time(f"schedule row '{name}'", fresh.get("real_time"),
                   base.get("real_time"), args.tolerance, failures)

    try:
        fresh_sweep = load_sweep(args.fresh_sweep)
        base_sweep = load_sweep(args.baseline_sweep)
    except OSError as e:
        print(f"check_bench: cannot read sweep artifact: {e}", file=sys.stderr)
        return 2

    for identity, base in sorted(base_sweep.items(), key=str):
        engine = identity[0]
        counters = SWEEP_COUNTERS.get(engine)
        if counters is None:
            continue
        what = (f"sweep row engine={engine} n={identity[1]} k={identity[2]}"
                + (f" model={identity[3]}" if identity[3] else ""))
        fresh = fresh_sweep.get(identity)
        if fresh is None:
            failures.append(f"{what}: gated row missing from the fresh sweep")
            continue
        check_counters(what, counters, fresh, base, failures)
        check_time(what, fresh.get("seconds"), base.get("seconds"),
                   args.tolerance, failures)

    if failures:
        print(f"check_bench: {len(failures)} failure(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    gated = len([n for n in GATED_SCHEDULE if n in base_sched]) + len(
        [i for i in base_sweep if i[0] in SWEEP_COUNTERS])
    print(f"check_bench: OK ({gated} gated rows, tolerance "
          f"{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
