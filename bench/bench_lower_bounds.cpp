// Experiment E2 — Theorems 2 and 3 (degree lower bounds).
//
// Regenerates the lower-bound landscape: for each k, the smallest
// feasible maximum degree of a k-mlbg on 2^n vertices, in three
// flavors: the paper's closed forms (Theorem 2 for k = 2..4, Theorem 3
// for k >= 5), the exact counting bound, and the cycle exclusion
// (Theorem 3's Delta >= 3 argument: a cycle needs 2^(n-1) <= k*n, which
// fails for all n > k >= 5 — the paper's example is k = 5, n = 6).
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_bound_table() {
  std::cout << "\n=== E2: Theorems 2 & 3 — lower bounds on max degree ===\n";
  TextTable t({"n", "k=2 thm", "k=2 cnt", "k=3 thm", "k=3 cnt", "k=4 thm",
               "k=4 cnt", "k=5 thm", "k=5 cnt", "k=8 thm"});
  for (int n : {4, 8, 16, 24, 32, 48, 64}) {
    t.add_row({std::to_string(n),
               std::to_string(lower_bound_max_degree(n, 2)),
               std::to_string(counting_lower_bound(n, 2)),
               std::to_string(lower_bound_max_degree(n, 3)),
               std::to_string(counting_lower_bound(n, 3)),
               std::to_string(lower_bound_max_degree(n, 4)),
               std::to_string(counting_lower_bound(n, 4)),
               std::to_string(lower_bound_max_degree(n, 5)),
               std::to_string(counting_lower_bound(n, 5)),
               std::to_string(lower_bound_max_degree(n, 8))});
  }
  t.print(std::cout);
  std::cout << "Expected shape: bounds grow like ceil(n^(1/k)); the counting bound\n"
               "is never weaker than the theorem's closed form.\n";
}

void print_cycle_table() {
  std::cout << "\n--- Theorem 3's cycle exclusion: 2^(n-1) <= k*n needed for Delta=2 ---\n";
  TextTable t({"k", "n", "2^(n-1)", "k*n", "cycle feasible"});
  for (int k : {5, 6, 8}) {
    for (int n = k; n <= k + 3; ++n) {
      const std::uint64_t half = std::uint64_t{1} << (n - 1);
      const std::uint64_t kn = static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(n);
      t.add_row({std::to_string(k), std::to_string(n), std::to_string(half),
                 std::to_string(kn), half <= kn ? "maybe" : "no"});
    }
  }
  t.print(std::cout);
  std::cout << "Expected shape: the paper's k=5, n=6 case shows 32 > 30, so a cycle\n"
               "(Delta = 2) can never be a 5-mlbg on 64 vertices; Delta >= 3 follows.\n\n";
}

void BM_LowerBoundClosedForm(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int n = 2; n <= 63; ++n) {
      benchmark::DoNotOptimize(lower_bound_max_degree(n, k));
    }
  }
}
BENCHMARK(BM_LowerBoundClosedForm)->DenseRange(2, 8, 1);

void BM_CountingBound(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int n = 2; n <= 63; ++n) {
      benchmark::DoNotOptimize(counting_lower_bound(n, k));
    }
  }
}
BENCHMARK(BM_CountingBound)->DenseRange(2, 8, 1);

}  // namespace

int main(int argc, char** argv) {
  print_bound_table();
  print_cycle_table();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
