// Experiments E3 and E4 — Examples 2 and 3, Figures 2 and 3.
//
// Reconstructs the paper's worked constructions exactly:
//   * G_{4,2} (Example 2 / Figure 3): 16 vertices, Rule 1 gives the
//     16 dimension-1/2 edges (Figure 2), Rule 2 adds 4 dim-3 edges for
//     label c1 and 4 dim-4 edges for label c2 — 24 edges, 3-regular;
//   * G_{15,3} (Example 3): 2^15 vertices, 4 labels, degree 6 < 15/2.
// Also measures construction throughput at scale via the O(1) oracle.
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_g42() {
  std::cout << "\n=== E3: Example 2 / Figures 2-3 — G_{4,2} reconstruction ===\n";
  const auto g42 = SparseHypercubeSpec::construct_base(4, 2, example1_labeling_m2());
  const Graph g = g42.materialize();
  std::cout << "order " << g.num_vertices() << ", edges " << g.num_edges()
            << " (16 Rule-1 + 8 Rule-2), degree " << g.min_degree() << ".."
            << g.max_degree() << ", connected "
            << (is_connected(g) ? "yes" : "no") << "\n";
  std::cout << "Edge list (u -- v, dimension):\n";
  TextTable t({"u", "v", "dim", "rule"});
  for (const Edge& e : g.edges()) {
    const Dim d = differing_dim(e.a, e.b);
    t.add_row({to_bitstring(e.a, 4), to_bitstring(e.b, 4), std::to_string(d),
               d <= 2 ? "1" : "2"});
  }
  t.print(std::cout);
  std::cout << "Expected shape: all 16 dim-1/dim-2 edges (Figure 2); dim-3 edges\n"
               "exactly at suffix labels c1 (00/11); dim-4 at c2 (01/10) — Figure 3.\n";
}

void print_g153() {
  std::cout << "\n=== E4: Example 3 — G_{15,3} ===\n";
  const auto g = SparseHypercubeSpec::construct_base(15, 3, example1_labeling_m3());
  TextTable t({"quantity", "value", "paper"});
  t.add_row({"order", std::to_string(g.num_vertices()), "2^15"});
  t.add_row({"labels", std::to_string(g.levels()[0].labeling.num_labels()), "4"});
  t.add_row({"max degree", std::to_string(g.max_degree()), "6"});
  t.add_row({"min degree", std::to_string(g.min_degree()), "6"});
  t.add_row({"Delta(Q_15)", "15", "15"});
  t.add_row({"edges", std::to_string(g.num_edges()),
             std::to_string((cube_order(15) * 6) / 2)});
  t.print(std::cout);
  std::cout << "Expected shape: Delta(G_{15,3}) = 6, less than half of Delta(Q_15).\n\n";
}

void BM_ConstructBase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = theorem5_core(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SparseHypercubeSpec::construct_base(n, m));
  }
}
BENCHMARK(BM_ConstructBase)->DenseRange(8, 56, 8);

void BM_ConstructRecursive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(design_sparse_hypercube(n, 4));
  }
}
BENCHMARK(BM_ConstructRecursive)->DenseRange(8, 56, 8);

void BM_EdgeOracle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 3);
  Vertex u = 0x123456789ULL & mask_low(n);
  Dim i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.has_edge_dim(u, i));
    i = (i % n) + 1;
    u = (u * 2862933555777941757ULL + 3037000493ULL) & mask_low(n);
  }
}
BENCHMARK(BM_EdgeOracle)->Arg(16)->Arg(32)->Arg(48)->Arg(63);

void BM_Materialize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = SparseHypercubeSpec::construct_base(n, theorem5_core(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.materialize());
  }
  state.SetComplexityN(static_cast<std::int64_t>(cube_order(n)));
}
BENCHMARK(BM_Materialize)->DenseRange(8, 18, 2)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_g42();
  print_g153();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
