// Experiment E12 — Lemma 2 and the labeling machinery.
//
// Reports lambda_m (the number of Condition-A labels = the domatic
// number of Q_m) as achieved by the three constructions against the
// paper's bounds floor(m/2)+1 <= lambda_m <= m+1, with the exact value
// from branch-and-bound where feasible.  lambda drives the degree of
// every sparse hypercube, so this is the construction's engine room.
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_table() {
  std::cout << "\n=== E12: Lemma 2 — Condition-A label counts lambda_m ===\n";
  TextTable t({"m", "floor(m/2)+1", "lemma2", "exact", "m+1", "hamming?"});
  for (int m = 1; m <= 10; ++m) {
    std::string exact = "-";
    if (m <= 5) {
      const auto r = max_condition_a_labels(m);
      exact = std::to_string(r.lambda) + (r.proven_optimal ? "" : "?");
    }
    const bool hamming = ((m + 1) & m) == 0;  // m + 1 a power of two
    t.add_row({std::to_string(m), std::to_string(m / 2 + 1),
               std::to_string(lemma2_num_labels(m)), exact, std::to_string(m + 1),
               hamming ? "yes" : "no"});
  }
  t.print(std::cout);
  std::cout << "Expected shape: lemma2 = exact at m = 1,2,3,4,5; equality with m+1\n"
               "exactly when m = 2^p - 1 (Hamming); m = 2 shows the lower bound\n"
               "floor(m/2)+1 is tight (the paper's remark after Lemma 2).\n";

  std::cout << "\n--- Condition-A verification cost ---\n";
  TextTable v({"m", "labels", "classes sizes"});
  for (int m : {3, 7}) {
    const auto f = lemma2_labeling(m);
    std::string sizes;
    for (std::size_t s : f.class_sizes()) {
      // Piecewise append dodges GCC 12's bogus -Wrestrict on
      // operator+(const char*, string&&) under -Werror.
      if (!sizes.empty()) sizes += ',';
      sizes += std::to_string(s);
    }
    v.add_row({std::to_string(m), std::to_string(f.num_labels()), sizes});
  }
  v.print(std::cout);
  std::cout << "Expected shape: Hamming classes are perfectly even (cosets).\n\n";
}

void BM_Lemma2Labeling(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lemma2_labeling(m));
  }
}
BENCHMARK(BM_Lemma2Labeling)->DenseRange(2, 16, 2);

void BM_ConditionACheck(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto f = lemma2_labeling(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.satisfies_condition_a());
  }
}
BENCHMARK(BM_ConditionACheck)->DenseRange(2, 16, 2);

void BM_ExactDomaticSearch(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_condition_a_labels(m));
  }
}
BENCHMARK(BM_ExactDomaticSearch)->DenseRange(1, 5, 1);

void BM_HammingSyndrome(benchmark::State& state) {
  const HammingCode code(4);
  Vertex u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.syndrome(u));
    u = (u + 0x9E3779B9ULL) & mask_low(code.length());
  }
}
BENCHMARK(BM_HammingSyndrome);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
