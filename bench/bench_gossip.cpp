// Experiment E13 — Section 5's gossip direction.
//
// Measures the gossip-time gap the paper leaves open: the full cube
// gossips in the optimal n rounds (dimension exchange, k = 1); on the
// degree-reduced sparse hypercube, the provable gather+broadcast scheme
// needs 2n rounds.  Whether o(n)-degree k-line graphs can gossip in n
// rounds is the open problem; the table quantifies the price currently
// paid for sparsity.
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_table() {
  std::cout << "\n=== E13: gossip under the k-line model (Section 5 open problem) ===\n";
  TextTable t({"network", "k", "max degree", "rounds", "lower bound", "optimal"});
  for (int n : {6, 8, 10, 12}) {
    {
      const HypercubeView qn(n);
      const auto schedule = hypercube_exchange_gossip(n);
      const auto rep = validate_gossip(qn, schedule, 1);
      t.add_row({"Q_" + std::to_string(n), "1", std::to_string(n),
                 std::to_string(rep.rounds), std::to_string(n),
                 rep.minimum_time ? "yes" : "no"});
    }
    for (int k : {2, 3}) {
      const auto spec = design_sparse_hypercube(n, k);
      const SparseHypercubeView view(spec);
      const auto schedule = sparse_gather_broadcast_gossip(spec, 0);
      const auto rep = validate_gossip(view, schedule, k);
      t.add_row({"G(" + std::to_string(n) + "," + std::to_string(k) + ")",
                 std::to_string(k), std::to_string(spec.max_degree()),
                 std::to_string(rep.rounds), std::to_string(n),
                 rep.minimum_time ? "yes" : "no"});
    }
  }
  t.print(std::cout);
  std::cout << "Expected shape: Q_n gossips optimally; the sparse graphs complete\n"
               "feasibly in 2n rounds (gather + broadcast) — a 2x gap that is the\n"
               "paper's open question, not a bug.\n\n";
}

void BM_HypercubeGossip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypercube_exchange_gossip(n));
  }
}
BENCHMARK(BM_HypercubeGossip)->DenseRange(6, 12, 2);

void BM_SparseGossipSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse_gather_broadcast_gossip(spec, 0));
  }
}
BENCHMARK(BM_SparseGossipSchedule)->DenseRange(6, 12, 2);

void BM_GossipValidation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 3);
  const SparseHypercubeView view(spec);
  const auto schedule = sparse_gather_broadcast_gossip(spec, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_gossip(view, schedule, 3));
  }
}
BENCHMARK(BM_GossipValidation)->DenseRange(6, 12, 2);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
