// Experiment E11 — sparse hypercubes vs the Q_n baseline (Sections 1-2).
//
// The paper's selling point in one table: for the same vertex count,
// what does raising k buy in maximum degree and edge count, and what
// does it cost in call length?  Includes the star (the minimum-edge
// 2-mlbg of Section 2) as the opposite extreme: fewest edges, maximum
// possible degree.
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_table() {
  std::cout << "\n=== E11: degree/edges/call-length trade-off at N = 2^12 ===\n";
  TextTable t({"network", "k", "max degree", "edges", "rounds", "max call"});
  const int n = 12;
  {
    const auto schedule = hypercube_binomial_broadcast(n, 0);
    t.add_row({"Q_12 (binomial)", "1", std::to_string(n),
               std::to_string(static_cast<std::uint64_t>(n) << (n - 1)),
               std::to_string(schedule.num_rounds()),
               std::to_string(schedule.max_call_length())});
  }
  for (int k = 2; k <= 6; ++k) {
    const auto spec = design_sparse_hypercube(n, k);
    const auto schedule = make_broadcast_schedule(spec, 0);
    const auto rep =
        validate_minimum_time_k_line(SparseHypercubeView{spec}, schedule, k);
    t.add_row({"sparse G(12," + std::to_string(k) + ")", std::to_string(k),
               std::to_string(spec.max_degree()), std::to_string(spec.num_edges()),
               std::to_string(rep.rounds), std::to_string(rep.max_call_length)});
  }
  {
    // Star on the same order: 2-mlbg with minimum edges, max degree N-1.
    const VertexId N = static_cast<VertexId>(cube_order(n));
    const auto schedule = star_line_broadcast(N, 0);
    t.add_row({"star K_{1,N-1}", "2", std::to_string(N - 1), std::to_string(N - 1),
               std::to_string(schedule.num_rounds()),
               std::to_string(schedule.max_call_length())});
  }
  t.print(std::cout);
  std::cout << "Expected shape: degree falls from n (Q_n) toward ~k*n^(1/k) as k\n"
               "grows, at constant optimal round count; the star shows why edge\n"
               "count alone is the wrong metric (degree N-1).\n\n";
}

void BM_QnBinomial(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypercube_binomial_broadcast(n, 0));
  }
}
BENCHMARK(BM_QnBinomial)->DenseRange(8, 18, 2);

void BM_SparseBroadcast(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_broadcast_schedule(spec, 0));
  }
}
BENCHMARK(BM_SparseBroadcast)->DenseRange(8, 18, 2);

void BM_StarBroadcast(benchmark::State& state) {
  const VertexId N = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(star_line_broadcast(N, 1));
  }
}
BENCHMARK(BM_StarBroadcast)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_PathBroadcast(benchmark::State& state) {
  const VertexId N = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(path_line_broadcast(N, 0));
  }
}
BENCHMARK(BM_PathBroadcast)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
