// Experiment E8 — Theorem 7 (general-k upper bound) and the Figure-5
// partition structure.
//
// For k = 3..6 and a sweep of n, reports the closed-form cuts n_i*, the
// realized maximum degree, the exact-DP optimum, and the bound
// (2k-1)*ceil(n^(1/k)) - k.  Also dumps one construction's level
// structure (windows, governed dims, label counts) — the content of the
// paper's Figure 5.
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

std::string cuts_to_string(const std::vector<int>& cuts) {
  // Piecewise appends throughout this file dodge GCC 12's bogus
  // -Wrestrict on operator+(const char*, string&&) under -Werror.
  std::string s;
  for (int c : cuts) {
    if (!s.empty()) s += ',';
    s += std::to_string(c);
  }
  return s;
}

std::string interval_to_string(int lo, int hi) {
  std::string s = "(";
  s += std::to_string(lo);
  s += ',';
  s += std::to_string(hi);
  s += ']';
  return s;
}

void print_table() {
  std::cout << "\n=== E8: Theorem 7 — k-mlbg maximum degree vs (2k-1)n^(1/k) - k ===\n";
  for (int k = 3; k <= 6; ++k) {
    std::cout << "k = " << k << ":\n";
    TextTable t({"n", "cuts (thm7)", "Delta", "cuts (opt)", "Delta", "bound", "lower"});
    for (int n : {12, 16, 24, 32, 40, 48, 56, 63}) {
      if (n <= k * k) continue;  // asymptotic regime of the theorem
      const auto cuts = theorem7_cuts(n, k);
      const auto opt = optimal_cuts(n, k);
      t.add_row({std::to_string(n), cuts_to_string(cuts),
                 std::to_string(realized_max_degree(n, cuts)), cuts_to_string(opt),
                 std::to_string(realized_max_degree(n, opt)),
                 std::to_string(theorem7_upper(n, k)),
                 std::to_string(lower_bound_max_degree(n, k))});
    }
    t.print(std::cout);
  }
  std::cout << "Expected shape: realized Delta <= bound throughout; larger k buys a\n"
               "smaller degree (Theta(n^(1/k))); the DP cuts never lose to the\n"
               "closed form.\n";

  std::cout << "\n--- Figure 5: level structure of Construct(4, (24, n_3, n_2, n_1)) ---\n";
  const auto spec = design_sparse_hypercube(24, 4);
  TextTable t({"level", "window", "labels", "governs dims", "|S_j| max"});
  for (std::size_t lv = 0; lv < spec.levels().size(); ++lv) {
    const auto& level = spec.levels()[lv];
    t.add_row({std::to_string(lv + 1),
               interval_to_string(level.win_lo, level.win_hi),
               std::to_string(level.labeling.num_labels()),
               interval_to_string(level.dim_lo, level.dim_hi),
               std::to_string(level.max_owned())});
  }
  t.print(std::cout);
  std::cout << "core dims (always present): 1.." << spec.core_dim()
            << "; max degree " << spec.max_degree() << "\n\n";
}

void BM_Theorem7Cuts(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int n = k + 1; n <= 63; ++n) benchmark::DoNotOptimize(theorem7_cuts(n, k));
  }
}
BENCHMARK(BM_Theorem7Cuts)->DenseRange(3, 6, 1);

void BM_OptimalCutsDp(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_cuts(40, k));
  }
}
BENCHMARK(BM_OptimalCutsDp)->DenseRange(2, 6, 1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
