// Experiment E15 — footnote 1: any k-mlbg of order 2^n has diameter
// <= k*n, made executable.
//
// The dimension-ordered greedy router (route_flip per differing
// dimension, highest first) witnesses the bound constructively; the
// table reports sampled hop counts and stretch (hops / Hamming
// distance) across n and k, plus the per-dimension edge profile that
// shows where the sparsification bites.
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_routing_table() {
  std::cout << "\n=== E15: footnote 1 — k-line routing and diameter <= k*n ===\n";
  TextTable t({"n", "k", "Delta", "max hops", "k*n", "mean stretch", "max stretch"});
  for (int n : {12, 24, 48, 63}) {
    for (int k : {2, 3, 4}) {
      const auto spec = design_sparse_hypercube(n, k);
      const auto stats = sample_routing(spec, 2000, 12345);
      char mean[32], mx[32];
      std::snprintf(mean, sizeof(mean), "%.3f", stats.mean_stretch);
      std::snprintf(mx, sizeof(mx), "%.3f", stats.max_stretch);
      t.add_row({std::to_string(n), std::to_string(k),
                 std::to_string(spec.max_degree()), std::to_string(stats.max_hops),
                 std::to_string(stats.footnote_bound), mean, mx});
    }
  }
  t.print(std::cout);
  std::cout << "Expected shape: max hops well under the k*n bound; stretch grows\n"
               "mildly with k (each missing edge costs a short detour).\n";
}

void print_dimension_profile() {
  std::cout << "\n--- Per-dimension edge counts, G(12, k=3) vs Q_12 ---\n";
  const auto spec = design_sparse_hypercube(12, 3);
  const auto profile = dimension_edge_profile(spec);
  TextTable t({"dim", "edges", "Q_12 edges", "kept"});
  for (int i = 1; i <= 12; ++i) {
    const std::uint64_t e = profile[static_cast<std::size_t>(i - 1)];
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%",
                  100.0 * static_cast<double>(e) / static_cast<double>(cube_order(11)));
    t.add_row({std::to_string(i), std::to_string(e), std::to_string(cube_order(11)),
               pct});
  }
  t.print(std::cout);
  std::cout << "Expected shape: core dimensions keep 100%; Rule-2 dimensions keep\n"
               "1/lambda of their edges — that is the entire degree saving.\n\n";
}

void BM_GreedyRoute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 3);
  std::uint64_t x = 99;
  const Vertex mask = mask_low(n);
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const Vertex a = (x >> 3) & mask;
    const Vertex b = (x >> 33) & mask;
    benchmark::DoNotOptimize(greedy_route(spec, a, b == a ? a ^ 1 : b));
  }
}
BENCHMARK(BM_GreedyRoute)->Arg(16)->Arg(32)->Arg(48)->Arg(63);

void BM_BroadcastTreeAnalysis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 3);
  const auto schedule = make_broadcast_schedule(spec, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_broadcast_tree(schedule));
  }
}
BENCHMARK(BM_BroadcastTreeAnalysis)->DenseRange(8, 16, 2);

}  // namespace

int main(int argc, char** argv) {
  print_routing_table();
  print_dimension_profile();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
