// Experiment E1 — Theorem 1 / Figure 1.
//
// Regenerates the paper's large-k claim: for every k >=
// 2*ceil(log2((N+2)/3)) there is a k-mlbg with maximum degree 3 — the
// two-binary-tree family of Figure 1.  The table reports, per height h:
// order N = 3*2^h - 2, max degree, diameter (= the k threshold), and the
// measured broadcast round count from the worst source, which must equal
// ceil(log2 N) for the family to witness the theorem.
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_table() {
  std::cout << "\n=== E1: Theorem 1 / Figure 1 — degree-3 trees for large k ===\n";
  TextTable t({"h", "N", "maxdeg", "diam", "k_threshold", "ceil(log2 N)",
               "worst rounds", "max call len", "all sources ok"});
  for (int h = 1; h <= 8; ++h) {
    const Graph g = make_theorem1_tree(h);
    const GraphView view(g);
    const int k = theorem1_k_threshold(g.num_vertices());
    int worst_rounds = 0;
    int worst_len = 0;
    bool all_ok = true;
    for (VertexId s = 0; s < g.num_vertices(); ++s) {
      const auto result = theorem1_tree_broadcast(h, s);
      const auto rep = validate_minimum_time_k_line(view, result.schedule, k);
      all_ok = all_ok && rep.ok && rep.minimum_time;
      worst_rounds = std::max(worst_rounds, rep.rounds);
      worst_len = std::max(worst_len, rep.max_call_length);
    }
    t.add_row({std::to_string(h), std::to_string(g.num_vertices()),
               std::to_string(g.max_degree()), std::to_string(diameter(g)),
               std::to_string(k), std::to_string(ceil_log2(g.num_vertices())),
               std::to_string(worst_rounds), std::to_string(worst_len),
               all_ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "Expected shape: maxdeg = 3, diam = k_threshold = 2h, worst rounds =\n"
               "ceil(log2 N) from every source (Theorem 1's witness family).\n\n";
}

void BM_Theorem1TreeConstruction(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_theorem1_tree(h));
  }
  state.SetComplexityN(static_cast<std::int64_t>(theorem1_tree_order(h)));
}
BENCHMARK(BM_Theorem1TreeConstruction)->DenseRange(2, 12, 2)->Complexity();

void BM_Theorem1TreeBroadcastSchedule(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(theorem1_tree_broadcast(h, 0));
  }
}
BENCHMARK(BM_Theorem1TreeBroadcastSchedule)->DenseRange(2, 8, 1);

void BM_Theorem1TreeValidation(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  const Graph g = make_theorem1_tree(h);
  const GraphView view(g);
  const auto result = theorem1_tree_broadcast(h, 1);
  const int k = theorem1_k_threshold(g.num_vertices());
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_minimum_time_k_line(view, result.schedule, k));
  }
}
BENCHMARK(BM_Theorem1TreeValidation)->DenseRange(2, 8, 1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
