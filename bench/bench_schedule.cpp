// Experiment E15 — the flat schedule engine.
//
// Certifies the refactor's two load-bearing claims and records them as a
// perf trajectory (the `record` build target writes BENCH_schedule.json):
//
//   (1) Zero per-call heap allocations: building the full n = 22
//       sparse-hypercube Broadcast_k schedule (2^22 - 1 calls) performs
//       only the handful of arena reservations — counted by a global
//       operator-new hook, independent of the call count.
//   (2) Large-n validation without materialization: the n = 22 schedule
//       validates minimum-time through the non-virtual SpecView oracle;
//       the same kernel through the type-erased NetworkView base is the
//       devirtualization baseline.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <new>

#include "shc/shc.hpp"

// ---- global allocation counter -----------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace shc;

template <class Fn>
std::uint64_t allocations_during(Fn&& fn) {
  const std::uint64_t before = g_alloc_count.load();
  fn();
  return g_alloc_count.load() - before;
}

/// The acceptance check behind this bench: a full n = 22 construction
/// must allocate O(1) blocks (arena reservations), not O(#calls), and
/// must validate minimum-time through SpecView.  Exits non-zero on
/// violation so the `record` target doubles as a gate.
void print_flat_engine_proof() {
  std::cout << "\n=== E15: flat schedule engine — n = 22 sparse hypercube ===\n";
  const int n = 22;
  const auto spec = design_sparse_hypercube(n, 2);

  FlatSchedule schedule;
  const std::uint64_t allocs =
      allocations_during([&] { schedule = make_broadcast_schedule(spec, 0); });

  const SpecView view(spec);
  const auto rep = validate_minimum_time_k_line(view, schedule, spec.k());

  TextTable t({"n", "k", "calls", "path vertices", "arena MB", "allocations",
               "validated", "minimum-time"});
  char mb[32];
  std::snprintf(mb, sizeof(mb), "%.1f",
                static_cast<double>(schedule.heap_bytes()) / (1024.0 * 1024.0));
  t.add_row({std::to_string(n), std::to_string(spec.k()),
             std::to_string(schedule.num_calls()),
             std::to_string(schedule.num_path_vertices()), mb,
             std::to_string(allocs), rep.ok ? "yes" : rep.error,
             rep.minimum_time ? "yes" : "no"});
  t.print(std::cout);

  // 2^22 - 1 calls; the builder may touch a few dozen blocks (three
  // arena reservations, the informed scratch vector, assignment moves) —
  // anything growing with the call count is a regression.
  const std::uint64_t budget = 64;
  if (allocs > budget) {
    std::cout << "FAIL: " << allocs << " allocations for "
              << schedule.num_calls() << " calls (budget " << budget << ")\n";
    std::exit(1);
  }
  if (!rep.ok || !rep.minimum_time) {
    std::cout << "FAIL: n=22 schedule did not validate minimum-time: "
              << rep.error << "\n";
    std::exit(1);
  }
  std::cout << "Expected shape: allocations stay a small constant (arena\n"
               "reservations only) while the schedule holds 2^22 - 1 calls in\n"
               "one contiguous pool; validation runs entirely on the implicit\n"
               "SpecView oracle — no materialized graph.\n\n";
}

void BM_FlatScheduleConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_broadcast_schedule(spec, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cube_order(n) - 1));
}
BENCHMARK(BM_FlatScheduleConstruction)->DenseRange(12, 20, 2);

void BM_FlatValidationSpecView(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  const auto schedule = make_broadcast_schedule(spec, 0);
  const SpecView view(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_minimum_time_k_line(view, schedule, spec.k()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(schedule.num_calls()));
}
BENCHMARK(BM_FlatValidationSpecView)->DenseRange(12, 18, 2);

void BM_FlatValidationVirtualBase(benchmark::State& state) {
  // Devirtualization baseline: the same kernel, every edge probe through
  // the virtual NetworkView vtable.
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  const auto schedule = make_broadcast_schedule(spec, 0);
  const SparseHypercubeView concrete(spec);
  const NetworkView& view = concrete;
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_minimum_time_k_line(view, schedule, spec.k()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(schedule.num_calls()));
}
BENCHMARK(BM_FlatValidationVirtualBase)->DenseRange(12, 18, 2);

void BM_LegacyShimRoundTrip(benchmark::State& state) {
  // Cost of the conversion shim (tests' literal cross-checks pay this).
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  const auto schedule = make_broadcast_schedule(spec, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatSchedule::from_legacy(schedule.to_legacy()));
  }
}
BENCHMARK(BM_LegacyShimRoundTrip)->DenseRange(10, 16, 2);

void BM_CongestionAnalysis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  const auto schedule = make_broadcast_schedule(spec, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_congestion(schedule));
  }
}
BENCHMARK(BM_CongestionAnalysis)->DenseRange(12, 18, 2);

}  // namespace

int main(int argc, char** argv) {
  print_flat_engine_proof();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
