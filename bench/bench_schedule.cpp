// Experiment E15 — the flat schedule engine.
//
// Certifies the refactor's two load-bearing claims and records them as a
// perf trajectory (the `record` build target writes BENCH_schedule.json):
//
//   (1) Zero per-call heap allocations: building the full n = 22
//       sparse-hypercube Broadcast_k schedule (2^22 - 1 calls) performs
//       only the handful of arena reservations — counted by a global
//       operator-new hook, independent of the call count.
//   (2) Large-n validation without materialization: the n = 22 schedule
//       validates minimum-time through the non-virtual SpecView oracle;
//       the same kernel through the type-erased NetworkView base is the
//       devirtualization baseline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "shc/obs/recorder.hpp"
#include "shc/shc.hpp"

// ---- global allocation counter -----------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}

// These ARE the global replacement operators, so malloc/free pairing is
// correct by construction — but GCC's -Wmismatched-new-delete only sees
// "free() on a pointer from operator new" and -Werror would reject it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace shc;

// Flight-recorder base path, set by --trace=BASE (stripped from argv
// before google-benchmark sees it) or the SHC_TRACE environment
// variable.  Each gated symbolic row gets its own session writing
// BASE.<row '/'→'-'>.trace.json and BASE.<row>.rounds.jsonl, so the
// headline certifications come out of a `record` run with per-round
// telemetry attached.  The recorder never feeds a verdict, so the
// gates below are tracing-independent.
std::string g_trace_base;  // NOLINT(runtime/string)

std::unique_ptr<obs::TraceSession> trace_session_for_row(std::string row) {
  if (g_trace_base.empty()) return nullptr;
  for (char& c : row) {
    if (c == '/') c = '-';
  }
  return std::make_unique<obs::TraceSession>(
      obs::trace_options_from_base(g_trace_base + "." + row));
}

template <class Fn>
std::uint64_t allocations_during(Fn&& fn) {
  const std::uint64_t before = g_alloc_count.load();
  fn();
  return g_alloc_count.load() - before;
}

/// The acceptance check behind this bench: a full n = 22 construction
/// must allocate O(1) blocks (arena reservations), not O(#calls), and
/// must validate minimum-time through SpecView.  Exits non-zero on
/// violation so the `record` target doubles as a gate.
void print_flat_engine_proof() {
  std::cout << "\n=== E15: flat schedule engine — n = 22 sparse hypercube ===\n";
  const int n = 22;
  const auto spec = design_sparse_hypercube(n, 2);

  FlatSchedule schedule;
  const std::uint64_t allocs =
      allocations_during([&] { schedule = make_broadcast_schedule(spec, 0); });

  const SpecView view(spec);
  const auto rep = validate_minimum_time_k_line(view, schedule, spec.k());

  TextTable t({"n", "k", "calls", "path vertices", "arena MB", "allocations",
               "validated", "minimum-time"});
  char mb[32];
  std::snprintf(mb, sizeof(mb), "%.1f",
                static_cast<double>(schedule.heap_bytes()) / (1024.0 * 1024.0));
  t.add_row({std::to_string(n), std::to_string(spec.k()),
             std::to_string(schedule.num_calls()),
             std::to_string(schedule.num_path_vertices()), mb,
             std::to_string(allocs), rep.ok ? "yes" : rep.error,
             rep.minimum_time ? "yes" : "no"});
  t.print(std::cout);

  // 2^22 - 1 calls; the builder may touch a few dozen blocks (three
  // arena reservations, the informed scratch vector, assignment moves) —
  // anything growing with the call count is a regression.
  const std::uint64_t budget = 64;
  if (allocs > budget) {
    std::cout << "FAIL: " << allocs << " allocations for "
              << schedule.num_calls() << " calls (budget " << budget << ")\n";
    std::exit(1);
  }
  if (!rep.ok || !rep.minimum_time) {
    std::cout << "FAIL: n=22 schedule did not validate minimum-time: "
              << rep.error << "\n";
    std::exit(1);
  }
  std::cout << "Expected shape: allocations stay a small constant (arena\n"
               "reservations only) while the schedule holds 2^22 - 1 calls in\n"
               "one contiguous pool; validation runs entirely on the implicit\n"
               "SpecView oracle — no materialized graph.\n\n";
}

/// The streaming pipeline's acceptance row: certify Broadcast_k at
/// large n with the round-streamed validator.  The schedule is never
/// materialized; the gate enforces that the scratch arena's high-water
/// mark stays within the largest single round's footprint, and that
/// the verdict is a validated minimum-time broadcast.  n = 30 streams
/// 2^30 - 1 calls (the materialized engine caps at n <= 28).
void BM_StreamingCertify(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  StreamingCertification cert;
  for (auto _ : state) {
    cert = certify_broadcast_streaming(spec, 0, opt, /*threads=*/1);
    if (!cert.report.ok || !cert.report.minimum_time) {
      std::cout << "FAIL: streaming n=" << n
                << " did not certify minimum-time: " << cert.report.error << "\n";
      std::exit(1);
    }
    if (cert.peak_round_arena_bytes > cert.largest_round_arena_bytes) {
      std::cout << "FAIL: streaming n=" << n << " peak arena "
                << cert.peak_round_arena_bytes
                << " B exceeds the largest-round bound "
                << cert.largest_round_arena_bytes << " B\n";
      std::exit(1);
    }
  }
  state.counters["calls"] = static_cast<double>(cert.calls);
  state.counters["peak_round_arena_bytes"] =
      static_cast<double>(cert.peak_round_arena_bytes);
  state.counters["largest_round_arena_bytes"] =
      static_cast<double>(cert.largest_round_arena_bytes);
  state.counters["whole_schedule_arena_bytes"] =
      static_cast<double>(cert.whole_schedule_arena_bytes);
  state.counters["peak_edge_table_bytes"] =
      static_cast<double>(cert.peak_edge_table_bytes);
  state.counters["minimum_time"] = cert.report.minimum_time ? 1.0 : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cert.calls));
}
// Trajectory points inside the materialized range.  Single iteration:
// each run is a full 2^n-call production + validation.  The flagship
// n = 30 row (only the streaming engine can certify it) is registered
// at the END of this file: its ~26 GB working set leaves the allocator
// and page state polluted enough to double the wall time of whatever
// runs next, so it must not precede the gated symbolic rows.
BENCHMARK(BM_StreamingCertify)
    ->Arg(20)
    ->Arg(24)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

/// The symbolic engine's acceptance rows: certify Broadcast_k entirely
/// on the subcube group structure — n = 40/48 past any explicit
/// representation, and n = 63 at the vertex-representation limit
/// (2^63 - 1 calls).  Memory is polynomial in n; the gate enforces a
/// validated minimum-time verdict and the exact 2^n - 1 call count.
/// Spec policy is symbolic_showcase_spec, shared with shc_sweep
/// --symbolic so both recorded artifacts measure the same graphs
/// (designed cuts up to n = 48; construct_base(n, 6) beyond, where the
/// designed frontiers exceed the collision budget).
void BM_SymbolicCertify(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = symbolic_showcase_spec(n, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto trace =
      trace_session_for_row("BM_SymbolicCertify/" + std::to_string(n));
  SymbolicCertification cert;
  for (auto _ : state) {
    cert = certify_broadcast_symbolic(spec, 0, opt);
    if (!cert.report.ok || !cert.report.minimum_time) {
      std::cout << "FAIL: symbolic n=" << n
                << " did not certify minimum-time: " << cert.report.error
                << "\n";
      std::exit(1);
    }
    if (cert.report.total_calls != cube_order(n) - 1) {
      std::cout << "FAIL: symbolic n=" << n << " certified "
                << cert.report.total_calls << " calls, expected 2^" << n
                << " - 1\n";
      std::exit(1);
    }
  }
  // Note: `calls` loses precision as a double counter beyond 2^53; the
  // exact count is gated above.
  state.counters["calls"] = static_cast<double>(cert.report.total_calls);
  state.counters["groups"] = static_cast<double>(cert.checks.groups);
  state.counters["peak_frontier_subcubes"] =
      static_cast<double>(cert.checks.peak_frontier_subcubes);
  state.counters["peak_round_groups"] =
      static_cast<double>(cert.checks.peak_round_groups);
  state.counters["collision_candidates"] =
      static_cast<double>(cert.checks.collision_candidates);
  state.counters["sampled_calls"] =
      static_cast<double>(cert.checks.sampled_calls);
  state.counters["rounds_checked"] =
      static_cast<double>(cert.checks.rounds_checked);
  state.counters["reduce_tree_tasks"] =
      static_cast<double>(cert.checks.reduce_tree_tasks);
  state.counters["minimum_time"] = cert.report.minimum_time ? 1.0 : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cert.checks.groups));
}
BENCHMARK(BM_SymbolicCertify)
    ->Arg(40)
    ->Arg(48)
    ->Arg(63)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

/// The designed-spec headline row: the paper's own construct(63, 10)
/// (Theorem 5's m* = 10 core) certified end to end — ~150 M call
/// groups, an ~11 M-subcube peak frontier, 2^63 - 1 calls — which the
/// quadratic collision pair sweep could never finish (it burned its
/// budget at round 52).  The dyadic occupancy ledger closes it within
/// default budgets; the gate enforces the minimum-time verdict and the
/// exact call/group counts so any engine drift fails the recording.
void BM_SymbolicCertifyDesigned(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = SparseHypercubeSpec::construct(n, {theorem5_core(n)});
  ValidationOptions opt;
  opt.k = spec.k();
  const auto trace =
      trace_session_for_row("BM_SymbolicCertifyDesigned/" + std::to_string(n));
  SymbolicCertification cert;
  for (auto _ : state) {
    cert = certify_broadcast_symbolic(spec, 0, opt);
    if (!cert.report.ok || !cert.report.minimum_time) {
      std::cout << "FAIL: designed symbolic n=" << n
                << " did not certify minimum-time: " << cert.report.error
                << "\n";
      std::exit(1);
    }
    if (cert.report.total_calls != cube_order(n) - 1) {
      std::cout << "FAIL: designed symbolic n=" << n << " certified "
                << cert.report.total_calls << " calls, expected 2^" << n
                << " - 1\n";
      std::exit(1);
    }
  }
  state.counters["calls"] = static_cast<double>(cert.report.total_calls);
  state.counters["groups"] = static_cast<double>(cert.checks.groups);
  state.counters["peak_frontier_subcubes"] =
      static_cast<double>(cert.checks.peak_frontier_subcubes);
  state.counters["peak_round_groups"] =
      static_cast<double>(cert.checks.peak_round_groups);
  state.counters["occupancy_claims"] =
      static_cast<double>(cert.checks.occupancy_claims);
  state.counters["rounds_checked"] =
      static_cast<double>(cert.checks.rounds_checked);
  state.counters["reduce_tree_tasks"] =
      static_cast<double>(cert.checks.reduce_tree_tasks);
  state.counters["minimum_time"] = cert.report.minimum_time ? 1.0 : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cert.checks.groups));
}
BENCHMARK(BM_SymbolicCertifyDesigned)
    ->Arg(63)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

/// The symbolic gossip engine's acceptance rows: certify gather-
/// broadcast all-to-all exchange far past the exact validator's 2^13
/// wall — n = 40 is 2^41 - 2 exchanges certified in minutes on one
/// core, a regime the N^2-bit exact tracker cannot touch at any cost.
/// Spec policy is symbolic_showcase_spec, shared with BM_SymbolicCertify
/// and shc_sweep so every recorded artifact measures the same graphs.
/// The gate enforces completion, the exact 2n round count, and the
/// exact 2 * (2^n - 1) exchange count.
void BM_SymbolicGossip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = symbolic_showcase_spec(n, 2);
  const auto trace =
      trace_session_for_row("BM_SymbolicGossip/" + std::to_string(n));
  SymbolicGossipCertification cert;
  for (auto _ : state) {
    cert = certify_gossip_symbolic(spec, 0);
    if (!cert.report.ok || !cert.report.complete) {
      std::cout << "FAIL: symbolic gossip n=" << n
                << " did not certify completion: " << cert.report.error << "\n";
      std::exit(1);
    }
    if (cert.report.rounds != 2 * n ||
        cert.report.total_exchanges != 2 * (cube_order(n) - 1)) {
      std::cout << "FAIL: symbolic gossip n=" << n << " certified "
                << cert.report.rounds << " rounds / "
                << cert.report.total_exchanges << " exchanges, expected "
                << 2 * n << " / 2 * (2^" << n << " - 1)\n";
      std::exit(1);
    }
  }
  state.counters["exchanges"] = static_cast<double>(cert.report.total_exchanges);
  state.counters["groups"] = static_cast<double>(cert.checks.groups);
  state.counters["peak_classes"] =
      static_cast<double>(cert.checks.classes.peak_classes);
  state.counters["peak_knowledge_subcubes"] =
      static_cast<double>(cert.checks.classes.peak_knowledge_subcubes);
  state.counters["unions"] =
      static_cast<double>(cert.checks.classes.unions_computed);
  state.counters["union_cache_hits"] =
      static_cast<double>(cert.checks.classes.union_cache_hits);
  state.counters["union_cache_misses"] =
      static_cast<double>(cert.checks.classes.union_cache_misses);
  state.counters["rounds_checked"] =
      static_cast<double>(cert.checks.rounds_checked);
  state.counters["reduce_tree_tasks"] =
      static_cast<double>(cert.checks.classes.reduce_tree_tasks);
  state.counters["collision_candidates"] =
      static_cast<double>(cert.checks.collision_candidates);
  state.counters["sampled_calls"] =
      static_cast<double>(cert.checks.sampled_calls);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cert.checks.groups));
}
BENCHMARK(BM_SymbolicGossip)
    ->Arg(26)
    ->Arg(33)
    ->Arg(40)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

/// Thread-scaling row of the symbolic engine: the designed n = 47 spec
/// (Theorem 5 core — large enough that the sharded checks and pooled
/// merge trees dominate) certified at 1/2/4/8 threads.  The rows are
/// counter-gated only (wall time depends on the host's core count);
/// what check_bench.py enforces is the determinism contract — every
/// thread count must report the exact same group/frontier/claim
/// counters, because the report is bit-for-bit thread-invariant.
void BM_SymbolicCertifyThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int n = 47;
  const auto spec = SparseHypercubeSpec::construct(n, {theorem5_core(n)});
  ValidationOptions opt;
  opt.k = spec.k();
  SymbolicCheckOptions sopt;
  sopt.threads = threads;
  SymbolicCertification cert;
  for (auto _ : state) {
    cert = certify_broadcast_symbolic(spec, 0, opt, sopt);
    if (!cert.report.ok || !cert.report.minimum_time) {
      std::cout << "FAIL: designed symbolic n=" << n << " threads=" << threads
                << " did not certify minimum-time: " << cert.report.error
                << "\n";
      std::exit(1);
    }
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["groups"] = static_cast<double>(cert.checks.groups);
  state.counters["peak_frontier_subcubes"] =
      static_cast<double>(cert.checks.peak_frontier_subcubes);
  state.counters["occupancy_claims"] =
      static_cast<double>(cert.checks.occupancy_claims);
  state.counters["rounds_checked"] =
      static_cast<double>(cert.checks.rounds_checked);
  state.counters["minimum_time"] = cert.report.minimum_time ? 1.0 : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cert.checks.groups));
}
BENCHMARK(BM_SymbolicCertifyThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

// ---- certification service rows -----------------------------------------

/// The saturating-throughput row of the ServeEngine: a serial warm-up
/// populates the certificate cache (one cold run per distinct key),
/// then `clients` concurrent client threads replay the key mix and
/// every response must come out of the cache.  Counter-gated exactly
/// (queries / ok / cache_hits / distinct_keys — cache accounting drift
/// fails the recording); wall time and the p95 counter are ungated,
/// and `qps` is the measured saturated service rate ROADMAP cites.
void BM_ServeThroughput(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kPerClient = 32;
  const std::vector<std::string> keys = {
      "{\"workload\":\"broadcast-streaming\",\"n\":10,\"k\":2}",
      "{\"workload\":\"broadcast-streaming\",\"n\":12,\"k\":3}",
      "{\"workload\":\"broadcast-symbolic\",\"n\":12,\"k\":2}",
      "{\"workload\":\"broadcast-symbolic\",\"n\":14,\"k\":2}",
      "{\"workload\":\"gossip-symbolic\",\"n\":10,\"k\":2}",
      "{\"workload\":\"gossip-symbolic\",\"n\":12,\"k\":2}",
      "{\"workload\":\"exchange-gossip\",\"n\":10}",
      "{\"workload\":\"exchange-gossip\",\"n\":12}",
  };
  ServeEngine engine{ServeOptions{}};
  for (const std::string& q : keys) {
    if (engine.handle_line(q).find("\"ok\":true") == std::string::npos) {
      std::cout << "FAIL: serve warm-up query did not certify: " << q << "\n";
      std::exit(1);
    }
  }
  std::vector<double> p95_ms(1, 0.0);
  for (auto _ : state) {
    std::vector<std::vector<std::uint64_t>> lat_ns(
        static_cast<std::size_t>(clients));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        for (int q = 0; q < kPerClient; ++q) {
          const auto t0 = std::chrono::steady_clock::now();
          const std::string row =
              engine.handle_line(keys[static_cast<std::size_t>(q) % keys.size()]);
          const auto t1 = std::chrono::steady_clock::now();
          lat_ns[static_cast<std::size_t>(c)].push_back(
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()));
          if (row.find("\"cache_hit\":true") == std::string::npos) {
            std::cout << "FAIL: saturated serve query missed the cache: " << row
                      << "\n";
            std::exit(1);
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    std::vector<std::uint64_t> all;
    for (const auto& v : lat_ns) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    p95_ms[0] =
        static_cast<double>(all[all.size() - 1 - all.size() / 20]) / 1e6;
  }
  const ServeStats stats = engine.stats();
  const std::uint64_t served =
      static_cast<std::uint64_t>(clients) * kPerClient;
  if (stats.ok != stats.queries || stats.errors != 0 || stats.refused != 0 ||
      stats.cache_hits != served || stats.cache_misses != keys.size()) {
    std::cout << "FAIL: serve stats drifted: queries=" << stats.queries
              << " ok=" << stats.ok << " hits=" << stats.cache_hits
              << " misses=" << stats.cache_misses << " errors=" << stats.errors
              << "\n";
    std::exit(1);
  }
  state.counters["queries"] = static_cast<double>(stats.queries);
  state.counters["ok"] = static_cast<double>(stats.ok);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["distinct_keys"] = static_cast<double>(keys.size());
  state.counters["p95_ms"] = p95_ms[0];
  state.counters["qps"] = benchmark::Counter(static_cast<double>(served),
                                             benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(served));
}
BENCHMARK(BM_ServeThroughput)->Arg(64)->Iterations(1)->Unit(benchmark::kSecond);

/// The mixed-load row: one designed-47 certification (the same spec as
/// BM_SymbolicCertifyThreads — over the default heavy-admission
/// threshold, so it occupies the single heavy slot) runs to completion
/// while 64 client threads stream small queries.  The gate enforces
/// that the heavy query certifies, every small query certifies, and
/// nothing is refused — the service stays responsive under a heavy
/// tenant instead of queueing behind it.
void BM_ServeThroughputMixed(benchmark::State& state) {
  const int n_heavy = static_cast<int>(state.range(0));
  constexpr int kClients = 64;
  constexpr int kPerClient = 16;
  const std::string heavy_req =
      "{\"workload\":\"broadcast-symbolic\",\"n\":" + std::to_string(n_heavy) +
      ",\"cuts\":[" + std::to_string(theorem5_core(n_heavy)) + "]}";
  const std::vector<std::string> small = {
      "{\"workload\":\"broadcast-streaming\",\"n\":10,\"k\":2}",
      "{\"workload\":\"broadcast-symbolic\",\"n\":12,\"k\":2}",
      "{\"workload\":\"gossip-symbolic\",\"n\":10,\"k\":2}",
      "{\"workload\":\"exchange-gossip\",\"n\":10}",
  };
  for (auto _ : state) {
    ServeEngine engine{ServeOptions{}};
    std::string heavy_row;
    std::atomic<std::uint64_t> small_bad{0};
    std::thread heavy(
        [&] { heavy_row = engine.handle_line(heavy_req); });
    std::vector<std::thread> pool;
    pool.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      pool.emplace_back([&] {
        for (int q = 0; q < kPerClient; ++q) {
          const std::string row =
              engine.handle_line(small[static_cast<std::size_t>(q) % small.size()]);
          if (row.find("\"ok\":true") == std::string::npos) ++small_bad;
        }
      });
    }
    heavy.join();
    for (std::thread& t : pool) t.join();
    const ServeStats stats = engine.stats();
    if (heavy_row.find("\"ok\":true") == std::string::npos) {
      std::cout << "FAIL: heavy designed-" << n_heavy
                << " query did not certify under mixed load: " << heavy_row
                << "\n";
      std::exit(1);
    }
    if (small_bad.load() != 0 || stats.refused != 0 || stats.errors != 0) {
      std::cout << "FAIL: mixed-load small queries degraded: bad="
                << small_bad.load() << " refused=" << stats.refused
                << " errors=" << stats.errors << "\n";
      std::exit(1);
    }
    state.counters["small_queries"] =
        static_cast<double>(kClients) * kPerClient;
    state.counters["heavy_ok"] = 1.0;
    state.counters["refused"] = static_cast<double>(stats.refused);
  }
}
BENCHMARK(BM_ServeThroughputMixed)
    ->Arg(47)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

// ---- SoA kernel microbenches -------------------------------------------
//
// Throughput of the batch kernels in isolation (entries per second over
// a family that fits in L2), so kernel-level regressions show up
// without a 7-minute designed-spec run.  Time-ungated in check_bench
// (sub-noise-floor rows); the designed-63 row is the end-to-end gate.

/// Random SoA family (and a parallel id permutation) shared by the
/// kernel benches.
struct KernelFixture {
  SubcubeSoA family;
  std::vector<std::uint32_t> ids;
  std::vector<std::uint64_t> vals;

  explicit KernelFixture(std::size_t count, int n = 40) {
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    auto next = [&s] {
      s ^= s >> 12;
      s ^= s << 25;
      s ^= s >> 27;
      return s * 0x2545f4914f6cdd1dull;
    };
    for (std::size_t i = 0; i < count; ++i) {
      const Vertex mask = next() & mask_low(n);
      const Vertex prefix = next() & mask_low(n) & ~mask;
      family.push_back(prefix, mask);
      ids.push_back(static_cast<std::uint32_t>(i));
      vals.push_back(next() % 4);
    }
  }
};

void BM_SubcubeKernels_PartitionIds(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  const KernelFixture fx(count);
  std::vector<std::uint32_t> lo, hi;
  for (auto _ : state) {
    batch::partition_ids(fx.ids.data(), fx.ids.size(), fx.family.prefix.data(),
                         fx.family.mask.data(), Vertex{1} << 17, lo, hi);
    benchmark::DoNotOptimize(lo.data());
    benchmark::DoNotOptimize(hi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_SubcubeKernels_PartitionIds)->Arg(1 << 14);

void BM_SubcubeKernels_SiblingScan(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  const KernelFixture fx(count);
  Vertex probe = 0;
  for (auto _ : state) {
    probe = batch::sibling_scan(fx.family.prefix.data(), fx.vals.data(),
                                fx.family.size(), ~Vertex{0} - 1,
                                probe & mask_low(40), 1);
    benchmark::DoNotOptimize(probe);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_SubcubeKernels_SiblingScan)->Arg(1 << 14);

void BM_SubcubeKernels_IntersectAll(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  const KernelFixture fx(count);
  SubcubeSoA out;
  for (auto _ : state) {
    out.clear();
    batch::intersect_all(fx.family.prefix.data(), fx.family.mask.data(),
                         fx.family.size(), 0, mask_low(30), out);
    benchmark::DoNotOptimize(out.prefix.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_SubcubeKernels_IntersectAll)->Arg(1 << 14);

void BM_SubcubeKernels_MaskScan(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  const KernelFixture fx(count);
  for (auto _ : state) {
    const batch::MaskScan s = batch::scan_ids(fx.ids.data(), fx.ids.size(),
                                              fx.family.prefix.data(),
                                              fx.family.mask.data());
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_SubcubeKernels_MaskScan)->Arg(1 << 14);

void BM_FlatScheduleConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_broadcast_schedule(spec, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cube_order(n) - 1));
}
BENCHMARK(BM_FlatScheduleConstruction)->DenseRange(12, 20, 2);

void BM_FlatValidationSpecView(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  const auto schedule = make_broadcast_schedule(spec, 0);
  const SpecView view(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_minimum_time_k_line(view, schedule, spec.k()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(schedule.num_calls()));
}
BENCHMARK(BM_FlatValidationSpecView)->DenseRange(12, 18, 2);

void BM_FlatValidationVirtualBase(benchmark::State& state) {
  // Devirtualization baseline: the same kernel, every edge probe through
  // the virtual NetworkView vtable.
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  const auto schedule = make_broadcast_schedule(spec, 0);
  const SparseHypercubeView concrete(spec);
  const NetworkView& view = concrete;
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_minimum_time_k_line(view, schedule, spec.k()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(schedule.num_calls()));
}
BENCHMARK(BM_FlatValidationVirtualBase)->DenseRange(12, 18, 2);

void BM_LegacyShimRoundTrip(benchmark::State& state) {
  // Cost of the conversion shim (tests' literal cross-checks pay this).
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  const auto schedule = make_broadcast_schedule(spec, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatSchedule::from_legacy(schedule.to_legacy()));
  }
}
BENCHMARK(BM_LegacyShimRoundTrip)->DenseRange(10, 16, 2);

void BM_CongestionAnalysis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 2);
  const auto schedule = make_broadcast_schedule(spec, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_congestion(schedule));
  }
}
BENCHMARK(BM_CongestionAnalysis)->DenseRange(12, 18, 2);

// The flagship big-memory streaming row, last on purpose — see the
// comment at the other BM_StreamingCertify registration.  Same row
// name, so the gate and the trend report are unaffected by the order.
BENCHMARK(BM_StreamingCertify)
    ->Arg(30)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark rejects flags it does not recognize, so --trace=BASE
  // is parsed and stripped from argv before Initialize sees it.  SHC_TRACE
  // supplies the same base when the flag is absent.
  int kept = 1;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--trace=", 0) == 0) {
      g_trace_base = arg.substr(std::string("--trace=").size());
    } else {
      argv[kept++] = argv[a];
    }
  }
  argc = kept;
  argv[argc] = nullptr;
  if (g_trace_base.empty()) {
    if (const char* env = std::getenv("SHC_TRACE")) g_trace_base = env;
  }
  print_flat_engine_proof();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
