#!/usr/bin/env python3
"""Perf-trajectory trend report — render the committed bench history as
ASCII charts, standard library only.

The repo's perf story is a sequence of committed BENCH_schedule.json
snapshots (one per PR that touched the engines).  check_bench.py gates
one step of that sequence; this tool shows the whole walk:

  # every committed revision of the artifact, oldest -> newest
  python3 bench/plot_trend.py --git BENCH_schedule.json

  # explicit snapshots (oldest -> newest), e.g. A/B experiment outputs
  python3 bench/plot_trend.py old.json mid.json new.json

For each benchmark row present in at least two snapshots it prints a
sparkline of real_time across the snapshots, the first/last values, and
the net speedup factor — so "did the designed-63 row actually get faster
over the last five PRs, and when" is one command, no plotting stack.

Exit status: 0 on success, 2 on unusable input (no snapshots, no
overlapping rows).  Pure stdlib; `--git` shells out to the local git
binary only.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

# Eight-level bar glyphs; index by value scaled into [0, 7].
SPARKS = " ▁▂▃▄▅▆▇█"


# google-benchmark reports real_time in the row's time_unit (ns default).
TIME_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def parse_schedule(text: str) -> dict[str, float]:
    """Benchmark name -> real_time in seconds (normalized across each
    row's time_unit; rows without a time are skipped)."""
    data = json.loads(text)
    rows = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "").split("/iterations:")[0]
        t = bench.get("real_time")
        scale = TIME_UNITS.get(bench.get("time_unit", "ns"))
        if name and scale is not None and isinstance(t, (int, float)):
            rows[name] = float(t) * scale
    return rows


def git_snapshots(path: str) -> list[tuple[str, str]]:
    """(label, file text) for every committed revision of `path`,
    oldest first."""
    revs = subprocess.run(
        ["git", "log", "--format=%h", "--reverse", "--", path],
        check=True, capture_output=True, text=True,
    ).stdout.split()
    out = []
    for rev in revs:
        show = subprocess.run(
            ["git", "show", f"{rev}:{path}"], capture_output=True, text=True,
        )
        if show.returncode == 0:  # skip revisions where the file was absent
            out.append((rev, show.stdout))
    return out


def sparkline(values: list[float]) -> str:
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARKS[4] * len(values)
    span = hi - lo
    return "".join(
        SPARKS[1 + round((v - lo) / span * 7)] for v in values
    )


def fmt_secs(seconds: float) -> str:
    if seconds >= 100.0:
        return f"{seconds:.0f}s"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def render(snapshots: list[tuple[str, dict[str, float]]],
           out=None) -> int:
    """Render the trend table; returns the number of rows plotted."""
    # Resolve stdout at call time so redirect_stdout (tests) works.
    out = sys.stdout if out is None else out
    labels = [label for label, _ in snapshots]
    # Rows in first-seen order, only those with >= 2 data points.
    order: list[str] = []
    for _, rows in snapshots:
        for name in rows:
            if name not in order:
                order.append(name)
    plotted = 0
    name_w = max((len(n) for n in order), default=4)
    print(f"trend over {len(snapshots)} snapshot(s): "
          f"{labels[0]} .. {labels[-1]}", file=out)
    for name in order:
        series = [(label, rows[name]) for label, rows in snapshots
                  if name in rows]
        if len(series) < 2:
            continue
        values = [v for _, v in series]
        first, last = values[0], values[-1]
        if last > 0:
            factor = first / last
            net = f"{factor:5.2f}x {'faster' if factor >= 1.0 else 'SLOWER'}"
        else:
            net = "  n/a"
        print(f"  {name:<{name_w}}  {sparkline(values)}  "
              f"{fmt_secs(first):>8} -> {fmt_secs(last):>8}  {net}",
              file=out)
        plotted += 1
    if plotted == 0:
        print("  (no benchmark row appears in two or more snapshots)",
              file=out)
    return plotted


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="ASCII trend report over BENCH_schedule.json snapshots")
    ap.add_argument("snapshots", nargs="*",
                    help="artifact files, oldest first")
    ap.add_argument("--git", metavar="PATH",
                    help="plot every committed revision of PATH instead")
    args = ap.parse_args(argv)

    loaded: list[tuple[str, dict[str, float]]] = []
    try:
        if args.git:
            for label, text in git_snapshots(args.git):
                loaded.append((label, parse_schedule(text)))
        for path in args.snapshots:
            with open(path) as f:
                loaded.append((path, parse_schedule(f.read())))
    except (OSError, json.JSONDecodeError,
            subprocess.CalledProcessError) as e:
        print(f"plot_trend: cannot load snapshots: {e}", file=sys.stderr)
        return 2

    if len(loaded) < 2:
        print("plot_trend: need at least two snapshots to plot a trend",
              file=sys.stderr)
        return 2
    return 0 if render(loaded) > 0 else 2


if __name__ == "__main__":
    sys.exit(main())
