// Experiments E5 and E6 — Example 4 / Figure 4 and Theorems 4 / 6.
//
// E5 replays the paper's broadcast trace in G_{4,2} from 0000 and prints
// it in the Figure-4 style.  E6 sweeps constructions across n and k and
// validates the Broadcast_k scheme from every source — the mechanical
// counterpart of Theorems 4 and 6.
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_trace() {
  std::cout << "\n=== E5: Example 4 / Figure 4 — broadcast in G_{4,2} from 0000 ===\n";
  const auto g42 = SparseHypercubeSpec::construct_base(4, 2, example1_labeling_m2());
  const auto schedule = make_broadcast_schedule(g42, 0);
  std::cout << format_schedule(schedule, 4);
  const auto rep = validate_minimum_time_k_line(SparseHypercubeView{g42}, schedule, 2);
  std::cout << "validated: " << (rep.ok ? "ok" : rep.error)
            << ", minimum-time: " << (rep.minimum_time ? "yes" : "no")
            << ", max call length: " << rep.max_call_length << "\n";
  std::cout << "Expected shape: 4 rounds; round 1 is a single length-2 call through\n"
               "a Rule-1 neighbor into the 1xxx half (the paper reaches 1010 via\n"
               "0010; the symmetric witness 1001 via 0001 is equally legal); final\n"
               "rounds flood the 2-cubes with direct calls.\n";
}

void print_all_sources_table() {
  std::cout << "\n=== E6: Theorems 4 & 6 — minimum-time k-line broadcast, all sources ===\n";
  TextTable t({"n", "k", "cuts", "Delta", "rounds", "max len", "sources ok"});
  const std::vector<std::pair<int, int>> cases = {
      {8, 2}, {10, 2}, {12, 2}, {9, 3}, {12, 3}, {10, 4}, {12, 4}, {12, 5}};
  for (const auto& [n, k] : cases) {
    const auto spec = design_sparse_hypercube(n, k);
    const SparseHypercubeView view(spec);
    std::string cuts;
    for (int c : spec.cuts()) {
      // Piecewise append dodges GCC 12's bogus -Wrestrict on
      // operator+(const char*, string&&) under -Werror.
      if (!cuts.empty()) cuts += ',';
      cuts += std::to_string(c);
    }
    std::uint64_t ok = 0;
    int max_len = 0;
    const std::uint64_t stride = spec.num_vertices() > 1024 ? 37 : 1;
    std::uint64_t tried = 0;
    for (Vertex s = 0; s < spec.num_vertices(); s += stride) {
      ++tried;
      const auto rep =
          validate_minimum_time_k_line(view, make_broadcast_schedule(spec, s), k);
      if (rep.ok && rep.minimum_time) ++ok;
      max_len = std::max(max_len, rep.max_call_length);
    }
    t.add_row({std::to_string(n), std::to_string(k), cuts,
               std::to_string(spec.max_degree()), std::to_string(n),
               std::to_string(max_len),
               std::to_string(ok) + "/" + std::to_string(tried)});
  }
  t.print(std::cout);
  std::cout << "Expected shape: every source broadcasts in exactly n rounds with\n"
               "calls of length <= k (Definition 3 holds: the graphs are k-mlbgs).\n\n";
}

void BM_ScheduleGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_broadcast_schedule(spec, 0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cube_order(n) - 1));
}
BENCHMARK(BM_ScheduleGeneration)->DenseRange(8, 20, 2);

void BM_ScheduleValidation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 3);
  const SparseHypercubeView view(spec);
  const auto schedule = make_broadcast_schedule(spec, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_minimum_time_k_line(view, schedule, 3));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(schedule.num_calls()));
}
BENCHMARK(BM_ScheduleValidation)->DenseRange(8, 18, 2);

void BM_RouteFlip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 4);
  Vertex u = 0;
  Dim i = n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_flip(spec, u, i));
    u = (u + 0x9E3779B97F4A7C15ULL) & mask_low(n);
    i = (i % n) + 1;
  }
}
BENCHMARK(BM_RouteFlip)->Arg(16)->Arg(32)->Arg(48);

}  // namespace

int main(int argc, char** argv) {
  print_trace();
  print_all_sources_table();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
