// Experiment E14 — Section-5 model variants (ablations).
//
// (a) Vertex-disjoint calls: the paper suggests extending the model to
//     vertex-disjoint settings.  Broadcast_k already satisfies it —
//     concurrent calls live in disjoint subcubes — so the construction's
//     guarantees carry over to the stricter model for free.  The star
//     (Section 2's minimum-edge 2-mlbg) does not survive: its doubling
//     relies on switching many calls through the hub.
// (b) Property-2-aware design: G_j subset G_{j+1} means a k budget can be
//     spent on any j <= k; the table shows where each j wins and what
//     design_best_sparse_hypercube picks.
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_vertex_disjoint() {
  std::cout << "\n=== E14a: vertex-disjoint k-line model ===\n";
  TextTable t({"network", "k", "edge-disjoint ok", "vertex-disjoint ok"});
  for (auto [n, k] : {std::pair{8, 2}, std::pair{9, 3}, std::pair{10, 4}}) {
    const auto spec = design_sparse_hypercube(n, k);
    const SparseHypercubeView view(spec);
    const auto schedule = make_broadcast_schedule(spec, 1);
    ValidationOptions strict;
    strict.k = k;
    strict.require_vertex_disjoint = true;
    const auto weak = validate_minimum_time_k_line(view, schedule, k);
    const auto strong = validate_broadcast(view, schedule, strict);
    t.add_row({"G(" + std::to_string(n) + "," + std::to_string(k) + ")",
               std::to_string(k), weak.ok ? "yes" : "no", strong.ok ? "yes" : "no"});
  }
  {
    const Graph g = make_star(256);
    const GraphView view(g);
    const auto schedule = star_line_broadcast(256, 0);
    ValidationOptions strict;
    strict.k = 2;
    strict.require_vertex_disjoint = true;
    t.add_row({"star K_{1,255}", "2",
               validate_minimum_time_k_line(view, schedule, 2).ok ? "yes" : "no",
               validate_broadcast(view, schedule, strict).ok ? "yes" : "no"});
  }
  t.print(std::cout);
  std::cout << "Expected shape: sparse hypercubes pass the stricter model; the star\n"
               "fails it (hub switching) — degree economy survives, edge economy\n"
               "does not.\n";
}

void print_design_best() {
  std::cout << "\n=== E14b: Property-2-aware design — best j <= k_max per budget ===\n";
  TextTable t({"n", "k_max", "Delta(k=k_max)", "Delta(best)", "chosen k"});
  for (int n : {8, 16, 32, 48, 63}) {
    for (int k_max : {3, 5, 8}) {
      if (k_max >= n) continue;
      const auto fixed = design_sparse_hypercube(n, k_max);
      const auto best = design_best_sparse_hypercube(n, k_max);
      t.add_row({std::to_string(n), std::to_string(k_max),
                 std::to_string(fixed.max_degree()), std::to_string(best.max_degree()),
                 std::to_string(best.k())});
    }
  }
  t.print(std::cout);
  std::cout << "Expected shape: at small n the best design uses fewer levels than\n"
               "the budget allows (rounding waste dominates); as n grows the chosen\n"
               "k climbs toward k_max, matching the asymptotic story.\n\n";
}

void BM_DesignBest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(design_best_sparse_hypercube(n, 8));
  }
}
BENCHMARK(BM_DesignBest)->Arg(16)->Arg(32)->Arg(63);

void BM_VertexDisjointValidation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = design_sparse_hypercube(n, 3);
  const SparseHypercubeView view(spec);
  const auto schedule = make_broadcast_schedule(spec, 0);
  ValidationOptions strict;
  strict.k = 3;
  strict.require_vertex_disjoint = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_broadcast(view, schedule, strict));
  }
}
BENCHMARK(BM_VertexDisjointValidation)->DenseRange(8, 16, 2);

}  // namespace

int main(int argc, char** argv) {
  print_vertex_disjoint();
  print_design_best();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
