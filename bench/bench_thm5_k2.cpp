// Experiment E7 — Theorem 5 (k = 2 upper bound).
//
// Regenerates the k = 2 degree table: for each n, the paper's core size
// m* = ceil(sqrt(2n+4)) - 2, the realized maximum degree of
// Construct_BASE(n, m*), the exact-DP optimum over all m, the Theorem-5
// bound 2*ceil(sqrt(2n+4)) - 4, and the Theorem-2 lower bound
// ceil(sqrt(n)).  The paper's claim: realized <= bound, and within ~2x
// of the lower bound.
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_table() {
  std::cout << "\n=== E7: Theorem 5 — 2-mlbg maximum degree vs bounds ===\n";
  TextTable t({"n", "N", "m*", "Delta(m*)", "m_opt", "Delta(opt)", "thm5 bound",
               "lower", "ratio"});
  for (int n : {4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 56, 63}) {
    const int m_star = theorem5_core(n);
    const int d_star = realized_max_degree(n, {m_star});
    const auto opt = optimal_cuts(n, 2);
    const int d_opt = realized_max_degree(n, opt);
    const int bound = theorem5_upper(n);
    const int lower = lower_bound_max_degree(n, 2);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2f",
                  static_cast<double>(d_opt) / static_cast<double>(lower));
    t.add_row({std::to_string(n), "2^" + std::to_string(n), std::to_string(m_star),
               std::to_string(d_star), std::to_string(opt[0]), std::to_string(d_opt),
               std::to_string(bound), std::to_string(lower), ratio});
  }
  t.print(std::cout);
  std::cout << "Expected shape: Delta(m*) <= thm5 bound for all n; the optimal m\n"
               "stays within ~2x of the Theorem-2 lower bound ceil(sqrt(n)).\n";

  std::cout << "\n--- Note after Theorem 5: m = 2^p - 1, n = m(m+2) gives Delta = 2m ---\n";
  TextTable s({"p", "m", "n", "Delta", "2m", "2*ceil(sqrt(n))"});
  for (int p = 1; p <= 3; ++p) {
    const int m = (1 << p) - 1;
    const int n = m * (m + 2);
    if (n < 2) continue;
    s.add_row({std::to_string(p), std::to_string(m), std::to_string(n),
               std::to_string(realized_max_degree(n, {m})), std::to_string(2 * m),
               std::to_string(2 * ceil_root(n, 2))});
  }
  s.print(std::cout);
  std::cout << "Expected shape: Delta = 2m < 2*sqrt(n) — within twice the lower bound.\n\n";
}

void BM_Theorem5CoreSelection(benchmark::State& state) {
  for (auto _ : state) {
    for (int n = 2; n <= 63; ++n) benchmark::DoNotOptimize(theorem5_core(n));
  }
}
BENCHMARK(BM_Theorem5CoreSelection);

void BM_OptimalCutsK2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_cuts(n, 2));
  }
}
BENCHMARK(BM_OptimalCutsK2)->Arg(16)->Arg(32)->Arg(63);

void BM_RealizedDegree(benchmark::State& state) {
  for (auto _ : state) {
    for (int n = 3; n <= 63; ++n) {
      benchmark::DoNotOptimize(realized_max_degree(n, {theorem5_core(n)}));
    }
  }
}
BENCHMARK(BM_RealizedDegree);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
