// Experiment E9 — Corollaries 1 and 2.
//
// Corollary 1: at k = ceil(log2 n) the construction's degree drops to
// O(log log N) — compare realized degree against 4*ceil(log2 n) - 2.
// Corollary 2: for constant k the construction is Theta(n^(1/k)) —
// report the ratio realized / ceil(n^(1/k)) staying inside [1, 2k-1].
#include <benchmark/benchmark.h>

#include <iostream>

#include "shc/shc.hpp"

namespace {

using namespace shc;

void print_corollary1() {
  std::cout << "\n=== E9a: Corollary 1 — k = ceil(log2 n) gives Delta = O(log log N) ===\n";
  TextTable t({"n", "k=ceil(log2 n)", "Delta(opt cuts)", "4*ceil(log2 n)-2", "Delta(Q_n)"});
  for (int n : {8, 12, 16, 24, 32, 40, 48, 56, 63}) {
    const int k = ceil_log2(static_cast<std::uint64_t>(n));
    if (n <= k) continue;
    const auto cuts = optimal_cuts(n, k);
    t.add_row({std::to_string(n), std::to_string(k),
               std::to_string(realized_max_degree(n, cuts)),
               std::to_string(corollary1_upper(n)), std::to_string(n)});
  }
  t.print(std::cout);
  std::cout << "Expected shape: Delta stays tiny (single digits) while Q_n's degree\n"
               "grows linearly in n.\n";
}

void print_corollary2() {
  std::cout << "\n=== E9b: Corollary 2 — Theta(n^(1/k)) tightness for constant k ===\n";
  TextTable t({"k", "n", "Delta", "ceil(n^(1/k))", "ratio", "2k-1"});
  for (int k = 2; k <= 5; ++k) {
    for (int n : {16, 32, 48, 63}) {
      if (n <= k * k) continue;
      const int delta = realized_max_degree(n, optimal_cuts(n, k));
      const int root = ceil_root(n, k);
      char ratio[32];
      std::snprintf(ratio, sizeof(ratio), "%.2f",
                    static_cast<double>(delta) / static_cast<double>(root));
      t.add_row({std::to_string(k), std::to_string(n), std::to_string(delta),
                 std::to_string(root), ratio, std::to_string(2 * k - 1)});
    }
  }
  t.print(std::cout);
  std::cout << "Expected shape: ratio bounded by 2k-1 and bounded away from 0 —\n"
               "the construction asymptotically attains the lower bound order.\n\n";
}

void BM_DesignAtLogK(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = ceil_log2(static_cast<std::uint64_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(design_sparse_hypercube(n, k));
  }
}
BENCHMARK(BM_DesignAtLogK)->Arg(16)->Arg(32)->Arg(63);

}  // namespace

int main(int argc, char** argv) {
  print_corollary1();
  print_corollary2();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
