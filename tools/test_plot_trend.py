#!/usr/bin/env python3
"""Self-test for bench/plot_trend.py — the perf-trajectory trend report.

The report is a reading aid, not a gate, but a silently wrong chart
(mis-scaled sparkline, inverted speedup factor, a row dropped from the
walk) would misinform exactly the decision the trajectory exists for.
Covers: parsing (decorated benchmark names, missing times), sparkline
scaling, speedup arithmetic in both directions, multi-snapshot rendering,
and the unusable-input exits."""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "bench")
)

import plot_trend  # noqa: E402


def artifact(rows: dict[str, float]) -> str:
    return json.dumps({"benchmarks": [
        {"name": name, "real_time": t, "time_unit": "s"}
        for name, t in rows.items()
    ]})


class Parsing(unittest.TestCase):
    def test_decorated_names_are_stripped(self) -> None:
        text = json.dumps({"benchmarks": [
            {"name": "BM_X/63/iterations:1", "real_time": 2.5,
             "time_unit": "s"},
            {"name": "BM_Y/1", "real_time": 0.25, "time_unit": "s"},
        ]})
        self.assertEqual(plot_trend.parse_schedule(text),
                         {"BM_X/63": 2.5, "BM_Y/1": 0.25})

    def test_rows_without_times_are_skipped(self) -> None:
        text = json.dumps({"benchmarks": [
            {"name": "BM_NoTime"},
            {"name": "BM_Ok", "real_time": 1.0, "time_unit": "s"},
        ]})
        self.assertEqual(plot_trend.parse_schedule(text), {"BM_Ok": 1.0})

    def test_default_time_unit_is_nanoseconds(self) -> None:
        # google-benchmark omits time_unit for ns rows; they must land
        # in seconds, not mislabel a 19-microsecond loop as 19000s.
        text = json.dumps({"benchmarks": [
            {"name": "BM_Fast", "real_time": 19000.0},
        ]})
        self.assertEqual(plot_trend.parse_schedule(text),
                         {"BM_Fast": 1.9e-05})


class Sparklines(unittest.TestCase):
    def test_monotone_series_uses_the_full_glyph_range(self) -> None:
        line = plot_trend.sparkline([1.0, 2.0, 3.0, 4.0])
        self.assertEqual(len(line), 4)
        self.assertEqual(line[0], plot_trend.SPARKS[1])
        self.assertEqual(line[-1], plot_trend.SPARKS[8])

    def test_flat_series_is_flat(self) -> None:
        line = plot_trend.sparkline([2.0, 2.0, 2.0])
        self.assertEqual(len(set(line)), 1)


class Rendering(unittest.TestCase):
    def render(self, snaps: list[tuple[str, dict[str, float]]]) -> tuple[int, str]:
        out = io.StringIO()
        plotted = plot_trend.render(snaps, out=out)
        return plotted, out.getvalue()

    def test_speedup_factor_and_direction(self) -> None:
        plotted, out = self.render([
            ("a", {"BM_Designed/63": 426.5}),
            ("b", {"BM_Designed/63": 213.25}),
        ])
        self.assertEqual(plotted, 1)
        self.assertIn("2.00x faster", out)

    def test_regression_is_called_out(self) -> None:
        plotted, out = self.render([
            ("a", {"BM_X": 1.0}),
            ("b", {"BM_X": 4.0}),
        ])
        self.assertEqual(plotted, 1)
        self.assertIn("SLOWER", out)

    def test_row_missing_from_all_but_one_snapshot_is_dropped(self) -> None:
        plotted, out = self.render([
            ("a", {"BM_X": 1.0, "BM_OnlyOnce": 9.0}),
            ("b", {"BM_X": 1.0}),
        ])
        self.assertEqual(plotted, 1)
        self.assertNotIn("BM_OnlyOnce", out)

    def test_gaps_in_the_middle_are_bridged(self) -> None:
        plotted, out = self.render([
            ("a", {"BM_X": 4.0}),
            ("b", {}),
            ("c", {"BM_X": 1.0}),
        ])
        self.assertEqual(plotted, 1)
        self.assertIn("4.00x faster", out)


class CommandLine(unittest.TestCase):
    def run_main(self, argv: list[str]) -> tuple[int, str]:
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            status = plot_trend.main(argv)
        return status, out.getvalue() + err.getvalue()

    def test_two_files_plot_a_trend(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "old.json").write_text(artifact({"BM_X": 3.0}))
            (root / "new.json").write_text(artifact({"BM_X": 1.5}))
            status, out = self.run_main(
                [str(root / "old.json"), str(root / "new.json")])
        self.assertEqual(status, 0, out)
        self.assertIn("2.00x faster", out)

    def test_single_snapshot_is_refused(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            p = pathlib.Path(tmp) / "only.json"
            p.write_text(artifact({"BM_X": 3.0}))
            status, out = self.run_main([str(p)])
        self.assertEqual(status, 2, out)
        self.assertIn("at least two snapshots", out)

    def test_unreadable_file_is_exit_2(self) -> None:
        status, out = self.run_main(["/nonexistent/bench.json"])
        self.assertEqual(status, 2, out)
        self.assertIn("cannot load", out)

    def test_disjoint_rows_are_exit_2(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "a.json").write_text(artifact({"BM_A": 1.0}))
            (root / "b.json").write_text(artifact({"BM_B": 1.0}))
            status, out = self.run_main(
                [str(root / "a.json"), str(root / "b.json")])
        self.assertEqual(status, 2, out)


if __name__ == "__main__":
    unittest.main()
