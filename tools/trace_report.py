#!/usr/bin/env python3
"""Render a flight-recorder per-round JSONL trace as a terminal report.

Input is the `*.rounds.jsonl` sink written by a TraceSession (one JSON
object per SHC_TRACE_ROUND mark: wall time of the round's window, the
latest value of every counter, and the summed phase durations of the
window; a trailing `"round": -1` row covers the endgame after the last
mark).  The report shows:

  * a per-round table — round index, wall ms, call groups checked that
    round, groups/sec, frontier size and its growth over the previous
    round, and the round's dominant phase;
  * the aggregate phase breakdown across the whole run;
  * the top-5 slowest rounds by wall time.

Only the Python standard library is used; the tool never interprets
verdicts (traces are telemetry — the reports they describe are produced
and gated elsewhere).

Usage:
  python3 tools/trace_report.py TRACE.rounds.jsonl
"""

from __future__ import annotations

import json
import sys


def load_rows(path: str) -> list[dict]:
    rows = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: not JSON: {e}") from e
            if not isinstance(row, dict) or "round" not in row:
                raise ValueError(f"{path}:{lineno}: not a per-round row")
            rows.append(row)
    return rows


def fmt_count(v: float) -> str:
    """1234567 -> '1.23M' — keeps the table narrow at designed-63 scale."""
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(v) >= scale:
            return f"{v / scale:.2f}{suffix}"
    return f"{v:.0f}" if float(v).is_integer() else f"{v:.2f}"


def dominant_phase(phases: dict) -> str:
    if not phases:
        return "-"
    name, ms = max(phases.items(), key=lambda kv: (kv[1], kv[0]))
    return f"{name} ({ms:.1f} ms)"


def render(rows: list[dict], out=None) -> None:
    if out is None:
        out = sys.stdout
    per_round = [r for r in rows if r.get("round", -1) >= 0]
    tail = [r for r in rows if r.get("round", -1) < 0]

    header = ["round", "wall_ms", "groups", "groups/s", "frontier",
              "growth", "dominant phase"]
    table = []
    prev_frontier = None
    for r in per_round:
        counters = r.get("counters", {})
        wall_ms = float(r.get("wall_ms", 0.0))
        groups = counters.get("round_groups")
        frontier = counters.get("frontier_subcubes")
        rate = "-"
        if groups is not None and wall_ms > 0:
            rate = fmt_count(float(groups) / (wall_ms / 1000.0))
        growth = "-"
        if frontier is not None and prev_frontier is not None:
            growth = f"{int(frontier) - int(prev_frontier):+d}"
        if frontier is not None:
            prev_frontier = frontier
        table.append([
            str(r["round"]),
            f"{wall_ms:.2f}",
            fmt_count(groups) if groups is not None else "-",
            rate,
            fmt_count(frontier) if frontier is not None else "-",
            growth,
            dominant_phase(r.get("phases_ms", {})),
        ])

    widths = [len(h) for h in header]
    for row in table:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]

    def line(cells):
        print("  ".join(c.rjust(w) for c, w in zip(cells, widths)), file=out)

    line(header)
    line(["-" * w for w in widths])
    for row in table:
        line(row)

    total_wall = sum(float(r.get("wall_ms", 0.0)) for r in rows)
    phase_totals: dict[str, float] = {}
    for r in rows:
        for name, ms in r.get("phases_ms", {}).items():
            phase_totals[name] = phase_totals.get(name, 0.0) + float(ms)

    print(file=out)
    print(f"rounds: {len(per_round)}"
          + (f" (+{len(tail)} endgame window)" if tail else "")
          + f"   total wall: {total_wall:.2f} ms", file=out)

    if phase_totals:
        print("phase breakdown:", file=out)
        for name, ms in sorted(phase_totals.items(),
                               key=lambda kv: (-kv[1], kv[0])):
            pct = 100.0 * ms / total_wall if total_wall > 0 else 0.0
            print(f"  {name:<20} {ms:>10.2f} ms  {pct:5.1f}%", file=out)

    slowest = sorted(per_round,
                     key=lambda r: (-float(r.get("wall_ms", 0.0)),
                                    r["round"]))[:5]
    if slowest:
        print("top-5 slowest rounds:", file=out)
        for r in slowest:
            print(f"  round {r['round']:>4}  {float(r.get('wall_ms', 0)):.2f}"
                  f" ms  {dominant_phase(r.get('phases_ms', {}))}", file=out)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1 or argv[0] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        rows = load_rows(argv[0])
    except (OSError, ValueError) as e:
        print(f"trace_report: {e}", file=sys.stderr)
        return 1
    if not rows:
        print(f"trace_report: {argv[0]} holds no per-round rows",
              file=sys.stderr)
        return 1
    render(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
