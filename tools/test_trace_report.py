#!/usr/bin/env python3
"""Self-test for tools/trace_report.py — renders synthetic per-round
JSONL rows and checks the table, the phase breakdown, and the error
paths, so the report stays trustworthy without a live trace."""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import trace_report  # noqa: E402


def rows_to_file(tmp: str, rows: list[dict]) -> str:
    path = pathlib.Path(tmp) / "t.rounds.jsonl"
    path.write_text("".join(json.dumps(r) + "\n" for r in rows),
                    encoding="utf-8")
    return str(path)


def run_main(path: str) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        status = trace_report.main([path])
    return status, out.getvalue(), err.getvalue()


SAMPLE = [
    {"round": 1, "ts_ms": 1.0, "wall_ms": 1.0,
     "counters": {"round_groups": 10, "frontier_subcubes": 4},
     "phases_ms": {"caller_tiling": 0.6, "frontier_insert": 0.2}},
    {"round": 2, "ts_ms": 3.0, "wall_ms": 2.0,
     "counters": {"round_groups": 2000, "frontier_subcubes": 9},
     "phases_ms": {"caller_tiling": 1.5}},
    {"round": 3, "ts_ms": 3.5, "wall_ms": 0.5,
     "counters": {"round_groups": 50, "frontier_subcubes": 7},
     "phases_ms": {"sampled_replay": 0.4}},
    {"round": -1, "ts_ms": 4.0, "wall_ms": 0.5,
     "counters": {}, "phases_ms": {"endgame": 0.5}},
]


class Render(unittest.TestCase):
    def test_table_and_summary(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            status, out, err = run_main(rows_to_file(tmp, SAMPLE))
        self.assertEqual(status, 0, err)
        # One table line per real round; the tail row is summarized.
        self.assertIn("rounds: 3 (+1 endgame window)", out)
        self.assertIn("total wall: 4.00 ms", out)
        # Groups/sec: round 2 checked 2000 groups in 2 ms -> 1M/s.
        self.assertIn("1.00M", out)
        # Frontier growth is a delta against the previous round.
        self.assertIn("+5", out)
        self.assertIn("-2", out)

    def test_phase_breakdown_sorted_by_time(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            status, out, _ = run_main(rows_to_file(tmp, SAMPLE))
        self.assertEqual(status, 0)
        breakdown = out.split("phase breakdown:")[1]
        self.assertLess(breakdown.index("caller_tiling"),
                        breakdown.index("endgame"))
        self.assertLess(breakdown.index("endgame"),
                        breakdown.index("sampled_replay"))

    def test_top5_slowest(self) -> None:
        rows = [{"round": r, "ts_ms": float(r), "wall_ms": float(r),
                 "counters": {}, "phases_ms": {}} for r in range(1, 9)]
        with tempfile.TemporaryDirectory() as tmp:
            status, out, _ = run_main(rows_to_file(tmp, rows))
        self.assertEqual(status, 0)
        top = out.split("top-5 slowest rounds:")[1]
        for r in (8, 7, 6, 5, 4):
            self.assertIn(f"round    {r}", top)
        self.assertNotIn("round    3", top)

    def test_rows_without_optional_counters(self) -> None:
        rows = [{"round": 0, "ts_ms": 0.1, "wall_ms": 0.1,
                 "counters": {"rss_hwm_kb": 1024}, "phases_ms": {}}]
        with tempfile.TemporaryDirectory() as tmp:
            status, out, err = run_main(rows_to_file(tmp, rows))
        self.assertEqual(status, 0, err)
        self.assertIn("rounds: 1", out)


class Errors(unittest.TestCase):
    def test_missing_file(self) -> None:
        status, _, err = run_main("/nonexistent/t.jsonl")
        self.assertEqual(status, 1)
        self.assertIn("trace_report:", err)

    def test_malformed_json(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "bad.jsonl"
            path.write_text('{"round": 1\n', encoding="utf-8")
            status, _, err = run_main(str(path))
        self.assertEqual(status, 1)
        self.assertIn("not JSON", err)

    def test_row_without_round_key(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "bad.jsonl"
            path.write_text('{"wall_ms": 1.0}\n', encoding="utf-8")
            status, _, err = run_main(str(path))
        self.assertEqual(status, 1)
        self.assertIn("not a per-round row", err)

    def test_empty_file(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "empty.jsonl"
            path.write_text("", encoding="utf-8")
            status, _, err = run_main(str(path))
        self.assertEqual(status, 1)
        self.assertIn("no per-round rows", err)

    def test_usage(self) -> None:
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            status = trace_report.main([])
        self.assertEqual(status, 2)
        self.assertIn("Usage", err.getvalue())


class FmtCount(unittest.TestCase):
    def test_scales(self) -> None:
        self.assertEqual(trace_report.fmt_count(7), "7")
        self.assertEqual(trace_report.fmt_count(1536), "1.54k")
        self.assertEqual(trace_report.fmt_count(2.5e6), "2.50M")
        self.assertEqual(trace_report.fmt_count(3e9), "3.00G")


if __name__ == "__main__":
    unittest.main()
