#!/usr/bin/env python3
"""Self-test for bench/check_bench.py — the perf-trajectory gate.

The gate is CI's only guard on the committed construct(63, 10) counters;
a silent regression in the gate itself (a row that stops being compared,
a drift that stops failing) would let the trajectory rot unnoticed.
Each test builds fixture artifacts on disk and runs check_bench.main()
against them, covering the missing-row, counter-drift, tolerance, noise
floor, skip, and unreadable-artifact paths."""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "bench")
)

import check_bench  # noqa: E402


def schedule_artifact(rows: dict[str, dict]) -> dict:
    return {"benchmarks": [dict(name=name, **row) for name, row in rows.items()]}


BASE_SCHED = {
    "BM_SymbolicCertify/63": {
        "calls": 9.223372036854776e18, "groups": 63.0, "minimum_time": 1.0,
        "real_time": 2.0,
    },
    "BM_SymbolicGossip/33": {"exchanges": 1.0, "groups": 33.0, "real_time": 0.1},
    "BM_SymbolicCertify/48": {
        "calls": 2.0 ** 48, "groups": 48.0, "minimum_time": 1.0,
        "real_time": 10.0,
    },
    "BM_SymbolicCertifyDesigned/63": {
        "calls": 9.223372036854776e18, "groups": 630.0, "minimum_time": 1.0,
        "real_time": 100.0,
    },
    "BM_SymbolicCertifyThreads/1": {
        "groups": 47.0, "peak_frontier_subcubes": 7.0,
        "occupancy_claims": 11.0, "minimum_time": 1.0, "real_time": 8.0,
    },
    "BM_SymbolicCertifyThreads/4": {
        "groups": 47.0, "peak_frontier_subcubes": 7.0,
        "occupancy_claims": 11.0, "minimum_time": 1.0, "real_time": 3.0,
    },
}
BASE_SWEEP = [
    {"engine": "symbolic", "n": 40, "k": 1, "rounds": 40, "calls": 1.0,
     "groups": 40, "minimum_time": 1, "ok": True, "seconds": 3.0},
]


class GateHarness(unittest.TestCase):
    def run_gate(
        self,
        fresh_sched: dict | None,
        fresh_sweep: list | None,
        base_sched: dict | None = None,
        base_sweep: list | None = None,
        extra_args: list[str] | None = None,
        unreadable: bool = False,
    ) -> tuple[int, str]:
        base_sched = BASE_SCHED if base_sched is None else base_sched
        base_sweep = BASE_SWEEP if base_sweep is None else base_sweep
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            paths = {
                "--fresh-schedule": root / "fresh_sched.json",
                "--baseline-schedule": root / "base_sched.json",
                "--fresh-sweep": root / "fresh_sweep.jsonl",
                "--baseline-sweep": root / "base_sweep.jsonl",
            }
            if not unreadable:
                paths["--fresh-schedule"].write_text(
                    json.dumps(schedule_artifact(fresh_sched or {})))
            paths["--baseline-schedule"].write_text(
                json.dumps(schedule_artifact(base_sched)))
            paths["--fresh-sweep"].write_text(
                "\n".join(json.dumps(r) for r in (fresh_sweep or [])))
            paths["--baseline-sweep"].write_text(
                "\n".join(json.dumps(r) for r in base_sweep))
            argv = [a for k, v in paths.items() for a in (k, str(v))]
            argv += extra_args or []
            out, err = io.StringIO(), io.StringIO()
            with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
                status = check_bench.main(argv)
            return status, out.getvalue() + err.getvalue()


class SchedulePaths(GateHarness):
    def test_identical_artifacts_pass(self) -> None:
        status, out = self.run_gate(dict(BASE_SCHED), list(BASE_SWEEP))
        self.assertEqual(status, 0, out)
        self.assertIn("OK", out)

    def test_missing_gated_row_fails(self) -> None:
        fresh = {k: v for k, v in BASE_SCHED.items()
                 if k != "BM_SymbolicCertify/63"}
        status, out = self.run_gate(fresh, list(BASE_SWEEP))
        self.assertEqual(status, 1, out)
        self.assertIn("missing from the fresh recording", out)

    def test_counter_drift_fails(self) -> None:
        fresh = json.loads(json.dumps(BASE_SCHED))
        fresh["BM_SymbolicCertify/63"]["calls"] = 12345.0
        status, out = self.run_gate(fresh, list(BASE_SWEEP))
        self.assertEqual(status, 1, out)
        self.assertIn("drifted", out)
        self.assertIn("calls", out)

    def test_time_regression_beyond_tolerance_fails(self) -> None:
        fresh = json.loads(json.dumps(BASE_SCHED))
        fresh["BM_SymbolicCertify/63"]["real_time"] = 3.0  # 2.0s -> 3.0s
        status, out = self.run_gate(fresh, list(BASE_SWEEP))
        self.assertEqual(status, 1, out)
        self.assertIn("regressed", out)

    def test_time_regression_within_widened_tolerance_passes(self) -> None:
        fresh = json.loads(json.dumps(BASE_SCHED))
        fresh["BM_SymbolicCertify/63"]["real_time"] = 3.0
        status, out = self.run_gate(fresh, list(BASE_SWEEP),
                                    extra_args=["--tolerance", "0.60"])
        self.assertEqual(status, 0, out)

    def test_noise_floor_exempts_fast_rows(self) -> None:
        fresh = json.loads(json.dumps(BASE_SCHED))
        # 0.1s baseline is under the 0.5s floor: a 10x "regression" passes.
        fresh["BM_SymbolicGossip/33"]["real_time"] = 1.0
        status, out = self.run_gate(fresh, list(BASE_SWEEP))
        self.assertEqual(status, 0, out)

    def test_improvement_always_passes(self) -> None:
        fresh = json.loads(json.dumps(BASE_SCHED))
        fresh["BM_SymbolicCertify/63"]["real_time"] = 0.5
        status, out = self.run_gate(fresh, list(BASE_SWEEP))
        self.assertEqual(status, 0, out)


class ThreadRows(GateHarness):
    def test_thread_row_time_is_never_gated(self) -> None:
        # 8.0s -> 80.0s on the threads row: wall time there measures the
        # host's cores, so only counters are gated.
        fresh = json.loads(json.dumps(BASE_SCHED))
        fresh["BM_SymbolicCertifyThreads/1"]["real_time"] = 80.0
        status, out = self.run_gate(fresh, list(BASE_SWEEP))
        self.assertEqual(status, 0, out)

    def test_thread_counter_divergence_fails(self) -> None:
        # threads=4 reporting different groups than threads=1 is a
        # determinism bug even if both match their own baselines... but
        # drift vs baseline already fails; make the rows agree with the
        # baseline being stale instead: fresh rows diverge from each
        # other only.
        fresh = json.loads(json.dumps(BASE_SCHED))
        base = json.loads(json.dumps(BASE_SCHED))
        fresh["BM_SymbolicCertifyThreads/4"]["groups"] = 48.0
        base["BM_SymbolicCertifyThreads/4"]["groups"] = 48.0
        status, out = self.run_gate(fresh, list(BASE_SWEEP), base_sched=base)
        self.assertEqual(status, 1, out)
        self.assertIn("thread invariance", out)
        self.assertIn("bit-for-bit", out)


class RatioGate(GateHarness):
    def test_ratio_regression_fails_even_with_widened_tolerance(self) -> None:
        # Designed-63 slows from 100s to 300s while the 48 row holds:
        # the 10.0 committed ratio becomes 30.0.  A widened absolute
        # tolerance (CI's 1.5) lets the absolute row through; the ratio
        # gate must still fail.
        fresh = json.loads(json.dumps(BASE_SCHED))
        fresh["BM_SymbolicCertifyDesigned/63"]["real_time"] = 300.0
        status, out = self.run_gate(fresh, list(BASE_SWEEP),
                                    extra_args=["--tolerance", "2.5"])
        self.assertEqual(status, 1, out)
        self.assertIn("ratio gate", out)
        self.assertIn("machine-independent", out)

    def test_uniform_slowdown_passes_the_ratio_gate(self) -> None:
        # A 2x-slower runner moves both rows together: absolute times
        # need the widened tolerance, the ratio needs nothing.
        fresh = json.loads(json.dumps(BASE_SCHED))
        for row in ("BM_SymbolicCertify/48", "BM_SymbolicCertifyDesigned/63",
                    "BM_SymbolicCertify/63"):
            fresh[row]["real_time"] *= 2.0
        status, out = self.run_gate(fresh, list(BASE_SWEEP),
                                    extra_args=["--tolerance", "1.5"])
        self.assertEqual(status, 0, out)

    def test_ratio_improvement_passes(self) -> None:
        fresh = json.loads(json.dumps(BASE_SCHED))
        fresh["BM_SymbolicCertifyDesigned/63"]["real_time"] = 40.0
        status, out = self.run_gate(fresh, list(BASE_SWEEP))
        self.assertEqual(status, 0, out)


class SweepPaths(GateHarness):
    def test_missing_sweep_row_fails(self) -> None:
        status, out = self.run_gate(dict(BASE_SCHED), [])
        self.assertEqual(status, 1, out)
        self.assertIn("missing from the fresh sweep", out)

    def test_sweep_counter_drift_fails(self) -> None:
        fresh = json.loads(json.dumps(BASE_SWEEP))
        fresh[0]["ok"] = False
        status, out = self.run_gate(dict(BASE_SCHED), fresh)
        self.assertEqual(status, 1, out)
        self.assertIn("'ok' drifted", out)

    def test_ungated_engine_ignored(self) -> None:
        base = list(BASE_SWEEP) + [{"engine": "toy", "n": 5, "k": 1,
                                    "rounds": 99}]
        status, out = self.run_gate(dict(BASE_SCHED), list(BASE_SWEEP),
                                    base_sweep=base)
        self.assertEqual(status, 0, out)


class EscapeHatches(GateHarness):
    def test_skip_flag_short_circuits(self) -> None:
        status, out = self.run_gate(None, None, extra_args=["--skip"],
                                    unreadable=True)
        self.assertEqual(status, 0, out)
        self.assertIn("SKIPPED", out)

    def test_unreadable_artifact_is_exit_2(self) -> None:
        status, out = self.run_gate(None, list(BASE_SWEEP), unreadable=True)
        self.assertEqual(status, 2, out)
        self.assertIn("cannot read schedule artifact", out)


if __name__ == "__main__":
    unittest.main()
