#!/usr/bin/env python3
"""shc-lint — repo-specific invariants the compiler cannot enforce.

The symbolic engines certify 2^63-scale schedules; their verdicts lean on
conventions that are easy to break silently in review.  This lint walks
`src/` (stdlib only, no third-party deps) and enforces:

  checked-counter   Schedule/exchange/multiplicity counters in sim/,
                    gossip/, and mlbg/ must not use raw `+=`, `*=`,
                    `<<=`, `++`/`--` or plain arithmetic assignment —
                    they route through bits/checked.hpp
                    (checked_/saturating_ helpers), the PR 4 overflow
                    bug class.
  raw-thread        `std::thread` appears only in sim/worker_pool.hpp
                    (plus `std::thread::hardware_concurrency()` for
                    sizing).  Everything else shares the WorkerPool.
  assert-guard      `assert(` in graph/, coding/, labeling/ translation
                    units: a bare assert guarding caller input vanishes
                    under NDEBUG (the PR 2 bug class).  Input guards
                    throw std::invalid_argument; genuine internal
                    invariants carry an explicit allow-comment.
  nondeterminism    No `rand()`, `srand()`, `time()`, or default-seeded
                    `random_device` in src/ — reports must be bit-for-bit
                    reproducible; randomized helpers take a caller-seeded
                    engine.
  layering          `#include "shc/<module>/..."` edges must follow the
                    README module map (e.g. sim never includes mlbg or
                    gossip headers; bits/ never includes the obs flight
                    recorder).
  kernel-layer      The batched SoA kernel header (sim/subcube_batch.hpp)
                    sits below the rest of sim/: it may include only
                    shc/bits/ headers, so every consumer (frontier,
                    ledger, partition refiner) can build on it without
                    cycles and the scalar-fallback build stays minimal.
  timestamp         Clock reads (std::chrono steady_/system_/
                    high_resolution_clock) live only inside src/obs/ —
                    the flight recorder's contract is that timestamps
                    are measurements confined to trace files; a clock
                    anywhere else in src/ is a nondeterminism hazard for
                    verdicts and reports.
  duplicate-knob    The shared checking knobs (sampling, ledger and
                    collision budgets) are declared once, in
                    sim/check_options.hpp (CommonCheckOptions), and
                    inherited by every engine's options struct.
                    Re-declaring one of those members elsewhere
                    re-opens the drift this layout removed: two
                    defaults for the same knob, silently diverging.

Suppression: append `// shc-lint: allow(<rule>)` on the offending line
or the line directly above it, with a comment explaining why.  Extending
a whitelist means editing the tables below — do it in the same commit as
the code that needs it, and say why in the comment next to the entry.

Usage: python3 tools/shc_lint.py [--root DIR]
Exit status: 0 clean, 1 findings, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# --------------------------------------------------------------------------
# Rule tables (the whitelists).  Keep entries commented.
# --------------------------------------------------------------------------

# Counters whose raw mutation in sim/, gossip/, mlbg/ indicates the
# PR 4 bug class (u64 wrap poisoning a report).  `= 0` style resets and
# reads are fine; arithmetic must go through bits/checked.hpp.
CHECKED_COUNTERS = (
    "total_calls",
    "total_exchanges",
    "total_count_",
    "known_pairs",
    "informed_count",
    "occupancy_claims",
    "collision_candidates",
    "rounds_checked",
    "unions_computed",
    "union_cache_hits",
    "union_cache_misses",
    "reduce_tree_tasks",
)
CHECKED_COUNTER_DIRS = ("src/sim", "src/gossip", "src/mlbg", "src/api")

# std::thread is WorkerPool's private concern; sizing via
# hardware_concurrency() is allowed anywhere.
THREAD_ALLOWED_FILES = ("src/sim/include/shc/sim/worker_pool.hpp",)

# assert() policy applies to the modules whose functions take caller
# input directly (the PR 2 bug class lived in graph/).
ASSERT_DIRS = ("src/graph", "src/coding", "src/labeling")

# Kernel layer: headers that sit below their own module's layering set.
# subcube_batch.hpp is the leaf the hot paths build on — it may reach
# only into bits/ (its doc comment promises exactly this).
KERNEL_LAYER_FILES = {
    "src/sim/include/shc/sim/subcube_batch.hpp": {"bits"},
}

# Module layering: which "shc/<module>/" headers each module may include.
# Mirrors README's dependency map; src/include's umbrella header is the
# one deliberate exception (it includes everything).
LAYERING = {
    "bits": {"bits"},
    "obs": {"bits", "obs"},  # flight recorder: bits-only below, no engine deps
    "coding": {"bits", "coding"},
    "graph": {"bits", "graph"},
    "labeling": {"bits", "coding", "labeling"},
    "sim": {"bits", "graph", "obs", "sim"},
    "mlbg": {"bits", "graph", "labeling", "obs", "sim", "mlbg"},
    "gossip": {"bits", "obs", "sim", "mlbg", "gossip"},
    "baseline": {"bits", "graph", "sim", "baseline"},
    # The facade sits on top of every engine.  No other module lists
    # "api" here, so "nothing in src/ includes the facade" falls out of
    # the same table — only examples/ and tests/ consume it.
    "api": {"bits", "graph", "obs", "sim", "mlbg", "gossip", "api"},
}

# The shared checking knobs: declared once in CommonCheckOptions
# (sim/check_options.hpp), inherited by SymbolicCheckOptions and
# SymbolicGossipOptions.  A second *declaration* of any of these names
# in src/ is the duplicated-knob layout PR 10 collapsed (threads and
# pool are deliberately absent — those words are too generic to match
# declarations reliably; the distinctive knob names below are unique).
DUPLICATE_KNOBS = (
    "sample_groups_per_round",
    "sample_calls_per_group",
    "sample_seed",
    "ledger_budget_per_claim",
    "ledger_bucket_budget_base",
    "collision_budget",
    "max_collision_pairs",
)
KNOB_HOME = "src/sim/include/shc/sim/check_options.hpp"

# Clock reads are the flight recorder's private concern: trace
# timestamps are measurements, never inputs to a verdict, so the only
# src/ directory allowed to touch std::chrono clocks is src/obs/.
TIMESTAMP_ALLOWED_DIRS = ("src/obs",)

SUPPRESS_RE = re.compile(r"//\s*shc-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

COUNTER_MUTATION_RE = re.compile(
    r"\b(?:\w+(?:\.|->))*(" + "|".join(CHECKED_COUNTERS) + r")\s*"
    r"(\+=|-=|\*=|<<=|\+\+|--|=\s*[^=;]*(?:\+|\*|<<)[^;=]*;)"
)
THREAD_RE = re.compile(r"\bstd::thread\b(?!::hardware_concurrency)")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
NONDET_RES = (
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
)
TIMESTAMP_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"
)
# A declaration is "type-token, whitespace, knob name, then = / { / ;".
# Reads are always qualified (`sopt.collision_budget`) or bare inside an
# expression, so neither form has a type token + whitespace in front.
DUPLICATE_KNOB_RE = re.compile(
    r"\b[A-Za-z_][\w:]*\s+(" + "|".join(DUPLICATE_KNOBS) + r")\s*[={;]"
)
INCLUDE_RE = re.compile(r'#\s*include\s*"shc/([a-z]+)/')


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in ('"', "'"):
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (min(j, n - 1) - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Findings:
    def __init__(self) -> None:
        self.items: list[str] = []

    def add(self, path: pathlib.Path, line: int, rule: str, msg: str) -> None:
        self.items.append(f"{path}:{line}: [{rule}] {msg}")


def suppressions(
    raw_lines: list[str], code_lines: list[str]
) -> dict[int, set[str]]:
    """1-based line -> rules allowed there.

    An allow-comment covers its own line and the first code line below it
    (a contiguous block of comment-only lines between them — the usual
    shape of an explained annotation — does not break the link).
    """
    allowed: dict[int, set[str]] = {}
    comment_only = [
        raw.strip() != "" and code.strip() == ""
        for raw, code in zip(raw_lines, code_lines)
    ]
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        allowed.setdefault(idx, set()).update(rules)
        below = idx + 1
        while below <= len(raw_lines) and comment_only[below - 1]:
            below += 1
        allowed.setdefault(below, set()).update(rules)
    return allowed


def lint_file(path: pathlib.Path, rel: str, out: Findings) -> None:
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    code_lines = strip_comments_and_strings(raw).splitlines()
    allowed = suppressions(raw_lines, code_lines)

    def ok(lineno: int, rule: str) -> bool:
        return rule in allowed.get(lineno, ())

    in_counter_dir = rel.startswith(CHECKED_COUNTER_DIRS)
    in_assert_dir = rel.startswith(ASSERT_DIRS) and rel.endswith(".cpp")
    module = rel.split("/")[1] if rel.count("/") >= 1 else ""
    layer = LAYERING.get(module)
    kernel_layer = KERNEL_LAYER_FILES.get(rel)

    for lineno, line in enumerate(code_lines, start=1):
        if in_counter_dir and "checked_" not in line and "saturating_" not in line:
            m = COUNTER_MUTATION_RE.search(line)
            if m and not ok(lineno, "checked-counter"):
                out.add(
                    path, lineno, "checked-counter",
                    f"raw arithmetic on counter '{m.group(1)}' — route through "
                    "bits/checked.hpp (checked_acc_u64 / saturating_acc_u64)",
                )
        if rel not in THREAD_ALLOWED_FILES:
            if THREAD_RE.search(line) and not ok(lineno, "raw-thread"):
                out.add(
                    path, lineno, "raw-thread",
                    "std::thread outside sim/worker_pool.hpp — share the "
                    "WorkerPool instead",
                )
        if in_assert_dir and ASSERT_RE.search(line):
            if not ok(lineno, "assert-guard"):
                out.add(
                    path, lineno, "assert-guard",
                    "bare assert() vanishes under NDEBUG — throw "
                    "std::invalid_argument for caller input, or annotate a "
                    "genuine internal invariant with "
                    "// shc-lint: allow(assert-guard)",
                )
        for pattern, what in NONDET_RES:
            if pattern.search(line) and not ok(lineno, "nondeterminism"):
                out.add(
                    path, lineno, "nondeterminism",
                    f"{what} in src/ — reports must be reproducible; take a "
                    "caller-seeded std::mt19937_64 instead",
                )
        if rel != KNOB_HOME:
            m = DUPLICATE_KNOB_RE.search(line)
            if m and not ok(lineno, "duplicate-knob"):
                out.add(
                    path, lineno, "duplicate-knob",
                    f"member '{m.group(1)}' is declared by CommonCheckOptions "
                    "(sim/check_options.hpp) — inherit it there instead of "
                    "re-declaring a second default",
                )
        if not rel.startswith(TIMESTAMP_ALLOWED_DIRS):
            if TIMESTAMP_RE.search(line) and not ok(lineno, "timestamp"):
                out.add(
                    path, lineno, "timestamp",
                    "clock read outside src/obs/ — timestamps belong to the "
                    "flight recorder only (obs::trace_now_ns); verdicts and "
                    "reports must never depend on time",
                )
        if layer is not None:
            # Include paths are string literals, so match the raw line.
            m = INCLUDE_RE.search(raw_lines[lineno - 1])
            if m and m.group(1) not in layer and not ok(lineno, "layering"):
                out.add(
                    path, lineno, "layering",
                    f"module '{module}' must not include shc/{m.group(1)}/ "
                    f"headers (allowed: {', '.join(sorted(layer))})",
                )
        if kernel_layer is not None:
            m = INCLUDE_RE.search(raw_lines[lineno - 1])
            if m and m.group(1) not in kernel_layer and not ok(
                lineno, "kernel-layer"
            ):
                out.add(
                    path, lineno, "kernel-layer",
                    f"kernel header must stay below the rest of its module: "
                    f"only shc/{{{', '.join(sorted(kernel_layer))}}}/ "
                    f"includes are allowed, not shc/{m.group(1)}/",
                )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root", default=None,
        help="repository root (default: parent of this script's directory)",
    )
    args = ap.parse_args(argv)
    root = (
        pathlib.Path(args.root)
        if args.root
        else pathlib.Path(__file__).resolve().parent.parent
    )
    src = root / "src"
    if not src.is_dir():
        print(f"shc-lint: no src/ under {root}", file=sys.stderr)
        return 2

    out = Findings()
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = path.relative_to(root).as_posix()
        lint_file(path, rel, out)

    for item in out.items:
        print(item)
    if out.items:
        print(f"shc-lint: {len(out.items)} finding(s)", file=sys.stderr)
        return 1
    print("shc-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
