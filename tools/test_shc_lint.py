#!/usr/bin/env python3
"""Self-test for tools/shc_lint.py — each rule must fire on a minimal
violation and stay silent on the compliant / suppressed variant, so a
lint regression cannot silently stop guarding the tree."""

from __future__ import annotations

import contextlib
import io
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import shc_lint  # noqa: E402


class LintHarness(unittest.TestCase):
    def run_lint(self, files: dict[str, str]) -> tuple[int, str]:
        """Writes `files` (relative paths) into a scratch tree, lints it."""
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            for rel, text in files.items():
                path = root / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(text, encoding="utf-8")
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                status = shc_lint.main(["--root", str(root)])
            return status, buf.getvalue()

    def assert_finding(self, files: dict[str, str], rule: str) -> None:
        status, out = self.run_lint(files)
        self.assertEqual(status, 1, f"expected a finding, got:\n{out}")
        self.assertIn(f"[{rule}]", out)

    def assert_clean(self, files: dict[str, str]) -> None:
        status, out = self.run_lint(files)
        self.assertEqual(status, 0, f"expected clean, got:\n{out}")


class CheckedCounterRule(LintHarness):
    def test_raw_increment_flagged(self) -> None:
        self.assert_finding(
            {"src/sim/a.hpp": "void f() { stats_.total_calls += n; }\n"},
            "checked-counter",
        )

    def test_plus_plus_flagged(self) -> None:
        self.assert_finding(
            {"src/gossip/a.hpp": "void f() { total_exchanges++; }\n"},
            "checked-counter",
        )

    def test_assignment_with_arithmetic_flagged(self) -> None:
        self.assert_finding(
            {"src/mlbg/a.cpp": "void f() { rep.known_pairs = a + b; }\n"},
            "checked-counter",
        )

    def test_checked_helper_clean(self) -> None:
        self.assert_clean(
            {
                "src/sim/a.hpp":
                    "void f() { checked_acc_u64(stats_.total_calls, n); }\n"
                    "void g() { saturating_acc_u64(rep.known_pairs, m); }\n"
            }
        )

    def test_reset_and_reads_clean(self) -> None:
        self.assert_clean(
            {
                "src/sim/a.hpp":
                    "void f() { stats_.total_calls = 0; }\n"
                    "auto g() { return stats_.total_calls; }\n"
            }
        )

    def test_outside_counter_dirs_clean(self) -> None:
        self.assert_clean(
            {"src/graph/a.cpp": "void f() { total_calls += n; }\n"}
        )

    def test_comment_mention_clean(self) -> None:
        self.assert_clean(
            {"src/sim/a.hpp": "// total_calls += n would overflow\n"}
        )

    def test_suppression_honored(self) -> None:
        self.assert_clean(
            {
                "src/sim/a.hpp":
                    "// shc-lint: allow(checked-counter) — test fixture\n"
                    "void f() { stats_.total_calls += n; }\n"
            }
        )


class RawThreadRule(LintHarness):
    def test_thread_outside_pool_flagged(self) -> None:
        self.assert_finding(
            {"src/sim/a.hpp": "std::thread t([]{});\n"}, "raw-thread"
        )

    def test_worker_pool_itself_clean(self) -> None:
        self.assert_clean(
            {
                "src/sim/include/shc/sim/worker_pool.hpp":
                    "std::thread t([]{});\n"
            }
        )

    def test_hardware_concurrency_clean(self) -> None:
        self.assert_clean(
            {"src/sim/a.hpp": "auto n = std::thread::hardware_concurrency();\n"}
        )


class AssertGuardRule(LintHarness):
    def test_bare_assert_flagged(self) -> None:
        self.assert_finding(
            {"src/graph/src/a.cpp": "void f(int n) { assert(n >= 1); }\n"},
            "assert-guard",
        )

    def test_header_not_in_scope(self) -> None:
        self.assert_clean(
            {"src/graph/include/shc/graph/a.hpp": "#define X assert(1)\n"}
        )

    def test_multiline_allow_comment_covers_assert(self) -> None:
        self.assert_clean(
            {
                "src/coding/src/a.cpp":
                    "// shc-lint: allow(assert-guard) — internal invariant,\n"
                    "// explained over two comment lines.\n"
                    "void f(int n) { assert(n >= 1); }\n"
            }
        )

    def test_static_assert_clean(self) -> None:
        self.assert_clean(
            {"src/graph/src/a.cpp": "static_assert(sizeof(int) == 4);\n"}
        )


class NondeterminismRule(LintHarness):
    def test_rand_flagged(self) -> None:
        self.assert_finding(
            {"src/sim/a.cpp": "int f() { return rand(); }\n"}, "nondeterminism"
        )

    def test_time_flagged(self) -> None:
        self.assert_finding(
            {"src/bits/a.cpp": "auto t = time(nullptr);\n"}, "nondeterminism"
        )

    def test_random_device_flagged(self) -> None:
        self.assert_finding(
            {"src/sim/a.cpp": "std::random_device rd;\n"}, "nondeterminism"
        )

    def test_seeded_engine_clean(self) -> None:
        self.assert_clean(
            {"src/graph/a.cpp": "std::mt19937_64 rng(seed);\n"}
        )


class LayeringRule(LintHarness):
    def test_sim_including_mlbg_flagged(self) -> None:
        self.assert_finding(
            {"src/sim/a.hpp": '#include "shc/mlbg/spec.hpp"\n'}, "layering"
        )

    def test_sim_including_gossip_flagged(self) -> None:
        self.assert_finding(
            {"src/sim/a.hpp": '#include "shc/gossip/gossip.hpp"\n'}, "layering"
        )

    def test_graph_including_coding_flagged(self) -> None:
        self.assert_finding(
            {"src/graph/a.cpp": '#include "shc/coding/gf2.hpp"\n'}, "layering"
        )

    def test_allowed_edges_clean(self) -> None:
        self.assert_clean(
            {
                "src/gossip/a.hpp": '#include "shc/mlbg/spec.hpp"\n',
                "src/mlbg/b.hpp": '#include "shc/sim/subcube.hpp"\n',
                "src/sim/c.hpp": '#include "shc/graph/graph.hpp"\n',
            }
        )

    def test_umbrella_dir_exempt(self) -> None:
        self.assert_clean(
            {"src/include/shc/shc.hpp": '#include "shc/gossip/gossip.hpp"\n'}
        )


class TimestampRule(LintHarness):
    def test_steady_clock_outside_obs_flagged(self) -> None:
        self.assert_finding(
            {"src/sim/a.hpp": "auto t = std::chrono::steady_clock::now();\n"},
            "timestamp",
        )

    def test_high_resolution_clock_flagged(self) -> None:
        self.assert_finding(
            {
                "src/bits/a.cpp":
                    "using clk = std::chrono::high_resolution_clock;\n"
            },
            "timestamp",
        )

    def test_obs_itself_clean(self) -> None:
        self.assert_clean(
            {
                "src/obs/src/recorder.cpp":
                    "auto t = std::chrono::steady_clock::now();\n"
            }
        )

    def test_comment_mention_clean(self) -> None:
        self.assert_clean(
            {"src/sim/a.hpp": "// steady_clock lives only in src/obs/\n"}
        )

    def test_suppression_honored(self) -> None:
        self.assert_clean(
            {
                "src/sim/a.hpp":
                    "// shc-lint: allow(timestamp) — test fixture\n"
                    "auto t = std::chrono::steady_clock::now();\n"
            }
        )


class ObsLayering(LintHarness):
    def test_bits_including_obs_flagged(self) -> None:
        self.assert_finding(
            {"src/bits/a.hpp": '#include "shc/obs/recorder.hpp"\n'}, "layering"
        )

    def test_obs_including_sim_flagged(self) -> None:
        self.assert_finding(
            {"src/obs/a.hpp": '#include "shc/sim/subcube.hpp"\n'}, "layering"
        )

    def test_kernel_including_obs_flagged(self) -> None:
        self.assert_finding(
            {
                "src/sim/include/shc/sim/subcube_batch.hpp":
                    '#include "shc/obs/recorder.hpp"\n'
            },
            "kernel-layer",
        )

    def test_engines_including_obs_clean(self) -> None:
        self.assert_clean(
            {
                "src/sim/a.hpp": '#include "shc/obs/recorder.hpp"\n',
                "src/mlbg/b.hpp": '#include "shc/obs/recorder.hpp"\n',
                "src/gossip/c.hpp": '#include "shc/obs/recorder.hpp"\n',
                "src/obs/d.hpp": '#include "shc/bits/vertex.hpp"\n',
            }
        )


class NewCheckedCounters(LintHarness):
    def test_rounds_checked_raw_flagged(self) -> None:
        self.assert_finding(
            {"src/sim/a.hpp": "void f() { stats_.rounds_checked++; }\n"},
            "checked-counter",
        )

    def test_union_cache_raw_flagged(self) -> None:
        self.assert_finding(
            {"src/sim/a.cpp": "void f() { stats_.union_cache_misses += 1; }\n"},
            "checked-counter",
        )

    def test_saturating_clean(self) -> None:
        self.assert_clean(
            {
                "src/sim/a.cpp":
                    "void f() { saturating_acc_u64(stats_.reduce_tree_tasks, "
                    "n); }\n"
            }
        )


class KernelLayerRule(LintHarness):
    KERNEL = "src/sim/include/shc/sim/subcube_batch.hpp"

    def test_kernel_including_sim_flagged(self) -> None:
        # Even an include its own module's layering allows (sim -> sim)
        # is out of bounds for the kernel header.
        self.assert_finding(
            {self.KERNEL: '#include "shc/sim/subcube.hpp"\n'}, "kernel-layer"
        )

    def test_kernel_including_graph_flagged(self) -> None:
        self.assert_finding(
            {self.KERNEL: '#include "shc/graph/graph.hpp"\n'}, "kernel-layer"
        )

    def test_bits_and_system_headers_clean(self) -> None:
        self.assert_clean(
            {
                self.KERNEL:
                    "#include <cstdint>\n"
                    "#include <vector>\n"
                    '#include "shc/bits/vertex.hpp"\n'
            }
        )

    def test_other_sim_headers_unaffected(self) -> None:
        self.assert_clean(
            {
                "src/sim/include/shc/sim/subcube.hpp":
                    '#include "shc/sim/subcube_batch.hpp"\n'
            }
        )


class DuplicateKnobRule(LintHarness):
    def test_redeclared_knob_flagged(self) -> None:
        self.assert_finding(
            {
                "src/mlbg/a.hpp":
                    "struct Opt { std::uint64_t sample_seed = 1; };\n"
            },
            "duplicate-knob",
        )

    def test_redeclared_budget_flagged(self) -> None:
        self.assert_finding(
            {
                "src/gossip/a.hpp":
                    "struct Opt { std::uint64_t collision_budget{8}; };\n"
            },
            "duplicate-knob",
        )

    def test_home_header_clean(self) -> None:
        self.assert_clean(
            {
                "src/sim/include/shc/sim/check_options.hpp":
                    "struct CommonCheckOptions { std::uint64_t sample_seed = "
                    "0x5eedULL; };\n"
            }
        )

    def test_qualified_reads_clean(self) -> None:
        self.assert_clean(
            {
                "src/sim/a.hpp":
                    "void f() { auto s = sopt_.sample_seed; }\n"
                    "bool g() { return budget < sopt_.collision_budget; }\n"
            }
        )

    def test_suppression_honored(self) -> None:
        self.assert_clean(
            {
                "src/sim/a.hpp":
                    "// shc-lint: allow(duplicate-knob) — test fixture\n"
                    "struct Opt { std::uint64_t sample_seed = 1; };\n"
            }
        )


class ApiLayering(LintHarness):
    def test_api_including_engines_clean(self) -> None:
        self.assert_clean(
            {
                "src/api/a.hpp": '#include "shc/mlbg/broadcast.hpp"\n',
                "src/api/b.cpp":
                    '#include "shc/gossip/symbolic_gossip.hpp"\n'
                    '#include "shc/sim/congestion.hpp"\n'
                    '#include "shc/obs/recorder.hpp"\n',
            }
        )

    def test_api_including_baseline_flagged(self) -> None:
        self.assert_finding(
            {"src/api/a.hpp": '#include "shc/baseline/path_star.hpp"\n'},
            "layering",
        )

    def test_engines_including_api_flagged(self) -> None:
        # Nothing below the facade may reach up into it.
        self.assert_finding(
            {"src/gossip/a.hpp": '#include "shc/api/certify.hpp"\n'}, "layering"
        )

    def test_sim_including_api_flagged(self) -> None:
        self.assert_finding(
            {"src/sim/a.cpp": '#include "shc/api/serve.hpp"\n'}, "layering"
        )


class RealTree(LintHarness):
    def test_repo_is_clean(self) -> None:
        """The actual tree must lint clean — this is the ctest gate."""
        root = pathlib.Path(__file__).resolve().parent.parent
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            status = shc_lint.main(["--root", str(root)])
        self.assertEqual(status, 0, f"repo lint failures:\n{buf.getvalue()}")


if __name__ == "__main__":
    unittest.main()
