// Flight-recorder contract suite.
//
// Contract under test (the hard observability contract of src/obs/):
// disabled call sites are no-ops that never allocate; the merged event
// order is deterministic run over run at every thread count (the
// (track, seq) merge key is assigned in engine-thread program order —
// timestamps exist only in the trace files); validation reports are
// bit-for-bit identical with tracing on or off, on clean and on failing
// schedules, for broadcast and gossip; and the two sinks emit
// structurally valid Chrome trace_event JSON / per-round JSONL.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/params.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/mlbg/symbolic_broadcast.hpp"
#include "shc/gossip/symbolic_gossip.hpp"
#include "shc/obs/recorder.hpp"
#include "shc/sim/symbolic_validator.hpp"

// ---- global allocation counter -----------------------------------------
//
// Same pattern as bench_schedule's zero-allocation proof: the global
// operator new is replaced with a counting hook, so "disabled tracing
// allocates nothing" is a measured fact, not a reading of the code.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace shc {
namespace {

// ---- disabled mode ------------------------------------------------------

TEST(DisabledMode, MacrosAreNoOpsWithZeroAllocations) {
  ASSERT_EQ(obs::TraceRecorder::active(), nullptr)
      << "another test leaked an active recorder";
  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 10000; ++i) {
    SHC_TRACE_SCOPE("disabled_scope");
    SHC_TRACE_COUNTER("disabled_counter", i);
    SHC_TRACE_INSTANT("disabled_instant");
    SHC_TRACE_ROUND(i);
  }
  EXPECT_EQ(g_alloc_count.load() - before, 0u)
      << "disabled trace macros must not allocate";
}

TEST(DisabledMode, OnlyOneRecorderCanBeActive) {
  obs::TraceSession session({});
  EXPECT_EQ(obs::TraceRecorder::active(), &session.recorder());
  EXPECT_THROW(obs::TraceSession second({}), std::runtime_error);
  // The failed install must not have clobbered the active recorder.
  EXPECT_EQ(obs::TraceRecorder::active(), &session.recorder());
}

// ---- deterministic merge ------------------------------------------------

/// The deterministic part of an event: everything except the
/// timestamp/duration/measured-value payload.  Counter *names* are kept
/// (which gauges fire, and in what order, is part of the contract);
/// their values can be measurements (rss_hwm_kb, pool_busy_ns).
using EventSig = std::tuple<std::uint32_t, std::uint64_t, int, std::string>;

std::vector<EventSig> traced_run_signature(int n, int threads) {
  obs::TraceSession session({});  // no sinks: events only
  ValidationOptions opt;
  const auto spec = design_sparse_hypercube(n, 2);
  opt.k = spec.k();
  SymbolicCheckOptions sopt;
  sopt.threads = threads;
  const auto cert = certify_broadcast_symbolic(spec, 0, opt, sopt);
  EXPECT_TRUE(cert.report.ok) << cert.report.error;
  std::vector<EventSig> sig;
  for (const obs::TraceEvent& e : session.recorder().merged_events()) {
    sig.emplace_back(e.track, e.seq, static_cast<int>(e.kind),
                     std::string(e.name));
  }
  return sig;
}

TEST(DeterministicMerge, EventOrderIsReproducibleAtEveryThreadCount) {
  for (const int threads : {1, 4}) {
    const auto first = traced_run_signature(16, threads);
    const auto second = traced_run_signature(16, threads);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second)
        << "merged event order drifted between identical runs at threads="
        << threads;
  }
}

TEST(DeterministicMerge, RoundMarksMatchTheReportedRounds) {
  obs::TraceSession session({});
  ValidationOptions opt;
  const auto spec = design_sparse_hypercube(14, 2);
  opt.k = spec.k();
  const auto cert = certify_broadcast_symbolic(spec, 0, opt);
  ASSERT_TRUE(cert.report.ok) << cert.report.error;
  int rounds = 0;
  std::uint64_t prev_seq = 0;
  bool have_prev = false;
  for (const obs::TraceEvent& e : session.recorder().merged_events()) {
    ASSERT_EQ(e.track, obs::kMainTrack)
        << "the engines record on the main track only";
    if (have_prev) {
      EXPECT_GT(e.seq, prev_seq) << "merge order must be strictly by seq";
    }
    prev_seq = e.seq;
    have_prev = true;
    if (e.kind == obs::EventKind::kRound) ++rounds;
  }
  EXPECT_EQ(rounds, cert.report.rounds);
}

// ---- report parity ------------------------------------------------------

TEST(ReportParity, CleanBroadcastIsBitForBitIdenticalTracingOnOff) {
  const auto spec = design_sparse_hypercube(12, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto plain = certify_broadcast_symbolic(spec, 0, opt);
  SymbolicCertification traced;
  {
    obs::TraceSession session({});
    traced = certify_broadcast_symbolic(spec, 0, opt);
  }
  EXPECT_TRUE(plain.report == traced.report);
  EXPECT_EQ(plain.checks.groups, traced.checks.groups);
  EXPECT_EQ(plain.checks.peak_frontier_subcubes,
            traced.checks.peak_frontier_subcubes);
  EXPECT_EQ(plain.checks.occupancy_claims, traced.checks.occupancy_claims);
  EXPECT_EQ(plain.checks.rounds_checked, traced.checks.rounds_checked);
  EXPECT_EQ(plain.checks.reduce_tree_tasks, traced.checks.reduce_tree_tasks);
}

TEST(ReportParity, FailingScheduleIsBitForBitIdenticalTracingOnOff) {
  const auto spec = design_sparse_hypercube(10, 2);
  const SpecView view(spec);
  ValidationOptions opt;
  opt.k = spec.k();
  auto truncated = make_symbolic_broadcast_schedule(spec, 0);
  truncated.rounds.pop_back();
  const auto plain = validate_broadcast_symbolic(view, truncated, opt);
  ValidationReport traced;
  {
    obs::TraceSession session({});
    traced = validate_broadcast_symbolic(view, truncated, opt);
  }
  ASSERT_FALSE(plain.ok);
  EXPECT_TRUE(plain == traced)
      << "traced failure: \"" << traced.error << "\" vs \"" << plain.error
      << '"';
}

TEST(ReportParity, GossipIsBitForBitIdenticalTracingOnOff) {
  const auto spec = design_sparse_hypercube(10, 2);
  const auto plain = certify_gossip_symbolic(spec, 0);
  SymbolicGossipCertification traced;
  {
    obs::TraceSession session({});
    traced = certify_gossip_symbolic(spec, 0);
  }
  EXPECT_TRUE(plain.report == traced.report);
  EXPECT_EQ(plain.checks.groups, traced.checks.groups);
  EXPECT_EQ(plain.checks.rounds_checked, traced.checks.rounds_checked);
  EXPECT_EQ(plain.checks.classes.peak_classes,
            traced.checks.classes.peak_classes);
  EXPECT_EQ(plain.checks.classes.union_cache_hits,
            traced.checks.classes.union_cache_hits);
  EXPECT_EQ(plain.checks.classes.union_cache_misses,
            traced.checks.classes.union_cache_misses);
}

TEST(ReportParity, ThreadCountsAgreeWhileTraced) {
  const auto spec = design_sparse_hypercube(16, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  SymbolicCertification reports[2];
  int i = 0;
  for (const int threads : {1, 4}) {
    obs::TraceSession session({});
    SymbolicCheckOptions sopt;
    sopt.threads = threads;
    reports[i++] = certify_broadcast_symbolic(spec, 0, opt, sopt);
  }
  EXPECT_TRUE(reports[0].report == reports[1].report);
  EXPECT_EQ(reports[0].checks.groups, reports[1].checks.groups);
  EXPECT_EQ(reports[0].checks.rounds_checked, reports[1].checks.rounds_checked);
}

// ---- sinks --------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::size_t count_occurrences(const std::string& hay, const std::string& pin) {
  std::size_t count = 0;
  for (std::size_t at = hay.find(pin); at != std::string::npos;
       at = hay.find(pin, at + pin.size())) {
    ++count;
  }
  return count;
}

TEST(Sinks, ChromeTraceAndRoundJsonlAreStructurallyValid) {
  const std::string chrome = "trace_recorder_test.tmp.trace.json";
  const std::string jsonl = "trace_recorder_test.tmp.rounds.jsonl";
  const auto spec = design_sparse_hypercube(12, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  int rounds = 0;
  {
    obs::TraceSession session({chrome, jsonl});
    const auto cert = certify_broadcast_symbolic(spec, 0, opt);
    ASSERT_TRUE(cert.report.ok) << cert.report.error;
    rounds = cert.report.rounds;
  }  // session destructor flushes both sinks

  const std::string trace = slurp(chrome);
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(trace.substr(trace.size() - 3), "]}\n");
  EXPECT_GT(count_occurrences(trace, "\"ph\":\"X\""), 0u) << "no phase scopes";
  EXPECT_GT(count_occurrences(trace, "\"ph\":\"C\""), 0u) << "no counters";
  EXPECT_EQ(count_occurrences(trace, "\"args\":{\"round\":"),
            static_cast<std::size_t>(rounds));

  const std::string rows = slurp(jsonl);
  std::istringstream lines(rows);
  std::string line;
  int row_count = 0;
  bool saw_tail = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.rfind("{\"round\":", 0), 0u) << line;
    EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"counters\":{"), std::string::npos) << line;
    EXPECT_NE(line.find("\"phases_ms\":{"), std::string::npos) << line;
    if (line.rfind("{\"round\":-1,", 0) == 0) saw_tail = true;
    ++row_count;
  }
  // One row per round mark plus the endgame tail window.
  EXPECT_EQ(row_count, rounds + 1);
  EXPECT_TRUE(saw_tail) << "the endgame after the last mark needs a -1 row";
  EXPECT_NE(rows.find("\"frontier_subcubes\":"), std::string::npos);
  EXPECT_NE(rows.find("\"rss_hwm_kb\":"), std::string::npos);

  std::remove(chrome.c_str());
  std::remove(jsonl.c_str());
}

TEST(Sinks, TraceOptionsFromBaseFollowsTheSuffixConvention) {
  const obs::TraceOptions chrome = obs::trace_options_from_base("x.json");
  EXPECT_EQ(chrome.chrome_path, "x.json");
  EXPECT_TRUE(chrome.jsonl_path.empty());

  const obs::TraceOptions jsonl = obs::trace_options_from_base("x.jsonl");
  EXPECT_TRUE(jsonl.chrome_path.empty());
  EXPECT_EQ(jsonl.jsonl_path, "x.jsonl");

  const obs::TraceOptions both = obs::trace_options_from_base("runs/x");
  EXPECT_EQ(both.chrome_path, "runs/x.trace.json");
  EXPECT_EQ(both.jsonl_path, "runs/x.rounds.jsonl");
}

TEST(Sinks, FromEnvHonorsShcTrace) {
  unsetenv("SHC_TRACE");
  EXPECT_EQ(obs::TraceSession::from_env(), nullptr);

  setenv("SHC_TRACE", "trace_recorder_test.tmp.env", 1);
  {
    auto session = obs::TraceSession::from_env();
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(obs::TraceRecorder::active(), &session->recorder());
    SHC_TRACE_ROUND(1);
  }
  unsetenv("SHC_TRACE");
  EXPECT_EQ(obs::TraceRecorder::active(), nullptr);
  // The env-configured session wrote both default sinks.
  std::ifstream chrome("trace_recorder_test.tmp.env.trace.json");
  EXPECT_TRUE(chrome.is_open());
  std::ifstream jsonl("trace_recorder_test.tmp.env.rounds.jsonl");
  EXPECT_TRUE(jsonl.is_open());
  std::remove("trace_recorder_test.tmp.env.trace.json");
  std::remove("trace_recorder_test.tmp.env.rounds.jsonl");
}

TEST(Sinks, UnwritablePathFailsTheWriteNotTheRun) {
  obs::TraceSession session({});
  SHC_TRACE_ROUND(1);
  EXPECT_FALSE(session.recorder().write_chrome_trace(
      "/nonexistent-dir/trace.json"));
  EXPECT_FALSE(session.recorder().write_round_jsonl(
      "/nonexistent-dir/rounds.jsonl"));
}

}  // namespace
}  // namespace shc
