// Unit tests for the flat arena-backed schedule engine: the cursor
// builder, round/call views, the legacy conversion shim, and the
// allocation-shape guarantees the producers rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "shc/baseline/hypercube_broadcast.hpp"
#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/params.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/congestion.hpp"
#include "shc/sim/flat_schedule.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/validator.hpp"

namespace shc {
namespace {

FlatSchedule q2_flat() {
  // Q_2 from 00: round 1: 00->10; round 2: 00->01, 10->11.
  FlatSchedule s;
  s.source = 0b00;
  s.begin_round();
  s.add_call({0b00, 0b10});
  s.begin_round();
  s.add_call({0b00, 0b01});
  s.add_call({0b10, 0b11});
  return s;
}

TEST(FlatSchedule, CursorBuilderAndViews) {
  const FlatSchedule s = q2_flat();
  EXPECT_EQ(s.num_rounds(), 2);
  EXPECT_EQ(s.num_calls(), 3u);
  EXPECT_EQ(s.num_path_vertices(), 6u);
  EXPECT_EQ(s.max_call_length(), 1);

  ASSERT_EQ(s.round(0).size(), 1u);
  ASSERT_EQ(s.round(1).size(), 2u);
  const FlatSchedule::CallView c = s.round(1)[1];
  EXPECT_EQ(c.caller(), 0b10u);
  EXPECT_EQ(c.receiver(), 0b11u);
  EXPECT_EQ(c.length(), 1);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 0b10u);

  // Range-for over a round yields the calls in insertion order.
  std::vector<Vertex> callers;
  for (const FlatSchedule::CallView call : s.round(1)) {
    callers.push_back(call.caller());
  }
  EXPECT_EQ(callers, (std::vector<Vertex>{0b00, 0b10}));
}

TEST(FlatSchedule, RoundViewIteratorIsAConformingForwardIterator) {
  using It = FlatSchedule::RoundView::iterator;
  static_assert(std::forward_iterator<It>,
                "RoundView::iterator must model std::forward_iterator");
  // The C++20 concept dispatches on iterator_concept; the C++17 traits
  // category honestly stays input (by-value proxy reference).
  static_assert(std::is_same_v<std::iterator_traits<It>::iterator_category,
                               std::input_iterator_tag>);
  static_assert(std::is_same_v<std::iterator_traits<It>::value_type,
                               FlatSchedule::CallView>);

  const FlatSchedule s = q2_flat();
  const FlatSchedule::RoundView round = s.round(1);

  // std::distance and <algorithm> now work over a round.
  EXPECT_EQ(std::distance(round.begin(), round.end()), 2);
  EXPECT_EQ(std::count_if(round.begin(), round.end(),
                          [](FlatSchedule::CallView c) { return c.length() == 1; }),
            2);

  // Post-increment returns the pre-increment position.
  It it = round.begin();
  const It old = it++;
  EXPECT_EQ((*old).caller(), 0b00u);
  EXPECT_EQ((*it).caller(), 0b10u);
  EXPECT_EQ(++it, round.end());
}

TEST(FlatSchedule, IncrementalCallConstruction) {
  FlatSchedule s;
  s.source = 0;
  s.begin_round();
  s.push_vertex(0);
  s.push_vertex(1);
  EXPECT_EQ(s.last_vertex(), 1u);
  s.push_vertex(3);
  s.end_call();
  EXPECT_EQ(s.num_calls(), 1u);
  EXPECT_EQ(s.call(0).length(), 2);
  EXPECT_EQ(s.call(0).receiver(), 3u);
}

TEST(FlatSchedule, TruncateRounds) {
  FlatSchedule s = q2_flat();
  s.truncate_rounds(1);
  EXPECT_EQ(s.num_rounds(), 1);
  EXPECT_EQ(s.num_calls(), 1u);
  EXPECT_EQ(s.num_path_vertices(), 2u);
  s.truncate_rounds(0);
  EXPECT_EQ(s.num_rounds(), 0);
  EXPECT_EQ(s.num_calls(), 0u);
  // The truncated schedule can keep growing.
  s.begin_round();
  s.add_call({0b00, 0b01});
  EXPECT_EQ(s.num_calls(), 1u);
}

TEST(FlatSchedule, LegacyShimRoundTripIsLossless) {
  const FlatSchedule flat = q2_flat();
  const BroadcastSchedule legacy = flat.to_legacy();
  ASSERT_EQ(legacy.rounds.size(), 2u);
  EXPECT_EQ(legacy.source, flat.source);
  EXPECT_EQ(legacy.num_calls(), flat.num_calls());
  EXPECT_EQ(legacy.max_call_length(), flat.max_call_length());
  EXPECT_EQ(legacy.rounds[1].calls[0].path, (std::vector<Vertex>{0b00, 0b01}));

  const FlatSchedule back = FlatSchedule::from_legacy(legacy);
  EXPECT_TRUE(back == flat);
}

TEST(FlatSchedule, ShimPreservesEmptyRoundsAndDegenerateCalls) {
  BroadcastSchedule legacy;
  legacy.source = 1;
  legacy.rounds.emplace_back();  // empty round
  legacy.rounds.push_back(Round{{Call{{0}}, Call{{}}}});
  const FlatSchedule flat = FlatSchedule::from_legacy(legacy);
  EXPECT_EQ(flat.num_rounds(), 2);
  EXPECT_TRUE(flat.round(0).empty());
  ASSERT_EQ(flat.round(1).size(), 2u);
  EXPECT_EQ(flat.round(1)[0].size(), 1u);
  EXPECT_TRUE(flat.round(1)[1].empty());
  // ... and the round trip back re-materializes them verbatim.
  const BroadcastSchedule back = flat.to_legacy();
  ASSERT_EQ(back.rounds.size(), 2u);
  EXPECT_TRUE(back.rounds[0].calls.empty());
  EXPECT_TRUE(back.rounds[1].calls[1].path.empty());
}

TEST(FlatSchedule, ValidatesThroughConcreteAndTypeErasedOracles) {
  const FlatSchedule s = q2_flat();
  const HypercubeView q2(2);
  // Concrete (devirtualized) instantiation.
  const auto direct = validate_minimum_time_k_line(q2, s, 1);
  EXPECT_TRUE(direct.ok) << direct.error;
  EXPECT_TRUE(direct.minimum_time);
  // Type-erased adapter instantiation — identical verdict.
  const NetworkView& erased = q2;
  const auto virt = validate_minimum_time_k_line(erased, s, 1);
  EXPECT_TRUE(virt.ok) << virt.error;
  EXPECT_EQ(virt.total_calls, direct.total_calls);
}

TEST(FlatSchedule, SpecViewValidatesWithoutMaterialization) {
  const auto spec = design_sparse_hypercube(12, 2);
  const auto schedule = make_broadcast_schedule(spec, 7);
  const SpecView view(spec);
  const auto rep = validate_minimum_time_k_line(view, schedule, spec.k());
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(rep.minimum_time);
  EXPECT_EQ(rep.informed, spec.num_vertices());
  EXPECT_LE(rep.max_call_length, spec.k());
}

TEST(FlatSchedule, ProducerReservationsAreExactEnoughToAvoidGrowth) {
  // The binomial producer reserves its arenas up front; growing the
  // schedule must not reallocate (pointer stability of the first call's
  // data across construction is implied by capacity sufficiency, which
  // heap_bytes() exposes: capacity in bytes equals the final footprint
  // computed from counts).
  const auto schedule = hypercube_binomial_broadcast(10, 0);
  EXPECT_EQ(schedule.num_calls(), cube_order(10) - 1);
  EXPECT_EQ(schedule.num_path_vertices(), 2 * (cube_order(10) - 1));
  EXPECT_LE(schedule.heap_bytes(),
            (2 * (cube_order(10) - 1)) * sizeof(Vertex) +
                cube_order(10) * sizeof(std::size_t) + 16 * sizeof(std::size_t));
}

TEST(FlatSchedule, DropCallsPreservesRoundStructure) {
  const auto spec = SparseHypercubeSpec::construct_base(6, 2);
  const auto schedule = make_broadcast_schedule(spec, 0);
  std::mt19937_64 rng(5);
  const FlatSchedule degraded = drop_calls(schedule, 0.5, rng);
  EXPECT_EQ(degraded.num_rounds(), schedule.num_rounds());
  EXPECT_LT(degraded.num_calls(), schedule.num_calls());
  EXPECT_EQ(degraded.source, schedule.source);
}

TEST(FlatSchedule, FormatMatchesLegacyFormatter) {
  const FlatSchedule flat = q2_flat();
  EXPECT_EQ(format_schedule(flat, 2), format_schedule(flat.to_legacy(), 2));
  EXPECT_NE(format_schedule(flat, 2).find("broadcast from 00 in 2 round(s)"),
            std::string::npos);
}

}  // namespace
}  // namespace shc
