// Tests for Condition-A labelings (Section 3, Example 1, Lemma 2).
#include <gtest/gtest.h>

#include <stdexcept>

#include "shc/graph/algorithms.hpp"
#include "shc/graph/generators.hpp"
#include "shc/labeling/labeling.hpp"

namespace shc {
namespace {

TEST(Labeling, TrivialAlwaysSatisfiesConditionA) {
  for (int m = 1; m <= 8; ++m) {
    EXPECT_TRUE(trivial_labeling(m).satisfies_condition_a());
  }
}

TEST(Labeling, Example1M2MatchesPaper) {
  const CubeLabeling f = example1_labeling_m2();
  EXPECT_EQ(f.num_labels(), 2u);
  EXPECT_EQ(f.at(0b00), f.at(0b11));
  EXPECT_EQ(f.at(0b01), f.at(0b10));
  EXPECT_NE(f.at(0b00), f.at(0b01));
  EXPECT_TRUE(f.satisfies_condition_a());
}

TEST(Labeling, Example1M3MatchesPaper) {
  const CubeLabeling f = example1_labeling_m3();
  EXPECT_EQ(f.num_labels(), 4u);
  EXPECT_EQ(f.at(0b000), f.at(0b111));
  EXPECT_EQ(f.at(0b001), f.at(0b110));
  EXPECT_EQ(f.at(0b010), f.at(0b101));
  EXPECT_EQ(f.at(0b011), f.at(0b100));
  EXPECT_TRUE(f.satisfies_condition_a());
}

TEST(Labeling, HammingAchievesUpperBound) {
  for (int p : {1, 2, 3}) {
    const CubeLabeling f = hamming_labeling(p);
    EXPECT_EQ(f.m(), (1 << p) - 1);
    EXPECT_EQ(f.num_labels(), static_cast<Label>(f.m() + 1));  // Lemma 2 upper bound
    EXPECT_TRUE(f.satisfies_condition_a());
  }
}

class Lemma2Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma2Property, SatisfiesConditionAWithPromisedLabels) {
  const int m = GetParam();
  const CubeLabeling f = lemma2_labeling(m);
  EXPECT_EQ(f.m(), m);
  EXPECT_TRUE(f.satisfies_condition_a());
  // Lemma 2: lambda >= floor(m/2) + 1, and never above m + 1.
  EXPECT_GE(f.num_labels(), static_cast<Label>(m / 2 + 1));
  EXPECT_LE(f.num_labels(), static_cast<Label>(m + 1));
  EXPECT_EQ(f.num_labels(), lemma2_num_labels(m));
}

TEST_P(Lemma2Property, EveryLabelClassDominatesQm) {
  const int m = GetParam();
  if (m > 10) GTEST_SKIP() << "domination check materializes Q_m";
  const CubeLabeling f = lemma2_labeling(m);
  const Graph qm = make_hypercube(m);
  for (Label c = 0; c < f.num_labels(); ++c) {
    const auto members = f.label_class(c);
    ASSERT_FALSE(members.empty());
    std::vector<VertexId> ids(members.begin(), members.end());
    EXPECT_TRUE(is_dominating_set(qm, ids)) << "label " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallM, Lemma2Property, ::testing::Range(1, 13));

TEST(Labeling, Lemma2NumLabelsClosedForm) {
  EXPECT_EQ(lemma2_num_labels(1), 2u);
  EXPECT_EQ(lemma2_num_labels(2), 2u);
  EXPECT_EQ(lemma2_num_labels(3), 4u);
  EXPECT_EQ(lemma2_num_labels(4), 4u);
  EXPECT_EQ(lemma2_num_labels(6), 4u);
  EXPECT_EQ(lemma2_num_labels(7), 8u);
  EXPECT_EQ(lemma2_num_labels(14), 8u);
  EXPECT_EQ(lemma2_num_labels(15), 16u);
}

TEST(Labeling, FlipTowardsReachesWantedLabel) {
  for (int m : {2, 3, 4, 5, 7}) {
    const CubeLabeling f = lemma2_labeling(m);
    for (Vertex u = 0; u < cube_order(m); ++u) {
      for (Label c = 0; c < f.num_labels(); ++c) {
        const Dim d = f.flip_towards(u, c);
        ASSERT_GE(d, 0);
        ASSERT_LE(d, m);
        const Vertex target = d == 0 ? u : flip(u, d);
        EXPECT_EQ(f.at(target), c);
        // d == 0 exactly when u itself carries the label.
        EXPECT_EQ(d == 0, f.at(u) == c);
      }
    }
  }
}

TEST(Labeling, ClassSizesSumToOrder) {
  const CubeLabeling f = lemma2_labeling(6);
  const auto sizes = f.class_sizes();
  std::size_t total = 0;
  for (std::size_t s : sizes) {
    EXPECT_GT(s, 0u);
    total += s;
  }
  EXPECT_EQ(total, cube_order(6));
}

TEST(Labeling, ConditionAViolationDetected) {
  // All of Q_2 labeled 0 except one vertex labeled 1: class {11} does
  // not dominate 00.
  const CubeLabeling bad(2, 2, {0, 0, 0, 1});
  EXPECT_FALSE(bad.satisfies_condition_a());
}

TEST(Labeling, UnusedLabelViolatesConditionA) {
  const CubeLabeling bad(2, 3, {0, 1, 1, 0});  // label 2 never used
  EXPECT_FALSE(bad.satisfies_condition_a());
}

TEST(LabelingGuards, InvalidInputsThrowInReleaseBuildsToo) {
  // These were bare asserts (gone under NDEBUG, the PR 2 bug class);
  // constructors and factories now throw.
  EXPECT_THROW((void)CubeLabeling(0, 1, {}), std::invalid_argument);
  EXPECT_THROW((void)CubeLabeling(25, 1, {}), std::invalid_argument);
  EXPECT_THROW((void)CubeLabeling(2, 0, {0, 0, 0, 0}), std::invalid_argument);
  // Label vector of the wrong size, and a label value out of range.
  EXPECT_THROW((void)CubeLabeling(2, 2, {0, 1, 1}), std::invalid_argument);
  EXPECT_THROW((void)CubeLabeling(2, 2, {0, 1, 1, 2}), std::invalid_argument);
  EXPECT_THROW((void)trivial_labeling(2).label_class(1),
               std::invalid_argument);
  EXPECT_THROW((void)hamming_labeling(0), std::invalid_argument);
  EXPECT_THROW((void)hamming_labeling(5), std::invalid_argument);
  EXPECT_THROW((void)lemma2_labeling(0), std::invalid_argument);
  EXPECT_THROW((void)lemma2_labeling(25), std::invalid_argument);
}

}  // namespace
}  // namespace shc
