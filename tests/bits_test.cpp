// Unit tests for the bit-string substrate.
#include <gtest/gtest.h>

#include "shc/bits/bitstring.hpp"
#include "shc/bits/vertex.hpp"

namespace shc {
namespace {

TEST(Vertex, DimBitIsOneHot) {
  for (Dim i = 1; i <= 63; ++i) {
    EXPECT_EQ(weight(dim_bit(i)), 1);
    EXPECT_EQ(differing_dim(0, dim_bit(i)), i);
  }
}

TEST(Vertex, MaskLowCountsBits) {
  EXPECT_EQ(mask_low(0), 0u);
  EXPECT_EQ(mask_low(1), 0b1u);
  EXPECT_EQ(mask_low(4), 0b1111u);
  EXPECT_EQ(weight(mask_low(63)), 63);
}

TEST(Vertex, MaskWindowSelectsHalfOpenRange) {
  EXPECT_EQ(mask_window(2, 4), 0b1100u);
  EXPECT_EQ(mask_window(0, 3), 0b111u);
  EXPECT_EQ(mask_window(3, 3), 0u);
}

TEST(Vertex, FlipIsInvolution) {
  const Vertex u = 0b1011001;
  for (Dim i = 1; i <= 7; ++i) {
    EXPECT_NE(flip(u, i), u);
    EXPECT_EQ(flip(flip(u, i), i), u);
    EXPECT_EQ(hamming_distance(u, flip(u, i)), 1);
  }
}

TEST(Vertex, CoordReadsBits) {
  const Vertex u = 0b0101;
  EXPECT_EQ(coord(u, 1), 1);
  EXPECT_EQ(coord(u, 2), 0);
  EXPECT_EQ(coord(u, 3), 1);
  EXPECT_EQ(coord(u, 4), 0);
}

TEST(Vertex, WindowValueRightAligns) {
  const Vertex u = 0b110100;
  EXPECT_EQ(window_value(u, 2, 4), 0b01u);
  EXPECT_EQ(window_value(u, 0, 6), u);
  EXPECT_EQ(window_value(u, 3, 6), 0b110u);
}

TEST(Vertex, CubeAdjacency) {
  EXPECT_TRUE(cube_adjacent(0b000, 0b001));
  EXPECT_TRUE(cube_adjacent(0b101, 0b001));
  EXPECT_FALSE(cube_adjacent(0b000, 0b011));
  EXPECT_FALSE(cube_adjacent(0b101, 0b101));
}

TEST(Bitstring, RoundTrip) {
  EXPECT_EQ(to_bitstring(0b0011, 4), "0011");
  EXPECT_EQ(to_bitstring(0, 3), "000");
  EXPECT_EQ(parse_bitstring("0011"), Vertex{0b0011});
  EXPECT_EQ(parse_bitstring("1"), Vertex{1});
  for (Vertex u = 0; u < 64; ++u) {
    EXPECT_EQ(parse_bitstring(to_bitstring(u, 6)), u);
  }
}

TEST(Bitstring, ParseRejectsBadInput) {
  EXPECT_FALSE(parse_bitstring("").has_value());
  EXPECT_FALSE(parse_bitstring("01x").has_value());
  EXPECT_FALSE(parse_bitstring(std::string(64, '1')).has_value());
}

TEST(Bitstring, GrayCodeIsHamiltonian) {
  // Consecutive Gray codes differ in one bit and enumerate all vertices.
  const int n = 10;
  std::vector<char> seen(1 << n, 0);
  for (std::uint64_t i = 0; i < (1u << n); ++i) {
    const Vertex g = gray_code(i);
    EXPECT_LT(g, 1u << n);
    EXPECT_FALSE(seen[g]);
    seen[g] = 1;
    if (i > 0) {
      EXPECT_EQ(hamming_distance(gray_code(i - 1), g), 1);
    }
    EXPECT_EQ(gray_rank(g), i);
  }
}

TEST(Bitstring, EnumerateSubcube) {
  const auto cube = enumerate_subcube(0b1000, 0b0101);
  ASSERT_EQ(cube.size(), 4u);
  EXPECT_EQ(cube[0], 0b1000u);
  EXPECT_EQ(cube[1], 0b1001u);
  EXPECT_EQ(cube[2], 0b1100u);
  EXPECT_EQ(cube[3], 0b1101u);
}

TEST(Bitstring, CubeNeighbors) {
  const auto nb = cube_neighbors(0b000, 3);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0b001u);
  EXPECT_EQ(nb[1], 0b010u);
  EXPECT_EQ(nb[2], 0b100u);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1 << 20), 20);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 7), 1);
}

TEST(Math, CeilRootExactOnPerfectPowers) {
  EXPECT_EQ(ceil_root(16, 2), 4);
  EXPECT_EQ(ceil_root(17, 2), 5);
  EXPECT_EQ(ceil_root(27, 3), 3);
  EXPECT_EQ(ceil_root(28, 3), 4);
  EXPECT_EQ(ceil_root(1, 5), 1);
  EXPECT_EQ(ceil_root(0, 3), 0);
}

// Property sweep: ceil_root(x, k) is the least r with r^k >= x.
class CeilRootProperty : public ::testing::TestWithParam<int> {};

TEST_P(CeilRootProperty, LeastRootHolds) {
  const int k = GetParam();
  for (std::int64_t x = 1; x <= 5000; ++x) {
    const int r = ceil_root(x, k);
    EXPECT_GE(ipow(r, k), x);
    if (r > 1) {
      EXPECT_LT(ipow(r - 1, k), x);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallK, CeilRootProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Math, IpowSaturates) {
  EXPECT_EQ(ipow(2, 3), 8);
  EXPECT_EQ(ipow(10, 6), 1000000);
  EXPECT_GT(ipow(1 << 20, 4), 0);  // saturated, not overflowed to negative
}

}  // namespace
}  // namespace shc
