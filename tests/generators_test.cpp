// Tests for graph generators, including the paper's Figure-1 tree family.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <string>

#include "shc/graph/algorithms.hpp"
#include "shc/bits/vertex.hpp"
#include "shc/graph/generators.hpp"

namespace shc {
namespace {

class HypercubeProperty : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeProperty, RegularConnectedCorrectSize) {
  const int n = GetParam();
  const Graph g = make_hypercube(n);
  EXPECT_EQ(g.num_vertices(), 1u << n);
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(n) << (n - 1));
  EXPECT_EQ(g.max_degree(), static_cast<std::size_t>(n));
  EXPECT_EQ(g.min_degree(), static_cast<std::size_t>(n));
  EXPECT_TRUE(is_connected(g));
  // Distance equals Hamming distance.
  const auto d = bfs_distances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(d[v], static_cast<std::uint32_t>(weight(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(SmallCubes, HypercubeProperty, ::testing::Range(1, 11));

TEST(Generators, PathCycleStar) {
  EXPECT_TRUE(is_tree(make_path(9)));
  EXPECT_EQ(make_cycle(9).num_edges(), 9u);
  EXPECT_EQ(make_star(9).max_degree(), 8u);
  EXPECT_TRUE(is_tree(make_star(9)));
}

TEST(Generators, CompleteBinaryTree) {
  for (int h = 0; h <= 6; ++h) {
    const Graph g = make_complete_binary_tree(h);
    EXPECT_EQ(g.num_vertices(), (1u << (h + 1)) - 1);
    EXPECT_TRUE(is_tree(g));
    EXPECT_LE(g.max_degree(), 3u);
    if (h >= 1) {
      EXPECT_EQ(g.degree(0), 2u);  // root
      EXPECT_EQ(diameter(g), static_cast<std::uint32_t>(2 * h));
    }
  }
}

// The Theorem-1 / Figure-1 family: |V| = 3 * 2^h - 2, max degree 3,
// diameter exactly 2h.
class Theorem1TreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1TreeProperty, MatchesPaperParameters) {
  const int h = GetParam();
  const Graph g = make_theorem1_tree(h);
  EXPECT_EQ(g.num_vertices(), theorem1_tree_order(h));
  EXPECT_EQ(g.num_vertices(), 3u * (1u << h) - 2);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(diameter(g), theorem1_tree_diameter(h));
  EXPECT_EQ(diameter(g), static_cast<std::uint32_t>(2 * h));
}

INSTANTIATE_TEST_SUITE_P(Heights, Theorem1TreeProperty, ::testing::Range(1, 9));

TEST(Generators, TheoremOneTreeRootsJoined) {
  const int h = 3;
  const Graph g = make_theorem1_tree(h);
  const VertexId big_root = 0;
  const VertexId small_root = (1u << (h + 1)) - 1;
  EXPECT_TRUE(g.has_edge(big_root, small_root));
  EXPECT_EQ(g.degree(big_root), 3u);   // two children + joining edge
  EXPECT_EQ(g.degree(small_root), 3u);
}

TEST(Generators, Caterpillar) {
  const Graph g = make_caterpillar(4, 3);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 4u);  // spine end: 1 spine + 3 legs
  EXPECT_EQ(g.degree(1), 5u);  // inner spine: 2 spine + 3 legs
}

class RandomTreeProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomTreeProperty, PruferDecodeYieldsTrees) {
  std::mt19937_64 rng(GetParam());
  for (VertexId n : {1u, 2u, 3u, 5u, 17u, 64u, 200u}) {
    const Graph g = make_random_tree(n, rng);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_TRUE(is_tree(g)) << "n=" << n << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(GeneratorGuards, InvalidSizesThrowInReleaseBuildsToo) {
  // Factory preconditions used to be bare asserts, which vanish under
  // NDEBUG (the PR 2 bug class); they are now checked throws.
  EXPECT_THROW((void)make_hypercube(0), std::invalid_argument);
  EXPECT_THROW((void)make_hypercube(27), std::invalid_argument);
  EXPECT_THROW((void)make_path(0), std::invalid_argument);
  EXPECT_THROW((void)make_cycle(2), std::invalid_argument);
  EXPECT_THROW((void)make_star(1), std::invalid_argument);
  EXPECT_THROW((void)make_complete_binary_tree(-1), std::invalid_argument);
  EXPECT_THROW((void)make_complete_binary_tree(25), std::invalid_argument);
  EXPECT_THROW((void)make_theorem1_tree(0), std::invalid_argument);
  EXPECT_THROW((void)make_caterpillar(0, 3), std::invalid_argument);
  std::mt19937_64 rng(7);
  EXPECT_THROW((void)make_random_tree(0, rng), std::invalid_argument);
}

TEST(GeneratorGuards, MessageNamesTheFactoryAndTheValue) {
  try {
    (void)make_hypercube(27);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "make_hypercube: n must be in [1, 26], got 27");
  }
}

}  // namespace
}  // namespace shc
