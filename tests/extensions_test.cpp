// Tests for the Section-5 model extensions: the vertex-disjoint call
// variant and the Property-2-aware designer.
#include <gtest/gtest.h>

#include "shc/baseline/path_star.hpp"
#include "shc/graph/generators.hpp"
#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/params.hpp"
#include "shc/sim/validator.hpp"

namespace shc {
namespace {

ValidationOptions vertex_disjoint_opts(int k) {
  ValidationOptions opt;
  opt.k = k;
  opt.require_vertex_disjoint = true;
  return opt;
}

// The sparse-hypercube schemes satisfy the stronger vertex-disjoint
// model: concurrent calls live in disjoint subcubes of the processed
// prefix, so they share no vertex at all.
class VertexDisjointSweep
    : public ::testing::TestWithParam<std::pair<int, std::vector<int>>> {};

TEST_P(VertexDisjointSweep, BroadcastKSatisfiesStrongerModel) {
  const auto& [n, cuts] = GetParam();
  const auto spec = SparseHypercubeSpec::construct(n, cuts);
  const SparseHypercubeView view(spec);
  for (Vertex s = 0; s < spec.num_vertices(); s += 7) {
    const auto schedule = make_broadcast_schedule(spec, s);
    const auto rep = validate_broadcast(view, schedule, vertex_disjoint_opts(spec.k()));
    ASSERT_TRUE(rep.ok) << "source " << s << ": " << rep.error;
    EXPECT_TRUE(rep.minimum_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VertexDisjointSweep,
    ::testing::Values(std::pair{5, std::vector<int>{2}},
                      std::pair{7, std::vector<int>{3}},
                      std::pair{8, std::vector<int>{2, 4}},
                      std::pair{10, std::vector<int>{2, 4, 7}}));

TEST(VertexDisjoint, StarSwitchingViolatesIt) {
  // Star broadcast switches two calls through the center in the same
  // round; it is edge-disjoint but not vertex-disjoint.
  const Graph g = make_star(8);
  const GraphView view(g);
  const auto schedule = star_line_broadcast(8, 1);
  EXPECT_TRUE(validate_minimum_time_k_line(view, schedule, 2).ok);
  const auto strict = validate_broadcast(view, schedule, vertex_disjoint_opts(2));
  EXPECT_FALSE(strict.ok);
  EXPECT_NE(strict.error.find("vertex-disjoint"), std::string::npos);
}

TEST(VertexDisjoint, DirectCallSchedulesUnaffected) {
  const Graph g = make_hypercube(4);
  const GraphView view(g);
  BroadcastSchedule s;
  s.source = 0;
  s.rounds.push_back(Round{{Call{{0b0000, 0b1000}}}});
  s.rounds.push_back(Round{{Call{{0b0000, 0b0100}}, Call{{0b1000, 0b1100}}}});
  ValidationOptions opt = vertex_disjoint_opts(1);
  opt.require_completion = false;
  EXPECT_TRUE(validate_broadcast(view, s, opt).ok);
}

TEST(DesignBest, NeverWorseThanAnySmallerK) {
  for (int n : {8, 12, 16, 24, 32, 48}) {
    for (int k_max = 2; k_max <= 6 && k_max < n; ++k_max) {
      const auto best = design_best_sparse_hypercube(n, k_max);
      EXPECT_LE(best.k(), k_max);
      for (int j = 2; j <= k_max && j < n; ++j) {
        EXPECT_LE(best.max_degree(),
                  static_cast<std::size_t>(realized_max_degree(n, optimal_cuts(n, j))))
            << "n=" << n << " k_max=" << k_max << " j=" << j;
      }
    }
  }
}

TEST(DesignBest, MonotoneNonIncreasingInKmax) {
  const int n = 20;
  std::size_t prev = 1000;
  for (int k_max = 2; k_max <= 8; ++k_max) {
    const auto spec = design_best_sparse_hypercube(n, k_max);
    EXPECT_LE(spec.max_degree(), prev) << "k_max=" << k_max;
    prev = spec.max_degree();
  }
}

TEST(DesignBest, ResultStillBroadcastsOptimally) {
  const auto spec = design_best_sparse_hypercube(10, 6);
  const SparseHypercubeView view(spec);
  // Property 1: a spec.k()-line schedule is valid under any k >= spec.k(),
  // in particular under the requested budget 6.
  const auto schedule = make_broadcast_schedule(spec, 99);
  const auto rep = validate_minimum_time_k_line(view, schedule, 6);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(rep.minimum_time);
  EXPECT_LE(rep.max_call_length, spec.k());
}

TEST(DesignBest, SmallNPrefersSmallK) {
  // At n = 6 extra levels only add rounding waste; the best design uses
  // a small k even when k_max is generous.
  const auto spec = design_best_sparse_hypercube(6, 5);
  EXPECT_LE(spec.k(), 3);
}

}  // namespace
}  // namespace shc
