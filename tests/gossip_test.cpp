// Tests for k-line gossip (the paper's Section-5 open direction).
#include <gtest/gtest.h>

#include "shc/gossip/gossip.hpp"
#include "shc/labeling/labeling.hpp"
#include "shc/sim/network.hpp"

namespace shc {
namespace {

class HypercubeGossip : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeGossip, DimensionExchangeIsOptimal) {
  const int n = GetParam();
  const HypercubeView qn(n);
  const auto schedule = hypercube_exchange_gossip(n);
  const auto rep = validate_gossip(qn, schedule, 1);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(rep.complete);
  EXPECT_TRUE(rep.minimum_time);
  EXPECT_EQ(rep.rounds, n);
  EXPECT_EQ(rep.max_call_length, 1);
  EXPECT_EQ(rep.total_exchanges,
            static_cast<std::uint64_t>(n) * cube_order(n - 1));
}

INSTANTIATE_TEST_SUITE_P(Cubes, HypercubeGossip, ::testing::Range(1, 11));

TEST(HypercubeGossip, EachRoundIsAPerfectMatching) {
  const auto schedule = hypercube_exchange_gossip(5);
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    EXPECT_EQ(schedule.round(t).size(), cube_order(4));
  }
}

class SparseGossip : public ::testing::TestWithParam<std::pair<int, std::vector<int>>> {};

TEST_P(SparseGossip, GatherBroadcastCompletesInTwoN) {
  const auto& [n, cuts] = GetParam();
  const auto spec = SparseHypercubeSpec::construct(n, cuts);
  const SparseHypercubeView view(spec);
  for (Vertex root : {Vertex{0}, spec.num_vertices() - 1}) {
    const auto schedule = sparse_gather_broadcast_gossip(spec, root);
    const auto rep = validate_gossip(view, schedule, spec.k());
    ASSERT_TRUE(rep.ok) << "root " << root << ": " << rep.error;
    EXPECT_TRUE(rep.complete);
    EXPECT_EQ(rep.rounds, 2 * n);
    EXPECT_FALSE(rep.minimum_time);  // 2n > n: the open-problem gap
    EXPECT_LE(rep.max_call_length, spec.k());
    EXPECT_EQ(rep.total_exchanges, 2 * (spec.num_vertices() - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseGossip,
    ::testing::Values(std::pair{5, std::vector<int>{2}},
                      std::pair{7, std::vector<int>{3}},
                      std::pair{8, std::vector<int>{2, 4}},
                      std::pair{9, std::vector<int>{2, 4, 6}}));

TEST(GossipValidator, RejectsDoubleExchange) {
  const HypercubeView q2(2);
  GossipSchedule s;
  s.begin_round();
  s.add_call({0b00, 0b01});
  s.add_call({0b00, 0b10});
  const auto rep = validate_gossip(q2, s, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("two exchanges"), std::string::npos);
}

TEST(GossipValidator, RejectsOutOfRangeInteriorPathVertex) {
  // Regression: only the two endpoints used to be range-checked, so an
  // out-of-range *interior* vertex reached the adjacency oracle raw.
  const HypercubeView q2(2);
  GossipSchedule s;
  s.begin_round();
  s.add_call({0b00, 0b101, 0b01});  // interior vertex 5 >= order 4
  const auto rep = validate_gossip(q2, s, 2);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("path vertex out of range"), std::string::npos)
      << rep.error;
}

TEST(GossipValidator, RejectsOversizedNetworkInsteadOfAllocating) {
  // Regression: the N <= 2^13 guard was a debug-only assert; in Release
  // an oversized oracle silently allocated the O(N^2)-bit matrix.
  const HypercubeView q14(14);  // 2^14 vertices, one past the guard
  const GossipSchedule empty;
  const auto rep = validate_gossip(q14, empty, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("2^13"), std::string::npos) << rep.error;
  EXPECT_EQ(rep.rounds, 0);
}

TEST(GossipValidator, RejectsSharedEdge) {
  const HypercubeView q3(3);
  GossipSchedule s;
  // Both exchanges route through edge {000, 001}.
  s.begin_round();
  s.add_call({0b010, 0b000, 0b001});
  s.add_call({0b011, 0b001, 0b000});
  const auto rep = validate_gossip(q3, s, 2);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("used twice"), std::string::npos);
}

TEST(GossipValidator, RejectsOverlongExchange) {
  const HypercubeView q3(3);
  GossipSchedule s;
  s.begin_round();
  s.add_call({0b000, 0b001, 0b011});
  EXPECT_FALSE(validate_gossip(q3, s, 1).ok);
  // ... but k = 2 accepts the path; completion still fails.
  const auto rep = validate_gossip(q3, s, 2);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("incomplete"), std::string::npos);
}

TEST(GossipValidator, DetectsIncompleteness) {
  const HypercubeView q2(2);
  GossipSchedule s;
  s.begin_round();
  s.add_call({0b00, 0b01});
  s.add_call({0b10, 0b11});
  // After one matching round nobody knows the opposite pair's tokens.
  const auto rep = validate_gossip(q2, s, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(rep.complete);
}

TEST(GossipValidator, KnowledgeActuallyMerges) {
  const HypercubeView q2(2);
  const auto schedule = hypercube_exchange_gossip(2);
  const auto rep = validate_gossip(q2, schedule, 1);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.rounds, 2);
}

TEST(SparseGossip, GatherPhaseAloneIsIncomplete) {
  const auto spec = SparseHypercubeSpec::construct_base(5, 2);
  const SparseHypercubeView view(spec);
  auto schedule = sparse_gather_broadcast_gossip(spec, 0);
  schedule.truncate_rounds(5);  // keep only the gather half
  const auto rep = validate_gossip(view, schedule, 2);
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(rep.complete);
}

// ---- sampled-knowledge escape hatch ----------------------------------

TEST(SampledGossip, SpotChecksBeyondTheExactWall) {
  // n = 14 is one past the exact validator's 2^13 wall: the exact path
  // must refuse (and point at the escape hatch), the sampled path must
  // certify the structure plus the sampled tokens' completion.
  const auto spec = SparseHypercubeSpec::construct_base(14, 4);
  const SparseHypercubeView view(spec);
  const auto schedule = sparse_gather_broadcast_gossip(spec, 0);

  const auto exact = validate_gossip(view, schedule, spec.k());
  EXPECT_FALSE(exact.ok);
  EXPECT_NE(exact.error.find("validate_gossip_sampled"), std::string::npos)
      << exact.error;

  const auto rep = validate_gossip_sampled(view, schedule, spec.k(), 16);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(rep.complete);
  EXPECT_EQ(rep.sampled_tokens, 16u);
  EXPECT_EQ(rep.rounds, 28);
  EXPECT_FALSE(rep.minimum_time);
}

TEST(SampledGossip, AgreesWithExactValidatorWhenExhaustive) {
  // samples >= N degrades to tracking every token: same verdict as the
  // exact validator on both clean and truncated schedules.
  const auto spec = SparseHypercubeSpec::construct_base(6, 2);
  const SparseHypercubeView view(spec);
  const auto schedule = sparse_gather_broadcast_gossip(spec, 0);
  const auto exact = validate_gossip(view, schedule, spec.k());
  const auto sampled =
      validate_gossip_sampled(view, schedule, spec.k(), spec.num_vertices());
  ASSERT_TRUE(exact.ok) << exact.error;
  ASSERT_TRUE(sampled.ok) << sampled.error;
  EXPECT_EQ(sampled.sampled_tokens, spec.num_vertices());
  EXPECT_EQ(exact.rounds, sampled.rounds);
  EXPECT_EQ(exact.max_call_length, sampled.max_call_length);

  auto half = schedule;
  half.truncate_rounds(6);
  EXPECT_FALSE(validate_gossip(view, half, spec.k()).ok);
  EXPECT_FALSE(
      validate_gossip_sampled(view, half, spec.k(), spec.num_vertices()).ok);
}

TEST(SampledGossip, StructuralViolationsStillCaughtInFull) {
  // Sampling trims only the knowledge tracking; every structural clause
  // still runs over every call.
  const HypercubeView q4(4);
  auto schedule = hypercube_exchange_gossip(4);
  // Corrupt one call into a double-booked endpoint.
  GossipSchedule bad;
  bad.begin_round();
  bad.add_call({0, 1});
  bad.add_call({1, 3});
  const auto rep = validate_gossip_sampled(q4, bad, 1, 4);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("two exchanges"), std::string::npos) << rep.error;
  (void)schedule;
}

TEST(SampledGossip, DetectsAStrandedToken) {
  // A gossip that never involves vertex 3: with enough samples the
  // stranded token is hit and completion fails.
  const HypercubeView q2(2);
  GossipSchedule s;
  s.begin_round();
  s.add_call({0, 1});
  s.begin_round();
  s.add_call({0, 2});
  const auto rep = validate_gossip_sampled(q2, s, 1, 4, /*seed=*/1);
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(rep.complete);
}

}  // namespace
}  // namespace shc
