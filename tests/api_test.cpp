// Facade suite: shc::certify must be a bit-for-bit repackaging of the
// direct certify_* engines — same ValidationReport/GossipReport (the
// structs' defaulted operator==), same stats counters — on clean and
// failing schedules alike, for all four workloads.  Plus the shared
// contract satellites: CommonCheckOptions aliases keep compiling, a
// borrowed WorkerPool reproduces the owned-pool report, every certify_*
// entry point rejects threads <= 0 with std::invalid_argument, and
// to_json_row emits the historical shc_sweep row schema.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "shc/api/certify.hpp"
#include "shc/mlbg/params.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {
namespace {

// The old spellings are inherited members now; the aliasing contract is
// that both option structs share one CommonCheckOptions base.
static_assert(std::is_base_of_v<CommonCheckOptions, SymbolicCheckOptions>);
static_assert(std::is_base_of_v<CommonCheckOptions, SymbolicGossipOptions>);

TEST(ApiFacade, StreamingParityCleanRun) {
  const auto spec = design_sparse_hypercube(12, 3);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto direct = certify_broadcast_streaming(spec, 0, opt, 1);

  CertifyRequest req;
  req.workload = Workload::kBroadcastStreaming;
  req.n = 12;
  req.k = 3;
  const CertifyResult res = certify(req);

  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.report, direct.report);
  EXPECT_EQ(res.cuts, spec.cuts());
  EXPECT_EQ(res.calls, direct.calls);
  EXPECT_EQ(res.peak_round_arena_bytes, direct.peak_round_arena_bytes);
  EXPECT_EQ(res.largest_round_arena_bytes, direct.largest_round_arena_bytes);
  EXPECT_EQ(res.whole_schedule_arena_bytes, direct.whole_schedule_arena_bytes);
}

TEST(ApiFacade, StreamingParityFailingRun) {
  // Source out of range: the engine answers a failed report, not a
  // throw; the facade must forward it unchanged.
  const auto spec = design_sparse_hypercube(10, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto direct =
      certify_broadcast_streaming(spec, spec.num_vertices(), opt, 1);
  ASSERT_FALSE(direct.report.ok);

  CertifyRequest req;
  req.workload = Workload::kBroadcastStreaming;
  req.n = 10;
  req.k = 2;
  req.source = spec.num_vertices();
  const CertifyResult res = certify(req);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.report, direct.report);

  // Over the streaming limit: explicit refusal report, forwarded.
  CertifyRequest big;
  big.workload = Workload::kBroadcastStreaming;
  big.n = 33;
  big.k = 2;
  const CertifyResult bigres = certify(big);
  EXPECT_FALSE(bigres.ok);
  EXPECT_NE(bigres.report.error.find("streaming pipeline limit"),
            std::string::npos);
}

TEST(ApiFacade, SymbolicParityCleanRun) {
  const auto spec = design_sparse_hypercube(14, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto direct = certify_broadcast_symbolic(spec, 0, opt);

  CertifyRequest req;
  req.workload = Workload::kBroadcastSymbolic;
  req.n = 14;
  req.k = 2;
  const CertifyResult res = certify(req);

  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.report, direct.report);
  EXPECT_EQ(res.checks.groups, direct.checks.groups);
  EXPECT_EQ(res.checks.peak_round_groups, direct.checks.peak_round_groups);
  EXPECT_EQ(res.checks.peak_frontier_subcubes,
            direct.checks.peak_frontier_subcubes);
  EXPECT_EQ(res.checks.occupancy_claims, direct.checks.occupancy_claims);
  EXPECT_EQ(res.checks.sampled_calls, direct.checks.sampled_calls);
  EXPECT_EQ(res.checks.rounds_checked, direct.checks.rounds_checked);
  EXPECT_EQ(res.producer.groups_emitted, direct.producer.groups_emitted);
}

TEST(ApiFacade, SymbolicParityFailingRun) {
  const auto spec = design_sparse_hypercube(12, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto direct =
      certify_broadcast_symbolic(spec, spec.num_vertices(), opt);
  ASSERT_FALSE(direct.report.ok);

  CertifyRequest req;
  req.workload = Workload::kBroadcastSymbolic;
  req.n = 12;
  req.k = 2;
  req.source = spec.num_vertices();
  const CertifyResult res = certify(req);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.report, direct.report);
}

TEST(ApiFacade, GossipParityCleanRun) {
  const auto spec = design_sparse_hypercube(10, 2);
  const auto direct = certify_gossip_symbolic(spec, 0);

  CertifyRequest req;
  req.workload = Workload::kGossipSymbolic;
  req.n = 10;
  req.k = 2;
  const CertifyResult res = certify(req);

  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.gossip, direct.report);
  EXPECT_EQ(res.gossip_checks.groups, direct.checks.groups);
  EXPECT_EQ(res.gossip_checks.rounds_checked, direct.checks.rounds_checked);
  EXPECT_EQ(res.gossip_checks.classes.peak_classes,
            direct.checks.classes.peak_classes);
  // The mirrored broadcast-shaped verdict agrees with the gossip one.
  EXPECT_EQ(res.report.ok, direct.report.ok);
  EXPECT_EQ(res.report.total_calls, direct.report.total_exchanges);
}

TEST(ApiFacade, ExchangeGossipParityCleanAndOverflow) {
  const auto direct = certify_exchange_gossip_symbolic(8);
  CertifyRequest req;
  req.workload = Workload::kExchangeGossip;
  req.n = 8;
  const CertifyResult res = certify(req);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.gossip, direct.report);
  EXPECT_EQ(res.k, 1);

  // n = 60: the exchange count n * 2^(n-1) overflows 64 bits and the
  // engine refuses explicitly; the facade forwards the refusal.
  const auto overflow = certify_exchange_gossip_symbolic(60);
  ASSERT_FALSE(overflow.report.ok);
  CertifyRequest big;
  big.workload = Workload::kExchangeGossip;
  big.n = 60;
  const CertifyResult bigres = certify(big);
  EXPECT_FALSE(bigres.ok);
  EXPECT_EQ(bigres.gossip, overflow.report);
}

TEST(ApiFacade, ExplicitCutsMatchDesignedSpec) {
  // Passing a designed spec's cut vector explicitly must certify the
  // identical graph (construct(n, cuts) uses the Lemma-2 labelings,
  // same as the designer).
  const auto spec = design_sparse_hypercube(12, 3);
  CertifyRequest designed;
  designed.workload = Workload::kBroadcastSymbolic;
  designed.n = 12;
  designed.k = 3;
  CertifyRequest explicit_cuts = designed;
  explicit_cuts.cuts = spec.cuts();
  const CertifyResult a = certify(designed);
  const CertifyResult b = certify(explicit_cuts);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.cuts, b.cuts);
  EXPECT_EQ(a.checks.groups, b.checks.groups);
}

TEST(ApiFacade, BorrowedPoolReproducesOwnedPoolReport) {
  const auto spec = design_sparse_hypercube(14, 2);
  ValidationOptions opt;
  opt.k = spec.k();

  SymbolicCheckOptions owned;
  owned.threads = 4;
  const auto with_owned = certify_broadcast_symbolic(spec, 0, opt, owned);

  WorkerPool pool(4);
  SymbolicCheckOptions borrowed;
  borrowed.pool = &pool;
  const auto with_borrowed = certify_broadcast_symbolic(spec, 0, opt, borrowed);
  EXPECT_EQ(with_owned.report, with_borrowed.report);
  EXPECT_EQ(with_owned.checks.groups, with_borrowed.checks.groups);
  EXPECT_EQ(with_owned.checks.occupancy_claims,
            with_borrowed.checks.occupancy_claims);

  // The pool survives the validator and serves the gossip engine next —
  // the server's reuse pattern.
  SymbolicGossipOptions gopt;
  gopt.pool = &pool;
  const auto gossip_borrowed = certify_gossip_symbolic(spec, 0, gopt);
  const auto gossip_serial = certify_gossip_symbolic(spec, 0);
  EXPECT_EQ(gossip_borrowed.report, gossip_serial.report);
}

TEST(ApiFacade, EveryEngineRejectsNonPositiveThreads) {
  const auto spec = design_sparse_hypercube(8, 2);
  ValidationOptions opt;
  opt.k = spec.k();

  EXPECT_THROW(
      { auto c = certify_broadcast_streaming(spec, 0, opt, 0); (void)c; },
      std::invalid_argument);
  EXPECT_THROW(
      { auto c = certify_broadcast_streaming(spec, 0, opt, -3); (void)c; },
      std::invalid_argument);

  SymbolicCheckOptions sopt;
  sopt.threads = 0;
  EXPECT_THROW(
      { auto c = certify_broadcast_symbolic(spec, 0, opt, sopt); (void)c; },
      std::invalid_argument);

  SymbolicGossipOptions gopt;
  gopt.threads = -1;
  EXPECT_THROW(
      { auto c = certify_gossip_symbolic(spec, 0, gopt); (void)c; },
      std::invalid_argument);
  EXPECT_THROW(
      { auto c = certify_exchange_gossip_symbolic(8, gopt); (void)c; },
      std::invalid_argument);

  CertifyRequest req;
  req.n = 8;
  req.checks.threads = 0;
  EXPECT_THROW({ auto r = certify(req); (void)r; }, std::invalid_argument);
}

TEST(ApiFacade, JsonRowKeepsSweepSchema) {
  CertifyRequest req;
  req.workload = Workload::kBroadcastStreaming;
  req.n = 10;
  req.k = 2;
  req.with_congestion = true;
  const std::string row = to_json_row(certify(req));
  for (const char* key :
       {"\"n\":10", "\"k\":2", "\"cuts\":[", "\"model\":\"edge-disjoint\"",
        "\"ok\":true", "\"minimum_time\":true", "\"rounds\":", "\"calls\":",
        "\"peak_round_arena_bytes\":", "\"seconds\":",
        "\"distinct_edges_used\":", "\"required_edge_capacity\":"}) {
    EXPECT_NE(row.find(key), std::string::npos) << key << " missing: " << row;
  }
  EXPECT_EQ(row.find("\"engine\":"), std::string::npos)
      << "streaming rows are engine-tag-free (historical schema): " << row;

  CertifyRequest sym = req;
  sym.workload = Workload::kBroadcastSymbolic;
  sym.with_congestion = false;
  const std::string symrow = to_json_row(certify(sym));
  for (const char* key : {"\"engine\":\"symbolic\"", "\"groups\":",
                          "\"peak_frontier_subcubes\":", "\"seconds\":"}) {
    EXPECT_NE(symrow.find(key), std::string::npos) << key << " missing: " << symrow;
  }

  CertifyRequest gos = req;
  gos.workload = Workload::kGossipSymbolic;
  gos.with_congestion = false;
  const std::string gosrow = to_json_row(certify(gos));
  for (const char* key : {"\"engine\":\"symbolic-gossip\"", "\"complete\":true",
                          "\"exchanges\":", "\"peak_classes\":"}) {
    EXPECT_NE(gosrow.find(key), std::string::npos) << key << " missing: " << gosrow;
  }

  // Failing rows carry the escaped error.
  CertifyRequest bad = req;
  bad.source = 1u << 10;
  bad.with_congestion = false;
  const std::string badrow = to_json_row(certify(bad));
  EXPECT_NE(badrow.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(badrow.find("\"error\":\"source out of range\""), std::string::npos);
}

TEST(ApiFacade, WorkloadNamesRoundTrip) {
  for (const Workload w :
       {Workload::kBroadcastStreaming, Workload::kBroadcastSymbolic,
        Workload::kGossipSymbolic, Workload::kExchangeGossip}) {
    Workload back = Workload::kBroadcastStreaming;
    ASSERT_TRUE(workload_from_name(workload_name(w), &back));
    EXPECT_EQ(back, w);
  }
  Workload out;
  EXPECT_FALSE(workload_from_name("frisbee", &out));
}

TEST(ApiFacade, PredictedGroupCostRanksHeavyQueries) {
  CertifyRequest small;
  small.workload = Workload::kBroadcastSymbolic;
  small.n = 12;
  small.k = 2;

  CertifyRequest designed47;
  designed47.workload = Workload::kBroadcastSymbolic;
  designed47.n = 47;
  designed47.cuts = {theorem5_core(47)};

  CertifyRequest exchange;
  exchange.workload = Workload::kExchangeGossip;
  exchange.n = 16;

  EXPECT_GT(predicted_group_cost(designed47), predicted_group_cost(small));
  EXPECT_EQ(predicted_group_cost(exchange), 16u);
  // Streaming cost is the concrete call count, 2^n - 1.
  CertifyRequest stream;
  stream.workload = Workload::kBroadcastStreaming;
  stream.n = 12;
  EXPECT_EQ(predicted_group_cost(stream), (1u << 12) - 1);
  // Deterministic: the admission decision must not flap between
  // identical requests.
  EXPECT_EQ(predicted_group_cost(designed47), predicted_group_cost(designed47));
}

}  // namespace
}  // namespace shc
