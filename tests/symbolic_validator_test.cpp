// Parity and adversarial suite for the symbolic subcube engine.
//
// Contract under test: on the overlapping range (n <= 24, k in
// {2, 3, 4}) certify_broadcast_symbolic produces a ValidationReport
// bit-for-bit identical to validate_broadcast_streaming's, the
// from_symbolic expansion validates identically through the serial
// kernel, and analyze_congestion_symbolic reproduces the explicit
// congestion stats including the histogram.  Beyond the overlapping
// range, the engine certifies 2^63 - 1 calls at n = 63 — the
// representation boundary the overflow-audited counters exist for —
// and every handcrafted violation of the group structure is rejected.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/params.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/mlbg/symbolic_broadcast.hpp"
#include "shc/sim/congestion.hpp"
#include "shc/sim/streaming_validator.hpp"
#include "shc/sim/symbolic_validator.hpp"

namespace shc {
namespace {

static_assert(SymbolicRoundSink<SymbolicBroadcastValidator<SpecView>>,
              "the symbolic validator is a symbolic round sink");
static_assert(SymbolicOracle<SpecView>,
              "SpecView answers dimension-indexed adjacency with supports");

void expect_same_report(const ValidationReport& a, const ValidationReport& b,
                        const char* what) {
  EXPECT_TRUE(a == b) << what << ":\n  streaming: ok=" << a.ok << " \"" << a.error
                      << "\" rounds=" << a.rounds << " informed=" << a.informed
                      << " calls=" << a.total_calls
                      << " maxlen=" << a.max_call_length << "\n  symbolic:  ok="
                      << b.ok << " \"" << b.error << "\" rounds=" << b.rounds
                      << " informed=" << b.informed << " calls=" << b.total_calls
                      << " maxlen=" << b.max_call_length;
}

TEST(SymbolicParity, ReportsMatchStreamingForAllNUpTo24AcrossK234) {
  for (int n = 5; n <= 24; ++n) {
    for (int k = 2; k <= 4; ++k) {
      if (n <= k + 1) continue;
      const auto spec = design_sparse_hypercube(n, k);
      ValidationOptions opt;
      opt.k = spec.k();
      const auto sym = certify_broadcast_symbolic(spec, 0, opt);
      const auto stream = certify_broadcast_streaming(spec, 0, opt, 1);
      expect_same_report(stream.report, sym.report,
                         ("n=" + std::to_string(n) + " k=" + std::to_string(k))
                             .c_str());
      EXPECT_TRUE(sym.report.ok);
      EXPECT_TRUE(sym.report.minimum_time);
      EXPECT_GT(sym.checks.sampled_calls, 0u)
          << "bit-level spot checks must actually run";
      // Groups represent the full 2^n - 1 calls (the asymptotic
      // compression claim itself is asserted in SymbolicStats below).
      EXPECT_EQ(sym.report.total_calls, cube_order(n) - 1);
    }
  }
}

TEST(SymbolicParity, VertexDisjointModelMatchesToo) {
  for (const int n : {8, 12, 16}) {
    for (int k = 2; k <= 4; ++k) {
      const auto spec = design_sparse_hypercube(n, k);
      ValidationOptions opt;
      opt.k = spec.k();
      opt.require_vertex_disjoint = true;
      const auto sym = certify_broadcast_symbolic(spec, 0, opt);
      const auto stream = certify_broadcast_streaming(spec, 0, opt, 1);
      expect_same_report(stream.report, sym.report, "vertex-disjoint");
      EXPECT_TRUE(sym.report.ok);
    }
  }
}

TEST(SymbolicParity, NonzeroSourcesAndCustomCuts) {
  for (const auto& [n, cuts] : std::vector<std::pair<int, std::vector<int>>>{
           {10, {3}}, {12, {3, 6}}, {13, {2, 5, 9}}}) {
    const auto spec = SparseHypercubeSpec::construct(n, cuts);
    ValidationOptions opt;
    opt.k = spec.k();
    for (const Vertex source : {Vertex{0}, Vertex{1}, cube_order(n) - 1,
                                Vertex{0x2A} & (cube_order(n) - 1)}) {
      const auto sym = certify_broadcast_symbolic(spec, source, opt);
      const auto stream = certify_broadcast_streaming(spec, source, opt, 1);
      expect_same_report(stream.report, sym.report, "custom cuts/source");
      EXPECT_TRUE(sym.report.ok) << sym.report.error;
    }
  }
}

TEST(SymbolicExpansion, FromSymbolicValidatesIdenticallyAndCongestionMatches) {
  for (const int n : {8, 10, 12, 14}) {
    for (int k = 2; k <= 4; ++k) {
      const auto spec = design_sparse_hypercube(n, k);
      const SymbolicSchedule sym = make_symbolic_broadcast_schedule(spec, 0);
      const FlatSchedule expanded = FlatSchedule::from_symbolic(sym);
      const FlatSchedule direct = make_broadcast_schedule(spec, 0);

      // Same call multiset, possibly different order: reports and
      // order-insensitive congestion stats must agree exactly.
      EXPECT_EQ(expanded.num_calls(), direct.num_calls());
      EXPECT_EQ(expanded.num_path_vertices(), direct.num_path_vertices());

      const SpecView view(spec);
      ValidationOptions opt;
      opt.k = spec.k();
      expect_same_report(validate_broadcast(view, direct, opt),
                         validate_broadcast(view, expanded, opt), "expansion");

      const CongestionStats explicit_stats = analyze_congestion(expanded);
      const SymbolicCongestionReport symbolic = analyze_congestion_symbolic(sym);
      ASSERT_TRUE(symbolic.ok) << symbolic.error;
      EXPECT_TRUE(explicit_stats == symbolic.stats)
          << "n=" << n << " k=" << k
          << ": symbolic congestion diverged (distinct "
          << symbolic.stats.distinct_edges_used << " vs "
          << explicit_stats.distinct_edges_used << ", hops "
          << symbolic.stats.total_edge_hops << " vs "
          << explicit_stats.total_edge_hops << ")";
      EXPECT_EQ(explicit_stats, analyze_congestion(direct))
          << "expanded and direct schedules are the same multiset";
    }
  }
}

TEST(SymbolicBoundary, CertifiesTheFullRepresentationRangeN63) {
  // The overflow-audit boundary: 2^63 - 1 calls, 2^63 informed vertices.
  // construct_base(63, 6) keeps the subcube frontier small (lambda = 4),
  // so this certifies in seconds.
  const auto spec = SparseHypercubeSpec::construct_base(63, 6);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto cert = certify_broadcast_symbolic(spec, 0, opt);
  ASSERT_TRUE(cert.report.ok) << cert.report.error;
  EXPECT_TRUE(cert.report.minimum_time);
  EXPECT_EQ(cert.report.rounds, 63);
  EXPECT_EQ(cert.report.total_calls, (std::uint64_t{1} << 63) - 1);
  EXPECT_EQ(cert.report.informed, std::uint64_t{1} << 63);
  EXPECT_EQ(cert.report.max_call_length, 2);
  EXPECT_GT(cert.checks.sampled_calls, 0u);
}

TEST(SymbolicBoundary, RejectsOversizedExpansionInsteadOfWrapping) {
  const auto spec = SparseHypercubeSpec::construct_base(40, 6);
  const SymbolicSchedule sym = make_symbolic_broadcast_schedule(spec, 0);
  EXPECT_THROW((void)FlatSchedule::from_symbolic(sym), std::invalid_argument);
}

TEST(SymbolicBoundary, SourceOutOfRangeMatchesStreamingReport) {
  const auto spec = design_sparse_hypercube(10, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto sym = certify_broadcast_symbolic(spec, cube_order(10), opt);
  EXPECT_FALSE(sym.report.ok);
  EXPECT_EQ(sym.report.error, "source out of range");
}

// ---- handcrafted violations ------------------------------------------

/// A clean materialized symbolic schedule to mutate.
SymbolicSchedule clean_schedule(int n = 10, int k = 2) {
  return make_symbolic_broadcast_schedule(design_sparse_hypercube(n, k), 0);
}

ValidationReport check(const SymbolicSchedule& s, int n = 10, int k = 2,
                       bool vertex_disjoint = false) {
  const auto spec = design_sparse_hypercube(n, k);
  const SpecView view(spec);
  ValidationOptions opt;
  opt.k = spec.k();
  opt.require_vertex_disjoint = vertex_disjoint;
  return validate_broadcast_symbolic(view, s, opt);
}

TEST(SymbolicViolations, UnsupportedModelOptionsFailExplicitly) {
  const auto spec = design_sparse_hypercube(10, 2);
  const SpecView view(spec);
  const auto sym = clean_schedule();
  for (auto mutate : {+[](ValidationOptions& o) { o.edge_capacity = 2; },
                      +[](ValidationOptions& o) { o.forbid_redundant_receivers = false; },
                      +[](ValidationOptions& o) { o.require_completion = false; }}) {
    ValidationOptions opt;
    opt.k = spec.k();
    mutate(opt);
    const auto rep = validate_broadcast_symbolic(view, sym, opt);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.error.find("symbolic validator requires"), std::string::npos);
  }
}

TEST(SymbolicViolations, CountMismatchIsMultiplicityAccountingError) {
  auto s = clean_schedule();
  s.rounds[2].groups[0].count += 1;
  const auto rep = check(s);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("multiplicity accounting"), std::string::npos);
}

TEST(SymbolicViolations, UninformedCallerDetected) {
  auto s = clean_schedule();
  // Round 3's first group: translate its caller subcube into territory
  // the informed set cannot fully cover yet.
  s.rounds[3].groups[0].prefix ^= Vertex{1} << 8;
  const auto rep = check(s);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("informed set"), std::string::npos) << rep.error;
}

TEST(SymbolicViolations, MissingCallerDetected) {
  auto s = clean_schedule();
  auto& round = s.rounds[3];
  round.groups.pop_back();
  round.group_pattern.pop_back();
  const auto rep = check(s);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("tile"), std::string::npos) << rep.error;
}

TEST(SymbolicViolations, PatternNotStartingAtCallerDetected) {
  auto s = clean_schedule();
  auto& round = s.rounds[1];
  round.pattern_pool[round.pattern_off[round.group_pattern[0]]] ^= 1;
  const auto rep = check(s);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("start at the caller"), std::string::npos) << rep.error;
}

TEST(SymbolicViolations, NonEdgeHopDetected) {
  // construct_base(10, 3): dimension 10 is owned by one label class, so
  // flipping the route onto a wrong dimension leaves the graph.
  const auto spec = SparseHypercubeSpec::construct_base(10, 3);
  auto s = make_symbolic_broadcast_schedule(spec, 0);
  // Rewrite round 1's (dim-10 sweep) first pattern: replace the final
  // hop's dimension with an absent edge by flipping a different high bit.
  auto& round = s.rounds[0];
  const std::uint32_t pid = round.group_pattern[0];
  const std::uint32_t last = round.pattern_off[pid + 1] - 1;
  round.pattern_pool[last] =
      round.pattern_pool[last - 1] ^ (Vertex{1} << 8);  // dim 9 of wrong owner?
  const SpecView view(spec);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto rep = validate_broadcast_symbolic(view, s, opt);
  EXPECT_FALSE(rep.ok);
}

/// Appends `patt` as a fresh pattern of `round` and points group `g` at it.
void repoint_group(SymbolicRound& round, std::size_t g,
                   const std::vector<Vertex>& patt) {
  round.pattern_pool.insert(round.pattern_pool.end(), patt.begin(), patt.end());
  round.pattern_off.push_back(
      static_cast<std::uint32_t>(round.pattern_pool.size()));
  round.group_pattern[g] = static_cast<std::uint32_t>(round.num_patterns() - 1);
}

TEST(SymbolicViolations, OverlongPatternDetected) {
  auto s = clean_schedule();
  auto& round = s.rounds[1];
  // Extend group 0's pattern with a dim-1/dim-2 walk far past k = 2.
  const auto orig = round.pattern_of_group(0);
  std::vector<Vertex> patt(orig.begin(), orig.end());
  patt.push_back(patt.back() ^ 1);
  patt.push_back(patt.back() ^ 2);
  repoint_group(round, 0, patt);
  const auto rep = check(s);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("length"), std::string::npos) << rep.error;
}

TEST(SymbolicViolations, IntraPathEdgeReuseDetected) {
  auto s = clean_schedule(10, 4);  // k = 4 leaves room for a longer walk
  auto& round = s.rounds[1];
  // Walk back over the pattern's own last edge: ... -> last -> previous.
  const auto orig = round.pattern_of_group(0);
  std::vector<Vertex> patt(orig.begin(), orig.end());
  patt.push_back(patt[patt.size() - 2]);
  repoint_group(round, 0, patt);
  const auto rep = check(s, 10, 4);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("reuses an edge"), std::string::npos) << rep.error;
}

TEST(SymbolicViolations, ReceiverCollisionSurfacesInTheEndgame) {
  auto s = clean_schedule();
  // Round 2: find the group whose callers include the source, and make
  // it re-walk round 1's route from the source — its receiver is then
  // round 1's receiver, a vertex that is already informed.  The
  // validator must refuse, whichever check fires first (span/support
  // discipline for merged groups, endgame multiset otherwise).
  const std::span<const Vertex> round0_patt = s.rounds[0].pattern_of_group(0);
  auto& round = s.rounds[1];
  std::size_t target = round.groups.size();
  for (std::size_t g = 0; g < round.groups.size(); ++g) {
    if (round.groups[g].callers().contains_vertex(0)) target = g;
  }
  ASSERT_LT(target, round.groups.size());
  round.pattern_pool.insert(round.pattern_pool.end(), round0_patt.begin(),
                            round0_patt.end());
  round.pattern_off.push_back(
      static_cast<std::uint32_t>(round.pattern_pool.size()));
  round.group_pattern[target] =
      static_cast<std::uint32_t>(round.num_patterns() - 1);
  const auto rep = check(s);
  EXPECT_FALSE(rep.ok);
}

TEST(SymbolicViolations, TruncatedScheduleIsIncomplete) {
  auto s = clean_schedule();
  s.rounds.pop_back();
  const auto rep = check(s);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("incomplete"), std::string::npos) << rep.error;
}

TEST(SymbolicViolations, EmptyRoundDetected) {
  auto s = clean_schedule();
  s.rounds[4].groups.clear();
  s.rounds[4].group_pattern.clear();
  const auto rep = check(s);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("empty round"), std::string::npos) << rep.error;
}

TEST(SymbolicViolations, FreeDimInsideSupportRequiresSplit) {
  // Hand-build a 2-round schedule on Q_3 (full cube spec: construct_base
  // with m = 2 has dims 3 governed): a group whose free mask intersects
  // the window of a governed dimension must be rejected.
  const auto spec = SparseHypercubeSpec::construct_base(6, 2);
  const SpecView view(spec);
  // Pick a governed dimension whose edge exists at the all-zero vertex.
  Dim governed = 0;
  for (Dim d = 3; d <= 6; ++d) {
    if (spec.has_edge_dim(0, d)) governed = d;
  }
  ASSERT_NE(governed, 0) << "Condition A guarantees some owned dimension";
  ASSERT_NE(spec.dim_support_mask(governed), 0u);
  SymbolicScheduleBuilder b(0, 6);
  b.begin_round();
  {
    CallGroup g;
    g.prefix = 0;
    g.free_mask = 0;
    g.count = 1;
    const Vertex patt[] = {0, dim_bit(governed)};
    b.end_call_group(g, patt);
  }
  b.end_round();
  auto s = std::move(b).take();
  // ...but claiming the whole window as free must fail the support check.
  s.rounds[0].groups[0].free_mask = mask_low(2);
  s.rounds[0].groups[0].count = 4;
  ValidationOptions opt;
  opt.k = spec.k();
  const auto rep = validate_broadcast_symbolic(view, s, opt);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("support"), std::string::npos) << rep.error;
}

TEST(SymbolicViolations, IntraCallVertexRevisitRejectedInVertexDisjointModel) {
  // A cycle-walking pattern that revisits one of its own vertices over
  // distinct edges: legal in the edge-disjoint model, rejected by the
  // serial kernel's touched-set under vertex-disjointness — the
  // symbolic engine must agree.  Core dims of construct_base(6, 4) are
  // 1..4, so every hop below is a real edge.
  const auto spec = SparseHypercubeSpec::construct_base(6, 4);
  const SpecView view(spec);
  SymbolicScheduleBuilder b(16, 6);
  b.begin_round();
  {
    CallGroup g;
    g.prefix = 16;
    g.free_mask = 0;
    g.count = 1;
    // Relative walk 0 -> 1 -> 3 -> 7 -> 5 -> 1 -> 9: vertex 1 twice,
    // all six edges distinct.
    const Vertex patt[] = {0, 1, 3, 7, 5, 1, 9};
    b.end_call_group(g, patt);
  }
  b.end_round();
  const auto s = std::move(b).take();

  ValidationOptions opt;
  opt.k = 10;
  opt.require_vertex_disjoint = true;
  const auto vd = validate_broadcast_symbolic(view, s, opt);
  EXPECT_FALSE(vd.ok);
  EXPECT_NE(vd.error.find("revisits a vertex"), std::string::npos) << vd.error;

  // Edge-disjoint model: the pattern itself is fine (the schedule still
  // fails later for other reasons, but not on this clause).
  opt.require_vertex_disjoint = false;
  const auto ed = validate_broadcast_symbolic(view, s, opt);
  EXPECT_EQ(ed.error.find("revisits a vertex"), std::string::npos) << ed.error;
}

TEST(SymbolicViolations, SampledReplayCatchesGraphDisagreement) {
  // Force the sampler to expand everything, then lie about an edge by
  // making the validator see a *sparser* spec than the producer used.
  const auto produce_spec = SparseHypercubeSpec::construct_base(10, 3);
  const auto sym = make_symbolic_broadcast_schedule(produce_spec, 0);
  const auto check_spec = SparseHypercubeSpec::construct(
      10, {3}, {lemma2_labeling(3)});
  // Same spec shape: instead lie by validating against different cuts.
  const auto other = SparseHypercubeSpec::construct_base(10, 4);
  const SpecView view(other);
  ValidationOptions opt;
  opt.k = 4;  // roomy k so length checks don't fire first
  SymbolicCheckOptions sopt;
  sopt.sample_groups_per_round = 64;
  sopt.sample_calls_per_group = 64;
  const auto rep = validate_broadcast_symbolic(view, sym, opt, sopt);
  EXPECT_FALSE(rep.ok) << "routes of construct_base(10,3) are not edges of "
                          "construct_base(10,4)";
  (void)check_spec;
}

TEST(SymbolicThreads, ShardedGroupChecksReproduceTheSerialReport) {
  // The per-round caller-tiling consumption and collision-pair analysis
  // shard over the persistent WorkerPool when sopt.threads > 1; the
  // report must be bit-for-bit the single-thread one, clean or failing.
  for (const int n : {12, 16}) {
    const auto spec = design_sparse_hypercube(n, 3);
    ValidationOptions opt;
    opt.k = spec.k();
    SymbolicCheckOptions serial;
    SymbolicCheckOptions sharded;
    sharded.threads = 4;
    const auto a = certify_broadcast_symbolic(spec, 0, opt, serial);
    const auto b = certify_broadcast_symbolic(spec, 0, opt, sharded);
    expect_same_report(a.report, b.report, "threads=4 vs threads=1 clean");
    ASSERT_TRUE(a.report.ok) << a.report.error;
    EXPECT_EQ(a.checks.collision_candidates, b.checks.collision_candidates);
  }
  // Failure parity: a dropped group trips the tiling check identically.
  auto bad = clean_schedule(10, 2);
  bad.rounds[3].groups.pop_back();
  bad.rounds[3].group_pattern.pop_back();
  const auto spec = design_sparse_hypercube(10, 2);
  const SpecView view(spec);
  ValidationOptions opt;
  opt.k = spec.k();
  SymbolicCheckOptions sharded;
  sharded.threads = 4;
  const auto serial_rep = validate_broadcast_symbolic(view, bad, opt);
  const auto sharded_rep = validate_broadcast_symbolic(view, bad, opt, sharded);
  EXPECT_FALSE(serial_rep.ok);
  expect_same_report(serial_rep, sharded_rep, "threads=4 vs threads=1 failing");
}

// ---- collision modes: ledger vs pair sweep ----------------------------

TEST(CollisionModes, LedgerAndPairSweepReportsMatchForAllNUpTo24AcrossK234) {
  // The dyadic occupancy ledger (default) and the original candidate
  // pair sweep must produce bit-for-bit identical reports on the whole
  // cross-checkable range; ledger mode never enumerates a candidate.
  SymbolicCheckOptions pair_sweep;
  pair_sweep.collision_mode = CollisionMode::kPairSweep;
  for (int n = 5; n <= 24; ++n) {
    for (int k = 2; k <= 4; ++k) {
      if (n <= k + 1) continue;
      const auto spec = design_sparse_hypercube(n, k);
      ValidationOptions opt;
      opt.k = spec.k();
      const auto ledger = certify_broadcast_symbolic(spec, 0, opt);
      const auto pairs = certify_broadcast_symbolic(spec, 0, opt, pair_sweep);
      expect_same_report(pairs.report, ledger.report,
                         ("modes n=" + std::to_string(n) +
                          " k=" + std::to_string(k))
                             .c_str());
      ASSERT_TRUE(ledger.report.ok) << ledger.report.error;
      EXPECT_EQ(ledger.checks.collision_candidates, 0u);
    }
  }
}

TEST(CollisionModes, VertexDisjointModelMatchesAcrossModesToo) {
  SymbolicCheckOptions pair_sweep;
  pair_sweep.collision_mode = CollisionMode::kPairSweep;
  for (const int n : {8, 12, 16}) {
    for (int k = 2; k <= 4; ++k) {
      const auto spec = design_sparse_hypercube(n, k);
      ValidationOptions opt;
      opt.k = spec.k();
      opt.require_vertex_disjoint = true;
      const auto ledger = certify_broadcast_symbolic(spec, 0, opt);
      const auto pairs = certify_broadcast_symbolic(spec, 0, opt, pair_sweep);
      expect_same_report(pairs.report, ledger.report, "vertex-disjoint modes");
      ASSERT_TRUE(ledger.report.ok) << ledger.report.error;
    }
  }
}

/// Hand-built Q_3 schedule on the full-cube oracle: round 1 informs
/// vertex 1; round 2's two groups walk the given patterns from callers
/// 0 and 1 (which tile the informed set, so the collision clauses are
/// what decides).
SymbolicSchedule q3_two_group_schedule(const std::vector<Vertex>& patt_a,
                                       const std::vector<Vertex>& patt_b) {
  SymbolicScheduleBuilder b(0, 3);
  b.begin_round();
  CallGroup g;
  g.prefix = 0;
  g.free_mask = 0;
  g.count = 1;
  const Vertex first[] = {0, 1};
  b.end_call_group(g, first);
  b.end_round();
  b.begin_round();
  b.end_call_group(g, patt_a);
  g.prefix = 1;
  b.end_call_group(g, patt_b);
  b.end_round();
  return std::move(b).take();
}

TEST(CollisionModes, HandcraftedEdgeCollisionMatchesBitForBit) {
  // A: 0 -> 2 -> 6 uses edge {0, 2}; B: 1 -> 3 -> 2 -> 0 re-crosses it
  // on its last hop.  Both modes must reject with the identical report.
  const auto s = q3_two_group_schedule({0, 2, 6}, {0, 2, 3, 1});
  const CubeOracle oracle(3);
  ValidationOptions opt;
  opt.k = 3;
  SymbolicCheckOptions ledger;
  SymbolicCheckOptions pair_sweep;
  pair_sweep.collision_mode = CollisionMode::kPairSweep;
  const auto a = validate_broadcast_symbolic(oracle, s, opt, ledger);
  const auto b = validate_broadcast_symbolic(oracle, s, opt, pair_sweep);
  EXPECT_FALSE(a.ok);
  EXPECT_NE(a.error.find("edge collision between concurrent call groups"),
            std::string::npos)
      << a.error;
  expect_same_report(b, a, "handcrafted edge collision");
}

TEST(CollisionModes, HandcraftedVertexCollisionMatchesBitForBit) {
  // A: 0 -> 2 -> 6 and B: 1 -> 3 -> 2 share vertex 2 over disjoint
  // edges: legal in the edge-disjoint model, a collision under the
  // Section-5 vertex-disjoint model — identically in both modes.
  const auto s = q3_two_group_schedule({0, 2, 6}, {0, 2, 3});
  const CubeOracle oracle(3);
  ValidationOptions opt;
  opt.k = 3;
  SymbolicCheckOptions ledger;
  SymbolicCheckOptions pair_sweep;
  pair_sweep.collision_mode = CollisionMode::kPairSweep;

  opt.require_vertex_disjoint = true;
  const auto a = validate_broadcast_symbolic(oracle, s, opt, ledger);
  const auto b = validate_broadcast_symbolic(oracle, s, opt, pair_sweep);
  EXPECT_FALSE(a.ok);
  EXPECT_NE(a.error.find("vertex collision between concurrent call groups "
                         "(vertex-disjoint model)"),
            std::string::npos)
      << a.error;
  expect_same_report(b, a, "handcrafted vertex collision");

  // Edge-disjoint model: no collision clause fires (the schedule still
  // fails later, identically in both modes).
  opt.require_vertex_disjoint = false;
  const auto c = validate_broadcast_symbolic(oracle, s, opt, ledger);
  const auto d = validate_broadcast_symbolic(oracle, s, opt, pair_sweep);
  EXPECT_EQ(c.error.find("collision between concurrent"), std::string::npos)
      << c.error;
  expect_same_report(d, c, "edge-disjoint fallthrough");
}

// ---- budget-exhaustion diagnostics ------------------------------------

TEST(BudgetDiagnostics, TilingBudgetMessageNamesRoundBudgetAndKnob) {
  // Q_2 hand-built: round 2's singleton groups force one dyadic split
  // of the coalesced frontier entry {0, mask 01} — two extra consume
  // nodes a per-entry budget of 1 cannot afford.
  SymbolicScheduleBuilder b(0, 2);
  CallGroup g;
  g.prefix = 0;
  g.free_mask = 0;
  g.count = 1;
  const Vertex d1[] = {0, 1};
  const Vertex d2[] = {0, 2};
  b.begin_round();
  b.end_call_group(g, d1);
  b.end_round();
  b.begin_round();
  b.end_call_group(g, d2);
  g.prefix = 1;
  b.end_call_group(g, d2);
  b.end_round();
  const auto s = std::move(b).take();
  const CubeOracle oracle(2);
  ValidationOptions opt;
  opt.k = 2;

  // Sane budgets: the schedule is a clean minimum-time broadcast.
  const auto ok = validate_broadcast_symbolic(oracle, s, opt);
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_TRUE(ok.minimum_time);

  SymbolicCheckOptions starved;
  starved.tiling_budget = 1;
  const auto rep = validate_broadcast_symbolic(oracle, s, opt, starved);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.error,
            "round 2: caller tiling budget exceeded (per-entry budget 1; "
            "raise SymbolicCheckOptions::tiling_budget)");
}

TEST(BudgetDiagnostics, PairSweepBudgetMessageNamesRoundBudgetAndKnob) {
  SymbolicCheckOptions starved;
  starved.collision_mode = CollisionMode::kPairSweep;
  starved.collision_budget = 1;
  const auto spec = design_sparse_hypercube(10, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto cert = certify_broadcast_symbolic(spec, 0, opt, starved);
  EXPECT_FALSE(cert.report.ok);
  EXPECT_NE(cert.report.error.find("round "), std::string::npos)
      << cert.report.error;
  EXPECT_NE(cert.report.error.find(
                "collision analysis exceeded its budget (node budget 1; "
                "raise SymbolicCheckOptions::collision_budget"),
            std::string::npos)
      << cert.report.error;
}

TEST(BudgetDiagnostics, LedgerBudgetMessageNamesRoundBudgetAndKnob) {
  // Q_3 hand-built so that round 3's dimension-3 edge family puts two
  // claims into one ledger bucket (singleton callers 1 and 3 agree on
  // the varying bucket bit), which a zero budget cannot walk.  The
  // groups are low-first dyadic pieces of the frontier entry {0, mask
  // 11}, so the caller-tiling consumption accepts them and the
  // collision clause is what decides.
  SymbolicScheduleBuilder b(0, 3);
  CallGroup g;
  g.prefix = 0;
  g.free_mask = 0;
  g.count = 1;
  {
    const Vertex patt[] = {0, 1};
    b.begin_round();
    b.end_call_group(g, patt);
    b.end_round();
  }
  {
    const Vertex patt[] = {0, 2};
    b.begin_round();
    g.free_mask = 1;
    g.count = 2;
    b.end_call_group(g, patt);
    b.end_round();
  }
  {
    b.begin_round();
    const Vertex wide[] = {0, 4};
    g.free_mask = 2;
    g.count = 2;
    g.prefix = 0;
    b.end_call_group(g, wide);  // {0,2} -> {4,6}
    g.free_mask = 0;
    g.count = 1;
    g.prefix = 1;
    b.end_call_group(g, wide);  // 1 -> 5
    g.prefix = 3;
    const Vertex two_hop[] = {0, 4, 5};
    b.end_call_group(g, two_hop);  // 3 -> 7 -> 6 (multihop round)
    b.end_round();
  }
  const auto s = std::move(b).take();
  const CubeOracle oracle(3);
  ValidationOptions opt;
  opt.k = 2;

  SymbolicCheckOptions starved;
  starved.ledger_budget_per_claim = 0;
  starved.ledger_bucket_budget_base = 0;
  const auto rep = validate_broadcast_symbolic(oracle, s, opt, starved);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.error,
            "round 3: collision analysis exceeded its budget (ledger bucket "
            "budget 0; raise SymbolicCheckOptions::ledger_budget_per_claim)");
}

TEST(SymbolicStats, GroupCompressionIsPolynomialWhileCallsAreExponential) {
  // n = 24, k = 2: 2^24 - 1 calls out of ~5k groups.
  const auto spec = design_sparse_hypercube(24, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto cert = certify_broadcast_symbolic(spec, 0, opt);
  ASSERT_TRUE(cert.report.ok) << cert.report.error;
  EXPECT_EQ(cert.report.total_calls, cube_order(24) - 1);
  EXPECT_LT(cert.checks.groups, 100000u);
  EXPECT_LT(cert.checks.peak_frontier_subcubes, 20000u);
  EXPECT_EQ(cert.producer.final_frontier_subcubes,
            cert.checks.final_frontier_subcubes);
}

}  // namespace
}  // namespace shc
