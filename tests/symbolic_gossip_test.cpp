// Parity and adversarial suite for the symbolic gossip engine.
//
// Contract under test: on the shared range (n <= 13, k in {2, 3, 4},
// both producers) certify_gossip_symbolic /
// certify_exchange_gossip_symbolic produce a GossipReport bit-for-bit
// identical to exact validate_gossip's — on the clean schedules AND on
// the truncated-schedule failure, whose "gossip incomplete after all
// rounds" verdict is shared.  Beyond the wall, the engine certifies
// n = 40 gather-broadcast (2^41 - 2 exchanges) and the checked
// counters refuse the n = 63 dimension-exchange total (n * 2^(n-1)
// overflows 64 bits) instead of wrapping.  Handcrafted violations of
// the group structure are rejected, and the WorkerPool-sharded checks
// reproduce the single-thread reports exactly.
#include <gtest/gtest.h>

#include <vector>

// ASan detection across GCC (__SANITIZE_ADDRESS__) and Clang
// (__has_feature); used to keep one magnitude-boundary run out of the
// ~45x-slower sanitizer builds.
#if defined(__SANITIZE_ADDRESS__)
#define SHC_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SHC_ASAN_ENABLED 1
#endif
#endif

#include "shc/gossip/gossip.hpp"
#include "shc/gossip/symbolic_gossip.hpp"
#include "shc/mlbg/params.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/network.hpp"

namespace shc {
namespace {

static_assert(SymbolicRoundSink<SymbolicGossipValidator<SpecView>>,
              "the symbolic gossip validator is a symbolic round sink");
static_assert(SymbolicOracle<CubeOracle>,
              "CubeOracle answers dimension-indexed adjacency with supports");
static_assert(AdjacencyOracle<CubeOracle>,
              "CubeOracle also serves the exact validators");

void expect_same_report(const GossipReport& exact, const GossipReport& sym,
                        const char* what) {
  EXPECT_TRUE(exact == sym)
      << what << ":\n  exact:    ok=" << exact.ok << " \"" << exact.error
      << "\" rounds=" << exact.rounds << " complete=" << exact.complete
      << " min_time=" << exact.minimum_time
      << " maxlen=" << exact.max_call_length
      << " exchanges=" << exact.total_exchanges << "\n  symbolic: ok="
      << sym.ok << " \"" << sym.error << "\" rounds=" << sym.rounds
      << " complete=" << sym.complete << " min_time=" << sym.minimum_time
      << " maxlen=" << sym.max_call_length
      << " exchanges=" << sym.total_exchanges;
}

// ---- dimension-exchange parity ----------------------------------------

TEST(SymbolicGossipParity, ExchangeReportsMatchExactForAllNUpTo13) {
  for (int n = 1; n <= 13; ++n) {
    const HypercubeView qn(n);
    const auto exact = validate_gossip(qn, hypercube_exchange_gossip(n), 1);
    const auto sym = certify_exchange_gossip_symbolic(n);
    expect_same_report(exact, sym.report, ("n=" + std::to_string(n)).c_str());
    ASSERT_TRUE(sym.report.ok) << sym.report.error;
    EXPECT_TRUE(sym.report.minimum_time);
    EXPECT_EQ(sym.report.total_exchanges,
              static_cast<std::uint64_t>(n) * cube_order(n - 1));
    EXPECT_EQ(sym.checks.groups, static_cast<std::uint64_t>(n));
    if (n >= 2) {
      EXPECT_GT(sym.checks.sampled_calls, 0u)
          << "bit-level spot checks must actually run";
    }
  }
}

TEST(SymbolicGossipParity, ExchangeExpansionIsCallForCallIdentical) {
  // The symbolic producer pins coordinate i to 0 exactly like the
  // concrete one picks u < v, so the expansions are *identical*
  // schedules, not merely equal multisets.
  for (const int n : {1, 3, 6, 10}) {
    const GossipSchedule expanded =
        GossipSchedule::from_symbolic(hypercube_exchange_gossip_symbolic(n));
    EXPECT_TRUE(expanded == hypercube_exchange_gossip(n)) << "n=" << n;
  }
}

// ---- gather-broadcast parity ------------------------------------------

TEST(SymbolicGossipParity, GatherBroadcastReportsMatchExactGridN13K234) {
  for (int n = 4; n <= 13; ++n) {
    for (int k = 2; k <= 4; ++k) {
      if (n <= k + 1) continue;
      const auto spec = design_sparse_hypercube(n, k);
      const SpecView view(spec);
      for (const Vertex root : {Vertex{0}, spec.num_vertices() - 1}) {
        const auto exact = validate_gossip(
            view, sparse_gather_broadcast_gossip(spec, root), spec.k());
        const auto sym = certify_gossip_symbolic(spec, root);
        expect_same_report(
            exact, sym.report,
            ("n=" + std::to_string(n) + " k=" + std::to_string(k) + " root=" +
             std::to_string(root))
                .c_str());
        ASSERT_TRUE(sym.report.ok) << sym.report.error;
        EXPECT_TRUE(sym.report.complete);
        EXPECT_EQ(sym.report.rounds, 2 * n);
        EXPECT_FALSE(sym.report.minimum_time);  // 2n > n: the open-problem gap
        EXPECT_EQ(sym.report.total_exchanges, 2 * (cube_order(n) - 1));
      }
    }
  }
}

TEST(SymbolicGossipParity, CustomCutsMatchToo) {
  for (const auto& [n, cuts] : std::vector<std::pair<int, std::vector<int>>>{
           {10, {3}}, {12, {3, 6}}, {13, {2, 5, 9}}}) {
    const auto spec = SparseHypercubeSpec::construct(n, cuts);
    const SpecView view(spec);
    const auto exact =
        validate_gossip(view, sparse_gather_broadcast_gossip(spec, 0), spec.k());
    const auto sym = certify_gossip_symbolic(spec, 0);
    expect_same_report(exact, sym.report, "custom cuts");
    EXPECT_TRUE(sym.report.ok) << sym.report.error;
  }
}

TEST(SymbolicGossipParity, ExpansionValidatesLikeTheConcreteProducer) {
  const auto spec = design_sparse_hypercube(10, 2);
  const SpecView view(spec);
  const GossipSchedule expanded =
      GossipSchedule::from_symbolic(make_symbolic_gossip_schedule(spec, 0));
  const GossipSchedule concrete = sparse_gather_broadcast_gossip(spec, 0);
  EXPECT_EQ(expanded.num_calls(), concrete.num_calls());
  EXPECT_EQ(expanded.num_path_vertices(), concrete.num_path_vertices());
  expect_same_report(validate_gossip(view, concrete, spec.k()),
                     validate_gossip(view, expanded, spec.k()), "expansion");
}

TEST(SymbolicGossipParity, TruncatedScheduleFailureIsBitForBitToo) {
  // Dropping the last round leaves knowledge incomplete; the symbolic
  // engine shares the exact validator's message for this one failure,
  // so even the failing reports compare bit-for-bit.
  const auto spec = design_sparse_hypercube(9, 2);
  const SpecView view(spec);
  auto sym = make_symbolic_gossip_schedule(spec, 0);
  sym.rounds.pop_back();
  const auto exact =
      validate_gossip(view, GossipSchedule::from_symbolic(sym), spec.k());
  const auto symbolic = validate_gossip_symbolic(view, sym, spec.k());
  EXPECT_FALSE(symbolic.ok);
  EXPECT_NE(symbolic.error.find("gossip incomplete after all rounds"),
            std::string::npos)
      << symbolic.error;
  expect_same_report(exact, symbolic, "truncated");
}

TEST(SymbolicGossipParity, SeededSampleReplayMirrorsTheExactKernel) {
  // Cranked-up sampling expands a large share of every round through
  // the exact structural kernel; the verdict must not change.
  const auto spec = design_sparse_hypercube(10, 3);
  SymbolicGossipOptions sopt;
  sopt.sample_groups_per_round = 64;
  sopt.sample_calls_per_group = 64;
  const auto sym = certify_gossip_symbolic(spec, 0, sopt);
  ASSERT_TRUE(sym.report.ok) << sym.report.error;
  EXPECT_GT(sym.checks.sampled_calls, 1000u);
}

// ---- parallel checks ---------------------------------------------------

TEST(SymbolicGossipThreads, ShardedChecksReproduceTheSerialReport) {
  const auto spec = design_sparse_hypercube(12, 3);
  SymbolicGossipOptions serial;
  SymbolicGossipOptions sharded;
  sharded.threads = 4;
  const auto a = certify_gossip_symbolic(spec, 0, serial);
  const auto b = certify_gossip_symbolic(spec, 0, sharded);
  expect_same_report(a.report, b.report, "threads=4 vs threads=1");
  ASSERT_TRUE(a.report.ok) << a.report.error;
  EXPECT_EQ(a.checks.collision_candidates, b.checks.collision_candidates);
}

TEST(SymbolicGossipThreads, ShardedChecksReproduceTheSerialFailureReport) {
  // Truncated gather-broadcast: the knowledge partition (whose heavy
  // reductions run as pooled merge trees when threads > 1) is exercised
  // all the way to the "incomplete" verdict — the failing report must
  // also be bit-for-bit thread-count independent.
  const auto spec = design_sparse_hypercube(12, 3);
  const SpecView view(spec);
  auto s = make_symbolic_gossip_schedule(spec, 0);
  s.rounds.resize(static_cast<std::size_t>(s.rounds.size() - 2));
  SymbolicGossipOptions sharded;
  sharded.threads = 4;
  const auto serial_rep = validate_gossip_symbolic(view, s, spec.k());
  const auto sharded_rep = validate_gossip_symbolic(view, s, spec.k(), sharded);
  expect_same_report(serial_rep, sharded_rep, "threads=4 vs threads=1 failing");
  EXPECT_FALSE(serial_rep.ok);
  EXPECT_FALSE(serial_rep.complete);
}

// ---- handcrafted violations -------------------------------------------

GossipReport check_on_cube(const SymbolicSchedule& s, int n, int k,
                           const SymbolicGossipOptions& sopt = {}) {
  const CubeOracle oracle(n);
  return validate_gossip_symbolic(oracle, s, k, sopt);
}

TEST(SymbolicGossipViolations, DroppedGroupLeavesKnowledgeIncomplete) {
  auto s = hypercube_exchange_gossip_symbolic(5);
  s.rounds[2].groups.clear();
  s.rounds[2].group_pattern.clear();
  const auto rep = check_on_cube(s, 5, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("incomplete"), std::string::npos) << rep.error;
}

TEST(SymbolicGossipViolations, OverlappingEndpointsDetected) {
  // Duplicate a round's only group: every caller appears in two
  // exchanges — the symbolic form of "vertex in two exchanges".
  auto s = hypercube_exchange_gossip_symbolic(5);
  s.rounds[1].groups.push_back(s.rounds[1].groups[0]);
  s.rounds[1].group_pattern.push_back(s.rounds[1].group_pattern[0]);
  const auto rep = check_on_cube(s, 5, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("two exchanges"), std::string::npos) << rep.error;
}

TEST(SymbolicGossipViolations, CountMismatchIsMultiplicityAccountingError) {
  auto s = hypercube_exchange_gossip_symbolic(5);
  s.rounds[0].groups[0].count += 1;
  const auto rep = check_on_cube(s, 5, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("multiplicity accounting"), std::string::npos)
      << rep.error;
}

TEST(SymbolicGossipViolations, SelfExchangeCycleRejected) {
  // A 4-hop cycle returning to its start uses four distinct edges but
  // pairs every caller with itself — the exact validator would see the
  // endpoint twice; the symbolic engine rejects the pattern directly.
  SymbolicScheduleBuilder b(0, 4);
  b.begin_round();
  CallGroup g;
  g.prefix = 0;
  g.free_mask = 0;
  g.count = 1;
  const Vertex patt[] = {0, 1, 3, 2, 0};
  b.end_call_group(g, patt);
  b.end_round();
  const auto rep = check_on_cube(std::move(b).take(), 4, 4);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("exchange with itself"), std::string::npos)
      << rep.error;
}

TEST(SymbolicGossipViolations, SharedEdgeBetweenGroupsDetected) {
  // 2 -> 0 -> 1 and 3 -> 1 -> 0 on Q_3: endpoints {2,1} and {3,0} are
  // disjoint, but both paths route through edge {0, 1}.
  SymbolicScheduleBuilder b(0, 3);
  b.begin_round();
  CallGroup g;
  g.prefix = 0b010;
  g.free_mask = 0;
  g.count = 1;
  const Vertex p1[] = {0, 0b010, 0b011};
  b.end_call_group(g, p1);
  g.prefix = 0b011;
  const Vertex p2[] = {0, 0b010, 0b011};
  b.end_call_group(g, p2);
  b.end_round();
  const auto rep = check_on_cube(std::move(b).take(), 3, 2);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("edge collision"), std::string::npos) << rep.error;
}

TEST(SymbolicGossipViolations, GatherHalfAloneIsIncomplete) {
  // The bidirectional-union accounting in action: after only the
  // gather half, the root's class is complete but the leaf classes are
  // not — completion must fail.
  const auto spec = design_sparse_hypercube(9, 2);
  const SpecView view(spec);
  auto s = make_symbolic_gossip_schedule(spec, 0);
  s.rounds.resize(static_cast<std::size_t>(s.rounds.size() / 2));
  const auto rep = validate_gossip_symbolic(view, s, spec.k());
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(rep.complete);
  EXPECT_NE(rep.error.find("incomplete"), std::string::npos) << rep.error;
}

TEST(SymbolicGossipViolations, SampledReplayCatchesGraphDisagreement) {
  // Produce against one spec, validate against a sparser one: the
  // symbolic representative checks or the concrete sampled replay must
  // notice the routes are not edges.
  const auto produce = SparseHypercubeSpec::construct_base(10, 3);
  const auto sym = make_symbolic_gossip_schedule(produce, 0);
  const auto other = SparseHypercubeSpec::construct_base(10, 4);
  const SpecView view(other);
  SymbolicGossipOptions sopt;
  sopt.sample_groups_per_round = 64;
  sopt.sample_calls_per_group = 64;
  const auto rep = validate_gossip_symbolic(view, sym, /*k=*/4, sopt);
  EXPECT_FALSE(rep.ok) << "routes of construct_base(10,3) are not edges of "
                          "construct_base(10,4)";
}

TEST(SymbolicGossipViolations, DimensionMismatchRefused) {
  const auto s = hypercube_exchange_gossip_symbolic(5);
  const auto rep = check_on_cube(s, 6, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("does not match"), std::string::npos) << rep.error;
}

// ---- collision modes: ledger vs pair sweep ----------------------------

TEST(SymbolicGossipModes, LedgerAndPairSweepReportsMatch) {
  SymbolicGossipOptions pair_sweep;
  pair_sweep.collision_mode = CollisionMode::kPairSweep;
  for (const int n : {8, 10, 13}) {
    for (int k = 2; k <= 4; ++k) {
      const auto spec = design_sparse_hypercube(n, k);
      const auto ledger = certify_gossip_symbolic(spec, 0);
      const auto pairs = certify_gossip_symbolic(spec, 0, pair_sweep);
      expect_same_report(pairs.report, ledger.report,
                         ("modes n=" + std::to_string(n) +
                          " k=" + std::to_string(k))
                             .c_str());
      ASSERT_TRUE(ledger.report.ok) << ledger.report.error;
      EXPECT_EQ(ledger.checks.collision_candidates, 0u)
          << "ledger mode never enumerates candidate pairs";
    }
  }
  const auto ledger = certify_exchange_gossip_symbolic(13);
  const auto pairs = certify_exchange_gossip_symbolic(13, pair_sweep);
  expect_same_report(pairs.report, ledger.report, "exchange modes");
  ASSERT_TRUE(ledger.report.ok) << ledger.report.error;
}

TEST(SymbolicGossipModes, HandcraftedViolationsMatchBitForBit) {
  SymbolicGossipOptions pair_sweep;
  pair_sweep.collision_mode = CollisionMode::kPairSweep;

  // Overlapping endpoints (a duplicated exchange group).
  auto dup = hypercube_exchange_gossip_symbolic(5);
  dup.rounds[1].groups.push_back(dup.rounds[1].groups[0]);
  dup.rounds[1].group_pattern.push_back(dup.rounds[1].group_pattern[0]);
  const auto dup_ledger = check_on_cube(dup, 5, 1);
  const auto dup_pairs = check_on_cube(dup, 5, 1, pair_sweep);
  EXPECT_FALSE(dup_ledger.ok);
  EXPECT_NE(dup_ledger.error.find("two exchanges"), std::string::npos)
      << dup_ledger.error;
  expect_same_report(dup_pairs, dup_ledger, "duplicated endpoints");

  // A shared edge between two concurrent multi-hop exchanges.
  SymbolicScheduleBuilder b(0, 3);
  b.begin_round();
  CallGroup g;
  g.prefix = 0b010;
  g.free_mask = 0;
  g.count = 1;
  const Vertex p1[] = {0, 0b010, 0b011};
  b.end_call_group(g, p1);
  g.prefix = 0b011;
  const Vertex p2[] = {0, 0b010, 0b011};
  b.end_call_group(g, p2);
  b.end_round();
  const auto shared = std::move(b).take();
  const auto edge_ledger = check_on_cube(shared, 3, 2);
  const auto edge_pairs = check_on_cube(shared, 3, 2, pair_sweep);
  EXPECT_FALSE(edge_ledger.ok);
  EXPECT_NE(edge_ledger.error.find("edge collision"), std::string::npos)
      << edge_ledger.error;
  expect_same_report(edge_pairs, edge_ledger, "shared edge");
}

TEST(SymbolicGossipModes, PairSweepBudgetMessageNamesRoundBudgetAndKnob) {
  // Every round's endpoint sweep sees at least two subcubes, so a
  // node budget of 1 trips immediately — and the message must name the
  // round, the budget, and the knob.
  SymbolicGossipOptions starved;
  starved.collision_mode = CollisionMode::kPairSweep;
  starved.collision_budget = 1;
  const auto rep =
      check_on_cube(hypercube_exchange_gossip_symbolic(5), 5, 1, starved);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.error,
            "round 1: endpoint disjointness analysis exceeded its budget "
            "(node budget 1; raise SymbolicGossipOptions::collision_budget "
            "or switch to CollisionMode::kLedger)");
}

// ---- the boundary ------------------------------------------------------

TEST(SymbolicGossipBoundary, ExchangeGossipCertifiesAtN59WithExactCount) {
  // n = 59 is the largest n where the dimension-exchange total
  // n * 2^(n-1) still fits 64 bits; the whole certification is O(n)
  // groups, so "past the 2^13 wall" costs microseconds here.
  const auto cert = certify_exchange_gossip_symbolic(59);
  ASSERT_TRUE(cert.report.ok) << cert.report.error;
  EXPECT_TRUE(cert.report.minimum_time);
  EXPECT_EQ(cert.report.rounds, 59);
  EXPECT_EQ(cert.report.total_exchanges, 59u * (std::uint64_t{1} << 58));
  // The pair total 2^59 x 2^59 is past 64 bits — saturated, flagged.
  EXPECT_FALSE(cert.checks.classes.known_pairs_exact);
}

TEST(SymbolicGossipBoundary, ExchangeCountOverflowRefusedExactlyAtN60) {
  // n = 60 is the first dimension where the total n * 2^(n-1) breaks
  // 64 bits, and it breaks mid-run: each round adds 2^59 exchanges, so
  // the accumulator is exact through round 31 (31 * 2^59 < 2^64) and
  // round 32's accumulation would hit 2^64 on the nose.  The checked
  // counter must refuse at that exact round and leave the running total
  // untouched (refusal, not saturation: total_exchanges is
  // verdict-bearing).
  const auto cert = certify_exchange_gossip_symbolic(60);
  EXPECT_FALSE(cert.report.ok);
  EXPECT_EQ(cert.report.error,
            "round 32: total exchange count overflowed 64 bits");
  EXPECT_EQ(cert.report.total_exchanges, 31u * (std::uint64_t{1} << 59));
}

TEST(SymbolicGossipBoundary, ExchangeCountOverflowRefusedAtN63) {
  // 63 * 2^62 exceeds 2^64: the checked counter must refuse explicitly
  // (wrapping would certify garbage totals).
  const auto cert = certify_exchange_gossip_symbolic(63);
  EXPECT_FALSE(cert.report.ok);
  EXPECT_NE(cert.report.error.find("overflowed 64 bits"), std::string::npos)
      << cert.report.error;
}

TEST(SymbolicGossipBoundary, KnownPairsSaturateExplicitlyPastTwoPow64) {
  // At n = 59 completion, class-size x knowledge-count = 2^59 * 2^59:
  // the pair total (the N^2 the exact validator would store as bits)
  // saturates with the exactness flag cleared instead of wrapping.
  const auto cert = certify_exchange_gossip_symbolic(40);
  ASSERT_TRUE(cert.report.ok) << cert.report.error;
  EXPECT_FALSE(cert.checks.classes.known_pairs_exact);
  EXPECT_EQ(cert.checks.classes.known_pairs, ~std::uint64_t{0});
}

TEST(SymbolicGossipBoundary, GatherBroadcastCertifiesPastTheWall) {
  // n = 22 gather-broadcast: 2^23 - 2 exchanges, hopelessly past the
  // exact validator's 2^13 wall, certified in well under a second.
  const auto spec = design_sparse_hypercube(22, 2);
  const auto cert = certify_gossip_symbolic(spec, 0);
  ASSERT_TRUE(cert.report.ok) << cert.report.error;
  EXPECT_TRUE(cert.report.complete);
  EXPECT_EQ(cert.report.rounds, 44);
  EXPECT_EQ(cert.report.total_exchanges, 2 * (cube_order(22) - 1));
}

TEST(SymbolicGossipBoundary, GatherBroadcastCertifiesTheRepresentationLimit) {
  // n = 63 on construct_base(63, 6): 126 rounds, 2^64 - 2 exchanges —
  // one short of the counter's own limit — certifying the mutual
  // knowledge of 2^63 vertices in ~half a minute.  This is the
  // checked-arithmetic boundary the gossip counters exist for.
#ifdef SHC_ASAN_ENABLED
  // ~30 s release becomes ~25 min under ASan; the engine's memory
  // patterns are identically covered by the n = 22 test above, and the
  // counter boundary itself is magnitude, not layout.
  GTEST_SKIP() << "n = 63 boundary run is release-mode only";
#endif
  const auto spec = SparseHypercubeSpec::construct_base(63, 6);
  const auto cert = certify_gossip_symbolic(spec, 0);
  ASSERT_TRUE(cert.report.ok) << cert.report.error;
  EXPECT_TRUE(cert.report.complete);
  EXPECT_EQ(cert.report.rounds, 126);
  EXPECT_EQ(cert.report.total_exchanges, ~std::uint64_t{0} - 1);
  EXPECT_EQ(cert.report.max_call_length, 2);
  EXPECT_FALSE(cert.checks.classes.known_pairs_exact);  // 2^63 x 2^63
}

// ---- producer guards (regression: were debug-only asserts) ------------

TEST(SymbolicGossipGuards, ConcreteExchangeProducerRefusesOversizedN) {
  EXPECT_THROW((void)hypercube_exchange_gossip(29), std::invalid_argument);
  EXPECT_THROW((void)hypercube_exchange_gossip(0), std::invalid_argument);
  try {
    (void)hypercube_exchange_gossip(29);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("symbolic"), std::string::npos)
        << "the failure must point at the symbolic producer: " << e.what();
  }
}

TEST(SymbolicGossipGuards, ConcreteGatherBroadcastRefusesOversizedN) {
  const auto spec = SparseHypercubeSpec::construct_base(21, 4);
  EXPECT_THROW((void)sparse_gather_broadcast_gossip(spec, 0),
               std::invalid_argument);
  try {
    (void)sparse_gather_broadcast_gossip(spec, 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("certify_gossip_symbolic"),
              std::string::npos)
        << e.what();
  }
}

TEST(SymbolicGossipGuards, SourceOutOfRangeMatchesTheOtherEngines) {
  const auto spec = design_sparse_hypercube(10, 2);
  const auto cert = certify_gossip_symbolic(spec, cube_order(10));
  EXPECT_FALSE(cert.report.ok);
  EXPECT_EQ(cert.report.error, "source out of range");
}

}  // namespace
}  // namespace shc
