// Parity suite for the streaming + parallel validation pipeline.
//
// The contract under test: validate_broadcast_parallel and the
// streaming sink produce reports *bit-for-bit identical* to the serial
// validate_broadcast on every input — clean schedules, mutilated
// schedules, and handcrafted violations of each clause — and
// analyze_congestion_parallel reproduces the serial congestion stats
// including the histogram.  The streaming pipeline additionally bounds
// its arena by the largest single round.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/params.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/congestion.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/round_sink.hpp"
#include "shc/sim/streaming_validator.hpp"
#include "shc/sim/validator.hpp"

namespace shc {
namespace {

static_assert(RoundSink<FlatSchedule>,
              "the whole-arena builder is a RoundSink");
static_assert(RoundSink<StreamingBroadcastValidator<SpecView>>,
              "the streaming validator is a RoundSink");
static_assert(RoundSink<StreamingBroadcastValidator<NetworkView>>,
              "type-erased oracles stream too");

/// k = 2, 3, 4 sweep specs (k = cuts.size() + 1).
std::vector<std::pair<int, std::vector<int>>> sweep_specs() {
  return {{8, {3}}, {8, {2, 4}}, {9, {2, 4, 6}}};
}

void expect_same_report(const ValidationReport& serial,
                        const ValidationReport& other, const char* what) {
  EXPECT_TRUE(serial == other)
      << what << " diverged from serial:\n  serial: ok=" << serial.ok << " \""
      << serial.error << "\" rounds=" << serial.rounds
      << " informed=" << serial.informed << " calls=" << serial.total_calls
      << " maxlen=" << serial.max_call_length << "\n  other:  ok=" << other.ok
      << " \"" << other.error << "\" rounds=" << other.rounds
      << " informed=" << other.informed << " calls=" << other.total_calls
      << " maxlen=" << other.max_call_length;
}

void expect_all_validators_agree(const SpecView& view, const FlatSchedule& s,
                                 const ValidationOptions& opt, const char* what) {
  const ValidationReport serial = validate_broadcast(view, s, opt);
  for (int threads : {1, 2, 4}) {
    expect_same_report(serial, validate_broadcast_parallel(view, s, opt, threads),
                       what);
    expect_same_report(serial, validate_broadcast_streaming(view, s, opt, threads),
                       what);
  }
}

TEST(ValidatorParity, CleanSchedulesAcrossK234) {
  for (const auto& [n, cuts] : sweep_specs()) {
    const auto spec = SparseHypercubeSpec::construct(n, cuts);
    const SpecView view(spec);
    ValidationOptions opt;
    opt.k = spec.k();
    for (Vertex source : {Vertex{0}, spec.num_vertices() - 1}) {
      const auto schedule = make_broadcast_schedule(spec, source);
      const auto serial = validate_broadcast(view, schedule, opt);
      ASSERT_TRUE(serial.ok) << "k=" << spec.k() << ": " << serial.error;
      ASSERT_TRUE(serial.minimum_time);
      expect_all_validators_agree(view, schedule, opt,
                                  "clean Broadcast_k schedule");
    }
  }
}

TEST(ValidatorParity, DropCallsMutilationsDetectedIdentically) {
  for (const auto& [n, cuts] : sweep_specs()) {
    const auto spec = SparseHypercubeSpec::construct(n, cuts);
    const SpecView view(spec);
    ValidationOptions opt;
    opt.k = spec.k();
    const auto schedule = make_broadcast_schedule(spec, 0);
    std::mt19937_64 rng(2026);
    for (int trial = 0; trial < 4; ++trial) {
      const auto degraded = drop_calls(schedule, 0.25, rng);
      const auto serial = validate_broadcast(view, degraded, opt);
      EXPECT_FALSE(serial.ok);  // 2^8 - 1 calls at 25% drop always loses some
      expect_all_validators_agree(view, degraded, opt, "drop_calls mutilation");
    }
  }
}

TEST(ValidatorParity, VertexDisjointModelAcrossK234) {
  for (const auto& [n, cuts] : sweep_specs()) {
    const auto spec = SparseHypercubeSpec::construct(n, cuts);
    const SpecView view(spec);
    ValidationOptions opt;
    opt.k = spec.k();
    opt.require_vertex_disjoint = true;
    const auto schedule = make_broadcast_schedule(spec, 0);
    expect_all_validators_agree(view, schedule, opt, "vertex-disjoint model");
  }
}

TEST(ValidatorParity, HandcraftedViolationsOfEveryClause) {
  const HypercubeView q3_virtual(3);
  // Handcrafted schedules exercise every failure clause; each must
  // produce the identical report from all three validators.  The
  // type-erased NetworkView doubles as the oracle to cover that
  // instantiation too.
  struct Case {
    const char* name;
    FlatSchedule schedule;
    ValidationOptions opt;
  };
  std::vector<Case> cases;

  ValidationOptions k2;
  k2.k = 2;

  {
    Case c{"empty round", {}, k2};
    c.schedule.source = 0;
    c.schedule.begin_round();
    cases.push_back(std::move(c));
  }
  {
    // Degenerate calls survive only the legacy shim, as in real inputs.
    BroadcastSchedule legacy;
    legacy.source = 0;
    legacy.rounds.push_back(Round{{Call{{0}}}});
    cases.push_back(Case{"degenerate call", FlatSchedule::from_legacy(legacy), k2});
  }
  {
    Case c{"caller not informed", {}, k2};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({1, 3});
    cases.push_back(std::move(c));
  }
  {
    Case c{"call too long", {}, k2};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 1, 3, 2});  // length 3 > k=2
    cases.push_back(std::move(c));
  }
  {
    Case c{"receiver already informed", {}, k2};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 1});
    c.schedule.begin_round();
    c.schedule.add_call({1, 0});
    cases.push_back(std::move(c));
  }
  {
    Case c{"receiver targeted twice", {}, k2};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 1});
    c.schedule.begin_round();
    c.schedule.add_call({0, 4});
    c.schedule.add_call({1, 3});
    c.schedule.add_call({1, 3});
    cases.push_back(std::move(c));
  }
  {
    Case c{"no such edge", {}, k2};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 5});  // 0 xor 5 = 101: not cube-adjacent
    cases.push_back(std::move(c));
  }
  {
    // Single-hop duplicate edge, only reachable when redundant
    // receivers are allowed — pins the fast path's rule that edge
    // checks may be skipped for single-hop rounds *only* under
    // forbid_redundant_receivers.
    ValidationOptions redundant_ok = k2;
    redundant_ok.forbid_redundant_receivers = false;
    Case c{"single-hop edge used twice", {}, redundant_ok};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 1});
    c.schedule.begin_round();
    c.schedule.add_call({0, 1});
    c.schedule.add_call({1, 0});  // same undirected edge {0,1}
    cases.push_back(std::move(c));
  }
  {
    Case c{"edge over capacity", {}, k2};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 1});
    c.schedule.begin_round();
    c.schedule.add_call({0, 4, 5});
    c.schedule.add_call({1, 5, 4});  // edge {4,5} used twice
    cases.push_back(std::move(c));
  }
  {
    Case c{"endpoint out of range", {}, k2};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 9});
    cases.push_back(std::move(c));
  }
  {
    Case c{"interior path vertex out of range", {}, k2};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 9, 1});
    cases.push_back(std::move(c));
  }
  {
    ValidationOptions vd = k2;
    vd.require_vertex_disjoint = true;
    Case c{"vertex touched by two calls", {}, vd};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 1});
    c.schedule.begin_round();
    c.schedule.add_call({0, 2, 3});
    c.schedule.add_call({1, 3, 7});  // both touch vertex 3
    cases.push_back(std::move(c));
  }
  {
    Case c{"incomplete broadcast", {}, k2};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 1});
    cases.push_back(std::move(c));
  }
  {
    Case c{"source out of range", {}, k2};
    c.schedule.source = 9;
    c.schedule.begin_round();
    c.schedule.add_call({0, 1});
    cases.push_back(std::move(c));
  }
  {
    // Clean partial schedule under require_completion = false: the one
    // success case in this list, so the ok-path is compared too.
    ValidationOptions partial = k2;
    partial.require_completion = false;
    Case c{"partial without completion requirement", {}, partial};
    c.schedule.source = 0;
    c.schedule.begin_round();
    c.schedule.add_call({0, 1});
    cases.push_back(std::move(c));
  }

  for (const Case& c : cases) {
    const ValidationReport serial =
        validate_broadcast(q3_virtual, c.schedule, c.opt);
    for (int threads : {1, 2, 3}) {
      expect_same_report(
          serial, validate_broadcast_parallel(q3_virtual, c.schedule, c.opt, threads),
          c.name);
      expect_same_report(
          serial, validate_broadcast_streaming(q3_virtual, c.schedule, c.opt, threads),
          c.name);
    }
  }
}

TEST(CongestionParity, ParallelShardsReproduceSerialStatsExactly) {
  for (const auto& [n, cuts] : sweep_specs()) {
    const auto spec = SparseHypercubeSpec::construct(n, cuts);
    const auto schedule = make_broadcast_schedule(spec, 0);
    const CongestionStats serial = analyze_congestion(schedule);
    for (int threads : {1, 2, 4, 7}) {
      const CongestionStats par = analyze_congestion_parallel(schedule, threads);
      EXPECT_TRUE(serial == par)
          << "threads=" << threads << ": distinct " << serial.distinct_edges_used
          << " vs " << par.distinct_edges_used << ", hops "
          << serial.total_edge_hops << " vs " << par.total_edge_hops
          << ", max " << serial.max_edge_load_total << " vs "
          << par.max_edge_load_total << ", hist " << serial.load_histogram.size()
          << " vs " << par.load_histogram.size();
    }
  }

  // A mutilated schedule shards identically too.
  const auto spec = SparseHypercubeSpec::construct_base(8, 3);
  std::mt19937_64 rng(7);
  const auto degraded = drop_calls(make_broadcast_schedule(spec, 0), 0.3, rng);
  EXPECT_TRUE(analyze_congestion(degraded) ==
              analyze_congestion_parallel(degraded, 3));
}

TEST(CongestionParity, MergeFoldsEdgeDisjointShards) {
  // Two stats over disjoint edge sets merge to the union's stats.
  FlatSchedule a;
  a.source = 0;
  a.begin_round();
  a.add_call({0, 1});
  a.add_call({0, 1});  // edge {0,1} load 2 (infeasible, but stats don't care)
  FlatSchedule b;
  b.source = 0;
  b.begin_round();
  b.add_call({2, 3});

  CongestionStats merged = analyze_congestion(a);
  merged.merge(analyze_congestion(b));
  EXPECT_EQ(merged.distinct_edges_used, 2u);
  EXPECT_EQ(merged.total_edge_hops, 3u);
  EXPECT_EQ(merged.max_edge_load_total, 2);
  ASSERT_EQ(merged.load_histogram.size(), 3u);
  EXPECT_EQ(merged.load_histogram[1], 1u);
  EXPECT_EQ(merged.load_histogram[2], 1u);
  EXPECT_DOUBLE_EQ(merged.mean_edge_load, 1.5);
}

TEST(StreamingPipeline, EmitIntoFlatScheduleSinkEqualsMaterializedBuilder) {
  const auto spec = design_sparse_hypercube(10, 3);
  const auto direct = make_broadcast_schedule(spec, 5);
  FlatSchedule sink;
  sink.source = 5;
  emit_broadcast_rounds(spec, 5, sink);
  EXPECT_TRUE(direct == sink);
}

TEST(StreamingPipeline, CertifiesWithRoundBoundedArena) {
  const auto spec = design_sparse_hypercube(14, 2);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto cert = certify_broadcast_streaming(spec, 0, opt, 2);
  ASSERT_TRUE(cert.report.ok) << cert.report.error;
  EXPECT_TRUE(cert.report.minimum_time);
  EXPECT_EQ(cert.calls, spec.num_vertices() - 1);
  EXPECT_EQ(cert.report.total_calls, spec.num_vertices() - 1);

  // The streaming memory claim: scratch never exceeds the largest
  // single round, which is itself far below the whole schedule.
  EXPECT_GT(cert.peak_round_arena_bytes, 0u);
  EXPECT_LE(cert.peak_round_arena_bytes, cert.largest_round_arena_bytes);
  EXPECT_LT(cert.largest_round_arena_bytes, cert.whole_schedule_arena_bytes);

  // And the verdict equals the serial validator's on the materialized
  // schedule.
  const auto schedule = make_broadcast_schedule(spec, 0);
  const SpecView view(spec);
  expect_same_report(validate_broadcast(view, schedule, opt), cert.report,
                     "streaming certification");
}

TEST(StreamingPipeline, RejectsOversizedNInsteadOfAllocating) {
  // The n <= 32 limit is a hard error, not a debug assert: user input
  // (shc_sweep --big) reaches this path, and beyond 32 the producer
  // frontier alone would be a 2^n-vertex allocation.
  const auto spec = SparseHypercubeSpec::construct_base(33, 3);
  ValidationOptions opt;
  opt.k = spec.k();
  const auto cert = certify_broadcast_streaming(spec, 0, opt, 1);
  EXPECT_FALSE(cert.report.ok);
  EXPECT_NE(cert.report.error.find("limit 32"), std::string::npos)
      << cert.report.error;
  EXPECT_EQ(cert.calls, 0u);

  // An out-of-range source gets the serial validator's report, in all
  // build types, instead of tripping the producer's Debug assert.
  const auto small = SparseHypercubeSpec::construct_base(5, 2);
  ValidationOptions opt5;
  opt5.k = small.k();
  const auto bad_source =
      certify_broadcast_streaming(small, small.num_vertices(), opt5, 1);
  EXPECT_FALSE(bad_source.report.ok);
  EXPECT_EQ(bad_source.report.error, "source out of range");
}

TEST(StreamingPipeline, AbortsProducerAfterFirstFailedRound) {
  // A sink that failed reports aborted(); emit_broadcast_rounds checks
  // it between rounds, so a doomed run does not stream all 2^n calls.
  const auto spec = SparseHypercubeSpec::construct_base(6, 2);
  const SpecView view(spec);
  ValidationOptions opt;
  opt.k = 1;  // scheme needs k = 2: round 1..  fails as soon as a detour appears
  StreamingBroadcastValidator<SpecView> sink(view, 0, opt, 2);
  emit_broadcast_rounds(spec, 0, sink);
  const auto rep = sink.finish();
  EXPECT_FALSE(rep.ok);
  EXPECT_TRUE(sink.aborted());
  // Strictly fewer calls were streamed than the schedule holds.
  EXPECT_LT(sink.calls_seen(), spec.num_vertices() - 1);
}

}  // namespace
}  // namespace shc
