// Tests for edge-load accounting and failure injection (the Section-5
// congestion discussion).
#include <gtest/gtest.h>

#include <random>

#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/congestion.hpp"
#include "shc/sim/validator.hpp"

namespace shc {
namespace {

BroadcastSchedule tiny_schedule() {
  // Path 0-1-2-3: round 1: 0->2 via 1; round 2: 0->1, 2->3.
  BroadcastSchedule s;
  s.source = 0;
  s.rounds.push_back(Round{{Call{{0, 1, 2}}}});
  s.rounds.push_back(Round{{Call{{0, 1}}, Call{{2, 3}}}});
  return s;
}

TEST(Congestion, CountsLoadsOnKnownSchedule) {
  const auto stats = analyze_congestion(tiny_schedule());
  EXPECT_EQ(stats.distinct_edges_used, 3u);  // {0,1}, {1,2}, {2,3}
  EXPECT_EQ(stats.total_edge_hops, 4u);
  EXPECT_EQ(stats.max_edge_load_total, 2);   // {0,1} used in both rounds
  EXPECT_EQ(stats.max_edge_load_per_round, 1);
  EXPECT_DOUBLE_EQ(stats.mean_edge_load, 4.0 / 3.0);
  // Histogram: two edges with load 1, one with load 2.
  ASSERT_EQ(stats.load_histogram.size(), 3u);
  EXPECT_EQ(stats.load_histogram[1], 2u);
  EXPECT_EQ(stats.load_histogram[2], 1u);
}

TEST(Congestion, RequiredCapacityIsOneForFeasibleSchedules) {
  const auto spec = SparseHypercubeSpec::construct(7, {2, 4});
  for (Vertex s : {Vertex{0}, Vertex{77}, Vertex{127}}) {
    const auto schedule = make_broadcast_schedule(spec, s);
    EXPECT_EQ(required_edge_capacity(schedule), 1) << "source " << s;
  }
}

TEST(Congestion, EmptyScheduleIsZero) {
  const auto stats = analyze_congestion(BroadcastSchedule{});
  EXPECT_EQ(stats.distinct_edges_used, 0u);
  EXPECT_EQ(stats.total_edge_hops, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_edge_load, 0.0);
}

TEST(Congestion, SparseCubeCarriesMoreLoadPerEdgeThanQn) {
  // The qualitative Section-5 claim: with fewer edges, the broadcast's
  // total hops spread over fewer distinct edges.
  const auto spec = SparseHypercubeSpec::construct_base(8, 3);
  const auto sparse_stats = analyze_congestion(make_broadcast_schedule(spec, 0));
  // The same traffic volume on Q_8 (binomial) touches one edge per call.
  EXPECT_GT(sparse_stats.total_edge_hops, cube_order(8) - 1);
  EXPECT_GE(sparse_stats.max_edge_load_total, 2);
}

TEST(FailureInjection, DroppedCallsBreakCompletion) {
  const auto spec = SparseHypercubeSpec::construct_base(6, 2);
  const auto schedule = make_broadcast_schedule(spec, 0);
  std::mt19937_64 rng(42);
  const auto degraded = drop_calls(schedule, 0.3, rng);
  ASSERT_LT(degraded.num_calls(), schedule.num_calls());
  const SparseHypercubeView view(spec);
  ValidationOptions opt;
  opt.k = 2;
  const auto rep = validate_broadcast(view, degraded, opt);
  EXPECT_FALSE(rep.ok);  // something was lost (64 calls at 30% drop)
}

TEST(FailureInjection, ZeroRateIsIdentity) {
  const auto spec = SparseHypercubeSpec::construct_base(5, 2);
  const auto schedule = make_broadcast_schedule(spec, 3);
  std::mt19937_64 rng(1);
  const auto copy = drop_calls(schedule, 0.0, rng);
  EXPECT_EQ(copy.num_calls(), schedule.num_calls());
  const SparseHypercubeView view(spec);
  EXPECT_TRUE(validate_minimum_time_k_line(view, copy, 2).ok);
}

TEST(CompetingTraffic, CollisionCountsBounded) {
  const auto spec = SparseHypercubeSpec::construct_base(8, 3);
  const auto schedule = make_broadcast_schedule(spec, 0);
  std::mt19937_64 rng(7);
  const std::size_t flows = 50;
  const auto collisions = competing_traffic_collisions(schedule, 8, 2, flows, rng);
  ASSERT_EQ(collisions.size(), static_cast<std::size_t>(schedule.num_rounds()));
  for (std::size_t c : collisions) EXPECT_LE(c, flows);
  // Later rounds carry more broadcast calls, so collisions should not
  // be uniformly zero.
  std::size_t total = 0;
  for (std::size_t c : collisions) total += c;
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace shc
