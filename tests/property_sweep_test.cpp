// Cross-module property sweeps: the construction's guarantees must hold
// for *any* Condition-A labeling (not just the shipped ones), for wide
// (n, k) ranges via closed forms, and for sampled sources at larger n.
#include <gtest/gtest.h>

#include "shc/shc.hpp"

namespace shc {
namespace {

// Theorem 4/6 is labeling-agnostic: plug exact-search labelings (which
// differ from Hamming/Lemma-2 ones) into the construction and re-verify.
class ExactLabelingConstruction : public ::testing::TestWithParam<int> {};

TEST_P(ExactLabelingConstruction, BroadcastStillMinimumTime) {
  const int m = GetParam();
  const auto exact = max_condition_a_labels(m);
  const auto labeling = find_condition_a_labeling(m, exact.lambda);
  ASSERT_TRUE(labeling.has_value());
  ASSERT_TRUE(labeling->satisfies_condition_a());

  const int n = m + 4;
  const auto spec = SparseHypercubeSpec::construct_base(n, m, *labeling);
  const SparseHypercubeView view(spec);
  for (Vertex s = 0; s < spec.num_vertices(); s += 3) {
    const auto rep =
        validate_minimum_time_k_line(view, make_broadcast_schedule(spec, s), 2);
    ASSERT_TRUE(rep.ok) << "m=" << m << " s=" << s << ": " << rep.error;
    EXPECT_TRUE(rep.minimum_time);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallM, ExactLabelingConstruction, ::testing::Range(1, 5));

// Degree formula vs bound, exhaustively across the whole supported range
// of (n, k) — pure closed forms, no materialization.
TEST(WideSweep, EveryConstructionRespectsItsBound) {
  for (int k = 2; k <= 8; ++k) {
    for (int n = std::max(k + 1, k * k); n <= 63; ++n) {
      const auto cuts = (k == 2) ? std::vector<int>{theorem5_core(n)}
                                 : theorem7_cuts(n, k);
      const int realized = realized_max_degree(n, cuts);
      const int bound = (k == 2) ? theorem5_upper(n) : theorem7_upper(n, k);
      EXPECT_LE(realized, bound) << "n=" << n << " k=" << k;
      EXPECT_GE(realized, lower_bound_max_degree(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

// Monotonicity: the optimal degree never increases when the call budget
// grows (Property 2 made quantitative).
TEST(WideSweep, OptimalDegreeMonotoneInK) {
  for (int n : {12, 20, 32, 48, 63}) {
    int prev = realized_max_degree(n, optimal_cuts(n, 2));
    for (int k = 3; k <= 8 && k < n; ++k) {
      // The best over j <= k is what monotonicity speaks about.
      int best = prev;
      best = std::min(best, realized_max_degree(n, optimal_cuts(n, k)));
      EXPECT_LE(best, prev) << "n=" << n << " k=" << k;
      prev = best;
    }
  }
}

// Larger-n spot checks with sampled sources (full sweeps live at n <= 10).
class LargerNSampledSources : public ::testing::TestWithParam<int> {};

TEST_P(LargerNSampledSources, BroadcastValidates) {
  const int n = GetParam();
  for (int k : {2, 3}) {
    const auto spec = design_sparse_hypercube(n, k);
    const SparseHypercubeView view(spec);
    // Sample sources across the id range plus structured corners.
    std::vector<Vertex> sources{0, spec.num_vertices() - 1, spec.num_vertices() / 2};
    for (int i = 1; i <= 5; ++i) {
      sources.push_back((spec.num_vertices() / 7) * static_cast<Vertex>(i) + 3);
    }
    for (Vertex s : sources) {
      const auto rep = validate_minimum_time_k_line(
          view, make_broadcast_schedule(spec, s % spec.num_vertices()), k);
      ASSERT_TRUE(rep.ok) << "n=" << n << " k=" << k << " s=" << s << ": " << rep.error;
      EXPECT_TRUE(rep.minimum_time);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ns, LargerNSampledSources, ::testing::Values(11, 12, 13, 14));

// The implicit oracle stays consistent at n far beyond materialization:
// symmetric adjacency, correct degrees, route_flip validity.
class HugeNOracle : public ::testing::TestWithParam<int> {};

TEST_P(HugeNOracle, OracleSelfConsistent) {
  const int n = GetParam();
  const auto spec = design_sparse_hypercube(n, 4);
  Vertex u = 0x1234'5678'9ABC'DEF0ULL & mask_low(n);
  for (int trial = 0; trial < 200; ++trial) {
    u = (u * 6364136223846793005ULL + 1442695040888963407ULL) & mask_low(n);
    std::size_t degree = 0;
    for (Dim i = 1; i <= n; ++i) {
      const Vertex v = flip(u, i);
      EXPECT_EQ(spec.has_edge(u, v), spec.has_edge(v, u));
      if (spec.has_edge_dim(u, i)) ++degree;
      const auto path = route_flip(spec, u, i);
      EXPECT_LE(static_cast<int>(path.size()) - 1, spec.k());
      for (std::size_t j = 0; j + 1 < path.size(); ++j) {
        EXPECT_TRUE(spec.has_edge(path[j], path[j + 1]));
      }
      EXPECT_EQ(path.back() >> i, v >> i);
    }
    EXPECT_EQ(degree, spec.degree(u));
    EXPECT_LE(degree, spec.max_degree());
    EXPECT_GE(degree, spec.min_degree());
  }
}

INSTANTIATE_TEST_SUITE_P(BigN, HugeNOracle, ::testing::Values(24, 32, 48, 63));

// Gossip stays valid for any root choice on a sweep of specs.
TEST(WideSweep, GossipFromManyRoots) {
  const auto spec = SparseHypercubeSpec::construct(8, {2, 4});
  const SparseHypercubeView view(spec);
  for (Vertex root = 0; root < spec.num_vertices(); root += 17) {
    const auto rep = validate_gossip(view, sparse_gather_broadcast_gossip(spec, root),
                                     spec.k());
    ASSERT_TRUE(rep.ok) << "root " << root << ": " << rep.error;
    EXPECT_TRUE(rep.complete);
  }
}

}  // namespace
}  // namespace shc
