// Tests for the baseline broadcast schemes: path/star line broadcast and
// the tree scheduler behind Theorem 1.
#include <gtest/gtest.h>

#include <random>

#include "shc/baseline/path_star.hpp"
#include "shc/baseline/tree_broadcast.hpp"
#include "shc/bits/bitstring.hpp"
#include "shc/graph/algorithms.hpp"
#include "shc/graph/generators.hpp"
#include "shc/mlbg/bounds.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/validator.hpp"

namespace shc {
namespace {

ValidationReport check_line(const Graph& g, const FlatSchedule& s) {
  const GraphView view(g);
  // Unbounded-length line model: k = N - 1.
  return validate_minimum_time_k_line(view, s, static_cast<int>(g.num_vertices()) - 1);
}

class PathBroadcastAllSources : public ::testing::TestWithParam<VertexId> {};

TEST_P(PathBroadcastAllSources, MinimumTimeFromEverySource) {
  const VertexId N = GetParam();
  const Graph g = make_path(N);
  for (VertexId s = 0; s < N; ++s) {
    const auto schedule = path_line_broadcast(N, s);
    const auto rep = check_line(g, schedule);
    ASSERT_TRUE(rep.ok) << "N=" << N << " s=" << s << ": " << rep.error;
    EXPECT_TRUE(rep.minimum_time) << "N=" << N << " s=" << s << " rounds=" << rep.rounds;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PathBroadcastAllSources,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64,
                                           100, 127, 128, 129));

class StarBroadcastAllSources : public ::testing::TestWithParam<VertexId> {};

TEST_P(StarBroadcastAllSources, MinimumTimeFromEverySource) {
  const VertexId N = GetParam();
  const Graph g = make_star(N);
  for (VertexId s = 0; s < N; ++s) {
    const auto schedule = star_line_broadcast(N, s);
    const auto rep = check_line(g, schedule);
    ASSERT_TRUE(rep.ok) << "N=" << N << " s=" << s << ": " << rep.error;
    EXPECT_TRUE(rep.minimum_time) << "N=" << N << " s=" << s;
    // The star is a 2-mlbg: every call has length <= 2.
    EXPECT_LE(rep.max_call_length, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StarBroadcastAllSources,
                         ::testing::Values(2, 3, 4, 5, 8, 9, 16, 33, 64, 100));

TEST(StarBroadcast, IsTwoMlbgWitness) {
  // Definition 3: minimum-time schemes from EVERY vertex with k = 2.
  const VertexId N = 20;
  const Graph g = make_star(N);
  const GraphView view(g);
  for (VertexId s = 0; s < N; ++s) {
    const auto rep = validate_minimum_time_k_line(view, star_line_broadcast(N, s), 2);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_TRUE(rep.minimum_time);
  }
}

TEST(TreeBroadcast, PathAndStarViaGenericScheduler) {
  for (VertexId N : {2u, 5u, 16u, 31u}) {
    for (const Graph& g : {make_path(N), make_star(N)}) {
      const auto result = tree_line_broadcast(g, 0);
      const auto rep = check_line(g, result.schedule);
      ASSERT_TRUE(rep.ok) << rep.error;
      EXPECT_TRUE(result.achieved_minimum)
          << "N=" << N << " rounds=" << result.rounds << "/" << result.minimum_rounds;
    }
  }
}

class Theorem1TreeBroadcast : public ::testing::TestWithParam<int> {};

// Theorem 1's witness: the Figure-1 tree broadcasts in ceil(log2 N)
// rounds from every vertex, with calls no longer than the diameter 2h —
// so it is a k-mlbg for every k >= 2 ceil(log2((N+2)/3)).
TEST_P(Theorem1TreeBroadcast, MinimumTimeFromEverySourceWithDiameterCalls) {
  const int h = GetParam();
  const Graph g = make_theorem1_tree(h);
  const GraphView view(g);
  const int k_threshold = theorem1_k_threshold(g.num_vertices());
  EXPECT_EQ(k_threshold, 2 * h);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto result = theorem1_tree_broadcast(h, s);
    const auto rep = validate_minimum_time_k_line(view, result.schedule, k_threshold);
    ASSERT_TRUE(rep.ok) << "h=" << h << " s=" << s << ": " << rep.error;
    EXPECT_TRUE(rep.minimum_time) << "h=" << h << " s=" << s << " rounds=" << rep.rounds;
    EXPECT_LE(rep.max_call_length, k_threshold);
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, Theorem1TreeBroadcast, ::testing::Range(1, 7));

// The generic scheduler is heuristic on this family; it must still be
// feasible and stay within a factor of the optimum.
TEST(Theorem1TreeGeneric, GenericSchedulerFeasibleNearOptimal) {
  for (int h = 2; h <= 5; ++h) {
    const Graph g = make_theorem1_tree(h);
    for (VertexId s = 0; s < g.num_vertices(); s += 11) {
      const auto result = tree_line_broadcast(g, s);
      const auto rep = check_line(g, result.schedule);
      ASSERT_TRUE(rep.ok) << rep.error;
      EXPECT_LE(result.rounds, 2 * result.minimum_rounds) << "h=" << h << " s=" << s;
    }
  }
}

TEST(TreeBroadcast, CompleteBinaryTreesAchieveMinimum) {
  for (int h = 1; h <= 6; ++h) {
    const Graph g = make_complete_binary_tree(h);
    for (VertexId s = 0; s < g.num_vertices(); s += 3) {
      const auto result = tree_line_broadcast(g, s);
      const auto rep = check_line(g, result.schedule);
      ASSERT_TRUE(rep.ok) << rep.error;
      EXPECT_TRUE(result.achieved_minimum) << "h=" << h << " s=" << s;
    }
  }
}

TEST(TreeBroadcast, CaterpillarsAchieveMinimum) {
  for (auto [spine, legs] : {std::pair{3u, 2u}, std::pair{5u, 3u}, std::pair{8u, 1u}}) {
    const Graph g = make_caterpillar(spine, legs);
    const auto result = tree_line_broadcast(g, 0);
    const auto rep = check_line(g, result.schedule);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_TRUE(result.achieved_minimum)
        << "spine=" << spine << " legs=" << legs << " rounds=" << result.rounds;
  }
}

class RandomTreeBroadcast : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomTreeBroadcast, AlwaysFeasibleUsuallyOptimal) {
  std::mt19937_64 rng(GetParam());
  for (VertexId N : {10u, 33u, 64u, 100u}) {
    const Graph g = make_random_tree(N, rng);
    const auto result = tree_line_broadcast(g, 0);
    const auto rep = check_line(g, result.schedule);
    ASSERT_TRUE(rep.ok) << "seed=" << GetParam() << " N=" << N << ": " << rep.error;
    // Farley [14] guarantees an optimal schedule exists; the greedy
    // scheduler is heuristic on unstructured trees (long skinny trees
    // serialize trunk edges) — require feasibility and a 2x factor; the
    // structured families above are pinned to exact optimality.
    EXPECT_LE(result.rounds, 2 * result.minimum_rounds)
        << "seed=" << GetParam() << " N=" << N;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeBroadcast,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(TreeBroadcast, SingleVertexIsTrivial) {
  GraphBuilder b(1);
  const Graph g = std::move(b).build();
  const auto result = tree_line_broadcast(g, 0);
  EXPECT_EQ(result.rounds, 0);
  EXPECT_TRUE(result.achieved_minimum);
}

}  // namespace
}  // namespace shc
