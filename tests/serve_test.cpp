// Service suite for ServeEngine (shc/api/serve.hpp): malformed input
// answers structured error rows (never a crash), concurrent clients all
// get correct answers, cache hits return the cold run's row bytes
// unchanged, and admission control refuses excess heavy queries while
// an admitted one completes without starving the small ones.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "shc/api/serve.hpp"

namespace shc {
namespace {

/// Removes the per-request envelope fields so row payloads can be
/// compared across requests.
std::string strip_envelope(std::string row) {
  for (const char* key : {",\"id\":", ",\"cache_hit\":"}) {
    const std::size_t at = row.find(key);
    if (at == std::string::npos) continue;
    std::size_t end = at + std::strlen(key);
    while (end < row.size() && row[end] != ',' && row[end] != '}') ++end;
    row.erase(at, end - at);
  }
  return row;
}

TEST(ServeEngine, MalformedLinesAnswerErrorRowsNotCrashes) {
  ServeEngine engine{ServeOptions{}};
  for (const char* bad :
       {"", "{", "{oops", "[1,2,3]", "42", "{\"workload\":7,\"n\":8}",
        "{\"workload\":\"frisbee\",\"n\":8}",
        "{\"workload\":\"broadcast-streaming\"}",                   // missing n
        "{\"n\":8}",                                                // missing workload
        "{\"workload\":\"broadcast-streaming\",\"n\":8,\"x\":1}",   // unknown field
        "{\"workload\":\"broadcast-streaming\",\"n\":8,\"threads\":0}",
        "{\"workload\":\"broadcast-streaming\",\"n\":8,\"cuts\":[\"a\"]}",
        "{\"workload\":\"broadcast-streaming\",\"n\":8} trailing",
        "{\"workload\":\"broadcast-streaming\",\"n\":8,\"model\":\"bogus\"}"}) {
    const std::string row = engine.handle_line(bad);
    EXPECT_NE(row.find("\"ok\":false"), std::string::npos) << bad << " -> " << row;
    EXPECT_NE(row.find("\"error\":\""), std::string::npos) << bad << " -> " << row;
  }
  EXPECT_EQ(engine.stats().errors, 14u);

  // The engine is still alive and answers real queries afterwards.
  const std::string row = engine.handle_line(
      "{\"workload\":\"broadcast-streaming\",\"n\":8,\"k\":2}");
  EXPECT_NE(row.find("\"ok\":true"), std::string::npos) << row;

  // An unbuildable spec is an error row too, not an escaped throw.
  const std::string badspec = engine.handle_line(
      "{\"workload\":\"broadcast-symbolic\",\"n\":8,\"cuts\":[5,3]}");
  EXPECT_NE(badspec.find("\"ok\":false"), std::string::npos) << badspec;
}

TEST(ServeEngine, CacheHitReturnsByteIdenticalRow) {
  ServeEngine engine{ServeOptions{}};
  const std::string cold = engine.handle_line(
      "{\"id\":1,\"workload\":\"broadcast-symbolic\",\"n\":12,\"k\":2}");
  ASSERT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
  ASSERT_NE(cold.find("\"cache_hit\":false"), std::string::npos) << cold;

  const std::string warm = engine.handle_line(
      "{\"id\":2,\"workload\":\"broadcast-symbolic\",\"n\":12,\"k\":2}");
  EXPECT_NE(warm.find("\"cache_hit\":true"), std::string::npos) << warm;
  EXPECT_EQ(strip_envelope(warm), strip_envelope(cold));

  // Thread count is not part of the key — the engines' reports are
  // thread-invariant, so a different `threads` still hits.
  const std::string threaded = engine.handle_line(
      "{\"id\":3,\"workload\":\"broadcast-symbolic\",\"n\":12,\"k\":2,"
      "\"threads\":2}");
  EXPECT_NE(threaded.find("\"cache_hit\":true"), std::string::npos) << threaded;
  EXPECT_EQ(strip_envelope(threaded), strip_envelope(cold));

  // Explicit cuts equal to the designed spec's coincide in the cache.
  const std::string cuts = strip_envelope(cold);
  const std::size_t at = cuts.find("\"cuts\":[");
  ASSERT_NE(at, std::string::npos);
  const std::string cut_list =
      cuts.substr(at + 8, cuts.find(']', at) - at - 8);
  const std::string explicit_req =
      "{\"id\":4,\"workload\":\"broadcast-symbolic\",\"n\":12,\"cuts\":[" +
      cut_list + "]}";
  const std::string via_cuts = engine.handle_line(explicit_req);
  EXPECT_NE(via_cuts.find("\"cache_hit\":true"), std::string::npos) << via_cuts;

  // Different source, model, or workload are different certificates.
  const std::string other = engine.handle_line(
      "{\"workload\":\"broadcast-symbolic\",\"n\":12,\"k\":2,\"source\":1}");
  EXPECT_NE(other.find("\"cache_hit\":false"), std::string::npos) << other;

  const ServeStats s = engine.stats();
  EXPECT_EQ(s.cache_hits, 3u);
  EXPECT_EQ(s.cache_misses, 2u);

  ServeOptions nocache;
  nocache.enable_cache = false;
  ServeEngine uncached(nocache);
  const std::string a = uncached.handle_line(
      "{\"workload\":\"broadcast-streaming\",\"n\":8}");
  const std::string b = uncached.handle_line(
      "{\"workload\":\"broadcast-streaming\",\"n\":8}");
  EXPECT_NE(a.find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(b.find("\"cache_hit\":false"), std::string::npos);
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
}

TEST(ServeEngine, SixtyFourConcurrentClientsAllAnswered) {
  // 64 client threads × a 4-query mix; every response must be an ok row
  // and every repeat of a key must match the first answer byte-for-byte
  // (modulo the envelope).
  ServeOptions opt;
  opt.threads = 2;
  ServeEngine engine(opt);
  const std::vector<std::string> mix = {
      "{\"workload\":\"broadcast-streaming\",\"n\":8,\"k\":2}",
      "{\"workload\":\"broadcast-symbolic\",\"n\":10,\"k\":2}",
      "{\"workload\":\"gossip-symbolic\",\"n\":8,\"k\":2}",
      "{\"workload\":\"exchange-gossip\",\"n\":8}",
  };
  constexpr int kClients = 64;
  std::vector<std::vector<std::string>> answers(kClients);
  std::atomic<int> bad{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (const std::string& q : mix) {
          std::string row = engine.handle_line(q);
          if (row.find("\"ok\":true") == std::string::npos) bad.fetch_add(1);
          answers[static_cast<std::size_t>(c)].push_back(
              strip_envelope(std::move(row)));
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  EXPECT_EQ(bad.load(), 0);
  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(answers[static_cast<std::size_t>(c)], answers[0]) << "client " << c;
  }
  const ServeStats s = engine.stats();
  EXPECT_EQ(s.queries, static_cast<std::uint64_t>(kClients) * mix.size());
  EXPECT_EQ(s.ok, s.queries);
  EXPECT_EQ(s.refused, 0u);
  EXPECT_EQ(s.errors, 0u);
  // Exactly one cold run per distinct key; everything else hit.
  EXPECT_EQ(s.cache_misses, mix.size());
  EXPECT_EQ(s.cache_hits, s.queries - mix.size());
}

TEST(ServeEngine, AdmissionControlRefusesAndCompletes) {
  // heavy_slots = 0: every heavy query refuses with a structured row.
  ServeOptions closed;
  closed.heavy_groups = 1;  // everything is heavy
  closed.heavy_slots = 0;
  ServeEngine gate(closed);
  const std::string refused = gate.handle_line(
      "{\"id\":9,\"workload\":\"broadcast-streaming\",\"n\":8}");
  EXPECT_NE(refused.find("\"refused\":true"), std::string::npos) << refused;
  EXPECT_NE(refused.find("\"ok\":false"), std::string::npos) << refused;
  EXPECT_NE(refused.find("\"id\":9"), std::string::npos) << refused;
  EXPECT_EQ(gate.stats().refused, 1u);
  // Refusals are transient, so they must not be cached: opening the
  // gate is pointless if the refusal row sticks.
  EXPECT_EQ(gate.stats().cache_misses, 0u);

  // heavy_slots = 1: an admitted heavy query (n = 16 symbolic, over the
  // tiny threshold) completes while concurrent small streaming queries
  // keep being answered — the mixed-load shape the bench row measures
  // at designed-47 scale.
  ServeOptions open;
  open.heavy_groups = 1u << 8;
  open.heavy_slots = 1;
  ServeEngine engine(open);
  std::atomic<int> small_bad{0};
  std::string heavy_row;
  {
    std::thread heavy([&] {
      heavy_row = engine.handle_line(
          "{\"workload\":\"broadcast-symbolic\",\"n\":16,\"k\":2}");
    });
    std::vector<std::thread> small;
    for (int c = 0; c < 8; ++c) {
      small.emplace_back([&] {
        for (int q = 0; q < 4; ++q) {
          const std::string row = engine.handle_line(
              "{\"workload\":\"broadcast-streaming\",\"n\":6,\"k\":2}");
          if (row.find("\"ok\":true") == std::string::npos) small_bad.fetch_add(1);
        }
      });
    }
    heavy.join();
    for (std::thread& t : small) t.join();
  }
  EXPECT_NE(heavy_row.find("\"ok\":true"), std::string::npos) << heavy_row;
  EXPECT_EQ(small_bad.load(), 0);
  EXPECT_EQ(engine.stats().refused, 0u);
}

}  // namespace
}  // namespace shc
