// Tests for GF(2) linear algebra and Hamming codes.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "shc/coding/gf2.hpp"
#include "shc/coding/hamming.hpp"
#include "shc/graph/algorithms.hpp"
#include "shc/graph/generators.hpp"

namespace shc {
namespace {

TEST(Gf2Matrix, SetGetRoundTrip) {
  Gf2Matrix m(3, 5);
  m.set(0, 0, 1);
  m.set(1, 3, 1);
  m.set(2, 4, 1);
  m.set(1, 3, 0);
  EXPECT_EQ(m.get(0, 0), 1);
  EXPECT_EQ(m.get(1, 3), 0);
  EXPECT_EQ(m.get(2, 4), 1);
  EXPECT_EQ(m.get(0, 1), 0);
}

TEST(Gf2Matrix, MulVecComputesParities) {
  Gf2Matrix m(2, 3);
  m.set_row_word(0, 0b011);  // parity of coords 1,2
  m.set_row_word(1, 0b110);  // parity of coords 2,3
  EXPECT_EQ(m.mul_vec(0b000), 0u);
  EXPECT_EQ(m.mul_vec(0b001), 0b01u);
  EXPECT_EQ(m.mul_vec(0b010), 0b11u);
  EXPECT_EQ(m.mul_vec(0b111), 0b00u);
}

TEST(Gf2Matrix, Rank) {
  Gf2Matrix m(3, 3);
  m.set_row_word(0, 0b001);
  m.set_row_word(1, 0b010);
  m.set_row_word(2, 0b011);  // dependent
  EXPECT_EQ(m.rank(), 2);
  m.set_row_word(2, 0b100);
  EXPECT_EQ(m.rank(), 3);
}

TEST(Gf2Span, EnumeratesSubspace) {
  const auto s = span({0b001, 0b010});
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 0u);
  // All pairwise xors stay inside.
  for (auto a : s) {
    for (auto b : s) {
      EXPECT_NE(std::find(s.begin(), s.end(), a ^ b), s.end());
    }
  }
}

class HammingProperty : public ::testing::TestWithParam<int> {};

TEST_P(HammingProperty, ParityCheckHasFullRank) {
  const HammingCode code(GetParam());
  EXPECT_EQ(code.length(), (1 << GetParam()) - 1);
  EXPECT_EQ(code.parity_check().rank(), GetParam());
}

TEST_P(HammingProperty, SyndromeDeltaIsColumnIndex) {
  const int p = GetParam();
  const HammingCode code(p);
  const Vertex u = 0b1011010 & mask_low(code.length());
  for (Dim i = 1; i <= code.length(); ++i) {
    EXPECT_EQ(code.syndrome(u) ^ code.syndrome(flip(u, i)), code.column(i));
    EXPECT_EQ(code.column(i), static_cast<std::uint32_t>(i));
  }
}

TEST_P(HammingProperty, ClosedNeighborhoodRealizesEverySyndromeOnce) {
  const int p = GetParam();
  const HammingCode code(p);
  const int m = code.length();
  for (Vertex u = 0; u < cube_order(std::min(m, 7)); ++u) {
    std::vector<int> seen(static_cast<std::size_t>(code.num_syndromes()), 0);
    ++seen[code.syndrome(u)];
    for (Dim i = 1; i <= m; ++i) ++seen[code.syndrome(flip(u, i))];
    for (int s = 0; s < code.num_syndromes(); ++s) {
      EXPECT_EQ(seen[static_cast<std::size_t>(s)], 1) << "u=" << u << " s=" << s;
    }
  }
}

TEST_P(HammingProperty, CorrectingDimMovesSyndrome) {
  const int p = GetParam();
  const HammingCode code(p);
  const Vertex u = 0b0110 & mask_low(code.length());
  const std::uint32_t s = code.syndrome(u);
  for (std::uint32_t t = 0; t < static_cast<std::uint32_t>(code.num_syndromes()); ++t) {
    if (t == s) continue;
    const Dim i = code.correcting_dim(s, t);
    ASSERT_GE(i, 1);
    ASSERT_LE(i, code.length());
    EXPECT_EQ(code.syndrome(flip(u, i)), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Redundancies, HammingProperty, ::testing::Values(1, 2, 3, 4));

TEST(Hamming, CodewordsArePerfectCovering) {
  for (int p : {1, 2, 3}) {
    const HammingCode code(p);
    const auto words = code.codewords();
    EXPECT_EQ(words.size(), cube_order(code.length()) /
                                static_cast<std::uint64_t>(code.num_syndromes()));
    EXPECT_TRUE(is_perfect_covering(words, code.length()));
  }
}

TEST(Hamming, EveryCosetDominatesTheCube) {
  const HammingCode code(2);  // m = 3
  const Graph q3 = make_hypercube(3);
  for (std::uint32_t s = 0; s < 4; ++s) {
    std::vector<VertexId> coset;
    for (Vertex u = 0; u < 8; ++u) {
      if (code.syndrome(u) == s) coset.push_back(static_cast<VertexId>(u));
    }
    EXPECT_EQ(coset.size(), 2u);
    EXPECT_TRUE(is_dominating_set(q3, coset));
  }
}

TEST(Hamming, NonCodewordSetIsNotPerfectCovering) {
  // Two adjacent words double-cover their shared neighborhood.
  EXPECT_FALSE(is_perfect_covering({0b000, 0b001}, 3));
}

TEST(CodingGuards, InvalidInputsThrowInReleaseBuildsToo) {
  // These were bare asserts (gone under NDEBUG, the PR 2 bug class);
  // user-facing entry points now throw.
  EXPECT_THROW((void)Gf2Matrix(-1, 3), std::invalid_argument);
  EXPECT_THROW((void)Gf2Matrix(2, 64), std::invalid_argument);
  EXPECT_THROW((void)HammingCode(0), std::invalid_argument);
  EXPECT_THROW((void)HammingCode(7), std::invalid_argument);
  EXPECT_THROW((void)HammingCode(6).codewords(), std::invalid_argument);
  EXPECT_THROW((void)span(std::vector<std::uint64_t>(21, 1)),
               std::invalid_argument);
  EXPECT_THROW((void)is_perfect_covering({0}, 0), std::invalid_argument);
  EXPECT_THROW((void)is_perfect_covering({0}, 25), std::invalid_argument);
  // A codeword outside Q_m is rejected, not an out-of-bounds index.
  EXPECT_THROW((void)is_perfect_covering({0b1000}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace shc
