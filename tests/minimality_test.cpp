// Minimality probes: how lean is the construction?  Deleting any single
// edge of G_{4,2} breaks the Broadcast_2 scheme for some source — every
// surviving edge is load-bearing for minimum-time broadcast (a
// scheme-level counterpart of the paper's "minimal" in k-mlbg).
#include <gtest/gtest.h>

#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/validator.hpp"

namespace shc {
namespace {

/// A spec view with one edge deleted.
class DeletedEdgeView final : public NetworkView {
 public:
  DeletedEdgeView(const SparseHypercubeSpec& spec, Vertex a, Vertex b)
      : spec_(spec), a_(a < b ? a : b), b_(a < b ? b : a) {}

  [[nodiscard]] std::uint64_t num_vertices() const override {
    return spec_.num_vertices();
  }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const override {
    if ((u == a_ && v == b_) || (u == b_ && v == a_)) return false;
    return spec_.has_edge(u, v);
  }

 private:
  const SparseHypercubeSpec& spec_;
  Vertex a_, b_;
};

/// True iff the Broadcast_k schedules (computed on the intact spec)
/// remain valid for every source when edge {a, b} is removed.
bool schedules_survive_deletion(const SparseHypercubeSpec& spec, Vertex a, Vertex b) {
  const DeletedEdgeView view(spec, a, b);
  for (Vertex s = 0; s < spec.num_vertices(); ++s) {
    const auto rep =
        validate_minimum_time_k_line(view, make_broadcast_schedule(spec, s), spec.k());
    if (!rep.ok) return false;
  }
  return true;
}

TEST(Minimality, EveryG42EdgeIsSchemeCritical) {
  const auto g42 = SparseHypercubeSpec::construct_base(4, 2, example1_labeling_m2());
  std::size_t edges_probed = 0;
  for (Vertex u = 0; u < g42.num_vertices(); ++u) {
    for (Dim i = 1; i <= g42.n(); ++i) {
      const Vertex v = flip(u, i);
      if (u < v && g42.has_edge_dim(u, i)) {
        ++edges_probed;
        EXPECT_FALSE(schedules_survive_deletion(g42, u, v))
            << "edge {" << u << "," << v << "} (dim " << i
            << ") is not used by any source's schedule";
      }
    }
  }
  EXPECT_EQ(edges_probed, g42.num_edges());
}

TEST(Minimality, LargerBaseConstructionAlsoLean) {
  // G_{6,3}: probe a sample of edges across rule types.
  const auto spec = SparseHypercubeSpec::construct_base(6, 3);
  const std::vector<std::pair<Vertex, Dim>> samples = {
      {0b000000, 1},  // Rule-1 core edge
      {0b000101, 2},  // Rule-1 core edge
      {0b000000, 4},  // Rule-2 cross edge (if present at this vertex)
      {0b000111, 5}, {0b010011, 6}};
  for (const auto& [u, i] : samples) {
    if (!spec.has_edge_dim(u, i)) continue;
    EXPECT_FALSE(schedules_survive_deletion(spec, u, flip(u, i)))
        << "u=" << u << " dim=" << i;
  }
}

TEST(Minimality, DeletingANonEdgeChangesNothing) {
  const auto g42 = SparseHypercubeSpec::construct_base(4, 2, example1_labeling_m2());
  // {0000, 1000} is already absent; "deleting" it must leave all
  // schedules valid.
  EXPECT_TRUE(schedules_survive_deletion(g42, 0b0000, 0b1000));
}

TEST(Minimality, ValidatorPinpointsTheMissingEdge) {
  const auto g42 = SparseHypercubeSpec::construct_base(4, 2, example1_labeling_m2());
  // Remove a core edge that the source itself uses late in the flood.
  const DeletedEdgeView view(g42, 0b0000, 0b0001);
  const auto rep =
      validate_minimum_time_k_line(view, make_broadcast_schedule(g42, 0), 2);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("no edge"), std::string::npos);
}

}  // namespace
}  // namespace shc
