// Unit tests for the CSR graph substrate and algorithms.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "shc/graph/algorithms.hpp"
#include "shc/graph/generators.hpp"
#include "shc/graph/graph.hpp"

namespace shc {
namespace {

Graph triangle_with_tail() {
  // 0-1-2-0 triangle, 2-3 tail.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  return std::move(b).build();
}

TEST(GraphBuilder, RejectsDuplicateEdgesUnconditionally) {
  // Duplicate detection must not rely on assert (which vanishes under
  // NDEBUG): build() throws, naming the offending edge, in every build
  // configuration — insertion order and orientation notwithstanding.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 1);  // duplicate of {1, 2}, reversed orientation
  try {
    const Graph g = std::move(b).build();
    FAIL() << "duplicate edge not detected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate edge {1,2}"),
              std::string::npos)
        << e.what();
  }
}

TEST(GraphBuilder, RejectsSelfLoops) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(2, 2);
  EXPECT_THROW((void)std::move(b).build(), std::invalid_argument);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpointsUnconditionally) {
  // Endpoint range checking was a bare assert (gone under NDEBUG, the
  // PR 2 bug class); add_edge now throws in every build configuration.
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(3, 0), std::invalid_argument);
  try {
    b.add_edge(1, 7);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("{1,7}"), std::string::npos)
        << e.what();
  }
}

TEST(GraphAlgorithmGuards, OutOfRangeInputsThrow) {
  // Two disjoint triangles: valid vertices for the range checks, and
  // disconnected for the eccentricity guard.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 3);
  const Graph g = std::move(b).build();
  EXPECT_THROW((void)bfs_distances(g, g.num_vertices()),
               std::invalid_argument);
  EXPECT_THROW((void)shortest_path(g, 0, g.num_vertices()),
               std::invalid_argument);
  EXPECT_THROW((void)is_dominating_set(g, {0, g.num_vertices()}),
               std::invalid_argument);
  // Eccentricity on a disconnected graph is a caller error, not an
  // assert: the two triangles never meet.
  EXPECT_THROW((void)eccentricity(g, 0), std::invalid_argument);
}

TEST(Graph, BuildAndQuery) {
  const Graph g = triangle_with_tail();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.min_degree(), 1u);
}

TEST(Graph, NeighborsSorted) {
  const Graph g = triangle_with_tail();
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 1u);
  EXPECT_EQ(nb[2], 3u);
}

TEST(Graph, EdgesCanonicalOrder) {
  const Graph g = triangle_with_tail();
  const auto es = g.edges();
  ASSERT_EQ(es.size(), 4u);
  EXPECT_EQ(es[0], (Edge{0, 1}));
  EXPECT_EQ(es[1], (Edge{0, 2}));
  EXPECT_EQ(es[2], (Edge{1, 2}));
  EXPECT_EQ(es[3], (Edge{2, 3}));
}

TEST(Graph, EmptyGraph) {
  GraphBuilder b(3);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_FALSE(is_connected(g));
}

TEST(Algorithms, BfsDistancesOnPath) {
  const Graph g = make_path(6);
  const auto d = bfs_distances(g, 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
  const auto d2 = bfs_distances(g, 3);
  EXPECT_EQ(d2[0], 3u);
  EXPECT_EQ(d2[5], 2u);
}

TEST(Algorithms, BfsUnreachable) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_FALSE(is_connected(g));
}

TEST(Algorithms, ShortestPathEndpointsAndLength) {
  const Graph g = make_hypercube(4);
  const auto p = shortest_path(g, 0b0000, 0b1011);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->front(), 0b0000u);
  EXPECT_EQ(p->back(), 0b1011u);
  EXPECT_EQ(p->size(), 4u);  // Hamming distance 3 -> 4 vertices
  EXPECT_TRUE(is_edge_simple_path(g, *p));
}

TEST(Algorithms, ShortestPathSelf) {
  const Graph g = make_path(3);
  const auto p = shortest_path(g, 1, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 1u);
}

TEST(Algorithms, DiameterKnownFamilies) {
  EXPECT_EQ(diameter(make_path(7)), 6u);
  EXPECT_EQ(diameter(make_cycle(8)), 4u);
  EXPECT_EQ(diameter(make_star(9)), 2u);
  EXPECT_EQ(diameter(make_hypercube(5)), 5u);
}

TEST(Algorithms, EccentricityOfPathEnd) {
  const Graph g = make_path(10);
  EXPECT_EQ(eccentricity(g, 0), 9u);
  EXPECT_EQ(eccentricity(g, 5), 5u);
}

TEST(Algorithms, DominatingSet) {
  const Graph g = make_star(6);
  EXPECT_TRUE(is_dominating_set(g, {0}));
  EXPECT_FALSE(is_dominating_set(g, {1}));
  EXPECT_TRUE(is_dominating_set(g, {1, 0}));
  // On a path 0..5, {1, 4} dominates.
  const Graph p = make_path(6);
  EXPECT_TRUE(is_dominating_set(p, {1, 4}));
  EXPECT_FALSE(is_dominating_set(p, {1, 3}));
}

TEST(Algorithms, SpanningSubgraph) {
  const Graph q3 = make_hypercube(3);
  GraphBuilder b(8);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const Graph sub = std::move(b).build();
  EXPECT_TRUE(is_spanning_subgraph(sub, q3));
  GraphBuilder b2(8);
  b2.add_edge(0, 3);  // not a cube edge
  EXPECT_FALSE(is_spanning_subgraph(std::move(b2).build(), q3));
}

TEST(Algorithms, DegreeHistogram) {
  const auto h = degree_histogram(make_star(5));
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[1], 4u);
  EXPECT_EQ(h[4], 1u);
}

TEST(Algorithms, IsTree) {
  EXPECT_TRUE(is_tree(make_path(5)));
  EXPECT_TRUE(is_tree(make_star(5)));
  EXPECT_FALSE(is_tree(make_cycle(5)));
  EXPECT_FALSE(is_tree(make_hypercube(3)));
}

TEST(Algorithms, EdgeSimplePath) {
  const Graph g = make_cycle(5);
  EXPECT_TRUE(is_edge_simple_path(g, {0, 1, 2, 3}));
  EXPECT_FALSE(is_edge_simple_path(g, {0, 1, 0}));     // reuses edge {0,1}
  EXPECT_FALSE(is_edge_simple_path(g, {0, 2}));        // not an edge
  EXPECT_TRUE(is_edge_simple_path(g, {2}));            // trivial walk
  EXPECT_FALSE(is_edge_simple_path(g, {}));            // empty is invalid
}

}  // namespace
}  // namespace shc
