// Tests for the closed-form bounds (Theorems 1-3, 5, 7; Corollaries 1-2)
// and the parameter selectors, including conformance of constructed
// degrees to the published bounds across sweeps.
#include <gtest/gtest.h>

#include "shc/bits/bitstring.hpp"
#include "shc/mlbg/bounds.hpp"
#include "shc/mlbg/params.hpp"

namespace shc {
namespace {

TEST(Theorem1, ThresholdMatchesTreeDiameter) {
  // For N = 3 * 2^h - 2 the threshold is exactly the tree diameter 2h.
  for (int h = 1; h <= 12; ++h) {
    const std::uint64_t N = 3 * (std::uint64_t{1} << h) - 2;
    EXPECT_EQ(theorem1_k_threshold(N), 2 * h) << "h=" << h;
  }
}

TEST(Theorem1, ThresholdMonotoneInN) {
  for (std::uint64_t N = 2; N < 4000; ++N) {
    EXPECT_LE(theorem1_k_threshold(N), theorem1_k_threshold(N + 1));
  }
}

TEST(LowerBound, Theorem2ClosedForms) {
  // k = 2: ceil(sqrt(n)); k = 3: ceil(n^(1/3)); k = 4: ceil(n^(1/4)).
  EXPECT_EQ(lower_bound_max_degree(16, 2), 4);
  EXPECT_EQ(lower_bound_max_degree(17, 2), 5);
  EXPECT_EQ(lower_bound_max_degree(27, 3), 3);
  EXPECT_EQ(lower_bound_max_degree(28, 3), 4);
  EXPECT_EQ(lower_bound_max_degree(16, 4), 2);
  EXPECT_EQ(lower_bound_max_degree(17, 4), 3);
}

TEST(LowerBound, StoreAndForwardIsN) {
  for (int n = 1; n <= 20; ++n) EXPECT_EQ(lower_bound_max_degree(n, 1), n);
}

TEST(LowerBound, Theorem3ForLargeK) {
  // n <= 3((Delta-1)^k - 1): for k = 5, Delta = 3 covers n <= 93.
  EXPECT_EQ(lower_bound_max_degree(93, 5), 3);
  EXPECT_EQ(lower_bound_max_degree(94, 5), 4);
  // Every lower bound is at least 3 in the Theorem-3 regime (the cycle
  // argument rules out Delta = 2 for n > k >= 5).
  for (int k = 5; k <= 8; ++k) {
    for (int n = k + 1; n <= 40; ++n) {
      EXPECT_GE(lower_bound_max_degree(n, k), 3);
    }
  }
}

TEST(LowerBound, CountingBoundDominatesClosedForm) {
  // The exact counting bound is never weaker than the published one for
  // k in the Theorem-2 range.
  for (int k = 2; k <= 4; ++k) {
    for (int n = 2; n <= 60; ++n) {
      EXPECT_GE(counting_lower_bound(n, k), lower_bound_max_degree(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Theorem5, UpperBoundValues) {
  // Delta <= 2*ceil(sqrt(2n+4)) - 4.
  EXPECT_EQ(theorem5_upper(1), 2 * 3 - 4);  // paper's n = 1 check: 2
  EXPECT_EQ(theorem5_upper(16), 2 * 6 - 4);
  EXPECT_EQ(theorem5_upper(30), 2 * 8 - 4);
}

TEST(Theorem5, ConstructionConformsForAllN) {
  for (int n = 2; n <= 40; ++n) {
    const int m = theorem5_core(n);
    ASSERT_GE(m, 1);
    ASSERT_LT(m, n);
    const int delta = realized_max_degree(n, {m});
    EXPECT_LE(delta, theorem5_upper(n)) << "n=" << n << " m=" << m;
    // And the lower bound is respected with room at most ~2x+const
    // (the paper: within twice the lower bound for the best m).
    EXPECT_GE(delta, lower_bound_max_degree(n, 2));
  }
}

TEST(Theorem5, SpecialCaseMEqualsLambdaStructure) {
  // Note after Theorem 5: if m = 2^p - 1 and n = m(m+2) then
  // Delta = (n - m)/lambda + m = 2m < 2*sqrt(n).
  for (int p = 1; p <= 3; ++p) {
    const int m = (1 << p) - 1;
    const int n = m * (m + 2);
    if (n < 2) continue;
    const int delta = realized_max_degree(n, {m});
    EXPECT_EQ(delta, 2 * m);
    EXPECT_LT(delta, 2 * ceil_root(n, 2) + 1);
  }
}

TEST(Theorem7, CutsAreValid) {
  for (int k = 3; k <= 6; ++k) {
    for (int n = k + 1; n <= 50; ++n) {
      const auto cuts = theorem7_cuts(n, k);
      ASSERT_EQ(cuts.size(), static_cast<std::size_t>(k - 1));
      EXPECT_GE(cuts.front(), 1);
      EXPECT_LT(cuts.back(), n);
      for (std::size_t i = 1; i < cuts.size(); ++i) EXPECT_LT(cuts[i - 1], cuts[i]);
    }
  }
}

class Theorem7Conformance : public ::testing::TestWithParam<int> {};

TEST_P(Theorem7Conformance, RealizedDegreeWithinBound) {
  const int k = GetParam();
  // The paper proves the bound for the closed-form cuts when n is large
  // enough relative to k; we check the asymptotic regime n >= k^2.
  for (int n = std::max(k + 1, k * k); n <= 60; ++n) {
    const auto cuts = theorem7_cuts(n, k);
    const int delta = realized_max_degree(n, cuts);
    EXPECT_LE(delta, theorem7_upper(n, k)) << "n=" << n << " k=" << k;
    EXPECT_GE(delta, lower_bound_max_degree(n, k)) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, Theorem7Conformance, ::testing::Values(3, 4, 5, 6));

TEST(OptimalCuts, NeverWorseThanClosedForm) {
  for (int k = 2; k <= 5; ++k) {
    for (int n = std::max(k + 1, k * k); n <= 40; ++n) {
      const auto closed = (k == 2) ? std::vector<int>{theorem5_core(n)}
                                   : theorem7_cuts(n, k);
      const auto best = optimal_cuts(n, k);
      ASSERT_EQ(best.size(), static_cast<std::size_t>(k - 1));
      EXPECT_LE(realized_max_degree(n, best), realized_max_degree(n, closed))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(OptimalCuts, MatchesRealizedSpecDegree) {
  for (int k = 2; k <= 4; ++k) {
    const int n = 12;
    const auto cuts = optimal_cuts(n, k);
    const auto spec = SparseHypercubeSpec::construct(n, cuts);
    EXPECT_EQ(static_cast<int>(spec.max_degree()), realized_max_degree(n, cuts));
  }
}

TEST(Corollary1, LogRegimeBound) {
  // For k = ceil(log2 n) the realized degree stays within
  // 4*ceil(log2 n) - 2.
  for (int n = 8; n <= 40; ++n) {
    const int k = ceil_log2(static_cast<std::uint64_t>(n));
    if (k < 2 || n <= k) continue;
    const auto cuts = optimal_cuts(n, k);
    EXPECT_LE(realized_max_degree(n, cuts), corollary1_upper(n)) << "n=" << n;
  }
}

TEST(Corollary2, ConstantKIsThetaOfKthRoot) {
  // Ratio between realized degree and n^(1/k) stays bounded by 2k-1
  // above and 1 below — the tightness claim for constant k.
  for (int k = 2; k <= 4; ++k) {
    for (int n = k * k; n <= 60; ++n) {
      const int delta = realized_max_degree(n, optimal_cuts(n, k));
      const int root = ceil_root(n, k);
      EXPECT_LE(delta, (2 * k - 1) * root) << "n=" << n << " k=" << k;
      EXPECT_GE(delta, root - 1) << "n=" << n << " k=" << k;
    }
  }
}

TEST(DiameterBound, FootnoteOne) {
  EXPECT_EQ(diameter_upper(10, 2), 20);
  EXPECT_EQ(diameter_upper(15, 3), 45);
}

TEST(Theorem5Core, FormulaAndClamping) {
  EXPECT_EQ(theorem5_core(2), 1);       // clamped to < n
  for (int n = 2; n <= 50; ++n) {
    const int m = theorem5_core(n);
    EXPECT_GE(m, 1);
    EXPECT_LT(m, n);
  }
  // Unclamped formula: ceil(sqrt(2*16+4)) - 2 = 6 - 2 = 4.
  EXPECT_EQ(theorem5_core(16), 4);
}

}  // namespace
}  // namespace shc
