// Adversarial tests for the k-line model validator: every clause of
// Definition 1 must be enforced, and correct schedules must pass.
#include <gtest/gtest.h>

#include "shc/baseline/hypercube_broadcast.hpp"
#include "shc/graph/generators.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/validator.hpp"

namespace shc {
namespace {

BroadcastSchedule q2_good() {
  // Q_2 from 00: round 1: 00->10; round 2: 00->01, 10->11.
  BroadcastSchedule s;
  s.source = 0b00;
  s.rounds.push_back(Round{{Call{{0b00, 0b10}}}});
  s.rounds.push_back(Round{{Call{{0b00, 0b01}}, Call{{0b10, 0b11}}}});
  return s;
}

TEST(Validator, AcceptsCorrectSchedule) {
  const HypercubeView q2(2);
  const auto rep = validate_minimum_time_k_line(q2, q2_good(), 1);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(rep.minimum_time);
  EXPECT_EQ(rep.rounds, 2);
  EXPECT_EQ(rep.informed, 4u);
  EXPECT_EQ(rep.total_calls, 3u);
  EXPECT_EQ(rep.max_call_length, 1);
}

TEST(Validator, RejectsUninformedCaller) {
  const HypercubeView q2(2);
  auto s = q2_good();
  s.rounds[0].calls[0].path = {0b01, 0b11};  // 01 is not informed yet
  const auto rep = validate_minimum_time_k_line(q2, s, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("not informed"), std::string::npos);
}

// Regression: an empty or single-vertex path used to be undefined
// behavior waiting to happen (Call::caller()/receiver() on an empty
// vector).  The accessors now assert in debug builds, and the validator
// rejects degenerate calls explicitly instead of touching them.
TEST(Validator, RejectsEmptyAndZeroLengthCallsExplicitly) {
  const HypercubeView q2(2);
  ValidationOptions opt;
  opt.k = 1;
  opt.require_completion = false;

  BroadcastSchedule empty_path;
  empty_path.source = 0;
  empty_path.rounds.push_back(Round{{Call{{}}}});
  const auto rep_empty = validate_broadcast(q2, empty_path, opt);
  EXPECT_FALSE(rep_empty.ok);
  EXPECT_NE(rep_empty.error.find("empty or zero-length call"), std::string::npos);

  BroadcastSchedule zero_length;
  zero_length.source = 0;
  zero_length.rounds.push_back(Round{{Call{{0b00}}}});  // caller, no receiver
  const auto rep_zero = validate_broadcast(q2, zero_length, opt);
  EXPECT_FALSE(rep_zero.ok);
  EXPECT_NE(rep_zero.error.find("empty or zero-length call"), std::string::npos);

  // Degenerate calls survive the legacy -> flat conversion shim intact
  // (the validator, not the converter, owns the rejection).
  const FlatSchedule flat = FlatSchedule::from_legacy(zero_length);
  ASSERT_EQ(flat.num_calls(), 1u);
  EXPECT_EQ(flat.call(0).size(), 1u);
  EXPECT_FALSE(validate_broadcast(q2, flat, opt).ok);
}

// Regression: the vertex-disjoint model tracks touched vertices in a
// bitmap indexed by vertex id; an out-of-range interior path vertex must
// be reported cleanly before that bitmap is touched.
TEST(Validator, VertexDisjointRejectsOutOfRangeInteriorVertex) {
  const HypercubeView q2(2);
  BroadcastSchedule s;
  s.source = 0;
  s.rounds.push_back(Round{{Call{{0b00, Vertex{1000000}, 0b01}}}});
  ValidationOptions opt;
  opt.k = 2;
  opt.require_completion = false;
  opt.require_vertex_disjoint = true;
  const auto rep = validate_broadcast(q2, s, opt);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("out of range"), std::string::npos);
}

TEST(Validator, RejectsOverlongCall) {
  const HypercubeView q3(3);
  BroadcastSchedule s;
  s.source = 0;
  s.rounds.push_back(Round{{Call{{0b000, 0b001, 0b011}}}});  // length 2
  ValidationOptions opt;
  opt.k = 1;
  opt.require_completion = false;
  const auto rep = validate_broadcast(q3, s, opt);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("> k="), std::string::npos);
  opt.k = 2;
  EXPECT_TRUE(validate_broadcast(q3, s, opt).ok);
}

TEST(Validator, RejectsEdgeConflictWithinRound) {
  // Two calls both using edge {0,1} in one round: 0->1 and 2->... no,
  // simpler: leaf 2 informed? Build: source 0; round1: 0->1; round2:
  // 0->2 and 1->3 via 0? 1-0-3 uses edges {1,0},{0,3}; 0->2 uses {0,2}:
  // disjoint.  Force a conflict instead: round2: 0->3 and 1->2 via 0
  // with path {1,0,2}; edges {0,3} vs {1,0},{0,2}: still disjoint.
  // Direct conflict: two calls sharing {0,2}: 0->2 and 1->2 — receiver
  // conflict fires first, so share an edge without sharing receivers:
  // round2: 0->2 (edge {0,2}) and 1->3 via 2?? not an edge.  Use a path
  // graph: 0-1-2-3, round1: 0->2 via 1, round2: 0->1 and 2->3; conflict
  // version: round1: 0->2 via 1; round2: 0->3 via 1,2 and 2->1?  Edge
  // {1,2} shared by call {0,1,2,3} and call {2,1}.
  const Graph path_graph = make_path(4);
  const GraphView path(path_graph);
  BroadcastSchedule s;
  s.source = 0;
  s.rounds.push_back(Round{{Call{{0, 1, 2}}}});
  s.rounds.push_back(Round{{Call{{0, 1}}, Call{{2, 3}}}});
  ValidationOptions opt;
  opt.k = 3;
  EXPECT_TRUE(validate_broadcast(path, s, opt).ok);

  BroadcastSchedule bad;
  bad.source = 0;
  bad.rounds.push_back(Round{{Call{{0, 1, 2}}}});
  bad.rounds.push_back(Round{{Call{{0, 1}}, Call{{2, 1, 0, 1}}}});  // nonsense walk
  const auto rep = validate_broadcast(path, bad, opt);
  EXPECT_FALSE(rep.ok);
}

TEST(Validator, RejectsSharedEdgeSameRound) {
  const Graph path_graph = make_path(4);
  const GraphView path(path_graph);
  BroadcastSchedule s;
  s.source = 1;
  // Round 1: 1->0.  Round 2: 1->2 and 0->3 via 1,2 — the edge {1,2} is
  // used by both calls.
  s.rounds.push_back(Round{{Call{{1, 0}}}});
  s.rounds.push_back(Round{{Call{{1, 2}}, Call{{0, 1, 2, 3}}}});
  ValidationOptions opt;
  opt.k = 3;
  const auto rep = validate_broadcast(path, s, opt);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("used 2 times"), std::string::npos);
  // With capacity 2 (dilated network) the same schedule passes.
  opt.edge_capacity = 2;
  EXPECT_TRUE(validate_broadcast(path, s, opt).ok) << validate_broadcast(path, s, opt).error;
}

TEST(Validator, RejectsReceiverConflict) {
  const Graph star_graph = make_star(4);
  const GraphView star(star_graph);
  BroadcastSchedule s;
  s.source = 0;
  s.rounds.push_back(Round{{Call{{0, 1}}}});
  s.rounds.push_back(Round{{Call{{0, 2}}, Call{{1, 0, 2}}}});  // both target 2
  ValidationOptions opt;
  opt.k = 2;
  const auto rep = validate_broadcast(star, s, opt);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("two calls"), std::string::npos);
}

TEST(Validator, RejectsNonEdgeHop) {
  const HypercubeView q2(2);
  BroadcastSchedule s;
  s.source = 0;
  s.rounds.push_back(Round{{Call{{0b00, 0b11}}}});  // distance 2, not an edge
  ValidationOptions opt;
  opt.k = 2;
  opt.require_completion = false;
  const auto rep = validate_broadcast(q2, s, opt);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("no edge"), std::string::npos);
}

TEST(Validator, RejectsRedundantReceiverWhenStrict) {
  const HypercubeView q2(2);
  auto s = q2_good();
  s.rounds[1].calls[1].path = {0b10, 0b00};  // calls the source again
  ValidationOptions opt;
  opt.k = 1;
  opt.require_completion = false;
  EXPECT_FALSE(validate_broadcast(q2, s, opt).ok);
  opt.forbid_redundant_receivers = false;
  // Still fails completion if required, but the call itself is legal.
  EXPECT_TRUE(validate_broadcast(q2, s, opt).ok);
}

TEST(Validator, RejectsIncompleteBroadcast) {
  const HypercubeView q2(2);
  BroadcastSchedule s;
  s.source = 0;
  s.rounds.push_back(Round{{Call{{0b00, 0b01}}}});
  const auto rep = validate_minimum_time_k_line(q2, s, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("incomplete"), std::string::npos);
}

TEST(Validator, RejectsEmptyRound) {
  const HypercubeView q2(2);
  auto s = q2_good();
  s.rounds.insert(s.rounds.begin(), Round{});
  EXPECT_FALSE(validate_minimum_time_k_line(q2, s, 1).ok);
}

TEST(Validator, MinimumTimeFlagRequiresExactRounds) {
  // A valid but slow schedule: Q_2 informed one vertex per round.
  const HypercubeView q2(2);
  BroadcastSchedule s;
  s.source = 0b00;
  s.rounds.push_back(Round{{Call{{0b00, 0b01}}}});
  s.rounds.push_back(Round{{Call{{0b00, 0b10}}}});
  s.rounds.push_back(Round{{Call{{0b01, 0b11}}}});
  const auto rep = validate_minimum_time_k_line(q2, s, 1);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_FALSE(rep.minimum_time);
  EXPECT_EQ(rep.rounds, 3);
}

TEST(Validator, SourceOutOfRange) {
  const HypercubeView q2(2);
  BroadcastSchedule s;
  s.source = 7;
  EXPECT_FALSE(validate_minimum_time_k_line(q2, s, 1).ok);
}

class BinomialBroadcastProperty : public ::testing::TestWithParam<int> {};

TEST_P(BinomialBroadcastProperty, ValidatesAsOneLineFromEverySource) {
  const int n = GetParam();
  const HypercubeView qn(n);
  for (Vertex s = 0; s < cube_order(n); s += (n >= 6 ? 5 : 1)) {
    const auto schedule = hypercube_binomial_broadcast(n, s);
    const auto rep = validate_minimum_time_k_line(qn, schedule, 1);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_TRUE(rep.minimum_time);
    EXPECT_EQ(rep.max_call_length, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Cubes, BinomialBroadcastProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace shc
