// Unit tests for the knowledge-class partition — the state layer of the
// symbolic gossip engine.  The load-bearing property: after any
// sequence of endpoint-disjoint exchange rounds, expanding the class
// containing v (its relative offset cover translated by v) must equal
// the exact per-vertex token set a brute-force tracker computes.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "shc/sim/knowledge_classes.hpp"

namespace shc {
namespace {

using Exchange = KnowledgeClassPartition::Exchange;

/// Expands the relative knowledge of the class containing v into the
/// absolute token set {v ^ x : x covered}.
std::set<Vertex> absolute_knowledge(const KnowledgeClassPartition& p, Vertex v) {
  std::set<Vertex> out;
  for (const WeightedSubcube& e : p.knowledge_of(v).entries) {
    EXPECT_EQ(e.mult, 1u) << "knowledge covers must stay multiplicity-one";
    Vertex a = 0;
    for (;;) {
      out.insert(v ^ (e.prefix | a));
      if (a == e.mask) break;
      a = (a - e.mask) & e.mask;
    }
  }
  return out;
}

/// Brute-force token tracker: know[v] as a set of vertices.
struct Brute {
  explicit Brute(int n) {
    know.resize(static_cast<std::size_t>(cube_order(n)));
    for (Vertex v = 0; v < know.size(); ++v) know[v].insert(v);
  }
  void apply(const std::vector<Exchange>& xs) {
    for (const Exchange& x : xs) {
      Vertex a = 0;
      for (;;) {
        const Vertex u = x.callers.prefix | a;
        const Vertex w = u ^ x.delta;
        std::set<Vertex> merged = know[u];
        merged.insert(know[w].begin(), know[w].end());
        know[u] = merged;
        know[w] = std::move(merged);
        if (a == x.callers.mask) break;
        a = (a - x.callers.mask) & x.callers.mask;
      }
    }
  }
  std::vector<std::set<Vertex>> know;
};

void expect_agrees(const KnowledgeClassPartition& p, const Brute& brute, int n,
                   const char* what) {
  for (Vertex v = 0; v < cube_order(n); ++v) {
    ASSERT_EQ(absolute_knowledge(p, v), brute.know[v])
        << what << ": vertex " << v;
  }
}

TEST(KnowledgeClasses, InitialStateIsOneClassKnowingItself) {
  KnowledgeClassPartition p(4);
  EXPECT_EQ(p.num_classes(), 1u);
  EXPECT_FALSE(p.all_complete());
  const GossipKnowledge& k = p.knowledge_of(7);
  ASSERT_EQ(k.entries.size(), 1u);
  EXPECT_EQ(k.entries[0], (WeightedSubcube{0, 0, 1}));
  EXPECT_EQ(k.count, 1u);
  EXPECT_EQ(absolute_knowledge(p, 7), std::set<Vertex>{7});
}

TEST(KnowledgeClasses, DimensionExchangeStaysAtOneClassAndCompletes) {
  const int n = 6;
  KnowledgeClassPartition p(n);
  Brute brute(n);
  for (Dim i = n; i >= 1; --i) {
    const std::vector<Exchange> round = {
        {Subcube{0, mask_low(n) & ~dim_bit(i)}, dim_bit(i)}};
    ASSERT_EQ(p.apply_round(round), "");
    brute.apply(round);
    // The split halves re-coalesce: equal knowledge, sibling cubes.
    EXPECT_EQ(p.num_classes(), 1u) << "after dim " << i;
    expect_agrees(p, brute, n, "dimension exchange");
  }
  EXPECT_TRUE(p.all_complete());
  // peak_classes samples round boundaries, after the equal-knowledge
  // coalescing pass — the mid-round split halves are never visible.
  EXPECT_EQ(p.stats().peak_classes, 1u);
  EXPECT_TRUE(p.stats().known_pairs_exact);
  EXPECT_EQ(p.stats().known_pairs, cube_order(n) * cube_order(n));
}

TEST(KnowledgeClasses, OverlappingKnowledgeDeduplicates) {
  // 0<->1, then 0<->2 and 1<->3 (so {0,2} and {1,3} both know {0,1}
  // plus their own), then 0<->1 again: the partners' sets overlap in
  // {0,1} and the union must not double-count.
  const int n = 2;
  KnowledgeClassPartition p(n);
  Brute brute(n);
  const std::vector<std::vector<Exchange>> rounds = {
      {{Subcube{0, 0}, 1}},
      {{Subcube{0, 0}, 2}, {Subcube{1, 0}, 2}},
      {{Subcube{0, 0}, 1}},
  };
  for (const auto& r : rounds) {
    ASSERT_EQ(p.apply_round(r), "");
    brute.apply(r);
    expect_agrees(p, brute, n, "overlap dedup");
  }
  EXPECT_FALSE(p.all_complete());  // vertices 2 and 3 never met
  EXPECT_EQ(absolute_knowledge(p, 0), (std::set<Vertex>{0, 1, 2, 3}));
  EXPECT_EQ(absolute_knowledge(p, 2), (std::set<Vertex>{0, 1, 2}));
}

TEST(KnowledgeClasses, RandomSingletonExchangesMatchBruteForce) {
  const int n = 5;
  const std::uint64_t order = cube_order(n);
  std::mt19937_64 rng(0xC0FFEE);
  for (int trial = 0; trial < 8; ++trial) {
    KnowledgeClassPartition p(n);
    Brute brute(n);
    for (int round = 0; round < 10; ++round) {
      // Random endpoint-disjoint partial pairing with arbitrary
      // (multi-bit) deltas — the knowledge layer does not require
      // adjacency, only disjoint endpoints.
      std::vector<bool> used(order, false);
      std::vector<Exchange> xs;
      for (int attempt = 0; attempt < 12; ++attempt) {
        const Vertex u = rng() % order;
        const Vertex d = 1 + rng() % (order - 1);
        if (used[u] || used[u ^ d]) continue;
        used[u] = used[u ^ d] = true;
        xs.push_back({Subcube{u, 0}, d});
      }
      ASSERT_EQ(p.apply_round(xs), "");
      brute.apply(xs);
    }
    expect_agrees(p, brute, n, "random singleton rounds");
  }
}

TEST(KnowledgeClasses, SubcubeBatchedEqualsSingletonExpansion) {
  const int n = 4;
  // One batched exchange: callers = the bit4=0, bit1=0 quarter, delta
  // flips bits 4 and 1 — versus the same four exchanges as singletons.
  const Subcube callers{0, 0b0110};
  const Vertex delta = 0b1001;
  KnowledgeClassPartition batched(n), singles(n);
  ASSERT_EQ(batched.apply_round({{callers, delta}}), "");
  std::vector<Exchange> expanded;
  Vertex a = 0;
  for (;;) {
    expanded.push_back({Subcube{callers.prefix | a, 0}, delta});
    if (a == callers.mask) break;
    a = (a - callers.mask) & callers.mask;
  }
  ASSERT_EQ(singles.apply_round(expanded), "");
  for (Vertex v = 0; v < cube_order(n); ++v) {
    EXPECT_EQ(absolute_knowledge(batched, v), absolute_knowledge(singles, v))
        << "vertex " << v;
  }
}

TEST(KnowledgeClasses, MalformedExchangesRejected) {
  KnowledgeClassPartition p(4);
  EXPECT_NE(p.apply_round({{Subcube{0, 0}, 0}}), "");           // zero delta
  EXPECT_NE(p.apply_round({{Subcube{1, 1}, 2}}), "");           // prefix in mask
  EXPECT_NE(p.apply_round({{Subcube{0, 0}, 1 << 4}}), "");      // out of range
  EXPECT_NE(p.apply_round({{Subcube{0, 0b0010}, 0b0010}}), ""); // delta in mask
  // A clean round still works afterwards (failed rounds left no trace).
  EXPECT_EQ(p.apply_round({{Subcube{0, 0b0111}, 0b1000}}), "");
}

TEST(KnowledgeClasses, OverlappingEndpointsSurfaceInTheSelfCheck) {
  // Two exchanges sharing vertex 1 violate the endpoint-disjointness
  // precondition; the partition's tiling self-check must refuse rather
  // than silently corrupt.
  KnowledgeClassPartition p(3);
  const std::string err =
      p.apply_round({{Subcube{0, 0}, 1}, {Subcube{1, 0}, 2}});
  EXPECT_FALSE(err.empty());
}

TEST(KnowledgeClasses, ClassCapFailsExplicitly) {
  KnowledgeClassOptions opt;
  opt.max_classes = 2;
  KnowledgeClassPartition p(4, opt);
  // Singleton exchanges fragment the partition past the tiny cap.
  const std::string err = p.apply_round(
      {{Subcube{0, 0}, 1}, {Subcube{4, 0}, 3}, {Subcube{8, 0}, 5}});
  EXPECT_NE(err.find("class cap"), std::string::npos) << err;
}

}  // namespace
}  // namespace shc
