// Tests for text I/O: DOT export, edge lists, tables, schedule and
// bit-string formatting.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "shc/bits/bitstring.hpp"
#include "shc/graph/generators.hpp"
#include "shc/graph/io.hpp"
#include "shc/sim/schedule.hpp"

namespace shc {
namespace {

TEST(Dot, DecimalLabelsWhenBitsZero) {
  std::ostringstream os;
  write_dot(os, make_path(3), "p3");
  const std::string dot = os.str();
  EXPECT_NE(dot.find("graph p3 {"), std::string::npos);
  EXPECT_EQ(dot.find("label="), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v1;"), std::string::npos);
  EXPECT_NE(dot.find("v1 -- v2;"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, BinaryLabels) {
  std::ostringstream os;
  write_dot(os, make_hypercube(2), "q2", 2);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("v0 [label=\"00\"];"), std::string::npos);
  EXPECT_NE(dot.find("v3 [label=\"11\"];"), std::string::npos);
}

TEST(EdgeList, CanonicalPairs) {
  std::ostringstream os;
  write_edge_list(os, make_cycle(4));
  EXPECT_EQ(os.str(), "0 1\n0 3\n1 2\n2 3\n");
}

TEST(Table, AlignsColumns) {
  TextTable t({"a", "bb"});
  t.add_row({"100", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header padded to the widest cell in each column.
  EXPECT_NE(out.find("  a  bb"), std::string::npos);
  EXPECT_NE(out.find("100   2"), std::string::npos);
}

TEST(Table, EmptyTableStillPrintsHeader) {
  TextTable t({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find('x'), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(ScheduleFormat, DirectAndDetourCalls) {
  BroadcastSchedule s;
  s.source = 0;
  s.rounds.push_back(Round{{Call{{0, 1}}}});
  s.rounds.push_back(Round{{Call{{0, 2, 3}}, Call{{1, 5}}}});
  const std::string text = format_schedule(s, 3);
  EXPECT_NE(text.find("broadcast from 000 in 2 round(s)"), std::string::npos);
  EXPECT_NE(text.find("000 -> 001  (length 1)"), std::string::npos);
  EXPECT_NE(text.find("000 -> 011  (length 2, via 010)"), std::string::npos);
  EXPECT_NE(text.find("001 -> 101"), std::string::npos);
}

TEST(ScheduleFormat, DecimalMode) {
  BroadcastSchedule s;
  s.source = 7;
  s.rounds.push_back(Round{{Call{{7, 6}}}});
  const std::string text = format_schedule(s, 0);
  EXPECT_NE(text.find("broadcast from 7"), std::string::npos);
  EXPECT_NE(text.find("7 -> 6"), std::string::npos);
}

TEST(ScheduleStats, CountsCallsAndLengths) {
  BroadcastSchedule s;
  s.source = 0;
  s.rounds.push_back(Round{{Call{{0, 1}}}});
  s.rounds.push_back(Round{{Call{{0, 2, 3}}, Call{{1, 5}}}});
  EXPECT_EQ(s.num_rounds(), 2);
  EXPECT_EQ(s.num_calls(), 3u);
  EXPECT_EQ(s.max_call_length(), 2);
  EXPECT_EQ(BroadcastSchedule{}.max_call_length(), 0);
}

TEST(Bitstring, WidthMatchesCubeDim) {
  EXPECT_EQ(to_bitstring(5, 6), "000101");
  EXPECT_EQ(to_bitstring(63, 6), "111111");
}

TEST(TextTable, RejectsMismatchedRowWidthUnconditionally) {
  // Row width checking was a bare assert (gone under NDEBUG); add_row
  // now throws with both widths named.
  TextTable t({"a", "bb"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  try {
    t.add_row({"1", "2", "3"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "TextTable::add_row: row width 3 does not match header width 2");
  }
  // The table stays usable after a rejected row.
  t.add_row({"x", "yy"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("x  yy"), std::string::npos);
}

}  // namespace
}  // namespace shc
