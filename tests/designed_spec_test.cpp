// The designed-spec headline regression: the paper's construct(63, 10)
// — Theorem 5's m* = 10 core at the n = 63 representation limit — must
// certify minimum-time through the fully symbolic pipeline with default
// budgets, reporting the exact 2^63 - 1 call count.  This is the round
// structure whose ~11 M-group rounds defeated the quadratic collision
// pair sweep (budget exhaustion at round 52); the dyadic occupancy
// ledger is what closes it, so this test is the engine's scaling gate.
// Expect minutes of single-core runtime — it certifies 9.2 quintillion
// calls.
#include <gtest/gtest.h>

#include <cstdlib>

// ASan detection across GCC (__SANITIZE_ADDRESS__) and Clang
// (__has_feature); the headline run is release-mode only — minutes at
// -O2 would be hours under the sanitizers or without optimization.
#if defined(__SANITIZE_ADDRESS__)
#define SHC_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SHC_ASAN_ENABLED 1
#endif
#endif

#include "shc/mlbg/params.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/mlbg/symbolic_broadcast.hpp"

namespace shc {
namespace {

TEST(DesignedSpec, SmallDesignedCutsCertifyEverywhere) {
  // The always-on sanity tier: designed m* cuts certify through the
  // default (ledger) engine across the materializable range — the
  // memory patterns the sanitizer job needs to see, without the
  // minutes-long n = 63 magnitude run below.
  for (const int n : {16, 20, 24}) {
    const auto spec = SparseHypercubeSpec::construct(n, {theorem5_core(n)});
    ValidationOptions opt;
    opt.k = spec.k();
    const auto cert = certify_broadcast_symbolic(spec, 0, opt);
    ASSERT_TRUE(cert.report.ok) << "n=" << n << ": " << cert.report.error;
    EXPECT_TRUE(cert.report.minimum_time);
    EXPECT_EQ(cert.report.total_calls, cube_order(n) - 1);
  }
}

TEST(DesignedSpec, N63M10CertifiesMinimumTimeWithDefaultBudgets) {
#if defined(SHC_ASAN_ENABLED) || !defined(NDEBUG)
  // ~6.6 min at -O2 single-core; the sanitizers' ~45x and unoptimized
  // builds' ~5x make that hours.  The engine's memory patterns are
  // covered by the sanity tier above — this run is about magnitude.
  GTEST_SKIP() << "designed n = 63 run is optimized-release only";
#endif
  // CI's compiler matrix runs the magnitude row on one leg only (the
  // verdict is compiler-independent; the leg that records the bench
  // re-certifies this spec anyway) — the redundant leg exports
  // SHC_SKIP_MAGNITUDE_TESTS=1.
  if (const char* skip = std::getenv("SHC_SKIP_MAGNITUDE_TESTS");
      skip != nullptr && skip[0] == '1') {
    GTEST_SKIP() << "SHC_SKIP_MAGNITUDE_TESTS=1";
  }
  ASSERT_EQ(theorem5_core(63), 10) << "the paper's m* for n = 63";
  const auto spec = SparseHypercubeSpec::construct(63, {10});
  EXPECT_EQ(spec.max_degree(), 17u);

  ValidationOptions opt;
  opt.k = spec.k();
  const SymbolicCertification cert = certify_broadcast_symbolic(spec, 0, opt);

  ASSERT_TRUE(cert.report.ok) << cert.report.error;
  EXPECT_TRUE(cert.report.minimum_time);
  EXPECT_EQ(cert.report.rounds, 63);
  EXPECT_EQ(cert.report.total_calls, (std::uint64_t{1} << 63) - 1);
  EXPECT_EQ(cert.report.informed, std::uint64_t{1} << 63);
  EXPECT_EQ(cert.report.max_call_length, 2);
  // The scale that makes this a ledger-only regime: multi-million-group
  // rounds (the pair sweep's quadratic wall) and a frontier far past
  // any explicit representation.
  EXPECT_GT(cert.checks.peak_round_groups, std::uint64_t{1} << 22);
  EXPECT_GT(cert.checks.occupancy_claims, cert.checks.peak_round_groups);
  EXPECT_EQ(cert.checks.collision_candidates, 0u)
      << "ledger mode never enumerates candidate pairs";
  EXPECT_GT(cert.checks.sampled_calls, 0u);
}

}  // namespace
}  // namespace shc
