// Tests for routing and structural analysis (footnote 1 made executable).
#include <gtest/gtest.h>

#include "shc/graph/algorithms.hpp"
#include "shc/mlbg/analysis.hpp"
#include "shc/mlbg/params.hpp"

namespace shc {
namespace {

class GreedyRouteSweep : public ::testing::TestWithParam<std::pair<int, std::vector<int>>> {};

TEST_P(GreedyRouteSweep, ReachesTargetWithinFootnoteBound) {
  const auto& [n, cuts] = GetParam();
  const auto spec = SparseHypercubeSpec::construct(n, cuts);
  const Graph g = spec.materialize();
  for (Vertex u = 0; u < spec.num_vertices(); u += 11) {
    const auto dist = bfs_distances(g, static_cast<VertexId>(u));
    for (Vertex v = 0; v < spec.num_vertices(); v += 7) {
      const auto walk = greedy_route(spec, u, v);
      ASSERT_EQ(walk.front(), u);
      ASSERT_EQ(walk.back(), v);
      // Every hop is an edge.
      for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
        EXPECT_TRUE(spec.has_edge(walk[i], walk[i + 1]));
      }
      const int hops = static_cast<int>(walk.size()) - 1;
      EXPECT_LE(hops, spec.k() * n);  // footnote 1
      EXPECT_GE(hops, static_cast<int>(dist[static_cast<VertexId>(v)]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyRouteSweep,
    ::testing::Values(std::pair{5, std::vector<int>{2}},
                      std::pair{7, std::vector<int>{3}},
                      std::pair{8, std::vector<int>{2, 4}},
                      std::pair{9, std::vector<int>{2, 4, 6}}));

TEST(GreedyRoute, SelfRouteIsTrivial) {
  const auto spec = SparseHypercubeSpec::construct_base(5, 2);
  const auto walk = greedy_route(spec, 9, 9);
  EXPECT_EQ(walk, (std::vector<Vertex>{9}));
}

TEST(GreedyRoute, WorksAtHugeN) {
  const auto spec = design_sparse_hypercube(48, 4);
  const Vertex a = 0x0123456789ABULL & mask_low(48);
  const Vertex b = 0xBA9876543210ULL & mask_low(48);
  const auto walk = greedy_route(spec, a, b);
  EXPECT_EQ(walk.front(), a);
  EXPECT_EQ(walk.back(), b);
  EXPECT_LE(static_cast<int>(walk.size()) - 1, 4 * 48);
}

TEST(SampleRouting, StatsAreConsistent) {
  const auto spec = design_sparse_hypercube(12, 3);
  const auto stats = sample_routing(spec, 500, 42);
  EXPECT_EQ(stats.pairs, 500u);
  EXPECT_TRUE(stats.within_bound);
  EXPECT_GE(stats.mean_stretch, 1.0);
  EXPECT_LE(stats.mean_stretch, stats.max_stretch);
  EXPECT_EQ(stats.footnote_bound, 36);
  EXPECT_GE(stats.max_hops, 1);
  // Deterministic for a fixed seed.
  const auto again = sample_routing(spec, 500, 42);
  EXPECT_EQ(again.total_hops, stats.total_hops);
}

TEST(DimensionProfile, SumsToEdgeCount) {
  for (auto [n, cuts] : std::vector<std::pair<int, std::vector<int>>>{
           {6, {2}}, {8, {3}}, {9, {2, 4}}, {10, {2, 4, 7}}}) {
    const auto spec = SparseHypercubeSpec::construct(n, cuts);
    const auto profile = dimension_edge_profile(spec);
    ASSERT_EQ(profile.size(), static_cast<std::size_t>(n));
    std::uint64_t total = 0;
    for (std::uint64_t e : profile) total += e;
    EXPECT_EQ(total, spec.num_edges()) << "n=" << n;
    // Core dimensions carry the full 2^(n-1) complement.
    for (int i = 1; i <= spec.core_dim(); ++i) {
      EXPECT_EQ(profile[static_cast<std::size_t>(i - 1)], cube_order(n - 1));
    }
    // Rule-2 dimensions are strictly sparser.
    for (int i = spec.core_dim() + 1; i <= n; ++i) {
      EXPECT_LT(profile[static_cast<std::size_t>(i - 1)], cube_order(n - 1));
    }
  }
}

TEST(DimensionProfile, MatchesMaterializedCounts) {
  const auto spec = SparseHypercubeSpec::construct_base(8, 3);
  const Graph g = spec.materialize();
  std::vector<std::uint64_t> counted(8, 0);
  for (const Edge& e : g.edges()) {
    ++counted[static_cast<std::size_t>(differing_dim(e.a, e.b) - 1)];
  }
  EXPECT_EQ(counted, dimension_edge_profile(spec));
}

TEST(BroadcastTree, ShapeOfMinimumTimeSchedule) {
  const auto spec = SparseHypercubeSpec::construct_base(6, 2);
  const auto schedule = make_broadcast_schedule(spec, 5);
  const auto stats = analyze_broadcast_tree(schedule);
  EXPECT_EQ(stats.vertices, spec.num_vertices());
  EXPECT_EQ(stats.height, 6);
  // The source calls in every round.
  EXPECT_EQ(stats.max_fanout, 6u);
  // Exactly doubling: 2, 4, 8, 16, 32, 64 informed.
  ASSERT_EQ(stats.informed_per_round.size(), 6u);
  for (std::size_t t = 0; t < 6; ++t) {
    EXPECT_EQ(stats.informed_per_round[t], std::uint64_t{2} << t);
  }
  // Fanout histogram of a binomial-type tree: 2^(n-1-f) vertices of
  // fanout f for f < n, plus the source at fanout n.
  ASSERT_EQ(stats.fanout_histogram.size(), 7u);
  EXPECT_EQ(stats.fanout_histogram[0], 32u);
  EXPECT_EQ(stats.fanout_histogram[5], 1u);
  EXPECT_EQ(stats.fanout_histogram[6], 1u);
}

TEST(BroadcastTree, EmptySchedule) {
  BroadcastSchedule s;
  s.source = 3;
  const auto stats = analyze_broadcast_tree(s);
  EXPECT_EQ(stats.vertices, 1u);
  EXPECT_EQ(stats.height, 0);
  EXPECT_EQ(stats.max_fanout, 0u);
}

}  // namespace
}  // namespace shc
