// End-to-end integration tests: design -> construct -> broadcast ->
// validate -> analyze, plus cross-module invariants that tie the paper's
// claims together.
#include <gtest/gtest.h>

#include <sstream>

#include "shc/shc.hpp"

namespace shc {
namespace {

// Property 1 / Property 2: a minimum-time k-line schedule is also a
// minimum-time (k+1)-line schedule, so G_k subset G_{k+1}.
TEST(Integration, SchedulesRemainValidForLargerK) {
  const auto spec = SparseHypercubeSpec::construct(7, {2, 4});
  const SparseHypercubeView view(spec);
  const auto schedule = make_broadcast_schedule(spec, 5);
  for (int k = spec.k(); k <= spec.k() + 3; ++k) {
    const auto rep = validate_minimum_time_k_line(view, schedule, k);
    EXPECT_TRUE(rep.ok) << "k=" << k << ": " << rep.error;
    EXPECT_TRUE(rep.minimum_time);
  }
}

// Q_n's binomial schedule is a 1-line schedule and hence also valid on
// the FULL cube under any k; the sparse cube needs k >= spec.k().
TEST(Integration, SparseCubeScheduleFailsUnderSmallerK) {
  const auto spec = SparseHypercubeSpec::construct_base(6, 2);
  const SparseHypercubeView view(spec);
  const auto schedule = make_broadcast_schedule(spec, 0);
  EXPECT_TRUE(validate_minimum_time_k_line(view, schedule, 2).ok);
  // The same schedule contains length-2 calls, so k = 1 must fail.
  EXPECT_FALSE(validate_minimum_time_k_line(view, schedule, 1).ok);
}

TEST(Integration, DiameterWithinFootnoteBound) {
  for (auto [n, cuts] : std::vector<std::pair<int, std::vector<int>>>{
           {6, {2}}, {8, {3}}, {8, {2, 4}}, {10, {2, 4, 7}}}) {
    const auto spec = SparseHypercubeSpec::construct(n, cuts);
    const Graph g = spec.materialize();
    EXPECT_LE(diameter(g), static_cast<std::uint32_t>(diameter_upper(n, spec.k())))
        << "n=" << n;
  }
}

TEST(Integration, DegreeReductionVersusQn) {
  // Example-3 scale: the sparse cube's degree is well below Q_n's n.
  const auto spec = SparseHypercubeSpec::construct_base(15, 3, example1_labeling_m3());
  EXPECT_EQ(spec.max_degree(), 6u);
  EXPECT_LT(spec.max_degree() * 2, 15u);
  // Edge count shrinks accordingly: 6 * 2^14 vs 15 * 2^14.
  EXPECT_EQ(spec.num_edges(), 6u * cube_order(14));
}

TEST(Integration, DesignBuildBroadcastAnalyze) {
  const int n = 10;
  for (int k = 2; k <= 5; ++k) {
    const auto spec = design_sparse_hypercube(n, k);
    EXPECT_EQ(spec.k(), k);
    EXPECT_LE(static_cast<int>(spec.max_degree()),
              k == 2 ? theorem5_upper(n) : theorem7_upper(n, k));

    const auto schedule = make_broadcast_schedule(spec, 777 % spec.num_vertices());
    const SparseHypercubeView view(spec);
    const auto rep = validate_minimum_time_k_line(view, schedule, k);
    ASSERT_TRUE(rep.ok) << "k=" << k << ": " << rep.error;
    EXPECT_TRUE(rep.minimum_time);

    const auto stats = analyze_congestion(schedule);
    EXPECT_EQ(stats.max_edge_load_per_round, 1);
    EXPECT_EQ(stats.total_edge_hops, static_cast<std::uint64_t>(schedule.num_calls()) +
                                         [&] {
                                           std::uint64_t extra = 0;
                                           for (int t = 0; t < schedule.num_rounds(); ++t)
                                             for (const auto c : schedule.round(t))
                                               extra += static_cast<std::uint64_t>(
                                                   c.length() - 1);
                                           return extra;
                                         }());
  }
}

TEST(Integration, MaterializedSparseCubesAreSpanningSubgraphsOfQn) {
  for (int k = 2; k <= 4; ++k) {
    const int n = 9;
    const auto spec = design_sparse_hypercube(n, k);
    const Graph g = spec.materialize();
    const Graph qn = make_hypercube(n);
    EXPECT_TRUE(is_spanning_subgraph(g, qn));
    EXPECT_TRUE(is_connected(g));
    EXPECT_LT(g.num_edges(), qn.num_edges());
  }
}

TEST(Integration, LowerBoundNeverExceedsRealizedDegree) {
  for (int k = 2; k <= 5; ++k) {
    for (int n = k + 1; n <= 22; ++n) {
      const auto cuts = optimal_cuts(n, k);
      EXPECT_GE(realized_max_degree(n, cuts), lower_bound_max_degree(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Integration, DotExportContainsAllEdges) {
  const auto spec = SparseHypercubeSpec::construct_base(4, 2, example1_labeling_m2());
  const Graph g = spec.materialize();
  std::ostringstream os;
  write_dot(os, g, "g42", 4);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("graph g42 {"), std::string::npos);
  EXPECT_NE(dot.find("label=\"0011\""), std::string::npos);
  std::size_t edge_lines = 0;
  for (std::size_t pos = 0; (pos = dot.find(" -- ", pos)) != std::string::npos; ++pos) {
    ++edge_lines;
  }
  EXPECT_EQ(edge_lines, g.num_edges());
}

TEST(Integration, TextTableFormats) {
  TextTable t({"n", "Delta"});
  t.add_row({"8", "4"});
  t.add_row({"16", "5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n  Delta"), std::string::npos);
  EXPECT_NE(out.find("16"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

// The paper's Property-1 stack end-to-end: the 1-line binomial schedule
// on Q_n validates under every k >= 1 on the full cube.
TEST(Integration, BinomialScheduleValidForAllK) {
  const int n = 6;
  const HypercubeView qn(n);
  const auto schedule = hypercube_binomial_broadcast(n, 21);
  for (int k : {1, 2, 5, 63}) {
    EXPECT_TRUE(validate_minimum_time_k_line(qn, schedule, k).ok);
  }
}

}  // namespace
}  // namespace shc
