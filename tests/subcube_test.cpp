// Subcube algebra unit suite: disjointness, splitting, intersection,
// and multiplicity accounting — property-style sweeps over random
// subcube pairs cross-checked exhaustively against explicit bitmaps for
// n <= 16, plus the canonical-reduction and overlap-sweep engines the
// symbolic validator's endgame rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bitset>
#include <random>
#include <vector>

#include "shc/bits/checked.hpp"
#include "shc/sim/subcube.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {
namespace {

/// Reference expansion of a subcube into an explicit vertex bitmap.
std::bitset<1 << 16> expand(const Subcube& s) {
  std::bitset<1 << 16> bits;
  Vertex a = 0;
  for (;;) {
    bits.set(static_cast<std::size_t>(s.prefix | a));
    if (a == s.mask) break;
    a = (a - s.mask) & s.mask;
  }
  return bits;
}

Subcube random_subcube(std::mt19937_64& rng, int n) {
  const Vertex mask = rng() & mask_low(n);
  const Vertex prefix = rng() & mask_low(n) & ~mask;
  return {prefix, mask};
}

TEST(SubcubeAlgebra, OverlapAndIntersectionMatchBitmapsExhaustivelySmall) {
  // Every subcube pair of Q_4: 3^4 x 3^4 shapes via (mask, prefix) scan.
  for (Vertex m1 = 0; m1 < 16; ++m1) {
    for (Vertex p1 = 0; p1 < 16; ++p1) {
      if (p1 & m1) continue;
      for (Vertex m2 = 0; m2 < 16; ++m2) {
        for (Vertex p2 = 0; p2 < 16; ++p2) {
          if (p2 & m2) continue;
          const Subcube a{p1, m1}, b{p2, m2};
          const auto bits = expand(a) & expand(b);
          ASSERT_EQ(subcubes_overlap(a, b), bits.any());
          const auto inter = subcube_intersection(a, b);
          ASSERT_EQ(inter.has_value(), bits.any());
          if (inter) {
            ASSERT_EQ(expand(*inter), bits);
          }
          ASSERT_EQ(subcube_contains(a, b), (expand(b) & ~expand(a)).none());
        }
      }
    }
  }
}

TEST(SubcubeAlgebra, RandomPairSweepMatchesBitmapsAtN16) {
  std::mt19937_64 rng(0xA11CE);
  const int n = 16;
  for (int trial = 0; trial < 2000; ++trial) {
    const Subcube a = random_subcube(rng, n);
    const Subcube b = random_subcube(rng, n);
    const auto ea = expand(a), eb = expand(b);
    ASSERT_EQ(subcubes_overlap(a, b), (ea & eb).any());
    const auto inter = subcube_intersection(a, b);
    if (inter) {
      ASSERT_EQ(expand(*inter), ea & eb);
    } else {
      ASSERT_TRUE((ea & eb).none());
    }
    ASSERT_EQ(subcube_contains(a, b), (eb & ~ea).none());
    ASSERT_EQ(a.size(), ea.count());
  }
}

TEST(SubcubeAlgebra, SubtractSplitsIntoDisjointCover) {
  std::mt19937_64 rng(0xBEEF);
  const int n = 12;
  for (int trial = 0; trial < 500; ++trial) {
    const Subcube outer = random_subcube(rng, n);
    // A random sub-subcube of outer: pin a random subset of its free dims.
    const Vertex pin = rng() & outer.mask;
    const Subcube inner{outer.prefix | (rng() & pin), outer.mask & ~pin};
    ASSERT_TRUE(subcube_contains(outer, inner));
    const auto pieces = subcube_subtract(outer, inner);
    ASSERT_EQ(pieces.size(), static_cast<std::size_t>(weight(pin)));
    auto covered = expand(inner);
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      const auto bits = expand(pieces[i]);
      ASSERT_TRUE((bits & covered).none()) << "piece overlaps";
      ASSERT_FALSE(subcubes_overlap(pieces[i], inner));
      covered |= bits;
    }
    ASSERT_EQ(covered, expand(outer)) << "pieces + inner must tile outer";
  }
}

TEST(SubcubeFrontierTest, CoalescesATilingToOneCubeAndCountsExactly) {
  // Insert all 2^10 singletons in random order: sibling coalescing must
  // collapse them into few subcubes totalling exactly 2^10.
  const int n = 10;
  std::vector<Vertex> order(1 << n);
  for (Vertex v = 0; v < order.size(); ++v) order[v] = v;
  std::mt19937_64 rng(7);
  std::shuffle(order.begin(), order.end(), rng);

  SubcubeFrontier f(n);
  for (const Vertex v : order) f.insert(v, 0);
  EXPECT_TRUE(f.count_ok());
  EXPECT_EQ(f.total_count(), cube_order(n));
  // Greedy sibling merging is order-sensitive and may wedge in a local
  // optimum (which is exactly why the endgame uses canonical_reduce);
  // it must still collapse a substantial fraction of the tiling.
  EXPECT_LT(f.num_subcubes(), cube_order(n) / 2);

  // Whatever local optimum greedy coalescing reached, the canonical
  // reduction is the single full cube with multiplicity one.
  const auto canon = canonical_reduce(f.to_entries(), n);
  ASSERT_TRUE(canon.has_value());
  ASSERT_EQ(canon->size(), 1u);
  EXPECT_EQ((*canon)[0].prefix, 0u);
  EXPECT_EQ((*canon)[0].mask, mask_low(n));
  EXPECT_EQ((*canon)[0].mult, 1u);
}

TEST(SubcubeFrontierTest, MultiplicityAccountingSurvivesCoalescing) {
  const int n = 8;
  SubcubeFrontier f(n);
  // Cover the cube once...
  f.insert(0, mask_low(n));
  // ...and vertex 5 a second time: the multiset must remember it.
  f.insert(5, 0);
  EXPECT_EQ(f.total_count(), cube_order(n) + 1);
  const auto canon = canonical_reduce(f.to_entries(), n);
  ASSERT_TRUE(canon.has_value());
  bool found_duplicate = false;
  for (const WeightedSubcube& e : *canon) {
    if (e.mult > 1) {
      found_duplicate = true;
      const Subcube dup{e.prefix, e.mask};
      EXPECT_TRUE(dup.contains_vertex(5));
    }
  }
  EXPECT_TRUE(found_duplicate) << "duplicate coverage must not coalesce away";
}

TEST(SubcubeFrontierTest, RawLedgerTakeConsumesExactly) {
  SubcubeFrontier ledger(8);
  ledger.add_raw(3, 0x30, 4);
  EXPECT_FALSE(ledger.take(3, 0x30, 5)) << "cannot take more than present";
  EXPECT_TRUE(ledger.take(3, 0x30, 4));
  EXPECT_TRUE(ledger.empty());
  EXPECT_FALSE(ledger.take(3, 0x30, 1));
}

TEST(CanonicalReduce, NormalizesAnyDisjointPartitionOfTheCube) {
  std::mt19937_64 rng(0xCAFE);
  const int n = 9;
  for (int trial = 0; trial < 50; ++trial) {
    // Random recursive partition of Q_n into subcubes.
    std::vector<Subcube> stack{{0, mask_low(n)}};
    std::vector<WeightedSubcube> parts;
    while (!stack.empty()) {
      const Subcube c = stack.back();
      stack.pop_back();
      if (c.mask != 0 && (rng() & 3) != 0) {
        const int free_dims = weight(c.mask);
        int pick = static_cast<int>(rng() % static_cast<std::uint64_t>(free_dims));
        Vertex b = c.mask;
        while (pick--) b &= b - 1;
        b &= ~b + 1;
        stack.push_back({c.prefix, c.mask & ~b});
        stack.push_back({c.prefix | b, c.mask & ~b});
      } else {
        parts.push_back({c.prefix, c.mask, 1});
      }
    }
    std::shuffle(parts.begin(), parts.end(), rng);
    const auto canon = canonical_reduce(parts, n);
    ASSERT_TRUE(canon.has_value());
    ASSERT_EQ(canon->size(), 1u) << "a partition of the cube must reduce to it";
    EXPECT_EQ((*canon)[0].mask, mask_low(n));
    EXPECT_EQ((*canon)[0].mult, 1u);
  }
}

TEST(OverlapSweep, FindsExactlyTheIntersectingPairs) {
  std::mt19937_64 rng(0xD15C0);
  const int n = 12;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Subcube> family;
    for (int i = 0; i < 24; ++i) family.push_back(random_subcube(rng, n));
    const auto pairs = find_overlapping_pairs(family);
    ASSERT_TRUE(pairs.has_value());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> expect;
    for (std::uint32_t i = 0; i < family.size(); ++i) {
      for (std::uint32_t j = i + 1; j < family.size(); ++j) {
        if (subcubes_overlap(family[i], family[j])) expect.emplace_back(i, j);
      }
    }
    ASSERT_EQ(*pairs, expect);
  }
}

TEST(CheckedArithmetic, FlagsTheBoundaryInsteadOfWrapping) {
  std::uint64_t out = 0;
  // 2^63 - 1 calls (the n = 63 broadcast) must survive doubling checks...
  EXPECT_TRUE(checked_add_u64((std::uint64_t{1} << 63) - 1, 1, out));
  EXPECT_EQ(out, std::uint64_t{1} << 63);
  // ...but one step past 2^64 - 1 must flag, not wrap.
  out = 7;
  EXPECT_FALSE(checked_add_u64(~std::uint64_t{0}, 1, out));
  EXPECT_EQ(out, 7u) << "failed add must leave the accumulator untouched";
  EXPECT_FALSE(checked_mul_u64(std::uint64_t{1} << 32, std::uint64_t{1} << 32, out));
  EXPECT_EQ(out, 7u);
  EXPECT_TRUE(checked_mul_u64(std::uint64_t{1} << 31, std::uint64_t{1} << 32, out));
  EXPECT_EQ(out, std::uint64_t{1} << 63);
  EXPECT_TRUE(checked_shift_u64(63, out));
  EXPECT_FALSE(checked_shift_u64(64, out));
}

TEST(WorkerPoolTest, RunsEveryJobExactlyOnceAcrossReuse) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  // Reuse the same pool across many generations (the per-round pattern).
  for (int round = 0; round < 200; ++round) {
    const int jobs = 1 + round % 7;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(jobs));
    pool.run(jobs, [&](int j) { hits[static_cast<std::size_t>(j)].fetch_add(1); });
    for (int j = 0; j < jobs; ++j) {
      ASSERT_EQ(hits[static_cast<std::size_t>(j)].load(), 1)
          << "job " << j << " of round " << round;
    }
  }
}

}  // namespace
}  // namespace shc
