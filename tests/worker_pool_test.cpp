// WorkerPool stress and exception-propagation suite.
//
// The pool shards every per-round kernel of the streaming and symbolic
// validators; its exactly-once job accounting and generation recycling
// are correctness-critical under any thread count.  This suite is the
// TSan workload for the pool: oversubscription (more workers than
// cores), rapid generation reuse with tiny jobs (straggler drain races),
// and the exception path (a throwing task must surface cleanly and
// leave the pool reusable) — all patterns the production kernels either
// rely on or must survive.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "shc/sim/worker_pool.hpp"

namespace shc {
namespace {

TEST(WorkerPoolStressTest, OversubscribedPoolRunsEveryJobExactlyOnce) {
  // 16 workers on any box oversubscribes CI runners: contention on the
  // job counter and the done-notification is the point.
  WorkerPool pool(16);
  EXPECT_EQ(pool.workers(), 16);
  const int jobs = 1000;
  std::vector<std::atomic<int>> hits(jobs);
  pool.run(jobs, [&](int j) { hits[static_cast<std::size_t>(j)].fetch_add(1); });
  for (int j = 0; j < jobs; ++j) {
    EXPECT_EQ(hits[static_cast<std::size_t>(j)].load(), 1) << "job " << j;
  }
}

TEST(WorkerPoolStressTest, HundredGenerationsOfReuseStayExact) {
  WorkerPool pool(8);
  std::atomic<std::uint64_t> total{0};
  std::uint64_t expected = 0;
  for (int gen = 0; gen < 100; ++gen) {
    const int jobs = 1 + (gen % 7);  // exercises the jobs == 1 inline path too
    pool.run(jobs, [&](int j) {
      total.fetch_add(static_cast<std::uint64_t>(j) + 1,
                      std::memory_order_relaxed);
    });
    expected += static_cast<std::uint64_t>(jobs) * (jobs + 1) / 2;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(WorkerPoolStressTest, BackToBackTinyGenerationsDrainStragglers) {
  // Two-job generations issued back to back: the previous generation's
  // stragglers are still inside pull_jobs when run() wants to recycle
  // the shared counters.  This is the cv_idle_ drain path under fire.
  WorkerPool pool(8);
  std::atomic<int> count{0};
  for (int gen = 0; gen < 500; ++gen) {
    pool.run(2, [&](int) { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(WorkerPoolStressTest, SingleThreadPoolRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.workers(), 1);
  std::vector<int> order;
  pool.run(5, [&](int j) { order.push_back(j); });  // inline: no data race
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkerPoolStressTest, ThrowingTaskPropagatesAndPoolStaysReusable) {
  WorkerPool pool(4);
  std::atomic<int> executed{0};
  try {
    pool.run(64, [&](int j) {
      if (j == 13) throw std::runtime_error("job 13 failed");
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "job 13 failed");
  }
  // Every job index was accounted for (the generation drained), even
  // though jobs claimed after the failure were skipped.
  EXPECT_LE(executed.load(), 63);

  // The pool must be fully reusable after the failure.
  std::atomic<int> after{0};
  pool.run(32, [&](int) { after.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(after.load(), 32);
}

TEST(WorkerPoolStressTest, ThrowOnSerialPathPropagatesDirectly) {
  WorkerPool pool(1);  // inline path: plain rethrow semantics
  EXPECT_THROW(pool.run(3,
                        [&](int j) {
                          if (j == 1) throw std::invalid_argument("bad");
                        }),
               std::invalid_argument);
}

TEST(WorkerPoolStressTest, RepeatedFailuresDoNotWedgeThePool) {
  WorkerPool pool(4);
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(
        pool.run(8, [&](int j) {
          if (j == round % 8) throw std::runtime_error("boom");
        }),
        std::runtime_error);
  }
  std::atomic<int> ok{0};
  pool.run(8, [&](int) { ok.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ok.load(), 8);
}

}  // namespace
}  // namespace shc
