// Tests for the sparse hypercube construction (Construct_BASE and the
// recursive Construct), including exact reproduction of the paper's
// Examples 2 and 3 (Figures 2 and 3).
#include <gtest/gtest.h>

#include "shc/bits/bitstring.hpp"
#include "shc/graph/algorithms.hpp"
#include "shc/graph/generators.hpp"
#include "shc/mlbg/spec.hpp"

namespace shc {
namespace {

TEST(PartitionDims, NearEvenAscending) {
  const auto p = partition_dims(2, 4, 2);  // dims {3, 4} into 2 classes
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], (std::vector<Dim>{3}));
  EXPECT_EQ(p[1], (std::vector<Dim>{4}));

  const auto q = partition_dims(3, 15, 4);  // Example 3's 12 dims into 4
  ASSERT_EQ(q.size(), 4u);
  for (const auto& s : q) EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(q[0], (std::vector<Dim>{4, 5, 6}));
  EXPECT_EQ(q[3], (std::vector<Dim>{13, 14, 15}));
}

TEST(PartitionDims, AllowsEmptyClasses) {
  const auto p = partition_dims(5, 7, 4);  // 2 dims into 4 classes
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0].size(), 1u);
  EXPECT_EQ(p[1].size(), 1u);
  EXPECT_TRUE(p[2].empty());
  EXPECT_TRUE(p[3].empty());
  // Sizes differ by at most one (the paper's Step 2 requirement).
}

/// Example 2: G_{4,2} with the Example-1 labeling of Q_2 and the
/// partition S_1 = {3}, S_2 = {4}.
SparseHypercubeSpec make_g42() {
  return SparseHypercubeSpec::construct_base(4, 2, example1_labeling_m2());
}

TEST(Example2, G42BasicShape) {
  const auto g42 = make_g42();
  EXPECT_EQ(g42.n(), 4);
  EXPECT_EQ(g42.k(), 2);
  EXPECT_EQ(g42.num_vertices(), 16u);
  EXPECT_EQ(g42.core_dim(), 2);
  // 16 Rule-1 edges (two full dims) + 4 dim-3 edges + 4 dim-4 edges.
  EXPECT_EQ(g42.num_edges(), 24u);
  EXPECT_EQ(g42.max_degree(), 3u);
  EXPECT_EQ(g42.min_degree(), 3u);
}

TEST(Example2, G42EdgeRulesMatchPaper) {
  const auto g42 = make_g42();
  const auto bit = [](std::string_view s) { return *parse_bitstring(s); };
  // Rule 1: all dimension-1 and dimension-2 edges exist.
  for (Vertex u = 0; u < 16; ++u) {
    EXPECT_TRUE(g42.has_edge(u, flip(u, 1)));
    EXPECT_TRUE(g42.has_edge(u, flip(u, 2)));
  }
  // Paper's worked facts: 0011 -- 0111 (dim 3, label c1 owns {3});
  // 0000 -- 1000 absent (dim 4 owned by c2, 0000 has label c1).
  EXPECT_TRUE(g42.has_edge(bit("0011"), bit("0111")));
  EXPECT_FALSE(g42.has_edge(bit("0000"), bit("1000")));
  EXPECT_TRUE(g42.has_edge(bit("0010"), bit("1010")));   // 0010 has c2, owns dim 4
  EXPECT_FALSE(g42.has_edge(bit("0010"), bit("0110")));  // dim 3 needs c1
  // Non-cube pairs are never edges.
  EXPECT_FALSE(g42.has_edge(bit("0000"), bit("0011")));
  EXPECT_FALSE(g42.has_edge(bit("0101"), bit("0101")));
}

TEST(Example2, G42LabelsFollowSuffix) {
  const auto g42 = make_g42();
  // g(u) = f*(u_2 u_1): suffixes 00/11 -> c1 (0), 01/10 -> c2 (1).
  for (Vertex u = 0; u < 16; ++u) {
    const Vertex suffix = u & 0b11;
    const Label expect = (suffix == 0b00 || suffix == 0b11) ? 0 : 1;
    EXPECT_EQ(g42.label_at(u, 0), expect) << "u=" << u;
  }
}

TEST(Example3, G153DegreeSix) {
  // Construct_BASE(15, 3) with the Example-1 m=3 labeling: 4 labels,
  // 12 cross dims split 3+3+3+3, so every vertex has degree 3 + 3 = 6.
  const auto g = SparseHypercubeSpec::construct_base(15, 3, example1_labeling_m3());
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_EQ(g.min_degree(), 6u);
  EXPECT_LT(g.max_degree(), 15u / 2 + 1);  // "less than half of Delta(Q_15)"
  // Closed-form edge count: regular of degree 6 on 2^15 vertices.
  EXPECT_EQ(g.num_edges(), (cube_order(15) * 6) / 2);
  // Worked example: 000...0 is connected to flips of dims 13, 14, 15
  // only among cross dims (label c1 owns the top block with ascending
  // partition order reversed — in our ascending convention label c1
  // owns {4,5,6}).
  const Vertex zero = 0;
  EXPECT_EQ(g.label_at(zero, 0), 0u);
  for (Dim i : {4, 5, 6}) EXPECT_TRUE(g.has_edge_dim(zero, i));
  for (Dim i = 7; i <= 15; ++i) EXPECT_FALSE(g.has_edge_dim(zero, i));
}

class OracleMatchesMaterialized
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(OracleMatchesMaterialized, EdgeForEdge) {
  const auto [n, m] = GetParam();
  const auto spec = SparseHypercubeSpec::construct_base(n, m);
  const Graph g = spec.materialize();
  EXPECT_EQ(g.num_edges(), spec.num_edges());
  EXPECT_EQ(g.max_degree(), spec.max_degree());
  EXPECT_EQ(g.min_degree(), spec.min_degree());
  for (Vertex u = 0; u < spec.num_vertices(); ++u) {
    EXPECT_EQ(g.degree(static_cast<VertexId>(u)), spec.degree(u));
    for (Dim i = 1; i <= n; ++i) {
      EXPECT_EQ(g.has_edge(static_cast<VertexId>(u), static_cast<VertexId>(flip(u, i))),
                spec.has_edge_dim(u, i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BaseSweep, OracleMatchesMaterialized,
                         ::testing::Values(std::pair{3, 1}, std::pair{3, 2},
                                           std::pair{4, 2}, std::pair{5, 2},
                                           std::pair{6, 3}, std::pair{7, 3},
                                           std::pair{8, 3}, std::pair{9, 4},
                                           std::pair{10, 4}));

class SparseCubeInvariants : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SparseCubeInvariants, SpanningConnectedSubgraphOfQn) {
  const auto [n, m] = GetParam();
  const auto spec = SparseHypercubeSpec::construct_base(n, m);
  const Graph g = spec.materialize();
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_spanning_subgraph(g, make_hypercube(n)));
  // Strictly sparser than Q_n whenever some label class has > 1 dims...
  EXPECT_LT(g.num_edges(), make_hypercube(n).num_edges());
}

INSTANTIATE_TEST_SUITE_P(BaseSweep, SparseCubeInvariants,
                         ::testing::Values(std::pair{4, 2}, std::pair{5, 2},
                                           std::pair{6, 2}, std::pair{7, 3},
                                           std::pair{9, 3}, std::pair{11, 4}));

TEST(RecursiveConstruct, Example6Shape) {
  // Construct_REC(7, 4, 2): labels on window (2,4], dims (4,7] split
  // between 2 labels as {5,6} / {7} (ascending convention; the paper
  // picks S_1 = {7,6}, S_2 = {5} — same degree profile).
  const auto g = SparseHypercubeSpec::construct(
      7, {2, 4}, {example1_labeling_m2(), example1_labeling_m2()});
  EXPECT_EQ(g.k(), 3);
  EXPECT_EQ(g.core_dim(), 2);
  ASSERT_EQ(g.levels().size(), 2u);
  EXPECT_EQ(g.levels()[0].win_lo, 0);
  EXPECT_EQ(g.levels()[0].win_hi, 2);
  EXPECT_EQ(g.levels()[0].dim_lo, 2);
  EXPECT_EQ(g.levels()[0].dim_hi, 4);
  EXPECT_EQ(g.levels()[1].win_lo, 2);
  EXPECT_EQ(g.levels()[1].win_hi, 4);
  EXPECT_EQ(g.levels()[1].dim_lo, 4);
  EXPECT_EQ(g.levels()[1].dim_hi, 7);
  // Degree: 2 core + 1 (level-1 classes of size 1) + {1 or 2}.
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_EQ(g.max_degree(), 5u);
  // Rule 1 restricted to the suffix graph: dims 1..4 follow G_{4,2}.
  const auto g42 = make_g42();
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Dim i = 1; i <= 4; ++i) {
      EXPECT_EQ(g.has_edge_dim(u, i), g42.has_edge_dim(u & mask_low(4), i));
    }
  }
}

TEST(RecursiveConstruct, LevelOfDimAndDegreeConsistency) {
  const auto g = SparseHypercubeSpec::construct(10, {2, 4, 7});
  EXPECT_EQ(g.k(), 4);
  EXPECT_EQ(g.level_of_dim(1), -1);
  EXPECT_EQ(g.level_of_dim(2), -1);
  EXPECT_EQ(g.level_of_dim(3), 0);
  EXPECT_EQ(g.level_of_dim(4), 0);
  EXPECT_EQ(g.level_of_dim(5), 1);
  EXPECT_EQ(g.level_of_dim(7), 1);
  EXPECT_EQ(g.level_of_dim(8), 2);
  EXPECT_EQ(g.level_of_dim(10), 2);
  // Degree via oracle scan equals closed-form degree().
  const Graph mat = g.materialize();
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(mat.degree(static_cast<VertexId>(u)), g.degree(u));
  }
  EXPECT_EQ(mat.num_edges(), g.num_edges());
  EXPECT_TRUE(is_connected(mat));
}

TEST(RecursiveConstruct, NeighborsMatchOracle) {
  const auto g = SparseHypercubeSpec::construct(8, {2, 5});
  for (Vertex u = 0; u < g.num_vertices(); u += 7) {
    const auto nb = g.neighbors(u);
    EXPECT_EQ(nb.size(), g.degree(u));
    for (Vertex v : nb) EXPECT_TRUE(g.has_edge(u, v));
  }
}

TEST(SparseHypercubeView, AdaptsSpec) {
  const auto spec = make_g42();
  const SparseHypercubeView view(spec);
  EXPECT_EQ(view.num_vertices(), 16u);
  EXPECT_TRUE(view.has_edge(0b0011, 0b0111));
  EXPECT_FALSE(view.has_edge(0b0000, 0b1000));
}

}  // namespace
}  // namespace shc
