// Tests for route_flip and the Broadcast_2 / Broadcast_k schemes
// (Theorems 4 and 6), all certified through the simulator.
#include <gtest/gtest.h>

#include <algorithm>

#include "shc/bits/bitstring.hpp"
#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/params.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/validator.hpp"

namespace shc {
namespace {

SparseHypercubeSpec make_g42() {
  return SparseHypercubeSpec::construct_base(4, 2, example1_labeling_m2());
}

TEST(RouteFlip, DirectEdgeWhenPresent) {
  const auto g42 = make_g42();
  for (Vertex u = 0; u < 16; ++u) {
    for (Dim i = 1; i <= 2; ++i) {  // core dims always direct
      const auto p = route_flip(g42, u, i);
      ASSERT_EQ(p.size(), 2u);
      EXPECT_EQ(p.front(), u);
      EXPECT_EQ(p.back(), flip(u, i));
    }
  }
}

TEST(RouteFlip, DetourLengthTwoForMissingCrossEdge) {
  const auto g42 = make_g42();
  const Vertex u = *parse_bitstring("0000");
  ASSERT_FALSE(g42.has_edge_dim(u, 4));
  const auto p = route_flip(g42, u, 4);
  ASSERT_EQ(p.size(), 3u);  // length-2 call through a Rule-1 neighbor
  EXPECT_EQ(p.front(), u);
  // Intermediate vertex is a core-dim neighbor whose label owns dim 4.
  EXPECT_TRUE(cube_adjacent(u, p[1]));
  EXPECT_TRUE(g42.has_edge(u, p[1]));
  EXPECT_TRUE(g42.has_edge(p[1], p[2]));
  EXPECT_EQ(p.back(), flip(p[1], 4));
  // Receiver agrees with flip(u, 4) on all dims above the core.
  EXPECT_EQ(p.back() >> 2, flip(u, 4) >> 2);
}

TEST(RouteFlip, EveryDimEveryVertexWithinBound) {
  for (const auto& spec :
       {SparseHypercubeSpec::construct(7, {2, 4}), SparseHypercubeSpec::construct(9, {2, 4, 6})}) {
    for (Vertex u = 0; u < spec.num_vertices(); ++u) {
      for (Dim i = 1; i <= spec.n(); ++i) {
        const auto p = route_flip(spec, u, i);
        ASSERT_GE(p.size(), 2u);
        EXPECT_EQ(p.front(), u);
        EXPECT_LE(static_cast<int>(p.size()) - 1, route_length_bound(spec, i));
        EXPECT_LE(static_cast<int>(p.size()) - 1, spec.k());
        // Every hop is an edge of the sparse cube.
        for (std::size_t j = 0; j + 1 < p.size(); ++j) {
          EXPECT_TRUE(spec.has_edge(p[j], p[j + 1]));
        }
        // The receiver realizes the dim-i flip above the disturbance zone.
        EXPECT_EQ(coord(p.back(), i), 1 - coord(u, i));
        EXPECT_EQ(p.back() >> i, flip(u, i) >> i);
      }
    }
  }
}

// Designed-spec sweep across k in {2, 3, 4}: every dimension's realized
// route stays within route_length_bound (hence within k), starts at u,
// and ends at a vertex realizing the dimension-i flip above the detour's
// disturbance zone — the documented route_flip contract.
TEST(RouteFlip, LengthBoundHoldsAcrossDesignedKSweep) {
  const int n = 9;
  for (int k = 2; k <= 4; ++k) {
    const auto spec = design_sparse_hypercube(n, k);
    ASSERT_EQ(spec.k(), k);
    for (Vertex u = 0; u < spec.num_vertices(); ++u) {
      for (Dim i = 1; i <= spec.n(); ++i) {
        const int bound = route_length_bound(spec, i);
        EXPECT_GE(bound, 1);
        EXPECT_LE(bound, k) << "k=" << k << " dim " << i;
        const auto p = route_flip(spec, u, i);
        ASSERT_GE(p.size(), 2u);
        // Starts at u...
        EXPECT_EQ(p.front(), u);
        // ...realizes the dimension-i flip above the disturbance zone...
        EXPECT_EQ(coord(p.back(), i), 1 - coord(u, i));
        EXPECT_EQ(p.back() >> i, flip(u, i) >> i);
        // ...within the per-dimension bound, over real edges.
        EXPECT_LE(static_cast<int>(p.size()) - 1, bound)
            << "k=" << k << " u=" << u << " dim " << i;
        for (std::size_t j = 0; j + 1 < p.size(); ++j) {
          EXPECT_TRUE(spec.has_edge(p[j], p[j + 1]));
        }
        // Core dimensions must be direct edges (bound 1 is tight).
        if (spec.level_of_dim(i) < 0) {
          EXPECT_EQ(p.size(), 2u);
        }
      }
    }
  }
}

TEST(Broadcast2, Example4TraceFromZero) {
  const auto g42 = make_g42();
  const auto schedule = make_broadcast_schedule(g42, 0);
  ASSERT_EQ(schedule.num_rounds(), 4);
  // Round 1: the single call from 0000 must be a length-2 detour into
  // the 1xxx half (dim 4 is not owned by 0000's label).
  ASSERT_EQ(schedule.round(0).size(), 1u);
  const FlatSchedule::CallView first = schedule.round(0)[0];
  EXPECT_EQ(first.caller(), 0u);
  EXPECT_EQ(first.length(), 2);
  EXPECT_EQ(coord(first.receiver(), 4), 1);
  // The paper's trace reaches 1010 via 0010; ours may pick the other
  // Condition-A witness (1001 via 0001) — both are legal detours.
  EXPECT_TRUE(first.receiver() == *parse_bitstring("1010") ||
              first.receiver() == *parse_bitstring("1001"));
  // Round 2: two calls, receivers in the two still-empty dim-3 halves.
  ASSERT_EQ(schedule.round(1).size(), 2u);
  // Rounds 3-4: subcube flood with direct edges only.
  for (int t = 2; t < 4; ++t) {
    for (const FlatSchedule::CallView c : schedule.round(t)) EXPECT_EQ(c.length(), 1);
  }
  const auto report = validate_minimum_time_k_line(SpecView{g42}, schedule, 2);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(report.minimum_time);
}

TEST(Broadcast2, LiteralSchemeMatchesUnified) {
  const auto spec = SparseHypercubeSpec::construct_base(6, 3);
  for (Vertex s = 0; s < spec.num_vertices(); s += 5) {
    const auto a = make_broadcast_schedule(spec, s);
    const auto b = make_broadcast2_literal(spec, s);
    ASSERT_EQ(a.num_rounds(), b.num_rounds());
    for (int t = 0; t < a.num_rounds(); ++t) {
      ASSERT_EQ(a.round(t).size(), b.round(t).size()) << "round " << t;
      for (std::size_t c = 0; c < a.round(t).size(); ++c) {
        const auto pa = a.round(t)[c];
        const auto pb = b.round(t)[c];
        EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()))
            << "round " << t << " call " << c;
      }
    }
    // Arena-level equality, and equality after a full round trip through
    // the legacy conversion shim: the flat migration must not perturb
    // the literal transcription cross-check.
    EXPECT_TRUE(a == b);
    EXPECT_TRUE(FlatSchedule::from_legacy(a.to_legacy()) == b);
  }
}

struct BroadcastCase {
  int n;
  std::vector<int> cuts;
};

class BroadcastAllSources : public ::testing::TestWithParam<BroadcastCase> {};

// Theorem 4 / Theorem 6: minimum-time k-line broadcast from EVERY source.
TEST_P(BroadcastAllSources, ValidatesMinimumTime) {
  const auto& param = GetParam();
  const auto spec = SparseHypercubeSpec::construct(param.n, param.cuts);
  const SparseHypercubeView view(spec);
  const int k = spec.k();
  for (Vertex s = 0; s < spec.num_vertices(); ++s) {
    const auto schedule = make_broadcast_schedule(spec, s);
    const auto report = validate_minimum_time_k_line(view, schedule, k);
    ASSERT_TRUE(report.ok) << "source " << s << ": " << report.error;
    EXPECT_TRUE(report.minimum_time) << "source " << s;
    EXPECT_EQ(report.rounds, param.n);
    EXPECT_LE(report.max_call_length, k);
    EXPECT_EQ(report.informed, spec.num_vertices());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BroadcastAllSources,
    ::testing::Values(BroadcastCase{3, {1}}, BroadcastCase{4, {2}},
                      BroadcastCase{5, {2}}, BroadcastCase{6, {2}},
                      BroadcastCase{7, {3}}, BroadcastCase{8, {3}},
                      BroadcastCase{6, {2, 4}}, BroadcastCase{7, {2, 4}},
                      BroadcastCase{8, {2, 4}}, BroadcastCase{9, {2, 5}},
                      BroadcastCase{8, {2, 4, 6}}, BroadcastCase{10, {2, 4, 7}},
                      BroadcastCase{10, {1, 3, 5, 7}}),
    [](const auto& info) {
      std::string name = "n" + std::to_string(info.param.n) + "k" +
                         std::to_string(info.param.cuts.size() + 1);
      // Appending piecewise (not via `"_" + std::to_string(c)`) dodges
      // GCC 12's bogus -Wrestrict on operator+(const char*, string&&),
      // which -Werror would otherwise promote.
      for (int c : info.param.cuts) {
        name += '_';
        name += std::to_string(c);
      }
      return name;
    });

TEST(Broadcast, ExactDoublingEveryRound) {
  const auto spec = SparseHypercubeSpec::construct(7, {2, 4});
  const auto schedule = make_broadcast_schedule(spec, 19);
  std::size_t informed = 1;
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    EXPECT_EQ(schedule.round(t).size(), informed);  // every informed vertex calls
    informed *= 2;
  }
  EXPECT_EQ(informed, spec.num_vertices());
}

TEST(Broadcast, DesignedNetworksBroadcastFromEverySource) {
  for (int k = 2; k <= 4; ++k) {
    const int n = 9;
    const auto spec = design_sparse_hypercube(n, k);
    EXPECT_EQ(spec.k(), k);
    const SparseHypercubeView view(spec);
    for (Vertex s = 0; s < spec.num_vertices(); s += 13) {
      const auto report =
          validate_minimum_time_k_line(view, make_broadcast_schedule(spec, s), k);
      ASSERT_TRUE(report.ok) << "k=" << k << " source " << s << ": " << report.error;
      EXPECT_TRUE(report.minimum_time);
    }
  }
}

TEST(Broadcast, MaxCallLengthMatchesLevelStructure) {
  // A k = 4 construction must place at least one call of length > 2
  // somewhere (otherwise it would already be a 2-mlbg of lower degree
  // than the lower bound allows) and never exceed k.
  const auto spec = SparseHypercubeSpec::construct(10, {2, 4, 7});
  const auto schedule = make_broadcast_schedule(spec, 0);
  EXPECT_LE(schedule.max_call_length(), spec.k());
  EXPECT_GE(schedule.max_call_length(), 3);
}

TEST(FormatSchedule, ShowsRoundsAndVias) {
  const auto g42 = make_g42();
  const auto s = make_broadcast_schedule(g42, 0);
  const std::string text = format_schedule(s, 4);
  EXPECT_NE(text.find("broadcast from 0000 in 4 round(s)"), std::string::npos);
  EXPECT_NE(text.find("round 1:"), std::string::npos);
  EXPECT_NE(text.find("via"), std::string::npos);  // the round-1 detour
}

}  // namespace
}  // namespace shc
