// Parity suite for the batched SoA subcube kernels (subcube_batch.hpp)
// and the tree-shaped canonical reduction (canonical_reduce_tree).
//
// Contract under test: every batch kernel is bit-for-bit equivalent to
// the scalar subcube algebra it replaces — exhaustively over all Q_4
// subcube pairs, and against explicit vertex bitmaps on thousands of
// random pairs/families at n = 16 — and canonical_reduce_tree produces
// output identical to plain canonical_reduce at every thread count
// (pool = nullptr, 1 worker, 4 workers), because the reduction's output
// is a function of the input multiset alone.  These suites are what
// makes SHC_BATCH_SCALAR a pure debug knob: both formulations must pass
// the same reference checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>
#include <cstdint>
#include <random>
#include <vector>

#include "shc/sim/subcube.hpp"
#include "shc/sim/subcube_batch.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {
namespace {

/// Reference expansion of a subcube into an explicit vertex bitmap.
std::bitset<1 << 16> expand(Vertex prefix, Vertex mask) {
  std::bitset<1 << 16> bits;
  Vertex a = 0;
  for (;;) {
    bits.set(static_cast<std::size_t>(prefix | a));
    if (a == mask) break;
    a = (a - mask) & mask;
  }
  return bits;
}

Subcube random_subcube(std::mt19937_64& rng, int n) {
  const Vertex mask = rng() & mask_low(n);
  const Vertex prefix = rng() & mask_low(n) & ~mask;
  return {prefix, mask};
}

/// All 3^4 = 81 subcubes of Q_4 in (mask, prefix) scan order.
std::vector<Subcube> all_q4_subcubes() {
  std::vector<Subcube> out;
  for (Vertex m = 0; m < 16; ++m) {
    for (Vertex p = 0; p < 16; ++p) {
      if ((p & m) == 0) out.push_back({p, m});
    }
  }
  return out;
}

// ---- sibling_scan ------------------------------------------------------

TEST(BatchKernels, SiblingScanMatchesBruteForceOnRandomSlotArrays) {
  // Synthetic open-addressing slot arrays: live keys below the
  // tombstone sentinel, plus empty/tomb slots sprinkled in — exactly
  // what PrefixTable's storage looks like mid-life.
  constexpr Vertex kEmpty = ~Vertex{0};
  constexpr Vertex kTomb = ~Vertex{0} - 1;
  std::mt19937_64 rng(0xb41cull);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t count = rng() % 64;
    std::vector<Vertex> keys(count);
    std::vector<std::uint64_t> vals(count);
    for (std::size_t i = 0; i < count; ++i) {
      switch (rng() % 8) {
        case 0: keys[i] = kEmpty; break;
        case 1: keys[i] = kTomb; break;
        default: keys[i] = rng() & mask_low(16); break;
      }
      vals[i] = (rng() % 2) ? 7 : 9;
    }
    const Vertex p = rng() & mask_low(16);
    const std::uint64_t want = 7;

    // Scalar reference: lowest differing bit among live matches at
    // Hamming distance 1.
    Vertex expect = batch::kNotFound;
    Vertex expect_bit = ~Vertex{0};
    for (std::size_t i = 0; i < count; ++i) {
      if (keys[i] >= kTomb || vals[i] != want) continue;
      const Vertex d = keys[i] ^ p;
      if (d != 0 && (d & (d - 1)) == 0 && d < expect_bit) {
        expect_bit = d;
        expect = keys[i];
      }
    }
    ASSERT_EQ(batch::sibling_scan(keys.data(), vals.data(), count, kTomb, p,
                                  want),
              expect)
        << "trial " << trial;
  }
}

TEST(BatchKernels, SiblingScanPrefersTheLowestDifferingBit) {
  // p = 0b0100 has live siblings along bits 0 and 3; bit 0 must win
  // (the coalesce order SubcubeFrontier::insert's probe loop used).
  const Vertex keys[] = {0b1100, 0b0101, 0b0111};
  const std::uint64_t vals[] = {1, 1, 1};
  EXPECT_EQ(batch::sibling_scan(keys, vals, 3, ~Vertex{0} - 1, 0b0100, 1),
            Vertex{0b0101});
  // Value filter: when the low sibling's coverage differs, the high one
  // is the only legal merge partner.
  const std::uint64_t vals2[] = {1, 2, 1};
  EXPECT_EQ(batch::sibling_scan(keys, vals2, 3, ~Vertex{0} - 1, 0b0100, 1),
            Vertex{0b1100});
  EXPECT_EQ(batch::sibling_scan(keys, vals2, 3, ~Vertex{0} - 1, 0b0100, 5),
            batch::kNotFound);
}

// ---- dyadic partition kernels ------------------------------------------

TEST(BatchKernels, PartitionIdsMatchesDyadicSemanticsExhaustivelyQ4) {
  // Every Q_4 family member against every dimension: free entries land
  // in both halves, pinned entries in exactly the matching one, and
  // input order is preserved (stability is what witness determinism
  // rests on).
  const auto cubes = all_q4_subcubes();
  std::vector<Vertex> prefixes, masks;
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < cubes.size(); ++i) {
    prefixes.push_back(cubes[i].prefix);
    masks.push_back(cubes[i].mask);
    ids.push_back(i);
  }
  for (int d = 0; d < 4; ++d) {
    const Vertex bit = Vertex{1} << d;
    std::vector<std::uint32_t> lo, hi;
    batch::partition_ids(ids.data(), ids.size(), prefixes.data(), masks.data(),
                         bit, lo, hi);
    std::vector<std::uint32_t> want_lo, want_hi;
    for (const std::uint32_t i : ids) {
      if (masks[i] & bit) {
        want_lo.push_back(i);
        want_hi.push_back(i);
      } else if (prefixes[i] & bit) {
        want_hi.push_back(i);
      } else {
        want_lo.push_back(i);
      }
    }
    ASSERT_EQ(lo, want_lo) << "bit " << d;
    ASSERT_EQ(hi, want_hi) << "bit " << d;
  }
}

TEST(BatchKernels, PartitionSubcubesRestrictsBitmapsExactly) {
  // Value-based divide on random families: each output half, expanded
  // to bitmaps, must equal the input's restriction to that halfspace —
  // entry by entry, order preserved.
  std::mt19937_64 rng(0x50a5ull);
  const int n = 12;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t count = 1 + rng() % 32;
    SubcubeSoA in;
    for (std::size_t i = 0; i < count; ++i) {
      const Subcube s = random_subcube(rng, n);
      in.push_back(s.prefix, s.mask);
    }
    const int d = static_cast<int>(rng() % n);
    const Vertex bit = Vertex{1} << d;
    SubcubeSoA lo, hi;
    batch::partition_subcubes(in.prefix.data(), in.mask.data(), count, bit, lo,
                              hi);
    std::bitset<1 << 16> half_lo, half_hi;
    for (Vertex v = 0; v < cube_order(n); ++v) {
      ((v & bit) ? half_hi : half_lo).set(static_cast<std::size_t>(v));
    }
    std::bitset<1 << 16> in_lo, in_hi, got_lo, got_hi;
    for (std::size_t i = 0; i < count; ++i) {
      in_lo |= expand(in.prefix[i], in.mask[i]) & half_lo;
      in_hi |= expand(in.prefix[i], in.mask[i]) & half_hi;
    }
    for (std::size_t i = 0; i < lo.size(); ++i) {
      ASSERT_EQ(lo.prefix[i] & lo.mask[i], 0u);
      ASSERT_EQ(lo.mask[i] & bit, 0u);
      ASSERT_EQ(lo.prefix[i] & bit, 0u);
      got_lo |= expand(lo.prefix[i], lo.mask[i]);
    }
    for (std::size_t i = 0; i < hi.size(); ++i) {
      ASSERT_EQ(hi.prefix[i] & hi.mask[i], 0u);
      ASSERT_EQ(hi.mask[i] & bit, 0u);
      ASSERT_NE(hi.prefix[i] & bit, 0u);
      got_hi |= expand(hi.prefix[i], hi.mask[i]);
    }
    ASSERT_EQ(got_lo, in_lo) << "trial " << trial;
    ASSERT_EQ(got_hi, in_hi) << "trial " << trial;
  }
}

TEST(BatchKernels, PartitionWeightedAgreesWithPlainAndCarriesMult) {
  std::mt19937_64 rng(0x3e11ull);
  const int n = 14;
  SubcubeBatch in;
  for (int i = 0; i < 64; ++i) {
    const Subcube s = random_subcube(rng, n);
    in.push_back(s.prefix, s.mask, 1 + rng() % 100);
  }
  for (int d = 0; d < n; ++d) {
    const Vertex bit = Vertex{1} << d;
    SubcubeBatch lo, hi;
    batch::partition_weighted(in, bit, lo, hi);
    SubcubeSoA plo, phi;
    batch::partition_subcubes(in.prefix.data(), in.mask.data(), in.size(), bit,
                              plo, phi);
    ASSERT_EQ(lo.prefix, plo.prefix);
    ASSERT_EQ(lo.mask, plo.mask);
    ASSERT_EQ(hi.prefix, phi.prefix);
    ASSERT_EQ(hi.mask, phi.mask);
    // Multiplicities ride along with their entry (splits duplicate).
    std::vector<std::uint64_t> want_lo, want_hi;
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (in.mask[i] & bit) {
        want_lo.push_back(in.mult[i]);
        want_hi.push_back(in.mult[i]);
      } else if (in.prefix[i] & bit) {
        want_hi.push_back(in.mult[i]);
      } else {
        want_lo.push_back(in.mult[i]);
      }
    }
    ASSERT_EQ(lo.mult, want_lo);
    ASSERT_EQ(hi.mult, want_hi);
  }
}

// ---- reductions --------------------------------------------------------

TEST(BatchKernels, MaskScanMatchesReferenceReductions) {
  std::mt19937_64 rng(0x5ca9ull);
  const int n = 16;
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t count = rng() % 48;
    std::vector<Vertex> prefixes, masks;
    std::vector<std::uint32_t> ids;
    for (std::size_t i = 0; i < count + 8; ++i) {
      const Subcube s = random_subcube(rng, n);
      prefixes.push_back(s.prefix);
      masks.push_back(s.mask);
    }
    for (std::size_t i = 0; i < count; ++i) {
      ids.push_back(static_cast<std::uint32_t>(rng() % prefixes.size()));
    }
    batch::MaskScan want;
    for (const std::uint32_t i : ids) {
      want.mask_or |= masks[i];
      want.mask_and &= masks[i];
      want.pref_or |= prefixes[i];
      want.pref_and &= prefixes[i];
    }
    const batch::MaskScan got =
        batch::scan_ids(ids.data(), ids.size(), prefixes.data(), masks.data());
    ASSERT_EQ(got.mask_or, want.mask_or);
    ASSERT_EQ(got.mask_and, want.mask_and);
    ASSERT_EQ(got.pref_or, want.pref_or);
    ASSERT_EQ(got.pref_and, want.pref_and);
    const batch::MaskScan all =
        batch::scan_all(prefixes.data(), masks.data(), prefixes.size());
    batch::MaskScan all_want;
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      all_want.mask_or |= masks[i];
      all_want.mask_and &= masks[i];
      all_want.pref_or |= prefixes[i];
      all_want.pref_and &= prefixes[i];
    }
    ASSERT_EQ(all.mask_or, all_want.mask_or);
    ASSERT_EQ(all.mask_and, all_want.mask_and);
    ASSERT_EQ(all.pref_or, all_want.pref_or);
    ASSERT_EQ(all.pref_and, all_want.pref_and);
  }
}

// ---- filters -----------------------------------------------------------

TEST(BatchKernels, IntersectAllMatchesScalarAlgebraExhaustivelyQ4) {
  // Every Q_4 query against the family of all Q_4 subcubes: the batch
  // intersection must agree with subcubes_overlap / subcube_intersection
  // pair by pair, in family order.
  const auto cubes = all_q4_subcubes();
  SubcubeSoA family;
  for (const Subcube& s : cubes) family.push_back(s.prefix, s.mask);
  for (const Subcube& q : cubes) {
    SubcubeSoA out;
    const std::size_t appended =
        batch::intersect_all(family.prefix.data(), family.mask.data(),
                             family.size(), q.prefix, q.mask, out);
    ASSERT_EQ(appended, out.size());
    std::size_t at = 0;
    for (const Subcube& s : cubes) {
      const auto inter = subcube_intersection(s, q);
      ASSERT_EQ(subcubes_overlap(s, q), inter.has_value());
      if (!inter) continue;
      ASSERT_LT(at, out.size());
      EXPECT_EQ(out.prefix[at], inter->prefix);
      EXPECT_EQ(out.mask[at], inter->mask);
      ++at;
    }
    ASSERT_EQ(at, out.size());
  }
}

TEST(BatchKernels, OverlapFilterMatchesPredicateAndWalksStridedLayouts) {
  const auto cubes = all_q4_subcubes();
  // Interleaved (AoS-style) layout: prefix at even slots, mask at odd.
  std::vector<Vertex> interleaved;
  for (const Subcube& s : cubes) {
    interleaved.push_back(s.prefix);
    interleaved.push_back(s.mask);
  }
  for (const Subcube& q : cubes) {
    SubcubeSoA from_soa, from_aos;
    SubcubeSoA family;
    for (const Subcube& s : cubes) family.push_back(s.prefix, s.mask);
    batch::overlap_filter(family.prefix.data(), family.mask.data(),
                          family.size(), 1, q.prefix, q.mask, from_soa);
    batch::overlap_filter(interleaved.data(), interleaved.data() + 1,
                          cubes.size(), 2, q.prefix, q.mask, from_aos);
    ASSERT_EQ(from_soa.prefix, from_aos.prefix);
    ASSERT_EQ(from_soa.mask, from_aos.mask);
    std::size_t at = 0;
    for (const Subcube& s : cubes) {
      if (!subcubes_overlap(s, q)) continue;
      ASSERT_LT(at, from_soa.size());
      EXPECT_EQ(from_soa.prefix[at], s.prefix);
      EXPECT_EQ(from_soa.mask[at], s.mask);
      ++at;
    }
    ASSERT_EQ(at, from_soa.size());
  }
}

TEST(BatchKernels, RandomPairsAtN16MatchExplicitBitmaps) {
  // >= 2000 random pairs cross-checked against the ground truth no
  // algebra can argue with: explicit 2^16-bit vertex sets.
  std::mt19937_64 rng(0xf00dull);
  for (int trial = 0; trial < 2500; ++trial) {
    const Subcube a = random_subcube(rng, 16);
    const Subcube b = random_subcube(rng, 16);
    const auto bits = expand(a.prefix, a.mask) & expand(b.prefix, b.mask);
    SubcubeSoA out;
    const std::size_t hits = batch::intersect_all(&a.prefix, &a.mask, 1,
                                                  b.prefix, b.mask, out);
    ASSERT_EQ(hits != 0, bits.any()) << "trial " << trial;
    if (hits != 0) {
      ASSERT_EQ(expand(out.prefix[0], out.mask[0]), bits) << "trial " << trial;
    }
    SubcubeSoA kept;
    batch::overlap_filter(&a.prefix, &a.mask, 1, 1, b.prefix, b.mask, kept);
    ASSERT_EQ(kept.size() == 1, bits.any());
  }
}

// ---- SubtractSweep -----------------------------------------------------

/// Greedily thins a random family to a pairwise-disjoint one.
std::vector<Subcube> random_disjoint_family(std::mt19937_64& rng, int n,
                                            std::size_t want) {
  std::vector<Subcube> fam;
  for (int tries = 0; tries < 400 && fam.size() < want; ++tries) {
    const Subcube s = random_subcube(rng, n);
    const bool clashes = std::any_of(fam.begin(), fam.end(), [&](const Subcube& f) {
      return subcubes_overlap(s, f);
    });
    if (!clashes) fam.push_back(s);
  }
  return fam;
}

TEST(BatchKernels, SubtractSweepMatchesBitmapDifference) {
  std::mt19937_64 rng(0x5ab8ull);
  batch::SubtractSweep sweep;  // reused across trials (pooled scratch)
  const int n = 14;
  for (int trial = 0; trial < 300; ++trial) {
    const Subcube region = random_subcube(rng, n);
    const auto fam = random_disjoint_family(rng, n, 1 + rng() % 12);
    SubcubeSoA family = sweep.acquire();
    std::bitset<1 << 16> covered;
    for (const Subcube& f : fam) {
      if (!subcubes_overlap(f, region)) continue;
      family.push_back(f.prefix, f.mask);
      covered |= expand(f.prefix, f.mask);
    }
    std::uint64_t budget = std::uint64_t{1} << 32;
    std::vector<Subcube> pieces;
    ASSERT_TRUE(sweep.run(region.prefix, region.mask, std::move(family), budget,
                          [&](Vertex p, Vertex m) { pieces.push_back({p, m}); }));
    std::bitset<1 << 16> got;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      ASSERT_EQ(pieces[i].prefix & pieces[i].mask, 0u);
      for (std::size_t j = i + 1; j < pieces.size(); ++j) {
        ASSERT_FALSE(subcubes_overlap(pieces[i], pieces[j]))
            << "uncovered pieces must be pairwise disjoint";
      }
      got |= expand(pieces[i].prefix, pieces[i].mask);
    }
    ASSERT_EQ(got, expand(region.prefix, region.mask) & ~covered)
        << "trial " << trial;
  }
}

TEST(BatchKernels, SubtractSweepFailsExplicitlyOnExhaustedBudget) {
  batch::SubtractSweep sweep;
  SubcubeSoA family = sweep.acquire();
  family.push_back(0, 0);  // the vertex 0 inside Q_8
  std::uint64_t budget = 1;  // root alone costs family_size + 1 = 2
  std::size_t pushes = 0;
  EXPECT_FALSE(sweep.run(0, mask_low(8), std::move(family), budget,
                         [&](Vertex, Vertex) { ++pushes; }));
  EXPECT_EQ(budget, 1u) << "a refused node must not consume budget";
  EXPECT_EQ(pushes, 0u);
}

// ---- canonical_reduce_tree ---------------------------------------------

std::vector<WeightedSubcube> random_weighted_entries(std::mt19937_64& rng,
                                                     int n, std::size_t count) {
  std::vector<WeightedSubcube> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Subcube s = random_subcube(rng, n);
    entries.push_back({s.prefix, s.mask, 1 + rng() % 3});
  }
  return entries;
}

TEST(CanonicalReduceTree, SmallInputsFallThroughToPlainReduce) {
  std::mt19937_64 rng(0x7ee1ull);
  const auto entries = random_weighted_entries(rng, 10, 500);
  const auto plain = canonical_reduce(entries, 10);
  const auto tree = canonical_reduce_tree(entries, 10, std::uint64_t{1} << 26,
                                          nullptr);
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(*plain, *tree);
}

TEST(CanonicalReduceTree, MatchesPlainReduceAtEveryThreadCount) {
  // > 4096 entries with a multi-worker pool takes the parallel
  // top-split path; the output must be bit-for-bit the serial
  // reduce's, with and without a pool — the determinism contract the
  // parallel knowledge-class merge rides on.
  std::mt19937_64 rng(0x9d2full);
  const auto entries = random_weighted_entries(rng, 12, 20000);
  const std::uint64_t budget = std::uint64_t{1} << 28;
  const auto plain = canonical_reduce(entries, 12, budget);
  ASSERT_TRUE(plain.has_value());
  WorkerPool one(1), four(4);
  for (WorkerPool* pool : {static_cast<WorkerPool*>(nullptr), &one, &four}) {
    const auto tree = canonical_reduce_tree(entries, 12, budget, pool);
    ASSERT_TRUE(tree.has_value());
    ASSERT_EQ(*plain, *tree)
        << "pool workers: " << (pool ? pool->workers() : 0);
  }
}

TEST(CanonicalReduceTree, DyadicTilingCollapsesToTheFullCube) {
  // All 2^13 singletons of Q_13 (shuffled): the canonical form is the
  // full cube at multiplicity one, through the tree path (input size
  // exceeds the 4096-entry chunk).
  const int n = 13;
  std::vector<WeightedSubcube> entries;
  for (Vertex v = 0; v < cube_order(n); ++v) entries.push_back({v, 0, 1});
  std::mt19937_64 rng(0xabcdull);
  std::shuffle(entries.begin(), entries.end(), rng);
  WorkerPool four(4);
  const auto tree =
      canonical_reduce_tree(std::move(entries), n, std::uint64_t{1} << 26, &four);
  ASSERT_TRUE(tree.has_value());
  ASSERT_EQ(tree->size(), 1u);
  EXPECT_EQ((*tree)[0], (WeightedSubcube{0, mask_low(n), 1}));
}

TEST(CanonicalReduceTree, RefusesExplicitlyOnAnExhaustedBudget) {
  std::mt19937_64 rng(0x111ull);
  const auto entries = random_weighted_entries(rng, 12, 8192);
  // A budget the recursion cannot fit in: the tree must refuse the
  // same way the serial reduce does — serially and in parallel — not
  // thrash or return partial work.
  WorkerPool four(4);
  for (WorkerPool* pool : {static_cast<WorkerPool*>(nullptr), &four}) {
    EXPECT_FALSE(canonical_reduce_tree(entries, 12, 1, pool).has_value())
        << "pool workers: " << (pool ? pool->workers() : 0);
  }
}

TEST(CanonicalReduceTree, RefusalsMatchTheSerialReduceNearTheBudgetEdge) {
  // The refusal predicate is "total processed entries > budget", a pure
  // function of the input multiset.  Sweep budgets around the edge and
  // require the parallel tree to accept and refuse on exactly the same
  // values as the serial reduce.
  std::mt19937_64 rng(0x5eedull);
  const auto entries = random_weighted_entries(rng, 12, 8192);
  WorkerPool four(4);
  // Locate the exact serial cost by bisection on the accept predicate.
  std::uint64_t lo = 1, hi = std::uint64_t{1} << 26;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (canonical_reduce(entries, 12, mid).has_value()) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const std::uint64_t cost = lo;
  for (const std::uint64_t budget :
       {cost - 2, cost - 1, cost, cost + 1, cost + 7}) {
    const auto plain = canonical_reduce(entries, 12, budget);
    const auto tree = canonical_reduce_tree(entries, 12, budget, &four);
    ASSERT_EQ(plain.has_value(), tree.has_value()) << "budget: " << budget;
    if (plain.has_value()) {
      EXPECT_EQ(*plain, *tree);
    }
  }
}

}  // namespace
}  // namespace shc
