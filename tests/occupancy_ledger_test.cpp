// Dyadic occupancy ledger unit suite — the sub-quadratic disjointness
// engine behind the symbolic validators' collision checks.
//
// Contract under test: check() reports kDoubleClaim exactly when two
// claims of the same family share a vertex (cross-checked against the
// brute-force pairwise sweep on random families), the witness is exact
// (the reported groups genuinely overlap and the reported piece is
// their intersection), random tilings of Q_n are accepted, families are
// independent shards, and every outcome — verdict, witness, and budget
// diagnostics — is bit-for-bit identical for any thread count.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "shc/sim/occupancy_ledger.hpp"
#include "shc/sim/subcube.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {
namespace {

Subcube random_subcube(std::mt19937_64& rng, int n) {
  const Vertex mask = rng() & mask_low(n);
  const Vertex prefix = rng() & mask_low(n) & ~mask;
  return {prefix, mask};
}

/// Brute force: does any pair of family members overlap?
bool any_pair_overlaps(const std::vector<Subcube>& family) {
  for (std::size_t a = 0; a < family.size(); ++a) {
    for (std::size_t b = a + 1; b < family.size(); ++b) {
      if (subcubes_overlap(family[a], family[b])) return true;
    }
  }
  return false;
}

TEST(OccupancyLedger, HandcraftedDoubleClaimWitnessIsExact) {
  OccupancyLedger ledger(6);
  // Claims 0 and 2 overlap on the subcube {prefix 0b100, free bit 1}.
  ledger.claim(3, /*prefix=*/0b000, /*mask=*/0b101, /*group=*/7);
  ledger.claim(3, /*prefix=*/0b010, /*mask=*/0b001, /*group=*/9);
  ledger.claim(3, /*prefix=*/0b100, /*mask=*/0b011, /*group=*/11);
  const OccupancyOutcome out = ledger.check(nullptr, 512);
  ASSERT_EQ(out.status, OccupancyStatus::kDoubleClaim);
  EXPECT_EQ(out.family, 3);
  EXPECT_EQ(out.group_a, 7u);
  EXPECT_EQ(out.group_b, 11u);
  const Subcube expect =
      *subcube_intersection({0b000, 0b101}, {0b100, 0b011});
  EXPECT_EQ(out.piece, expect);
}

TEST(OccupancyLedger, IdenticalClaimIsADoubleClaim) {
  OccupancyLedger ledger(10);
  ledger.claim(1, 0b1100, 0b0011, 4);
  ledger.claim(1, 0b1100, 0b0011, 5);
  const OccupancyOutcome out = ledger.check(nullptr, 512);
  ASSERT_EQ(out.status, OccupancyStatus::kDoubleClaim);
  EXPECT_EQ(out.group_a, 4u);
  EXPECT_EQ(out.group_b, 5u);
  EXPECT_EQ(out.piece, (Subcube{0b1100, 0b0011}));
}

TEST(OccupancyLedger, FamiliesAreIndependentShards) {
  // The same subcube claimed in two different families never collides.
  OccupancyLedger ledger(8);
  ledger.claim(1, 0, mask_low(8), 0);
  ledger.claim(2, 0, mask_low(8), 1);
  ledger.claim(9, 0, mask_low(8), 2);
  EXPECT_EQ(ledger.check(nullptr, 512).status, OccupancyStatus::kDisjoint);
  // ...and the smallest family id wins when several have collisions.
  ledger.claim(2, 0, 0, 3);
  ledger.claim(9, 0, 0, 4);
  const OccupancyOutcome out = ledger.check(nullptr, 512);
  ASSERT_EQ(out.status, OccupancyStatus::kDoubleClaim);
  EXPECT_EQ(out.family, 2);
}

TEST(OccupancyLedger, RandomTilingsAreAccepted) {
  // Random dyadic partitions of Q_n tile the cube: pairwise disjoint by
  // construction, so the ledger must accept every one of them.
  std::mt19937_64 rng(0xACCE55);
  for (const int n : {6, 10, 14, 20}) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<Subcube> pieces{{0, mask_low(n)}};
      for (int splits = 0; splits < 200; ++splits) {
        const std::size_t at = rng() % pieces.size();
        if (pieces[at].mask == 0) continue;
        const Vertex m = pieces[at].mask;
        // Pick a random free bit of the piece and split on it.
        int bit = -1;
        for (int trial = 0; trial < 64; ++trial) {
          const int c = static_cast<int>(rng() % static_cast<unsigned>(n));
          if (m & (Vertex{1} << c)) {
            bit = c;
            break;
          }
        }
        if (bit < 0) continue;
        const Vertex b = Vertex{1} << bit;
        Subcube lo = pieces[at];
        lo.mask &= ~b;
        Subcube hi = lo;
        hi.prefix |= b;
        pieces[at] = lo;
        pieces.push_back(hi);
      }
      OccupancyLedger ledger(n);
      for (std::size_t i = 0; i < pieces.size(); ++i) {
        ledger.claim(1, pieces[i].prefix, pieces[i].mask,
                     static_cast<std::uint32_t>(i));
      }
      EXPECT_EQ(ledger.check(nullptr, 512).status, OccupancyStatus::kDisjoint)
          << "n=" << n << " rep=" << rep;
      // Duplicating any one piece must flip the verdict.
      const std::size_t dup = rng() % pieces.size();
      ledger.claim(1, pieces[dup].prefix, pieces[dup].mask, 777u);
      const OccupancyOutcome out = ledger.check(nullptr, 512);
      ASSERT_EQ(out.status, OccupancyStatus::kDoubleClaim);
      EXPECT_EQ(out.group_b, 777u);
    }
  }
}

TEST(OccupancyLedger, RandomFamiliesAgreeWithBruteForce) {
  std::mt19937_64 rng(0x5eed);
  for (int rep = 0; rep < 300; ++rep) {
    const int n = 12;
    const std::size_t count = 2 + rng() % 24;
    std::vector<Subcube> family;
    for (std::size_t i = 0; i < count; ++i) {
      family.push_back(random_subcube(rng, n));
    }
    OccupancyLedger ledger(n);
    for (std::size_t i = 0; i < family.size(); ++i) {
      ledger.claim(1, family[i].prefix, family[i].mask,
                   static_cast<std::uint32_t>(i));
    }
    const OccupancyOutcome out = ledger.check(nullptr, 512);
    const bool expect_overlap = any_pair_overlaps(family);
    ASSERT_EQ(out.status == OccupancyStatus::kDoubleClaim, expect_overlap)
        << "rep=" << rep;
    if (expect_overlap) {
      // The witness must name two genuinely overlapping claims and
      // their exact intersection.
      ASSERT_LT(out.group_a, out.group_b);
      ASSERT_LT(out.group_b, family.size());
      const auto inter =
          subcube_intersection(family[out.group_a], family[out.group_b]);
      ASSERT_TRUE(inter.has_value());
      EXPECT_EQ(out.piece, *inter);
    }
  }
}

TEST(OccupancyLedger, OutcomeIsThreadCountIndependent) {
  // Verdict, witness, and budget diagnostics must be bit-for-bit the
  // serial ones for any pool — clean, colliding, and budget-starved.
  std::mt19937_64 rng(0xDEC0DE);
  WorkerPool pool(4);
  for (int rep = 0; rep < 50; ++rep) {
    const int n = 16;
    OccupancyLedger ledger(n);
    const std::size_t count = 2 + rng() % 64;
    for (std::size_t i = 0; i < count; ++i) {
      const Subcube s = random_subcube(rng, n);
      ledger.claim(1 + static_cast<int>(rng() % 3), s.prefix, s.mask,
                   static_cast<std::uint32_t>(i));
    }
    for (const std::uint64_t per_claim : {std::uint64_t{512}, std::uint64_t{0}}) {
      // Base 0 + per-claim 0 starves every bucket: the budget outcome
      // must be identical too (same family, same exhausted budget).
      for (const std::uint64_t base : {std::uint64_t{4096}, std::uint64_t{0}}) {
        const OccupancyOutcome serial = ledger.check(nullptr, per_claim, base);
        const OccupancyOutcome sharded = ledger.check(&pool, per_claim, base);
        ASSERT_EQ(serial.status, sharded.status)
            << "rep=" << rep << " per_claim=" << per_claim << " base=" << base;
        EXPECT_EQ(serial.family, sharded.family);
        EXPECT_EQ(serial.group_a, sharded.group_a);
        EXPECT_EQ(serial.group_b, sharded.group_b);
        EXPECT_EQ(serial.piece, sharded.piece);
        EXPECT_EQ(serial.budget, sharded.budget);
        if (serial.status == OccupancyStatus::kDisjoint) {
          EXPECT_EQ(serial.nodes, sharded.nodes);
        }
      }
    }
  }
}

TEST(OccupancyLedger, BudgetExhaustionIsExplicitAndDeterministic) {
  OccupancyLedger ledger(20);
  // Two overlapping claims, but a zero budget: the walk must refuse
  // rather than answer, and report the exhausted budget for the
  // diagnostics the validators embed in their error strings.
  ledger.claim(5, 0, mask_low(20), 0);
  ledger.claim(5, 0, 0, 1);
  const OccupancyOutcome out =
      ledger.check(nullptr, /*budget_per_claim=*/0, /*bucket_budget_base=*/0);
  ASSERT_EQ(out.status, OccupancyStatus::kBudgetExceeded);
  EXPECT_EQ(out.family, 5);
  EXPECT_EQ(out.budget, 0u);
  // With any sane budget the same ledger answers.
  EXPECT_EQ(ledger.check(nullptr, 512).status, OccupancyStatus::kDoubleClaim);
}

TEST(OccupancyLedger, ClearRecyclesAcrossRounds) {
  OccupancyLedger ledger(8);
  ledger.claim(1, 0, 0, 0);
  ledger.claim(1, 0, 0, 1);
  ASSERT_EQ(ledger.check(nullptr, 512).status, OccupancyStatus::kDoubleClaim);
  EXPECT_EQ(ledger.num_claims(), 2u);
  ledger.clear();
  EXPECT_EQ(ledger.num_claims(), 0u);
  ledger.claim(1, 0, 0, 0);
  EXPECT_EQ(ledger.check(nullptr, 512).status, OccupancyStatus::kDisjoint);
}

}  // namespace
}  // namespace shc
