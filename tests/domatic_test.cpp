// Tests for the exact Condition-A maximization (domatic number of Q_m).
#include <gtest/gtest.h>

#include <stdexcept>

#include "shc/labeling/domatic.hpp"

namespace shc {
namespace {

TEST(Domatic, FindReturnsConditionALabeling) {
  for (int m = 1; m <= 4; ++m) {
    for (Label lambda = 1; lambda <= static_cast<Label>(m) + 1; ++lambda) {
      const auto found = find_condition_a_labeling(m, lambda);
      if (found.has_value()) {
        EXPECT_EQ(found->m(), m);
        EXPECT_EQ(found->num_labels(), lambda);
        EXPECT_TRUE(found->satisfies_condition_a());
      }
    }
  }
}

TEST(Domatic, BeyondUpperBoundIsImpossible) {
  // lambda can never exceed the closed neighborhood size m + 1.
  EXPECT_FALSE(find_condition_a_labeling(2, 4).has_value());
  EXPECT_FALSE(find_condition_a_labeling(3, 5).has_value());
}

// Known exact values, certified by exhaustive search:
//   lambda_1 = 2 (two adjacent vertices, distinct labels)
//   lambda_2 = 2 (the paper's floor(m/2)+1 bound is tight here)
//   lambda_3 = 4 (Hamming / Example 1)
//   lambda_4 = 4
//   lambda_5 = 4 (domination number of Q_5 is 7; 5 classes cannot fit 32)
struct DomaticCase {
  int m;
  Label lambda;
};

class DomaticExact : public ::testing::TestWithParam<DomaticCase> {};

TEST_P(DomaticExact, MatchesKnownValue) {
  const auto [m, lambda] = GetParam();
  const DomaticResult r = max_condition_a_labels(m);
  EXPECT_TRUE(r.proven_optimal) << "budget exhausted for m=" << m;
  EXPECT_EQ(r.lambda, lambda) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(KnownValues, DomaticExact,
                         ::testing::Values(DomaticCase{1, 2}, DomaticCase{2, 2},
                                           DomaticCase{3, 4}, DomaticCase{4, 4},
                                           DomaticCase{5, 4}),
                         [](const auto& info) {
                           // Piecewise append dodges GCC 12's bogus
                           // -Wrestrict on operator+(const char*,
                           // string&&) under -Werror.
                           std::string name = "m";
                           name += std::to_string(info.param.m);
                           return name;
                         });

TEST(Domatic, ExactNeverBelowLemma2) {
  for (int m = 1; m <= 5; ++m) {
    const DomaticResult r = max_condition_a_labels(m);
    EXPECT_GE(r.lambda, lemma2_num_labels(m)) << "m=" << m;
  }
}

TEST(Domatic, PaperLowerBoundHolds) {
  // Lemma 2: lambda_m >= floor(m/2) + 1.
  for (int m = 1; m <= 5; ++m) {
    const DomaticResult r = max_condition_a_labels(m);
    EXPECT_GE(r.lambda, static_cast<Label>(m / 2 + 1)) << "m=" << m;
  }
}

TEST(Domatic, TinyBudgetReportsUnproven) {
  // With an absurdly small node budget the search cannot refute
  // anything; the result must not claim optimality (unless it found the
  // upper bound immediately).
  const DomaticResult r = max_condition_a_labels(5, 10);
  if (r.lambda < 6) {
    EXPECT_FALSE(r.proven_optimal);
  }
}

TEST(DomaticGuards, InvalidInputsThrowInReleaseBuildsToo) {
  // Search entry points validated with bare asserts before (gone under
  // NDEBUG); they now throw for out-of-range m / num_labels.
  EXPECT_THROW((void)find_condition_a_labeling(0, 2), std::invalid_argument);
  EXPECT_THROW((void)find_condition_a_labeling(7, 2), std::invalid_argument);
  EXPECT_THROW((void)find_condition_a_labeling(3, 0), std::invalid_argument);
  EXPECT_THROW((void)find_condition_a_labeling(3, 9), std::invalid_argument);
  EXPECT_THROW((void)max_condition_a_labels(0), std::invalid_argument);
  EXPECT_THROW((void)max_condition_a_labels(7), std::invalid_argument);
}

}  // namespace
}  // namespace shc
