// shc_sweep — grid sweep of streaming-certified broadcast scenarios.
//
// Runs a grid of (n, k/cuts, model-variant) scenarios through the
// streaming validation pipeline (emit_broadcast_rounds producing into a
// StreamingBroadcastValidator — no schedule is ever materialized), plus
// parallel congestion analysis for the materializable sizes, and emits
// one JSON record per scenario.  Scenarios run in parallel across a
// worker pool; output order is deterministic (grid order).
//
// Usage:
//   shc_sweep [--threads T] [--out PATH] [--max-n N] [--big N] [--symbolic N]
//             [--gossip N]
//
//   --threads T   scenario workers (default: hardware concurrency)
//   --out PATH    write JSON lines to PATH instead of stdout
//   --max-n N     cap the grid's n (default 16)
//   --big N       append one streaming-only k=2 scenario at n=N
//                 (e.g. --big 30; needs RAM for the 2^N frontier)
//   --symbolic N  append one symbolic-engine k=2 scenario at n=N
//                 (n <= 63; memory polynomial in n — no 2^N anything)
//   --gossip N    append one symbolic gather-broadcast gossip scenario
//                 at n=N (n <= 63; all-to-all exchange certified past
//                 the exact validator's 2^13 wall)
//   --trace PATH  install a flight-recorder session for the whole sweep
//                 ("x.json" -> Chrome trace only, "x.jsonl" -> per-round
//                 JSONL only, else both PATH.trace.json and
//                 PATH.rounds.jsonl).  Forces --threads 1 so the traced
//                 scenarios do not interleave.
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "shc/obs/recorder.hpp"
#include "shc/shc.hpp"

namespace {

using namespace shc;

struct Scenario {
  int n = 0;
  int k = 2;
  bool vertex_disjoint = false;
  bool analyze_congestion_stats = false;  // materialize + edge-load stats
  bool symbolic = false;                  // subcube engine instead of streaming
  bool gossip = false;                    // symbolic gather-broadcast gossip
  int inner_threads = 1;                  // workers inside the validator
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// One symbolic-engine row: same JSON shape plus the group-compression
/// stats that are the whole point of the subcube representation.  The
/// spec policy is shared with the BM_SymbolicCertify bench rows
/// (symbolic_showcase_spec), so both recorded artifacts measure the
/// same graphs.
std::string run_symbolic_scenario(const Scenario& sc) {
  const auto spec = symbolic_showcase_spec(sc.n, sc.k);
  ValidationOptions opt;
  opt.k = spec.k();
  opt.require_vertex_disjoint = sc.vertex_disjoint;

  const auto start = std::chrono::steady_clock::now();
  const SymbolicCertification cert = certify_broadcast_symbolic(spec, 0, opt);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::ostringstream os;
  os << "{\"engine\":\"symbolic\",\"n\":" << sc.n << ",\"k\":" << spec.k()
     << ",\"cuts\":[";
  for (std::size_t i = 0; i < spec.cuts().size(); ++i) {
    os << (i ? "," : "") << spec.cuts()[i];
  }
  os << "],\"ok\":" << (cert.report.ok ? "true" : "false")
     << ",\"minimum_time\":" << (cert.report.minimum_time ? "true" : "false")
     << ",\"rounds\":" << cert.report.rounds
     << ",\"calls\":" << cert.report.total_calls
     << ",\"max_call_length\":" << cert.report.max_call_length
     << ",\"groups\":" << cert.checks.groups
     << ",\"peak_frontier_subcubes\":" << cert.checks.peak_frontier_subcubes
     << ",\"peak_round_groups\":" << cert.checks.peak_round_groups
     << ",\"collision_candidates\":" << cert.checks.collision_candidates
     << ",\"occupancy_claims\":" << cert.checks.occupancy_claims
     << ",\"sampled_calls\":" << cert.checks.sampled_calls
     << ",\"rounds_checked\":" << cert.checks.rounds_checked
     << ",\"union_cache_hits\":" << cert.checks.union_cache_hits
     << ",\"union_cache_misses\":" << cert.checks.union_cache_misses
     << ",\"reduce_tree_tasks\":" << cert.checks.reduce_tree_tasks
     << ",\"seconds\":" << seconds;
  if (!cert.report.ok) {
    os << ",\"error\":\"" << json_escape(cert.report.error) << '"';
  }
  os << '}';
  return os.str();
}

/// One symbolic-gossip row: gather-broadcast all-to-all exchange on the
/// shared showcase spec, certified entirely on the class/knowledge
/// algebra.  The row records the knowledge-partition sizes — the
/// compressed stand-in for the exact validator's N^2 bits.
std::string run_gossip_scenario(const Scenario& sc) {
  const auto spec = symbolic_showcase_spec(sc.n, sc.k);

  const auto start = std::chrono::steady_clock::now();
  const SymbolicGossipCertification cert = certify_gossip_symbolic(spec, 0);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::ostringstream os;
  os << "{\"engine\":\"symbolic-gossip\",\"n\":" << sc.n << ",\"k\":" << spec.k()
     << ",\"cuts\":[";
  for (std::size_t i = 0; i < spec.cuts().size(); ++i) {
    os << (i ? "," : "") << spec.cuts()[i];
  }
  os << "],\"ok\":" << (cert.report.ok ? "true" : "false")
     << ",\"complete\":" << (cert.report.complete ? "true" : "false")
     << ",\"rounds\":" << cert.report.rounds
     << ",\"exchanges\":" << cert.report.total_exchanges
     << ",\"max_call_length\":" << cert.report.max_call_length
     << ",\"groups\":" << cert.checks.groups
     << ",\"peak_classes\":" << cert.checks.classes.peak_classes
     << ",\"peak_knowledge_subcubes\":"
     << cert.checks.classes.peak_knowledge_subcubes
     << ",\"unions\":" << cert.checks.classes.unions_computed
     << ",\"collision_candidates\":" << cert.checks.collision_candidates
     << ",\"occupancy_claims\":" << cert.checks.occupancy_claims
     << ",\"sampled_calls\":" << cert.checks.sampled_calls
     << ",\"rounds_checked\":" << cert.checks.rounds_checked
     << ",\"union_cache_hits\":" << cert.checks.classes.union_cache_hits
     << ",\"union_cache_misses\":" << cert.checks.classes.union_cache_misses
     << ",\"reduce_tree_tasks\":" << cert.checks.classes.reduce_tree_tasks
     << ",\"seconds\":" << seconds;
  if (!cert.report.ok) {
    os << ",\"error\":\"" << json_escape(cert.report.error) << '"';
  }
  os << '}';
  return os.str();
}

std::string run_scenario(const Scenario& sc) {
  if (sc.gossip) return run_gossip_scenario(sc);
  if (sc.symbolic) return run_symbolic_scenario(sc);
  const auto spec = design_sparse_hypercube(sc.n, sc.k);
  ValidationOptions opt;
  opt.k = spec.k();
  opt.require_vertex_disjoint = sc.vertex_disjoint;

  const auto start = std::chrono::steady_clock::now();
  const StreamingCertification cert =
      certify_broadcast_streaming(spec, 0, opt, sc.inner_threads);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::ostringstream os;
  os << "{\"n\":" << sc.n << ",\"k\":" << spec.k() << ",\"cuts\":[";
  for (std::size_t i = 0; i < spec.cuts().size(); ++i) {
    os << (i ? "," : "") << spec.cuts()[i];
  }
  os << "],\"model\":\""
     << (sc.vertex_disjoint ? "vertex-disjoint" : "edge-disjoint") << '"'
     << ",\"ok\":" << (cert.report.ok ? "true" : "false")
     << ",\"minimum_time\":" << (cert.report.minimum_time ? "true" : "false")
     << ",\"rounds\":" << cert.report.rounds
     << ",\"calls\":" << cert.calls
     << ",\"max_call_length\":" << cert.report.max_call_length
     << ",\"peak_round_arena_bytes\":" << cert.peak_round_arena_bytes
     << ",\"largest_round_arena_bytes\":" << cert.largest_round_arena_bytes
     << ",\"whole_schedule_arena_bytes\":" << cert.whole_schedule_arena_bytes
     << ",\"seconds\":" << seconds;
  if (!cert.report.ok) {
    os << ",\"error\":\"" << json_escape(cert.report.error) << '"';
  }

  if (sc.analyze_congestion_stats) {
    const auto schedule = make_broadcast_schedule(spec, 0);
    const CongestionStats stats =
        analyze_congestion_parallel(schedule, sc.inner_threads);
    os << ",\"distinct_edges_used\":" << stats.distinct_edges_used
       << ",\"total_edge_hops\":" << stats.total_edge_hops
       << ",\"max_edge_load_total\":" << stats.max_edge_load_total
       << ",\"required_edge_capacity\":" << stats.max_edge_load_per_round
       << ",\"mean_edge_load\":" << stats.mean_edge_load;
  }
  os << '}';
  return os.str();
}

/// Strict parse: the whole argument must be a number, or we exit with
/// usage — a silently-defaulted typo would drop scenarios from the
/// sweep while still exiting 0.
int parse_int_or_die(const char* s) {
  int v = 0;
  const char* end = s + std::strlen(s);
  const auto [ptr, ec] = std::from_chars(s, end, v);
  if (ec != std::errc{} || ptr != end) {
    std::cerr << "shc_sweep: not a number: " << s << "\n";
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  int max_n = 16;
  int big_n = 0;
  int symbolic_n = 0;
  int gossip_n = 0;
  std::string out_path;
  std::string trace_base;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--threads" && a + 1 < argc) threads = parse_int_or_die(argv[++a]);
    else if (arg == "--out" && a + 1 < argc) out_path = argv[++a];
    else if (arg == "--max-n" && a + 1 < argc) max_n = parse_int_or_die(argv[++a]);
    else if (arg == "--big" && a + 1 < argc) big_n = parse_int_or_die(argv[++a]);
    else if (arg == "--symbolic" && a + 1 < argc) {
      symbolic_n = parse_int_or_die(argv[++a]);
    } else if (arg == "--gossip" && a + 1 < argc) {
      gossip_n = parse_int_or_die(argv[++a]);
    } else if (arg == "--trace" && a + 1 < argc) {
      trace_base = argv[++a];
    } else {
      std::cerr << "usage: shc_sweep [--threads T] [--out PATH] [--max-n N] "
                   "[--big N] [--symbolic N] [--gossip N] [--trace PATH]\n";
      return 2;
    }
  }
  // Tracing serializes the sweep: with one scenario in flight at a time
  // the recorded phase scopes and round marks belong to one scenario
  // each instead of interleaving into an unreadable braid.  (Report
  // contents are tracing-independent either way — the recorder never
  // feeds a verdict.)
  std::unique_ptr<obs::TraceSession> trace;
  if (!trace_base.empty()) {
    threads = 1;
    trace = std::make_unique<obs::TraceSession>(
        obs::trace_options_from_base(trace_base));
  }
  if (big_n > 32 || max_n > 32) {
    std::cerr << "shc_sweep: n is capped at 32 (the streaming producer holds "
                 "the 2^n-vertex frontier in memory); use --symbolic for "
                 "n <= 63\n";
    return 2;
  }
  if (symbolic_n > kMaxCubeDim || gossip_n > kMaxCubeDim) {
    std::cerr << "shc_sweep: --symbolic/--gossip n is capped at " << kMaxCubeDim
              << " (the vertex representation limit)\n";
    return 2;
  }

  std::vector<Scenario> grid;
  for (int n = 8; n <= max_n; n += 2) {
    for (int k = 2; k <= 4; ++k) {
      for (const bool vd : {false, true}) {
        Scenario sc;
        sc.n = n;
        sc.k = k;
        sc.vertex_disjoint = vd;
        sc.analyze_congestion_stats = !vd && n <= 14;
        grid.push_back(sc);
      }
    }
  }
  // The flagship --big scenario runs single-flight *after* the grid
  // pool joins (it gets the whole worker budget internally), so its
  // recorded seconds are not polluted by grid contention.
  Scenario big;
  if (big_n > 0) {
    big.n = big_n;
    big.k = 2;
    big.inner_threads = threads;
  }

  // Open the output before doing any work, so a bad path fails fast
  // instead of discarding a finished sweep.
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "shc_sweep: cannot open " << out_path << "\n";
      return 1;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : file;

  // Scenario-level pool; results land by index so output is grid-ordered.
  std::vector<std::string> results(grid.size());
  std::atomic<std::size_t> next{0};
  const int workers =
      std::max(1, std::min<int>(threads, static_cast<int>(grid.size())));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= results.size()) return;
        try {
          results[i] = run_scenario(grid[i]);
        } catch (const std::exception& e) {
          // An exception escaping a std::thread would std::terminate and
          // lose the whole sweep; record the failure instead.
          results[i] = "{\"n\":" + std::to_string(grid[i].n) +
                       ",\"k\":" + std::to_string(grid[i].k) +
                       ",\"ok\":false,\"error\":\"" + json_escape(e.what()) +
                       "\"}";
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();

  // Grid results are flushed before the flagship row runs: if the
  // big-memory scenario dies (e.g. bad_alloc on an undersized box) the
  // finished sweep is already on disk.
  bool all_ok = true;
  auto emit = [&](const std::string& line) {
    out << line << '\n';
    if (line.find("\"ok\":false") != std::string::npos) all_ok = false;
  };
  for (const std::string& line : results) emit(line);
  out.flush();

  std::size_t emitted = results.size();
  if (big_n > 0) {
    try {
      emit(run_scenario(big));
    } catch (const std::exception& e) {
      emit("{\"n\":" + std::to_string(big_n) + ",\"ok\":false,\"error\":\"" +
           json_escape(e.what()) + "\"}");
    }
    ++emitted;
  }
  if (symbolic_n > 0) {
    Scenario sc;
    sc.n = symbolic_n;
    sc.k = 2;
    sc.symbolic = true;
    try {
      emit(run_scenario(sc));
    } catch (const std::exception& e) {
      emit("{\"engine\":\"symbolic\",\"n\":" + std::to_string(symbolic_n) +
           ",\"ok\":false,\"error\":\"" + json_escape(e.what()) + "\"}");
    }
    ++emitted;
  }
  if (gossip_n > 0) {
    Scenario sc;
    sc.n = gossip_n;
    sc.k = 2;
    sc.gossip = true;
    try {
      emit(run_scenario(sc));
    } catch (const std::exception& e) {
      emit("{\"engine\":\"symbolic-gossip\",\"n\":" + std::to_string(gossip_n) +
           ",\"ok\":false,\"error\":\"" + json_escape(e.what()) + "\"}");
    }
    ++emitted;
  }
  if (!out_path.empty()) {
    std::cout << "shc_sweep: " << emitted << " scenarios -> " << out_path
              << "\n";
  }
  return all_ok ? 0 : 1;
}
