// shc_sweep — grid sweep of streaming-certified broadcast scenarios.
//
// Runs a grid of (n, k/cuts, model-variant) scenarios through the
// certification facade (shc/api/certify.hpp): each scenario is one
// CertifyRequest dispatched to the streaming / symbolic / gossip
// engine, with congestion analysis attached for the materializable
// sizes, and one JSON record per scenario via to_json_row — the facade
// owns the row schema now; this tool only builds requests.  Scenarios
// run in parallel across a worker pool; output order is deterministic
// (grid order).
//
// Usage:
//   shc_sweep [--threads T] [--out PATH] [--max-n N] [--big N] [--symbolic N]
//             [--gossip N]
//
//   --threads T   scenario workers (default: hardware concurrency)
//   --out PATH    write JSON lines to PATH instead of stdout
//   --max-n N     cap the grid's n (default 16)
//   --big N       append one streaming-only k=2 scenario at n=N
//                 (e.g. --big 30; needs RAM for the 2^N frontier)
//   --symbolic N  append one symbolic-engine k=2 scenario at n=N
//                 (n <= 63; memory polynomial in n — no 2^N anything)
//   --gossip N    append one symbolic gather-broadcast gossip scenario
//                 at n=N (n <= 63; all-to-all exchange certified past
//                 the exact validator's 2^13 wall)
//   --trace PATH  install a flight-recorder session for the whole sweep
//                 ("x.json" -> Chrome trace only, "x.jsonl" -> per-round
//                 JSONL only, else both PATH.trace.json and
//                 PATH.rounds.jsonl).  Forces --threads 1 so the traced
//                 scenarios do not interleave.
#include <atomic>
#include <charconv>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "shc/obs/recorder.hpp"
#include "shc/shc.hpp"

namespace {

using namespace shc;

struct Scenario {
  int n = 0;
  int k = 2;
  bool vertex_disjoint = false;
  bool analyze_congestion_stats = false;  // materialize + edge-load stats
  bool symbolic = false;                  // subcube engine instead of streaming
  bool gossip = false;                    // symbolic gather-broadcast gossip
  int inner_threads = 1;                  // workers inside the validator
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Builds the scenario's facade request.  Symbolic/gossip scenarios
/// pin the spec policy shared with the BM_SymbolicCertify bench rows
/// (symbolic_showcase_spec) by passing its cut vector explicitly, so
/// both recorded artifacts keep measuring the same graphs; streaming
/// scenarios let the facade run design_sparse_hypercube(n, k).
CertifyRequest scenario_request(const Scenario& sc) {
  CertifyRequest req;
  req.n = sc.n;
  req.k = sc.k;
  req.vertex_disjoint = sc.vertex_disjoint;
  req.checks.threads = sc.inner_threads;
  if (sc.gossip || sc.symbolic) {
    req.workload =
        sc.gossip ? Workload::kGossipSymbolic : Workload::kBroadcastSymbolic;
    req.cuts = symbolic_showcase_spec(sc.n, sc.k).cuts();
  } else {
    req.workload = Workload::kBroadcastStreaming;
    req.with_congestion = sc.analyze_congestion_stats;
  }
  return req;
}

std::string run_scenario(const Scenario& sc) {
  return to_json_row(certify(scenario_request(sc)));
}

/// Strict parse: the whole argument must be a number, or we exit with
/// usage — a silently-defaulted typo would drop scenarios from the
/// sweep while still exiting 0.
int parse_int_or_die(const char* s) {
  int v = 0;
  const char* end = s + std::strlen(s);
  const auto [ptr, ec] = std::from_chars(s, end, v);
  if (ec != std::errc{} || ptr != end) {
    std::cerr << "shc_sweep: not a number: " << s << "\n";
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  int max_n = 16;
  int big_n = 0;
  int symbolic_n = 0;
  int gossip_n = 0;
  std::string out_path;
  std::string trace_base;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--threads" && a + 1 < argc) threads = parse_int_or_die(argv[++a]);
    else if (arg == "--out" && a + 1 < argc) out_path = argv[++a];
    else if (arg == "--max-n" && a + 1 < argc) max_n = parse_int_or_die(argv[++a]);
    else if (arg == "--big" && a + 1 < argc) big_n = parse_int_or_die(argv[++a]);
    else if (arg == "--symbolic" && a + 1 < argc) {
      symbolic_n = parse_int_or_die(argv[++a]);
    } else if (arg == "--gossip" && a + 1 < argc) {
      gossip_n = parse_int_or_die(argv[++a]);
    } else if (arg == "--trace" && a + 1 < argc) {
      trace_base = argv[++a];
    } else {
      std::cerr << "usage: shc_sweep [--threads T] [--out PATH] [--max-n N] "
                   "[--big N] [--symbolic N] [--gossip N] [--trace PATH]\n";
      return 2;
    }
  }
  // Tracing serializes the sweep: with one scenario in flight at a time
  // the recorded phase scopes and round marks belong to one scenario
  // each instead of interleaving into an unreadable braid.  (Report
  // contents are tracing-independent either way — the recorder never
  // feeds a verdict.)
  std::unique_ptr<obs::TraceSession> trace;
  if (!trace_base.empty()) {
    threads = 1;
    trace = std::make_unique<obs::TraceSession>(
        obs::trace_options_from_base(trace_base));
  }
  if (big_n > 32 || max_n > 32) {
    std::cerr << "shc_sweep: n is capped at 32 (the streaming producer holds "
                 "the 2^n-vertex frontier in memory); use --symbolic for "
                 "n <= 63\n";
    return 2;
  }
  if (symbolic_n > kMaxCubeDim || gossip_n > kMaxCubeDim) {
    std::cerr << "shc_sweep: --symbolic/--gossip n is capped at " << kMaxCubeDim
              << " (the vertex representation limit)\n";
    return 2;
  }

  std::vector<Scenario> grid;
  for (int n = 8; n <= max_n; n += 2) {
    for (int k = 2; k <= 4; ++k) {
      for (const bool vd : {false, true}) {
        Scenario sc;
        sc.n = n;
        sc.k = k;
        sc.vertex_disjoint = vd;
        sc.analyze_congestion_stats = !vd && n <= 14;
        grid.push_back(sc);
      }
    }
  }
  // The flagship --big scenario runs single-flight *after* the grid
  // pool joins (it gets the whole worker budget internally), so its
  // recorded seconds are not polluted by grid contention.
  Scenario big;
  if (big_n > 0) {
    big.n = big_n;
    big.k = 2;
    big.inner_threads = threads;
  }

  // Open the output before doing any work, so a bad path fails fast
  // instead of discarding a finished sweep.
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "shc_sweep: cannot open " << out_path << "\n";
      return 1;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : file;

  // Scenario-level pool; results land by index so output is grid-ordered.
  std::vector<std::string> results(grid.size());
  std::atomic<std::size_t> next{0};
  const int workers =
      std::max(1, std::min<int>(threads, static_cast<int>(grid.size())));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= results.size()) return;
        try {
          results[i] = run_scenario(grid[i]);
        } catch (const std::exception& e) {
          // An exception escaping a std::thread would std::terminate and
          // lose the whole sweep; record the failure instead.
          results[i] = "{\"n\":" + std::to_string(grid[i].n) +
                       ",\"k\":" + std::to_string(grid[i].k) +
                       ",\"ok\":false,\"error\":\"" + json_escape(e.what()) +
                       "\"}";
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();

  // Grid results are flushed before the flagship row runs: if the
  // big-memory scenario dies (e.g. bad_alloc on an undersized box) the
  // finished sweep is already on disk.
  bool all_ok = true;
  auto emit = [&](const std::string& line) {
    out << line << '\n';
    if (line.find("\"ok\":false") != std::string::npos) all_ok = false;
  };
  for (const std::string& line : results) emit(line);
  out.flush();

  std::size_t emitted = results.size();
  if (big_n > 0) {
    try {
      emit(run_scenario(big));
    } catch (const std::exception& e) {
      emit("{\"n\":" + std::to_string(big_n) + ",\"ok\":false,\"error\":\"" +
           json_escape(e.what()) + "\"}");
    }
    ++emitted;
  }
  if (symbolic_n > 0) {
    Scenario sc;
    sc.n = symbolic_n;
    sc.k = 2;
    sc.symbolic = true;
    try {
      emit(run_scenario(sc));
    } catch (const std::exception& e) {
      emit("{\"engine\":\"symbolic\",\"n\":" + std::to_string(symbolic_n) +
           ",\"ok\":false,\"error\":\"" + json_escape(e.what()) + "\"}");
    }
    ++emitted;
  }
  if (gossip_n > 0) {
    Scenario sc;
    sc.n = gossip_n;
    sc.k = 2;
    sc.gossip = true;
    try {
      emit(run_scenario(sc));
    } catch (const std::exception& e) {
      emit("{\"engine\":\"symbolic-gossip\",\"n\":" + std::to_string(gossip_n) +
           ",\"ok\":false,\"error\":\"" + json_escape(e.what()) + "\"}");
    }
    ++emitted;
  }
  if (!out_path.empty()) {
    std::cout << "shc_sweep: " << emitted << " scenarios -> " << out_path
              << "\n";
  }
  return all_ok ? 0 : 1;
}
