// Network designer: given a target size and call-length budget, emit a
// deployable design — topology stats, per-level wiring plan, DOT file,
// and a validated broadcast schedule.
//
//   ./network_designer <n> <k> [--dot out.dot] [--schedule source-bits]
//
// This is the workflow the paper motivates: an engineer has N = 2^n
// nodes and a switching fabric that can hold circuits of k hops, and
// wants the cheapest (minimum fan-out) wiring that still broadcasts in
// optimal time from anywhere.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "shc/shc.hpp"

namespace {

void usage() {
  std::cerr << "usage: network_designer <n 3..16> <k 2..n-1> [--dot FILE] "
               "[--schedule BITS]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shc;

  if (argc < 3) {
    usage();
    return 1;
  }
  const int n = std::atoi(argv[1]);
  const int k = std::atoi(argv[2]);
  if (n < 3 || n > 16 || k < 2 || k >= n) {
    usage();
    return 1;
  }
  std::string dot_file;
  std::string schedule_bits;
  for (int a = 3; a + 1 < argc; a += 2) {
    const std::string flag = argv[a];
    if (flag == "--dot") {
      dot_file = argv[a + 1];
    } else if (flag == "--schedule") {
      schedule_bits = argv[a + 1];
    } else {
      usage();
      return 1;
    }
  }

  const auto spec = design_sparse_hypercube(n, k);

  std::cout << "=== design for N = 2^" << n << " nodes, k = " << k << " ===\n";
  std::cout << "max fan-out " << spec.max_degree() << " (vs " << n
            << " for the full hypercube; theoretical floor "
            << lower_bound_max_degree(n, k) << ")\n";
  std::cout << "links " << spec.num_edges() << " (vs "
            << (static_cast<std::uint64_t>(n) << (n - 1)) << ")\n";
  std::cout << "broadcast time " << n << " rounds from any node (optimal)\n";
  std::cout << "worst-case circuit length " << k << " hops\n\n";

  std::cout << "wiring plan:\n";
  std::cout << "  dims 1.." << spec.core_dim() << ": full Q_" << spec.core_dim()
            << " clusters (every node)\n";
  for (std::size_t t = 0; t < spec.levels().size(); ++t) {
    const auto& lv = spec.levels()[t];
    std::cout << "  level " << (t + 1) << ": nodes keyed by bits (" << lv.win_lo + 1
              << ".." << lv.win_hi << ") into " << lv.labeling.num_labels()
              << " classes; class j wires dims of S_j within (" << lv.dim_lo + 1
              << ".." << lv.dim_hi << "), at most " << lv.max_owned()
              << " per node\n";
  }

  if (!dot_file.empty()) {
    const Graph g = spec.materialize();
    std::ofstream out(dot_file);
    if (!out) {
      std::cerr << "cannot write " << dot_file << "\n";
      return 2;
    }
    write_dot(out, g, "sparse_hypercube", n);
    std::cout << "\nwrote DOT topology to " << dot_file << "\n";
  }

  if (!schedule_bits.empty()) {
    const auto parsed = parse_bitstring(schedule_bits);
    if (!parsed || *parsed >= spec.num_vertices()) {
      std::cerr << "bad --schedule source\n";
      return 2;
    }
    const auto schedule = make_broadcast_schedule(spec, *parsed);
    const auto report =
        validate_minimum_time_k_line(SparseHypercubeView{spec}, schedule, k);
    std::cout << "\n" << format_schedule(schedule, n);
    std::cout << "validated: " << (report.ok ? "ok" : report.error)
              << "; minimum-time: " << (report.minimum_time ? "yes" : "no") << "\n";
    const auto stats = analyze_congestion(schedule);
    std::cout << "edge load: mean " << stats.mean_edge_load << ", max "
              << stats.max_edge_load_total << " across rounds\n";
  }

  return 0;
}
