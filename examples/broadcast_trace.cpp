// Figure-4 reproduction: the paper's worked broadcast in G_{4,2}.
//
//   ./broadcast_trace [source-bits]   (default 0000, e.g. "1011")
//
// Builds Example 2's graph (Example-1 labeling of Q_2, S_1 = {3},
// S_2 = {4}), prints the full round-by-round call trace with the
// length-2 detours through Rule-1 neighbors, and validates it.
#include <iostream>
#include <string>

#include "shc/shc.hpp"

int main(int argc, char** argv) {
  using namespace shc;

  const auto g42 = SparseHypercubeSpec::construct_base(4, 2, example1_labeling_m2());

  Vertex source = 0;
  if (argc > 1) {
    const auto parsed = parse_bitstring(argv[1]);
    if (!parsed || *parsed >= g42.num_vertices()) {
      std::cerr << "usage: broadcast_trace [4-bit source, e.g. 0110]\n";
      return 1;
    }
    source = *parsed;
  }

  std::cout << "G_{4,2}: " << g42.num_vertices() << " vertices, " << g42.num_edges()
            << " edges, " << g42.max_degree() << "-regular (Example 2 / Figure 3)\n";
  std::cout << "labels: suffix 00/11 -> c1 owns dim {3}; suffix 01/10 -> c2 owns dim {4}\n\n";

  const auto schedule = make_broadcast_schedule(g42, source);
  std::cout << format_schedule(schedule, 4);

  const auto report = validate_minimum_time_k_line(SparseHypercubeView{g42}, schedule, 2);
  std::cout << "\nvalidated under 2-line model: " << (report.ok ? "ok" : report.error)
            << "; minimum-time (" << report.rounds << " = ceil(log2 16)): "
            << (report.minimum_time ? "yes" : "no") << "\n";

  std::cout << "\nPaper cross-check (Example 4, source 0000): round 1 places one\n"
               "length-2 call through a Rule-1 neighbor into the 1xxx half; round 2\n"
               "doubles into the dim-3 halves; rounds 3-4 flood the 2-cubes.\n";
  return report.ok ? 0 : 2;
}
