// Degree explorer: the paper's central trade-off, interactively.
//
//   ./degree_explorer [max_n]     (default 63)
//
// For every k from 1 to 8 prints the achievable maximum degree at each
// n, next to the lower bound — a text rendering of the asymptotic story
// Delta = Theta(n^(1/k)), plus where Theorem 1's "constant degree 3"
// regime takes over.
#include <cstdlib>
#include <iostream>

#include "shc/shc.hpp"

int main(int argc, char** argv) {
  using namespace shc;

  const int max_n = argc > 1 ? std::atoi(argv[1]) : 63;
  if (max_n < 4 || max_n > 63) {
    std::cerr << "usage: degree_explorer [max_n in 4..63]\n";
    return 1;
  }

  std::cout << "Maximum degree of the constructed k-mlbg on 2^n vertices\n"
            << "(cells: achieved / lower bound; k = 1 is the full cube Q_n)\n\n";

  TextTable t({"n", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6", "k=8",
               "k>=thm1 (Delta<=3)"});
  for (int n = 4; n <= max_n; n += (max_n > 24 ? 4 : 2)) {
    std::vector<std::string> row{std::to_string(n), std::to_string(n) + "/" +
                                                        std::to_string(n)};
    for (int k : {2, 3, 4, 5, 6, 8}) {
      if (k >= n) {
        row.push_back("-");
        continue;
      }
      const int delta = realized_max_degree(n, optimal_cuts(n, k));
      row.push_back(std::to_string(delta) + "/" +
                    std::to_string(lower_bound_max_degree(n, k)));
    }
    row.push_back("k>=" + std::to_string(theorem1_k_threshold(cube_order(n))));
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\nReading: at n = 48, the full cube needs fan-out 48; allowing\n"
               "2-hop calls cuts it to ~13, 3-hop to ~8; once k reaches the\n"
               "Theorem-1 threshold a degree-3 tree suffices (last column).\n";
  return 0;
}
