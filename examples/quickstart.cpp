// Quickstart: build a sparse hypercube, broadcast, and verify.
//
//   ./quickstart [n] [k]     (defaults n = 10, k = 3)
//
// Walks the whole public API surface in ~60 lines: design parameters,
// construct the graph, inspect degrees against the paper's bounds, then
// certify the Broadcast_k scheme through the facade — one CertifyRequest
// in, one CertifyResult (validation report + congestion profile) out.
#include <cstdlib>
#include <iostream>

#include "shc/shc.hpp"

int main(int argc, char** argv) {
  using namespace shc;

  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  const int k = argc > 2 ? std::atoi(argv[2]) : 3;
  if (n < 3 || n > 20 || k < 2 || k >= n) {
    std::cerr << "usage: quickstart [n in 3..20] [k in 2..n-1]\n";
    return 1;
  }

  // 1. Design: pick the degree-optimal cut points for Construct(k, ...).
  const SparseHypercubeSpec spec = design_sparse_hypercube(n, k);
  std::cout << "sparse hypercube G on 2^" << n << " = " << spec.num_vertices()
            << " vertices, k = " << k << "\n";
  std::cout << "  cuts:";
  for (int c : spec.cuts()) std::cout << ' ' << c;
  std::cout << "  (core Q_" << spec.core_dim() << " plus " << spec.levels().size()
            << " level(s))\n";

  // 2. Degree economics vs the full cube and the paper's bounds.
  std::cout << "  max degree " << spec.max_degree() << "  (Q_" << n << " has " << n
            << "; lower bound " << lower_bound_max_degree(n, k) << ", upper bound "
            << (k == 2 ? theorem5_upper(n) : theorem7_upper(n, k)) << ")\n";
  std::cout << "  edges " << spec.num_edges() << "  (Q_" << n << " has "
            << (static_cast<std::uint64_t>(n) << (n - 1)) << ")\n";

  // 3. Certify Broadcast_k from a vertex through the facade: the
  // streaming engine validates every call under the k-line model (the
  // report is bit-for-bit the serial validator's), and with_congestion
  // attaches the Section-5 edge-load profile.
  CertifyRequest req;
  req.workload = Workload::kBroadcastStreaming;
  req.n = n;
  req.cuts = spec.cuts();  // reuse the design from step 1
  req.source = 1;
  req.with_congestion = true;
  const CertifyResult res = certify(req);

  const ValidationReport& report = res.report;
  std::cout << "broadcast from " << to_bitstring(req.source, n) << ": "
            << report.rounds << " rounds, " << report.total_calls
            << " calls, max call length " << report.max_call_length << "\n";
  std::cout << "  validated: " << (report.ok ? "ok" : report.error)
            << "; minimum-time: " << (report.minimum_time ? "yes" : "no") << "\n";

  // 4. Congestion profile (Section 5 of the paper).
  if (res.has_congestion) {
    const CongestionStats& stats = res.congestion;
    std::cout << "  congestion: " << stats.total_edge_hops << " hops over "
              << stats.distinct_edges_used << " edges, max per-edge load "
              << stats.max_edge_load_total << " (per-round "
              << stats.max_edge_load_per_round << ")\n";
  }

  return report.ok && report.minimum_time ? 0 : 2;
}
