// Quickstart: build a sparse hypercube, broadcast, and verify.
//
//   ./quickstart [n] [k]     (defaults n = 10, k = 3)
//
// Walks the whole public API surface in ~60 lines: design parameters,
// construct the graph, inspect degrees against the paper's bounds,
// generate the Broadcast_k schedule, and validate it mechanically under
// the k-line model.
#include <cstdlib>
#include <iostream>

#include "shc/shc.hpp"

int main(int argc, char** argv) {
  using namespace shc;

  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  const int k = argc > 2 ? std::atoi(argv[2]) : 3;
  if (n < 3 || n > 20 || k < 2 || k >= n) {
    std::cerr << "usage: quickstart [n in 3..20] [k in 2..n-1]\n";
    return 1;
  }

  // 1. Design: pick the degree-optimal cut points for Construct(k, ...).
  const SparseHypercubeSpec spec = design_sparse_hypercube(n, k);
  std::cout << "sparse hypercube G on 2^" << n << " = " << spec.num_vertices()
            << " vertices, k = " << k << "\n";
  std::cout << "  cuts:";
  for (int c : spec.cuts()) std::cout << ' ' << c;
  std::cout << "  (core Q_" << spec.core_dim() << " plus " << spec.levels().size()
            << " level(s))\n";

  // 2. Degree economics vs the full cube and the paper's bounds.
  std::cout << "  max degree " << spec.max_degree() << "  (Q_" << n << " has " << n
            << "; lower bound " << lower_bound_max_degree(n, k) << ", upper bound "
            << (k == 2 ? theorem5_upper(n) : theorem7_upper(n, k)) << ")\n";
  std::cout << "  edges " << spec.num_edges() << "  (Q_" << n << " has "
            << (static_cast<std::uint64_t>(n) << (n - 1)) << ")\n";

  // 3. Broadcast from a vertex (one flat arena, zero per-call heap
  // allocations) and validate under the k-line model through the
  // implicit non-virtual SpecView oracle.
  const Vertex source = 1;
  const FlatSchedule schedule = make_broadcast_schedule(spec, source);
  const SpecView view(spec);
  const ValidationReport report = validate_minimum_time_k_line(view, schedule, k);
  std::cout << "broadcast from " << to_bitstring(source, n) << ": "
            << report.rounds << " rounds, " << report.total_calls
            << " calls, max call length " << report.max_call_length << "\n";
  std::cout << "  validated: " << (report.ok ? "ok" : report.error)
            << "; minimum-time: " << (report.minimum_time ? "yes" : "no") << "\n";

  // 4. Congestion profile (Section 5 of the paper).
  const CongestionStats stats = analyze_congestion(schedule);
  std::cout << "  congestion: " << stats.total_edge_hops << " hops over "
            << stats.distinct_edges_used << " edges, max per-edge load "
            << stats.max_edge_load_total << " (per-round "
            << stats.max_edge_load_per_round << ")\n";

  return report.ok && report.minimum_time ? 0 : 2;
}
