// shc_serve — long-lived certification server.
//
// Speaks newline-delimited JSON: one request object per line in, one
// response row per line out, the same row schema shc_sweep emits (plus
// an `"id"`/`"cache_hit"` envelope).  Two transports share one
// ServeEngine (shc/api/serve.hpp) — and with it one certificate cache,
// one WorkerPool, and one admission controller:
//
//   shc_serve                          # stdin/stdout loop
//   shc_serve --socket /tmp/shc.sock   # AF_UNIX listener, concurrent
//                                      # clients, one thread each
//
// Example session:
//
//   $ echo '{"id":1,"workload":"broadcast-symbolic","n":24,"k":2}' | shc_serve
//   {"engine":"symbolic","n":24,...,"id":1,"cache_hit":false}
//
// Knobs:
//   --threads T       shared WorkerPool workers lent to one query at a
//                     time (default 1: every query runs inline)
//   --heavy-groups G  predicted-group-count admission threshold
//   --heavy-slots S   concurrently admitted heavy queries (default 1)
//   --no-cache        disable certificate memoization
//   --selftest        run the built-in protocol check and exit 0/1
//                     (the tier-1 ctest smoke test)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <charconv>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "shc/shc.hpp"

namespace {

using namespace shc;

int parse_int_or_die(const char* s) {
  int v = 0;
  const char* end = s + std::strlen(s);
  const auto [ptr, ec] = std::from_chars(s, end, v);
  if (ec != std::errc{} || ptr != end) {
    std::cerr << "shc_serve: not a number: " << s << "\n";
    std::exit(2);
  }
  return v;
}

/// Removes the service envelope (`"id"`, `"cache_hit"`) so selftest can
/// compare the cached row bytes against the cold row bytes.
std::string strip_envelope(std::string row) {
  for (const char* key : {",\"id\":", ",\"cache_hit\":"}) {
    const std::size_t at = row.find(key);
    if (at == std::string::npos) continue;
    std::size_t end = at + std::strlen(key);
    while (end < row.size() && row[end] != ',' && row[end] != '}') ++end;
    row.erase(at, end - at);
  }
  return row;
}

/// Fixed request script through an in-process engine; any mismatch is a
/// failed smoke test.  Covers the protocol surface the serve_test gtest
/// suite checks in depth: ok rows, cache-hit byte identity, structured
/// errors for malformed lines, admission refusal.
int selftest() {
  int failures = 0;
  const auto expect = [&](bool cond, const std::string& what) {
    if (!cond) {
      ++failures;
      std::cerr << "selftest FAIL: " << what << "\n";
    }
  };

  ServeEngine engine(ServeOptions{});
  const std::string cold = engine.handle_line(
      "{\"id\":1,\"workload\":\"broadcast-streaming\",\"n\":8,\"k\":2}");
  expect(cold.find("\"ok\":true") != std::string::npos, "cold query ok: " + cold);
  expect(cold.find("\"cache_hit\":false") != std::string::npos,
         "cold query is a miss: " + cold);
  const std::string warm = engine.handle_line(
      "{\"id\":2,\"workload\":\"broadcast-streaming\",\"n\":8,\"k\":2}");
  expect(warm.find("\"cache_hit\":true") != std::string::npos,
         "warm query is a hit: " + warm);
  expect(strip_envelope(warm) == strip_envelope(cold),
         "cache hit row bytes == cold row bytes");

  const std::string bad = engine.handle_line("{nope");
  expect(bad.find("\"ok\":false") != std::string::npos &&
             bad.find("\"error\":") != std::string::npos,
         "malformed line answers a structured error row: " + bad);
  const std::string unknown = engine.handle_line(
      "{\"workload\":\"frisbee\",\"n\":8}");
  expect(unknown.find("\"ok\":false") != std::string::npos,
         "unknown workload answers an error row: " + unknown);

  ServeOptions strict;
  strict.heavy_groups = 1;  // everything is heavy...
  strict.heavy_slots = 0;   // ...and nothing is admitted
  ServeEngine gate(strict);
  const std::string refused = gate.handle_line(
      "{\"id\":3,\"workload\":\"broadcast-streaming\",\"n\":8}");
  expect(refused.find("\"refused\":true") != std::string::npos,
         "admission refusal row: " + refused);

  if (failures == 0) std::cout << "shc_serve selftest: all checks passed\n";
  return failures == 0 ? 0 : 1;
}

/// One connected client: lines in, rows out, until EOF.
void serve_connection(ServeEngine& engine, int fd) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(got));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string row = engine.handle_line(buf.substr(start, nl - start)) + "\n";
      std::size_t off = 0;
      while (off < row.size()) {
        const ssize_t wrote = ::write(fd, row.data() + off, row.size() - off);
        if (wrote <= 0) { ::close(fd); return; }
        off += static_cast<std::size_t>(wrote);
      }
      start = nl + 1;
    }
    buf.erase(0, start);
  }
  ::close(fd);
}

int serve_socket(ServeEngine& engine, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "shc_serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "shc_serve: socket path too long\n";
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 64) != 0) {
    std::cerr << "shc_serve: bind/listen " << path << ": "
              << std::strerror(errno) << "\n";
    return 1;
  }
  std::cerr << "shc_serve: listening on " << path << "\n";
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::cerr << "shc_serve: accept: " << std::strerror(errno) << "\n";
      return 1;
    }
    // One thread per client; the engine is thread-safe and the cache,
    // pool, and admission slots are shared across all of them.
    std::thread(serve_connection, std::ref(engine), fd).detach();
  }
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opt;
  std::string socket_path;
  bool run_selftest = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--threads" && a + 1 < argc) {
      opt.threads = parse_int_or_die(argv[++a]);
    } else if (arg == "--heavy-groups" && a + 1 < argc) {
      opt.heavy_groups = static_cast<std::uint64_t>(parse_int_or_die(argv[++a]));
    } else if (arg == "--heavy-slots" && a + 1 < argc) {
      opt.heavy_slots = parse_int_or_die(argv[++a]);
    } else if (arg == "--no-cache") {
      opt.enable_cache = false;
    } else if (arg == "--socket" && a + 1 < argc) {
      socket_path = argv[++a];
    } else if (arg == "--selftest") {
      run_selftest = true;
    } else {
      std::cerr << "usage: shc_serve [--threads T] [--heavy-groups G] "
                   "[--heavy-slots S] [--no-cache] [--socket PATH] "
                   "[--selftest]\n";
      return 2;
    }
  }
  if (run_selftest) return selftest();

  ServeEngine engine(opt);
  if (!socket_path.empty()) return serve_socket(engine, socket_path);

  // stdin/stdout transport: one request line, one response row.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << engine.handle_line(line) << "\n" << std::flush;
  }
  return 0;
}
