// Gossip demo: all-to-all exchange under the k-line model — the paper's
// Section-5 open direction, made runnable.
//
//   ./gossip_demo [n] [k]     (defaults n = 8, k = 3)
//
// Compares the optimal dimension-exchange gossip on the full cube with
// the provable gather+broadcast gossip on the degree-reduced sparse
// hypercube, validating both and printing the round gap.
#include <cstdlib>
#include <iostream>

#include "shc/shc.hpp"

int main(int argc, char** argv) {
  using namespace shc;

  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int k = argc > 2 ? std::atoi(argv[2]) : 3;
  if (n < 3 || n > 12 || k < 2 || k >= n) {
    std::cerr << "usage: gossip_demo [n in 3..12] [k in 2..n-1]\n";
    return 1;
  }

  std::cout << "gossip on 2^" << n << " = " << cube_order(n)
            << " vertices (lower bound " << n << " rounds)\n\n";

  {
    const HypercubeView qn(n);
    const auto schedule = hypercube_exchange_gossip(n);
    const auto rep = validate_gossip(qn, schedule, 1);
    std::cout << "full cube Q_" << n << " (degree " << n << ", k = 1):\n"
              << "  dimension exchange: " << rep.rounds << " rounds, "
              << (rep.ok ? "validated" : rep.error) << ", optimal "
              << (rep.minimum_time ? "yes" : "no") << "\n";
  }

  {
    const auto spec = design_sparse_hypercube(n, k);
    const SparseHypercubeView view(spec);
    const auto schedule = sparse_gather_broadcast_gossip(spec, 0);
    const auto rep = validate_gossip(view, schedule, k);
    std::cout << "sparse hypercube (degree " << spec.max_degree() << ", k = " << k
              << "):\n"
              << "  gather+broadcast: " << rep.rounds << " rounds, "
              << (rep.ok ? "validated" : rep.error) << ", max call length "
              << rep.max_call_length << "\n";
    std::cout << "\nThe 2x round gap on the sparse graph is the open problem the\n"
                 "paper poses: can o(n)-degree k-line networks gossip in n rounds?\n";
    return rep.ok ? 0 : 2;
  }
}
