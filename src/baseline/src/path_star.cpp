#include "shc/baseline/path_star.hpp"

#include <cassert>
#include <deque>

#include "shc/bits/bitstring.hpp"

namespace shc {
namespace {

/// A maximal run of consecutive path vertices containing exactly one
/// informed vertex (its owner).
struct Segment {
  VertexId lo, hi, owner;

  [[nodiscard]] VertexId uninformed() const noexcept { return hi - lo; }
};

/// Appends the consecutive-vertex walk from a to b (either direction) as
/// the current call's path.
void append_straight_path(FlatSchedule& s, VertexId a, VertexId b) {
  if (a <= b) {
    for (VertexId x = a;; ++x) {
      s.push_vertex(x);
      if (x == b) break;
    }
  } else {
    for (VertexId x = a;; --x) {
      s.push_vertex(x);
      if (x == b) break;
    }
  }
}

}  // namespace

FlatSchedule path_line_broadcast(VertexId N, VertexId source) {
  assert(N >= 1 && source < N);
  FlatSchedule schedule;
  schedule.source = source;
  if (N > 1) {
    // ceil(log2 N) rounds, N-1 calls, each path vertex covered once per
    // round it appears in a call; N vertices per round is a safe bound.
    schedule.reserve(static_cast<std::size_t>(ceil_log2(N)), N - 1,
                     static_cast<std::size_t>(ceil_log2(N)) * N);
  }

  std::deque<Segment> segments{{0, N - 1, source}};
  bool work_left = N > 1;
  while (work_left) {
    bool round_open = false;
    std::deque<Segment> next;
    work_left = false;
    for (const Segment& seg : segments) {
      const VertexId q = seg.uninformed();
      if (q == 0) {
        next.push_back(seg);
        continue;
      }
      // Give the callee's side ceil(q/2) vertices (callee included), the
      // owner's side floor(q/2) uninformed; both fit the halved budget.
      const VertexId s = (q + 1) / 2;
      const VertexId q_left = seg.owner - seg.lo;
      const VertexId q_right = seg.hi - seg.owner;
      Segment mine{0, 0, seg.owner};
      Segment theirs{0, 0, 0};
      if (q_right >= q_left) {
        assert(s <= q_right);
        const VertexId cut = seg.hi - s;  // owner's side is [lo, cut]
        mine.lo = seg.lo;
        mine.hi = cut;
        theirs.lo = cut + 1;
        theirs.hi = seg.hi;
        theirs.owner = cut + 1 + (s - 1) / 2;  // median of the new side
      } else {
        assert(s <= q_left);
        const VertexId cut = seg.lo + s;  // owner's side is [cut, hi]
        mine.lo = cut;
        mine.hi = seg.hi;
        theirs.lo = seg.lo;
        theirs.hi = cut - 1;
        theirs.owner = seg.lo + (s - 1) / 2;
      }
      if (!round_open) {
        schedule.begin_round();
        round_open = true;
      }
      append_straight_path(schedule, seg.owner, theirs.owner);
      schedule.end_call();
      if (mine.uninformed() > 0 || theirs.uninformed() > 0) work_left = true;
      next.push_back(mine);
      next.push_back(theirs);
    }
    segments.swap(next);
  }
  return schedule;
}

FlatSchedule star_line_broadcast(VertexId N, VertexId source) {
  assert(N >= 2 && source < N);
  FlatSchedule schedule;
  schedule.source = source;
  schedule.reserve(static_cast<std::size_t>(ceil_log2(N)), N - 1,
                   3 * static_cast<std::size_t>(N - 1));

  std::vector<VertexId> informed{source};
  informed.reserve(N);
  std::vector<VertexId> pending;  // uninformed, consumed from the back
  pending.reserve(N - 1);
  for (VertexId leaf = 1; leaf < N; ++leaf) {
    if (leaf != source) pending.push_back(leaf);
  }
  if (source != 0) pending.push_back(0);
  // The center (if uninformed) sits at the back, so a leaf source calls
  // it first and every later call can switch through an informed center.
  while (!pending.empty()) {
    schedule.begin_round();
    const std::size_t frontier = informed.size();
    for (std::size_t i = 0; i < frontier && !pending.empty(); ++i) {
      const VertexId caller = informed[i];
      const VertexId target = pending.back();
      pending.pop_back();
      if (caller == 0 || target == 0) {
        schedule.add_call({caller, target});  // direct spoke
      } else {
        schedule.add_call({caller, 0, target});  // switch through the center
      }
      informed.push_back(target);
    }
  }
  return schedule;
}

}  // namespace shc
