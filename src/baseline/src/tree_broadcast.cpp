#include "shc/baseline/tree_broadcast.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <vector>

#include "shc/bits/bitstring.hpp"
#include "shc/graph/algorithms.hpp"
#include "shc/graph/generators.hpp"

namespace shc {
namespace {

// Line-broadcast scheduling on trees by responsibility-set splitting.
//
// Every informed vertex owns a *set* of uninformed vertices (not
// necessarily connected — line calls switch through foreign vertices).
// Each round an owner o:
//   1. roots the tree at itself and computes, for every vertex v, the
//      number of owned uninformed vertices in v's subtree (weight);
//   2. picks a *generalized carve* give = owned(subtree(c)) \ subtree(x)
//      whose size best splits the remaining budget: subtree differences
//      realize sizes plain subtrees cannot (e.g. 2^(j-1) out of a
//      complete binary tree whose subtree sizes are all 2^i - 1);
//   3. calls a balance vertex u inside the carve along the unique tree
//      path o -> u, provided its edges are free this round; the carve
//      becomes u's responsibility set.
// Informed vertices whose sets are empty act as helpers: they carve out
// of the most over-budget set along free edges.  Budgets come from the
// global target R = ceil(log2 N): after round t each set should fit in
// 2^(R-t) - 1 so the remaining rounds can finish it.
//
// Feasibility is unconditional (every call is edge-checked against the
// round); hitting R exactly is heuristic and certified per-family by
// tests (paths, stars, caterpillars, complete binary trees, the paper's
// Figure-1 trees).

struct EdgeKey {
  VertexId a, b;
  auto operator<=>(const EdgeKey&) const = default;
};

EdgeKey canon(VertexId u, VertexId v) { return u <= v ? EdgeKey{u, v} : EdgeKey{v, u}; }

class Scheduler {
 public:
  Scheduler(const Graph& tree, VertexId source)
      : g_(tree), n_(tree.num_vertices()), source_(source) {
    informed_.assign(n_, 0);
    informed_[source_] = 1;
    owner_.assign(n_, source_);
    parent_.assign(n_, n_);
    order_.reserve(n_);
    depth_.assign(n_, 0);
    weight_.assign(n_, 0);
  }

  BroadcastSchedule run() {
    BroadcastSchedule schedule;
    schedule.source = source_;
    VertexId informed_count = 1;
    const int target = ceil_log2(n_);
    // Hard cap: the fallback guarantees >= 1 new vertex per round, so
    // the loop always terminates; 2*target + 8 bounds heuristic drift.
    const int max_rounds = std::max(static_cast<int>(n_), 2 * target + 8);
    while (informed_count < n_ && static_cast<int>(schedule.rounds.size()) < max_rounds) {
      const int rem = std::max(0, target - static_cast<int>(schedule.rounds.size()) - 1);
      const std::uint64_t cap =
          rem >= 62 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
      Round round = plan_round(cap);
      if (round.calls.empty()) {
        // Heuristic stall (should not happen on trees): fall back to a
        // direct call from some informed vertex to an adjacent
        // uninformed vertex, which always exists in a connected graph.
        round.calls.push_back(fallback_call());
      }
      for (const Call& c : round.calls) {
        informed_[static_cast<VertexId>(c.receiver())] = 1;
        ++informed_count;
      }
      schedule.rounds.push_back(std::move(round));
    }
    assert(informed_count == n_);
    return schedule;
  }

 private:
  /// BFS-roots the whole tree at `root`; fills parent_/order_/depth_ and
  /// weight_ = per-subtree count of vertices owned by `root` and still
  /// uninformed and uncarved this round.
  void root_at(VertexId root) {
    std::fill(parent_.begin(), parent_.end(), n_);
    order_.clear();
    parent_[root] = root;
    depth_[root] = 0;
    order_.push_back(root);
    for (std::size_t h = 0; h < order_.size(); ++h) {
      const VertexId u = order_[h];
      for (VertexId w : g_.neighbors(u)) {
        if (parent_[w] == n_) {
          parent_[w] = u;
          depth_[w] = depth_[u] + 1;
          order_.push_back(w);
        }
      }
    }
    std::fill(weight_.begin(), weight_.end(), 0);
    for (std::size_t i = order_.size(); i-- > 0;) {
      const VertexId v = order_[i];
      if (!informed_[v] && owner_[v] == root && !carved_[v]) ++weight_[v];
      if (parent_[v] != v) weight_[parent_[v]] += weight_[v];
    }
  }

  /// After root_at: true iff `anc` lies on the path from `v` to the root
  /// (inclusive).
  bool is_ancestor(VertexId anc, VertexId v) const {
    while (depth_[v] > depth_[anc]) v = parent_[v];
    return v == anc;
  }

  /// A generalized carve out of the current rooting's owner set.
  struct Carve {
    VertexId c = 0;          ///< carve top
    VertexId x = 0;          ///< excluded subtree root, or n_ for none
    VertexId receiver = 0;   ///< uninformed member that receives the call
    std::uint64_t give = 0;  ///< members transferred (receiver included)
  };

  /// Searches for the carve whose two sides best fit `cap` (primary:
  /// total capacity overflow; secondary: balance).  give == 0 means the
  /// set is empty or fully masked.
  Carve choose_carve(VertexId o, std::uint64_t cap) const {
    const std::uint64_t q = weight_[o];
    Carve best;
    if (q == 0) return best;
    std::uint64_t best_score = ~std::uint64_t{0};
    const std::uint64_t half = (q + 1) / 2;
    for (const VertexId c : order_) {
      if (c == o || weight_[c] == 0) continue;
      // Plain subtree carve.
      consider(o, c, n_, weight_[c], q, cap, half, best, best_score);
      // Subtree-difference carves: exclude one descendant branch.  The
      // heavy chain below each child realizes the useful size gaps
      // without scanning all O(subtree^2) pairs.
      for (VertexId x : g_.neighbors(c)) {
        if (x == parent_[c] || weight_[x] == 0 || weight_[x] == weight_[c]) continue;
        consider(o, c, x, weight_[c] - weight_[x], q, cap, half, best, best_score);
        VertexId y = x;
        while (true) {
          VertexId heavy = n_;
          std::uint64_t hw = 0;
          for (VertexId z : g_.neighbors(y)) {
            if (z != parent_[y] && weight_[z] > hw) {
              hw = weight_[z];
              heavy = z;
            }
          }
          if (heavy == n_) break;
          if (weight_[c] > weight_[heavy]) {
            consider(o, c, heavy, weight_[c] - weight_[heavy], q, cap, half, best,
                     best_score);
          }
          y = heavy;
        }
      }
    }
    return best;
  }

  /// Evaluates carve (c, x) with transfer size `give`; records it in
  /// `best` when it improves `best_score` and a receiver exists.
  void consider(VertexId o, VertexId c, VertexId x, std::uint64_t give,
                std::uint64_t q, std::uint64_t cap, std::uint64_t half, Carve& best,
                std::uint64_t& best_score) const {
    if (give == 0 || give > q) return;
    const std::uint64_t keep = q - give;
    const std::uint64_t callee_after = give - 1;
    const std::uint64_t overflow = (keep > cap ? keep - cap : 0) +
                                   (callee_after > cap ? callee_after - cap : 0);
    const std::uint64_t balance = give > half ? give - half : half - give;
    // Lexicographic score: overflow, then balance, then a preference for
    // deep carve tops — give the far part away, keep the near part, so
    // the owner's future calls stay short and contention-free.
    const std::uint64_t span = static_cast<std::uint64_t>(n_) + 1;
    const std::uint64_t score =
        (overflow * span + balance) * span + (span - 1 - depth_[c]);
    if (score >= best_score) return;
    const VertexId receiver = pick_receiver(o, c, x, give);
    if (receiver == n_) return;
    best = Carve{c, x, receiver, give};
    best_score = score;
  }

  /// Receiver inside the carve (c, x): the shallowest member (the carve
  /// top itself when it is a member), breaking depth ties toward the
  /// heaviest subtree.  A shallow receiver preserves the carve's
  /// geometry — its own future calls fan out downward without crossing
  /// the owner's retained side.
  VertexId pick_receiver(VertexId o, VertexId c, VertexId x,
                         std::uint64_t /*give*/) const {
    VertexId best = n_;
    for (const VertexId v : order_) {
      if (informed_[v] || owner_[v] != o || carved_[v]) continue;
      if (!is_ancestor(c, v)) continue;
      if (x != n_ && is_ancestor(x, v)) continue;
      if (best == n_ || depth_[v] < depth_[best] ||
          (depth_[v] == depth_[best] && weight_[v] > weight_[best])) {
        best = v;
      }
    }
    return best;
  }

  /// Unique tree path a -> b under the current rooting (LCA walk).
  std::vector<Vertex> tree_path(VertexId a, VertexId b) const {
    std::vector<Vertex> up, down;
    VertexId x = a, y = b;
    while (depth_[x] > depth_[y]) {
      up.push_back(x);
      x = parent_[x];
    }
    while (depth_[y] > depth_[x]) {
      down.push_back(y);
      y = parent_[y];
    }
    while (x != y) {
      up.push_back(x);
      down.push_back(y);
      x = parent_[x];
      y = parent_[y];
    }
    up.push_back(x);
    up.insert(up.end(), down.rbegin(), down.rend());
    return up;
  }

  bool edges_free(const std::vector<Vertex>& path) const {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (used_.contains(canon(static_cast<VertexId>(path[i]),
                               static_cast<VertexId>(path[i + 1])))) {
        return false;
      }
    }
    return true;
  }

  void mark_edges(const std::vector<Vertex>& path) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      used_.insert(canon(static_cast<VertexId>(path[i]),
                         static_cast<VertexId>(path[i + 1])));
    }
  }

  /// Transfers membership of the carve to its receiver.  Must run under
  /// the same rooting that produced the carve.
  void commit_carve(VertexId o, const Carve& cv) {
    for (const VertexId v : order_) {
      if (informed_[v] || owner_[v] != o || carved_[v]) continue;
      if (!is_ancestor(cv.c, v)) continue;
      if (cv.x != n_ && is_ancestor(cv.x, v)) continue;
      owner_[v] = cv.receiver;
      carved_[v] = 1;  // fixed for the rest of the round
    }
  }

  void recount_sets() {
    set_size_.assign(n_, 0);
    for (VertexId v = 0; v < n_; ++v) {
      if (!informed_[v]) ++set_size_[owner_[v]];
    }
  }

  /// One call attempt by `caller` into `set_owner`'s set.  Returns true
  /// when a call was placed into `round`.
  bool try_call(VertexId caller, VertexId set_owner, std::uint64_t cap, Round& round) {
    root_at(set_owner);
    for (int attempt = 0; attempt < 6; ++attempt) {
      const Carve cv = choose_carve(set_owner, cap);
      if (cv.give == 0) return false;
      std::vector<Vertex> path = tree_path(caller, cv.receiver);
      if (edges_free(path)) {
        mark_edges(path);
        commit_carve(set_owner, cv);
        set_size_[set_owner] -= cv.give;
        round.calls.push_back(Call{std::move(path)});
        return true;
      }
      // Mask the receiver and re-search; weights must be rebuilt since
      // carved_ feeds them.
      carved_[cv.receiver] = 1;
      masked_.push_back(cv.receiver);
      root_at(set_owner);
    }
    return false;
  }

  Round plan_round(std::uint64_t cap) {
    carved_.assign(n_, 0);
    used_.clear();
    recount_sets();

    Round round;
    std::vector<VertexId> helpers;
    for (VertexId o = 0; o < n_; ++o) {
      if (!informed_[o]) continue;
      masked_.clear();
      const bool placed = set_size_[o] > 0 && try_call(o, o, cap, round);
      for (VertexId v : masked_) carved_[v] = 0;  // un-mask failed tries
      if (!placed) helpers.push_back(o);
    }

    for (const VertexId h : helpers) {
      std::vector<VertexId> targets;
      for (VertexId o = 0; o < n_; ++o) {
        if (informed_[o] && set_size_[o] > 0) targets.push_back(o);
      }
      std::sort(targets.begin(), targets.end(), [&](VertexId a, VertexId b) {
        const std::uint64_t oa = set_size_[a] > cap ? set_size_[a] - cap : 0;
        const std::uint64_t ob = set_size_[b] > cap ? set_size_[b] - cap : 0;
        if (oa != ob) return oa > ob;
        if (set_size_[a] != set_size_[b]) return set_size_[a] > set_size_[b];
        return a < b;
      });
      for (const VertexId o : targets) {
        masked_.clear();
        const bool placed = try_call(h, o, cap, round);
        for (VertexId v : masked_) carved_[v] = 0;
        if (placed) break;
      }
    }

    // Final packing sweep: any informed vertex that has not called yet
    // and has an uninformed neighbor over a free edge places a direct
    // call.  This fills rounds the carve heuristics left slack in
    // (typically the broadcast tail).
    std::vector<char> busy(n_, 0);
    std::vector<char> receiving(n_, 0);
    for (const Call& c : round.calls) {
      busy[static_cast<VertexId>(c.caller())] = 1;
      receiving[static_cast<VertexId>(c.receiver())] = 1;
    }
    for (VertexId v = 0; v < n_; ++v) {
      if (informed_[v] || receiving[v]) continue;
      for (VertexId u : g_.neighbors(v)) {
        if (!informed_[u] || busy[u]) continue;
        const std::vector<Vertex> path{u, v};
        if (!edges_free(path)) continue;
        mark_edges(path);
        busy[u] = 1;
        receiving[v] = 1;
        round.calls.push_back(Call{path});
        break;
      }
    }
    return round;
  }

  Call fallback_call() {
    for (VertexId u = 0; u < n_; ++u) {
      if (!informed_[u]) continue;
      for (VertexId w : g_.neighbors(u)) {
        if (!informed_[w]) return Call{{u, w}};
      }
    }
    assert(false && "no informed-uninformed edge in a connected graph");
    return Call{};
  }

  const Graph& g_;
  VertexId n_;
  VertexId source_;
  std::vector<char> informed_;
  std::vector<VertexId> owner_;

  // Rooting scratch (valid for the most recent root_at call).
  std::vector<VertexId> parent_;
  std::vector<VertexId> order_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint64_t> weight_;

  // Round scratch.
  std::vector<char> carved_;
  std::vector<VertexId> masked_;
  std::vector<std::uint64_t> set_size_;
  std::set<EdgeKey> used_;
};

}  // namespace

namespace {

/// Legacy-form scheduling used by both public entry points; the flat
/// conversion happens once at the public boundary.
BroadcastSchedule tree_line_broadcast_legacy(const Graph& tree, VertexId source) {
  BroadcastSchedule schedule;
  schedule.source = source;
  if (tree.num_vertices() <= 1) return schedule;
  Scheduler scheduler(tree, source);
  return scheduler.run();
}

TreeBroadcastResult finish_result(BroadcastSchedule legacy, VertexId n) {
  TreeBroadcastResult result;
  result.minimum_rounds = ceil_log2(n);
  result.schedule = FlatSchedule::from_legacy(legacy);
  result.rounds = result.schedule.num_rounds();
  result.achieved_minimum = result.rounds == result.minimum_rounds;
  result.max_call_length = result.schedule.max_call_length();
  return result;
}

}  // namespace

TreeBroadcastResult tree_line_broadcast(const Graph& tree, VertexId source) {
  const VertexId n = tree.num_vertices();
  assert(source < n);
  assert(is_tree(tree));

  if (n == 1) {
    TreeBroadcastResult result;
    result.schedule.source = source;
    result.achieved_minimum = true;
    return result;
  }
  return finish_result(tree_line_broadcast_legacy(tree, source), n);
}


namespace {

/// Walks a heap-numbered complete binary tree from `v` up to its root 0,
/// returning [v, parent, ..., 0].
std::vector<Vertex> heap_walk_to_root(VertexId v) {
  std::vector<Vertex> path{v};
  while (v != 0) {
    v = (v - 1) / 2;
    path.push_back(v);
  }
  return path;
}

/// Appends `sub`'s rounds into `out` starting at round index `offset`
/// (0-based), translating vertex ids by `shift`.
void merge_component_schedule(BroadcastSchedule& out, const BroadcastSchedule& sub,
                              std::size_t offset, Vertex shift) {
  for (std::size_t t = 0; t < sub.rounds.size(); ++t) {
    while (out.rounds.size() <= offset + t) out.rounds.emplace_back();
    for (const Call& c : sub.rounds[t].calls) {
      Call shifted;
      shifted.path.reserve(c.path.size());
      for (Vertex v : c.path) shifted.path.push_back(v + shift);
      out.rounds[offset + t].calls.push_back(std::move(shifted));
    }
  }
}

}  // namespace

TreeBroadcastResult theorem1_tree_broadcast(int h, VertexId source) {
  assert(h >= 1);
  const VertexId big = (VertexId{1} << (h + 1)) - 1;   // |B(h)|
  const VertexId small = (VertexId{1} << h) - 1;       // |B(h-1)|
  const VertexId n = big + small;
  assert(source < n);

  if (h == 1) {
    // N = 4 is K_{1,3}; ceil(log2 N) = 2 = h+1 and the composition's
    // h+2 would overshoot.  The generic scheduler handles it.
    return tree_line_broadcast(make_theorem1_tree(1), source);
  }

  const Graph big_tree = make_complete_binary_tree(h);
  const Graph small_tree = make_complete_binary_tree(h - 1);

  BroadcastSchedule schedule;
  schedule.source = source;

  // Round 1: cross-call over the joining edge {0, big}.
  Call cross;
  if (source < big) {
    cross.path = heap_walk_to_root(source);   // source -> ... -> 0
    cross.path.push_back(big);                // -> small root
  } else {
    cross.path = heap_walk_to_root(source - big);
    for (Vertex& v : cross.path) v += big;    // source -> ... -> small root
    cross.path.push_back(0);                  // -> big root
  }
  schedule.rounds.emplace_back();
  schedule.rounds.back().calls.push_back(cross);

  // Rounds 2..: independent component broadcasts.
  const BroadcastSchedule big_part =
      tree_line_broadcast_legacy(big_tree, source < big ? source : 0);
  const BroadcastSchedule small_part =
      tree_line_broadcast_legacy(small_tree, source < big ? 0 : source - big);
  merge_component_schedule(schedule, big_part, 1, 0);
  merge_component_schedule(schedule, small_part, 1, big);

  return finish_result(std::move(schedule), n);
}

}  // namespace shc
