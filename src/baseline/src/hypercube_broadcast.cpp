#include "shc/baseline/hypercube_broadcast.hpp"

#include <cassert>

#include "shc/bits/vertex.hpp"

namespace shc {

BroadcastSchedule hypercube_binomial_broadcast(int n, Vertex source) {
  assert(n >= 1 && n <= 24);
  assert(source < cube_order(n));
  BroadcastSchedule schedule;
  schedule.source = source;
  schedule.rounds.reserve(static_cast<std::size_t>(n));

  std::vector<Vertex> informed{source};
  informed.reserve(cube_order(n));
  for (Dim i = n; i >= 1; --i) {
    Round round;
    round.calls.reserve(informed.size());
    const std::size_t frontier = informed.size();
    for (std::size_t w = 0; w < frontier; ++w) {
      Call call{{informed[w], flip(informed[w], i)}};
      informed.push_back(call.receiver());
      round.calls.push_back(std::move(call));
    }
    schedule.rounds.push_back(std::move(round));
  }
  return schedule;
}

}  // namespace shc
