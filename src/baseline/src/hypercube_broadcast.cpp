#include "shc/baseline/hypercube_broadcast.hpp"

#include <cassert>
#include <vector>

#include "shc/bits/vertex.hpp"

namespace shc {

FlatSchedule hypercube_binomial_broadcast(int n, Vertex source) {
  assert(n >= 1 && n <= 28);
  assert(source < cube_order(n));
  const std::uint64_t order = cube_order(n);

  FlatSchedule schedule;
  schedule.source = source;
  schedule.reserve(static_cast<std::size_t>(n), order - 1, 2 * (order - 1));

  std::vector<Vertex> informed;
  informed.reserve(order);
  informed.push_back(source);
  for (Dim i = n; i >= 1; --i) {
    schedule.begin_round();
    const std::size_t frontier = informed.size();
    for (std::size_t w = 0; w < frontier; ++w) {
      const Vertex receiver = flip(informed[w], i);
      schedule.add_call({informed[w], receiver});
      informed.push_back(receiver);
    }
  }
  return schedule;
}

}  // namespace shc
