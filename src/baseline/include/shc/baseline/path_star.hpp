// Provable minimum-time line-broadcast schemes for two extremal tree
// families.
//
// These instantiate Farley's result [14] that every connected graph
// admits a minimum-time broadcast under unbounded-length line calls:
//   * the path P_N via balanced interval splitting, and
//   * the star K_{1,N-1} — the paper's minimum-*edge* k-mlbg for any
//     k >= 2 (Section 2) — via switching through the center.
// Both complete in exactly ceil(log2 N) rounds from any source; tests
// validate the schedules mechanically.
#pragma once

#include "shc/graph/graph.hpp"
#include "shc/sim/flat_schedule.hpp"

namespace shc {

/// Minimum-time line broadcast on the path 0-1-...-N-1 from `source`.
/// Round calls are confined to disjoint intervals, hence edge-disjoint.
/// Call lengths can reach ~N/2 (this is a k = N-1 scheme).
/// Pre: N >= 1, source < N.
[[nodiscard]] FlatSchedule path_line_broadcast(VertexId N, VertexId source);

/// Minimum-time line broadcast on the star with center 0 and leaves
/// 1..N-1 from `source`.  Every call is length 1 (from the center) or
/// length 2 (leaf to leaf, switching through the center); calls in one
/// round are edge-disjoint because callers and receivers are distinct
/// leaves.  This shows the star is a 2-mlbg.  Pre: N >= 2, source < N.
[[nodiscard]] FlatSchedule star_line_broadcast(VertexId N, VertexId source);

}  // namespace shc
