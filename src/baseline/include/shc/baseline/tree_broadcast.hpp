// Line broadcast on arbitrary trees — the substrate behind the paper's
// Theorem 1 (the Figure-1 degree-3 tree family is a k-mlbg once k
// reaches the diameter) and behind Farley's general result [14] that
// every connected graph lies in G_{N-1}.
//
// The scheduler is a territory-splitting greedy: each round, every
// informed vertex owning uninformed territory places one call to a
// balance point of its territory (the vertex whose BFS subtree is
// closest to half the territory).  Territories are the Voronoi regions
// of the informed set, so concurrent calls live in vertex-disjoint
// regions and are edge-disjoint by construction — feasibility is
// guaranteed; optimality (= ceil(log2 N) rounds) is reported, not
// assumed, and certified by tests on the families the paper needs
// (paths, stars, caterpillars, complete binary trees, Figure-1 trees).
#pragma once

#include "shc/graph/graph.hpp"
#include "shc/sim/flat_schedule.hpp"

namespace shc {

/// Outcome of the tree scheduler.  The schedule is exposed in the flat
/// arena form; the scheduler's speculative carve search still plans
/// rounds in the legacy representation internally and converts once.
struct TreeBroadcastResult {
  FlatSchedule schedule;
  int rounds = 0;
  int minimum_rounds = 0;  ///< ceil(log2 N)
  bool achieved_minimum = false;
  int max_call_length = 0;
};

/// Schedules a line broadcast (unbounded call length) on `tree` from
/// `source`.  Pre: is_tree(tree), source < N.  The schedule is always
/// feasible; achieved_minimum reports whether it is minimum-time.
[[nodiscard]] TreeBroadcastResult tree_line_broadcast(const Graph& tree,
                                                      VertexId source);

/// Minimum-time broadcast on the Theorem-1 / Figure-1 tree
/// (make_theorem1_tree(h)) from any source, by composition:
///   round 1: the source calls the root of the *other* component tree
///            (crossing the joining edge once, call length <= h+1);
///   rounds 2..h+2: the two complete binary trees broadcast internally
///            and independently — B(h) from the source side takes h+1
///            rounds, B(h-1) from its root takes h rounds.
/// Total 1 + (h+1) = h+2 = ceil(log2(3*2^h - 2)) rounds for h >= 2, so
/// the tree is a k-mlbg for every k >= 2h (Theorem 1); all calls stay
/// within the diameter 2h.  h = 1 (the tree is K_{1,3}) falls back to
/// the generic scheduler.  Pre: h >= 1, source < 3*2^h - 2.
[[nodiscard]] TreeBroadcastResult theorem1_tree_broadcast(int h, VertexId source);

}  // namespace shc
