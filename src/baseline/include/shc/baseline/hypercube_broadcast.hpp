// The classic binomial-tree broadcast on the full n-cube Q_n — the
// paper's point of departure: Q_n is a 1-mlbg (store-and-forward,
// Definition 1 with k = 1) with maximum degree n.  Sparse hypercubes
// trade k > 1 for degree ~ k * n^(1/k).
#pragma once

#include "shc/sim/flat_schedule.hpp"

namespace shc {

/// Minimum-time 1-line (store-and-forward) broadcast on Q_n from
/// `source`: in round t every informed vertex calls its neighbor across
/// dimension n - t + 1.  n rounds, exact doubling, all calls length 1,
/// produced into one flat arena (zero per-call allocations).
/// Pre: 1 <= n <= 28.
[[nodiscard]] FlatSchedule hypercube_binomial_broadcast(int n, Vertex source);

}  // namespace shc
