#include "shc/gossip/symbolic_gossip.hpp"

#include <stdexcept>

namespace shc {

SymbolicSchedule hypercube_exchange_gossip_symbolic(int n) {
  if (n < 1 || n > kMaxCubeDim) {
    throw std::invalid_argument(
        "hypercube_exchange_gossip_symbolic requires 1 <= n <= " +
        std::to_string(kMaxCubeDim));
  }
  SymbolicScheduleBuilder builder(0, n);
  for (Dim i = n; i >= 1; --i) {
    builder.begin_round();
    CallGroup g;
    g.prefix = 0;  // coordinate i pinned to 0: the lower endpoint calls
    g.free_mask = mask_low(n) & ~dim_bit(i);
    g.count = cube_order(n - 1);
    const Vertex pattern[2] = {0, dim_bit(i)};
    builder.end_call_group(g, pattern);
    builder.end_round();
  }
  return std::move(builder).take();
}

SymbolicSchedule make_symbolic_gossip_schedule(const SparseHypercubeSpec& spec,
                                               Vertex root) {
  const SymbolicSchedule forward = make_symbolic_broadcast_schedule(spec, root);
  SymbolicScheduleBuilder builder(root, spec.n());
  emit_gather_broadcast_gossip_symbolic(forward, builder);
  return std::move(builder).take();
}

SymbolicGossipCertification certify_gossip_symbolic(
    const SparseHypercubeSpec& spec, Vertex root,
    const SymbolicGossipOptions& sopt) {
  if (sopt.threads <= 0) {
    throw std::invalid_argument(
        "certify_gossip_symbolic: threads must be >= 1 (got " +
        std::to_string(sopt.threads) + ")");
  }
  SymbolicGossipCertification cert;
  if (root >= spec.num_vertices()) {
    // Same report the exact validators would give for a bad schedule
    // source; guarded here so the producer's throw never preempts it.
    cert.report.ok = false;
    cert.report.error = "source out of range";
    return cert;
  }
  const SpecView view(spec);
  SymbolicGossipValidator<SpecView> sink(view, spec.k(), sopt);
  try {
    const SymbolicSchedule forward = make_symbolic_broadcast_schedule(spec, root);
    emit_gather_broadcast_gossip_symbolic(forward, sink);
  } catch (const std::exception& e) {
    cert.checks = sink.stats();
    if (!sink.aborted()) {
      // Producer-side failure (frontier caps, pathological splits):
      // surface it as a failed report rather than an escaped exception.
      cert.report.ok = false;
      cert.report.error = std::string("symbolic producer: ") + e.what();
      return cert;
    }
    // The sink failed first and the producer tripped over the abort —
    // fall through to the sink's own report.
  }
  cert.report = sink.finish();
  cert.checks = sink.stats();
  return cert;
}

SymbolicGossipCertification certify_exchange_gossip_symbolic(
    int n, const SymbolicGossipOptions& sopt) {
  if (sopt.threads <= 0) {
    throw std::invalid_argument(
        "certify_exchange_gossip_symbolic: threads must be >= 1 (got " +
        std::to_string(sopt.threads) + ")");
  }
  SymbolicGossipCertification cert;
  if (n < 1 || n > kMaxCubeDim) {
    cert.report.ok = false;
    cert.report.error = "cube dimension out of range";
    return cert;
  }
  const CubeOracle oracle(n);
  SymbolicGossipValidator<CubeOracle> sink(oracle, /*k=*/1, sopt);
  const SymbolicSchedule schedule = hypercube_exchange_gossip_symbolic(n);
  for (const SymbolicRound& round : schedule.rounds) {
    if (sink.aborted()) break;
    sink.begin_round();
    for (std::size_t g = 0; g < round.groups.size(); ++g) {
      sink.end_call_group(round.groups[g], round.pattern_of_group(g));
    }
    sink.end_round();
  }
  cert.report = sink.finish();
  cert.checks = sink.stats();
  return cert;
}

}  // namespace shc
