#include "shc/gossip/gossip.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "shc/bits/bitstring.hpp"

namespace shc {
namespace {

/// Per-vertex knowledge as packed token bitsets.
class KnowledgeMatrix {
 public:
  explicit KnowledgeMatrix(std::uint64_t n)
      : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {
    for (std::uint64_t v = 0; v < n; ++v) {
      bits_[v * words_ + v / 64] |= std::uint64_t{1} << (v % 64);
    }
  }

  void exchange(std::uint64_t a, std::uint64_t b) {
    std::uint64_t* ra = &bits_[a * words_];
    std::uint64_t* rb = &bits_[b * words_];
    for (std::size_t w = 0; w < words_; ++w) {
      const std::uint64_t u = ra[w] | rb[w];
      ra[w] = u;
      rb[w] = u;
    }
  }

  [[nodiscard]] bool complete() const {
    for (std::uint64_t v = 0; v < n_; ++v) {
      const std::uint64_t* row = &bits_[v * words_];
      for (std::size_t w = 0; w + 1 < words_; ++w) {
        if (row[w] != ~std::uint64_t{0}) return false;
      }
      const std::uint64_t tail_bits = n_ - 64 * (words_ - 1);
      const std::uint64_t tail_mask =
          tail_bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail_bits) - 1;
      if ((row[words_ - 1] & tail_mask) != tail_mask) return false;
    }
    return true;
  }

 private:
  std::uint64_t n_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

struct PairKey {
  Vertex a, b;
  bool operator==(const PairKey&) const = default;
};
struct PairKeyHash {
  std::size_t operator()(const PairKey& p) const noexcept {
    std::uint64_t x = p.a * 0x9E3779B97F4A7C15ULL ^ (p.b + 0xBF58476D1CE4E5B9ULL);
    x ^= x >> 31;
    x *= 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(x ^ (x >> 29));
  }
};

PairKey canon(Vertex u, Vertex v) { return u <= v ? PairKey{u, v} : PairKey{v, u}; }

}  // namespace

GossipReport validate_gossip(const NetworkView& net, const GossipSchedule& schedule,
                             int k) {
  GossipReport rep;
  const std::uint64_t order = net.num_vertices();
  assert(order <= (std::uint64_t{1} << 13) && "knowledge matrix guarded to 2^13");

  auto fail = [&](std::string msg) {
    rep.ok = false;
    rep.error = std::move(msg);
    return rep;
  };

  KnowledgeMatrix know(order);
  std::unordered_set<PairKey, PairKeyHash> round_edges;
  std::unordered_set<Vertex> round_endpoints;

  for (std::size_t t = 0; t < schedule.rounds.size(); ++t) {
    ++rep.rounds;
    round_edges.clear();
    round_endpoints.clear();
    const std::string where = "round " + std::to_string(t + 1) + ": ";
    for (const Call& call : schedule.rounds[t].calls) {
      if (call.path.size() < 2) return fail(where + "call with no edge");
      rep.max_call_length = std::max(rep.max_call_length, call.length());
      if (call.length() > k) {
        return fail(where + "exchange longer than k=" + std::to_string(k));
      }
      const Vertex a = call.caller();
      const Vertex b = call.receiver();
      if (a >= order || b >= order) return fail(where + "endpoint out of range");
      // Each vertex joins at most one exchange per round.
      if (!round_endpoints.insert(a).second) {
        return fail(where + "vertex " + std::to_string(a) + " in two exchanges");
      }
      if (!round_endpoints.insert(b).second) {
        return fail(where + "vertex " + std::to_string(b) + " in two exchanges");
      }
      for (std::size_t i = 0; i + 1 < call.path.size(); ++i) {
        const Vertex x = call.path[i];
        const Vertex y = call.path[i + 1];
        if (x == y || !net.has_edge(x, y)) {
          return fail(where + "no edge between " + std::to_string(x) + " and " +
                      std::to_string(y));
        }
        if (!round_edges.insert(canon(x, y)).second) {
          return fail(where + "edge {" + std::to_string(x) + "," + std::to_string(y) +
                      "} used twice");
        }
      }
    }
    // Exchanges resolve simultaneously; endpoint-uniqueness makes the
    // application order irrelevant.
    for (const Call& call : schedule.rounds[t].calls) {
      know.exchange(call.caller(), call.receiver());
    }
  }

  rep.complete = know.complete();
  if (!rep.complete) return fail("gossip incomplete after all rounds");
  rep.ok = true;
  rep.minimum_time = rep.rounds == ceil_log2(order);
  return rep;
}

GossipSchedule hypercube_exchange_gossip(int n) {
  assert(n >= 1 && n <= 13);
  GossipSchedule schedule;
  schedule.rounds.reserve(static_cast<std::size_t>(n));
  for (Dim i = n; i >= 1; --i) {
    Round round;
    round.calls.reserve(cube_order(n - 1));
    for (Vertex u = 0; u < cube_order(n); ++u) {
      const Vertex v = flip(u, i);
      if (u < v) round.calls.push_back(Call{{u, v}});
    }
    schedule.rounds.push_back(std::move(round));
  }
  return schedule;
}

GossipSchedule sparse_gather_broadcast_gossip(const SparseHypercubeSpec& spec,
                                              Vertex root) {
  assert(spec.n() <= 13);
  const BroadcastSchedule forward = make_broadcast_schedule(spec, root);

  GossipSchedule schedule;
  schedule.rounds.reserve(2 * forward.rounds.size());
  // Gather: replay the broadcast backwards; every vertex has merged its
  // broadcast subtree by the time it exchanges towards the root.
  for (std::size_t t = forward.rounds.size(); t-- > 0;) {
    Round reversed;
    reversed.calls.reserve(forward.rounds[t].calls.size());
    for (const Call& c : forward.rounds[t].calls) {
      Call back;
      back.path.assign(c.path.rbegin(), c.path.rend());
      reversed.calls.push_back(std::move(back));
    }
    schedule.rounds.push_back(std::move(reversed));
  }
  // Broadcast: disseminate the root's now-complete knowledge.
  for (const Round& r : forward.rounds) schedule.rounds.push_back(r);
  return schedule;
}

}  // namespace shc
