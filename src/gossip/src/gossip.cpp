#include "shc/gossip/gossip.hpp"

#include <cassert>

namespace shc {

GossipSchedule hypercube_exchange_gossip(int n) {
  assert(n >= 1 && n <= 13);
  GossipSchedule schedule;
  const std::uint64_t matching = cube_order(n - 1);
  schedule.reserve(static_cast<std::size_t>(n), static_cast<std::size_t>(n) * matching,
                   static_cast<std::size_t>(n) * matching * 2);
  for (Dim i = n; i >= 1; --i) {
    schedule.begin_round();
    for (Vertex u = 0; u < cube_order(n); ++u) {
      const Vertex v = flip(u, i);
      if (u < v) schedule.add_call({u, v});
    }
  }
  return schedule;
}

GossipSchedule sparse_gather_broadcast_gossip(const SparseHypercubeSpec& spec,
                                              Vertex root) {
  assert(spec.n() <= 20 && "2 x 2^n flat calls are materialized");
  const FlatSchedule forward = make_broadcast_schedule(spec, root);

  GossipSchedule schedule;
  schedule.source = root;
  schedule.reserve(2 * static_cast<std::size_t>(forward.num_rounds()),
                   2 * forward.num_calls(), 2 * forward.num_path_vertices());
  // Gather: replay the broadcast backwards; every vertex has merged its
  // broadcast subtree by the time it exchanges towards the root.
  for (int t = forward.num_rounds(); t-- > 0;) {
    schedule.begin_round();
    for (const FlatSchedule::CallView c : forward.round(t)) {
      for (std::size_t i = c.size(); i-- > 0;) schedule.push_vertex(c[i]);
      schedule.end_call();
    }
  }
  // Broadcast: disseminate the root's now-complete knowledge.
  for (int t = 0; t < forward.num_rounds(); ++t) {
    schedule.begin_round();
    for (const FlatSchedule::CallView c : forward.round(t)) schedule.add_call(c);
  }
  return schedule;
}

}  // namespace shc
