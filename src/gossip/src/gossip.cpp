#include "shc/gossip/gossip.hpp"

#include <cassert>
#include <stdexcept>

namespace shc {

GossipSchedule hypercube_exchange_gossip(int n) {
  // Explicit guard, not an assert: in Release an oversized n would
  // silently build (or fail to allocate) n * 2^(n-1) concrete calls.
  if (n < 1 || n > 28) {
    throw std::invalid_argument(
        "hypercube_exchange_gossip materializes n * 2^(n-1) concrete "
        "exchanges; n must be in [1, 28] — use "
        "hypercube_exchange_gossip_symbolic (shc/gossip/symbolic_gossip.hpp) "
        "for the subcube-batched form up to n <= 63");
  }
  GossipSchedule schedule;
  const std::uint64_t matching = cube_order(n - 1);
  schedule.reserve(static_cast<std::size_t>(n), static_cast<std::size_t>(n) * matching,
                   static_cast<std::size_t>(n) * matching * 2);
  for (Dim i = n; i >= 1; --i) {
    schedule.begin_round();
    for (Vertex u = 0; u < cube_order(n); ++u) {
      const Vertex v = flip(u, i);
      if (u < v) schedule.add_call({u, v});
    }
  }
  return schedule;
}

GossipSchedule sparse_gather_broadcast_gossip(const SparseHypercubeSpec& spec,
                                              Vertex root) {
  if (spec.n() > 20) {
    throw std::invalid_argument(
        "sparse_gather_broadcast_gossip materializes 2 * (2^n - 1) concrete "
        "exchanges; n must be <= 20 — use certify_gossip_symbolic "
        "(shc/gossip/symbolic_gossip.hpp) to certify the subcube-batched "
        "form up to n <= 63");
  }
  const FlatSchedule forward = make_broadcast_schedule(spec, root);

  GossipSchedule schedule;
  schedule.source = root;
  schedule.reserve(2 * static_cast<std::size_t>(forward.num_rounds()),
                   2 * forward.num_calls(), 2 * forward.num_path_vertices());
  // Gather: replay the broadcast backwards; every vertex has merged its
  // broadcast subtree by the time it exchanges towards the root.
  for (int t = forward.num_rounds(); t-- > 0;) {
    schedule.begin_round();
    for (const FlatSchedule::CallView c : forward.round(t)) {
      for (std::size_t i = c.size(); i-- > 0;) schedule.push_vertex(c[i]);
      schedule.end_call();
    }
  }
  // Broadcast: disseminate the root's now-complete knowledge.
  for (int t = 0; t < forward.num_rounds(); ++t) {
    schedule.begin_round();
    for (const FlatSchedule::CallView c : forward.round(t)) schedule.add_call(c);
  }
  return schedule;
}

}  // namespace shc
