// Symbolic gossip — certifying all-to-all exchange past the 2^13 wall.
//
// The exact gossip validator tracks N^2 knowledge bits (N <= 2^13) and
// the sampled validator only spot-checks token columns.  The symbolic
// engine certifies gossip completion *algebraically* on the same
// subcube-batched CallGroup rounds the broadcast engine uses, via two
// cooperating layers:
//
//   * structure (this file + sim/symbolic_validator.hpp): every group
//     passes the shared symbolic clauses (pattern well-formedness,
//     support discipline, representative edges, count == subcube size);
//     per round, the 2R endpoint subcubes must be pairwise disjoint
//     (gossip's endpoint-uniqueness rule — in an exchange both ends
//     "receive") and concurrent multi-hop groups must be edge-disjoint.
//     Both disjointness clauses consume the dyadic occupancy ledger
//     (sim/occupancy_ledger.hpp) by default — O(total pieces * n) with
//     exact double-claim witnesses — with the original volume-sweep
//     candidate analysis behind SymbolicGossipOptions::collision_mode
//     for parity testing;
//   * knowledge (sim/knowledge_classes.hpp): vertices partition into
//     classes of equal *relative* knowledge; a group's exchange pairs
//     caller u with u ^ delta, both sides absorb the union of the two
//     classes' offset sets (computed once, translated for the receiver
//     side; overlapping knowledge deduplicates by subcube subtraction),
//     classes split when a group bisects them and re-coalesce when
//     their knowledge comes out equal.  The endgame: every class's
//     knowledge must be the full cube covered exactly once.
//
// A seeded sample mode expands random groups into concrete exchanges
// and replays them through the exact validator's structural round
// kernel against the real adjacency oracle — the same bit-level
// algebra-vs-graph spot check the broadcast engine uses.
//
// On clean runs the GossipReport is bit-for-bit the exact
// validate_gossip's (enforced by parity tests for n <= 13, k in
// {2, 3, 4}, both producers); failure strings are the symbolic engine's
// own except "gossip incomplete after all rounds", which matches
// exactly.  Producers ship for both schemes: dimension-exchange on the
// full cube (one group per round — the O(1)-frontier exactness anchor)
// and gather-broadcast on a sparse hypercube (the time-reversed
// symbolic Broadcast_k followed by the forward one).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "shc/bits/checked.hpp"
#include "shc/gossip/gossip.hpp"
#include "shc/mlbg/symbolic_broadcast.hpp"
#include "shc/obs/recorder.hpp"
#include "shc/sim/knowledge_classes.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/occupancy_ledger.hpp"
#include "shc/sim/subcube.hpp"
#include "shc/sim/symbolic_schedule.hpp"
#include "shc/sim/symbolic_validator.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {

/// Knobs of the symbolic gossip checks (safe defaults; caps fail
/// explicitly instead of thrashing on adversarial input).  The
/// sampling, collision, and threading knobs shared with the broadcast
/// engine live in the CommonCheckOptions base (check_options.hpp) —
/// the inherited spellings (`sopt.threads`, `sopt.collision_mode`,
/// ...) are the documented aliases and keep compiling unchanged; only
/// the gossip-specific knobs are declared here.
struct SymbolicGossipOptions : CommonCheckOptions {
  /// Budgets and caps of the knowledge-class partition.
  KnowledgeClassOptions classes;
};

/// Group/knowledge statistics of one symbolic gossip run.  The union
/// cache and reduce-tree effort counters live in `classes`
/// (KnowledgeClassStats) — the partition owns that machinery.
struct SymbolicGossipStats {
  std::uint64_t groups = 0;            ///< call groups consumed
  std::uint64_t peak_round_groups = 0;
  std::uint64_t collision_candidates = 0;  ///< pairs given exact edge analysis
  std::uint64_t occupancy_claims = 0;  ///< subcubes consumed by the ledger
  std::uint64_t sampled_calls = 0;     ///< concrete exchanges replayed
  std::uint64_t rounds_checked = 0;  ///< rounds that passed every per-round clause
  KnowledgeClassStats classes;         ///< partition size/effort counters
};

/// SymbolicRoundSink that certifies a gossip schedule as its rounds
/// stream by.  The oracle must be a full 2^n-vertex cube (SpecView or
/// CubeOracle).
template <SymbolicOracle Net>
class SymbolicGossipValidator {
 public:
  SymbolicGossipValidator(const Net& net, int k,
                          const SymbolicGossipOptions& sopt = {})
      : net_(&net),
        k_(k),
        sopt_(sopt),
        n_(net.cube_dim()),
        order_(net.num_vertices()),
        state_(n_ >= 1 && n_ <= kMaxCubeDim ? n_ : 1, sopt.classes),
        rng_(sopt.sample_seed),
        occupancy_(n_ >= 1 && n_ <= kMaxCubeDim ? n_ : 1) {
    if (n_ < 1 || n_ > kMaxCubeDim || order_ != cube_order(n_)) {
      fail("symbolic gossip validator requires a full 2^n-vertex cube oracle");
      return;
    }
    if (k < 1) {
      fail("symbolic gossip validator requires k >= 1");
      return;
    }
    if (sopt.pool) {
      pool_ = sopt.pool;
    } else if (sopt.threads > 1) {
      owned_pool_ = std::make_unique<WorkerPool>(sopt.threads);
      pool_ = owned_pool_.get();
    }
    // The knowledge partition farms its heavy reductions (union
    // canonicalization, class re-coalesce merge trees) over the same
    // pool; reports are bit-for-bit identical at every thread count.
    state_.set_pool(pool_);
  }

  // ---- SymbolicRoundSink interface ------------------------------------

  void begin_round() {
    if (failed_) return;
    ++rep_.rounds;
    round_.groups.clear();
    round_.group_pattern.clear();
    round_.pattern_pool.clear();
    round_.pattern_off.assign(1, 0);
    volumes_.clear();
    endpoints_.clear();
    exchanges_.clear();
    round_multihop_ = false;
  }

  void end_call_group(const CallGroup& g, std::span<const Vertex> pattern) {
    if (failed_) return;
    // `where` is built lazily (round_where()): this method is the
    // per-group hot path and the prefix is only read on failure.

    Vertex span_mask = 0;
    int length = 0;
    if (std::string msg = detail::check_symbolic_call_group(
            *net_, n_, k_, /*vertex_disjoint=*/false, g, pattern, span_mask,
            length);
        !msg.empty()) {
      return fail(round_where() + msg);
    }
    const Vertex delta = pattern.back();
    if (delta == 0) {
      // A pattern cycling back to its start would pair every caller
      // with itself — the exact validator rejects it as an endpoint
      // seen twice.
      return fail(round_where() + "exchange pattern returns to its caller "
                                  "(a vertex cannot exchange with itself)");
    }
    rep_.max_call_length = std::max(rep_.max_call_length, length);
    if (!checked_acc_u64(rep_.total_exchanges, g.count)) {
      return fail(round_where() + "total exchange count overflowed 64 bits");
    }
    ++stats_.groups;
    if (length >= 2) round_multihop_ = true;

    // The round-local pattern pool uses 32-bit offsets (SymbolicRound's
    // layout); refuse rather than wrap on adversarial input.
    if (round_.pattern_pool.size() + pattern.size() >
        std::numeric_limits<std::uint32_t>::max()) {
      return fail(round_where() + "round pattern pool exceeds 32-bit offsets");
    }
    round_.groups.push_back(g);
    round_.group_pattern.push_back(
        static_cast<std::uint32_t>(round_.num_patterns()));
    round_.pattern_pool.insert(round_.pattern_pool.end(), pattern.begin(),
                               pattern.end());
    round_.pattern_off.push_back(
        static_cast<std::uint32_t>(round_.pattern_pool.size()));
    if (sopt_.collision_mode == CollisionMode::kPairSweep) {
      volumes_.push_back(
          Subcube{g.prefix & ~span_mask, g.free_mask | span_mask});
    }
    endpoints_.push_back(g.callers());
    endpoints_.push_back(Subcube{g.prefix ^ delta, g.free_mask});
    exchanges_.push_back({g.callers(), delta});
  }

  void end_round() {
    if (failed_) return;
    const std::string where = round_where();
    // The exact validator accepts empty rounds (they just burn time);
    // mirror it so clean-run parity holds on degenerate inputs too.
    if (round_.groups.empty()) return;

    stats_.peak_round_groups = std::max(
        stats_.peak_round_groups,
        static_cast<std::uint64_t>(round_.groups.size()));

    {
      SHC_TRACE_SCOPE("endpoint_check");
      if (!check_endpoint_uniqueness(where)) return;
    }
    if (round_multihop_) {
      SHC_TRACE_SCOPE("collision_check");
      if (!check_edge_collisions(where)) return;
    }
    if (sopt_.sample_groups_per_round > 0) {
      SHC_TRACE_SCOPE("sampled_replay");
      if (!sampled_replay(where)) return;
    }

    {
      SHC_TRACE_SCOPE("apply_round");
      if (std::string err = state_.apply_round(exchanges_); !err.empty()) {
        return fail(where + err);
      }
    }
    stats_.classes = state_.stats();
    saturating_acc_u64(stats_.rounds_checked, 1);
    SHC_TRACE_COUNTER("round_groups", round_.groups.size());
    SHC_TRACE_COUNTER("groups_total", stats_.groups);
    SHC_TRACE_COUNTER("knowledge_classes", stats_.classes.classes);
    SHC_TRACE_COUNTER("union_cache_hits", stats_.classes.union_cache_hits);
    SHC_TRACE_COUNTER("occupancy_claims", stats_.occupancy_claims);
    SHC_TRACE_ROUND(rep_.rounds);
  }

  [[nodiscard]] bool aborted() const noexcept { return failed_; }

  // ---- results ---------------------------------------------------------

  /// Final verdict: the knowledge endgame plus completion/minimum-time.
  /// Idempotent.
  [[nodiscard]] GossipReport finish() {
    if (finished_) return rep_;
    finished_ = true;
    stats_.classes = state_.stats();
    if (failed_) return rep_;
    SHC_TRACE_SCOPE("endgame");
    rep_.complete = state_.all_complete();
    if (!rep_.complete) {
      fail("gossip incomplete after all rounds");
      return rep_;
    }
    rep_.ok = true;
    rep_.minimum_time = rep_.rounds == ceil_log2(order_);
    return rep_;
  }

  [[nodiscard]] const SymbolicGossipStats& stats() const noexcept {
    return stats_;
  }

 private:
  void fail(const std::string& msg) {
    if (failed_) return;
    failed_ = true;
    rep_.ok = false;
    rep_.error = msg;
  }

  /// Error-message prefix of the round in progress — failure paths and
  /// end_round only, never the per-group hot loop.
  [[nodiscard]] std::string round_where() const {
    return "round " + std::to_string(rep_.rounds) + ": ";
  }

  [[nodiscard]] std::span<const Vertex> pattern_of(std::size_t gi) const noexcept {
    return round_.pattern_of_group(gi);
  }

  /// Gossip's receiver-uniqueness: both ends of an exchange are
  /// endpoints, so the 2R endpoint subcubes of a round must be pairwise
  /// disjoint.  (Within one group the two cubes are disjoint by
  /// delta != 0 outside the free mask, so any reported overlap is a
  /// genuine violation.)  Ledger mode consumes the endpoint subcubes
  /// into one occupancy family; pair-sweep mode keeps the original
  /// candidate enumeration.  Identical verdicts and messages.
  bool check_endpoint_uniqueness(const std::string& where) {
    if (sopt_.collision_mode == CollisionMode::kLedger) {
      occupancy_.clear();
      for (std::size_t ei = 0; ei < endpoints_.size(); ++ei) {
        occupancy_.claim(1, endpoints_[ei].prefix, endpoints_[ei].mask,
                         static_cast<std::uint32_t>(ei / 2));
      }
      saturating_acc_u64(stats_.occupancy_claims, occupancy_.num_claims());
      const OccupancyOutcome out =
          occupancy_.check(pool_, sopt_.ledger_budget_per_claim,
                           sopt_.ledger_bucket_budget_base);
      if (out.status == OccupancyStatus::kBudgetExceeded) {
        fail(where + "endpoint disjointness analysis exceeded its budget "
                     "(ledger bucket budget " +
             std::to_string(out.budget) +
             "; raise SymbolicGossipOptions::ledger_budget_per_claim)");
        return false;
      }
      if (out.status == OccupancyStatus::kDoubleClaim) {
        fail(where + "a vertex takes part in two exchanges "
                     "(endpoint subcubes overlap)");
        return false;
      }
      return true;
    }
    const auto pairs = find_overlapping_pairs(
        endpoints_, sopt_.collision_budget, sopt_.max_collision_pairs);
    if (!pairs) {
      fail(where + "endpoint disjointness analysis exceeded its budget "
                   "(node budget " +
           std::to_string(sopt_.collision_budget) +
           "; raise SymbolicGossipOptions::collision_budget or switch to "
           "CollisionMode::kLedger)");
      return false;
    }
    if (!pairs->empty()) {
      fail(where + "a vertex takes part in two exchanges "
                   "(endpoint subcubes overlap)");
      return false;
    }
    return true;
  }

  /// Per-round edge disjointness, dispatched on the configured mode.
  bool check_edge_collisions(const std::string& where) {
    if (sopt_.collision_mode == CollisionMode::kLedger) {
      occupancy_.clear();
      detail::claim_round_edge_subcubes(round_, occupancy_);
      saturating_acc_u64(stats_.occupancy_claims, occupancy_.num_claims());
      const OccupancyOutcome out =
          occupancy_.check(pool_, sopt_.ledger_budget_per_claim,
                           sopt_.ledger_bucket_budget_base);
      if (out.status == OccupancyStatus::kBudgetExceeded) {
        fail(where + "collision analysis exceeded its budget (ledger bucket "
                     "budget " +
             std::to_string(out.budget) +
             "; raise SymbolicGossipOptions::ledger_budget_per_claim)");
        return false;
      }
      if (out.status == OccupancyStatus::kDoubleClaim) {
        fail(where + "edge collision between concurrent call groups");
        return false;
      }
      return true;
    }
    const auto pairs = find_overlapping_pairs(volumes_, sopt_.collision_budget,
                                              sopt_.max_collision_pairs);
    if (!pairs) {
      fail(where + "collision analysis exceeded its budget (node budget " +
           std::to_string(sopt_.collision_budget) +
           "; raise SymbolicGossipOptions::collision_budget or switch to "
           "CollisionMode::kLedger)");
      return false;
    }
    saturating_acc_u64(stats_.collision_candidates, pairs->size());
    const auto failure = detail::first_failure(
        pool_, pairs->size(), [&](std::size_t i) {
          const auto& [a, b] = (*pairs)[i];
          return detail::symbolic_pair_collision_msg(
              round_.groups[a], pattern_of(a), round_.groups[b], pattern_of(b),
              /*vertex_disjoint=*/false);
        });
    if (failure) {
      fail(where + failure->second);
      return false;
    }
    return true;
  }

  /// Expands a seeded random subset of groups to concrete exchanges and
  /// replays them through the exact validator's structural round kernel.
  bool sampled_replay(const std::string& where) {
    const std::uint64_t want = std::min<std::uint64_t>(
        sopt_.sample_groups_per_round, round_.groups.size());
    std::vector<std::size_t> chosen;
    while (chosen.size() < want) {
      const std::size_t gi = static_cast<std::size_t>(
          rng_() % static_cast<std::uint64_t>(round_.groups.size()));
      if (std::find(chosen.begin(), chosen.end(), gi) == chosen.end()) {
        chosen.push_back(gi);
      }
    }
    FlatSchedule mini;
    mini.begin_round();
    for (const std::size_t gi : chosen) {
      const CallGroup& g = round_.groups[gi];
      const std::span<const Vertex> patt = pattern_of(gi);
      std::vector<Vertex> picked;
      for (std::uint64_t c = 0; c < sopt_.sample_calls_per_group; ++c) {
        const Vertex assign = rng_() & g.free_mask;
        if (std::find(picked.begin(), picked.end(), assign) != picked.end()) {
          continue;  // duplicate free-assignment: same concrete exchange
        }
        picked.push_back(assign);
        const Vertex u = g.prefix | assign;
        for (const Vertex x : patt) mini.push_vertex(u ^ x);
        mini.end_call_unchecked();
        ++stats_.sampled_calls;
      }
    }
    int scratch_len = 0;
    std::uint64_t scratch_count = 0;
    std::unordered_set<detail::EdgeKey, detail::EdgeKeyHash> edges;
    std::unordered_set<Vertex> ends;
    const std::string err = detail::check_gossip_round_structure(
        *net_, mini.round(0), k_, rep_.rounds, scratch_len, scratch_count,
        edges, ends);
    if (!err.empty()) {
      fail(where + "sampled concrete replay failed: " + err);
      return false;
    }
    return true;
  }

  const Net* net_;
  int k_;
  SymbolicGossipOptions sopt_;
  int n_;
  std::uint64_t order_;
  KnowledgeClassPartition state_;
  std::mt19937_64 rng_;
  /// Check-sharding pool: sopt.pool when the caller lends one (server
  /// reuse across queries), else owned_pool_ iff sopt.threads > 1.
  WorkerPool* pool_ = nullptr;
  std::unique_ptr<WorkerPool> owned_pool_;

  // Round-local group storage: one recycled SymbolicRound (patterns
  // pooled in its 32-bit-offset layout; no deduplication needed here).
  SymbolicRound round_;
  std::vector<Subcube> volumes_;  ///< kPairSweep mode only
  std::vector<Subcube> endpoints_;
  OccupancyLedger occupancy_;     ///< kLedger mode
  std::vector<KnowledgeClassPartition::Exchange> exchanges_;
  bool round_multihop_ = false;

  GossipReport rep_;
  SymbolicGossipStats stats_;
  bool failed_ = false;
  bool finished_ = false;
};

static_assert(SymbolicRoundSink<SymbolicGossipValidator<CubeOracle>>);

/// Validates a materialized symbolic gossip schedule by streaming it
/// through a SymbolicGossipValidator.
template <SymbolicOracle Net>
[[nodiscard]] GossipReport validate_gossip_symbolic(
    const Net& net, const SymbolicSchedule& schedule, int k,
    const SymbolicGossipOptions& sopt = {}, SymbolicGossipStats* stats = nullptr) {
  if (schedule.n != net.cube_dim()) {
    GossipReport rep;
    rep.ok = false;
    rep.error = "symbolic schedule dimension " + std::to_string(schedule.n) +
                " does not match the oracle's " + std::to_string(net.cube_dim());
    if (stats) *stats = {};
    return rep;
  }
  SymbolicGossipValidator<Net> sink(net, k, sopt);
  for (const SymbolicRound& round : schedule.rounds) {
    if (sink.aborted()) break;
    sink.begin_round();
    for (std::size_t g = 0; g < round.groups.size(); ++g) {
      sink.end_call_group(round.groups[g], round.pattern_of_group(g));
    }
    sink.end_round();
  }
  const GossipReport rep = sink.finish();
  if (stats) *stats = sink.stats();
  return rep;
}

// ---- symbolic producers ------------------------------------------------

/// Dimension-exchange gossip on the full Q_n as a symbolic schedule:
/// round t is ONE call group — callers are the 2^(n-1) vertices with
/// coordinate n-t+1 equal to 0 (the lower endpoints, matching the
/// concrete producer), pattern {0, dim_bit}.  Knowledge frontiers stay
/// O(1) subcubes throughout, so certification is O(n) work total.
/// Admits n <= 63; the expansion for n <= 28 is call-for-call identical
/// to hypercube_exchange_gossip.
[[nodiscard]] SymbolicSchedule hypercube_exchange_gossip_symbolic(int n);

/// Emits gather-broadcast gossip symbolically into any
/// SymbolicRoundSink: the rounds of `forward` (a symbolic Broadcast_k
/// schedule) replayed in reverse order with each group's pattern
/// time-reversed (the original receivers call back toward the
/// original callers), then the forward rounds verbatim.  2R rounds
/// total.  Honors the sink's optional aborted() hook.
template <SymbolicRoundSink Sink>
void emit_gather_broadcast_gossip_symbolic(const SymbolicSchedule& forward,
                                           Sink& sink) {
  const auto aborted = [&]() -> bool {
    if constexpr (requires(const Sink& s) {
                    { s.aborted() } -> std::convertible_to<bool>;
                  }) {
      return sink.aborted();
    } else {
      return false;
    }
  };
  std::vector<Vertex> rev;
  for (std::size_t t = forward.rounds.size(); t-- > 0;) {
    if (aborted()) return;
    const SymbolicRound& round = forward.rounds[t];
    sink.begin_round();
    {
      // Covers emission plus the sink's streamed per-group checks; the
      // sink's own end_round phases land outside this scope.
      SHC_TRACE_SCOPE("produce_round");
      for (std::size_t gi = 0; gi < round.groups.size(); ++gi) {
        const CallGroup& g = round.groups[gi];
        const std::span<const Vertex> patt = round.pattern_of_group(gi);
        const Vertex back = patt.empty() ? 0 : patt.back();
        CallGroup r;
        r.prefix = g.prefix ^ back;
        r.free_mask = g.free_mask;
        r.count = g.count;
        rev.resize(patt.size());
        for (std::size_t j = 0; j < patt.size(); ++j) {
          rev[j] = patt[patt.size() - 1 - j] ^ back;
        }
        sink.end_call_group(r, rev);
      }
    }
    sink.end_round();
  }
  for (const SymbolicRound& round : forward.rounds) {
    if (aborted()) return;
    sink.begin_round();
    {
      SHC_TRACE_SCOPE("produce_round");
      for (std::size_t gi = 0; gi < round.groups.size(); ++gi) {
        sink.end_call_group(round.groups[gi], round.pattern_of_group(gi));
      }
    }
    sink.end_round();
  }
}

/// Materializes the whole symbolic gather-broadcast gossip schedule for
/// `spec` from `root` (memory proportional to twice the broadcast group
/// count; admits n <= 63).  Expand with GossipSchedule::from_symbolic
/// for n <= 28 parity tests.
[[nodiscard]] SymbolicSchedule make_symbolic_gossip_schedule(
    const SparseHypercubeSpec& spec, Vertex root);

/// Outcome of a symbolic gossip production + validation run.
struct SymbolicGossipCertification {
  GossipReport report;        ///< same shape as validate_gossip's
  SymbolicGossipStats checks;
};

/// Runs gather-broadcast gossip on `spec` from `root` through the fully
/// symbolic pipeline: the symbolic Broadcast_k schedule is produced
/// once, then its time-reversal plus itself stream into a
/// SymbolicGossipValidator over the implicit SpecView oracle
/// (k = spec.k()).  No concrete exchange ever exists outside the seeded
/// sample replays; admits n <= 63 (2^64 - 2 exchanges at the limit).
[[nodiscard]] SymbolicGossipCertification certify_gossip_symbolic(
    const SparseHypercubeSpec& spec, Vertex root,
    const SymbolicGossipOptions& sopt = {});

/// Same pipeline for dimension-exchange gossip on the full Q_n
/// (k = 1).  O(n) groups; the exactness anchor — and the checked-
/// arithmetic boundary: the total exchange count n * 2^(n-1) overflows
/// 64 bits for n >= 60, where the engine refuses explicitly instead of
/// wrapping (gather-broadcast, at 2 * (2^n - 1) exchanges, fits the
/// full n <= 63 range).
[[nodiscard]] SymbolicGossipCertification certify_exchange_gossip_symbolic(
    int n, const SymbolicGossipOptions& sopt = {});

}  // namespace shc
