// Gossip (all-to-all exchange) under the k-line model — the paper's
// Section-5 future-work direction ("it should be promising to
// investigate minimum-time gossip graphs [17] under our model").
//
// Model: every vertex starts with one token.  Per round, calls are
// placed exactly as in k-line broadcast (edge-disjoint paths of <= k
// edges), but a call is a bidirectional *exchange*: afterwards both
// endpoints know the union of their token sets.  A gossip completes
// when every vertex knows every token; the trivial lower bound is
// ceil(log2 N) rounds (each vertex's knowledge at most doubles).
//
// Schemes provided:
//   * hypercube_exchange_gossip — the classic dimension-exchange on the
//     full Q_n: n rounds of perfect dim-i matchings, k = 1.  Optimal.
//   * sparse_gather_broadcast_gossip — on a sparse hypercube: reverse
//     the Broadcast_k schedule to accumulate all tokens at the source
//     (n rounds), then broadcast them back (n rounds): 2n rounds total
//     with calls of length <= k.  Whether n rounds are achievable on
//     o(n)-degree graphs is precisely the open problem; the gossip
//     bench (E13) reports the measured gap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "shc/bits/bitstring.hpp"
#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/flat_schedule.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/validator.hpp"

namespace shc {

/// A gossip schedule reuses the flat round/call structure; calls are
/// interpreted as exchanges (direction is irrelevant, source unused).
using GossipSchedule = FlatSchedule;

/// Validation outcome for a gossip schedule.
struct GossipReport {
  bool ok = false;
  std::string error;        ///< empty iff ok
  int rounds = 0;
  bool complete = false;    ///< every vertex knows every token
  bool minimum_time = false;  ///< complete in exactly ceil(log2 N) rounds
  int max_call_length = 0;

  /// Exchanges (calls) across all rounds.  Explicitly 64-bit: the
  /// symbolic gossip engine certifies schedules of up to 2^64 - 2
  /// exchanges and refuses with an explicit error beyond that, rather
  /// than wrapping.
  std::uint64_t total_exchanges = 0;

  /// 0 for the exact validator.  For validate_gossip_sampled: how many
  /// token columns were tracked — `complete` then means "every sampled
  /// token reached every vertex", a spot check, not a proof.
  std::uint64_t sampled_tokens = 0;

  /// Bit-for-bit comparability: the symbolic gossip validator is
  /// required (and tested) to reproduce the exact validator's report on
  /// the shared range, including clean-run counters.
  friend bool operator==(const GossipReport&, const GossipReport&) = default;
};

namespace detail {

/// Per-vertex knowledge as packed token bitsets.
class KnowledgeMatrix {
 public:
  explicit KnowledgeMatrix(std::uint64_t n)
      : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {
    for (std::uint64_t v = 0; v < n; ++v) {
      bits_[v * words_ + v / 64] |= std::uint64_t{1} << (v % 64);
    }
  }

  void exchange(std::uint64_t a, std::uint64_t b) {
    std::uint64_t* ra = &bits_[a * words_];
    std::uint64_t* rb = &bits_[b * words_];
    for (std::size_t w = 0; w < words_; ++w) {
      const std::uint64_t u = ra[w] | rb[w];
      ra[w] = u;
      rb[w] = u;
    }
  }

  [[nodiscard]] bool complete() const {
    for (std::uint64_t v = 0; v < n_; ++v) {
      const std::uint64_t* row = &bits_[v * words_];
      for (std::size_t w = 0; w + 1 < words_; ++w) {
        if (row[w] != ~std::uint64_t{0}) return false;
      }
      const std::uint64_t tail_bits = n_ - 64 * (words_ - 1);
      const std::uint64_t tail_mask =
          tail_bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail_bits) - 1;
      if ((row[words_ - 1] & tail_mask) != tail_mask) return false;
    }
    return true;
  }

 private:
  std::uint64_t n_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

/// Per-round structural clauses shared by the exact and sampled gossip
/// validators: call shape, length <= k, endpoint uniqueness (a vertex
/// joins at most one exchange), path range checks, edge existence, and
/// edge-disjointness.  Returns the error message (round prefix
/// included) or an empty string; updates `max_call_length`.  Keeping
/// one copy means a hardening fix cannot silently miss one validator.
template <class Net>
[[nodiscard]] std::string check_gossip_round_structure(
    const Net& net, const FlatSchedule::RoundView& round, int k,
    int round_number, int& max_call_length, std::uint64_t& total_exchanges,
    std::unordered_set<EdgeKey, EdgeKeyHash>& round_edges,
    std::unordered_set<Vertex>& round_endpoints) {
  const std::uint64_t order = net.num_vertices();
  round_edges.clear();
  round_endpoints.clear();
  const std::string where = "round " + std::to_string(round_number) + ": ";
  for (const FlatSchedule::CallView call : round) {
    if (call.size() < 2) return where + "empty or zero-length exchange";
    max_call_length = std::max(max_call_length, call.length());
    ++total_exchanges;
    if (call.length() > k) {
      return where + "exchange longer than k=" + std::to_string(k);
    }
    const Vertex a = call.caller();
    const Vertex b = call.receiver();
    if (a >= order || b >= order) return where + "endpoint out of range";
    // Each vertex joins at most one exchange per round.
    if (!round_endpoints.insert(a).second) {
      return where + "vertex " + std::to_string(a) + " in two exchanges";
    }
    if (!round_endpoints.insert(b).second) {
      return where + "vertex " + std::to_string(b) + " in two exchanges";
    }
    for (std::size_t i = 0; i + 1 < call.size(); ++i) {
      const Vertex x = call[i];
      const Vertex y = call[i + 1];
      // Mirror validate_broadcast: interior path vertices must be
      // range-checked before they reach the adjacency oracle (a
      // GraphView would index out of bounds otherwise).
      if (x >= order || y >= order) {
        return where + "path vertex out of range";
      }
      if (x == y || !net.has_edge(x, y)) {
        return where + "no edge between " + std::to_string(x) + " and " +
               std::to_string(y);
      }
      if (!round_edges.insert(edge_key(x, y)).second) {
        return where + "edge {" + std::to_string(x) + "," + std::to_string(y) +
               "} used twice";
      }
    }
  }
  return {};
}

}  // namespace detail

/// Checks a gossip schedule against `net` under the k-line constraints:
/// per round, paths valid and edge-disjoint; in gossip both endpoints
/// receive, so the receiver-uniqueness rule becomes endpoint-uniqueness:
/// a vertex takes part in at most one exchange per round.  Knowledge is
/// tracked exactly (N^2 bits; pre: N <= 2^13).  Templated over the
/// adjacency oracle like validate_broadcast.
template <AdjacencyOracle Net>
[[nodiscard]] GossipReport validate_gossip(const Net& net,
                                           const GossipSchedule& schedule, int k) {
  GossipReport rep;
  const std::uint64_t order = net.num_vertices();

  auto fail = [&](std::string msg) {
    rep.ok = false;
    rep.error = std::move(msg);
    return rep;
  };

  // Hard guard, not an assert: in Release an oversized oracle would
  // silently allocate the O(N^2)-bit knowledge matrix.
  if (order > (std::uint64_t{1} << 13)) {
    return fail("network order " + std::to_string(order) +
                " exceeds the gossip validator limit 2^13 (exact knowledge "
                "tracking costs N^2 bits); use validate_gossip_sampled for "
                "a seeded spot check at scale");
  }

  detail::KnowledgeMatrix know(order);
  std::unordered_set<detail::EdgeKey, detail::EdgeKeyHash> round_edges;
  std::unordered_set<Vertex> round_endpoints;

  for (int t = 0; t < schedule.num_rounds(); ++t) {
    ++rep.rounds;
    const FlatSchedule::RoundView round = schedule.round(t);
    std::string err = detail::check_gossip_round_structure(
        net, round, k, t + 1, rep.max_call_length, rep.total_exchanges,
        round_edges, round_endpoints);
    if (!err.empty()) return fail(std::move(err));
    // Exchanges resolve simultaneously; endpoint-uniqueness makes the
    // application order irrelevant.
    for (const FlatSchedule::CallView call : round) {
      know.exchange(call.caller(), call.receiver());
    }
  }

  rep.complete = know.complete();
  if (!rep.complete) return fail("gossip incomplete after all rounds");
  rep.ok = true;
  rep.minimum_time = rep.rounds == ceil_log2(order);
  return rep;
}

/// Sampled-knowledge gossip validation — the documented escape hatch
/// past the exact validator's N <= 2^13 wall.  Token reach sets evolve
/// independently (token t's holders after an exchange (a, b) depend
/// only on t's holders before), so the validator tracks `samples`
/// seeded random token columns exactly — N bits each instead of N^2 —
/// and re-runs the full structural per-round checks (path validity,
/// edge-disjointness, endpoint-uniqueness) over every call.  A report
/// with ok == true certifies the structure completely but completion
/// only for the sampled tokens (rep.sampled_tokens records how many);
/// the full streamed gossip checker remains a ROADMAP item.
/// Pre: N <= 2^32; memory is samples * N / 8 bytes of reach bitmaps.
template <AdjacencyOracle Net>
[[nodiscard]] GossipReport validate_gossip_sampled(const Net& net,
                                                   const GossipSchedule& schedule,
                                                   int k, std::uint64_t samples,
                                                   std::uint64_t seed = 0x5eedULL) {
  GossipReport rep;
  const std::uint64_t order = net.num_vertices();
  auto fail = [&](std::string msg) {
    rep.ok = false;
    rep.error = std::move(msg);
    return rep;
  };
  if (order > (std::uint64_t{1} << 32)) {
    return fail("network order " + std::to_string(order) +
                " exceeds the sampled gossip validator limit 2^32");
  }
  if (samples == 0) return fail("sampled gossip validation needs samples >= 1");
  samples = std::min(samples, order);
  rep.sampled_tokens = samples;

  // Seeded distinct token sample (exhaustive when samples == order).
  std::vector<Vertex> tokens;
  std::unordered_set<Vertex> seen;
  std::mt19937_64 rng(seed);
  if (samples == order) {
    tokens.reserve(static_cast<std::size_t>(order));
    for (Vertex t = 0; t < order; ++t) tokens.push_back(t);
  } else {
    while (tokens.size() < samples) {
      const Vertex t = rng() % order;
      if (seen.insert(t).second) tokens.push_back(t);
    }
  }
  std::vector<detail::VertexSet> reach;
  reach.reserve(tokens.size());
  for (const Vertex t : tokens) {
    reach.emplace_back(order);
    reach.back().insert(t);
  }

  std::unordered_set<detail::EdgeKey, detail::EdgeKeyHash> round_edges;
  std::unordered_set<Vertex> round_endpoints;
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    ++rep.rounds;
    const FlatSchedule::RoundView round = schedule.round(t);
    std::string err = detail::check_gossip_round_structure(
        net, round, k, t + 1, rep.max_call_length, rep.total_exchanges,
        round_edges, round_endpoints);
    if (!err.empty()) return fail(std::move(err));
    for (const FlatSchedule::CallView call : round) {
      const Vertex a = call.caller();
      const Vertex b = call.receiver();
      for (detail::VertexSet& r : reach) {
        if (r.contains(a) || r.contains(b)) {
          r.insert(a);
          r.insert(b);
        }
      }
    }
  }

  rep.complete = true;
  for (const detail::VertexSet& r : reach) {
    if (r.size() != order) {
      rep.complete = false;
      break;
    }
  }
  if (!rep.complete) {
    return fail("gossip incomplete after all rounds (sampled token not "
                "everywhere)");
  }
  rep.ok = true;
  rep.minimum_time = rep.rounds == ceil_log2(order);
  return rep;
}

/// Dimension-exchange gossip on the full Q_n: round t pairs every vertex
/// with its neighbor across dimension n-t+1.  n rounds, k = 1, optimal.
/// Materializes n * 2^(n-1) concrete exchanges; throws
/// std::invalid_argument unless 1 <= n <= 28 (the flat engine's sane
/// range — beyond it, produce symbolically with
/// hypercube_exchange_gossip_symbolic, which admits n <= 63).
[[nodiscard]] GossipSchedule hypercube_exchange_gossip(int n);

/// Gather-then-broadcast gossip on a sparse hypercube: the Broadcast_k
/// schedule from `root` is replayed backwards (leaf calls first) to
/// accumulate every token at `root`, then forwards to disseminate.
/// 2n rounds, calls of length <= spec.k().  Materializes 2 * (2^n - 1)
/// concrete exchanges; throws std::invalid_argument unless
/// spec.n() <= 20 (the exact validator stops at 2^13 vertices anyway —
/// beyond the wall, certify symbolically with certify_gossip_symbolic
/// or spot-check with validate_gossip_sampled).
[[nodiscard]] GossipSchedule sparse_gather_broadcast_gossip(
    const SparseHypercubeSpec& spec, Vertex root);

}  // namespace shc
