// Gossip (all-to-all exchange) under the k-line model — the paper's
// Section-5 future-work direction ("it should be promising to
// investigate minimum-time gossip graphs [17] under our model").
//
// Model: every vertex starts with one token.  Per round, calls are
// placed exactly as in k-line broadcast (edge-disjoint paths of <= k
// edges), but a call is a bidirectional *exchange*: afterwards both
// endpoints know the union of their token sets.  A gossip completes
// when every vertex knows every token; the trivial lower bound is
// ceil(log2 N) rounds (each vertex's knowledge at most doubles).
//
// Schemes provided:
//   * hypercube_exchange_gossip — the classic dimension-exchange on the
//     full Q_n: n rounds of perfect dim-i matchings, k = 1.  Optimal.
//   * sparse_gather_broadcast_gossip — on a sparse hypercube: reverse
//     the Broadcast_k schedule to accumulate all tokens at the source
//     (n rounds), then broadcast them back (n rounds): 2n rounds total
//     with calls of length <= k.  Whether n rounds are achievable on
//     o(n)-degree graphs is precisely the open problem; the gossip
//     bench (E13) reports the measured gap.
#pragma once

#include <cstdint>
#include <string>

#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/schedule.hpp"

namespace shc {

/// A gossip schedule reuses the broadcast round/call structure; calls
/// are interpreted as exchanges (direction is irrelevant).
struct GossipSchedule {
  std::vector<Round> rounds;

  [[nodiscard]] int num_rounds() const noexcept {
    return static_cast<int>(rounds.size());
  }
};

/// Validation outcome for a gossip schedule.
struct GossipReport {
  bool ok = false;
  std::string error;        ///< empty iff ok
  int rounds = 0;
  bool complete = false;    ///< every vertex knows every token
  bool minimum_time = false;  ///< complete in exactly ceil(log2 N) rounds
  int max_call_length = 0;
};

/// Checks a gossip schedule against `net` under the k-line constraints:
/// per round, paths valid and edge-disjoint with distinct... in gossip
/// both endpoints receive, so the receiver-uniqueness rule becomes
/// endpoint-uniqueness: a vertex takes part in at most one exchange per
/// round.  Knowledge is tracked exactly (N^2 bits; pre: N <= 2^13).
[[nodiscard]] GossipReport validate_gossip(const NetworkView& net,
                                           const GossipSchedule& schedule, int k);

/// Dimension-exchange gossip on the full Q_n: round t pairs every vertex
/// with its neighbor across dimension n-t+1.  n rounds, k = 1, optimal.
/// Pre: 1 <= n <= 13.
[[nodiscard]] GossipSchedule hypercube_exchange_gossip(int n);

/// Gather-then-broadcast gossip on a sparse hypercube: the Broadcast_k
/// schedule from `root` is replayed backwards (leaf calls first) to
/// accumulate every token at `root`, then forwards to disseminate.
/// 2n rounds, calls of length <= spec.k().  Pre: spec.n() <= 13.
[[nodiscard]] GossipSchedule sparse_gather_broadcast_gossip(
    const SparseHypercubeSpec& spec, Vertex root);

}  // namespace shc
