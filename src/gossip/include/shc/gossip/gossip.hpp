// Gossip (all-to-all exchange) under the k-line model — the paper's
// Section-5 future-work direction ("it should be promising to
// investigate minimum-time gossip graphs [17] under our model").
//
// Model: every vertex starts with one token.  Per round, calls are
// placed exactly as in k-line broadcast (edge-disjoint paths of <= k
// edges), but a call is a bidirectional *exchange*: afterwards both
// endpoints know the union of their token sets.  A gossip completes
// when every vertex knows every token; the trivial lower bound is
// ceil(log2 N) rounds (each vertex's knowledge at most doubles).
//
// Schemes provided:
//   * hypercube_exchange_gossip — the classic dimension-exchange on the
//     full Q_n: n rounds of perfect dim-i matchings, k = 1.  Optimal.
//   * sparse_gather_broadcast_gossip — on a sparse hypercube: reverse
//     the Broadcast_k schedule to accumulate all tokens at the source
//     (n rounds), then broadcast them back (n rounds): 2n rounds total
//     with calls of length <= k.  Whether n rounds are achievable on
//     o(n)-degree graphs is precisely the open problem; the gossip
//     bench (E13) reports the measured gap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "shc/bits/bitstring.hpp"
#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/spec.hpp"
#include "shc/sim/flat_schedule.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/validator.hpp"

namespace shc {

/// A gossip schedule reuses the flat round/call structure; calls are
/// interpreted as exchanges (direction is irrelevant, source unused).
using GossipSchedule = FlatSchedule;

/// Validation outcome for a gossip schedule.
struct GossipReport {
  bool ok = false;
  std::string error;        ///< empty iff ok
  int rounds = 0;
  bool complete = false;    ///< every vertex knows every token
  bool minimum_time = false;  ///< complete in exactly ceil(log2 N) rounds
  int max_call_length = 0;
};

namespace detail {

/// Per-vertex knowledge as packed token bitsets.
class KnowledgeMatrix {
 public:
  explicit KnowledgeMatrix(std::uint64_t n)
      : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {
    for (std::uint64_t v = 0; v < n; ++v) {
      bits_[v * words_ + v / 64] |= std::uint64_t{1} << (v % 64);
    }
  }

  void exchange(std::uint64_t a, std::uint64_t b) {
    std::uint64_t* ra = &bits_[a * words_];
    std::uint64_t* rb = &bits_[b * words_];
    for (std::size_t w = 0; w < words_; ++w) {
      const std::uint64_t u = ra[w] | rb[w];
      ra[w] = u;
      rb[w] = u;
    }
  }

  [[nodiscard]] bool complete() const {
    for (std::uint64_t v = 0; v < n_; ++v) {
      const std::uint64_t* row = &bits_[v * words_];
      for (std::size_t w = 0; w + 1 < words_; ++w) {
        if (row[w] != ~std::uint64_t{0}) return false;
      }
      const std::uint64_t tail_bits = n_ - 64 * (words_ - 1);
      const std::uint64_t tail_mask =
          tail_bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail_bits) - 1;
      if ((row[words_ - 1] & tail_mask) != tail_mask) return false;
    }
    return true;
  }

 private:
  std::uint64_t n_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace detail

/// Checks a gossip schedule against `net` under the k-line constraints:
/// per round, paths valid and edge-disjoint; in gossip both endpoints
/// receive, so the receiver-uniqueness rule becomes endpoint-uniqueness:
/// a vertex takes part in at most one exchange per round.  Knowledge is
/// tracked exactly (N^2 bits; pre: N <= 2^13).  Templated over the
/// adjacency oracle like validate_broadcast.
template <AdjacencyOracle Net>
[[nodiscard]] GossipReport validate_gossip(const Net& net,
                                           const GossipSchedule& schedule, int k) {
  GossipReport rep;
  const std::uint64_t order = net.num_vertices();

  auto fail = [&](std::string msg) {
    rep.ok = false;
    rep.error = std::move(msg);
    return rep;
  };

  // Hard guard, not an assert: in Release an oversized oracle would
  // silently allocate the O(N^2)-bit knowledge matrix.
  if (order > (std::uint64_t{1} << 13)) {
    return fail("network order " + std::to_string(order) +
                " exceeds the gossip validator limit 2^13 (exact knowledge "
                "tracking costs N^2 bits)");
  }

  detail::KnowledgeMatrix know(order);
  std::unordered_set<detail::EdgeKey, detail::EdgeKeyHash> round_edges;
  std::unordered_set<Vertex> round_endpoints;

  for (int t = 0; t < schedule.num_rounds(); ++t) {
    ++rep.rounds;
    round_edges.clear();
    round_endpoints.clear();
    const std::string where = "round " + std::to_string(t + 1) + ": ";
    const FlatSchedule::RoundView round = schedule.round(t);
    for (const FlatSchedule::CallView call : round) {
      if (call.size() < 2) return fail(where + "empty or zero-length exchange");
      rep.max_call_length = std::max(rep.max_call_length, call.length());
      if (call.length() > k) {
        return fail(where + "exchange longer than k=" + std::to_string(k));
      }
      const Vertex a = call.caller();
      const Vertex b = call.receiver();
      if (a >= order || b >= order) return fail(where + "endpoint out of range");
      // Each vertex joins at most one exchange per round.
      if (!round_endpoints.insert(a).second) {
        return fail(where + "vertex " + std::to_string(a) + " in two exchanges");
      }
      if (!round_endpoints.insert(b).second) {
        return fail(where + "vertex " + std::to_string(b) + " in two exchanges");
      }
      for (std::size_t i = 0; i + 1 < call.size(); ++i) {
        const Vertex x = call[i];
        const Vertex y = call[i + 1];
        // Mirror validate_broadcast: interior path vertices must be
        // range-checked before they reach the adjacency oracle (a
        // GraphView would index out of bounds otherwise).
        if (x >= order || y >= order) {
          return fail(where + "path vertex out of range");
        }
        if (x == y || !net.has_edge(x, y)) {
          return fail(where + "no edge between " + std::to_string(x) + " and " +
                      std::to_string(y));
        }
        if (!round_edges.insert(detail::edge_key(x, y)).second) {
          return fail(where + "edge {" + std::to_string(x) + "," + std::to_string(y) +
                      "} used twice");
        }
      }
    }
    // Exchanges resolve simultaneously; endpoint-uniqueness makes the
    // application order irrelevant.
    for (const FlatSchedule::CallView call : round) {
      know.exchange(call.caller(), call.receiver());
    }
  }

  rep.complete = know.complete();
  if (!rep.complete) return fail("gossip incomplete after all rounds");
  rep.ok = true;
  rep.minimum_time = rep.rounds == ceil_log2(order);
  return rep;
}

/// Dimension-exchange gossip on the full Q_n: round t pairs every vertex
/// with its neighbor across dimension n-t+1.  n rounds, k = 1, optimal.
/// Pre: 1 <= n <= 13.
[[nodiscard]] GossipSchedule hypercube_exchange_gossip(int n);

/// Gather-then-broadcast gossip on a sparse hypercube: the Broadcast_k
/// schedule from `root` is replayed backwards (leaf calls first) to
/// accumulate every token at `root`, then forwards to disseminate.
/// 2n rounds, calls of length <= spec.k().  Pre: spec.n() <= 13.
[[nodiscard]] GossipSchedule sparse_gather_broadcast_gossip(
    const SparseHypercubeSpec& spec, Vertex root);

}  // namespace shc
