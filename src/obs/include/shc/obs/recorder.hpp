// Flight recorder — zero-overhead-when-disabled phase tracing, a
// counter/gauge registry, and per-round run telemetry for the symbolic
// engines.
//
// The engines are instrumented with RAII phase scopes
// (SHC_TRACE_SCOPE("caller_tiling")), counter samples
// (SHC_TRACE_COUNTER("frontier_subcubes", n)) and per-round marks
// (SHC_TRACE_ROUND(r)).  With no recorder installed every macro is one
// relaxed atomic load and a branch — no allocation, no clock read, no
// lock — so the hot paths carry the instrumentation permanently.
// Installing a TraceSession (explicitly, or via the SHC_TRACE
// environment variable) turns the same call sites into a timestamped
// event stream:
//
//   * events are appended to per-thread buffers (registration takes the
//     recorder mutex once per thread per session; appends are
//     lock-free — each thread owns its buffer);
//   * every event carries a deterministic (track, seq) key assigned at
//     the call site: main-track sequence numbers are handed out in the
//     engine thread's program order, so the flush-time merge — a sort
//     on (track, seq) — is bit-for-bit reproducible run over run and at
//     every thread count.  Timestamps and durations are measurements;
//     they exist only in the trace files, never in the event ordering;
//   * sinks: a Chrome trace_event JSON (loadable in about:tracing /
//     https://ui.perfetto.dev) and a compact per-round JSONL time
//     series (one object per SHC_TRACE_ROUND mark: wall time, the
//     latest value of every counter, and the phase-duration breakdown
//     of the round's window) — tools/trace_report.py renders it.
//
// Hard contract (enforced by trace_recorder_test and the shc-lint
// timestamp rule): recorder calls never influence verdicts or report
// counters; reports are bit-for-bit identical with tracing on or off;
// steady_clock lives only inside src/obs/.  Compile with
// -DSHC_OBS_DISABLE to compile every macro away entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace shc::obs {

/// What one recorded event is.
enum class EventKind : std::uint8_t {
  kScope,    ///< a completed phase (Chrome "X"): ts + dur
  kCounter,  ///< a gauge sample (Chrome "C"): name -> value
  kInstant,  ///< a point event (Chrome "i")
  kRound,    ///< a per-round mark; value is the round index
};

/// One trace event.  `name` must be a string with static storage
/// duration (the call sites pass literals); nothing is copied or freed.
struct TraceEvent {
  const char* name = "";
  EventKind kind = EventKind::kInstant;
  std::uint32_t track = 0;   ///< deterministic stream id (merge key, Chrome tid)
  std::uint64_t seq = 0;     ///< deterministic order within the track
  std::uint64_t ts_ns = 0;   ///< steady-clock start (trace files only)
  std::uint64_t dur_ns = 0;  ///< kScope only (trace files only)
  std::uint64_t value = 0;   ///< counter value / round index / payload
};

/// The engine thread's track: sequence numbers on it are assigned in
/// program order of the (single) thread driving the validators, which
/// is what makes the merged event order deterministic.
inline constexpr std::uint32_t kMainTrack = 0;

/// Steady-clock nanoseconds.  Defined in recorder.cpp — the ONLY
/// translation unit of the repo allowed to read a clock (shc-lint's
/// timestamp rule keeps it that way).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// Resident-set high-water mark in KiB (/proc/self/status VmHWM);
/// 0 where unavailable.  Sampled by round marks while tracing.
[[nodiscard]] std::uint64_t rss_high_water_kb() noexcept;

/// Sink selection.  An empty path disables that sink.
struct TraceOptions {
  std::string chrome_path;  ///< Chrome trace_event JSON
  std::string jsonl_path;   ///< per-round JSONL time series
};

/// Maps a user-supplied base path to sinks: "*.json" is Chrome-only,
/// "*.jsonl" is JSONL-only, anything else writes both `base.trace.json`
/// and `base.rounds.jsonl`.  This is the SHC_TRACE=<path> convention.
[[nodiscard]] TraceOptions trace_options_from_base(const std::string& base);

/// The event store.  At most one recorder is *active* (installed as the
/// process-global target of the macros) at a time; TraceSession manages
/// that lifecycle.  Recording threads must quiesce before flush /
/// merged_events (the engines guarantee this: a validation run joins
/// its pool before the session ends).
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The installed recorder, or nullptr.  This is the whole cost of a
  /// disabled call site.
  [[nodiscard]] static TraceRecorder* active() noexcept {
    return g_active.load(std::memory_order_acquire);
  }

  /// Next main-track sequence number.  Call sites on the engine thread
  /// draw these in program order; that order IS the merge order.
  [[nodiscard]] std::uint64_t next_seq() noexcept {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a completed phase scope (TraceScope's destructor).
  void scope_event(const char* name, std::uint32_t track, std::uint64_t seq,
                   std::uint64_t t0_ns, std::uint64_t dur_ns,
                   std::uint64_t value = 0);
  /// Appends a gauge sample.
  void counter(const char* name, std::uint64_t value);
  /// Appends a point event.
  void instant(const char* name);
  /// Appends a per-round mark (plus an rss_hwm_kb gauge sample).
  void round_mark(std::uint64_t round);

  /// All events merged across thread buffers, sorted by (track, seq) —
  /// the deterministic flush order.  For tests and the sinks.
  [[nodiscard]] std::vector<TraceEvent> merged_events() const;

  /// Writes the Chrome trace_event JSON / per-round JSONL sinks.
  /// Returns false (after printing to stderr) when the file cannot be
  /// written; tracing failures never fail a run.
  bool write_chrome_trace(const std::string& path) const;
  bool write_round_jsonl(const std::string& path) const;

 private:
  friend class TraceSession;
  struct ThreadBuffer {
    std::vector<TraceEvent> events;
  };

  void install();    ///< becomes the active recorder (throws if one is)
  void uninstall();  ///< detaches; pending thread caches invalidate via id
  [[nodiscard]] ThreadBuffer* local_buffer();
  void append(const TraceEvent& e);

  static std::atomic<TraceRecorder*> g_active;
  std::uint64_t id_;  ///< unique per instance; invalidates thread caches
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex mu_;  ///< buffer registration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII phase scope.  Constructed cost when disabled: one atomic load.
/// When enabled it draws a main-track sequence number at *construction*
/// (program order) and appends one kScope event at destruction.
class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept
      : rec_(TraceRecorder::active()), name_(name) {
    if (rec_ != nullptr) {
      seq_ = rec_->next_seq();
      t0_ = trace_now_ns();
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (rec_ != nullptr) {
      rec_->scope_event(name_, kMainTrack, seq_, t0_, trace_now_ns() - t0_);
    }
  }

 private:
  TraceRecorder* rec_;
  const char* name_;
  std::uint64_t seq_ = 0;
  std::uint64_t t0_ = 0;
};

/// Owns one recorder's active lifetime: installs at construction,
/// uninstalls and writes the configured sinks at destruction.  The
/// session must outlive every traced call (the engines' sessions wrap
/// whole runs, so this holds by construction).
class TraceSession {
 public:
  explicit TraceSession(TraceOptions opt);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  [[nodiscard]] TraceRecorder& recorder() noexcept { return *rec_; }

  /// A session configured from SHC_TRACE=<path>, or nullptr when the
  /// variable is unset/empty.
  [[nodiscard]] static std::unique_ptr<TraceSession> from_env();

 private:
  TraceOptions opt_;
  std::unique_ptr<TraceRecorder> rec_;
};

}  // namespace shc::obs

// ---- instrumentation macros ---------------------------------------------
//
// All of them compile to `if (active recorder) record;` — one relaxed
// atomic load when disabled — or to nothing under SHC_OBS_DISABLE.

#if defined(SHC_OBS_DISABLE)

#define SHC_TRACE_SCOPE(name) \
  do {                        \
  } while (false)
#define SHC_TRACE_COUNTER(name, value) \
  do {                                 \
  } while (false)
#define SHC_TRACE_INSTANT(name) \
  do {                          \
  } while (false)
#define SHC_TRACE_ROUND(round) \
  do {                         \
  } while (false)

#else

#define SHC_OBS_CAT2(a, b) a##b
#define SHC_OBS_CAT(a, b) SHC_OBS_CAT2(a, b)

/// Times the enclosing scope as one phase event.
#define SHC_TRACE_SCOPE(name) \
  const ::shc::obs::TraceScope SHC_OBS_CAT(shc_trace_scope_, __LINE__)(name)

/// Records a gauge sample into the counter registry.
#define SHC_TRACE_COUNTER(name, value)                               \
  do {                                                               \
    if (::shc::obs::TraceRecorder* shc_obs_rec_ =                    \
            ::shc::obs::TraceRecorder::active()) {                   \
      shc_obs_rec_->counter((name),                                  \
                            static_cast<std::uint64_t>(value));      \
    }                                                                \
  } while (false)

/// Records a point event.
#define SHC_TRACE_INSTANT(name)                    \
  do {                                             \
    if (::shc::obs::TraceRecorder* shc_obs_rec_ =  \
            ::shc::obs::TraceRecorder::active()) { \
      shc_obs_rec_->instant(name);                 \
    }                                              \
  } while (false)

/// Marks a round boundary (the JSONL sink emits one row per mark).
#define SHC_TRACE_ROUND(round)                                       \
  do {                                                               \
    if (::shc::obs::TraceRecorder* shc_obs_rec_ =                    \
            ::shc::obs::TraceRecorder::active()) {                   \
      shc_obs_rec_->round_mark(static_cast<std::uint64_t>(round));   \
    }                                                                \
  } while (false)

#endif  // SHC_OBS_DISABLE
