// Flight-recorder implementation: event buffers, the deterministic
// merge, and the two sinks (Chrome trace_event JSON, per-round JSONL).
//
// This is the one translation unit of the repo that may read a clock
// (shc-lint's timestamp rule pins std::chrono to src/obs/).  Timestamps
// are measurements: they appear in the trace files but never decide
// the merged event *order*, which is the (track, seq) sort.
#include "shc/obs/recorder.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string_view>

namespace shc::obs {

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t rss_high_water_kb() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    // NOLINTNEXTLINE(cert-err34-c): parse failure leaves kb at 0.
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return static_cast<std::uint64_t>(kb);
#else
  return 0;
#endif
}

TraceOptions trace_options_from_base(const std::string& base) {
  TraceOptions opt;
  const std::string_view b = base;
  auto ends_with = [&](std::string_view suffix) {
    return b.size() >= suffix.size() &&
           b.substr(b.size() - suffix.size()) == suffix;
  };
  if (ends_with(".jsonl")) {
    opt.jsonl_path = base;
  } else if (ends_with(".json")) {
    opt.chrome_path = base;
  } else {
    opt.chrome_path = base + ".trace.json";
    opt.jsonl_path = base + ".rounds.jsonl";
  }
  return opt;
}

// ---- TraceRecorder ------------------------------------------------------

std::atomic<TraceRecorder*> TraceRecorder::g_active{nullptr};

namespace {

/// Instance ids let the thread-local cache notice a new recorder: a
/// cached (id, buffer) pair from an earlier session never aliases the
/// current one.
std::atomic<std::uint64_t> g_next_recorder_id{1};

struct LocalCache {
  std::uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local LocalCache t_cache;

}  // namespace

TraceRecorder::TraceRecorder()
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() {
  if (g_active.load(std::memory_order_acquire) == this) uninstall();
}

void TraceRecorder::install() {
  TraceRecorder* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel)) {
    throw std::runtime_error(
        "TraceRecorder::install: another recorder is already active");
  }
}

void TraceRecorder::uninstall() {
  g_active.store(nullptr, std::memory_order_release);
}

TraceRecorder::ThreadBuffer* TraceRecorder::local_buffer() {
  if (t_cache.recorder_id == id_) {
    return static_cast<ThreadBuffer*>(t_cache.buffer);
  }
  auto owned = std::make_unique<ThreadBuffer>();
  ThreadBuffer* raw = owned.get();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::move(owned));
  }
  t_cache = {id_, raw};
  return raw;
}

void TraceRecorder::append(const TraceEvent& e) {
  local_buffer()->events.push_back(e);
}

void TraceRecorder::scope_event(const char* name, std::uint32_t track,
                                std::uint64_t seq, std::uint64_t t0_ns,
                                std::uint64_t dur_ns, std::uint64_t value) {
  append(TraceEvent{name, EventKind::kScope, track, seq, t0_ns, dur_ns, value});
}

void TraceRecorder::counter(const char* name, std::uint64_t value) {
  append(TraceEvent{name, EventKind::kCounter, kMainTrack, next_seq(),
                    trace_now_ns(), 0, value});
}

void TraceRecorder::instant(const char* name) {
  append(TraceEvent{name, EventKind::kInstant, kMainTrack, next_seq(),
                    trace_now_ns(), 0, 0});
}

void TraceRecorder::round_mark(std::uint64_t round) {
  counter("rss_hwm_kb", rss_high_water_kb());
  append(TraceEvent{"round", EventKind::kRound, kMainTrack, next_seq(),
                    trace_now_ns(), 0, round});
}

std::vector<TraceEvent> TraceRecorder::merged_events() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b->events.size();
    out.reserve(total);
    for (const auto& b : buffers_) {
      out.insert(out.end(), b->events.begin(), b->events.end());
    }
  }
  // (track, seq) is unique per event — each seq comes from one atomic
  // counter (main track) — so this order is total and deterministic.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.track != b.track ? a.track < b.track : a.seq < b.seq;
            });
  return out;
}

// ---- sinks --------------------------------------------------------------

namespace {

/// Event names are C++ literals (identifier-ish ASCII), but escape
/// defensively so the sinks always emit valid JSON.
void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_str(std::string_view s) {
  std::string out = "\"";
  append_json_escaped(out, s);
  out += '"';
  return out;
}

/// Microseconds with 3-decimal precision, as Chrome's `ts`/`dur` expect.
std::string us_from_ns(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

/// Milliseconds with 3-decimal precision for the JSONL rows.
std::string ms_from_ns(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000000),
                static_cast<unsigned long long>((ns / 1000) % 1000));
  return buf;
}

bool open_sink(std::ofstream& out, const std::string& path) {
  out.open(path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "shc-trace: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out;
  if (!open_sink(out, path)) return false;
  const std::vector<TraceEvent> events = merged_events();
  std::uint64_t t0 = UINT64_MAX;
  for (const TraceEvent& e : events) t0 = std::min(t0, e.ts_ns);
  if (t0 == UINT64_MAX) t0 = 0;

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":" << json_str(e.name) << ",\"pid\":1,\"tid\":"
        << e.track << ",\"ts\":" << us_from_ns(e.ts_ns - t0);
    switch (e.kind) {
      case EventKind::kScope:
        out << ",\"ph\":\"X\",\"dur\":" << us_from_ns(e.dur_ns);
        if (e.value != 0) out << ",\"args\":{\"value\":" << e.value << "}";
        break;
      case EventKind::kCounter:
        out << ",\"ph\":\"C\",\"args\":{\"value\":" << e.value << "}";
        break;
      case EventKind::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case EventKind::kRound:
        out << ",\"ph\":\"i\",\"s\":\"g\",\"args\":{\"round\":" << e.value
            << "}";
        break;
    }
    out << "}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

bool TraceRecorder::write_round_jsonl(const std::string& path) const {
  std::ofstream out;
  if (!open_sink(out, path)) return false;

  // Rows are the windows between kRound marks in timestamp order (the
  // engines emit marks from one thread, so ts order == seq order).  A
  // counter's row value is its last sample in or before the window;
  // phase durations are summed per name over scopes *starting* in the
  // window.  Events after the last mark become a tail row, round -1
  // (the endgame / finish work).
  std::vector<TraceEvent> events = merged_events();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  std::uint64_t t0 = events.empty() ? 0 : events.front().ts_ns;

  std::map<std::string_view, std::uint64_t> counters;
  std::map<std::string_view, std::uint64_t> phases_ns;
  std::uint64_t window_start = t0;

  auto emit_row = [&](long long round, std::uint64_t window_end) {
    out << "{\"round\":" << round << ",\"ts_ms\":"
        << ms_from_ns(window_end - t0) << ",\"wall_ms\":"
        << ms_from_ns(window_end - window_start) << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : counters) {
      if (!first) out << ",";
      first = false;
      out << json_str(name) << ":" << value;
    }
    out << "},\"phases_ms\":{";
    first = true;
    for (const auto& [name, ns] : phases_ns) {
      if (!first) out << ",";
      first = false;
      out << json_str(name) << ":" << ms_from_ns(ns);
    }
    out << "}}\n";
    phases_ns.clear();
    window_start = window_end;
  };

  bool tail = false;  // any scope/counter activity since the last mark
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kScope:
        phases_ns[e.name] += e.dur_ns;
        tail = true;
        break;
      case EventKind::kCounter:
        counters[e.name] = e.value;
        tail = true;
        break;
      case EventKind::kInstant:
        tail = true;
        break;
      case EventKind::kRound:
        emit_row(static_cast<long long>(e.value), e.ts_ns);
        tail = false;
        break;
    }
  }
  if (tail && !events.empty()) emit_row(-1, events.back().ts_ns);
  return static_cast<bool>(out);
}

// ---- TraceSession -------------------------------------------------------

TraceSession::TraceSession(TraceOptions opt)
    : opt_(std::move(opt)), rec_(std::make_unique<TraceRecorder>()) {
  rec_->install();
}

TraceSession::~TraceSession() {
  rec_->uninstall();
  if (!opt_.chrome_path.empty()) rec_->write_chrome_trace(opt_.chrome_path);
  if (!opt_.jsonl_path.empty()) rec_->write_round_jsonl(opt_.jsonl_path);
}

std::unique_ptr<TraceSession> TraceSession::from_env() {
  const char* base = std::getenv("SHC_TRACE");
  if (base == nullptr || base[0] == '\0') return nullptr;
  return std::make_unique<TraceSession>(trace_options_from_base(base));
}

}  // namespace shc::obs
