#include "shc/graph/algorithms.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace shc {

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId src) {
  if (src >= g.num_vertices()) {
    throw std::invalid_argument("bfs_distances: source vertex " +
                                std::to_string(src) + " out of range (" +
                                std::to_string(g.num_vertices()) + " vertices)");
  }
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::vector<VertexId> frontier{src};
  dist[src] = 0;
  std::uint32_t d = 0;
  std::vector<VertexId> next;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : g.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = d;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::optional<std::vector<VertexId>> shortest_path(const Graph& g, VertexId src,
                                                   VertexId dst) {
  if (src >= g.num_vertices() || dst >= g.num_vertices()) {
    throw std::invalid_argument("shortest_path: endpoint out of range: {" +
                                std::to_string(src) + "," +
                                std::to_string(dst) + "} with " +
                                std::to_string(g.num_vertices()) + " vertices");
  }
  if (src == dst) return std::vector<VertexId>{src};
  // BFS from dst so the path can be rebuilt by walking downhill from src.
  const auto dist = bfs_distances(g, dst);
  if (dist[src] == kUnreachable) return std::nullopt;
  std::vector<VertexId> path{src};
  VertexId cur = src;
  while (cur != dst) {
    // Neighbor lists are sorted, so taking the first strictly-closer
    // neighbor yields a deterministic path.
    VertexId next = cur;
    for (VertexId v : g.neighbors(cur)) {
      if (dist[v] + 1 == dist[cur]) {
        next = v;
        break;
      }
    }
    // shc-lint: allow(assert-guard) — internal BFS tree invariant, not
    // reachable from any caller input once the range checks above pass.
    assert(next != cur && "BFS tree invariant violated");
    path.push_back(next);
    cur = next;
  }
  return path;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t eccentricity(const Graph& g, VertexId src) {
  const auto dist = bfs_distances(g, src);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) {
      throw std::invalid_argument("eccentricity: graph is not connected");
    }
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t diam = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    diam = std::max(diam, eccentricity(g, u));
  }
  return diam;
}

bool is_dominating_set(const Graph& g, const std::vector<VertexId>& set) {
  std::vector<char> covered(g.num_vertices(), 0);
  for (VertexId u : set) {
    if (u >= g.num_vertices()) {
      throw std::invalid_argument("is_dominating_set: vertex " +
                                  std::to_string(u) + " out of range (" +
                                  std::to_string(g.num_vertices()) +
                                  " vertices)");
    }
    covered[u] = 1;
    for (VertexId v : g.neighbors(u)) covered[v] = 1;
  }
  return std::all_of(covered.begin(), covered.end(), [](char c) { return c != 0; });
}

bool is_spanning_subgraph(const Graph& sub, const Graph& super) {
  if (sub.num_vertices() != super.num_vertices()) return false;
  for (VertexId u = 0; u < sub.num_vertices(); ++u) {
    for (VertexId v : sub.neighbors(u)) {
      if (u < v && !super.has_edge(u, v)) return false;
    }
  }
  return true;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist(g.max_degree() + 1, 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) ++hist[g.degree(u)];
  return hist;
}

bool is_tree(const Graph& g) {
  return g.num_vertices() >= 1 && g.num_edges() == g.num_vertices() - 1 &&
         is_connected(g);
}

bool is_edge_simple_path(const Graph& g, const std::vector<VertexId>& path) {
  if (path.empty()) return false;
  std::set<Edge> used;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!g.has_edge(path[i], path[i + 1])) return false;
    if (!used.insert(make_edge(path[i], path[i + 1])).second) return false;
  }
  return true;
}

}  // namespace shc
