#include "shc/graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace shc {

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u >= n_ || v >= n_) {
    throw std::invalid_argument("GraphBuilder::add_edge: endpoint out of "
                                "range: {" +
                                std::to_string(u) + "," + std::to_string(v) +
                                "} with " + std::to_string(n_) + " vertices");
  }
  edges_.push_back(make_edge(u, v));
}

Graph GraphBuilder::build() && {
  std::sort(edges_.begin(), edges_.end());
  // Simple-graph invariants are construction-bug tripwires that must
  // survive release builds (an assert vanishes under NDEBUG), so detect
  // unconditionally and name the offending edge.
  for (const Edge& e : edges_) {
    if (e.a == e.b) {
      throw std::invalid_argument("GraphBuilder: self-loop at vertex " +
                                  std::to_string(e.a));
    }
  }
  const auto dup = std::adjacent_find(edges_.begin(), edges_.end());
  if (dup != edges_.end()) {
    throw std::invalid_argument("GraphBuilder: duplicate edge {" +
                                std::to_string(dup->a) + "," +
                                std::to_string(dup->b) + "}");
  }

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const Edge& e : edges_) {
    ++g.offsets_[e.a + 1];
    ++g.offsets_[e.b + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.adjacency_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges_) {
    g.adjacency_[cursor[e.a]++] = e.b;
    g.adjacency_[cursor[e.b]++] = e.a;
  }
  for (VertexId u = 0; u < n_; ++u) {
    auto first = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u]);
    auto last = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u + 1]);
    std::sort(first, last);
  }
  return g;
}

bool Graph::has_edge(VertexId u, VertexId v) const noexcept {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : neighbors(u)) {
      if (u < v) out.push_back(Edge{u, v});
    }
  }
  return out;
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t d = 0;
  for (VertexId u = 0; u < num_vertices(); ++u) d = std::max(d, degree(u));
  return d;
}

std::size_t Graph::min_degree() const noexcept {
  if (num_vertices() == 0) return 0;
  std::size_t d = degree(0);
  for (VertexId u = 1; u < num_vertices(); ++u) d = std::min(d, degree(u));
  return d;
}

}  // namespace shc
