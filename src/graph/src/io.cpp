#include "shc/graph/io.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "shc/bits/bitstring.hpp"

namespace shc {

void write_dot(std::ostream& os, const Graph& g, std::string_view name, int bits) {
  os << "graph " << name << " {\n";
  os << "  node [shape=circle fontsize=10];\n";
  if (bits > 0) {
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      os << "  v" << u << " [label=\"" << to_bitstring(u, bits) << "\"];\n";
    }
  }
  for (const Edge& e : g.edges()) {
    os << "  v" << e.a << " -- v" << e.b << ";\n";
  }
  os << "}\n";
}

void write_edge_list(std::ostream& os, const Graph& g) {
  for (const Edge& e : g.edges()) os << e.a << ' ' << e.b << '\n';
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument(
        "TextTable::add_row: row width " + std::to_string(cells.size()) +
        " does not match header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::string(width[c] - row[c].size(), ' ') << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace shc
