#include "shc/graph/generators.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "shc/bits/vertex.hpp"

namespace shc {
namespace {

/// Factory preconditions guard caller-supplied sizes; they must fail in
/// release builds too (a bare assert vanishes under NDEBUG — the PR 2
/// bug class), so every generator throws with the offending value.
void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

Graph make_hypercube(int n) {
  require(n >= 1 && n <= 26,
          "make_hypercube: n must be in [1, 26], got " + std::to_string(n));
  const VertexId order = static_cast<VertexId>(cube_order(n));
  GraphBuilder b(order);
  for (VertexId u = 0; u < order; ++u) {
    for (Dim i = 1; i <= n; ++i) {
      const VertexId v = static_cast<VertexId>(flip(u, i));
      if (u < v) b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

Graph make_path(VertexId n) {
  require(n >= 1, "make_path: n must be >= 1, got " + std::to_string(n));
  GraphBuilder b(n);
  for (VertexId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
  return std::move(b).build();
}

Graph make_cycle(VertexId n) {
  require(n >= 3, "make_cycle: n must be >= 3, got " + std::to_string(n));
  GraphBuilder b(n);
  for (VertexId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
  b.add_edge(n - 1, 0);
  return std::move(b).build();
}

Graph make_star(VertexId n) {
  require(n >= 2, "make_star: n must be >= 2, got " + std::to_string(n));
  GraphBuilder b(n);
  for (VertexId u = 1; u < n; ++u) b.add_edge(0, u);
  return std::move(b).build();
}

Graph make_complete_binary_tree(int h) {
  require(h >= 0 && h <= 24,
          "make_complete_binary_tree: h must be in [0, 24], got " +
              std::to_string(h));
  const VertexId order = static_cast<VertexId>((std::uint64_t{1} << (h + 1)) - 1);
  GraphBuilder b(order);
  for (VertexId v = 1; v < order; ++v) b.add_edge(v, (v - 1) / 2);
  return std::move(b).build();
}

Graph make_theorem1_tree(int h) {
  require(h >= 1 && h <= 24,
          "make_theorem1_tree: h must be in [1, 24], got " + std::to_string(h));
  const VertexId big = static_cast<VertexId>((std::uint64_t{1} << (h + 1)) - 1);
  const VertexId small = static_cast<VertexId>((std::uint64_t{1} << h) - 1);
  GraphBuilder b(big + small);
  // Big tree: root 0, heap numbering over ids [0, big).
  for (VertexId v = 1; v < big; ++v) b.add_edge(v, (v - 1) / 2);
  // Small tree: root `big`, heap numbering over ids [big, big+small).
  for (VertexId v = 1; v < small; ++v) b.add_edge(big + v, big + (v - 1) / 2);
  // The joining edge between the two roots (Figure 1's central edge).
  b.add_edge(0, big);
  return std::move(b).build();
}

Graph make_caterpillar(VertexId spine, VertexId legs) {
  require(spine >= 1,
          "make_caterpillar: spine must be >= 1, got " + std::to_string(spine));
  GraphBuilder b(spine * (legs + 1));
  for (VertexId s = 0; s + 1 < spine; ++s) b.add_edge(s, s + 1);
  for (VertexId s = 0; s < spine; ++s) {
    for (VertexId l = 0; l < legs; ++l) b.add_edge(s, spine + s * legs + l);
  }
  return std::move(b).build();
}

Graph make_random_tree(VertexId n, std::mt19937_64& rng) {
  require(n >= 1, "make_random_tree: n must be >= 1, got " + std::to_string(n));
  if (n == 1) {
    GraphBuilder b(1);
    return std::move(b).build();
  }
  if (n == 2) {
    GraphBuilder b(2);
    b.add_edge(0, 1);
    return std::move(b).build();
  }
  // Decode a uniform random Prufer sequence of length n-2.
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  std::vector<VertexId> prufer(n - 2);
  for (auto& p : prufer) p = pick(rng);

  std::vector<int> deg(n, 1);
  for (VertexId p : prufer) ++deg[p];

  GraphBuilder b(n);
  VertexId ptr = 0;
  while (deg[ptr] != 1) ++ptr;
  VertexId leaf = ptr;
  for (VertexId p : prufer) {
    b.add_edge(leaf, p);
    if (--deg[p] == 1 && p < ptr) {
      leaf = p;
    } else {
      while (deg[++ptr] != 1) {
      }
      leaf = ptr;
    }
  }
  b.add_edge(leaf, n - 1);
  return std::move(b).build();
}

}  // namespace shc
