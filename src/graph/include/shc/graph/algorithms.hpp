// Graph algorithms used across the library: BFS distances, diameter,
// connectivity, domination checks, subgraph relations, path queries.
// Everything here operates on materialized Graphs; sizes are small
// (<= 2^26 vertices) so single-threaded BFS suffices.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "shc/graph/graph.hpp"

namespace shc {

/// Sentinel distance for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Single-source BFS distances from `src`; dist[v] == kUnreachable when v
/// is not reachable.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId src);

/// A shortest path from `src` to `dst` as a vertex sequence
/// [src, ..., dst], or nullopt if unreachable.  Ties are broken toward
/// smaller vertex ids (deterministic).
[[nodiscard]] std::optional<std::vector<VertexId>> shortest_path(const Graph& g,
                                                                 VertexId src,
                                                                 VertexId dst);

/// True iff the graph is connected (the empty graph counts as connected).
[[nodiscard]] bool is_connected(const Graph& g);

/// Graph eccentricity of `src`: max finite BFS distance.  Pre: connected.
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, VertexId src);

/// Exact diameter via all-sources BFS.  Pre: connected.  O(V * (V+E)), so
/// callers should keep V modest (tests use V <= 2^15).
[[nodiscard]] std::uint32_t diameter(const Graph& g);

/// True iff every vertex of `g` is in `set` or adjacent to a member of
/// `set` — i.e. `set` is a dominating set (footnote 2 of the paper).
[[nodiscard]] bool is_dominating_set(const Graph& g, const std::vector<VertexId>& set);

/// True iff `sub` is a spanning subgraph of `super`: same vertex count
/// and every edge of `sub` present in `super`.  Sparse hypercubes must
/// satisfy this with respect to Q_n.
[[nodiscard]] bool is_spanning_subgraph(const Graph& sub, const Graph& super);

/// Degree histogram: hist[d] = number of vertices of degree d.
[[nodiscard]] std::vector<std::size_t> degree_histogram(const Graph& g);

/// True iff `g` is a tree (connected with exactly V-1 edges).
[[nodiscard]] bool is_tree(const Graph& g);

/// True iff `path` is a walk along existing edges with no repeated edge.
/// (Repeated vertices are allowed; the k-line model constrains edges.)
[[nodiscard]] bool is_edge_simple_path(const Graph& g, const std::vector<VertexId>& path);

}  // namespace shc
