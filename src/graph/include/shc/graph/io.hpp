// Text serialization of graphs: Graphviz DOT, plain edge lists, and
// aligned ASCII tables used by the bench harness to print paper-shaped
// results.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "shc/graph/graph.hpp"

namespace shc {

/// Writes `g` as an undirected Graphviz DOT graph.  When `bits > 0`,
/// vertex labels are rendered as `bits`-wide binary strings (the paper's
/// notation); otherwise decimal ids are used.
void write_dot(std::ostream& os, const Graph& g, std::string_view name, int bits = 0);

/// Writes one `u v` pair per line, canonical order, decimal ids.
void write_edge_list(std::ostream& os, const Graph& g);

/// Minimal aligned-column table writer.  Usage:
///   TextTable t({"n", "Delta", "bound"});
///   t.add_row({"8", "4", "6"});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with right-aligned columns, a header underline, and two
  /// spaces between columns.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace shc
