// Generators for the graph families used by the paper and its baselines:
// binary n-cubes, the Theorem-1 degree-3 tree family, paths, cycles,
// stars, complete binary trees, caterpillars, and seeded random trees.
#pragma once

#include <cstdint>
#include <random>

#include "shc/graph/graph.hpp"

namespace shc {

/// Binary n-cube Q_n: 2^n vertices, vertex id == bit string, edges
/// between ids at Hamming distance 1.  Pre: 1 <= n <= 26 (materialized).
[[nodiscard]] Graph make_hypercube(int n);

/// Path P_n on n >= 1 vertices: 0-1-2-...-(n-1).
[[nodiscard]] Graph make_path(VertexId n);

/// Cycle C_n on n >= 3 vertices.
[[nodiscard]] Graph make_cycle(VertexId n);

/// Star K_{1,n-1}: center 0, leaves 1..n-1.  This is the paper's
/// minimum-edge k-mlbg for k >= 2 (Section 2).  Pre: n >= 2.
[[nodiscard]] Graph make_star(VertexId n);

/// Complete binary tree of height h: 2^(h+1)-1 vertices, root 0,
/// children of v at 2v+1 and 2v+2.  Pre: h >= 0, h <= 24.
[[nodiscard]] Graph make_complete_binary_tree(int h);

/// The Theorem-1 / Figure-1 family: two complete binary trees of heights
/// h and h-1 with roots joined by an edge.  |V| = 3*2^h - 2, maximum
/// degree 3, diameter 2h.  Vertices 0..2^(h+1)-2 form the big tree
/// (root 0); the rest form the small tree (root 2^(h+1)-1).  Pre: h >= 1.
[[nodiscard]] Graph make_theorem1_tree(int h);

/// Caterpillar: a spine path of `spine` vertices, each carrying `legs`
/// pendant leaves.  Pre: spine >= 1, legs >= 0.
[[nodiscard]] Graph make_caterpillar(VertexId spine, VertexId legs);

/// Uniform random labeled tree on n vertices via a random Prufer
/// sequence.  Deterministic for a given engine state.  Pre: n >= 1.
[[nodiscard]] Graph make_random_tree(VertexId n, std::mt19937_64& rng);

/// Diameter of make_theorem1_tree(h) in closed form (= 2h), used by
/// bound tables without materializing.
[[nodiscard]] constexpr std::uint32_t theorem1_tree_diameter(int h) noexcept {
  return static_cast<std::uint32_t>(2 * h);
}

/// Order of make_theorem1_tree(h) in closed form (= 3*2^h - 2).
[[nodiscard]] constexpr std::uint64_t theorem1_tree_order(int h) noexcept {
  return 3 * (std::uint64_t{1} << h) - 2;
}

}  // namespace shc
