// Compact undirected graph in compressed-sparse-row form, plus a mutable
// builder.  This is the materialized-graph substrate used by analysis
// code, baselines, and tests; the sparse-hypercube core also exposes an
// implicit O(1) edge oracle that avoids materialization for large n.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace shc {

/// Dense vertex index of a materialized graph: 0 .. num_vertices()-1.
/// For cube-derived graphs the index of a vertex equals its bit string.
using VertexId = std::uint32_t;

/// An undirected edge with canonical orientation a <= b.
struct Edge {
  VertexId a = 0;
  VertexId b = 0;

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

/// Canonicalizes an endpoint pair into an Edge.
[[nodiscard]] constexpr Edge make_edge(VertexId u, VertexId v) noexcept {
  return (u <= v) ? Edge{u, v} : Edge{v, u};
}

class Graph;

/// Accumulates edges, then freezes into a CSR Graph.  Duplicate edges and
/// self-loops are rejected at build() (the k-line model is on simple
/// graphs); insertion order does not matter.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices) : n_(num_vertices) {}

  /// Adds the undirected edge {u, v}.  Pre: u, v < num_vertices, u != v.
  void add_edge(VertexId u, VertexId v);

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Freezes into an immutable Graph.  Duplicate edges and self-loops
  /// indicate construction bugs upstream; both are detected
  /// unconditionally (release builds included) and reported by throwing
  /// std::invalid_argument naming the offending edge.
  [[nodiscard]] Graph build() &&;

 private:
  VertexId n_;
  std::vector<Edge> edges_;
};

/// Immutable undirected graph in CSR form.  Neighbor lists are sorted, so
/// has_edge() is O(log deg) and iteration order is deterministic.
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  /// Sorted neighbors of `u`.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const noexcept {
    return {adjacency_.data() + offsets_[u], adjacency_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] std::size_t degree(VertexId u) const noexcept {
    return offsets_[u + 1] - offsets_[u];
  }

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;

  /// All edges in canonical (a <= b, lexicographic) order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Maximum vertex degree; 0 for the empty graph.
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Minimum vertex degree; 0 for the empty graph.
  [[nodiscard]] std::size_t min_degree() const noexcept;

 private:
  friend class GraphBuilder;
  std::vector<std::size_t> offsets_;   // size num_vertices()+1
  std::vector<VertexId> adjacency_;    // size 2*num_edges()
};

}  // namespace shc
