#pragma once
// One query API over the four certification engines.
//
// Everything below src/api answers a narrow question ("is this
// streaming broadcast run valid?", "does symbolic gossip complete?")
// with its own entry point, options struct, and result shape.  A
// caller that wants "design + certify (n, k) and tell me what
// happened" — the quickstart, the sweep, the certification server —
// had to know which engine to pick, how to build its spec, and which
// certification struct to unpack.  CertifyRequest/CertifyResult fold
// that into one request → one result:
//
//   CertifyRequest req;
//   req.workload = Workload::kBroadcastSymbolic;
//   req.n = 48;                     // cuts empty -> design_sparse_hypercube
//   CertifyResult res = certify(req);
//   std::cout << to_json_row(res);  // the shc_sweep row schema, verbatim
//
// The facade adds no checking logic of its own: it resolves the spec,
// forwards the shared CommonCheckOptions knobs, times the run with the
// sanctioned obs clock, and repackages the engine's certification.
// Determinism contracts pass straight through — a facade result is
// bit-for-bit the direct engine's result (enforced by tests/api_test).
//
// Layering: api sits above sim/mlbg/gossip/obs.  Nothing in src/
// includes api except api itself; examples and tests consume it freely.

#include <cstdint>
#include <string>
#include <vector>

#include "shc/gossip/symbolic_gossip.hpp"
#include "shc/mlbg/broadcast.hpp"
#include "shc/mlbg/symbolic_broadcast.hpp"
#include "shc/sim/check_options.hpp"
#include "shc/sim/congestion.hpp"
#include "shc/sim/validator.hpp"

namespace shc {

/// Which engine answers the query.
enum class Workload {
  /// Concrete per-call streaming validation (n <= 32): every call is
  /// materialized round by round; peak memory is one round.
  kBroadcastStreaming,
  /// Fully symbolic subcube-group validation (n <= 63): no concrete
  /// call ever exists; time and memory polynomial in n for the paper's
  /// constructions.
  kBroadcastSymbolic,
  /// Symbolic gather-broadcast gossip on a sparse hypercube spec
  /// (n <= 63).
  kGossipSymbolic,
  /// Symbolic dimension-exchange gossip on the full Q_n (k = 1,
  /// n <= 59 before the exchange count overflows 64 bits).
  kExchangeGossip,
};

/// Stable wire name of a workload ("broadcast-streaming", ...).
[[nodiscard]] const char* workload_name(Workload w);

/// Inverse of workload_name; false if `name` matches no workload.
[[nodiscard]] bool workload_from_name(const std::string& name, Workload* out);

/// One certification query.  Field defaults give the quickstart
/// behavior: design a degree-k sparse hypercube and certify broadcast
/// from vertex 0.
struct CertifyRequest {
  Workload workload = Workload::kBroadcastStreaming;

  /// Hypercube dimension (vertices = 2^n).
  int n = 8;
  /// Degree budget handed to design_sparse_hypercube when `cuts` is
  /// empty.  Ignored for kExchangeGossip (always the full cube) and
  /// when `cuts` is given explicitly.
  int k = 2;
  /// Explicit cut vector: non-empty means
  /// SparseHypercubeSpec::construct(n, cuts) instead of the designed
  /// spec.  The resolved cuts are echoed in CertifyResult::cuts either
  /// way.
  std::vector<int> cuts;

  /// Broadcast source / gossip root.  Ignored for kExchangeGossip.
  Vertex source = 0;
  /// Section-5 model: require concurrent calls vertex-disjoint, not
  /// just edge-disjoint (broadcast workloads only).
  bool vertex_disjoint = false;
  /// Also materialize the schedule and attach edge-load congestion
  /// stats (broadcast workloads, n <= 24 only — materializing is
  /// exponential; larger n silently skips, mirroring shc_sweep).
  bool with_congestion = false;

  /// Shared engine knobs: threads / borrowed pool, collision mode,
  /// ledger + sweep budgets, sampling.  `checks.threads` also drives
  /// the streaming validator's worker count.
  CommonCheckOptions checks;
};

/// One certification answer.  Only the fields of the workload's engine
/// are populated; the rest keep their zero defaults.  `report` is
/// filled for every workload (for the gossip workloads it mirrors the
/// GossipReport verdict so callers can test `result.report.ok`
/// uniformly).
struct CertifyResult {
  bool ok = false;
  Workload workload = Workload::kBroadcastStreaming;
  int n = 0;
  int k = 0;
  std::vector<int> cuts;          ///< resolved cut vector
  std::string model;              ///< "edge-disjoint" | "vertex-disjoint"

  ValidationReport report;        ///< broadcast verdict (mirrored for gossip)
  GossipReport gossip;            ///< gossip workloads only
  SymbolicRunStats checks;        ///< kBroadcastSymbolic only
  SymbolicProducerStats producer; ///< kBroadcastSymbolic only
  SymbolicGossipStats gossip_checks;  ///< gossip workloads only

  // kBroadcastStreaming only: arena/memory telemetry of the run.
  std::size_t peak_round_arena_bytes = 0;
  std::size_t largest_round_arena_bytes = 0;
  std::size_t whole_schedule_arena_bytes = 0;
  std::uint64_t calls = 0;

  bool has_congestion = false;
  CongestionStats congestion;     ///< valid iff has_congestion

  /// Wall seconds of the engine run (spec resolution and congestion
  /// analysis excluded), measured with obs::trace_now_ns.
  double seconds = 0.0;
};

/// Answers one query by dispatching to the matching certify_* engine.
/// Throws std::invalid_argument for threads <= 0 or a spec the
/// constructors reject (bad cuts, n out of the designable range);
/// engine-level refusals (n too large for the engine, source out of
/// range, exchange-count overflow) come back as failed reports with
/// ok = false, exactly as the engines report them.
[[nodiscard]] CertifyResult certify(const CertifyRequest& req);

/// Serializes a result as one shc_sweep-schema JSON row (no trailing
/// newline): streaming rows carry the arena fields and optional
/// congestion block, symbolic rows the group stats, gossip rows the
/// knowledge-class stats.  kExchangeGossip uses the gossip shape with
/// engine tag "exchange-gossip".  Existing row consumers parse facade
/// and server output unchanged.
[[nodiscard]] std::string to_json_row(const CertifyResult& res);

/// Admission-control cost model: predicted peak concurrent group count
/// of the query (streaming: 2^n - 1 concrete calls; symbolic: groups
/// grow with n and the level structure; exchange gossip: n).  Not a
/// certificate of anything — a deterministic coarse ranking so the
/// server can bound in-flight heavy queries.
[[nodiscard]] std::uint64_t predicted_group_cost(const CertifyRequest& req);

}  // namespace shc
