#pragma once
// Long-lived certification service engine.
//
// ServeEngine answers newline-delimited JSON certification queries —
// the transport (stdin/stdout loop, Unix socket) lives in
// examples/shc_serve.cpp; everything a test or bench needs is here,
// in-process.  One request line:
//
//   {"id":7,"workload":"broadcast-symbolic","n":24,"k":2}
//
// maps to a CertifyRequest, runs through shc::certify, and answers
// with the shc_sweep row schema plus a service envelope
// (`"id":7,"cache_hit":false` appended before the closing brace), so
// existing sweep-row consumers parse responses unchanged.
//
// Service semantics:
//   * Malformed input never kills the server: every failure — bad
//     JSON, unknown workload, a spec the constructors reject — comes
//     back as a structured `{"ok":false,"error":...}` row.
//   * Certificate cache: completed rows are memoized keyed by
//     (workload, n, resolved cut vector, source, model[, congestion]).
//     Thread counts and budgets are deliberately NOT in the key — the
//     engines' determinism contract makes the report identical for
//     every thread count.  A hit returns the stored row bytes, so
//     cache-hit responses are bit-for-bit the cold run's row (enforced
//     by tests/serve_test).  Lookups are single-flight: concurrent
//     requests for the same cold key elect one leader to certify and
//     the rest wait for its stored bytes, so exactly one cold run per
//     distinct key ever happens and every response for a key carries
//     identical row bytes (the `seconds` field included).
//   * Admission control: queries whose predicted_group_cost reaches
//     ServeOptions::heavy_groups are "heavy"; at most heavy_slots run
//     concurrently and excess heavy queries get an immediate
//     `"refused":true` row (not cached) instead of starving the small
//     ones.  One designed-47 certification runs to completion while
//     thousands of cached small-n queries keep streaming.
//   * Pool reuse: the engine owns one WorkerPool (threads > 1) and
//     lends it to one in-flight query at a time via
//     CommonCheckOptions::pool; concurrent queries that miss the pool
//     run inline rather than spinning up threads per query.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "shc/api/certify.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {

/// Service knobs (transport-independent).
struct ServeOptions {
  /// Workers of the shared WorkerPool lent to queries (1 = every query
  /// runs inline; the pool is never constructed).
  int threads = 1;
  /// Predicted group count at which a query counts as heavy.  The
  /// default puts the designed n = 47 symbolic certification (and
  /// anything bigger) over the line and the small-n sweep mix under it.
  std::uint64_t heavy_groups = std::uint64_t{1} << 13;
  /// Concurrently admitted heavy queries; excess heavy queries are
  /// refused with a structured row.  0 refuses all heavy queries.
  int heavy_slots = 1;
  /// Certificate memoization (disable for cache-parity testing).
  bool enable_cache = true;
};

/// Monotonic service counters (snapshot; exact under concurrency).
struct ServeStats {
  std::uint64_t queries = 0;      ///< request lines handled
  std::uint64_t ok = 0;           ///< rows answered with "ok":true
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0; ///< certifications actually run
  std::uint64_t refused = 0;      ///< admission-control refusals
  std::uint64_t errors = 0;       ///< parse/validation error rows
};

/// In-process certification server.  handle_line is thread-safe: the
/// transport may pump requests from any number of client threads.
class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions opt = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Answers one request line with one response row (no trailing
  /// newline).  Never throws on bad input — errors become rows.
  [[nodiscard]] std::string handle_line(const std::string& line);

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const ServeOptions& options() const { return opt_; }

 private:
  struct Parsed;  // request fields + envelope id (serve.cpp)

  /// Single-flight cache slot: the leader that inserted it certifies
  /// and publishes `row`; concurrent requesters wait on `cv`.  If the
  /// leader fails (refusal, error), it wakes waiters with `row` empty
  /// after unlinking the slot, and they re-compete for the key.
  struct CacheEntry {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    std::string row;  ///< empty after ready => leader did not produce a row
  };

  [[nodiscard]] std::string cache_key(const CertifyRequest& req,
                                      const std::vector<int>& resolved_cuts) const;

  ServeOptions opt_;
  std::unique_ptr<WorkerPool> pool_;  ///< shared across queries, opt_.threads > 1
  std::mutex pool_mu_;                ///< at most one query borrows the pool

  std::mutex cache_mu_;
  std::unordered_map<std::string, std::shared_ptr<CacheEntry>> cache_;

  std::mutex admit_mu_;
  int heavy_in_flight_ = 0;

  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> ok_{0};
  mutable std::atomic<std::uint64_t> cache_hits_{0};
  mutable std::atomic<std::uint64_t> cache_misses_{0};
  mutable std::atomic<std::uint64_t> refused_{0};
  mutable std::atomic<std::uint64_t> errors_{0};
};

}  // namespace shc
