// Facade dispatch: CertifyRequest -> engine -> CertifyResult -> JSON row.
//
// The row serialization reproduces examples/shc_sweep.cpp's historical
// schemas byte-for-byte (field order, spellings, boolean literals, the
// default ostream double formatting of "seconds") — existing consumers
// of sweep output parse facade and server rows unchanged, and the
// sweep itself is now a thin client of to_json_row.

#include "shc/api/certify.hpp"

#include <sstream>
#include <stdexcept>

#include "shc/mlbg/params.hpp"
#include "shc/obs/recorder.hpp"

namespace shc {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void append_cuts(std::ostringstream& os, const std::vector<int>& cuts) {
  os << "\"cuts\":[";
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    os << (i ? "," : "") << cuts[i];
  }
  os << ']';
}

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > ~std::uint64_t{0} / a) return ~std::uint64_t{0};
  return a * b;
}

/// Resolves the request's spec: explicit cuts win, otherwise the
/// degree-k design.  kExchangeGossip never calls this (no spec).
SparseHypercubeSpec resolve_spec(const CertifyRequest& req) {
  if (!req.cuts.empty()) {
    return SparseHypercubeSpec::construct(req.n, req.cuts);
  }
  return design_sparse_hypercube(req.n, req.k);
}

int resolve_threads(const CommonCheckOptions& checks) {
  return checks.pool ? checks.pool->workers() : checks.threads;
}

}  // namespace

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kBroadcastStreaming: return "broadcast-streaming";
    case Workload::kBroadcastSymbolic: return "broadcast-symbolic";
    case Workload::kGossipSymbolic: return "gossip-symbolic";
    case Workload::kExchangeGossip: return "exchange-gossip";
  }
  return "unknown";
}

bool workload_from_name(const std::string& name, Workload* out) {
  if (name == "broadcast-streaming") *out = Workload::kBroadcastStreaming;
  else if (name == "broadcast-symbolic") *out = Workload::kBroadcastSymbolic;
  else if (name == "gossip-symbolic") *out = Workload::kGossipSymbolic;
  else if (name == "exchange-gossip") *out = Workload::kExchangeGossip;
  else return false;
  return true;
}

CertifyResult certify(const CertifyRequest& req) {
  if (req.checks.threads <= 0) {
    throw std::invalid_argument(
        "shc::certify: checks.threads must be >= 1 (got " +
        std::to_string(req.checks.threads) + ")");
  }

  CertifyResult res;
  res.workload = req.workload;
  res.n = req.n;
  res.model = req.vertex_disjoint ? "vertex-disjoint" : "edge-disjoint";

  if (req.workload == Workload::kExchangeGossip) {
    SymbolicGossipOptions sopt;
    static_cast<CommonCheckOptions&>(sopt) = req.checks;
    const std::uint64_t t0 = obs::trace_now_ns();
    const SymbolicGossipCertification cert =
        certify_exchange_gossip_symbolic(req.n, sopt);
    res.seconds = static_cast<double>(obs::trace_now_ns() - t0) * 1e-9;
    res.k = 1;
    res.gossip = cert.report;
    res.gossip_checks = cert.checks;
    res.ok = cert.report.ok;
    // Mirror the gossip verdict so result.report.ok works uniformly.
    res.report.ok = cert.report.ok;
    res.report.error = cert.report.error;
    res.report.rounds = cert.report.rounds;
    res.report.max_call_length = cert.report.max_call_length;
    res.report.total_calls = cert.report.total_exchanges;
    res.report.minimum_time = cert.report.minimum_time;
    return res;
  }

  const SparseHypercubeSpec spec = resolve_spec(req);
  res.k = spec.k();
  res.cuts = spec.cuts();

  ValidationOptions opt;
  opt.k = spec.k();
  opt.require_vertex_disjoint = req.vertex_disjoint;

  switch (req.workload) {
    case Workload::kBroadcastStreaming: {
      const std::uint64_t t0 = obs::trace_now_ns();
      const StreamingCertification cert = certify_broadcast_streaming(
          spec, req.source, opt, resolve_threads(req.checks));
      res.seconds = static_cast<double>(obs::trace_now_ns() - t0) * 1e-9;
      res.report = cert.report;
      res.peak_round_arena_bytes = cert.peak_round_arena_bytes;
      res.largest_round_arena_bytes = cert.largest_round_arena_bytes;
      res.whole_schedule_arena_bytes = cert.whole_schedule_arena_bytes;
      res.calls = cert.calls;
      res.ok = cert.report.ok;
      break;
    }
    case Workload::kBroadcastSymbolic: {
      SymbolicCheckOptions sopt;
      static_cast<CommonCheckOptions&>(sopt) = req.checks;
      const std::uint64_t t0 = obs::trace_now_ns();
      const SymbolicCertification cert =
          certify_broadcast_symbolic(spec, req.source, opt, sopt);
      res.seconds = static_cast<double>(obs::trace_now_ns() - t0) * 1e-9;
      res.report = cert.report;
      res.checks = cert.checks;
      res.producer = cert.producer;
      res.ok = cert.report.ok;
      break;
    }
    case Workload::kGossipSymbolic: {
      SymbolicGossipOptions sopt;
      static_cast<CommonCheckOptions&>(sopt) = req.checks;
      const std::uint64_t t0 = obs::trace_now_ns();
      const SymbolicGossipCertification cert =
          certify_gossip_symbolic(spec, req.source, sopt);
      res.seconds = static_cast<double>(obs::trace_now_ns() - t0) * 1e-9;
      res.gossip = cert.report;
      res.gossip_checks = cert.checks;
      res.ok = cert.report.ok;
      res.report.ok = cert.report.ok;
      res.report.error = cert.report.error;
      res.report.rounds = cert.report.rounds;
      res.report.max_call_length = cert.report.max_call_length;
      res.report.total_calls = cert.report.total_exchanges;
      res.report.minimum_time = cert.report.minimum_time;
      break;
    }
    case Workload::kExchangeGossip:
      break;  // handled above
  }

  // Congestion stats need the materialized schedule: exponential in n,
  // so only the small broadcast sizes opt in (mirrors shc_sweep's
  // n <= 14 grid policy, with headroom).
  if (req.with_congestion && res.ok && req.n <= 24 &&
      (req.workload == Workload::kBroadcastStreaming ||
       req.workload == Workload::kBroadcastSymbolic)) {
    const FlatSchedule schedule = make_broadcast_schedule(spec, req.source);
    res.congestion =
        analyze_congestion_parallel(schedule, resolve_threads(req.checks));
    res.has_congestion = true;
  }
  return res;
}

std::string to_json_row(const CertifyResult& res) {
  std::ostringstream os;
  switch (res.workload) {
    case Workload::kBroadcastStreaming: {
      os << "{\"n\":" << res.n << ",\"k\":" << res.k << ',';
      append_cuts(os, res.cuts);
      os << ",\"model\":\"" << res.model << '"'
         << ",\"ok\":" << (res.report.ok ? "true" : "false")
         << ",\"minimum_time\":" << (res.report.minimum_time ? "true" : "false")
         << ",\"rounds\":" << res.report.rounds
         << ",\"calls\":" << res.calls
         << ",\"max_call_length\":" << res.report.max_call_length
         << ",\"peak_round_arena_bytes\":" << res.peak_round_arena_bytes
         << ",\"largest_round_arena_bytes\":" << res.largest_round_arena_bytes
         << ",\"whole_schedule_arena_bytes\":" << res.whole_schedule_arena_bytes
         << ",\"seconds\":" << res.seconds;
      if (!res.report.ok) {
        os << ",\"error\":\"" << json_escape(res.report.error) << '"';
      }
      if (res.has_congestion) {
        os << ",\"distinct_edges_used\":" << res.congestion.distinct_edges_used
           << ",\"total_edge_hops\":" << res.congestion.total_edge_hops
           << ",\"max_edge_load_total\":" << res.congestion.max_edge_load_total
           << ",\"required_edge_capacity\":"
           << res.congestion.max_edge_load_per_round
           << ",\"mean_edge_load\":" << res.congestion.mean_edge_load;
      }
      os << '}';
      break;
    }
    case Workload::kBroadcastSymbolic: {
      os << "{\"engine\":\"symbolic\",\"n\":" << res.n << ",\"k\":" << res.k
         << ',';
      append_cuts(os, res.cuts);
      os << ",\"ok\":" << (res.report.ok ? "true" : "false")
         << ",\"minimum_time\":" << (res.report.minimum_time ? "true" : "false")
         << ",\"rounds\":" << res.report.rounds
         << ",\"calls\":" << res.report.total_calls
         << ",\"max_call_length\":" << res.report.max_call_length
         << ",\"groups\":" << res.checks.groups
         << ",\"peak_frontier_subcubes\":" << res.checks.peak_frontier_subcubes
         << ",\"peak_round_groups\":" << res.checks.peak_round_groups
         << ",\"collision_candidates\":" << res.checks.collision_candidates
         << ",\"occupancy_claims\":" << res.checks.occupancy_claims
         << ",\"sampled_calls\":" << res.checks.sampled_calls
         << ",\"rounds_checked\":" << res.checks.rounds_checked
         << ",\"union_cache_hits\":" << res.checks.union_cache_hits
         << ",\"union_cache_misses\":" << res.checks.union_cache_misses
         << ",\"reduce_tree_tasks\":" << res.checks.reduce_tree_tasks
         << ",\"seconds\":" << res.seconds;
      if (!res.report.ok) {
        os << ",\"error\":\"" << json_escape(res.report.error) << '"';
      }
      if (res.has_congestion) {
        os << ",\"distinct_edges_used\":" << res.congestion.distinct_edges_used
           << ",\"total_edge_hops\":" << res.congestion.total_edge_hops
           << ",\"max_edge_load_total\":" << res.congestion.max_edge_load_total
           << ",\"required_edge_capacity\":"
           << res.congestion.max_edge_load_per_round
           << ",\"mean_edge_load\":" << res.congestion.mean_edge_load;
      }
      os << '}';
      break;
    }
    case Workload::kGossipSymbolic:
    case Workload::kExchangeGossip: {
      os << "{\"engine\":\""
         << (res.workload == Workload::kGossipSymbolic ? "symbolic-gossip"
                                                       : "exchange-gossip")
         << "\",\"n\":" << res.n << ",\"k\":" << res.k << ',';
      append_cuts(os, res.cuts);
      os << ",\"ok\":" << (res.gossip.ok ? "true" : "false")
         << ",\"complete\":" << (res.gossip.complete ? "true" : "false")
         << ",\"rounds\":" << res.gossip.rounds
         << ",\"exchanges\":" << res.gossip.total_exchanges
         << ",\"max_call_length\":" << res.gossip.max_call_length
         << ",\"groups\":" << res.gossip_checks.groups
         << ",\"peak_classes\":" << res.gossip_checks.classes.peak_classes
         << ",\"peak_knowledge_subcubes\":"
         << res.gossip_checks.classes.peak_knowledge_subcubes
         << ",\"unions\":" << res.gossip_checks.classes.unions_computed
         << ",\"collision_candidates\":"
         << res.gossip_checks.collision_candidates
         << ",\"occupancy_claims\":" << res.gossip_checks.occupancy_claims
         << ",\"sampled_calls\":" << res.gossip_checks.sampled_calls
         << ",\"rounds_checked\":" << res.gossip_checks.rounds_checked
         << ",\"union_cache_hits\":"
         << res.gossip_checks.classes.union_cache_hits
         << ",\"union_cache_misses\":"
         << res.gossip_checks.classes.union_cache_misses
         << ",\"reduce_tree_tasks\":"
         << res.gossip_checks.classes.reduce_tree_tasks
         << ",\"seconds\":" << res.seconds;
      if (!res.gossip.ok) {
        os << ",\"error\":\"" << json_escape(res.gossip.error) << '"';
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

std::uint64_t predicted_group_cost(const CertifyRequest& req) {
  if (req.workload == Workload::kExchangeGossip) {
    return req.n > 0 ? static_cast<std::uint64_t>(req.n) : 0;
  }
  if (req.workload == Workload::kBroadcastStreaming) {
    if (req.n <= 0) return 0;
    if (req.n >= 63) return ~std::uint64_t{0};
    return (std::uint64_t{1} << req.n) - 1;  // concrete calls = vertices - 1
  }
  // Symbolic workloads: concurrent group counts grow with the label
  // classes of each recursion level's core window (2^window subcube
  // patterns), times the n broadcast rounds — a coarse deterministic
  // ranking, not a certificate.  Designed n = 47 (window 8) ranks ~12k,
  // the small-n mix under 1k.  Unresolvable specs rank as free (the
  // engine will refuse them cheaply anyway).
  std::uint64_t cost = req.n > 0 ? static_cast<std::uint64_t>(req.n) : 1;
  try {
    const SparseHypercubeSpec spec = resolve_spec(req);
    for (const auto& level : spec.levels()) {
      const int window = level.win_hi - level.win_lo;
      if (window > 0 && window < 64) {
        cost = saturating_mul(cost, std::uint64_t{1} << window);
      }
    }
  } catch (const std::exception&) {
    return 0;
  }
  if (req.workload == Workload::kGossipSymbolic) {
    cost = saturating_mul(cost, 2);
  }
  return cost;
}

}  // namespace shc
