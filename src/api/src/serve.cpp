// ServeEngine: line protocol parsing, certificate cache, admission
// control, pool lending.  No transport here — examples/shc_serve.cpp
// owns the stdin/socket plumbing.

#include "shc/api/serve.hpp"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "shc/mlbg/params.hpp"

namespace shc {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the request protocol (objects,
// arrays, strings, numbers, booleans, null).  Malformed input produces
// an error message, never UB: the server's contract is that every bad
// line becomes a structured error row.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses the whole line as one value; trailing non-space is an error.
  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (i_ != s_.size()) return fail("trailing characters after value");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return err_; }

 private:
  bool fail(const std::string& what) {
    if (err_.empty()) {
      err_ = what + " at byte " + std::to_string(i_);
    }
    return false;
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r' || s_[i_] == '\n')) {
      ++i_;
    }
  }

  bool consume(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_value(JsonValue* out) {
    if (i_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[i_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return parse_string(&out->str);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue val;
      if (!parse_value(&val)) return false;
      out->obj.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue val;
      if (!parse_value(&val)) return false;
      out->arr.push_back(std::move(val));
      skip_ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (i_ >= s_.size()) return fail("dangling escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (i_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int d = 0; d < 4; ++d) {
            const char h = s_[i_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          // Basic-plane code point to UTF-8 (surrogate pairs are not
          // a thing request fields need; reject them explicitly).
          if (cp >= 0xD800 && cp <= 0xDFFF) return fail("surrogate \\u escape");
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue* out) {
    out->kind = JsonValue::kBool;
    if (s_.compare(i_, 4, "true") == 0) {
      out->b = true;
      i_ += 4;
      return true;
    }
    if (s_.compare(i_, 5, "false") == 0) {
      out->b = false;
      i_ += 5;
      return true;
    }
    return fail("expected true/false");
  }

  bool parse_null(JsonValue* out) {
    out->kind = JsonValue::kNull;
    if (s_.compare(i_, 4, "null") == 0) {
      i_ += 4;
      return true;
    }
    return fail("expected null");
  }

  bool parse_number(JsonValue* out) {
    out->kind = JsonValue::kNumber;
    const char* begin = s_.data() + i_;
    const char* end = s_.data() + s_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out->num);
    if (ec != std::errc{} || ptr == begin) return fail("expected a value");
    i_ = static_cast<std::size_t>(ptr - s_.data());
    return true;
  }

  const std::string& s_;
  std::size_t i_ = 0;
  std::string err_;
};

// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Appends the service envelope before the row's closing brace.
std::string with_envelope(std::string row, bool has_id, long long id,
                          bool has_hit, bool hit) {
  std::string extra;
  if (has_id) extra += ",\"id\":" + std::to_string(id);
  if (has_hit) extra += std::string(",\"cache_hit\":") + (hit ? "true" : "false");
  if (extra.empty()) return row;
  if (!row.empty() && row.back() == '}') {
    row.insert(row.size() - 1, extra);
  }
  return row;
}

std::string error_row(const std::string& msg, bool has_id, long long id) {
  return with_envelope("{\"ok\":false,\"error\":\"" + json_escape(msg) + "\"}",
                       has_id, id, false, false);
}

bool integral(const JsonValue& v, long long* out) {
  if (v.kind != JsonValue::kNumber) return false;
  if (v.num != std::floor(v.num) || std::abs(v.num) > 9.0e15) return false;
  *out = static_cast<long long>(v.num);
  return true;
}

}  // namespace

/// One decoded request line: the certify query plus the envelope id.
struct ServeEngine::Parsed {
  CertifyRequest req;
  bool has_id = false;
  long long id = 0;
  std::string error;  ///< non-empty => the line is invalid
};

ServeEngine::ServeEngine(ServeOptions opt) : opt_(opt) {
  if (opt_.threads > 1) pool_ = std::make_unique<WorkerPool>(opt_.threads);
}

ServeEngine::~ServeEngine() = default;

ServeStats ServeEngine::stats() const {
  ServeStats s;
  s.queries = queries_.load();
  s.ok = ok_.load();
  s.cache_hits = cache_hits_.load();
  s.cache_misses = cache_misses_.load();
  s.refused = refused_.load();
  s.errors = errors_.load();
  return s;
}

std::string ServeEngine::cache_key(const CertifyRequest& req,
                                   const std::vector<int>& resolved_cuts) const {
  std::ostringstream key;
  key << workload_name(req.workload) << '|' << req.n << '|';
  for (std::size_t i = 0; i < resolved_cuts.size(); ++i) {
    key << (i ? "," : "") << resolved_cuts[i];
  }
  key << '|' << req.source << '|'
      << (req.vertex_disjoint ? "vertex-disjoint" : "edge-disjoint")
      << (req.with_congestion ? "|congestion" : "");
  return key.str();
}

std::string ServeEngine::handle_line(const std::string& line) {
  queries_.fetch_add(1);

  // Decode.  Every exit below answers with exactly one row.
  Parsed p;
  {
    JsonValue root;
    JsonParser parser(line);
    if (!parser.parse(&root)) {
      errors_.fetch_add(1);
      return error_row("parse: " + parser.error(), false, 0);
    }
    if (root.kind != JsonValue::kObject) {
      errors_.fetch_add(1);
      return error_row("parse: request must be a JSON object", false, 0);
    }
    bool saw_workload = false, saw_n = false;
    for (const auto& [key, val] : root.obj) {
      long long num = 0;
      if (key == "id") {
        if (!integral(val, &p.id)) { p.error = "id must be an integer"; break; }
        p.has_id = true;
      } else if (key == "workload") {
        if (val.kind != JsonValue::kString ||
            !workload_from_name(val.str, &p.req.workload)) {
          p.error = "unknown workload (want broadcast-streaming | "
                    "broadcast-symbolic | gossip-symbolic | exchange-gossip)";
          break;
        }
        saw_workload = true;
      } else if (key == "n") {
        if (!integral(val, &num)) { p.error = "n must be an integer"; break; }
        p.req.n = static_cast<int>(num);
        saw_n = true;
      } else if (key == "k") {
        if (!integral(val, &num)) { p.error = "k must be an integer"; break; }
        p.req.k = static_cast<int>(num);
      } else if (key == "cuts") {
        if (val.kind != JsonValue::kArray) {
          p.error = "cuts must be an array of integers";
          break;
        }
        for (const JsonValue& c : val.arr) {
          if (!integral(c, &num)) { p.error = "cuts must be an array of integers"; break; }
          p.req.cuts.push_back(static_cast<int>(num));
        }
        if (!p.error.empty()) break;
      } else if (key == "source" || key == "root") {
        if (!integral(val, &num) || num < 0) {
          p.error = key + " must be a non-negative integer";
          break;
        }
        p.req.source = static_cast<Vertex>(num);
      } else if (key == "model") {
        if (val.kind == JsonValue::kString && val.str == "edge-disjoint") {
          p.req.vertex_disjoint = false;
        } else if (val.kind == JsonValue::kString && val.str == "vertex-disjoint") {
          p.req.vertex_disjoint = true;
        } else {
          p.error = "model must be \"edge-disjoint\" or \"vertex-disjoint\"";
          break;
        }
      } else if (key == "threads") {
        if (!integral(val, &num) || num <= 0) {
          p.error = "threads must be an integer >= 1";
          break;
        }
        p.req.checks.threads = static_cast<int>(num);
      } else if (key == "congestion") {
        if (val.kind != JsonValue::kBool) { p.error = "congestion must be a boolean"; break; }
        p.req.with_congestion = val.b;
      } else {
        // Strict: an unknown key is a typo'd knob, and silently
        // ignoring it would certify something other than what the
        // client asked for.
        p.error = "unknown field: " + key;
        break;
      }
    }
    if (p.error.empty() && !saw_workload) p.error = "missing field: workload";
    if (p.error.empty() && !saw_n) p.error = "missing field: n";
  }
  if (!p.error.empty()) {
    errors_.fetch_add(1);
    return error_row(p.error, p.has_id, p.id);
  }

  // Resolve the cut vector once: it keys the cache, and a spec the
  // constructors reject becomes an error row here instead of a throw
  // deep in certify.
  std::vector<int> resolved_cuts;
  if (p.req.workload != Workload::kExchangeGossip) {
    try {
      resolved_cuts = p.req.cuts.empty()
                          ? design_sparse_hypercube(p.req.n, p.req.k).cuts()
                          : SparseHypercubeSpec::construct(p.req.n, p.req.cuts).cuts();
    } catch (const std::exception& e) {
      errors_.fetch_add(1);
      return error_row(std::string("spec: ") + e.what(), p.has_id, p.id);
    }
  }
  const std::string key = cache_key(p.req, resolved_cuts);

  // Single-flight cache: one leader per cold key certifies; everyone
  // else waits on its slot and replays the stored bytes, so a key's
  // row — `seconds` included — is identical across every response and
  // exactly one certification runs per distinct key.  A leader that
  // produces no row (refusal, engine error) unlinks the slot and wakes
  // the waiters to re-compete — each retry either finds a completed
  // row, leads, or is refused itself, so every request terminates.
  for (;;) {
    std::shared_ptr<CacheEntry> entry;
    bool leader = true;
    if (opt_.enable_cache) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      auto [it, inserted] =
          cache_.try_emplace(key, std::make_shared<CacheEntry>());
      entry = it->second;
      leader = inserted;
    }

    if (!leader) {
      std::unique_lock<std::mutex> wait_lock(entry->mu);
      entry->cv.wait(wait_lock, [&] { return entry->ready; });
      if (entry->row.empty()) continue;  // leader failed; compete again
      cache_hits_.fetch_add(1);
      if (entry->row.find("\"ok\":true") != std::string::npos) ok_.fetch_add(1);
      return with_envelope(entry->row, p.has_id, p.id, true, true);
    }

    // Leader from here on: every exit must publish the slot's outcome.
    const auto abandon = [&] {
      if (!entry) return;
      {
        std::lock_guard<std::mutex> lock(cache_mu_);
        cache_.erase(key);
      }
      std::lock_guard<std::mutex> lock(entry->mu);
      entry->ready = true;  // row stays empty => waiters re-compete
      entry->cv.notify_all();
    };

    // Admission: heavy queries take a slot or answer a refusal row.
    const std::uint64_t cost = predicted_group_cost(p.req);
    const bool heavy = cost >= opt_.heavy_groups;
    if (heavy) {
      bool admitted = false;
      {
        std::lock_guard<std::mutex> lock(admit_mu_);
        if (heavy_in_flight_ < opt_.heavy_slots) {
          ++heavy_in_flight_;
          admitted = true;
        }
      }
      if (!admitted) {
        refused_.fetch_add(1);
        abandon();
        return with_envelope(
            "{\"ok\":false,\"refused\":true,\"error\":\"admission: predicted "
            "group cost " + std::to_string(cost) + " >= heavy_groups " +
            std::to_string(opt_.heavy_groups) + " and no heavy slot is free\"}",
            p.has_id, p.id, false, false);
      }
    }

    std::string row;
    bool row_ok = false;
    try {
      // Lend the shared pool to one query at a time; everyone else runs
      // inline (WorkerPool::run is not reentrant).
      std::unique_lock<std::mutex> pool_lock(pool_mu_, std::defer_lock);
      if (pool_ && pool_lock.try_lock()) {
        p.req.checks.pool = pool_.get();
      } else {
        p.req.checks.threads = 1;
        p.req.checks.pool = nullptr;
      }
      const CertifyResult res = certify(p.req);
      row = to_json_row(res);
      row_ok = res.ok;
    } catch (const std::exception& e) {
      if (heavy) {
        std::lock_guard<std::mutex> lock(admit_mu_);
        --heavy_in_flight_;
      }
      errors_.fetch_add(1);
      abandon();
      return error_row(e.what(), p.has_id, p.id);
    }
    if (heavy) {
      std::lock_guard<std::mutex> lock(admit_mu_);
      --heavy_in_flight_;
    }

    cache_misses_.fetch_add(1);
    if (row_ok) ok_.fetch_add(1);
    if (entry) {
      std::lock_guard<std::mutex> lock(entry->mu);
      entry->row = row;
      entry->ready = true;
      entry->cv.notify_all();
    }
    return with_envelope(std::move(row), p.has_id, p.id, true, false);
  }
}

}  // namespace shc
