// Dense linear algebra over GF(2) with rows packed into 64-bit words.
// Sized for coding-theory workloads in this library (dimensions <= 63),
// not for general-purpose use.
#pragma once

#include <cstdint>
#include <vector>

namespace shc {

/// A rows x cols binary matrix, cols <= 63, each row one uint64 word
/// (bit j = entry in column j).
class Gf2Matrix {
 public:
  Gf2Matrix(int rows, int cols);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  [[nodiscard]] int get(int r, int c) const noexcept {
    return static_cast<int>((row_[static_cast<std::size_t>(r)] >> c) & 1U);
  }
  void set(int r, int c, int value) noexcept;

  /// Raw packed row (bit j = column j entry).
  [[nodiscard]] std::uint64_t row_word(int r) const noexcept {
    return row_[static_cast<std::size_t>(r)];
  }
  void set_row_word(int r, std::uint64_t w) noexcept {
    row_[static_cast<std::size_t>(r)] = w;
  }

  /// Matrix-vector product over GF(2): bit r of the result is
  /// <row r, x> mod 2.  `x` is packed with bit j = coordinate j.
  [[nodiscard]] std::uint64_t mul_vec(std::uint64_t x) const noexcept;

  /// Rank over GF(2) (Gaussian elimination on a copy).
  [[nodiscard]] int rank() const;

 private:
  int rows_;
  int cols_;
  std::vector<std::uint64_t> row_;
};

/// All 2^dim vectors spanned by the given packed generators (each a
/// 64-bit row vector).  Pre: generators linearly independent, size <= 20.
[[nodiscard]] std::vector<std::uint64_t> span(const std::vector<std::uint64_t>& generators);

}  // namespace shc
