// Binary Hamming codes H(2^p - 1, 2^p - 1 - p) and the perfect-code
// facts the paper's Lemma 2 rests on:
//
//   * the columns of the parity-check matrix are all nonzero p-bit
//     vectors, so flipping coordinate i of a word changes its syndrome
//     by the i-th column — a bijection between the coordinates of a word
//     and the other 2^p - 1 syndromes;
//   * hence the closed neighborhood of any vertex of Q_m (m = 2^p - 1)
//     realizes every syndrome exactly once, and each syndrome class
//     (coset of the code) is a perfect dominating set of Q_m.
//
// The labeling module turns these facts into Condition-A labelings.
#pragma once

#include <cstdint>
#include <vector>

#include "shc/bits/vertex.hpp"
#include "shc/coding/gf2.hpp"

namespace shc {

/// The binary Hamming code of redundancy `p` (1 <= p <= 6): block length
/// m = 2^p - 1, 2^p syndrome classes.
class HammingCode {
 public:
  explicit HammingCode(int p);

  [[nodiscard]] int redundancy() const noexcept { return p_; }
  [[nodiscard]] int length() const noexcept { return m_; }
  [[nodiscard]] int num_syndromes() const noexcept { return 1 << p_; }

  /// Syndrome of a length-m word (coordinate i of the word at machine
  /// bit i-1, matching Vertex packing).  Value in [0, 2^p).
  [[nodiscard]] std::uint32_t syndrome(Vertex word) const noexcept;

  /// Column i (1-based coordinate) of the parity-check matrix — equals
  /// the syndrome delta caused by flipping coordinate i.  By
  /// construction column i is the p-bit value i.
  [[nodiscard]] std::uint32_t column(Dim i) const noexcept;

  /// For a word with syndrome s and any target syndrome t != s, the
  /// unique coordinate whose flip moves the word into syndrome class t.
  [[nodiscard]] Dim correcting_dim(std::uint32_t s, std::uint32_t t) const noexcept;

  /// All codewords (syndrome-0 words).  Pre: p <= 5 (2^26 words at p=6
  /// is wasteful; tests use p <= 4).
  [[nodiscard]] std::vector<Vertex> codewords() const;

  /// The parity check matrix as a p x m GF(2) matrix.
  [[nodiscard]] const Gf2Matrix& parity_check() const noexcept { return check_; }

 private:
  int p_;
  int m_;
  Gf2Matrix check_;
};

/// True iff `code` (a set of length-m words) is a perfect 1-covering of
/// Q_m: every word of Q_m is within Hamming distance 1 of exactly one
/// element.  Used by tests to certify the Hamming construction.
[[nodiscard]] bool is_perfect_covering(const std::vector<Vertex>& code, int m);

}  // namespace shc
