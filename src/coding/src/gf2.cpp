#include "shc/coding/gf2.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace shc {

Gf2Matrix::Gf2Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 0 || cols < 0 || cols > 63) {
    throw std::invalid_argument("Gf2Matrix: need rows >= 0 and cols in "
                                "[0, 63], got rows=" +
                                std::to_string(rows) +
                                " cols=" + std::to_string(cols));
  }
  row_.assign(static_cast<std::size_t>(rows), 0);
}

void Gf2Matrix::set(int r, int c, int value) noexcept {
  // shc-lint: allow(assert-guard) — noexcept hot-path accessor; the
  // bounds are the caller's contract, not user input.
  assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  const std::uint64_t bit = std::uint64_t{1} << c;
  if (value != 0) {
    row_[static_cast<std::size_t>(r)] |= bit;
  } else {
    row_[static_cast<std::size_t>(r)] &= ~bit;
  }
}

std::uint64_t Gf2Matrix::mul_vec(std::uint64_t x) const noexcept {
  std::uint64_t y = 0;
  for (int r = 0; r < rows_; ++r) {
    const int parity = __builtin_parityll(row_[static_cast<std::size_t>(r)] & x);
    y |= static_cast<std::uint64_t>(parity) << r;
  }
  return y;
}

int Gf2Matrix::rank() const {
  std::vector<std::uint64_t> rows = row_;
  int rank = 0;
  for (int c = 0; c < cols_ && rank < rows_; ++c) {
    const std::uint64_t bit = std::uint64_t{1} << c;
    int pivot = -1;
    for (int r = rank; r < rows_; ++r) {
      if (rows[static_cast<std::size_t>(r)] & bit) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(rows[static_cast<std::size_t>(pivot)], rows[static_cast<std::size_t>(rank)]);
    for (int r = 0; r < rows_; ++r) {
      if (r != rank && (rows[static_cast<std::size_t>(r)] & bit)) {
        rows[static_cast<std::size_t>(r)] ^= rows[static_cast<std::size_t>(rank)];
      }
    }
    ++rank;
  }
  return rank;
}

std::vector<std::uint64_t> span(const std::vector<std::uint64_t>& generators) {
  if (generators.size() > 20) {
    throw std::invalid_argument("span: at most 20 generators supported, got " +
                                std::to_string(generators.size()));
  }
  std::vector<std::uint64_t> out;
  out.reserve(std::size_t{1} << generators.size());
  out.push_back(0);
  for (std::uint64_t g : generators) {
    const std::size_t sz = out.size();
    for (std::size_t i = 0; i < sz; ++i) out.push_back(out[i] ^ g);
  }
  return out;
}

}  // namespace shc
