#include "shc/coding/hamming.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace shc {

HammingCode::HammingCode(int p)
    : p_(p), m_((1 << p) - 1), check_(p, (1 << p) - 1) {
  if (p < 1 || p > 6) {
    throw std::invalid_argument("HammingCode: p must be in [1, 6], got " +
                                std::to_string(p));
  }
  // Column i (1-based) of the parity-check matrix is the binary
  // representation of i itself; every nonzero p-bit vector appears
  // exactly once, which is the defining property of the Hamming code.
  for (int r = 0; r < p_; ++r) {
    std::uint64_t row = 0;
    for (int i = 1; i <= m_; ++i) {
      if ((static_cast<unsigned>(i) >> r) & 1U) row |= std::uint64_t{1} << (i - 1);
    }
    check_.set_row_word(r, row);
  }
}

std::uint32_t HammingCode::syndrome(Vertex word) const noexcept {
  return static_cast<std::uint32_t>(check_.mul_vec(word));
}

std::uint32_t HammingCode::column(Dim i) const noexcept {
  // shc-lint: allow(assert-guard) — noexcept hot-path accessor; the
  // range is the caller's contract, not user input.
  assert(i >= 1 && i <= m_);
  // With the canonical ordering above, the column for coordinate i is i.
  return static_cast<std::uint32_t>(i);
}

Dim HammingCode::correcting_dim(std::uint32_t s, std::uint32_t t) const noexcept {
  // shc-lint: allow(assert-guard) — noexcept hot-path accessor; the
  // syndromes are computed internally, not user input.
  assert(s != t && s < static_cast<std::uint32_t>(num_syndromes()) &&
         t < static_cast<std::uint32_t>(num_syndromes()));
  // Flipping coordinate i adds column(i) = i to the syndrome, so the
  // required coordinate is simply s xor t.
  return static_cast<Dim>(s ^ t);
}

std::vector<Vertex> HammingCode::codewords() const {
  if (p_ > 5) {
    throw std::invalid_argument(
        "HammingCode::codewords: enumeration supported only for p <= 5, "
        "this code has p = " + std::to_string(p_));
  }
  std::vector<Vertex> words;
  words.reserve(cube_order(m_ - p_));
  for (Vertex u = 0; u < cube_order(m_); ++u) {
    if (syndrome(u) == 0) words.push_back(u);
  }
  return words;
}

bool is_perfect_covering(const std::vector<Vertex>& code, int m) {
  if (m < 1 || m > 24) {
    throw std::invalid_argument("is_perfect_covering: m must be in [1, 24], "
                                "got " + std::to_string(m));
  }
  std::vector<std::uint8_t> covered(cube_order(m), 0);
  for (Vertex c : code) {
    if (c >= cube_order(m)) {
      throw std::invalid_argument("is_perfect_covering: codeword " +
                                  std::to_string(c) + " outside Q_" +
                                  std::to_string(m));
    }
    if (++covered[c] > 1) return false;
    for (Dim i = 1; i <= m; ++i) {
      if (++covered[flip(c, i)] > 1) return false;
    }
  }
  for (std::uint8_t x : covered) {
    if (x != 1) return false;
  }
  return true;
}

}  // namespace shc
