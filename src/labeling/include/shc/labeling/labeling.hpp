// Condition-A labelings of Q_m (Section 3 of the paper).
//
// A labeling f : V(Q_m) -> C satisfies Condition A iff for every vertex
// u the closed neighborhood N[u] realizes every label of C — equivalently
// each label class is a dominating set of Q_m, i.e. the classes form a
// domatic partition.  The number of labels lambda drives the sparse
// hypercube's degree: the n - m cross dimensions are split into lambda
// groups, so bigger lambda means fewer cross edges per vertex.
//
// Constructions provided (Lemma 2):
//   * trivial:    lambda = 1, any m;
//   * Hamming:    lambda = m + 1 when m = 2^p - 1 (optimal — matches the
//                 upper bound lambda <= m + 1);
//   * recursive:  lambda = m' + 1 >= (m + 1) / 2 for general m, where
//                 m' is the largest 2^p - 1 <= m (label by the Hamming
//                 syndrome of the low m' coordinates);
//   * exact:      branch-and-bound search for the true maximum (small m),
//                 in domatic.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "shc/bits/vertex.hpp"

namespace shc {

/// Label index into a Condition-A labeling; the paper's c_{j+1}.
using Label = std::uint32_t;

/// A labeling of V(Q_m) by labels 0 .. num_labels-1.
class CubeLabeling {
 public:
  /// Pre: 1 <= m <= 24; labels.size() == 2^m; every value < num_labels.
  CubeLabeling(int m, Label num_labels, std::vector<Label> labels);

  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] Label num_labels() const noexcept { return num_labels_; }

  /// Label of the length-m word `u` (the paper's f(u)).
  [[nodiscard]] Label at(Vertex u) const noexcept {
    return labels_[static_cast<std::size_t>(u)];
  }

  /// The word reached from `u` by one coordinate flip (or u itself) whose
  /// label is `want`; encoded as the flip dimension in 1..m, or 0 when u
  /// itself carries the label.  Pre: Condition A holds (the table is
  /// built by condition-A-checked factories).  O(1) via precomputed map.
  [[nodiscard]] Dim flip_towards(Vertex u, Label want) const noexcept {
    return flip_to_[static_cast<std::size_t>(u) * num_labels_ + want];
  }

  /// Checks Condition A exhaustively (every closed neighborhood realizes
  /// every label).  The factories below only return labelings for which
  /// this holds; exposed for tests and user-supplied labelings.
  [[nodiscard]] bool satisfies_condition_a() const noexcept;

  /// Sizes of the label classes.
  [[nodiscard]] std::vector<std::size_t> class_sizes() const;

  /// Members of one label class (a dominating set of Q_m).
  [[nodiscard]] std::vector<Vertex> label_class(Label c) const;

 private:
  void build_flip_table();

  int m_;
  Label num_labels_;
  std::vector<Label> labels_;  // size 2^m
  std::vector<Dim> flip_to_;   // size 2^m * num_labels, 0 = "self"
};

/// The trivial 1-label labeling (always satisfies Condition A).
[[nodiscard]] CubeLabeling trivial_labeling(int m);

/// Hamming syndrome labeling of Q_{2^p - 1}: lambda = 2^p = m + 1 labels.
/// Optimal by the upper bound of Lemma 2.  Pre: 1 <= p <= 4 in tests
/// (table size 2^m grows fast; p <= 4 means m <= 15).
[[nodiscard]] CubeLabeling hamming_labeling(int p);

/// Lemma-2 labeling for arbitrary m >= 1: Hamming on the low m' bits
/// with m' the largest 2^p - 1 <= m.  lambda = m' + 1 >= (m + 1) / 2.
[[nodiscard]] CubeLabeling lemma2_labeling(int m);

/// Number of labels lemma2_labeling(m) yields, in closed form (no table
/// construction) — used for degree formulas at large m.
[[nodiscard]] Label lemma2_num_labels(int m) noexcept;

/// The paper's Example-1 labelings, pinned for tests and the Figure 2/3
/// reconstruction: f(00)=f(11)=c1, f(01)=f(10)=c2 for m=2, and the
/// 4-label m=3 labeling.
[[nodiscard]] CubeLabeling example1_labeling_m2();
[[nodiscard]] CubeLabeling example1_labeling_m3();

}  // namespace shc
