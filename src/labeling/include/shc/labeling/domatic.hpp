// Exact maximum Condition-A labelings of Q_m by branch-and-bound.
//
// The maximum number of labels lambda_m equals the domatic number of
// Q_m (a partition into dominating sets is exactly a Condition-A
// labeling).  Known small values certified by this solver and pinned in
// tests: lambda_1 = 2, lambda_2 = 2, lambda_3 = 4, lambda_4 = 4,
// lambda_5 = 4 (the m = 2 case shows the paper's lower bound
// floor(m/2) + 1 is tight).
//
// The search assigns labels to vertices in numeric order with two
// prunings: (a) feasibility — a closed neighborhood whose undecided
// slots cannot cover its missing labels fails; (b) symmetry — vertex 0's
// neighborhood labels are fixed canonically up to label renaming.
#pragma once

#include <cstdint>
#include <optional>

#include "shc/labeling/labeling.hpp"

namespace shc {

/// Searches for a Condition-A labeling of Q_m with exactly
/// `num_labels` labels.  `node_budget` caps explored search nodes
/// (returns nullopt when exhausted — callers treat that as "unknown").
[[nodiscard]] std::optional<CubeLabeling> find_condition_a_labeling(
    int m, Label num_labels, std::uint64_t node_budget = 50'000'000);

/// Result of the exact maximization.
struct DomaticResult {
  Label lambda = 0;         ///< best label count found
  bool proven_optimal = false;  ///< true when lambda+1 was refuted within budget
};

/// Computes lambda_m by descending search from the upper bound m + 1.
/// Pre: 1 <= m <= 6 (Q_6 = 64 vertices is the practical ceiling).
[[nodiscard]] DomaticResult max_condition_a_labels(
    int m, std::uint64_t node_budget = 50'000'000);

}  // namespace shc
