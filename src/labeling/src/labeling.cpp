#include "shc/labeling/labeling.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "shc/coding/hamming.hpp"

namespace shc {

CubeLabeling::CubeLabeling(int m, Label num_labels, std::vector<Label> labels)
    : m_(m), num_labels_(num_labels), labels_(std::move(labels)) {
  if (m < 1 || m > 24) {
    throw std::invalid_argument("CubeLabeling: m must be in [1, 24], got " +
                                std::to_string(m));
  }
  if (num_labels_ < 1) {
    throw std::invalid_argument("CubeLabeling: need at least one label, got " +
                                std::to_string(num_labels_));
  }
  if (labels_.size() != cube_order(m_)) {
    throw std::invalid_argument(
        "CubeLabeling: label vector has " + std::to_string(labels_.size()) +
        " entries, expected 2^" + std::to_string(m_));
  }
  for (Label l : labels_) {
    if (l >= num_labels_) {
      throw std::invalid_argument("CubeLabeling: label " + std::to_string(l) +
                                  " outside [0, " + std::to_string(num_labels_) +
                                  ")");
    }
  }
  build_flip_table();
}

void CubeLabeling::build_flip_table() {
  // flip_to_[u * lambda + c] = 0 if f(u) == c, else the smallest
  // dimension i with f(flip(u, i)) == c, else -1 (Condition A violated
  // at (u, c)).
  flip_to_.assign(labels_.size() * num_labels_, -1);
  for (Vertex u = 0; u < labels_.size(); ++u) {
    const std::size_t base = static_cast<std::size_t>(u) * num_labels_;
    flip_to_[base + at(u)] = 0;
    for (Dim i = m_; i >= 1; --i) {
      const Label c = at(flip(u, i));
      if (c != at(u)) flip_to_[base + c] = i;
    }
  }
}

bool CubeLabeling::satisfies_condition_a() const noexcept {
  for (Dim d : flip_to_) {
    if (d < 0) return false;
  }
  return true;
}

std::vector<std::size_t> CubeLabeling::class_sizes() const {
  std::vector<std::size_t> sizes(num_labels_, 0);
  for (Label l : labels_) ++sizes[l];
  return sizes;
}

std::vector<Vertex> CubeLabeling::label_class(Label c) const {
  if (c >= num_labels_) {
    throw std::invalid_argument("CubeLabeling::label_class: label " +
                                std::to_string(c) + " outside [0, " +
                                std::to_string(num_labels_) + ")");
  }
  std::vector<Vertex> members;
  for (Vertex u = 0; u < labels_.size(); ++u) {
    if (labels_[static_cast<std::size_t>(u)] == c) members.push_back(u);
  }
  return members;
}

CubeLabeling trivial_labeling(int m) {
  return CubeLabeling(m, 1, std::vector<Label>(cube_order(m), 0));
}

CubeLabeling hamming_labeling(int p) {
  if (p < 1 || p > 4) {
    throw std::invalid_argument("hamming_labeling: p must be in [1, 4], got " +
                                std::to_string(p));
  }
  const HammingCode code(p);
  const int m = code.length();
  std::vector<Label> labels(cube_order(m));
  for (Vertex u = 0; u < labels.size(); ++u) {
    labels[static_cast<std::size_t>(u)] = code.syndrome(u);
  }
  return CubeLabeling(m, static_cast<Label>(code.num_syndromes()), std::move(labels));
}

Label lemma2_num_labels(int m) noexcept {
  // shc-lint: allow(assert-guard) — noexcept helper; lemma2_labeling
  // validates m before release builds reach this point.
  assert(m >= 1);
  // Largest m' = 2^p - 1 with m' <= m; lambda = m' + 1.
  unsigned p = 1;
  while (((1U << (p + 1)) - 1) <= static_cast<unsigned>(m)) ++p;
  return (1U << p);
}

CubeLabeling lemma2_labeling(int m) {
  if (m < 1 || m > 24) {
    throw std::invalid_argument("lemma2_labeling: m must be in [1, 24], got " +
                                std::to_string(m));
  }
  const Label lambda = lemma2_num_labels(m);
  int p = 0;
  while ((1U << p) < lambda) ++p;
  const HammingCode code(p);
  const Vertex low = mask_low(code.length());
  std::vector<Label> labels(cube_order(m));
  for (Vertex u = 0; u < labels.size(); ++u) {
    labels[static_cast<std::size_t>(u)] = code.syndrome(u & low);
  }
  return CubeLabeling(m, lambda, std::move(labels));
}

CubeLabeling example1_labeling_m2() {
  // f(00) = f(11) = c1 (label 0); f(01) = f(10) = c2 (label 1).
  return CubeLabeling(2, 2, {0, 1, 1, 0});
}

CubeLabeling example1_labeling_m3() {
  // f(000)=f(111)=c1, f(001)=f(110)=c2, f(010)=f(101)=c3, f(011)=f(100)=c4;
  // indices below are the words 000..111 in numeric order.
  return CubeLabeling(3, 4, {0, 1, 2, 3, 3, 2, 1, 0});
}

}  // namespace shc
