#include "shc/labeling/labeling.hpp"

#include <cassert>

#include "shc/coding/hamming.hpp"

namespace shc {

CubeLabeling::CubeLabeling(int m, Label num_labels, std::vector<Label> labels)
    : m_(m), num_labels_(num_labels), labels_(std::move(labels)) {
  assert(m >= 1 && m <= 24);
  assert(num_labels_ >= 1);
  assert(labels_.size() == cube_order(m_));
#ifndef NDEBUG
  for (Label l : labels_) assert(l < num_labels_);
#endif
  build_flip_table();
}

void CubeLabeling::build_flip_table() {
  // flip_to_[u * lambda + c] = 0 if f(u) == c, else the smallest
  // dimension i with f(flip(u, i)) == c, else -1 (Condition A violated
  // at (u, c)).
  flip_to_.assign(labels_.size() * num_labels_, -1);
  for (Vertex u = 0; u < labels_.size(); ++u) {
    const std::size_t base = static_cast<std::size_t>(u) * num_labels_;
    flip_to_[base + at(u)] = 0;
    for (Dim i = m_; i >= 1; --i) {
      const Label c = at(flip(u, i));
      if (c != at(u)) flip_to_[base + c] = i;
    }
  }
}

bool CubeLabeling::satisfies_condition_a() const noexcept {
  for (Dim d : flip_to_) {
    if (d < 0) return false;
  }
  return true;
}

std::vector<std::size_t> CubeLabeling::class_sizes() const {
  std::vector<std::size_t> sizes(num_labels_, 0);
  for (Label l : labels_) ++sizes[l];
  return sizes;
}

std::vector<Vertex> CubeLabeling::label_class(Label c) const {
  assert(c < num_labels_);
  std::vector<Vertex> members;
  for (Vertex u = 0; u < labels_.size(); ++u) {
    if (labels_[static_cast<std::size_t>(u)] == c) members.push_back(u);
  }
  return members;
}

CubeLabeling trivial_labeling(int m) {
  return CubeLabeling(m, 1, std::vector<Label>(cube_order(m), 0));
}

CubeLabeling hamming_labeling(int p) {
  assert(p >= 1 && p <= 4);
  const HammingCode code(p);
  const int m = code.length();
  std::vector<Label> labels(cube_order(m));
  for (Vertex u = 0; u < labels.size(); ++u) {
    labels[static_cast<std::size_t>(u)] = code.syndrome(u);
  }
  return CubeLabeling(m, static_cast<Label>(code.num_syndromes()), std::move(labels));
}

Label lemma2_num_labels(int m) noexcept {
  assert(m >= 1);
  // Largest m' = 2^p - 1 with m' <= m; lambda = m' + 1.
  unsigned p = 1;
  while (((1U << (p + 1)) - 1) <= static_cast<unsigned>(m)) ++p;
  return (1U << p);
}

CubeLabeling lemma2_labeling(int m) {
  assert(m >= 1 && m <= 24);
  const Label lambda = lemma2_num_labels(m);
  int p = 0;
  while ((1U << p) < lambda) ++p;
  const HammingCode code(p);
  const Vertex low = mask_low(code.length());
  std::vector<Label> labels(cube_order(m));
  for (Vertex u = 0; u < labels.size(); ++u) {
    labels[static_cast<std::size_t>(u)] = code.syndrome(u & low);
  }
  return CubeLabeling(m, lambda, std::move(labels));
}

CubeLabeling example1_labeling_m2() {
  // f(00) = f(11) = c1 (label 0); f(01) = f(10) = c2 (label 1).
  return CubeLabeling(2, 2, {0, 1, 1, 0});
}

CubeLabeling example1_labeling_m3() {
  // f(000)=f(111)=c1, f(001)=f(110)=c2, f(010)=f(101)=c3, f(011)=f(100)=c4;
  // indices below are the words 000..111 in numeric order.
  return CubeLabeling(3, 4, {0, 1, 2, 3, 3, 2, 1, 0});
}

}  // namespace shc
