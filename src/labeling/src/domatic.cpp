#include "shc/labeling/domatic.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace shc {
namespace {

/// Backtracking state for one (m, lambda) search.
class DomaticSearch {
 public:
  DomaticSearch(int m, Label lambda, std::uint64_t budget)
      : m_(m),
        order_(static_cast<std::uint32_t>(cube_order(m))),
        lambda_(lambda),
        full_mask_((1U << lambda) - 1),
        budget_(budget) {
    label_.fill(kUnset);
    present_.fill(0);
    // Closed neighborhoods have m + 1 members in Q_m.
    undecided_.fill(static_cast<std::uint8_t>(m + 1));
  }

  /// Runs the search.  Returns true with `label_` filled on success;
  /// false on refutation; sets `exhausted_` when the budget ran out.
  bool run() { return assign(0, 0); }

  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }

  [[nodiscard]] std::vector<Label> labels() const {
    return std::vector<Label>(label_.begin(), label_.begin() + order_);
  }

 private:
  static constexpr Label kUnset = 0xFFFFFFFFU;

  /// Applies label c to vertex u; returns false if some closed
  /// neighborhood becomes infeasible (missing labels exceed undecided
  /// slots).  Caller must undo() on both outcomes' unwind.
  bool apply(std::uint32_t u, Label c) {
    label_[u] = c;
    bool ok = true;
    for_closed_neighborhood(u, [&](std::uint32_t w) {
      present_count_[w][c]++;
      if (present_count_[w][c] == 1) present_[w] |= (1U << c);
      undecided_[w]--;
      const std::uint32_t missing = full_mask_ & ~present_[w];
      if (static_cast<int>(__builtin_popcount(missing)) > undecided_[w]) ok = false;
    });
    return ok;
  }

  void undo(std::uint32_t u, Label c) {
    for_closed_neighborhood(u, [&](std::uint32_t w) {
      undecided_[w]++;
      present_count_[w][c]--;
      if (present_count_[w][c] == 0) present_[w] &= ~(1U << c);
    });
    label_[u] = kUnset;
  }

  template <typename F>
  void for_closed_neighborhood(std::uint32_t u, F&& f) {
    f(u);
    for (Dim i = 1; i <= m_; ++i) f(static_cast<std::uint32_t>(flip(u, i)));
  }

  bool assign(std::uint32_t u, Label max_used) {
    if (u == order_) return true;
    if (nodes_++ >= budget_) {
      exhausted_ = true;
      return false;
    }
    // Symmetry breaking: the next vertex may reuse any seen label or
    // introduce exactly the next fresh one.
    const Label limit = std::min<Label>(lambda_ - 1, max_used + (u == 0 ? 0 : 1));
    for (Label c = 0; c <= limit; ++c) {
      if (apply(u, c)) {
        if (assign(u + 1, std::max(max_used, c))) return true;
        if (exhausted_) {
          undo(u, c);
          return false;
        }
      }
      undo(u, c);
    }
    return false;
  }

  int m_;
  std::uint32_t order_;
  Label lambda_;
  std::uint32_t full_mask_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;
  bool exhausted_ = false;
  std::array<Label, 64> label_{};
  std::array<std::uint32_t, 64> present_{};           // label bitmask in N[w]
  std::array<std::array<std::uint8_t, 8>, 64> present_count_{};
  std::array<std::uint8_t, 64> undecided_{};          // unassigned slots in N[w]
};

}  // namespace

std::optional<CubeLabeling> find_condition_a_labeling(int m, Label num_labels,
                                                      std::uint64_t node_budget) {
  if (m < 1 || m > 6) {
    throw std::invalid_argument("find_condition_a_labeling: m must be in "
                                "[1, 6], got " + std::to_string(m));
  }
  if (num_labels < 1 || num_labels > 8) {
    throw std::invalid_argument("find_condition_a_labeling: num_labels must "
                                "be in [1, 8], got " +
                                std::to_string(num_labels));
  }
  if (num_labels > static_cast<Label>(m) + 1) return std::nullopt;  // upper bound
  if (num_labels == 1) return trivial_labeling(m);
  DomaticSearch search(m, num_labels, node_budget);
  if (!search.run()) return std::nullopt;
  return CubeLabeling(m, num_labels, search.labels());
}

DomaticResult max_condition_a_labels(int m, std::uint64_t node_budget) {
  if (m < 1 || m > 6) {
    throw std::invalid_argument("max_condition_a_labels: m must be in "
                                "[1, 6], got " + std::to_string(m));
  }
  DomaticResult result;
  result.proven_optimal = true;
  for (Label lambda = static_cast<Label>(m) + 1; lambda >= 1; --lambda) {
    DomaticSearch search(m, lambda, node_budget);
    if (lambda == 1 || search.run()) {
      result.lambda = lambda;
      return result;
    }
    if (search.exhausted()) result.proven_optimal = false;
  }
  return result;  // unreachable: lambda = 1 always succeeds
}

}  // namespace shc
