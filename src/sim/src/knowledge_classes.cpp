#include "shc/sim/knowledge_classes.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "shc/bits/audit.hpp"
#include "shc/obs/recorder.hpp"
#include "shc/sim/subcube_batch.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {
namespace {

#if SHC_AUDIT_ENABLED
/// Audit contract for every minted knowledge set: entries canonically
/// sorted by (mask, prefix), multiplicity one, well-formed, and pairwise
/// disjoint.  The quadratic disjointness sweep is capped so audit builds
/// stay usable on the parity suites; order and multiplicity are always
/// checked in full.
void audit_knowledge(const GossipKnowledge& k) {
  for (std::size_t i = 0; i < k.entries.size(); ++i) {
    const WeightedSubcube& e = k.entries[i];
    SHC_AUDIT_CHECK(e.mult == 1,
                    "GossipKnowledge entries must carry multiplicity one "
                    "(knowledge is a set)");
    SHC_AUDIT_CHECK((e.prefix & e.mask) == 0,
                    "GossipKnowledge entries must be well-formed subcubes");
    if (i > 0) {
      const WeightedSubcube& p = k.entries[i - 1];
      SHC_AUDIT_CHECK(
          p.mask < e.mask || (p.mask == e.mask && p.prefix < e.prefix),
          "GossipKnowledge entries must be in canonical (mask, prefix) "
          "order");
    }
  }
  if (k.entries.size() <= 1024) {
    for (std::size_t i = 0; i < k.entries.size(); ++i) {
      for (std::size_t j = i + 1; j < k.entries.size(); ++j) {
        SHC_AUDIT_CHECK(
            !subcubes_overlap({k.entries[i].prefix, k.entries[i].mask},
                              {k.entries[j].prefix, k.entries[j].mask}),
            "GossipKnowledge entries must be pairwise disjoint");
      }
    }
  }
}
#endif

/// Sorted canonical entry order: content equality is vector equality.
void sort_entries(std::vector<WeightedSubcube>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const WeightedSubcube& a, const WeightedSubcube& b) {
              if (a.mask != b.mask) return a.mask < b.mask;
              return a.prefix < b.prefix;
            });
}

std::uint64_t content_sig(const std::vector<WeightedSubcube>& entries,
                          std::uint64_t count) {
  std::uint64_t h = detail::mix_u64(count ^ 0x6b6e6f776c656467ULL);
  for (const WeightedSubcube& e : entries) {
    h = detail::mix_u64(h ^ e.prefix);
    h = detail::mix_u64(h ^ e.mask);
    h = detail::mix_u64(h ^ e.mult);
  }
  return h;
}

/// region minus a *disjoint* subcube family — one
/// divide-on-pinned-dimension sweep over SoA halves
/// (batch::SubtractSweep, the batched form of the recursion shape
/// shared with canonical_reduce / find_overlapping_pairs): uncovered
/// fragments are appended to `out` with multiplicity one.  Linear-ish
/// in |family| x n rather than quadratic in the family size, with
/// recycled scratch instead of two vector allocations per divide step.
/// Budget semantics are node-exact with the scalar recursion this
/// replaces.  Returns false on budget exhaustion.
bool subtract_family(batch::SubtractSweep& sweep, const Subcube& region,
                     SubcubeSoA family, std::uint64_t& budget,
                     std::vector<WeightedSubcube>& out) {
  return sweep.run(region.prefix, region.mask, std::move(family), budget,
                   [&out](Vertex p, Vertex m) { out.push_back({p, m, 1}); });
}

/// Pieces of `s` not covered by the disjoint canonical cover `cover`,
/// appended to `out`.  This is the set-union dedup: overlapping
/// knowledge must not inflate multiplicities (knowledge is a set, the
/// frontier a multiset).  Returns false on budget exhaustion.
bool subtract_covered(batch::SubtractSweep& sweep, const Subcube& s,
                      const std::vector<WeightedSubcube>& cover,
                      std::uint64_t& budget,
                      std::vector<WeightedSubcube>& out) {
  SubcubeSoA overlapping = sweep.acquire();
  for (const WeightedSubcube& e : cover) {
    if (subcubes_overlap(s, Subcube{e.prefix, e.mask})) {
      overlapping.push_back(e.prefix, e.mask);
    }
  }
  return subtract_family(sweep, s, std::move(overlapping), budget, out);
}

/// One (query, class, piece) overlap: piece = query ∩ a leaf region
/// fully covered by the class.
struct OverlapHit {
  std::uint32_t query = 0;
  std::uint32_t cls = 0;
  Subcube piece;
};

/// Bipartite partition refinement: for a *disjoint* class family tiling
/// the cube and an arbitrary query family, emits every (query, class)
/// overlap as leaf pieces, in one divide-on-pinned-dimension sweep over
/// both families at once.  Replaces per-query index probing, whose
/// queries x classes product dominated the profile.  A (query, class)
/// pair may emit as several pieces (when sibling classes force deeper
/// splits); the pieces tile the overlap exactly, which is all the
/// refinement step needs — finer classes re-coalesce in the merge pass.
class PartitionRefiner {
 public:
  PartitionRefiner(const std::vector<Subcube>& queries,
                   const std::vector<Subcube>& classes, std::uint64_t budget)
      : queries_(queries), classes_(classes), budget_(budget) {
    // SoA mirrors of both families: the divide steps below run as batch
    // kernels over contiguous prefix/mask arrays (one conversion pass
    // against millions of partition visits).
    qsoa_.reserve(queries.size());
    for (const Subcube& s : queries) qsoa_.push_back(s.prefix, s.mask);
    csoa_.reserve(classes.size());
    for (const Subcube& s : classes) csoa_.push_back(s.prefix, s.mask);
  }

  /// False on budget exhaustion.  Pre: every class overlaps `region`
  /// (the partition tiles the cube) and every query lies inside it.
  [[nodiscard]] bool run(const Subcube& region, std::vector<OverlapHit>& out) {
    std::vector<std::uint32_t> qs(queries_.size());
    std::vector<std::uint32_t> cs(classes_.size());
    for (std::uint32_t i = 0; i < qs.size(); ++i) qs[i] = i;
    for (std::uint32_t i = 0; i < cs.size(); ++i) cs[i] = i;
    return recurse(region, qs, cs, out);
  }

 private:
  // Invariant: every listed query and class overlaps `region`.  The id
  // halves come from a recycled pool — the recursion is at most 64 deep
  // but visits millions of nodes, so per-node vectors were pure churn.
  bool recurse(const Subcube& region, std::vector<std::uint32_t>& qs,
               std::vector<std::uint32_t>& cs, std::vector<OverlapHit>& out) {
    if (qs.empty() || cs.empty()) return true;
    const std::uint64_t work = qs.size() + cs.size();
    if (budget_ < work) return false;
    budget_ -= work;

    const batch::MaskScan cls_scan =
        batch::scan_ids(cs.data(), cs.size(), csoa_.prefix.data(),
                        csoa_.mask.data());
    const Vertex pinned_any = region.mask & ~cls_scan.mask_and;
    if (pinned_any == 0 ||
        (cs.size() == 1 && subcube_contains(classes_[cs[0]], region))) {
      // A class spanning every remaining free dim while overlapping the
      // region contains it, and disjointness allows only one such.
      for (const std::uint32_t q : qs) {
        out.push_back({q, cs[0], *subcube_intersection(queries_[q], region)});
      }
      return true;
    }
    const int d = 63 - __builtin_clzll(pinned_any);
    const Vertex b = Vertex{1} << d;
    std::vector<std::uint32_t> q_lo = pool_.acquire();
    std::vector<std::uint32_t> q_hi = pool_.acquire();
    std::vector<std::uint32_t> c_lo = pool_.acquire();
    std::vector<std::uint32_t> c_hi = pool_.acquire();
    batch::partition_ids(qs.data(), qs.size(), qsoa_.prefix.data(),
                         qsoa_.mask.data(), b, q_lo, q_hi);
    batch::partition_ids(cs.data(), cs.size(), csoa_.prefix.data(),
                         csoa_.mask.data(), b, c_lo, c_hi);
    qs.clear();
    cs.clear();
    const Subcube lo{region.prefix, region.mask & ~b};
    const Subcube hi{region.prefix | b, region.mask & ~b};
    const bool ok = recurse(lo, q_lo, c_lo, out) && recurse(hi, q_hi, c_hi, out);
    pool_.release(std::move(q_lo));
    pool_.release(std::move(q_hi));
    pool_.release(std::move(c_lo));
    pool_.release(std::move(c_hi));
    return ok;
  }

  const std::vector<Subcube>& queries_;
  const std::vector<Subcube>& classes_;
  SubcubeSoA qsoa_;
  SubcubeSoA csoa_;
  batch::IdVecPool pool_;
  std::uint64_t budget_;
};

/// Entry-wise XOR translate of a knowledge set by `delta`.  Translation
/// preserves masks, disjointness, canonical structure, and count; only
/// the sorted order (and hence sig) needs recomputing.  Returns the
/// input pointer when the translate is the identity (every entry frees
/// all of delta's bits).
GossipKnowledgePtr translate_knowledge(const GossipKnowledgePtr& k, Vertex delta) {
  bool identity = true;
  for (const WeightedSubcube& e : k->entries) {
    if ((delta & ~e.mask) != 0) {
      identity = false;
      break;
    }
  }
  if (identity) return k;
  auto out = std::make_shared<GossipKnowledge>();
  out->entries.reserve(k->entries.size());
  for (const WeightedSubcube& e : k->entries) {
    out->entries.push_back({(e.prefix ^ delta) & ~e.mask, e.mask, e.mult});
  }
  sort_entries(out->entries);
  out->count = k->count;
  out->sig = content_sig(out->entries, out->count);
#if SHC_AUDIT_ENABLED
  audit_knowledge(*out);
#endif
  return out;
}

}  // namespace

KnowledgeClassPartition::KnowledgeClassPartition(int n, KnowledgeClassOptions opt)
    : n_(n), opt_(opt) {
  assert(n >= 1 && n <= kMaxCubeDim);
  auto self_only = std::make_shared<GossipKnowledge>();
  self_only->entries.push_back({0, 0, 1});  // offset 0: every vertex knows itself
  self_only->count = 1;
  self_only->sig = content_sig(self_only->entries, self_only->count);
  classes_.push_back({Subcube{0, mask_low(n)}, std::move(self_only)});
  refresh_stats();
}

std::string KnowledgeClassPartition::apply_round(
    const std::vector<Exchange>& exchanges) {
  const Vertex cube = mask_low(n_);
  for (const Exchange& x : exchanges) {
    if (x.delta == 0) return "exchange delta is zero (self-exchange)";
    if ((x.callers.prefix & x.callers.mask) != 0) {
      return "exchange caller prefix overlaps its free mask";
    }
    if (((x.callers.prefix | x.callers.mask | x.delta) & ~cube) != 0) {
      return "exchange out of range";
    }
    if ((x.delta & x.callers.mask) != 0) {
      return "exchange delta intersects the caller subcube's free dimensions";
    }
  }
  if (exchanges.empty()) return {};

  // 1. Refine: cut every exchange along class boundaries on both sides
  //    of the pairing, producing caller-side pieces whose caller class
  //    and partner class are each unique.  Two bipartite sweeps: caller
  //    cubes against the partition, then the translated pieces against
  //    it again.
  const Subcube whole{0, cube};
  std::vector<Subcube> class_cubes;
  class_cubes.reserve(classes_.size());
  for (const ClassEntry& c : classes_) class_cubes.push_back(c.cube);

  std::vector<Subcube> caller_cubes;
  caller_cubes.reserve(exchanges.size());
  for (const Exchange& x : exchanges) caller_cubes.push_back(x.callers);
  std::vector<OverlapHit> caller_hits;
  {
    SHC_TRACE_SCOPE("kc_refine");
    PartitionRefiner refine(caller_cubes, class_cubes, opt_.subtract_budget);
    if (!refine.run(whole, caller_hits)) {
      return "knowledge refinement budget exceeded";
    }
  }

  std::vector<Subcube> partner_cubes;
  partner_cubes.reserve(caller_hits.size());
  for (const OverlapHit& h : caller_hits) {
    const Vertex delta = exchanges[h.query].delta;
    partner_cubes.push_back(Subcube{h.piece.prefix ^ delta, h.piece.mask});
  }
  std::vector<OverlapHit> partner_hits;
  {
    SHC_TRACE_SCOPE("kc_refine");
    PartitionRefiner refine(partner_cubes, class_cubes, opt_.subtract_budget);
    if (!refine.run(whole, partner_hits)) {
      return "knowledge refinement budget exceeded";
    }
  }

  struct Triple {
    Subcube piece;  // callers; partners are piece ^ delta
    std::uint32_t ca = 0, cb = 0;
    Vertex delta = 0;
  };
  std::vector<Triple> triples;
  triples.reserve(partner_hits.size());
  for (const OverlapHit& h : partner_hits) {
    const OverlapHit& first = caller_hits[h.query];
    const Vertex delta = exchanges[first.query].delta;
    triples.push_back(
        {Subcube{h.piece.prefix ^ delta, h.piece.mask}, first.cls, h.cls, delta});
  }

  // 2. Union per distinct (caller class, partner class, delta) — the
  //    translation-keyed cache is what keeps a round sweeping millions
  //    of groups between two classes at O(1) union computations.
  struct UnionResult {
    GossipKnowledgePtr caller_side;    // K_ca ∪ (K_cb ^ delta)
    GossipKnowledgePtr receiver_side;  // the same set translated by delta
  };
  struct CacheKey {
    std::uint32_t ca, cb;
    Vertex delta;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return static_cast<std::size_t>(detail::mix_u64(
          (static_cast<std::uint64_t>(k.ca) << 32 | k.cb) ^ detail::mix_u64(k.delta)));
    }
  };
  std::unordered_map<CacheKey, UnionResult, CacheKeyHash> cache;
  std::uint64_t subtract_budget = opt_.subtract_budget;
  batch::SubtractSweep sweep;

  auto compute_union = [&](const Triple& t) -> std::pair<UnionResult, std::string> {
    const GossipKnowledgePtr& ka = classes_[t.ca].know;
    const GossipKnowledgePtr& kb = classes_[t.cb].know;
    saturating_acc_u64(stats_.unions_computed, 1);
    // Fresh offsets: (kb ^ delta) minus what ka already covers.
    std::vector<WeightedSubcube> fresh;
    for (const WeightedSubcube& e : kb->entries) {
      const Subcube moved{(e.prefix ^ t.delta) & ~e.mask, e.mask};
      if (!subtract_covered(sweep, moved, ka->entries, subtract_budget, fresh)) {
        return {{}, "knowledge subtraction budget exceeded"};
      }
    }
    UnionResult r;
    if (fresh.empty()) {
      // Partner knowledge already known: share the caller set unchanged.
      r.caller_side = ka;
    } else {
      std::vector<WeightedSubcube> raw = ka->entries;
      raw.insert(raw.end(), fresh.begin(), fresh.end());
      auto canon = canonical_reduce_tree(std::move(raw), n_, opt_.reduce_budget,
                                         pool_, &stats_.reduce_tree_tasks);
      if (!canon) return {{}, "knowledge union reduction budget exceeded"};
      auto merged = std::make_shared<GossipKnowledge>();
      merged->entries = std::move(*canon);
      sort_entries(merged->entries);
      std::uint64_t count = ka->count;
      for (const WeightedSubcube& e : fresh) {
        std::uint64_t size = 0;
        if (!checked_shift_u64(static_cast<unsigned>(weight(e.mask)), size) ||
            !checked_acc_u64(count, size)) {
          return {{}, "knowledge count overflowed 64 bits"};
        }
      }
      for (const WeightedSubcube& e : merged->entries) {
        if (e.mult != 1) {
          return {{}, "knowledge union lost disjointness (internal error)"};
        }
      }
      merged->count = count;
      merged->sig = content_sig(merged->entries, merged->count);
#if SHC_AUDIT_ENABLED
      audit_knowledge(*merged);
#endif
      r.caller_side = std::move(merged);
    }
    r.receiver_side = translate_knowledge(r.caller_side, t.delta);
    return {std::move(r), {}};
  };

  // 3. New classes: one pair per triple, plus the untouched remainders
  //    of every partially-consumed old class.
  std::vector<ClassEntry> next;
  {
    SHC_TRACE_SCOPE("kc_union");
    next.reserve(classes_.size() + 2 * triples.size());
    std::vector<SubcubeSoA> consumed(classes_.size());
    for (const Triple& t : triples) {
      auto [it, fresh] = cache.try_emplace({t.ca, t.cb, t.delta});
      if (fresh) {
        saturating_acc_u64(stats_.union_cache_misses, 1);
        auto [result, err] = compute_union(t);
        if (!err.empty()) return err;
        it->second = std::move(result);
      } else {
        saturating_acc_u64(stats_.union_cache_hits, 1);
      }
      const Subcube partner{t.piece.prefix ^ t.delta, t.piece.mask};
      next.push_back({t.piece, it->second.caller_side, /*fresh=*/true});
      next.push_back({partner, it->second.receiver_side, /*fresh=*/true});
      consumed[t.ca].push_back(t.piece.prefix, t.piece.mask);
      consumed[t.cb].push_back(partner.prefix, partner.mask);
    }
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      if (consumed[i].empty()) {
        next.push_back(classes_[i]);
        continue;
      }
      std::vector<WeightedSubcube> rem;
      if (!subtract_family(sweep, classes_[i].cube, std::move(consumed[i]),
                           subtract_budget, rem)) {
        return "knowledge subtraction budget exceeded";
      }
      for (const WeightedSubcube& r : rem) {
        next.push_back({Subcube{r.prefix, r.mask}, classes_[i].know, /*fresh=*/true});
      }
    }
  }

  // 4. Coalesce classes whose knowledge came out identical.
  {
    SHC_TRACE_SCOPE("kc_merge");
    if (std::string err = merge_equal_classes(next); !err.empty()) return err;
  }
  classes_ = std::move(next);

  // 5. Caps and the self-check: the classes must still tile Q_n exactly
  //    (this also catches violated endpoint-disjointness preconditions —
  //    overlapping exchanges double-consume and the sum drifts).
  if (classes_.size() > opt_.max_classes) {
    return "knowledge class cap exceeded (" + std::to_string(classes_.size()) +
           " > " + std::to_string(opt_.max_classes) + ")";
  }
  std::uint64_t covered = 0;
  for (const ClassEntry& c : classes_) {
    std::uint64_t size = 0;
    if (!checked_shift_u64(static_cast<unsigned>(c.cube.dim()), size) ||
        !checked_acc_u64(covered, size)) {
      return "knowledge coverage count overflowed 64 bits";
    }
  }
  if (covered != cube_order(n_)) {
    return "knowledge classes no longer tile the cube (overlapping exchange "
           "endpoints or internal error)";
  }
#if SHC_AUDIT_ENABLED
  // Tiling is size-exact above; the audit adds the pairwise half of the
  // contract (disjoint class cubes), capped to keep parity suites fast.
  if (classes_.size() <= 512) {
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      SHC_AUDIT_CHECK((classes_[i].cube.prefix & classes_[i].cube.mask) == 0,
                      "knowledge class cubes must be well-formed subcubes");
      for (std::size_t j = i + 1; j < classes_.size(); ++j) {
        SHC_AUDIT_CHECK(!subcubes_overlap(classes_[i].cube, classes_[j].cube),
                        "knowledge class cubes must tile Q_n disjointly");
      }
    }
  }
#endif
  refresh_stats();
  return {};
}

std::string KnowledgeClassPartition::merge_equal_classes(
    std::vector<ClassEntry>& next) {
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  buckets.reserve(next.size());
  for (std::size_t i = 0; i < next.size(); ++i) {
    buckets[next[i].know->sig].push_back(i);
  }

  // Emission plan: pass-through entries interleaved with per-group
  // reduce tasks, recorded in bucket/group order.  The reductions
  // themselves can then run in any order (farmed over the pool below)
  // while the assembled output — and the first error — stays identical
  // to the serial sweep, because assembly walks the plan in order.
  struct Emit {
    std::size_t cls = SIZE_MAX;   ///< pass-through: index into `next`
    std::size_t task = SIZE_MAX;  ///< or: index into `tasks`
  };
  struct MergeTask {
    GossipKnowledgePtr know;
    std::vector<WeightedSubcube> cubes;
    std::optional<std::vector<WeightedSubcube>> reduced;
  };
  std::vector<Emit> plan;
  plan.reserve(next.size());
  std::vector<MergeTask> tasks;

  for (auto& [sig, members] : buckets) {
    // Buckets of settled classes only (nothing created or re-cut this
    // round) are already in their reduced form from the round that made
    // them — passing them through keeps the per-round merge cost
    // proportional to the round's activity, not the class plateau.
    bool any_fresh = false;
    for (const std::size_t i : members) {
      if (next[i].fresh) {
        any_fresh = true;
        break;
      }
    }
    if (!any_fresh) {
      for (const std::size_t i : members) plan.push_back({i, SIZE_MAX});
      continue;
    }
    // Group by actual content within the sig bucket — a hash collision
    // must never merge classes with different knowledge.
    std::vector<std::size_t> group_rep;           // index of each group's head
    std::vector<std::vector<WeightedSubcube>> group_cubes;
    for (const std::size_t i : members) {
      const GossipKnowledge& k = *next[i].know;
      std::size_t g = group_rep.size();
      for (std::size_t j = 0; j < group_rep.size(); ++j) {
        const GossipKnowledge& rep = *next[group_rep[j]].know;
        if (next[group_rep[j]].know == next[i].know ||
            (rep.count == k.count && rep.entries == k.entries)) {
          g = j;
          break;
        }
      }
      if (g == group_rep.size()) {
        group_rep.push_back(i);
        group_cubes.emplace_back();
      }
      group_cubes[g].push_back({next[i].cube.prefix, next[i].cube.mask, 1});
    }
    for (std::size_t g = 0; g < group_rep.size(); ++g) {
      MergeTask t;
      t.know = next[group_rep[g]].know;
      if (group_cubes[g].size() == 1) {
        t.reduced = std::move(group_cubes[g]);  // nothing to coalesce
      } else {
        t.cubes = std::move(group_cubes[g]);
      }
      plan.push_back({SIZE_MAX, tasks.size()});
      tasks.push_back(std::move(t));
    }
  }

  // The re-coalesce reductions, farmed over the pool when there are
  // several (each task carries its own fresh reduce budget, so the
  // tasks are fully independent).  With a single heavy task the
  // parallelism moves inside canonical_reduce_tree instead — WorkerPool
  // runs are not reentrant, so it is one level or the other.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!tasks[i].reduced) pending.push_back(i);
  }
  const auto reduce_task = [&](int j) {
    MergeTask& t = tasks[pending[static_cast<std::size_t>(j)]];
    // Farmed tasks run on worker threads with the tree path disabled
    // (no reentrancy), so they also skip the shared task counter; the
    // single-task path runs on the engine thread and may count.
    const bool farmed = pending.size() > 1;
    t.reduced = canonical_reduce_tree(
        std::move(t.cubes), n_, opt_.reduce_budget, farmed ? nullptr : pool_,
        farmed ? nullptr : &stats_.reduce_tree_tasks);
  };
  if (pool_ != nullptr && pool_->workers() > 1 && pending.size() > 1) {
    pool_->run(static_cast<int>(pending.size()), reduce_task);
  } else {
    for (std::size_t j = 0; j < pending.size(); ++j) {
      reduce_task(static_cast<int>(j));
    }
  }

  std::vector<ClassEntry> out;
  out.reserve(next.size());
  for (const Emit& e : plan) {
    if (e.task == SIZE_MAX) {
      out.push_back(next[e.cls]);
      continue;
    }
    MergeTask& t = tasks[e.task];
    if (!t.reduced) return "class merge reduction budget exceeded";
    for (const WeightedSubcube& w : *t.reduced) {
      if (w.mult != 1) {
        return "knowledge classes overlap (overlapping exchange endpoints "
               "or internal error)";
      }
      out.push_back({Subcube{w.prefix, w.mask}, t.know, /*fresh=*/false});
    }
  }
  next = std::move(out);
  return {};
}

void KnowledgeClassPartition::refresh_stats() {
  stats_.classes = classes_.size();
  stats_.peak_classes = std::max(stats_.peak_classes, stats_.classes);
  std::uint64_t subcubes = 0;
  std::uint64_t pairs = 0;
  bool pairs_exact = true;
  std::unordered_set<const GossipKnowledge*> seen;
  for (const ClassEntry& c : classes_) {
    std::uint64_t size = 0;
    std::uint64_t product = 0;
    if (!checked_shift_u64(static_cast<unsigned>(c.cube.dim()), size) ||
        !checked_mul_u64(size, c.know->count, product) ||
        !checked_acc_u64(pairs, product)) {
      pairs = ~std::uint64_t{0};  // saturate, flagged below
      pairs_exact = false;
    }
    if (seen.insert(c.know.get()).second) {
      subcubes += c.know->entries.size();
    }
  }
  stats_.known_pairs = pairs;
  stats_.known_pairs_exact = stats_.known_pairs_exact && pairs_exact;
  stats_.peak_knowledge_subcubes = std::max(stats_.peak_knowledge_subcubes, subcubes);
}

bool KnowledgeClassPartition::all_complete() const noexcept {
  for (const ClassEntry& c : classes_) {
    if (!c.know->complete(n_)) return false;
  }
  return true;
}

const GossipKnowledge& KnowledgeClassPartition::knowledge_of(Vertex v) const {
  for (const ClassEntry& c : classes_) {
    if (c.cube.contains_vertex(v)) return *c.know;
  }
  assert(false && "partition does not cover the cube");
  return *classes_.front().know;
}

}  // namespace shc
