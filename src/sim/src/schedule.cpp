#include "shc/sim/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "shc/bits/bitstring.hpp"

namespace shc {

std::size_t BroadcastSchedule::num_calls() const noexcept {
  std::size_t total = 0;
  for (const Round& r : rounds) total += r.calls.size();
  return total;
}

int BroadcastSchedule::max_call_length() const noexcept {
  int len = 0;
  for (const Round& r : rounds) {
    for (const Call& c : r.calls) len = std::max(len, c.length());
  }
  return len;
}

std::string format_schedule(const BroadcastSchedule& s, int bits) {
  std::ostringstream os;
  auto name = [&](Vertex v) {
    return bits > 0 ? to_bitstring(v, bits) : std::to_string(v);
  };
  os << "broadcast from " << name(s.source) << " in " << s.rounds.size()
     << " round(s)\n";
  for (std::size_t t = 0; t < s.rounds.size(); ++t) {
    os << "  round " << (t + 1) << ":\n";
    for (const Call& c : s.rounds[t].calls) {
      os << "    " << name(c.caller()) << " -> " << name(c.receiver())
         << "  (length " << c.length();
      if (c.length() > 1) {
        os << ", via";
        for (std::size_t i = 1; i + 1 < c.path.size(); ++i) os << ' ' << name(c.path[i]);
      }
      os << ")\n";
    }
  }
  return os.str();
}

}  // namespace shc
