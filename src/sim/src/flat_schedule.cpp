#include "shc/sim/flat_schedule.hpp"

#include <sstream>

#include "shc/bits/bitstring.hpp"

namespace shc {

FlatSchedule FlatSchedule::from_legacy(const BroadcastSchedule& legacy) {
  FlatSchedule s;
  s.source = legacy.source;
  std::size_t calls = 0, vertices = 0;
  for (const Round& r : legacy.rounds) {
    calls += r.calls.size();
    for (const Call& c : r.calls) vertices += c.path.size();
  }
  s.reserve(legacy.rounds.size(), calls, vertices);
  for (const Round& r : legacy.rounds) {
    s.begin_round();
    for (const Call& c : r.calls) {
      for (Vertex v : c.path) s.push_vertex(v);
      s.seal_call();  // unchecked: degenerate calls are kept for the validator
    }
  }
  return s;
}

BroadcastSchedule FlatSchedule::to_legacy() const {
  BroadcastSchedule legacy;
  legacy.source = source;
  legacy.rounds.resize(static_cast<std::size_t>(num_rounds()));
  for (int t = 0; t < num_rounds(); ++t) {
    const RoundView r = round(t);
    Round& out = legacy.rounds[static_cast<std::size_t>(t)];
    out.calls.reserve(r.size());
    for (const CallView call : r) {
      out.calls.push_back(Call{{call.begin(), call.end()}});
    }
  }
  return legacy;
}

std::string format_schedule(const FlatSchedule& s, int bits) {
  std::ostringstream os;
  auto name = [&](Vertex v) {
    return bits > 0 ? to_bitstring(v, bits) : std::to_string(v);
  };
  os << "broadcast from " << name(s.source) << " in " << s.num_rounds()
     << " round(s)\n";
  for (int t = 0; t < s.num_rounds(); ++t) {
    os << "  round " << (t + 1) << ":\n";
    for (const FlatSchedule::CallView c : s.round(t)) {
      os << "    " << name(c.caller()) << " -> " << name(c.receiver())
         << "  (length " << c.length();
      if (c.length() > 1) {
        os << ", via";
        for (std::size_t i = 1; i + 1 < c.size(); ++i) os << ' ' << name(c[i]);
      }
      os << ")\n";
    }
  }
  return os.str();
}

}  // namespace shc
