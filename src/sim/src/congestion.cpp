#include "shc/sim/congestion.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace shc {
namespace {

using EdgePair = std::pair<Vertex, Vertex>;

EdgePair canon(Vertex u, Vertex v) { return u <= v ? EdgePair{u, v} : EdgePair{v, u}; }

}  // namespace

CongestionStats analyze_congestion(const BroadcastSchedule& schedule) {
  CongestionStats stats;
  std::map<EdgePair, int> total_load;
  for (const Round& round : schedule.rounds) {
    std::map<EdgePair, int> round_load;
    for (const Call& call : round.calls) {
      for (std::size_t i = 0; i + 1 < call.path.size(); ++i) {
        const EdgePair e = canon(call.path[i], call.path[i + 1]);
        ++total_load[e];
        stats.max_edge_load_per_round =
            std::max(stats.max_edge_load_per_round, ++round_load[e]);
        ++stats.total_edge_hops;
      }
    }
  }
  stats.distinct_edges_used = total_load.size();
  for (const auto& [edge, load] : total_load) {
    stats.max_edge_load_total = std::max(stats.max_edge_load_total, load);
  }
  stats.load_histogram.assign(static_cast<std::size_t>(stats.max_edge_load_total) + 1, 0);
  for (const auto& [edge, load] : total_load) {
    ++stats.load_histogram[static_cast<std::size_t>(load)];
  }
  stats.mean_edge_load =
      stats.distinct_edges_used == 0
          ? 0.0
          : static_cast<double>(stats.total_edge_hops) /
                static_cast<double>(stats.distinct_edges_used);
  return stats;
}

int required_edge_capacity(const BroadcastSchedule& schedule) {
  return analyze_congestion(schedule).max_edge_load_per_round;
}

BroadcastSchedule drop_calls(const BroadcastSchedule& schedule, double drop_rate,
                             std::mt19937_64& rng) {
  std::bernoulli_distribution drop(drop_rate);
  BroadcastSchedule out;
  out.source = schedule.source;
  out.rounds.reserve(schedule.rounds.size());
  for (const Round& round : schedule.rounds) {
    Round kept;
    for (const Call& call : round.calls) {
      if (!drop(rng)) kept.calls.push_back(call);
    }
    out.rounds.push_back(std::move(kept));
  }
  return out;
}

std::vector<std::size_t> competing_traffic_collisions(
    const BroadcastSchedule& schedule, int n, int k, std::size_t flows,
    std::mt19937_64& rng) {
  std::uniform_int_distribution<Vertex> pick(0, cube_order(n) - 1);
  std::vector<std::size_t> collisions;
  collisions.reserve(schedule.rounds.size());
  for (const Round& round : schedule.rounds) {
    std::map<EdgePair, int> broadcast_edges;
    for (const Call& call : round.calls) {
      for (std::size_t i = 0; i + 1 < call.path.size(); ++i) {
        ++broadcast_edges[canon(call.path[i], call.path[i + 1])];
      }
    }
    std::size_t hit = 0;
    for (std::size_t f = 0; f < flows; ++f) {
      // A random unicast flow: walk from src toward dst by flipping
      // differing cube dimensions low-to-high, at most k hops.
      Vertex src = pick(rng);
      Vertex dst = pick(rng);
      Vertex cur = src;
      int hops = 0;
      bool collided = false;
      while (cur != dst && hops < k) {
        const Dim d = __builtin_ctzll(cur ^ dst) + 1;  // lowest differing dim
        const Vertex nxt = flip(cur, d);
        if (broadcast_edges.contains(canon(cur, nxt))) collided = true;
        cur = nxt;
        ++hops;
      }
      if (collided) ++hit;
    }
    collisions.push_back(hit);
  }
  return collisions;
}

}  // namespace shc
