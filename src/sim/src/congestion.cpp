#include "shc/sim/congestion.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "shc/sim/validator.hpp"  // detail::EdgeKey / EdgeKeyHash

namespace shc {
namespace {

using detail::EdgeKey;
using detail::EdgeKeyHash;
using detail::edge_key;

/// Serial accounting restricted to one edge shard: an edge belongs to
/// worker `shard` iff hash(edge) % shards == shard, so every edge is
/// owned by exactly one worker and shard stats merge losslessly.
/// shards == 1 owns everything — the serial analysis verbatim.
CongestionStats analyze_congestion_shard(const FlatSchedule& schedule,
                                         unsigned shard, unsigned shards) {
  CongestionStats stats;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> total_load;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> round_load;
  total_load.reserve(schedule.num_calls() / shards);
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    round_load.clear();
    for (const FlatSchedule::CallView call : schedule.round(t)) {
      for (std::size_t i = 0; i + 1 < call.size(); ++i) {
        const EdgeKey e = edge_key(call[i], call[i + 1]);
        if (shards > 1 && EdgeKeyHash{}(e) % shards != shard) continue;
        ++total_load[e];
        stats.max_edge_load_per_round =
            std::max(stats.max_edge_load_per_round, ++round_load[e]);
        ++stats.total_edge_hops;
      }
    }
  }
  stats.distinct_edges_used = total_load.size();
  for (const auto& [edge, load] : total_load) {
    stats.max_edge_load_total = std::max(stats.max_edge_load_total, load);
  }
  stats.load_histogram.assign(static_cast<std::size_t>(stats.max_edge_load_total) + 1, 0);
  for (const auto& [edge, load] : total_load) {
    ++stats.load_histogram[static_cast<std::size_t>(load)];
  }
  stats.mean_edge_load =
      stats.distinct_edges_used == 0
          ? 0.0
          : static_cast<double>(stats.total_edge_hops) /
                static_cast<double>(stats.distinct_edges_used);
  return stats;
}

}  // namespace

CongestionStats& CongestionStats::merge(const CongestionStats& other) {
  distinct_edges_used += other.distinct_edges_used;
  total_edge_hops += other.total_edge_hops;
  max_edge_load_total = std::max(max_edge_load_total, other.max_edge_load_total);
  max_edge_load_per_round =
      std::max(max_edge_load_per_round, other.max_edge_load_per_round);
  if (load_histogram.size() < other.load_histogram.size()) {
    load_histogram.resize(other.load_histogram.size(), 0);
  }
  for (std::size_t l = 0; l < other.load_histogram.size(); ++l) {
    load_histogram[l] += other.load_histogram[l];
  }
  mean_edge_load = distinct_edges_used == 0
                       ? 0.0
                       : static_cast<double>(total_edge_hops) /
                             static_cast<double>(distinct_edges_used);
  return *this;
}

CongestionStats analyze_congestion(const FlatSchedule& schedule) {
  return analyze_congestion_shard(schedule, 0, 1);
}

CongestionStats analyze_congestion_parallel(const FlatSchedule& schedule,
                                            int threads) {
  unsigned shards;
  if (threads > 0) {
    // An explicit thread count is honored as requested (parity tests
    // rely on exercising the shard/merge path on small schedules).
    shards = static_cast<unsigned>(threads);
  } else {
    // Edge-hash sharding makes every worker walk the whole schedule and
    // keep 1/T of the edges (exact merge needs edge-disjoint shards),
    // so total work is T x serial.  Under auto-detection, clamp the
    // shard count so small schedules never pay more in redundant
    // traversal + thread spawn than the parallel map updates win back.
    const std::size_t per_shard_calls = 1 << 14;
    shards = static_cast<unsigned>(std::min<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()),
        std::max<std::size_t>(1, schedule.num_calls() / per_shard_calls)));
  }
  if (shards == 1) return analyze_congestion_shard(schedule, 0, 1);

  std::vector<CongestionStats> parts(shards);
  std::vector<std::thread> pool;
  pool.reserve(shards);
  for (unsigned w = 0; w < shards; ++w) {
    pool.emplace_back([&schedule, &parts, w, shards] {
      parts[w] = analyze_congestion_shard(schedule, w, shards);
    });
  }
  for (std::thread& th : pool) th.join();

  CongestionStats out = std::move(parts[0]);
  for (unsigned w = 1; w < shards; ++w) out.merge(parts[w]);
  return out;
}

CongestionStats analyze_congestion(const BroadcastSchedule& schedule) {
  return analyze_congestion(FlatSchedule::from_legacy(schedule));
}

int required_edge_capacity(const FlatSchedule& schedule) {
  return analyze_congestion(schedule).max_edge_load_per_round;
}

int required_edge_capacity(const BroadcastSchedule& schedule) {
  return analyze_congestion(FlatSchedule::from_legacy(schedule)).max_edge_load_per_round;
}

FlatSchedule drop_calls(const FlatSchedule& schedule, double drop_rate,
                        std::mt19937_64& rng) {
  std::bernoulli_distribution drop(drop_rate);
  FlatSchedule out;
  out.source = schedule.source;
  out.reserve(static_cast<std::size_t>(schedule.num_rounds()), schedule.num_calls(),
              schedule.num_path_vertices());
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    out.begin_round();
    for (const FlatSchedule::CallView call : schedule.round(t)) {
      if (drop(rng)) continue;
      out.add_call(call);
    }
  }
  return out;
}

BroadcastSchedule drop_calls(const BroadcastSchedule& schedule, double drop_rate,
                             std::mt19937_64& rng) {
  return drop_calls(FlatSchedule::from_legacy(schedule), drop_rate, rng).to_legacy();
}

std::vector<std::size_t> competing_traffic_collisions(
    const FlatSchedule& schedule, int n, int k, std::size_t flows,
    std::mt19937_64& rng) {
  std::uniform_int_distribution<Vertex> pick(0, cube_order(n) - 1);
  std::vector<std::size_t> collisions;
  collisions.reserve(static_cast<std::size_t>(schedule.num_rounds()));
  std::unordered_set<EdgeKey, EdgeKeyHash> broadcast_edges;
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    broadcast_edges.clear();
    for (const FlatSchedule::CallView call : schedule.round(t)) {
      for (std::size_t i = 0; i + 1 < call.size(); ++i) {
        broadcast_edges.insert(edge_key(call[i], call[i + 1]));
      }
    }
    std::size_t hit = 0;
    for (std::size_t f = 0; f < flows; ++f) {
      // A random unicast flow: walk from src toward dst by flipping
      // differing cube dimensions low-to-high, at most k hops.
      Vertex src = pick(rng);
      Vertex dst = pick(rng);
      Vertex cur = src;
      int hops = 0;
      bool collided = false;
      while (cur != dst && hops < k) {
        const Dim d = __builtin_ctzll(cur ^ dst) + 1;  // lowest differing dim
        const Vertex nxt = flip(cur, d);
        if (broadcast_edges.contains(edge_key(cur, nxt))) collided = true;
        cur = nxt;
        ++hops;
      }
      if (collided) ++hit;
    }
    collisions.push_back(hit);
  }
  return collisions;
}

std::vector<std::size_t> competing_traffic_collisions(
    const BroadcastSchedule& schedule, int n, int k, std::size_t flows,
    std::mt19937_64& rng) {
  return competing_traffic_collisions(FlatSchedule::from_legacy(schedule), n, k, flows,
                                      rng);
}

}  // namespace shc
