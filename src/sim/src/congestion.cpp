#include "shc/sim/congestion.hpp"

#include <algorithm>
#include <limits>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "shc/sim/validator.hpp"  // detail::EdgeKey / EdgeKeyHash
#include "shc/sim/worker_pool.hpp"

namespace shc {
namespace {

using detail::EdgeKey;
using detail::EdgeKeyHash;
using detail::edge_key;

/// Serial accounting restricted to one edge shard: an edge belongs to
/// worker `shard` iff hash(edge) % shards == shard, so every edge is
/// owned by exactly one worker and shard stats merge losslessly.
/// shards == 1 owns everything — the serial analysis verbatim.
CongestionStats analyze_congestion_shard(const FlatSchedule& schedule,
                                         unsigned shard, unsigned shards) {
  CongestionStats stats;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> total_load;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> round_load;
  total_load.reserve(schedule.num_calls() / shards);
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    round_load.clear();
    for (const FlatSchedule::CallView call : schedule.round(t)) {
      for (std::size_t i = 0; i + 1 < call.size(); ++i) {
        const EdgeKey e = edge_key(call[i], call[i + 1]);
        if (shards > 1 && EdgeKeyHash{}(e) % shards != shard) continue;
        ++total_load[e];
        stats.max_edge_load_per_round =
            std::max(stats.max_edge_load_per_round, ++round_load[e]);
        ++stats.total_edge_hops;
      }
    }
  }
  stats.distinct_edges_used = total_load.size();
  for (const auto& [edge, load] : total_load) {
    stats.max_edge_load_total = std::max(stats.max_edge_load_total, load);
  }
  stats.load_histogram.assign(static_cast<std::size_t>(stats.max_edge_load_total) + 1, 0);
  for (const auto& [edge, load] : total_load) {
    ++stats.load_histogram[static_cast<std::size_t>(load)];
  }
  stats.mean_edge_load =
      stats.distinct_edges_used == 0
          ? 0.0
          : static_cast<double>(stats.total_edge_hops) /
                static_cast<double>(stats.distinct_edges_used);
  return stats;
}

/// Per-dimension edge-load overlay: disjoint (prefix, mask) -> load
/// subcubes refined by intersect/split as families accumulate, with
/// same-load sibling coalescing inherited from SubcubeFrontier.
class SubcubeLoadMap {
 public:
  explicit SubcubeLoadMap(int n) : entries_(n) {}

  /// Adds `load` over the edge subcube (q, Mq).
  void add(Vertex q, Vertex Mq, std::uint64_t load) {
    std::vector<WeightedSubcube> work{{q, Mq, load}};
    while (!work.empty()) {
      const WeightedSubcube cur = work.back();
      work.pop_back();
      Vertex p2 = 0, m2 = 0;
      std::uint64_t l2 = 0;
      if (!find_overlap(cur.prefix, cur.mask, p2, m2, l2)) {
        entries_.insert(cur.prefix, cur.mask, cur.mult);
        continue;
      }
      const Subcube inter =
          *subcube_intersection({cur.prefix, cur.mask}, {p2, m2});
      const bool taken = entries_.take(p2, m2, l2);
      (void)taken;
      assert(taken);
      entries_.insert(inter.prefix, inter.mask, l2 + cur.mult);
      for (const Subcube& rest : subcube_subtract({p2, m2}, inter)) {
        entries_.insert(rest.prefix, rest.mask, l2);
      }
      for (const Subcube& rest : subcube_subtract({cur.prefix, cur.mask}, inter)) {
        work.push_back({rest.prefix, rest.mask, cur.mult});
      }
    }
  }

  [[nodiscard]] const SubcubeFrontier& entries() const noexcept { return entries_; }
  [[nodiscard]] std::uint64_t size() const noexcept {
    return entries_.num_subcubes();
  }

 private:
  bool find_overlap(Vertex q, Vertex Mq, Vertex& p2, Vertex& m2,
                    std::uint64_t& l2) const {
    bool found = false;
    entries_.for_each_class([&](Vertex m, const shc::detail::PrefixTable& t) {
      if (found) return;
      const Vertex extra = Mq & ~m;
      const Vertex agree = ~(m | Mq);
      if (weight(extra) <= 4 &&
          (std::uint64_t{1} << static_cast<unsigned>(weight(extra))) <= t.size()) {
        Vertex c = 0;
        for (;;) {
          const Vertex cand = (q & agree) | c;
          if (const std::uint64_t* v = t.find(cand)) {
            found = true;
            p2 = cand;
            m2 = m;
            l2 = *v;
            return;
          }
          if (c == extra) break;
          c = (c - extra) & extra;
        }
      } else {
        found = t.any_of([&](Vertex p, std::uint64_t v) {
          if (((p ^ q) & agree) != 0) return false;
          p2 = p;
          m2 = m;
          l2 = v;
          return true;
        });
      }
    });
    return found;
  }

  SubcubeFrontier entries_;
};

}  // namespace

CongestionStats& CongestionStats::merge(const CongestionStats& other) {
  distinct_edges_used += other.distinct_edges_used;
  total_edge_hops += other.total_edge_hops;
  max_edge_load_total = std::max(max_edge_load_total, other.max_edge_load_total);
  max_edge_load_per_round =
      std::max(max_edge_load_per_round, other.max_edge_load_per_round);
  if (load_histogram.size() < other.load_histogram.size()) {
    load_histogram.resize(other.load_histogram.size(), 0);
  }
  for (std::size_t l = 0; l < other.load_histogram.size(); ++l) {
    load_histogram[l] += other.load_histogram[l];
  }
  mean_edge_load = distinct_edges_used == 0
                       ? 0.0
                       : static_cast<double>(total_edge_hops) /
                             static_cast<double>(distinct_edges_used);
  return *this;
}

CongestionStats analyze_congestion(const FlatSchedule& schedule) {
  return analyze_congestion_shard(schedule, 0, 1);
}

CongestionStats analyze_congestion_parallel(const FlatSchedule& schedule,
                                            int threads) {
  unsigned shards;
  if (threads > 0) {
    // An explicit thread count is honored as requested (parity tests
    // rely on exercising the shard/merge path on small schedules).
    shards = static_cast<unsigned>(threads);
  } else {
    // Edge-hash sharding makes every worker walk the whole schedule and
    // keep 1/T of the edges (exact merge needs edge-disjoint shards),
    // so total work is T x serial.  Under auto-detection, clamp the
    // shard count so small schedules never pay more in redundant
    // traversal + thread spawn than the parallel map updates win back.
    const std::size_t per_shard_calls = 1 << 14;
    shards = static_cast<unsigned>(std::min<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()),
        std::max<std::size_t>(1, schedule.num_calls() / per_shard_calls)));
  }
  if (shards == 1) return analyze_congestion_shard(schedule, 0, 1);

  std::vector<CongestionStats> parts(shards);
  WorkerPool pool(static_cast<int>(shards));
  pool.run(static_cast<int>(shards), [&schedule, &parts, shards](int w) {
    parts[static_cast<unsigned>(w)] =
        analyze_congestion_shard(schedule, static_cast<unsigned>(w), shards);
  });

  CongestionStats out = std::move(parts[0]);
  for (unsigned w = 1; w < shards; ++w) out.merge(parts[w]);
  return out;
}

CongestionStats analyze_congestion(const BroadcastSchedule& schedule) {
  return analyze_congestion(FlatSchedule::from_legacy(schedule));
}

SymbolicCongestionReport analyze_congestion_symbolic(
    const SymbolicSchedule& schedule, std::uint64_t max_entries) {
  SymbolicCongestionReport rep;
  auto fail = [&](std::string msg) {
    rep.ok = false;
    rep.error = std::move(msg);
    return rep;
  };
  const int n = schedule.n;
  if (n < 1 || n > kMaxCubeDim) {
    return fail("symbolic schedule dimension out of range");
  }

  // One overlay per flip dimension: dimensions are edge-disjoint shards
  // of the edge set, so their stats fold losslessly with merge().
  std::unordered_map<int, SubcubeLoadMap> total;
  int per_round_max = 0;

  for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
    const SymbolicRound& round = schedule.rounds[r];
    std::unordered_map<int, SubcubeLoadMap> this_round;
    for (std::size_t g = 0; g < round.groups.size(); ++g) {
      const CallGroup& grp = round.groups[g];
      const std::span<const Vertex> patt = round.pattern_of_group(g);
      if ((grp.prefix & grp.free_mask) != 0 || patt.size() < 2) {
        return fail("malformed call group in round " + std::to_string(r + 1));
      }
      for (std::size_t j = 0; j + 1 < patt.size(); ++j) {
        const Vertex diff = patt[j] ^ patt[j + 1];
        if (weight(diff) != 1 || (grp.free_mask & (patt[j] | diff)) != 0) {
          return fail("malformed call pattern in round " + std::to_string(r + 1));
        }
        const Dim d = differing_dim(patt[j], patt[j + 1]);
        const Vertex edge_prefix = (grp.prefix ^ patt[j]) & ~diff;
        auto it = this_round.try_emplace(d, n).first;
        it->second.add(edge_prefix, grp.free_mask, 1);
      }
    }
    // Fold the round overlay into the cross-round totals; the round's
    // max load is the required capacity witness.
    std::uint64_t entries_now = 0;
    bool load_overflow = false;
    for (const auto& [d, m] : this_round) {
      auto it = total.try_emplace(d, n).first;
      m.entries().for_each([&](Vertex p, Vertex mask, std::uint64_t load) {
        // Loads are reported through int fields (CongestionStats); an
        // adversarial schedule pushing one edge past INT_MAX must fail
        // explicitly, matching the checked-counter discipline.
        if (load > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
          load_overflow = true;
          return;
        }
        per_round_max = std::max(per_round_max, static_cast<int>(load));
        it->second.add(p, mask, load);
      });
    }
    if (load_overflow) {
      return fail("per-edge load exceeds INT_MAX");
    }
    for (const auto& [d, m] : total) entries_now += m.size();
    if (entries_now > max_entries) {
      return fail("congestion overlay exceeded the entry cap (" +
                  std::to_string(entries_now) + " subcubes)");
    }
  }

  bool first = true;
  bool overflow = false;
  for (const auto& [d, m] : total) {
    CongestionStats s;
    std::uint64_t distinct = 0, hops = 0;
    int maxl = 0;
    std::vector<std::size_t> hist;
    m.entries().for_each([&](Vertex, Vertex mask, std::uint64_t load) {
      std::uint64_t size = 0, contrib = 0;
      if (!checked_shift_u64(static_cast<unsigned>(weight(mask)), size) ||
          !checked_acc_u64(distinct, size) ||
          !checked_mul_u64(load, size, contrib) ||
          !checked_acc_u64(hops, contrib) ||
          load > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
        overflow = true;
        return;
      }
      const int l = static_cast<int>(load);
      maxl = std::max(maxl, l);
      if (hist.size() <= static_cast<std::size_t>(l)) hist.resize(l + 1, 0);
      hist[static_cast<std::size_t>(l)] += static_cast<std::size_t>(size);
    });
    if (overflow) return fail("congestion counters overflowed 64 bits");
    s.distinct_edges_used = static_cast<std::size_t>(distinct);
    s.total_edge_hops = hops;
    s.max_edge_load_total = maxl;
    hist.resize(static_cast<std::size_t>(maxl) + 1, 0);
    s.load_histogram = std::move(hist);
    s.mean_edge_load = distinct == 0 ? 0.0
                                     : static_cast<double>(hops) /
                                           static_cast<double>(distinct);
    if (first) {
      rep.stats = std::move(s);
      first = false;
    } else {
      rep.stats.merge(s);
    }
    rep.load_entries += m.size();
  }
  if (first) {
    // No edges at all: mirror the serial analyzer's empty-schedule shape.
    rep.stats.load_histogram.assign(1, 0);
  }
  rep.stats.max_edge_load_per_round = per_round_max;
  rep.ok = true;
  return rep;
}

int required_edge_capacity(const FlatSchedule& schedule) {
  return analyze_congestion(schedule).max_edge_load_per_round;
}

int required_edge_capacity(const BroadcastSchedule& schedule) {
  return analyze_congestion(FlatSchedule::from_legacy(schedule)).max_edge_load_per_round;
}

FlatSchedule drop_calls(const FlatSchedule& schedule, double drop_rate,
                        std::mt19937_64& rng) {
  std::bernoulli_distribution drop(drop_rate);
  FlatSchedule out;
  out.source = schedule.source;
  out.reserve(static_cast<std::size_t>(schedule.num_rounds()), schedule.num_calls(),
              schedule.num_path_vertices());
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    out.begin_round();
    for (const FlatSchedule::CallView call : schedule.round(t)) {
      if (drop(rng)) continue;
      out.add_call(call);
    }
  }
  return out;
}

BroadcastSchedule drop_calls(const BroadcastSchedule& schedule, double drop_rate,
                             std::mt19937_64& rng) {
  return drop_calls(FlatSchedule::from_legacy(schedule), drop_rate, rng).to_legacy();
}

std::vector<std::size_t> competing_traffic_collisions(
    const FlatSchedule& schedule, int n, int k, std::size_t flows,
    std::mt19937_64& rng) {
  std::uniform_int_distribution<Vertex> pick(0, cube_order(n) - 1);
  std::vector<std::size_t> collisions;
  collisions.reserve(static_cast<std::size_t>(schedule.num_rounds()));
  std::unordered_set<EdgeKey, EdgeKeyHash> broadcast_edges;
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    broadcast_edges.clear();
    for (const FlatSchedule::CallView call : schedule.round(t)) {
      for (std::size_t i = 0; i + 1 < call.size(); ++i) {
        broadcast_edges.insert(edge_key(call[i], call[i + 1]));
      }
    }
    std::size_t hit = 0;
    for (std::size_t f = 0; f < flows; ++f) {
      // A random unicast flow: walk from src toward dst by flipping
      // differing cube dimensions low-to-high, at most k hops.
      Vertex src = pick(rng);
      Vertex dst = pick(rng);
      Vertex cur = src;
      int hops = 0;
      bool collided = false;
      while (cur != dst && hops < k) {
        const Dim d = __builtin_ctzll(cur ^ dst) + 1;  // lowest differing dim
        const Vertex nxt = flip(cur, d);
        if (broadcast_edges.contains(edge_key(cur, nxt))) collided = true;
        cur = nxt;
        ++hops;
      }
      if (collided) ++hit;
    }
    collisions.push_back(hit);
  }
  return collisions;
}

std::vector<std::size_t> competing_traffic_collisions(
    const BroadcastSchedule& schedule, int n, int k, std::size_t flows,
    std::mt19937_64& rng) {
  return competing_traffic_collisions(FlatSchedule::from_legacy(schedule), n, k, flows,
                                      rng);
}

}  // namespace shc
