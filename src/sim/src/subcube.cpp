#include "shc/sim/subcube.hpp"

#include <cassert>

#include "shc/bits/checked.hpp"
#include "shc/obs/recorder.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {
namespace {

/// Open-addressing scratch for the lift-matching step, reset by
/// generation stamp instead of deallocation: canon_recurse matches the
/// two halves' outputs at every internal node, and a per-node
/// unordered_map was a hidden allocation in every divide step.  One
/// instance serves a whole canonical_reduce call — a child's use is
/// finished before its parent matches, and begin() bumping the
/// generation invalidates all previous entries for free.
class LiftScratch {
 public:
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  /// Starts a fresh match set sized for `need` keys.
  void begin(std::size_t need) {
    std::size_t cap = 16;
    while (cap < need * 2) cap <<= 1;
    if (cap > stamp_.size()) {
      stamp_.assign(cap, 0);
      key_.resize(cap);
      idx_.resize(cap);
      gen_ = 0;
    }
    mask_ = stamp_.size() - 1;
    ++gen_;
  }

  /// Registers key -> i; the first insertion of a key wins (matching
  /// unordered_map::emplace in the code this replaces).
  void insert(const WeightedSubcube& e, std::uint32_t i) {
    std::size_t j = hash(e) & mask_;
    for (;;) {
      if (stamp_[j] != gen_) {
        stamp_[j] = gen_;
        key_[j] = e;
        idx_[j] = i;
        return;
      }
      if (key_[j] == e) return;
      j = (j + 1) & mask_;
    }
  }

  [[nodiscard]] std::uint32_t find(const WeightedSubcube& e) const noexcept {
    std::size_t j = hash(e) & mask_;
    for (;;) {
      if (stamp_[j] != gen_) return kNone;
      if (key_[j] == e) return idx_[j];
      j = (j + 1) & mask_;
    }
  }

 private:
  [[nodiscard]] static std::size_t hash(const WeightedSubcube& e) noexcept {
    std::uint64_t h = detail::mix_u64(e.prefix);
    h = detail::mix_u64(h ^ e.mask);
    h = detail::mix_u64(h ^ e.mult);
    return static_cast<std::size_t>(h);
  }

  std::vector<std::uint64_t> stamp_;
  std::vector<WeightedSubcube> key_;
  std::vector<std::uint32_t> idx_;
  std::uint64_t gen_ = 0;
  std::size_t mask_ = 0;
};

/// Pool of output vectors for canon_recurse halves (same recycling
/// rationale as batch::IdVecPool).
class OutVecPool {
 public:
  [[nodiscard]] std::vector<WeightedSubcube> acquire() {
    if (pool_.empty()) return {};
    std::vector<WeightedSubcube> v = std::move(pool_.back());
    pool_.pop_back();
    v.clear();
    return v;
  }
  void release(std::vector<WeightedSubcube>&& v) {
    pool_.push_back(std::move(v));
  }

 private:
  std::vector<std::vector<WeightedSubcube>> pool_;
};

/// Recycled scratch shared across one canonical_reduce call: batch
/// halves, half outputs, the lift matcher, and the lifted flags.  The
/// recursion is at most 64 deep, so each pool holds a handful of
/// buffers where the previous code allocated two vectors and a hash map
/// per node.
struct CanonCtx {
  batch::BatchPool batches;
  OutVecPool outs;
  LiftScratch lift;
  std::vector<unsigned char> lifted;
};

/// The join step of the canonical-form recursion: entries present
/// identically in both halves of branch bit `b` lift back to a free
/// dimension; everything else passes through pinned.  Output order is
/// fixed (hi entries first, then unlifted lo entries) so the result is
/// a pure function of the two halves.
void lift_join(const std::vector<WeightedSubcube>& lo_out,
               const std::vector<WeightedSubcube>& hi_out, Vertex b,
               std::vector<WeightedSubcube>& out, LiftScratch& lift,
               std::vector<unsigned char>& lifted) {
  lift.begin(lo_out.size());
  for (std::size_t i = 0; i < lo_out.size(); ++i) {
    lift.insert(lo_out[i], static_cast<std::uint32_t>(i));
  }
  lifted.assign(lo_out.size(), 0);
  for (const WeightedSubcube& e : hi_out) {
    WeightedSubcube key = e;
    key.prefix &= ~b;
    const std::uint32_t li = lift.find(key);
    if (li != LiftScratch::kNone && !lifted[li]) {
      lifted[li] = 1;
      key.mask |= b;
      out.push_back(key);
    } else {
      out.push_back(e);  // pinned 1
    }
  }
  for (std::size_t i = 0; i < lo_out.size(); ++i) {
    if (!lifted[i]) out.push_back(lo_out[i]);  // pinned 0
  }
}

/// Recursive normal form; see the header.  `remaining` masks the
/// dimensions not yet branched or skipped.  Returned entries carry
/// absolute prefixes (branch bits included by the caller's half).
bool canon_recurse(SubcubeBatch& entries, Vertex remaining,
                   std::uint64_t& budget, std::vector<WeightedSubcube>& out,
                   CanonCtx& ctx) {
  const std::size_t count = entries.size();
  if (count == 0) return true;
  if (budget < count) return false;
  budget -= count;

  // Dimensions some entry pins; everything else stays free in the result.
  const batch::MaskScan scan =
      batch::scan_all(entries.prefix.data(), entries.mask.data(), count);
  const Vertex pinned_any = remaining & ~scan.mask_and;

  if (pinned_any == 0) {
    // Every entry covers the whole remaining subspace: identical
    // regions, multiplicities add.
    WeightedSubcube merged{entries.prefix[0], remaining, 0};
    for (std::size_t i = 0; i < count; ++i) {
      // Saturate instead of wrapping: any mult != 1 fails the endgame
      // check, and a saturated value keeps that property.
      if (!checked_acc_u64(merged.mult, entries.mult[i])) {
        merged.mult = ~std::uint64_t{0};
      }
    }
    // The prefix outside `remaining` is shared by construction, and no
    // entry pins a remaining dimension here.
    merged.prefix &= ~remaining;
    out.push_back(merged);
    return true;
  }

  const int d = 63 - __builtin_clzll(pinned_any);
  const Vertex b = Vertex{1} << d;
  SubcubeBatch lo = ctx.batches.acquire();
  SubcubeBatch hi = ctx.batches.acquire();
  batch::partition_weighted(entries, b, lo, hi);
  entries.clear();

  std::vector<WeightedSubcube> lo_out = ctx.outs.acquire();
  std::vector<WeightedSubcube> hi_out = ctx.outs.acquire();
  const bool ok = canon_recurse(lo, remaining & ~b, budget, lo_out, ctx) &&
                  canon_recurse(hi, remaining & ~b, budget, hi_out, ctx);
  ctx.batches.release(std::move(lo));
  ctx.batches.release(std::move(hi));
  if (ok) {
    // Safe to reuse the shared scratch: every descendant's lift
    // finished before this one begins.
    lift_join(lo_out, hi_out, b, out, ctx.lift, ctx.lifted);
  }
  ctx.outs.release(std::move(lo_out));
  ctx.outs.release(std::move(hi_out));
  return ok;
}

void overlap_recurse(std::vector<std::uint32_t>& ids, const Vertex* fam_prefix,
                     const Vertex* fam_mask, Vertex remaining,
                     std::uint64_t& budget, bool& budget_ok,
                     std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
                     std::size_t max_pairs, batch::IdVecPool& pool) {
  if (!budget_ok || ids.size() <= 1) return;
  if (budget < ids.size()) {
    budget_ok = false;
    return;
  }
  budget -= ids.size();

  const batch::MaskScan scan =
      batch::scan_ids(ids.data(), ids.size(), fam_prefix, fam_mask);
  const Vertex pinned_any = remaining & ~scan.mask_and;

  if (pinned_any == 0) {
    // All members cover the whole remaining subspace and agree on the
    // branch path: every pair here overlaps.  Hitting max_pairs counts
    // as a budget failure — a truncated pair list would silently skip
    // collision analysis for the dropped pairs.
    for (std::size_t a = 0; a < ids.size(); ++a) {
      for (std::size_t b = a + 1; b < ids.size(); ++b) {
        if (pairs.size() >= max_pairs) {
          budget_ok = false;
          return;
        }
        const std::uint32_t i = std::min(ids[a], ids[b]);
        const std::uint32_t j = std::max(ids[a], ids[b]);
        pairs.emplace_back(i, j);
      }
    }
    return;
  }

  const int d = 63 - __builtin_clzll(pinned_any);
  const Vertex b = Vertex{1} << d;
  std::vector<std::uint32_t> lo = pool.acquire();
  std::vector<std::uint32_t> hi = pool.acquire();
  batch::partition_ids(ids.data(), ids.size(), fam_prefix, fam_mask, b, lo, hi);
  ids.clear();
  overlap_recurse(lo, fam_prefix, fam_mask, remaining & ~b, budget, budget_ok,
                  pairs, max_pairs, pool);
  overlap_recurse(hi, fam_prefix, fam_mask, remaining & ~b, budget, budget_ok,
                  pairs, max_pairs, pool);
  pool.release(std::move(lo));
  pool.release(std::move(hi));
}

/// canonical_reduce_tree farms the recursion's own top levels over the
/// pool.  Inputs at or below kTreeChunk fall through to the plain
/// serial reduce; larger inputs split the top kTopSplitDepth branch
/// levels serially (at most 2^kTopSplitDepth farmed subtrees).  Both
/// are pure functions of the input, never of the pool or thread count.
constexpr std::size_t kTreeChunk = 4096;
constexpr int kTopSplitDepth = 6;

/// One node of the serially-descended top of the reduce recursion.
/// Children are created after their parent, so a reverse index walk
/// visits children before parents at join time.
struct TopNode {
  Vertex b = 0;            // branch bit (internal nodes only)
  int lo = -1, hi = -1;    // child indices; -1 on leaves
  int task = -1;           // farmed-subtree index; -1 otherwise
  std::vector<WeightedSubcube> out;
};

/// A frontier subtree handed to the worker pool.
struct TreeTask {
  SubcubeBatch batch;
  Vertex remaining = 0;
  std::vector<WeightedSubcube> out;
  std::uint64_t consumed = 0;
  bool ok = true;
};

}  // namespace

std::optional<std::vector<WeightedSubcube>> canonical_reduce(
    std::vector<WeightedSubcube> entries, int n, std::uint64_t budget) {
  assert(n >= 1 && n <= kMaxCubeDim);
  CanonCtx ctx;
  SubcubeBatch batch;
  batch.reserve(entries.size());
  for (const WeightedSubcube& e : entries) {
    batch.push_back(e.prefix, e.mask, e.mult);
  }
  entries.clear();
  entries.shrink_to_fit();
  std::vector<WeightedSubcube> out;
  if (!canon_recurse(batch, mask_low(n), budget, out, ctx)) return std::nullopt;
  return out;
}

std::optional<std::vector<WeightedSubcube>> canonical_reduce_tree(
    std::vector<WeightedSubcube> entries, int n, std::uint64_t budget,
    WorkerPool* pool, std::uint64_t* tree_tasks) {
  assert(n >= 1 && n <= kMaxCubeDim);
  if (pool == nullptr || pool->workers() <= 1 ||
      entries.size() <= kTreeChunk) {
    return canonical_reduce(std::move(entries), n, budget);
  }
  SHC_TRACE_SCOPE("reduce_tree");

  SubcubeBatch root;
  root.reserve(entries.size());
  for (const WeightedSubcube& e : entries) {
    root.push_back(e.prefix, e.mask, e.mult);
  }
  entries.clear();
  entries.shrink_to_fit();

  // Serial descent of the recursion's own top levels: identical branch
  // choice and identical per-node budget accounting to canon_recurse,
  // so the recursion tree — and with it both the output and the refusal
  // predicate "total processed entries > budget" — matches the serial
  // reduce exactly.  Each frontier subtree becomes an independent task.
  std::vector<TopNode> nodes;
  std::vector<TreeTask> tasks;
  CanonCtx ctx;  // lift scratch for the serial joins below
  bool fail = false;

  const auto descend = [&](auto&& self, SubcubeBatch batch, Vertex remaining,
                           int depth) -> int {
    const int idx = static_cast<int>(nodes.size());
    nodes.emplace_back();
    if (fail || batch.size() == 0) return idx;
    const std::size_t count = batch.size();
    if (depth >= kTopSplitDepth || count <= kTreeChunk) {
      nodes[idx].task = static_cast<int>(tasks.size());
      tasks.push_back(TreeTask{std::move(batch), remaining, {}, 0, true});
      return idx;
    }
    if (budget < count) {
      fail = true;
      return idx;
    }
    budget -= count;
    const batch::MaskScan scan =
        batch::scan_all(batch.prefix.data(), batch.mask.data(), count);
    const Vertex pinned_any = remaining & ~scan.mask_and;
    if (pinned_any == 0) {
      WeightedSubcube merged{batch.prefix[0], remaining, 0};
      for (std::size_t i = 0; i < count; ++i) {
        if (!checked_acc_u64(merged.mult, batch.mult[i])) {
          merged.mult = ~std::uint64_t{0};
        }
      }
      merged.prefix &= ~remaining;
      nodes[idx].out.push_back(merged);
      return idx;
    }
    const int d = 63 - __builtin_clzll(pinned_any);
    const Vertex b = Vertex{1} << d;
    SubcubeBatch lo;
    SubcubeBatch hi;
    batch::partition_weighted(batch, b, lo, hi);
    batch.clear();
    const int li = self(self, std::move(lo), remaining & ~b, depth + 1);
    const int hi_i = self(self, std::move(hi), remaining & ~b, depth + 1);
    nodes[idx].b = b;
    nodes[idx].lo = li;
    nodes[idx].hi = hi_i;
    return idx;
  };
  descend(descend, std::move(root), mask_low(n), 0);
  if (fail) return std::nullopt;

  // Farm the frontier subtrees.  Each task runs against a private copy
  // of the budget left after the descent; the exact shared-counter
  // semantics are restored afterwards by summing actual consumption, so
  // parallelism never changes which inputs are refused — a task can
  // merely overshoot by up to one subtree of work before the sum check
  // catches it.
  if (tree_tasks != nullptr) saturating_acc_u64(*tree_tasks, tasks.size());
  const std::uint64_t task_budget = budget;
  const auto run_task = [&](int j) {
    TreeTask& t = tasks[static_cast<std::size_t>(j)];
    static thread_local CanonCtx tls_ctx;
    std::uint64_t local = task_budget;
    t.ok = canon_recurse(t.batch, t.remaining, local, t.out, tls_ctx);
    t.consumed = task_budget - local;
  };
  pool->run(static_cast<int>(tasks.size()), run_task);
  for (const TreeTask& t : tasks) {
    if (!t.ok || t.consumed > budget) return std::nullopt;
    budget -= t.consumed;
  }

  // Join bottom-up: children were created after their parents, so a
  // reverse index walk lifts each pair before its parent is consumed.
  for (std::size_t i = nodes.size(); i-- > 0;) {
    TopNode& nd = nodes[i];
    if (nd.task >= 0) {
      nd.out = std::move(tasks[static_cast<std::size_t>(nd.task)].out);
      continue;
    }
    if (nd.lo < 0) continue;  // empty or fully-merged leaf
    lift_join(nodes[static_cast<std::size_t>(nd.lo)].out,
              nodes[static_cast<std::size_t>(nd.hi)].out, nd.b, nd.out,
              ctx.lift, ctx.lifted);
    nodes[static_cast<std::size_t>(nd.lo)].out = {};
    nodes[static_cast<std::size_t>(nd.hi)].out = {};
  }
  return std::move(nodes.front().out);
}

std::optional<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
find_overlapping_pairs(const std::vector<Subcube>& family, std::uint64_t budget,
                       std::size_t max_pairs) {
  std::vector<std::uint32_t> ids(family.size());
  SubcubeSoA soa;
  soa.reserve(family.size());
  for (std::size_t i = 0; i < family.size(); ++i) {
    ids[i] = static_cast<std::uint32_t>(i);
    soa.push_back(family[i].prefix, family[i].mask);
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  bool budget_ok = true;
  batch::IdVecPool pool;
  overlap_recurse(ids, soa.prefix.data(), soa.mask.data(),
                  mask_low(kMaxCubeDim), budget, budget_ok, pairs, max_pairs,
                  pool);
  if (!budget_ok) return std::nullopt;
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace shc
