#include "shc/sim/subcube.hpp"

#include <cassert>

namespace shc {
namespace {

/// Hash for (prefix, mask, mult) triples in the lift-matching step.
struct EntryKeyHash {
  std::size_t operator()(const WeightedSubcube& e) const noexcept {
    std::uint64_t h = detail::mix_u64(e.prefix);
    h = detail::mix_u64(h ^ e.mask);
    h = detail::mix_u64(h ^ e.mult);
    return static_cast<std::size_t>(h);
  }
};

/// Recursive normal form; see the header.  `remaining` masks the
/// dimensions not yet branched or skipped.  Returned entries carry
/// absolute prefixes (branch bits included by the caller's half).
bool canon_recurse(std::vector<WeightedSubcube>& entries, Vertex remaining,
                   std::uint64_t& budget, std::vector<WeightedSubcube>& out) {
  if (entries.empty()) return true;
  if (budget < entries.size()) return false;
  budget -= entries.size();

  // Dimensions some entry pins; everything else stays free in the result.
  Vertex pinned_any = 0;
  for (const WeightedSubcube& e : entries) pinned_any |= remaining & ~e.mask;

  if (pinned_any == 0) {
    // Every entry covers the whole remaining subspace: identical
    // regions, multiplicities add.
    WeightedSubcube merged = entries.front();
    merged.mask = remaining;
    merged.mult = 0;
    for (const WeightedSubcube& e : entries) {
      // Saturate instead of wrapping: any mult != 1 fails the endgame
      // check, and a saturated value keeps that property.
      if (!checked_acc_u64(merged.mult, e.mult)) merged.mult = ~std::uint64_t{0};
    }
    // The prefix outside `remaining` is shared by construction, and no
    // entry pins a remaining dimension here.
    merged.prefix &= ~remaining;
    out.push_back(merged);
    return true;
  }

  const int d = 63 - __builtin_clzll(pinned_any);
  const Vertex b = Vertex{1} << d;
  std::vector<WeightedSubcube> lo, hi;
  for (const WeightedSubcube& e : entries) {
    if (e.mask & b) {
      WeightedSubcube half = e;
      half.mask &= ~b;
      lo.push_back(half);
      half.prefix |= b;
      hi.push_back(half);
    } else if (e.prefix & b) {
      hi.push_back(e);
    } else {
      lo.push_back(e);
    }
  }
  entries.clear();
  entries.shrink_to_fit();

  std::vector<WeightedSubcube> lo_out, hi_out;
  if (!canon_recurse(lo, remaining & ~b, budget, lo_out)) return false;
  if (!canon_recurse(hi, remaining & ~b, budget, hi_out)) return false;

  // Lift entries present identically in both halves (hi entries carry
  // bit d set; compare with it cleared).
  std::unordered_map<WeightedSubcube, std::size_t, EntryKeyHash> left;
  left.reserve(lo_out.size());
  for (std::size_t i = 0; i < lo_out.size(); ++i) left.emplace(lo_out[i], i);
  std::vector<bool> lifted(lo_out.size(), false);
  for (WeightedSubcube e : hi_out) {
    WeightedSubcube key = e;
    key.prefix &= ~b;
    auto it = left.find(key);
    if (it != left.end() && !lifted[it->second]) {
      lifted[it->second] = true;
      key.mask |= b;
      out.push_back(key);
    } else {
      out.push_back(e);  // pinned 1
    }
  }
  for (std::size_t i = 0; i < lo_out.size(); ++i) {
    if (!lifted[i]) out.push_back(lo_out[i]);  // pinned 0
  }
  return true;
}

void overlap_recurse(std::vector<std::uint32_t>& ids,
                     const std::vector<Subcube>& family, Vertex remaining,
                     std::uint64_t& budget, bool& budget_ok,
                     std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
                     std::size_t max_pairs) {
  if (!budget_ok || ids.size() <= 1) return;
  if (budget < ids.size()) {
    budget_ok = false;
    return;
  }
  budget -= ids.size();

  Vertex pinned_any = 0;
  for (const std::uint32_t i : ids) pinned_any |= remaining & ~family[i].mask;

  if (pinned_any == 0) {
    // All members cover the whole remaining subspace and agree on the
    // branch path: every pair here overlaps.  Hitting max_pairs counts
    // as a budget failure — a truncated pair list would silently skip
    // collision analysis for the dropped pairs.
    for (std::size_t a = 0; a < ids.size(); ++a) {
      for (std::size_t b = a + 1; b < ids.size(); ++b) {
        if (pairs.size() >= max_pairs) {
          budget_ok = false;
          return;
        }
        const std::uint32_t i = std::min(ids[a], ids[b]);
        const std::uint32_t j = std::max(ids[a], ids[b]);
        pairs.emplace_back(i, j);
      }
    }
    return;
  }

  const int d = 63 - __builtin_clzll(pinned_any);
  const Vertex b = Vertex{1} << d;
  std::vector<std::uint32_t> lo, hi;
  for (const std::uint32_t i : ids) {
    const Subcube& s = family[i];
    if (s.mask & b) {
      lo.push_back(i);
      hi.push_back(i);
    } else if (s.prefix & b) {
      hi.push_back(i);
    } else {
      lo.push_back(i);
    }
  }
  ids.clear();
  ids.shrink_to_fit();
  overlap_recurse(lo, family, remaining & ~b, budget, budget_ok, pairs, max_pairs);
  overlap_recurse(hi, family, remaining & ~b, budget, budget_ok, pairs, max_pairs);
}

}  // namespace

std::optional<std::vector<WeightedSubcube>> canonical_reduce(
    std::vector<WeightedSubcube> entries, int n, std::uint64_t budget) {
  assert(n >= 1 && n <= kMaxCubeDim);
  std::vector<WeightedSubcube> out;
  if (!canon_recurse(entries, mask_low(n), budget, out)) return std::nullopt;
  return out;
}

std::optional<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
find_overlapping_pairs(const std::vector<Subcube>& family, std::uint64_t budget,
                       std::size_t max_pairs) {
  std::vector<std::uint32_t> ids(family.size());
  for (std::size_t i = 0; i < family.size(); ++i) {
    ids[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  bool budget_ok = true;
  overlap_recurse(ids, family, mask_low(kMaxCubeDim), budget, budget_ok, pairs,
                  max_pairs);
  if (!budget_ok) return std::nullopt;
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace shc
