// Expansion bridge between the symbolic and materialized schedule
// representations.
#include <stdexcept>
#include <string>

#include "shc/bits/checked.hpp"
#include "shc/sim/flat_schedule.hpp"
#include "shc/sim/symbolic_schedule.hpp"

namespace shc {

FlatSchedule FlatSchedule::from_symbolic(const SymbolicSchedule& symbolic) {
  // Exact reservation first: a symbolic schedule describes up to
  // 2^63 - 1 calls, and materializing must refuse — not wrap — beyond
  // the flat engine's sane range.
  std::uint64_t calls = 0;
  std::uint64_t path_vertices = 0;
  for (const SymbolicRound& round : symbolic.rounds) {
    for (std::size_t g = 0; g < round.groups.size(); ++g) {
      const CallGroup& grp = round.groups[g];
      if ((grp.prefix & grp.free_mask) != 0) {
        throw std::invalid_argument("from_symbolic: group prefix overlaps mask");
      }
      std::uint64_t size = 0;
      if (!checked_shift_u64(static_cast<unsigned>(weight(grp.free_mask)), size) ||
          size != grp.count) {
        throw std::invalid_argument("from_symbolic: group count mismatch");
      }
      const std::uint64_t len = round.pattern_of_group(g).size();
      std::uint64_t pv = 0;
      if (!checked_acc_u64(calls, grp.count) ||
          !checked_mul_u64(grp.count, len, pv) ||
          !checked_acc_u64(path_vertices, pv)) {
        throw std::invalid_argument("from_symbolic: expanded size overflows");
      }
    }
  }
  if (calls > (std::uint64_t{1} << 28)) {
    throw std::invalid_argument(
        "from_symbolic: " + std::to_string(calls) +
        " expanded calls exceed the materializable range (2^28)");
  }

  FlatSchedule out;
  out.source = symbolic.source;
  out.reserve(symbolic.rounds.size(), static_cast<std::size_t>(calls),
              static_cast<std::size_t>(path_vertices));
  for (const SymbolicRound& round : symbolic.rounds) {
    out.begin_round();
    for (std::size_t g = 0; g < round.groups.size(); ++g) {
      const CallGroup& grp = round.groups[g];
      const std::span<const Vertex> patt = round.pattern_of_group(g);
      Vertex a = 0;
      for (;;) {
        const Vertex u = grp.prefix | a;
        for (const Vertex x : patt) out.push_vertex(u ^ x);
        out.end_call_unchecked();
        if (a == grp.free_mask) break;
        a = (a - grp.free_mask) & grp.free_mask;
      }
    }
    out.end_round();
  }
  return out;
}

}  // namespace shc
