#include "shc/sim/validator.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "shc/bits/bitstring.hpp"

namespace shc {
namespace {

/// Canonical undirected-edge key for 64-bit endpoints.
struct EdgeKey {
  Vertex a, b;
  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
};

struct EdgeKeyHash {
  std::size_t operator()(const EdgeKey& e) const noexcept {
    // splitmix-style mixing of the two endpoints.
    std::uint64_t x = e.a * 0x9E3779B97F4A7C15ULL ^ (e.b + 0xBF58476D1CE4E5B9ULL);
    x ^= x >> 31;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 29;
    return static_cast<std::size_t>(x);
  }
};

EdgeKey edge_key(Vertex u, Vertex v) {
  return u <= v ? EdgeKey{u, v} : EdgeKey{v, u};
}

std::string vname(Vertex v) { return std::to_string(v); }

}  // namespace

ValidationReport validate_broadcast(const NetworkView& net,
                                    const BroadcastSchedule& schedule,
                                    const ValidationOptions& opt) {
  ValidationReport rep;
  const std::uint64_t order = net.num_vertices();

  auto fail = [&](const std::string& msg) {
    rep.ok = false;
    rep.error = msg;
    return rep;
  };

  if (schedule.source >= order) return fail("source out of range");

  std::unordered_set<Vertex> informed{schedule.source};
  std::unordered_map<EdgeKey, int, EdgeKeyHash> edge_use;
  std::unordered_set<Vertex> receivers;
  std::unordered_set<Vertex> touched;

  for (std::size_t t = 0; t < schedule.rounds.size(); ++t) {
    const Round& round = schedule.rounds[t];
    ++rep.rounds;
    std::ostringstream where;
    where << "round " << (t + 1) << ": ";

    if (opt.require_completion && round.calls.empty()) {
      return fail(where.str() + "empty round");
    }

    edge_use.clear();
    receivers.clear();
    touched.clear();

    for (const Call& call : round.calls) {
      if (call.path.size() < 2) {
        return fail(where.str() + "call with no edge");
      }
      rep.max_call_length = std::max(rep.max_call_length, call.length());
      ++rep.total_calls;

      const Vertex caller = call.caller();
      const Vertex receiver = call.receiver();
      if (caller >= order || receiver >= order) {
        return fail(where.str() + "endpoint out of range");
      }
      if (!informed.contains(caller)) {
        return fail(where.str() + "caller " + vname(caller) + " not informed");
      }
      if (call.length() > opt.k) {
        return fail(where.str() + "call " + vname(caller) + "->" + vname(receiver) +
                    " has length " + std::to_string(call.length()) + " > k=" +
                    std::to_string(opt.k));
      }
      if (opt.forbid_redundant_receivers && informed.contains(receiver)) {
        return fail(where.str() + "receiver " + vname(receiver) + " already informed");
      }
      if (!receivers.insert(receiver).second) {
        return fail(where.str() + "receiver " + vname(receiver) +
                    " targeted by two calls");
      }

      if (opt.require_vertex_disjoint) {
        for (const Vertex v : call.path) {
          if (!touched.insert(v).second) {
            return fail(where.str() + "vertex " + vname(v) +
                        " touched by two calls (vertex-disjoint model)");
          }
        }
      }

      // Walk the path: every hop an edge, no edge reused beyond capacity
      // (the call's own edges also count toward the capacity — a single
      // call may not traverse one edge twice in the unit-capacity model).
      for (std::size_t i = 0; i + 1 < call.path.size(); ++i) {
        const Vertex x = call.path[i];
        const Vertex y = call.path[i + 1];
        if (x >= order || y >= order) {
          return fail(where.str() + "path vertex out of range");
        }
        if (x == y || !net.has_edge(x, y)) {
          return fail(where.str() + "no edge between " + vname(x) + " and " + vname(y));
        }
        const int uses = ++edge_use[edge_key(x, y)];
        if (uses > opt.edge_capacity) {
          return fail(where.str() + "edge {" + vname(x) + "," + vname(y) +
                      "} used " + std::to_string(uses) + " times (capacity " +
                      std::to_string(opt.edge_capacity) + ")");
        }
      }
    }

    // Receivers become informed only after the full round resolves; a
    // vertex informed this round may not also have placed a call (it was
    // uninformed at round start, enforced by the caller check above).
    for (Vertex r : receivers) informed.insert(r);
  }

  rep.informed = informed.size();
  if (opt.require_completion && rep.informed != order) {
    return fail("incomplete: informed " + std::to_string(rep.informed) + " of " +
                std::to_string(order));
  }

  rep.ok = true;
  rep.minimum_time =
      rep.ok && rep.rounds == ceil_log2(order) && rep.informed == order;
  return rep;
}

ValidationReport validate_minimum_time_k_line(const NetworkView& net,
                                              const BroadcastSchedule& schedule,
                                              int k) {
  ValidationOptions opt;
  opt.k = k;
  return validate_broadcast(net, schedule, opt);
}

}  // namespace shc
