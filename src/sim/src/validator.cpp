#include "shc/sim/validator.hpp"

namespace shc {

// Shared instantiation of the checking kernel over the type-erased
// virtual adapter; concrete oracle types instantiate (and devirtualize)
// in their own translation units.
template ValidationReport validate_broadcast<NetworkView>(const NetworkView&,
                                                          const FlatSchedule&,
                                                          const ValidationOptions&);

}  // namespace shc
