// Flat, arena-backed broadcast-schedule representation.
//
// The legacy BroadcastSchedule (Round{vector<Call>}, Call{vector<Vertex>})
// heap-allocates one vector per call, which caps schemes at small n and
// makes every validator/congestion pass allocation-bound.  FlatSchedule
// stores the same information in three contiguous arrays:
//
//   pool_       — every path vertex of every call, back to back;
//   call_off_   — call c's path is pool_[call_off_[c] .. call_off_[c+1]);
//   round_end_  — round t covers calls [round_end_[t-1], round_end_[t]).
//
// Appending a call costs zero heap allocations once capacity is reserved
// (and O(log) amortized growth otherwise); memory is proportional to the
// total path length.  Producers build schedules through the round/call
// cursor API (begin_round / push_vertex / end_call); consumers iterate
// RoundView / CallView, which are non-owning spans into the pool.
//
// The legacy types remain as a conversion shim (from_legacy / to_legacy)
// so literal-transcription cross-checks and hand-built test schedules
// keep working during and after the migration.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

#include "shc/bits/vertex.hpp"
#include "shc/sim/schedule.hpp"

namespace shc {

struct SymbolicSchedule;

/// Contiguous schedule of rounds of calls; see file comment.
class FlatSchedule {
 public:
  /// Non-owning view of one call's vertex path inside the pool.
  class CallView {
   public:
    CallView(const Vertex* data, std::size_t size) : data_(data), size_(size) {}

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] Vertex operator[](std::size_t i) const noexcept {
      assert(i < size_);
      return data_[i];
    }
    [[nodiscard]] const Vertex* begin() const noexcept { return data_; }
    [[nodiscard]] const Vertex* end() const noexcept { return data_ + size_; }

    [[nodiscard]] Vertex caller() const noexcept {
      assert(size_ > 0 && "caller() on an empty call");
      return data_[0];
    }
    [[nodiscard]] Vertex receiver() const noexcept {
      assert(size_ > 0 && "receiver() on an empty call");
      return data_[size_ - 1];
    }
    /// Number of edges occupied (the paper's call length); -1 when empty.
    [[nodiscard]] int length() const noexcept { return static_cast<int>(size_) - 1; }

   private:
    const Vertex* data_;
    std::size_t size_;
  };

  /// Random-access range of the calls of one round.
  class RoundView {
   public:
    /// Conforming C++20 forward iterator (by-value CallView reference, as
    /// permitted by the std::forward_iterator concept), so std::distance,
    /// <algorithm>, and ranges all work over a round.  The C++17-style
    /// category is input: Cpp17ForwardIterator requires reference to be
    /// an lvalue reference, which a proxy-returning iterator cannot
    /// honestly claim — legacy algorithms must not cache &*it.
    class iterator {
     public:
      using iterator_category = std::input_iterator_tag;
      using iterator_concept = std::forward_iterator_tag;
      using value_type = CallView;
      using difference_type = std::ptrdiff_t;
      using reference = CallView;
      using pointer = void;

      iterator() = default;
      iterator(const FlatSchedule* s, std::size_t call) : s_(s), call_(call) {}
      CallView operator*() const { return s_->call(call_); }
      iterator& operator++() {
        ++call_;
        return *this;
      }
      iterator operator++(int) {
        iterator old = *this;
        ++call_;
        return old;
      }
      friend bool operator==(const iterator&, const iterator&) = default;

     private:
      const FlatSchedule* s_ = nullptr;
      std::size_t call_ = 0;
    };

    RoundView(const FlatSchedule* s, std::size_t first, std::size_t last)
        : s_(s), first_(first), last_(last) {}

    [[nodiscard]] std::size_t size() const noexcept { return last_ - first_; }
    [[nodiscard]] bool empty() const noexcept { return first_ == last_; }
    [[nodiscard]] CallView operator[](std::size_t i) const noexcept {
      assert(first_ + i < last_);
      return s_->call(first_ + i);
    }
    [[nodiscard]] iterator begin() const noexcept { return {s_, first_}; }
    [[nodiscard]] iterator end() const noexcept { return {s_, last_}; }

   private:
    const FlatSchedule* s_;
    std::size_t first_, last_;
  };

  Vertex source = 0;

  // ---- builder (cursor) API -------------------------------------------

  /// Pre-sizes the three arenas; after an exact (or over-) reservation,
  /// building performs zero further heap allocations.
  void reserve(std::size_t rounds, std::size_t calls, std::size_t path_vertices) {
    round_end_.reserve(rounds);
    call_off_.reserve(calls + 1);
    pool_.reserve(path_vertices);
  }

  /// Opens a new round; subsequent calls belong to it.
  void begin_round() {
    assert(!call_open() && "begin_round with an unsealed call");
    round_end_.push_back(num_calls());
  }

  /// Appends one vertex to the call being built.  The first push after a
  /// seal (or after begin_round) implicitly opens the next call.
  void push_vertex(Vertex v) {
    assert(!round_end_.empty() && "push_vertex before begin_round");
    pool_.push_back(v);
  }

  /// Last vertex of the call under construction.
  [[nodiscard]] Vertex last_vertex() const noexcept {
    assert(call_open());
    return pool_.back();
  }

  /// Seals the call under construction into the current round.  A sealed
  /// call must have at least two vertices (one edge).
  void end_call() {
    assert(pool_.size() - call_off_.back() >= 2 && "call needs >= 2 vertices");
    seal_call();
  }

  /// Seals the call under construction *without* the >= 2 vertex
  /// invariant.  Consumers that buffer untrusted schedules (the streaming
  /// validator's scratch arena) use this so a degenerate call reaches the
  /// validator's explicit error path instead of a builder assert.
  void end_call_unchecked() { seal_call(); }

  /// Closes the round under construction.  A no-op for the whole-arena
  /// builder — rounds are delimited by begin_round() — but part of the
  /// RoundSink producer API, where streaming consumers validate and
  /// recycle the round buffer here.
  void end_round() { assert(!call_open() && "end_round with an unsealed call"); }

  /// Convenience: appends a whole path as one call.
  void add_call(std::initializer_list<Vertex> path) {
    for (Vertex v : path) push_vertex(v);
    end_call();
  }
  template <class Range>
  void add_call(const Range& path) {
    for (Vertex v : path) push_vertex(v);
    end_call();
  }

  /// Drops rounds t >= `rounds` (and their calls/paths).
  void truncate_rounds(int rounds) {
    assert(!call_open());
    assert(rounds >= 0 && rounds <= num_rounds());
    round_end_.resize(static_cast<std::size_t>(rounds));
    const std::size_t calls = round_end_.empty() ? 0 : round_end_.back();
    call_off_.resize(calls + 1);
    pool_.resize(call_off_.back());
  }

  // ---- queries ---------------------------------------------------------

  [[nodiscard]] int num_rounds() const noexcept {
    return static_cast<int>(round_end_.size());
  }
  [[nodiscard]] std::size_t num_calls() const noexcept { return call_off_.size() - 1; }
  /// Total path vertices across all calls (pool size).
  [[nodiscard]] std::size_t num_path_vertices() const noexcept {
    return call_off_.back();
  }

  [[nodiscard]] CallView call(std::size_t c) const noexcept {
    assert(c < num_calls());
    return {pool_.data() + call_off_[c], call_off_[c + 1] - call_off_[c]};
  }

  /// Total path vertices of calls [first, last) — what a consumer needs
  /// to size per-round scratch (e.g. the streaming validator's edge
  /// table) without touching every call.
  [[nodiscard]] std::size_t path_vertices_between(std::size_t first,
                                                  std::size_t last) const noexcept {
    assert(first <= last && last <= num_calls());
    return call_off_[last] - call_off_[first];
  }

  [[nodiscard]] RoundView round(int t) const noexcept {
    assert(t >= 0 && t < num_rounds());
    const std::size_t i = static_cast<std::size_t>(t);
    return {this, i == 0 ? 0 : round_end_[i - 1], round_end_[i]};
  }

  /// Longest call in the schedule; 0 when there are no calls.
  [[nodiscard]] int max_call_length() const noexcept {
    int len = 0;
    for (std::size_t c = 0; c < num_calls(); ++c) {
      const int l = call(c).length();
      if (l > len) len = l;
    }
    return len;
  }

  /// Arena footprint of an exact reservation for the given counts —
  /// the static counterpart of heap_bytes(), kept adjacent so a-priori
  /// bounds (streaming certification) stay in lockstep with the real
  /// storage layout.
  [[nodiscard]] static constexpr std::size_t arena_bytes(
      std::size_t rounds, std::size_t calls, std::size_t path_vertices) noexcept {
    return path_vertices * sizeof(Vertex) + (calls + 1) * sizeof(std::size_t) +
           rounds * sizeof(std::size_t);
  }

  /// Bytes currently owned by the three arenas (diagnostics / benches).
  [[nodiscard]] std::size_t heap_bytes() const noexcept {
    return pool_.capacity() * sizeof(Vertex) +
           call_off_.capacity() * sizeof(std::size_t) +
           round_end_.capacity() * sizeof(std::size_t);
  }

  friend bool operator==(const FlatSchedule& a, const FlatSchedule& b) {
    return a.source == b.source && a.round_end_ == b.round_end_ &&
           a.call_off_ == b.call_off_ && a.pool_ == b.pool_;
  }

  // ---- legacy conversion shim -----------------------------------------

  /// Copies a legacy schedule verbatim — including empty rounds and
  /// degenerate (< 2 vertex) calls, which the validator rejects with an
  /// explicit error instead of tripping builder asserts.
  [[nodiscard]] static FlatSchedule from_legacy(const BroadcastSchedule& legacy);

  /// Materializes the legacy pointer-per-call form (tests, cross-checks).
  [[nodiscard]] BroadcastSchedule to_legacy() const;

  /// Expands a symbolic (subcube-batched) schedule into concrete calls:
  /// each group becomes its 2^popcount(free_mask) translated calls, in
  /// ascending free-assignment order.  The bridge that makes the
  /// symbolic and materialized pipelines parity-testable on their
  /// overlapping range.  Throws std::invalid_argument when the expanded
  /// size is unreasonable to materialize (call count above 2^28) or a
  /// group is malformed (prefix/mask overlap, count mismatch).
  [[nodiscard]] static FlatSchedule from_symbolic(const SymbolicSchedule& symbolic);

 private:
  [[nodiscard]] bool call_open() const noexcept {
    return pool_.size() > call_off_.back();
  }
  void seal_call() {
    call_off_.push_back(pool_.size());
    assert(!round_end_.empty());
    ++round_end_.back();
  }

  std::vector<Vertex> pool_;
  std::vector<std::size_t> call_off_ = {0};   // size num_calls()+1
  std::vector<std::size_t> round_end_;        // size num_rounds()
};

/// Pretty-prints a flat schedule exactly like the legacy formatter.
[[nodiscard]] std::string format_schedule(const FlatSchedule& s, int bits = 0);

}  // namespace shc
