// RoundSink — the producer-side contract of the streaming schedule
// pipeline.
//
// A schedule producer (e.g. mlbg's emit_broadcast_rounds) emits rounds
// of calls through the same cursor verbs FlatSchedule already exposes:
//
//   begin_round();            // open round t
//   push_vertex(v); ...       // grow the current call's path
//   last_vertex();            // peek (producers chain calls off it)
//   end_call();               // seal the call into the round
//   end_round();              // round complete — consumers may process it
//
// Two models ship in-tree:
//   * FlatSchedule            — the whole-arena builder: end_round() is a
//                               no-op and every round accumulates;
//   * StreamingBroadcastValidator — validates each round on end_round()
//                               and recycles one bounded scratch arena,
//                               so peak memory is the largest round, not
//                               the whole 2^n - 1 call schedule.
//
// Optional hooks, detected by producers via `requires`:
//   * reserve_round(calls, path_vertices) — exact pre-sizing of the
//     consumer's round buffer (keeps the scratch arena allocation-tight);
//   * aborted() -> bool — consumer asks the producer to stop early
//     (e.g. the streamed schedule already failed validation).
#pragma once

#include <concepts>

#include "shc/bits/vertex.hpp"

namespace shc {

/// Anything the round/call cursor producers can emit into.
template <class S>
concept RoundSink = requires(S& s, const S& cs, Vertex v) {
  s.begin_round();
  s.push_vertex(v);
  { cs.last_vertex() } -> std::convertible_to<Vertex>;
  s.end_call();
  s.end_round();
};

}  // namespace shc
