// Symbolic (subcube-batched) schedule representation.
//
// The paper's Broadcast_k construction is fully implicit: in the round
// sweeping dimension i, every informed vertex u places the same
// route_flip(u, i) call up to translation, and the route depends only on
// the bits of u below the governing cut.  A round therefore compresses
// to a handful of *call groups*: a caller subcube, one shared flip-route
// pattern, and a count.  One group stands for up to 2^62 concrete calls,
// which is what lifts certification from the streaming pipeline's
// n <= 32 (one concrete call per vertex) to the representation limit
// n <= 63.
//
// A pattern is the call's path written as cumulative XOR masks relative
// to the caller: pattern[0] == 0 (the caller itself), pattern[j] ^
// pattern[j+1] has exactly one bit (the hop's dimension), and the
// receiver is caller ^ pattern.back().  Every concrete call of the
// group is the translate u ^ pattern[j]; patterns never touch the
// group's free dimensions, so the group's calls are pairwise
// vertex-disjoint by construction.
//
// Producers emit through the SymbolicRoundSink concept — the symbolic
// channel of the streaming pipeline's RoundSink idea: begin_round(),
// end_call_group() per group, end_round().  Two sinks ship in-tree:
// SymbolicScheduleBuilder materializes a SymbolicSchedule (pattern
// tables deduplicated per round); SymbolicBroadcastValidator
// (symbolic_validator.hpp) certifies rounds as they stream by and keeps
// no groups at all across rounds.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <span>
#include <unordered_map>
#include <vector>

#include "shc/bits/vertex.hpp"
#include "shc/sim/subcube.hpp"

namespace shc {

/// One subcube-batched group of identical-up-to-translation calls.
struct CallGroup {
  Vertex prefix = 0;         ///< pinned bits of the caller subcube
  Vertex free_mask = 0;      ///< free dims (prefix & free_mask == 0)
  std::uint64_t count = 0;   ///< concrete calls == 2^popcount(free_mask)

  [[nodiscard]] Subcube callers() const noexcept { return {prefix, free_mask}; }
};

/// Anything a symbolic producer can emit rounds of call groups into.
template <class S>
concept SymbolicRoundSink =
    requires(S& s, const CallGroup& g, std::span<const Vertex> pattern) {
      s.begin_round();
      s.end_call_group(g, pattern);
      s.end_round();
    };

/// A materialized symbolic round: groups plus a deduplicated pattern
/// table (groups reference patterns by index; pattern_off delimits the
/// flat pattern pool: pattern p is pattern_pool[pattern_off[p] ..
/// pattern_off[p+1])).
struct SymbolicRound {
  std::vector<CallGroup> groups;
  std::vector<std::uint32_t> group_pattern;  ///< pattern id per group
  std::vector<Vertex> pattern_pool;
  std::vector<std::uint32_t> pattern_off = {0};

  [[nodiscard]] std::size_t num_patterns() const noexcept {
    return pattern_off.size() - 1;
  }
  [[nodiscard]] std::span<const Vertex> pattern(std::uint32_t p) const noexcept {
    return {pattern_pool.data() + pattern_off[p],
            pattern_pool.data() + pattern_off[p + 1]};
  }
  [[nodiscard]] std::span<const Vertex> pattern_of_group(std::size_t g) const noexcept {
    return pattern(group_pattern[g]);
  }
};

/// A whole symbolic schedule — the compressed counterpart of
/// FlatSchedule (expand with FlatSchedule::from_symbolic for bounded n).
struct SymbolicSchedule {
  Vertex source = 0;
  int n = 0;  ///< cube dimension (vertices are 0 .. 2^n - 1)
  std::vector<SymbolicRound> rounds;

  /// Total concrete calls across all rounds (overflow-checked; returns
  /// false iff the sum wraps 64 bits).
  [[nodiscard]] bool total_calls(std::uint64_t& out) const noexcept {
    std::uint64_t sum = 0;
    for (const SymbolicRound& r : rounds) {
      for (const CallGroup& g : r.groups) {
        if (!checked_acc_u64(sum, g.count)) return false;
      }
    }
    out = sum;
    return true;
  }
};

/// SymbolicRoundSink that materializes a SymbolicSchedule, deduplicating
/// patterns per round (the sweep of one dimension reuses a small set of
/// window-value-determined routes across millions of groups).
class SymbolicScheduleBuilder {
 public:
  explicit SymbolicScheduleBuilder(Vertex source, int n) {
    schedule_.source = source;
    schedule_.n = n;
  }

  void begin_round() {
    schedule_.rounds.emplace_back();
    pattern_ids_.clear();
  }

  void end_call_group(const CallGroup& g, std::span<const Vertex> pattern) {
    SymbolicRound& round = schedule_.rounds.back();
    const std::uint64_t key = pattern_key(pattern);
    std::uint32_t id = ~std::uint32_t{0};
    auto [lo, hi] = pattern_ids_.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      const std::span<const Vertex> have = round.pattern(it->second);
      if (std::equal(have.begin(), have.end(), pattern.begin(), pattern.end())) {
        id = it->second;
        break;
      }
    }
    if (id == ~std::uint32_t{0}) {
      // pattern_off is 32-bit; refuse rather than wrap (deduplication
      // keeps real rounds many orders of magnitude below this).
      if (round.pattern_pool.size() + pattern.size() >
          std::numeric_limits<std::uint32_t>::max()) {
        throw std::length_error("symbolic round pattern pool exceeds 32-bit offsets");
      }
      id = static_cast<std::uint32_t>(round.num_patterns());
      round.pattern_pool.insert(round.pattern_pool.end(), pattern.begin(),
                                pattern.end());
      round.pattern_off.push_back(
          static_cast<std::uint32_t>(round.pattern_pool.size()));
      pattern_ids_.emplace(key, id);
    }
    round.groups.push_back(g);
    round.group_pattern.push_back(id);
  }

  void end_round() {}

  [[nodiscard]] SymbolicSchedule take() && { return std::move(schedule_); }
  [[nodiscard]] const SymbolicSchedule& schedule() const noexcept {
    return schedule_;
  }

 private:
  static std::uint64_t pattern_key(std::span<const Vertex> pattern) noexcept {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (const Vertex x : pattern) h = detail::mix_u64(h ^ x);
    return h;
  }

  SymbolicSchedule schedule_;
  std::unordered_multimap<std::uint64_t, std::uint32_t> pattern_ids_;
};

static_assert(SymbolicRoundSink<SymbolicScheduleBuilder>);

}  // namespace shc
