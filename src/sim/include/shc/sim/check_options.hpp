#pragma once
// Shared knobs of the symbolic certification engines.
//
// The broadcast validator (SymbolicCheckOptions) and the gossip
// validator (SymbolicGossipOptions) grew the same set of sampling,
// collision and threading knobs independently; the copies drifted only
// in their doc comments, never in meaning.  CommonCheckOptions is the
// single home for those fields: both option structs inherit it, so the
// old spellings (`sopt.threads`, `sopt.collision_mode`, ...) keep
// compiling unchanged — the inherited members ARE the documented
// aliases for this release.  shc_lint's duplicate-knob rule forbids
// re-declaring any of these names as members elsewhere in src/.
//
// A new addition over the historical copies: `pool` lets a caller lend
// a persistent WorkerPool to a validator instead of having it spin up
// (and tear down) its own per `threads`.  The certification server
// reuses one pool across thousands of queries this way.  The verdict
// contract is unchanged: reports are bit-for-bit identical for every
// thread count and for borrowed vs. owned pools.

#include <cstddef>
#include <cstdint>

#include "shc/sim/occupancy_ledger.hpp"

namespace shc {

class WorkerPool;

/// Knobs shared by every symbolic check engine (all have safe defaults;
/// caps make the engines fail explicitly instead of thrashing on
/// adversarial input).  Embedded — by inheritance — in
/// SymbolicCheckOptions and SymbolicGossipOptions.
struct CommonCheckOptions {
  /// Groups sampled per round for concrete replay through the exact
  /// serial kernel (0 disables sampling).
  std::uint64_t sample_groups_per_round = 4;
  /// Concrete calls/exchanges expanded per sampled group.
  std::uint64_t sample_calls_per_group = 4;
  std::uint64_t sample_seed = 0x5eedULL;

  /// How per-round concurrent disjointness is proved.  kLedger (the
  /// default) consumes every claimed subcube into a dyadic occupancy
  /// ledger — cost O(total pieces * n), which is what certifies the
  /// paper's designed n = 63 (m = 10) construction.  kPairSweep keeps
  /// the original volume sweep + exact analysis per candidate pair for
  /// parity testing and small-n cross-checking; both modes produce
  /// bit-for-bit identical reports (enforced by tests).
  CollisionMode collision_mode = CollisionMode::kLedger;
  /// Dyadic-walk budget per ledger claim: each bucket's budget is
  /// ledger_bucket_budget_base + ledger_budget_per_claim * bucket
  /// claims — deterministic, thread-count independent.  The designed
  /// specs stay under 16 visits per claim; the default leaves an order
  /// of magnitude of headroom.
  std::uint64_t ledger_budget_per_claim = 512;
  std::uint64_t ledger_bucket_budget_base = 4096;

  /// Node budget of the per-round collision candidate sweeps
  /// (kPairSweep mode only).
  std::uint64_t collision_budget = std::uint64_t{1} << 28;
  /// Cap on collision candidate pairs per round (kPairSweep mode only).
  std::size_t max_collision_pairs = std::size_t{1} << 16;

  /// Workers for the per-round group checks — they shard over a
  /// persistent WorkerPool.  1 (the default) runs fully inline.  The
  /// verdict, report, and error strings are thread-count independent:
  /// per-entry budgets are deterministic and the failure with the
  /// smallest candidate index wins, exactly as the serial loop picks
  /// it.  Ignored when `pool` is set.
  int threads = 1;

  /// Optional borrowed WorkerPool.  When non-null the validator shards
  /// its checks over this pool instead of constructing one from
  /// `threads`; the caller keeps ownership and must keep the pool alive
  /// for the validator's lifetime.  Lets a long-lived server reuse one
  /// pool across queries.  Null (the default) preserves the historical
  /// behavior: an owned pool iff threads > 1.
  WorkerPool* pool = nullptr;
};

}  // namespace shc
