// Parallel and streaming broadcast validation.
//
// The serial validator (validator.hpp) re-checks every clause of the
// paper's Definitions 1 and 2 one call at a time.  This header scales
// the same kernel two ways without changing a single verdict:
//
//  * validate_broadcast_parallel — shards each round's calls across
//    std::thread workers.  Per-round checks split into a read-only
//    phase (range/length/informedness/edge-existence probes, which only
//    read the cross-round informed set) that parallelizes trivially,
//    and a serial merge phase (receiver uniqueness, vertex-
//    disjointness, edge capacity) over compact per-round structures.
//    Whenever *any* anomaly is detected the round is re-run through the
//    serial reference kernel, so failure reports — error string,
//    partial counters, everything — are bit-for-bit identical to
//    validate_broadcast's.  Tests enforce this parity.
//
//  * StreamingBroadcastValidator — a RoundSink that consumes rounds as
//    a producer emits them, validating and recycling one bounded
//    scratch arena.  Peak memory is the largest single round (plus the
//    informed bitmap), not the whole schedule, which is what lifts
//    certified broadcast instances from n <= 28 (materialized) to
//    n <= 32 (streamed).
//
// Per-round edge capacity on the fast path is tracked in an open-
// addressing table with packed 64-bit edge keys and epoch-tagged slots
// (no per-round clearing); orders above 2^32 vertices simply take the
// serial kernel, which handles arbitrary 64-bit endpoints.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "shc/bits/checked.hpp"
#include "shc/sim/flat_schedule.hpp"
#include "shc/sim/round_sink.hpp"
#include "shc/sim/validator.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {

namespace detail {

/// Per-round edge-use counter: open addressing, linear probing, packed
/// (a << 32 | b) keys, epoch-tagged slots so starting a new round is
/// O(1) instead of a table-wide clear.  Capacity is kept at twice the
/// round's hop count, so probes stay short.
class RoundEdgeTable {
 public:
  /// Prepares for a round of at most `hops` path edges.
  void begin_round(std::size_t hops) {
    const std::size_t want = std::bit_ceil(std::max<std::size_t>(2 * hops, 64));
    if (want > slots_.size() ||
        epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      slots_.assign(std::max(want, slots_.size()), Slot{});
      epoch_ = 0;
    }
    ++epoch_;
    mask_ = slots_.size() - 1;
  }

  /// Counts one use of `key` this round; returns the running total.
  int count_up(std::uint64_t key) noexcept {
    std::size_t i = mix(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.epoch = epoch_;
        s.key = key;
        s.count = 1;
        return 1;
      }
      if (s.key == key) return static_cast<int>(++s.count);
      i = (i + 1) & mask_;
    }
  }

  /// Bytes currently owned by the slot array (memory transparency: at
  /// large n this, not the round arena, would be the biggest consumer —
  /// which is why single-hop rounds skip the table entirely).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t epoch = 0;
    std::uint32_t count = 0;
  };

  static std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint32_t epoch_ = 0;
};

/// Packs an undirected edge whose endpoints fit 32 bits.
inline std::uint64_t packed_edge_key(Vertex x, Vertex y) noexcept {
  const Vertex a = x <= y ? x : y;
  const Vertex b = x <= y ? y : x;
  return (a << 32) | b;
}

/// Fast path for one round: sharded read-only checks, then a serial
/// merge over the arena for the global (cross-call) invariants.  On
/// success commits receivers/counters and returns true.  Returns false
/// on *any* suspicion — including benign ineligibility like an order
/// above 2^32 — without mutating cross-round state, so the caller can
/// re-run the serial reference kernel for an exact verdict.
template <AdjacencyOracle Net>
bool try_validate_round_clean(const Net& net, const FlatSchedule& schedule,
                              std::size_t first_call, std::size_t last_call,
                              const ValidationOptions& opt,
                              BroadcastRunState& state, ValidationReport& rep,
                              WorkerPool& pool, RoundEdgeTable& edges) {
  const std::uint64_t order = net.num_vertices();
  if (order > (std::uint64_t{1} << 32)) return false;  // packed keys need 32-bit ids
  const std::size_t count = last_call - first_call;
  if (count == 0) return !opt.require_completion;

  // ---- phase A: sharded read-only checks ------------------------------
  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(std::max(pool.workers(), 1)), count));
  std::atomic<bool> flagged{false};
  std::vector<int> local_max(static_cast<std::size_t>(workers), 0);

  // A worker `break`s out of its call loop on the first violation (or on
  // another shard's flag); ending anywhere short of `hi` raises the flag.
  auto scan_range = [&](std::size_t lo, std::size_t hi, int widx) {
    std::size_t c = lo;
    int max_len = 0;
    for (; c < hi; ++c) {
      if (flagged.load(std::memory_order_relaxed)) return;
      const FlatSchedule::CallView call = schedule.call(c);
      if (call.size() < 2) break;
      max_len = std::max(max_len, call.length());
      const Vertex caller = call.caller();
      const Vertex receiver = call.receiver();
      if (caller >= order || receiver >= order) break;
      if (!state.informed.contains(caller)) break;
      if (call.length() > opt.k) break;
      if (opt.forbid_redundant_receivers && state.informed.contains(receiver)) {
        break;
      }
      bool bad_path = false;
      for (std::size_t i = 0; i + 1 < call.size(); ++i) {
        const Vertex x = call[i];
        const Vertex y = call[i + 1];
        if (x >= order || y >= order || x == y || !net.has_edge(x, y)) {
          bad_path = true;
          break;
        }
      }
      if (bad_path) break;
    }
    if (c < hi) flagged.store(true, std::memory_order_relaxed);
    local_max[static_cast<std::size_t>(widx)] = max_len;
  };

  if (workers == 1) {
    scan_range(first_call, last_call, 0);
  } else {
    // Same chunking as the historical spawn-per-round code (parity),
    // but executed on the persistent pool.
    const std::size_t chunk = (count + static_cast<std::size_t>(workers) - 1) /
                              static_cast<std::size_t>(workers);
    pool.run(workers, [&](int w) {
      const std::size_t lo = first_call + static_cast<std::size_t>(w) * chunk;
      const std::size_t hi = std::min(lo + chunk, last_call);
      scan_range(lo, hi, w);
    });
  }
  if (flagged.load()) return false;

  int round_max_len = 0;
  for (const int m : local_max) round_max_len = std::max(round_max_len, m);

  // ---- phase B: serial merge of the cross-call invariants -------------
  state.receivers.clear();
  for (std::size_t c = first_call; c < last_call; ++c) {
    if (!state.receivers.insert(schedule.call(c).receiver())) return false;
  }
  if (state.touched) {
    state.touched->clear();
    for (std::size_t c = first_call; c < last_call; ++c) {
      for (const Vertex v : schedule.call(c)) {
        if (!state.touched->insert(v)) return false;
      }
    }
  }

  // Edge capacity.  When every call in the round is a single hop and
  // redundant receivers are forbidden, edge-disjointness is already
  // implied and the table pass (the dominant memory/cache cost in the
  // doubling rounds of a 2^n broadcast) is skipped: each call's only
  // edge is {informed caller, uninformed receiver}; two calls sharing
  // an undirected edge would need either the same receiver (rejected by
  // the uniqueness pass above) or swapped roles, which would make one
  // vertex both informed (as a caller) and uninformed (as a receiver)
  // at round start — phase A rejected that already.
  const bool edges_implied =
      round_max_len <= 1 && opt.forbid_redundant_receivers && opt.edge_capacity >= 1;
  if (!edges_implied) {
    edges.begin_round(schedule.path_vertices_between(first_call, last_call) -
                      count);
    for (std::size_t c = first_call; c < last_call; ++c) {
      const FlatSchedule::CallView call = schedule.call(c);
      for (std::size_t i = 0; i + 1 < call.size(); ++i) {
        if (edges.count_up(packed_edge_key(call[i], call[i + 1])) >
            opt.edge_capacity) {
          return false;
        }
      }
    }
  }

  // ---- commit ---------------------------------------------------------
  for (std::size_t c = first_call; c < last_call; ++c) {
    state.informed.insert(schedule.call(c).receiver());
  }
  saturating_acc_u64(rep.total_calls, count);
  rep.max_call_length = std::max(rep.max_call_length, round_max_len);
  return true;
}

}  // namespace detail

/// Sharded validate_broadcast: same verdict, error string, and counters
/// as the serial kernel on every input (enforced by parity tests), with
/// each round's per-call checks spread over `threads` workers.
/// threads <= 0 picks hardware_concurrency().
template <AdjacencyOracle Net>
[[nodiscard]] ValidationReport validate_broadcast_parallel(
    const Net& net, const FlatSchedule& schedule, const ValidationOptions& opt,
    int threads = 0) {
  if (threads <= 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  ValidationReport rep;
  const std::uint64_t order = net.num_vertices();
  if (schedule.source >= order) {
    rep.ok = false;
    rep.error = "source out of range";
    return rep;
  }

  detail::BroadcastRunState state(order, opt);
  state.informed.insert(schedule.source);
  detail::RoundEdgeTable edges;
  WorkerPool pool(threads);  // persistent across all rounds of this run

  std::size_t first = 0;
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    const std::size_t last = first + schedule.round(t).size();
    ++rep.rounds;
    if (!detail::try_validate_round_clean(net, schedule, first, last, opt, state,
                                          rep, pool, edges) &&
        !detail::validate_round_serial(net, schedule, first, last, t + 1, opt,
                                       state, rep)) {
      return rep;
    }
    first = last;
  }

  detail::finish_broadcast_report(order, opt, state, rep);
  return rep;
}

/// RoundSink that validates a broadcast as it is produced.  One round
/// lives in the scratch arena at a time: end_round() (or the next
/// begin_round()) runs the sharded round check — with serial-kernel
/// fallback for exact failure parity — and recycles the arena, so peak
/// memory is bounded by the largest single round.
template <AdjacencyOracle Net>
class StreamingBroadcastValidator {
 public:
  /// Keeps a reference to `net`; it must outlive the validator.
  /// threads <= 0 picks hardware_concurrency().
  StreamingBroadcastValidator(const Net& net, Vertex source,
                              const ValidationOptions& opt, int threads = 1)
      : net_(&net),
        opt_(opt),
        threads_(threads <= 0
                     ? static_cast<int>(std::max(1u, std::thread::hardware_concurrency()))
                     : threads),
        order_(net.num_vertices()),
        state_(order_, opt) {
    scratch_.source = source;
    if (source >= order_) {
      rep_.ok = false;
      rep_.error = "source out of range";
      failed_ = true;
    } else {
      state_.informed.insert(source);
    }
  }

  // ---- RoundSink interface --------------------------------------------

  /// Optional producer hook: exact pre-sizing of the round buffer.
  /// Flushes and empties the previous round *before* reserving, so a
  /// growing reservation never copies stale round data and never holds
  /// old + new buffers with a full round inside.
  void reserve_round(std::size_t calls, std::size_t path_vertices) {
    flush_round();
    scratch_.truncate_rounds(0);
    scratch_.reserve(1, calls, path_vertices);
  }

  void begin_round() {
    flush_round();
    scratch_.truncate_rounds(0);
    scratch_.begin_round();
    open_ = true;
  }

  void push_vertex(Vertex v) {
    ++vertices_seen_;
    scratch_.push_vertex(v);
  }

  [[nodiscard]] Vertex last_vertex() const { return scratch_.last_vertex(); }

  /// Seals the current call.  Degenerate (< 2 vertex) calls are buffered
  /// rather than asserted on, so they reach the validator's explicit
  /// "empty or zero-length call" error exactly as in the serial path.
  void end_call() {
    ++calls_seen_;
    scratch_.end_call_unchecked();
  }

  void end_round() { flush_round(); }

  /// True once validation has failed; producers should stop emitting
  /// (further rounds are buffered and discarded, never validated).
  [[nodiscard]] bool aborted() const noexcept { return failed_; }

  // ---- results ---------------------------------------------------------

  /// Flushes any pending round and returns the final report (completion
  /// and minimum-time checks included).  Idempotent.
  [[nodiscard]] ValidationReport finish() {
    flush_round();
    if (!failed_ && !finished_) {
      detail::finish_broadcast_report(order_, opt_, state_, rep_);
    }
    finished_ = true;
    return rep_;
  }

  /// High-water mark of the scratch arena — the streaming memory claim:
  /// bounded by the largest single round, not the schedule.
  [[nodiscard]] std::size_t peak_round_arena_bytes() const noexcept {
    return std::max(peak_arena_, scratch_.heap_bytes());
  }

  /// High-water mark of the per-round edge table (0 when every round's
  /// edge-disjointness was implied by single-hop structure).
  [[nodiscard]] std::size_t peak_edge_table_bytes() const noexcept {
    return std::max(peak_edge_table_, edges_.capacity_bytes());
  }

  [[nodiscard]] std::uint64_t calls_seen() const noexcept { return calls_seen_; }
  [[nodiscard]] std::uint64_t vertices_seen() const noexcept {
    return vertices_seen_;
  }

 private:
  void flush_round() {
    if (!open_) return;
    open_ = false;
    peak_arena_ = std::max(peak_arena_, scratch_.heap_bytes());
    peak_edge_table_ = std::max(peak_edge_table_, edges_.capacity_bytes());
    if (failed_) return;
    ++rep_.rounds;
    const std::size_t calls = scratch_.num_calls();
    if (!detail::try_validate_round_clean(*net_, scratch_, 0, calls, opt_,
                                          state_, rep_, pool_, edges_) &&
        !detail::validate_round_serial(*net_, scratch_, 0, calls, rep_.rounds,
                                       opt_, state_, rep_)) {
      failed_ = true;
    }
  }

  const Net* net_;
  ValidationOptions opt_;
  int threads_;
  WorkerPool pool_{threads_};  ///< persistent workers, reused every round
  std::uint64_t order_;
  detail::BroadcastRunState state_;
  detail::RoundEdgeTable edges_;
  FlatSchedule scratch_;
  ValidationReport rep_;
  std::size_t peak_arena_ = 0;
  std::size_t peak_edge_table_ = 0;
  std::uint64_t calls_seen_ = 0;
  std::uint64_t vertices_seen_ = 0;
  bool open_ = false;
  bool failed_ = false;
  bool finished_ = false;
};

/// Replays a materialized schedule through the streaming sink — the
/// chunked consumer — producing the identical report to the serial
/// validator while touching one round of arena at a time.
template <AdjacencyOracle Net>
[[nodiscard]] ValidationReport validate_broadcast_streaming(
    const Net& net, const FlatSchedule& schedule, const ValidationOptions& opt,
    int threads = 1) {
  StreamingBroadcastValidator<Net> sink(net, schedule.source, opt, threads);
  for (int t = 0; t < schedule.num_rounds() && !sink.aborted(); ++t) {
    sink.begin_round();
    for (const FlatSchedule::CallView call : schedule.round(t)) {
      for (const Vertex v : call) sink.push_vertex(v);
      sink.end_call();
    }
    sink.end_round();
  }
  return sink.finish();
}

static_assert(RoundSink<FlatSchedule>,
              "FlatSchedule is the whole-arena RoundSink");

}  // namespace shc
