// Adjacency oracle abstraction for the simulator.
//
// Broadcast schedules are validated against a NetworkView rather than a
// concrete data structure so the same validator serves (a) materialized
// CSR graphs (trees, baselines, small cubes) and (b) the implicit O(1)
// sparse-hypercube edge oracle, which scales to n = 63 where
// materialization is impossible.
#pragma once

#include <cstdint>

#include "shc/bits/vertex.hpp"
#include "shc/graph/graph.hpp"

namespace shc {

/// Read-only adjacency oracle over vertices 0 .. num_vertices()-1.
class NetworkView {
 public:
  virtual ~NetworkView() = default;

  [[nodiscard]] virtual std::uint64_t num_vertices() const = 0;

  /// True iff {u, v} is an edge.  Must be symmetric and irreflexive.
  [[nodiscard]] virtual bool has_edge(Vertex u, Vertex v) const = 0;
};

/// NetworkView over a materialized Graph.
class GraphView final : public NetworkView {
 public:
  /// Keeps a reference; the graph must outlive the view.
  explicit GraphView(const Graph& g) : g_(g) {}

  [[nodiscard]] std::uint64_t num_vertices() const override { return g_.num_vertices(); }

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const override {
    return g_.has_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }

 private:
  const Graph& g_;
};

/// NetworkView of the full binary n-cube Q_n (implicit, n <= 63).
class HypercubeView final : public NetworkView {
 public:
  explicit HypercubeView(int n) : n_(n) {}

  [[nodiscard]] int dim() const noexcept { return n_; }

  [[nodiscard]] std::uint64_t num_vertices() const override { return cube_order(n_); }

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const override {
    return cube_adjacent(u, v);
  }

 private:
  int n_;
};

}  // namespace shc
