// Adjacency oracle abstraction for the simulator.
//
// The validator/congestion kernels are templated over the oracle type
// (see the AdjacencyOracle concept in validator.hpp), so concrete views
// here — and non-virtual oracles like SpecView — validate with direct
// inlinable has_edge() calls.  The virtual NetworkView base remains as
// the type-erased adapter for ad-hoc test oracles and heterogeneous
// collections; it is no longer on the hot path.
#pragma once

#include <cstdint>

#include "shc/bits/vertex.hpp"
#include "shc/graph/graph.hpp"

namespace shc {

/// Read-only adjacency oracle over vertices 0 .. num_vertices()-1.
class NetworkView {
 public:
  virtual ~NetworkView() = default;

  [[nodiscard]] virtual std::uint64_t num_vertices() const = 0;

  /// True iff {u, v} is an edge.  Must be symmetric and irreflexive.
  [[nodiscard]] virtual bool has_edge(Vertex u, Vertex v) const = 0;
};

/// NetworkView over a materialized Graph.
class GraphView final : public NetworkView {
 public:
  /// Keeps a reference; the graph must outlive the view.
  explicit GraphView(const Graph& g) : g_(g) {}

  [[nodiscard]] std::uint64_t num_vertices() const override { return g_.num_vertices(); }

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const override {
    return g_.has_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }

 private:
  const Graph& g_;
};

/// Non-virtual implicit oracle of the full binary n-cube Q_n — the
/// devirtualized counterpart of HypercubeView, and the full cube's
/// answer to SpecView: every dimension's edge predicate is
/// constant-true with an empty support mask, so it satisfies both the
/// AdjacencyOracle and the symbolic engines' SymbolicOracle concepts.
class CubeOracle {
 public:
  explicit CubeOracle(int n) : n_(n) {}

  [[nodiscard]] std::uint64_t num_vertices() const noexcept { return cube_order(n_); }
  [[nodiscard]] int cube_dim() const noexcept { return n_; }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept {
    return cube_adjacent(u, v);
  }
  [[nodiscard]] bool has_edge_dim(Vertex, Dim) const noexcept { return true; }
  [[nodiscard]] Vertex dim_support_mask(Dim) const noexcept { return 0; }

 private:
  int n_;
};

/// NetworkView of the full binary n-cube Q_n (implicit, n <= 63).
class HypercubeView final : public NetworkView {
 public:
  explicit HypercubeView(int n) : n_(n) {}

  [[nodiscard]] int dim() const noexcept { return n_; }

  [[nodiscard]] std::uint64_t num_vertices() const override { return cube_order(n_); }

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const override {
    return cube_adjacent(u, v);
  }

 private:
  int n_;
};

}  // namespace shc
