// Persistent worker pool for the per-round parallel kernels.
//
// The parallel validator and congestion analyzer used to spawn fresh
// std::threads for every round — for a 2^n-call broadcast that is n
// spawn/join barriers of pure overhead on top of the actual sharded
// work.  WorkerPool keeps `threads - 1` workers parked on a condition
// variable across rounds; run() publishes a task generation, the caller
// participates as a worker itself, and everyone pulls job indices from a
// shared atomic counter.  Job index w executes exactly once per run(),
// so callers that shard deterministically by index (chunked call ranges,
// edge-hash shards) produce bit-for-bit the same result as the
// spawn-per-round code they replace — the existing serial/parallel
// parity suites enforce this.
//
// Exceptions: a task that throws does not take the process down with
// std::terminate.  The first exception (any thread) is captured, the
// rest of the generation drains without executing further jobs, and
// run() rethrows it to the caller once every job index is accounted
// for — the pool stays fully reusable for the next generation.  Which
// job's exception wins is first-capture order (not deterministic across
// runs); the production kernels never throw, so this path exists for
// robustness, not for verdicts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "shc/bits/audit.hpp"
#include "shc/obs/recorder.hpp"

namespace shc {

class WorkerPool {
 public:
  /// A pool of `threads` total workers (the caller counts as one; only
  /// threads - 1 are spawned).  threads <= 1 means fully inline runs.
  explicit WorkerPool(int threads) {
    const int helpers = threads > 1 ? threads - 1 : 0;
    total_ = helpers + 1;
    threads_.reserve(static_cast<std::size_t>(helpers));
    for (int t = 0; t < helpers; ++t) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& th : threads_) th.join();
  }

  /// Total workers including the caller.
  [[nodiscard]] int workers() const noexcept { return total_; }

  /// Executes fn(j) for every j in [0, jobs) exactly once, across the
  /// pool; the caller participates and the call returns when all jobs
  /// finished.  If any job throws, the first captured exception is
  /// rethrown here after the generation drains (remaining unclaimed
  /// jobs are skipped); the pool remains reusable.  Not reentrant.
  void run(int jobs, const std::function<void(int)>& fn) {
    if (jobs <= 0) return;
    if (threads_.empty() || jobs == 1) {
      for (int j = 0; j < jobs; ++j) fn(j);
      return;
    }
    // Per-generation flight-recorder probe: one "pool_gen" scope (value
    // = job count) plus the generation's summed per-job busy time, both
    // recorded from the calling thread (run() is not reentrant, so that
    // is the engine thread — deterministic event order).  Job latencies
    // are fully accumulated before run() observes done_ == jobs: each
    // busy_ns_ add happens before that job's done_ release-increment.
    obs::TraceRecorder* const rec = obs::TraceRecorder::active();
    std::uint64_t rec_seq = 0;
    std::uint64_t rec_t0 = 0;
    std::uint64_t rec_busy0 = 0;
    if (rec != nullptr) {
      rec_seq = rec->next_seq();
      rec_t0 = obs::trace_now_ns();
      rec_busy0 = busy_ns_.load(std::memory_order_relaxed);
    }
    {
      std::unique_lock<std::mutex> lock(m_);
      // Stragglers of the previous generation must have left pull_jobs
      // before the shared counters are recycled (they drain quickly:
      // the old counter is exhausted, so each performs one fetch_add
      // and exits).
      cv_idle_.wait(lock, [&] { return active_ == 0; });
      task_ = &fn;
      jobs_ = jobs;
      next_.store(0, std::memory_order_relaxed);
      done_.store(0, std::memory_order_relaxed);
      failed_.store(false, std::memory_order_relaxed);
      error_ = nullptr;
      SHC_AUDIT_CHECK(generation_ + 1 > generation_,
                      "WorkerPool generation counter must not wrap");
      ++generation_;
    }
    cv_work_.notify_all();
    pull_jobs(fn, jobs);
    std::unique_lock<std::mutex> lock(m_);
    cv_done_.wait(lock, [&] { return done_.load(std::memory_order_acquire) >= jobs_; });
    SHC_AUDIT_CHECK(done_.load(std::memory_order_relaxed) == jobs_,
                    "WorkerPool generation must account every job exactly once");
    task_ = nullptr;
    if (rec != nullptr) {
      rec->scope_event("pool_gen", obs::kMainTrack, rec_seq, rec_t0,
                       obs::trace_now_ns() - rec_t0,
                       static_cast<std::uint64_t>(jobs));
      rec->counter("pool_busy_ns",
                   busy_ns_.load(std::memory_order_relaxed) - rec_busy0);
    }
    if (error_) {
      std::exception_ptr err = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

 private:
  void pull_jobs(const std::function<void(int)>& fn, int jobs) {
    for (;;) {
      const int j = next_.fetch_add(1, std::memory_order_relaxed);
      if (j >= jobs) return;
      if (!failed_.load(std::memory_order_relaxed)) {
        const bool timed = obs::TraceRecorder::active() != nullptr;
        const std::uint64_t jt0 = timed ? obs::trace_now_ns() : 0;
        try {
          fn(j);
        } catch (...) {
          failed_.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(m_);
          if (!error_) error_ = std::current_exception();
        }
        if (timed) {
          busy_ns_.fetch_add(obs::trace_now_ns() - jt0,
                             std::memory_order_relaxed);
        }
      }
      if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 >= jobs) {
        std::lock_guard<std::mutex> lock(m_);
        cv_done_.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* task = nullptr;
      int jobs = 0;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        SHC_AUDIT_CHECK(generation_ > seen,
                        "WorkerPool generations must be observed monotonically");
        seen = generation_;
        task = task_;
        jobs = jobs_;
        ++active_;  // counted before the lock drops: run() can't recycle
      }
      if (task) pull_jobs(*task, jobs);
      {
        std::lock_guard<std::mutex> lock(m_);
        SHC_AUDIT_CHECK(active_ > 0,
                        "WorkerPool active-worker count must stay balanced");
        if (--active_ == 0) cv_idle_.notify_one();
      }
    }
  }

  std::vector<std::thread> threads_;
  int total_ = 1;
  std::mutex m_;
  std::condition_variable cv_work_, cv_done_, cv_idle_;
  const std::function<void(int)>* task_ = nullptr;
  int jobs_ = 0;
  int active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;  ///< first task exception of the generation
  std::atomic<int> next_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> failed_{false};
  std::atomic<std::uint64_t> busy_ns_{0};  ///< traced job time (recorder on)
};

}  // namespace shc
