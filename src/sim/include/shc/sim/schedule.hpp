// Broadcast schedules under the k-line communication model
// (Definition 1 of the paper).
//
// A schedule is a sequence of rounds; each round is a set of calls; each
// call is an explicit walk (vertex path) from an informed caller to the
// receiver.  Keeping the route explicit — rather than just (caller,
// receiver) — lets the validator check the model's real constraint:
// calls in one round must be pairwise edge-disjoint and
// receiver-disjoint, and each occupies at most k edges.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "shc/bits/vertex.hpp"

namespace shc {

/// One call: the caller path.front() transmits to the receiver
/// path.back() along consecutive edges of the path.
///
/// Legacy pointer-per-call representation, kept for hand-built test
/// schedules and as the FlatSchedule conversion-shim endpoint; producers
/// and hot-path consumers use FlatSchedule (flat_schedule.hpp).
struct Call {
  std::vector<Vertex> path;

  [[nodiscard]] Vertex caller() const noexcept {
    assert(!path.empty() && "caller() on an empty call path");
    return path.front();
  }
  [[nodiscard]] Vertex receiver() const noexcept {
    assert(!path.empty() && "receiver() on an empty call path");
    return path.back();
  }

  /// Number of edges occupied (the paper's call length).
  [[nodiscard]] int length() const noexcept {
    return static_cast<int>(path.size()) - 1;
  }
};

/// All calls placed during one time unit.
struct Round {
  std::vector<Call> calls;
};

/// A complete broadcast schedule from `source`.
struct BroadcastSchedule {
  Vertex source = 0;
  std::vector<Round> rounds;

  [[nodiscard]] int num_rounds() const noexcept {
    return static_cast<int>(rounds.size());
  }

  /// Total calls across all rounds.
  [[nodiscard]] std::size_t num_calls() const noexcept;

  /// Longest call in the schedule; 0 for an empty schedule.  A schedule
  /// is k-line feasible only if this is <= k.
  [[nodiscard]] int max_call_length() const noexcept;
};

/// Pretty-prints a schedule round by round with `bits`-wide binary
/// vertex labels (decimal when bits == 0), e.g. for the Figure-4 trace.
[[nodiscard]] std::string format_schedule(const BroadcastSchedule& s, int bits = 0);

}  // namespace shc
