// Symbolic broadcast validation — certifies a subcube-batched schedule
// without ever expanding it to concrete calls.
//
// The validator is a SymbolicRoundSink.  It re-derives every clause of
// the paper's Definitions 1 and 2 algebraically on the group structure:
//
//   * per group: pattern well-formedness (starts at the caller, one
//     dimension per hop, length <= k, no edge reused within a call),
//     count == subcube size (multiplicity accounting), and edge
//     existence checked on the representative plus the *support
//     discipline* — the group's free dimensions must avoid every hop
//     predicate's support mask, so the representative's verdict is the
//     whole group's verdict;
//   * per round: the caller groups must exactly tile the validator's own
//     informed-set frontier (each informed vertex places exactly one
//     call — the closure property of minimum-time doubling), and
//     concurrent groups must not collide.  Disjointness is proved by the
//     dyadic occupancy ledger (occupancy_ledger.hpp): every hop's edge
//     subcube — and vertex subcube under the Section-5 vertex-disjoint
//     model — is consumed into a per-dimension ledger where a
//     double-claim is an exact collision witness, O(total pieces * n)
//     with no candidate pair ever formed.  The original pair sweep
//     (volume overlap candidates + exact route-pattern analysis, cost
//     quadratic in concurrent groups) stays available behind
//     SymbolicCheckOptions::collision_mode for parity testing;
//   * across rounds: receivers are inserted into the frontier as a
//     *multiset* (SubcubeFrontier multiplicities), and the endgame
//     requires the frontier's canonical form to be the full cube with
//     multiplicity one.  Coalescing preserves the multiset, so that
//     single check proves receiver uniqueness, receiver freshness, and
//     completion for the entire run at once — no per-vertex state ever
//     exists;
//   * sample mode: per round a seeded random subset of groups is
//     expanded into concrete calls and replayed through the serial
//     reference kernel (validate_round_serial) against the real
//     adjacency oracle — a bit-level spot check that the algebra and
//     the graph agree.
//
// Model scope: the symbolic engine certifies the paper's exact model
// (edge_capacity == 1, forbid_redundant_receivers, require_completion)
// and additionally requires every informed vertex to call each round —
// the structure minimum-time schedules must have anyway.  Schedules
// outside that envelope fail with an explicit "symbolic validator
// requires ..." error rather than a wrong verdict; on *clean* runs the
// ValidationReport is bit-for-bit the streaming/serial validators'
// (enforced by parity tests for n <= 24).  Failure error strings are
// the symbolic engine's own (a group has no single-call location).
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "shc/bits/bitstring.hpp"
#include "shc/bits/checked.hpp"
#include "shc/obs/recorder.hpp"
#include "shc/sim/check_options.hpp"
#include "shc/sim/occupancy_ledger.hpp"
#include "shc/sim/subcube.hpp"
#include "shc/sim/symbolic_schedule.hpp"
#include "shc/sim/validator.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {

/// Oracle contract of the symbolic engine: dimension-indexed adjacency
/// (has_edge_dim) with a declared *support mask* per dimension — the
/// pinned bits the edge predicate may read — plus the plain has_edge
/// used by the sampled concrete replay.  SpecView satisfies this.
template <class Net>
concept SymbolicOracle = requires(const Net& net, Vertex u, Vertex v, Dim i) {
  { net.num_vertices() } -> std::convertible_to<std::uint64_t>;
  { net.cube_dim() } -> std::convertible_to<int>;
  { net.has_edge(u, v) } -> std::convertible_to<bool>;
  { net.has_edge_dim(u, i) } -> std::convertible_to<bool>;
  { net.dim_support_mask(i) } -> std::convertible_to<Vertex>;
};

namespace detail {

/// Shared structural clauses for one symbolic call group — used by both
/// the broadcast and gossip symbolic validators, so a hardening fix
/// cannot silently miss one engine.  Checks the group shape
/// (prefix/mask disjointness, range, count == subcube size), pattern
/// well-formedness (starts at the caller, single-dimension hops,
/// length <= k, no edge reused within the call), the support
/// discipline (the group's free dims must avoid every hop predicate's
/// support mask, so the representative's verdict is the whole group's),
/// representative edge existence, and — under `vertex_disjoint` — the
/// intra-call vertex revisit ban.  Returns the error message (without
/// the round prefix) or empty; on success sets `span_mask` (union of
/// the pattern's offsets) and `length`.
template <class Net>
[[nodiscard]] std::string check_symbolic_call_group(
    const Net& net, int n, int k, bool vertex_disjoint, const CallGroup& g,
    std::span<const Vertex> pattern, Vertex& span_mask, int& length) {
  const Vertex cube = mask_low(n);
  if (g.count == 0) return "empty call group";
  if ((g.prefix & g.free_mask) != 0) {
    return "group prefix sets bits inside its free mask";
  }
  if ((g.prefix | g.free_mask) & ~cube) {
    return "group subcube out of range";
  }
  std::uint64_t expect = 0;
  if (!checked_shift_u64(static_cast<unsigned>(weight(g.free_mask)), expect) ||
      g.count != expect) {
    return "group count " + std::to_string(g.count) +
           " does not equal its subcube size (multiplicity accounting)";
  }
  if (pattern.size() < 2) {
    return "empty or zero-length call pattern";
  }
  if (pattern[0] != 0) {
    return "call pattern does not start at the caller";
  }
  length = static_cast<int>(pattern.size()) - 1;
  if (length > k) {
    return "call pattern has length " + std::to_string(length) +
           " > k=" + std::to_string(k);
  }

  span_mask = 0;
  for (std::size_t j = 0; j + 1 < pattern.size(); ++j) {
    const Vertex diff = pattern[j] ^ pattern[j + 1];
    if (weight(diff) != 1 || (diff & ~cube)) {
      return "pattern hop is not a single in-range dimension flip";
    }
    span_mask |= pattern[j + 1];
    const Dim d = differing_dim(pattern[j], pattern[j + 1]);
    // Support discipline: the hop's edge predicate must be uniform
    // over the group, i.e. blind to every free dimension.
    const Vertex support = net.dim_support_mask(d);
    if (g.free_mask & (support | diff)) {
      return "group free dims intersect a hop's support — "
             "the producer must split this subcube further";
    }
    const Vertex at = g.prefix ^ pattern[j];
    if (!net.has_edge_dim(at, d)) {
      return "no edge for dimension " + std::to_string(d) +
             " at representative " + std::to_string(at);
    }
    // A call may not reuse an edge within its own path (capacity 1).
    for (std::size_t l = 0; l < j; ++l) {
      const Vertex ldiff = pattern[l] ^ pattern[l + 1];
      if (weight(ldiff) == 1 && ldiff == diff &&
          (pattern[l] & ~diff) == (pattern[j] & ~diff)) {
        return "call pattern reuses an edge within its own path";
      }
    }
  }
  if (vertex_disjoint) {
    // The serial kernel's touched-set rejects a call revisiting one of
    // its own vertices (legal in the edge-disjoint model, where only
    // edge reuse is banned); mirror that here or the parity claim
    // breaks on cycle-walking patterns.
    for (std::size_t j = 0; j < pattern.size(); ++j) {
      for (std::size_t l = 0; l < j; ++l) {
        if (pattern[l] == pattern[j]) {
          return "call pattern revisits a vertex (vertex-disjoint model)";
        }
      }
    }
  }
  return {};
}

/// Exact route-pattern collision analysis for one candidate pair of
/// concurrent call groups: per-hop edge-subcube intersection on shared
/// dimensions, plus vertex-subcube intersection under the
/// vertex-disjoint model.  Returns the error message or empty.
[[nodiscard]] inline std::string symbolic_pair_collision_msg(
    const CallGroup& ga, std::span<const Vertex> pa, const CallGroup& gb,
    std::span<const Vertex> pb, bool vertex_disjoint) {
  for (std::size_t i = 0; i + 1 < pa.size(); ++i) {
    const Vertex da = pa[i] ^ pa[i + 1];
    const Subcube ea{(ga.prefix ^ pa[i]) & ~da, ga.free_mask};
    for (std::size_t j = 0; j + 1 < pb.size(); ++j) {
      const Vertex db = pb[j] ^ pb[j + 1];
      if (da != db) continue;
      const Subcube eb{(gb.prefix ^ pb[j]) & ~db, gb.free_mask};
      if (subcubes_overlap(ea, eb)) {
        return "edge collision between concurrent call groups";
      }
    }
  }
  if (vertex_disjoint) {
    for (const Vertex xa : pa) {
      const Subcube va{ga.prefix ^ xa, ga.free_mask};
      for (const Vertex xb : pb) {
        const Subcube vb{gb.prefix ^ xb, gb.free_mask};
        if (subcubes_overlap(va, vb)) {
          return "vertex collision between concurrent call groups "
                 "(vertex-disjoint model)";
        }
      }
    }
  }
  return {};
}

/// Claims every hop's edge subcube of the round's groups into `occ`,
/// keyed by flip dimension (1-based, so family 0 stays free).  This is
/// the ONE definition of the edge-subcube encoding both the broadcast
/// and gossip symbolic validators consume — a fix here cannot silently
/// miss one engine.  Patterns must already have passed
/// check_symbolic_call_group (hops are single in-range dimension flips
/// and free dims avoid them, so (prefix & mask) == 0 holds per claim).
inline void claim_round_edge_subcubes(const SymbolicRound& round,
                                      OccupancyLedger& occ) {
  for (std::size_t gi = 0; gi < round.groups.size(); ++gi) {
    const CallGroup& g = round.groups[gi];
    const std::span<const Vertex> patt = round.pattern_of_group(gi);
    for (std::size_t j = 0; j + 1 < patt.size(); ++j) {
      const Vertex diff = patt[j] ^ patt[j + 1];
      occ.claim(differing_dim(patt[j], patt[j + 1]),
                (g.prefix ^ patt[j]) & ~diff, g.free_mask,
                static_cast<std::uint32_t>(gi));
    }
  }
}

/// Runs fn(i) -> error-or-empty for every i in [0, count), inline or
/// sharded across `pool`, and returns the failure with the *smallest*
/// index — the verdict the serial loop produces, independent of thread
/// count.  fn must be safe to call concurrently (the symbolic
/// validators' per-candidate analyses are read-only).
template <class Fn>
[[nodiscard]] std::optional<std::pair<std::size_t, std::string>> first_failure(
    WorkerPool* pool, std::size_t count, Fn&& fn) {
  if (pool == nullptr || pool->workers() <= 1 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) {
      std::string msg = fn(i);
      if (!msg.empty()) return std::make_pair(i, std::move(msg));
    }
    return std::nullopt;
  }
  const int jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(pool->workers()), count));
  std::vector<std::pair<std::size_t, std::string>> local(
      static_cast<std::size_t>(jobs), {count, std::string{}});
  pool->run(jobs, [&](int j) {
    const std::size_t lo = count * static_cast<std::size_t>(j) /
                           static_cast<std::size_t>(jobs);
    const std::size_t hi = count * (static_cast<std::size_t>(j) + 1) /
                           static_cast<std::size_t>(jobs);
    for (std::size_t i = lo; i < hi; ++i) {
      std::string msg = fn(i);
      if (!msg.empty()) {
        local[static_cast<std::size_t>(j)] = {i, std::move(msg)};
        break;
      }
    }
  });
  std::optional<std::pair<std::size_t, std::string>> best;
  for (auto& entry : local) {
    if (entry.first < count && (!best || entry.first < best->first)) {
      best = std::move(entry);
    }
  }
  return best;
}

}  // namespace detail

/// Knobs of the symbolic checks (all have safe defaults; caps make the
/// engine fail explicitly instead of thrashing on adversarial input).
/// The sampling, collision, and threading knobs shared with the gossip
/// engine live in the CommonCheckOptions base (check_options.hpp) —
/// the inherited spellings (`sopt.threads`, `sopt.collision_mode`,
/// ...) are the documented aliases and keep compiling unchanged; only
/// the broadcast-specific budgets are declared here.
struct SymbolicCheckOptions : CommonCheckOptions {
  /// Hard cap on informed-set subcubes (memory guard).
  std::uint64_t max_frontier_subcubes = std::uint64_t{1} << 26;

  /// Node budget of the endgame canonical reduction.
  std::uint64_t reduce_budget = std::uint64_t{1} << 26;
  /// Per-entry budget of the caller-tiling dyadic consumption; 0 (the
  /// default) derives it from the round's group count
  /// (4 * groups + 65536).
  std::uint64_t tiling_budget = 0;
};

/// Group/expansion statistics of one symbolic run.
struct SymbolicRunStats {
  std::uint64_t groups = 0;           ///< call groups consumed
  std::uint64_t peak_round_groups = 0;
  std::uint64_t peak_frontier_subcubes = 0;
  std::uint64_t final_frontier_subcubes = 0;
  std::uint64_t collision_candidates = 0;  ///< pairs that needed exact analysis
  std::uint64_t occupancy_claims = 0;      ///< subcubes consumed by the ledger
  std::uint64_t sampled_calls = 0;         ///< concrete calls replayed serially
  std::uint64_t rounds_checked = 0;  ///< rounds that passed every per-round clause
  /// Translation-keyed union cache traffic — gossip-engine counters,
  /// always 0 for broadcast; kept so sweep/bench rows share one schema.
  std::uint64_t union_cache_hits = 0;
  std::uint64_t union_cache_misses = 0;
  /// Subtrees farmed by canonical_reduce_tree (endgame reduction in
  /// pair-sweep mode).  Thread-count dependent by design: the serial
  /// path farms nothing — never gated for thread invariance.
  std::uint64_t reduce_tree_tasks = 0;
};

template <SymbolicOracle Net>
class SymbolicBroadcastValidator {
 public:
  SymbolicBroadcastValidator(const Net& net, Vertex source,
                             const ValidationOptions& opt,
                             const SymbolicCheckOptions& sopt = {})
      : net_(&net),
        opt_(opt),
        sopt_(sopt),
        n_(net.cube_dim()),
        order_(net.num_vertices()),
        frontier_(std::clamp(net.cube_dim(), 1, kMaxCubeDim)),
        ledger_(std::clamp(net.cube_dim(), 1, kMaxCubeDim)),
        rng_(sopt.sample_seed),
        occupancy_(std::clamp(net.cube_dim(), 1, kMaxCubeDim)) {
    if (sopt.pool) {
      pool_ = sopt.pool;
    } else if (sopt.threads > 1) {
      owned_pool_ = std::make_unique<WorkerPool>(sopt.threads);
      pool_ = owned_pool_.get();
    }
    if (n_ < 1 || n_ > kMaxCubeDim || order_ != cube_order(n_)) {
      fail("symbolic validator requires a full 2^n-vertex cube oracle");
      return;
    }
    if (opt.edge_capacity != 1 || !opt.forbid_redundant_receivers ||
        !opt.require_completion) {
      fail("symbolic validator requires the paper's exact model "
           "(edge_capacity 1, no redundant receivers, completion)");
      return;
    }
    if (source >= order_) {
      fail("source out of range");
      return;
    }
    frontier_.insert(source, 0);
  }

  // ---- SymbolicRoundSink interface ------------------------------------

  void begin_round() {
    if (failed_) return;
    ++rep_.rounds;
    round_.groups.clear();
    round_.group_pattern.clear();
    round_.pattern_pool.clear();
    round_.pattern_off.assign(1, 0);
    volumes_.clear();
    round_multihop_ = false;
  }

  void end_call_group(const CallGroup& g, std::span<const Vertex> pattern) {
    if (failed_) return;
    // `where` is built lazily (round_where()): this method runs once per
    // group — 14M+ times per round on the designed n = 63 spec — and the
    // prefix is only ever read on the failure paths.

    Vertex span_mask = 0;
    int length = 0;
    if (std::string msg = detail::check_symbolic_call_group(
            *net_, n_, opt_.k, opt_.require_vertex_disjoint, g, pattern,
            span_mask, length);
        !msg.empty()) {
      return fail(round_where() + msg);
    }
    // Note: free_mask is already provably disjoint from span_mask here —
    // every pattern bit lives in some hop's diff, and each hop failed
    // fast on free_mask & (support | diff) above.
    rep_.max_call_length = std::max(rep_.max_call_length, length);
    if (!checked_acc_u64(rep_.total_calls, g.count)) {
      return fail(round_where() + "total call count overflowed 64 bits");
    }
    ++stats_.groups;
    if (length >= 2) round_multihop_ = true;

    // The round-local pattern pool uses 32-bit offsets (SymbolicRound's
    // layout); a round whose summed pattern lengths reach 2^32 must
    // fail explicitly (the engine's contract on adversarial input), not
    // wrap the offsets.
    if (round_.pattern_pool.size() + pattern.size() >
        std::numeric_limits<std::uint32_t>::max()) {
      return fail(round_where() + "round pattern pool exceeds 32-bit offsets");
    }
    ledger_.add_raw(g.prefix, g.free_mask, g.count);
    round_.groups.push_back(g);
    round_.group_pattern.push_back(
        static_cast<std::uint32_t>(round_.num_patterns()));
    round_.pattern_pool.insert(round_.pattern_pool.end(), pattern.begin(),
                               pattern.end());
    round_.pattern_off.push_back(
        static_cast<std::uint32_t>(round_.pattern_pool.size()));
    if (sopt_.collision_mode == CollisionMode::kPairSweep) {
      volumes_.push_back(
          Subcube{g.prefix & ~span_mask, g.free_mask | span_mask});
    }
  }

  void end_round() {
    if (failed_) return;
    const std::string where = round_where();
    if (round_.groups.empty()) return fail(where + "empty round");

    stats_.peak_round_groups =
        std::max(stats_.peak_round_groups, static_cast<std::uint64_t>(round_.groups.size()));

    {
      SHC_TRACE_SCOPE("caller_tiling");
      if (!check_caller_tiling(where)) return;
    }
    if (round_multihop_) {
      SHC_TRACE_SCOPE("collision_check");
      if (!check_collisions(where)) return;
    }
    if (sopt_.sample_groups_per_round > 0) {
      SHC_TRACE_SCOPE("sampled_replay");
      if (!sampled_replay(where)) return;
    }

    {
      SHC_TRACE_SCOPE("frontier_insert");
      // Receivers join the informed multiset; any overlap anywhere in the
      // run surfaces in the endgame canonical form.
      for (std::size_t gi = 0; gi < round_.groups.size(); ++gi) {
        const CallGroup& g = round_.groups[gi];
        const Vertex last = pattern_of(gi).back();
        frontier_.insert(g.prefix ^ last, g.free_mask);
      }
    }
    if (!frontier_.count_ok()) {
      return fail(where + "informed-set count overflowed 64 bits");
    }
    if (frontier_.num_subcubes() > sopt_.max_frontier_subcubes) {
      return fail(where + "informed-set subcube cap exceeded (" +
                  std::to_string(frontier_.num_subcubes()) + " > " +
                  std::to_string(sopt_.max_frontier_subcubes) + ")");
    }
    stats_.peak_frontier_subcubes =
        std::max(stats_.peak_frontier_subcubes, frontier_.num_subcubes());
    saturating_acc_u64(stats_.rounds_checked, 1);
    SHC_TRACE_COUNTER("round_groups", round_.groups.size());
    SHC_TRACE_COUNTER("groups_total", stats_.groups);
    SHC_TRACE_COUNTER("frontier_subcubes", frontier_.num_subcubes());
    SHC_TRACE_COUNTER("occupancy_claims", stats_.occupancy_claims);
    SHC_TRACE_ROUND(rep_.rounds);
  }

  [[nodiscard]] bool aborted() const noexcept { return failed_; }

  // ---- results ---------------------------------------------------------

  /// Final verdict: the exact-cover endgame (occupancy consumption in
  /// ledger mode, canonical reduction in pair-sweep mode) plus
  /// completion and minimum-time.  Idempotent.
  [[nodiscard]] ValidationReport finish() {
    if (finished_) return rep_;
    finished_ = true;
    stats_.final_frontier_subcubes = frontier_.num_subcubes();
    if (failed_) return rep_;
    SHC_TRACE_SCOPE("endgame");

    rep_.informed = frontier_.count_ok() ? frontier_.total_count() : 0;
    if (rep_.informed != order_) {
      fail("incomplete: informed " + std::to_string(rep_.informed) + " of " +
           std::to_string(order_));
      return rep_;
    }
    // The endgame: the informed multiset must be the cube covered exactly
    // once.  In ledger mode that is the occupancy argument once more —
    // every entry has multiplicity one and the entries are pairwise
    // disjoint, which together with the exact 2^n total forces an exact
    // cover, at O(entries * n) instead of the canonical reduction's
    // worst case (the designed n = 63 spec ends on ~11 M fragmented
    // subcubes, beyond any sensible reduction budget).  Pair-sweep mode
    // keeps the canonical reduction for cross-checking; identical
    // verdicts and messages (enforced by parity tests).
    if (sopt_.collision_mode == CollisionMode::kLedger) {
      occupancy_.clear();
      bool mult_clean = true;
      std::uint32_t idx = 0;
      frontier_.for_each([&](Vertex p, Vertex m, std::uint64_t mult) {
        if (mult != 1) mult_clean = false;
        occupancy_.claim(1, p, m, idx++);
      });
      saturating_acc_u64(stats_.occupancy_claims, occupancy_.num_claims());
      const OccupancyOutcome out =
          mult_clean ? occupancy_.check(pool_,
                                        sopt_.ledger_budget_per_claim,
                                        sopt_.ledger_bucket_budget_base)
                     : OccupancyOutcome{};
      if (mult_clean && out.status == OccupancyStatus::kBudgetExceeded) {
        fail("endgame occupancy check exceeded its budget (ledger bucket "
             "budget " +
             std::to_string(out.budget) +
             "; raise SymbolicCheckOptions::ledger_budget_per_claim)");
        return rep_;
      }
      if (!mult_clean || out.status == OccupancyStatus::kDoubleClaim) {
        fail("informed multiset is not the cube covered exactly once "
             "(receiver collision)");
        return rep_;
      }
    } else {
      // canonical_reduce_tree == canonical_reduce bit-for-bit; with no
      // pool (threads = 1) it IS the serial reduction.
      const auto canon =
          canonical_reduce_tree(frontier_.to_entries(), n_,
                                sopt_.reduce_budget, pool_,
                                &stats_.reduce_tree_tasks);
      if (!canon) {
        fail("endgame canonical reduction exceeded its budget (node budget " +
             std::to_string(sopt_.reduce_budget) +
             "; raise SymbolicCheckOptions::reduce_budget)");
        return rep_;
      }
      if (canon->size() != 1 || (*canon)[0].mask != mask_low(n_) ||
          (*canon)[0].mult != 1) {
        // The multiset totals 2^n but is not the cube covered once: some
        // receiver collided with an informed vertex or another receiver.
        fail("informed multiset is not the cube covered exactly once "
             "(receiver collision)");
        return rep_;
      }
    }
    rep_.ok = true;
    rep_.minimum_time = rep_.rounds == ceil_log2(order_) && rep_.informed == order_;
    return rep_;
  }

  [[nodiscard]] const SymbolicRunStats& stats() const noexcept { return stats_; }

 private:
  void fail(const std::string& msg) {
    if (failed_) return;
    failed_ = true;
    rep_.ok = false;
    rep_.error = msg;
  }

  /// Error-message prefix of the round in progress.  Only called on
  /// failure paths and once per end_round — never in the per-group hot
  /// loop (string construction there was a measurable slice of a
  /// designed-spec run).
  [[nodiscard]] std::string round_where() const {
    return "round " + std::to_string(rep_.rounds) + ": ";
  }

  [[nodiscard]] std::span<const Vertex> pattern_of(std::size_t gi) const noexcept {
    return round_.pattern_of_group(gi);
  }

  /// Every informed vertex must place exactly one call: consume the
  /// round's group ledger by recursively matching each frontier entry
  /// against its dyadic split pieces; both sides must come out empty.
  /// Frontier entries are disjoint subcubes, so their dyadic pieces hit
  /// disjoint ledger keys — sharding entries across the pool is
  /// race-free (ledger_.consume never mutates the table structure) and
  /// the per-entry budget keeps the verdict thread-count independent.
  bool check_caller_tiling(const std::string& where) {
    std::atomic<bool> mismatch{false};
    std::atomic<bool> budget_hit{false};
    const std::uint64_t per_entry_budget =
        sopt_.tiling_budget != 0
            ? sopt_.tiling_budget
            : static_cast<std::uint64_t>(round_.groups.size()) * 4 + 65536;
    auto check_entry = [&](Vertex ep, Vertex em, std::uint64_t mult) {
      std::uint64_t budget = per_entry_budget;
      auto consume = [&](auto&& self, Vertex p, Vertex m) -> bool {
        if (budget == 0) {
          budget_hit.store(true, std::memory_order_relaxed);
          return false;
        }
        --budget;
        std::uint64_t calls = 0;
        if (!checked_shift_u64(static_cast<unsigned>(weight(m)), calls)) return false;
        if (ledger_.consume(p, m, calls)) return true;
        if (m == 0) return false;
        const Vertex b = m & (~m + 1);  // lowest free bit: splits low-first
        return self(self, p, m & ~b) && self(self, p | b, m & ~b);
      };
      if (mult != 1 || !consume(consume, ep, em)) {
        mismatch.store(true, std::memory_order_relaxed);
      }
    };
    if (pool_) {
      // Sharded path: snapshot the frontier and split it across the
      // pool.  Entries being disjoint subcubes, their dyadic descents
      // hit disjoint ledger keys (and consume's CAS covers even the
      // overlapping entries a malformed schedule can produce).
      const auto entries = frontier_.to_entries();
      const std::size_t count = entries.size();
      const int jobs = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(pool_->workers()), std::max<std::size_t>(count, 1)));
      pool_->run(jobs, [&](int j) {
        const std::size_t lo = count * static_cast<std::size_t>(j) /
                               static_cast<std::size_t>(jobs);
        const std::size_t hi = count * (static_cast<std::size_t>(j) + 1) /
                               static_cast<std::size_t>(jobs);
        for (std::size_t i = lo; i < hi; ++i) {
          check_entry(entries[i].prefix, entries[i].mask, entries[i].mult);
        }
      });
    } else {
      // Serial path: iterate in place (no snapshot allocation — the
      // frontier can hold millions of subcubes).  Every entry is
      // evaluated even after a failure, exactly like the sharded path,
      // so the budget/mismatch flags — and hence the error string — are
      // thread-count independent by construction.
      frontier_.for_each([&](Vertex p, Vertex m, std::uint64_t mult) {
        check_entry(p, m, mult);
      });
    }
    bool leftover = false;
    ledger_.for_each([&](Vertex, Vertex, std::uint64_t v) {
      if (v != 0) leftover = true;
    });
    ledger_.clear();
    if (budget_hit.load(std::memory_order_relaxed)) {
      fail(where + "caller tiling budget exceeded (per-entry budget " +
           std::to_string(per_entry_budget) +
           "; raise SymbolicCheckOptions::tiling_budget)");
      return false;
    }
    if (mismatch.load(std::memory_order_relaxed)) {
      fail(where + "callers do not tile the informed set (some informed "
                   "vertex places no call)");
      return false;
    }
    if (leftover) {
      fail(where + "caller group outside the informed set (uninformed caller "
                   "or a vertex calling twice)");
      return false;
    }
    return true;
  }

  /// Concurrent-group disjointness, dispatched on the configured mode.
  /// Both modes produce bit-for-bit identical reports (enforced by
  /// parity tests on clean runs and on every single-violation
  /// schedule); only the cost model differs.  Sole caveat: a round
  /// containing BOTH an edge collision and a vertex collision on
  /// *different* group pairs fails at the same round in both modes but
  /// may pick the other collision's message — the pair sweep resolves
  /// in candidate-pair order (edges before vertices per pair), the
  /// ledger in family order (all edge dimensions, then vertices).
  bool check_collisions(const std::string& where) {
    return sopt_.collision_mode == CollisionMode::kLedger
               ? check_collisions_ledger(where)
               : check_collisions_pair_sweep(where);
  }

  /// Dyadic occupancy ledger: every hop's edge subcube is claimed into
  /// the family of its flip dimension (vertex subcubes into family
  /// n + 1 under the vertex-disjoint model, checked after all edge
  /// families — the pair sweep's per-candidate order); a double-claim
  /// is an exact collision, with no candidate pair ever enumerated.
  bool check_collisions_ledger(const std::string& where) {
    occupancy_.clear();
    const int vertex_family = n_ + 1;
    detail::claim_round_edge_subcubes(round_, occupancy_);
    if (opt_.require_vertex_disjoint) {
      for (std::size_t gi = 0; gi < round_.groups.size(); ++gi) {
        const CallGroup& g = round_.groups[gi];
        for (const Vertex x : pattern_of(gi)) {
          occupancy_.claim(vertex_family, g.prefix ^ x, g.free_mask,
                           static_cast<std::uint32_t>(gi));
        }
      }
    }
    saturating_acc_u64(stats_.occupancy_claims, occupancy_.num_claims());
    const OccupancyOutcome out =
        occupancy_.check(pool_, sopt_.ledger_budget_per_claim,
                         sopt_.ledger_bucket_budget_base);
    switch (out.status) {
      case OccupancyStatus::kDisjoint:
        return true;
      case OccupancyStatus::kBudgetExceeded:
        fail(where + "collision analysis exceeded its budget (ledger bucket "
                     "budget " +
             std::to_string(out.budget) +
             "; raise SymbolicCheckOptions::ledger_budget_per_claim)");
        return false;
      case OccupancyStatus::kDoubleClaim:
        fail(where +
             (out.family == vertex_family
                  ? "vertex collision between concurrent call groups "
                    "(vertex-disjoint model)"
                  : "edge collision between concurrent call groups"));
        return false;
    }
    return false;  // unreachable
  }

  /// Candidate pairs by call-volume disjointness, then exact
  /// route-pattern collision analysis per candidate (sharded across the
  /// pool; the smallest failing candidate wins, as in the serial loop).
  bool check_collisions_pair_sweep(const std::string& where) {
    const auto pairs = find_overlapping_pairs(volumes_, sopt_.collision_budget,
                                              sopt_.max_collision_pairs);
    if (!pairs) {
      fail(where + "collision analysis exceeded its budget (node budget " +
           std::to_string(sopt_.collision_budget) +
           "; raise SymbolicCheckOptions::collision_budget or switch to "
           "CollisionMode::kLedger)");
      return false;
    }
    saturating_acc_u64(stats_.collision_candidates, pairs->size());
    const auto failure = detail::first_failure(
        pool_, pairs->size(), [&](std::size_t i) {
          const auto& [a, b] = (*pairs)[i];
          return detail::symbolic_pair_collision_msg(
              round_.groups[a], pattern_of(a), round_.groups[b], pattern_of(b),
              opt_.require_vertex_disjoint);
        });
    if (failure) {
      fail(where + failure->second);
      return false;
    }
    return true;
  }

  /// Expands a seeded random subset of groups to concrete calls and
  /// replays them through the serial reference kernel.
  bool sampled_replay(const std::string& where) {
    const std::uint64_t want =
        std::min<std::uint64_t>(sopt_.sample_groups_per_round, round_.groups.size());
    // Distinct groups: re-expanding one group twice would duplicate its
    // concrete calls and trip the kernel's receiver-uniqueness check.
    std::vector<std::size_t> chosen;
    while (chosen.size() < want) {
      const std::size_t gi = static_cast<std::size_t>(
          rng_() % static_cast<std::uint64_t>(round_.groups.size()));
      if (std::find(chosen.begin(), chosen.end(), gi) == chosen.end()) {
        chosen.push_back(gi);
      }
    }
    FlatSchedule mini;
    detail::BroadcastRunState state(order_, opt_);
    mini.begin_round();
    for (const std::size_t gi : chosen) {
      const CallGroup& g = round_.groups[gi];
      const std::span<const Vertex> patt = pattern_of(gi);
      std::vector<Vertex> picked;
      for (std::uint64_t c = 0; c < sopt_.sample_calls_per_group; ++c) {
        const Vertex assign = rng_() & g.free_mask;
        if (std::find(picked.begin(), picked.end(), assign) != picked.end()) {
          continue;  // duplicate free-assignment: same concrete call
        }
        picked.push_back(assign);
        const Vertex u = g.prefix | assign;
        state.informed.insert(u);
        for (const Vertex x : patt) mini.push_vertex(u ^ x);
        mini.end_call_unchecked();
        ++stats_.sampled_calls;
      }
    }
    ValidationOptions ropt = opt_;
    ropt.require_completion = false;
    ValidationReport scratch;
    if (!detail::validate_round_serial(*net_, mini, 0, mini.num_calls(),
                                       rep_.rounds, ropt, state, scratch)) {
      fail(where + "sampled concrete replay failed: " + scratch.error);
      return false;
    }
    return true;
  }

  const Net* net_;
  ValidationOptions opt_;
  SymbolicCheckOptions sopt_;
  int n_;
  std::uint64_t order_;
  SubcubeFrontier frontier_;  ///< informed multiset, cross-round
  SubcubeFrontier ledger_;    ///< round-local caller ledger (raw mode)
  std::mt19937_64 rng_;
  /// Check-sharding pool: sopt.pool when the caller lends one (server
  /// reuse across queries), else owned_pool_ iff sopt.threads > 1.
  WorkerPool* pool_ = nullptr;
  std::unique_ptr<WorkerPool> owned_pool_;

  // Round-local group storage: one recycled SymbolicRound (patterns
  // pooled in its 32-bit-offset layout; no deduplication needed here).
  SymbolicRound round_;
  std::vector<Subcube> volumes_;  ///< kPairSweep mode only
  OccupancyLedger occupancy_;     ///< kLedger mode
  bool round_multihop_ = false;

  ValidationReport rep_;
  SymbolicRunStats stats_;
  bool failed_ = false;
  bool finished_ = false;
};

/// Validates a materialized symbolic schedule by streaming it through a
/// SymbolicBroadcastValidator.
template <SymbolicOracle Net>
[[nodiscard]] ValidationReport validate_broadcast_symbolic(
    const Net& net, const SymbolicSchedule& schedule, const ValidationOptions& opt,
    const SymbolicCheckOptions& sopt = {}, SymbolicRunStats* stats = nullptr) {
  SymbolicBroadcastValidator<Net> sink(net, schedule.source, opt, sopt);
  if (schedule.n != net.cube_dim()) {
    ValidationReport rep;
    rep.ok = false;
    rep.error = "symbolic schedule dimension " + std::to_string(schedule.n) +
                " does not match the oracle's " + std::to_string(net.cube_dim());
    if (stats) *stats = {};
    return rep;
  }
  for (const SymbolicRound& round : schedule.rounds) {
    if (sink.aborted()) break;
    sink.begin_round();
    for (std::size_t g = 0; g < round.groups.size(); ++g) {
      sink.end_call_group(round.groups[g], round.pattern_of_group(g));
    }
    sink.end_round();
  }
  const ValidationReport rep = sink.finish();
  if (stats) *stats = sink.stats();
  return rep;
}

}  // namespace shc
