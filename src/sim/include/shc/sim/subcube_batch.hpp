// Batched SoA subcube kernels — the vectorizable bottom layer of the
// symbolic engine.
//
// Every hot loop of the symbolic pipeline is 64-bit mask algebra over
// collections of subcubes: the frontier's sibling-coalesce scan, the
// dyadic divide-on-pinned-dimension sweeps (canonical_reduce, the
// occupancy ledger's bucket walks, knowledge-class subtraction and
// refinement), and the set-union subtraction.  Stored as
// array-of-structs (std::vector<WeightedSubcube>), those loops carry a
// data-dependent branch per element and the compiler leaves them
// scalar.  This header provides the same operations as *batch kernels*
// over structure-of-arrays data — separate contiguous prefix[] /
// mask[] / mult[] arrays — written as branch-light store-and-bump or
// min-reduction loops so the compiler auto-vectorizes them (no
// intrinsics; see BM_SubcubeKernels for the measured effect).
//
// Layering: this is the bottom of the sim module — it includes only
// bits/ headers (enforced by tools/shc_lint.py) so the kernels stay
// reusable from any layer above.
//
// Scalar fallback: defining SHC_BATCH_SCALAR (e.g.
// -DCMAKE_CXX_FLAGS=-DSHC_BATCH_SCALAR) compiles the straightforward
// guarded-branch formulation of every kernel instead.  Both
// formulations are *bit-for-bit equivalent* — outputs, ordering, and
// budget accounting are identical (enforced by subcube_batch_test's
// exhaustive and randomized parity suites) — so the knob is a debug /
// baseline aid, never a semantic switch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "shc/bits/vertex.hpp"

namespace shc {

/// Structure-of-arrays view of a plain subcube family: parallel
/// prefix[] / mask[] arrays.  Invariant per entry: (prefix & mask) == 0.
struct SubcubeSoA {
  std::vector<Vertex> prefix;
  std::vector<Vertex> mask;

  [[nodiscard]] std::size_t size() const noexcept { return prefix.size(); }
  [[nodiscard]] bool empty() const noexcept { return prefix.empty(); }
  void clear() noexcept {
    prefix.clear();
    mask.clear();
  }
  void reserve(std::size_t n) {
    prefix.reserve(n);
    mask.reserve(n);
  }
  void push_back(Vertex p, Vertex m) {
    prefix.push_back(p);
    mask.push_back(m);
  }
};

/// Structure-of-arrays batch of *weighted* subcubes: parallel prefix[] /
/// mask[] / mult[] arrays — the SoA twin of
/// std::vector<WeightedSubcube>.  Invariant per entry:
/// (prefix & mask) == 0.
struct SubcubeBatch {
  std::vector<Vertex> prefix;
  std::vector<Vertex> mask;
  std::vector<std::uint64_t> mult;

  [[nodiscard]] std::size_t size() const noexcept { return prefix.size(); }
  [[nodiscard]] bool empty() const noexcept { return prefix.empty(); }
  void clear() noexcept {
    prefix.clear();
    mask.clear();
    mult.clear();
  }
  void reserve(std::size_t n) {
    prefix.reserve(n);
    mask.reserve(n);
    mult.reserve(n);
  }
  void push_back(Vertex p, Vertex m, std::uint64_t w) {
    prefix.push_back(p);
    mask.push_back(m);
    mult.push_back(w);
  }
};

namespace batch {

/// "No result" sentinel of sibling_scan — all-ones can never be a
/// subcube prefix (n <= kMaxCubeDim = 63 keeps the top bit clear).
inline constexpr Vertex kNotFound = ~Vertex{0};

/// Sibling-coalesce scan over one open-addressing slot array in SoA
/// form: among the live keys (keys[i] < live_below) whose value equals
/// `want`, find the one at Hamming distance exactly 1 from `p`,
/// preferring the *lowest* differing bit; kNotFound when none.  This is
/// SubcubeFrontier::insert's merge-partner probe — the single hottest
/// loop of a designed-spec certification — recast as a pure
/// min-reduction over the differing bit so it auto-vectorizes.
[[nodiscard]] inline Vertex sibling_scan(const Vertex* keys,
                                         const std::uint64_t* vals,
                                         std::size_t count, Vertex live_below,
                                         Vertex p, std::uint64_t want) noexcept {
#ifndef SHC_BATCH_SCALAR
  // Branch-light: every slot contributes a candidate bit (kNotFound for
  // non-matches) and the loop is a min-reduction with no data-dependent
  // control flow.
  Vertex best_bit = kNotFound;
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex d = keys[i] ^ p;
    const bool one_bit = d != 0 && (d & (d - 1)) == 0;
    const bool live = keys[i] < live_below;
    const bool match = vals[i] == want;
    const Vertex cand = (live && match && one_bit) ? d : kNotFound;
    best_bit = cand < best_bit ? cand : best_bit;
  }
  return best_bit == kNotFound ? kNotFound : (p ^ best_bit);
#else
  // Scalar reference formulation: identical result, guarded branches.
  Vertex best = kNotFound;
  Vertex best_bit = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (keys[i] < live_below && vals[i] == want) {
      const Vertex d = keys[i] ^ p;
      if (d != 0 && (d & (d - 1)) == 0 && (best == kNotFound || d < best_bit)) {
        best = keys[i];
        best_bit = d;
      }
    }
  }
  return best;
#endif
}

/// The dyadic divide step shared by every divide-on-pinned-dimension
/// sweep, over an *index* family: ids whose subcube frees `bit`
/// (masks[id] & bit) go to both halves, ids pinning it high to `hi`,
/// the rest to `lo`.  Stable — input order is preserved in both outputs,
/// which the walks' determinism (first-hit witnesses, DFS budget order)
/// depends on.  lo/hi are overwritten, not appended to.
inline void partition_ids(const std::uint32_t* ids, std::size_t count,
                          const Vertex* prefixes, const Vertex* masks,
                          Vertex bit, std::vector<std::uint32_t>& lo,
                          std::vector<std::uint32_t>& hi) {
  lo.resize(count);
  hi.resize(count);
  std::size_t nlo = 0, nhi = 0;
#ifndef SHC_BATCH_SCALAR
  // Branch-light: unconditional store, conditional bump.
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t id = ids[i];
    const bool free_dim = (masks[id] & bit) != 0;
    const bool high = (prefixes[id] & bit) != 0;
    lo[nlo] = id;
    nlo += static_cast<std::size_t>(free_dim || !high);
    hi[nhi] = id;
    nhi += static_cast<std::size_t>(free_dim || high);
  }
#else
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t id = ids[i];
    if (masks[id] & bit) {
      lo[nlo++] = id;
      hi[nhi++] = id;
    } else if (prefixes[id] & bit) {
      hi[nhi++] = id;
    } else {
      lo[nlo++] = id;
    }
  }
#endif
  lo.resize(nlo);
  hi.resize(nhi);
}

/// Value-based dyadic divide of a plain subcube family on `bit`:
/// entries freeing the bit split into both halves (mask cleared; the hi
/// copy pins the bit high), pinned entries go to their half unchanged.
/// Because (prefix & mask) == 0, both halves take the uniform forms
/// lo = (p, m & ~bit) and hi = (p | bit, m & ~bit) — no per-entry
/// branching on which case applied.  Stable; lo/hi are overwritten.
inline void partition_subcubes(const Vertex* prefixes, const Vertex* masks,
                               std::size_t count, Vertex bit, SubcubeSoA& lo,
                               SubcubeSoA& hi) {
  lo.prefix.resize(count);
  lo.mask.resize(count);
  hi.prefix.resize(count);
  hi.mask.resize(count);
  std::size_t nlo = 0, nhi = 0;
#ifndef SHC_BATCH_SCALAR
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex p = prefixes[i];
    const Vertex m = masks[i];
    const bool free_dim = (m & bit) != 0;
    const bool high = (p & bit) != 0;
    lo.prefix[nlo] = p;
    lo.mask[nlo] = m & ~bit;
    nlo += static_cast<std::size_t>(free_dim || !high);
    hi.prefix[nhi] = p | bit;
    hi.mask[nhi] = m & ~bit;
    nhi += static_cast<std::size_t>(free_dim || high);
  }
#else
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex p = prefixes[i];
    const Vertex m = masks[i];
    if (m & bit) {
      lo.prefix[nlo] = p;
      lo.mask[nlo] = m & ~bit;
      ++nlo;
      hi.prefix[nhi] = p | bit;
      hi.mask[nhi] = m & ~bit;
      ++nhi;
    } else if (p & bit) {
      hi.prefix[nhi] = p;
      hi.mask[nhi] = m;
      ++nhi;
    } else {
      lo.prefix[nlo] = p;
      lo.mask[nlo] = m;
      ++nlo;
    }
  }
#endif
  lo.prefix.resize(nlo);
  lo.mask.resize(nlo);
  hi.prefix.resize(nhi);
  hi.mask.resize(nhi);
}

/// partition_subcubes for weighted batches: the multiplicity rides
/// along unchanged (a split duplicates it into both halves).
inline void partition_weighted(const SubcubeBatch& in, Vertex bit,
                               SubcubeBatch& lo, SubcubeBatch& hi) {
  const std::size_t count = in.size();
  lo.prefix.resize(count);
  lo.mask.resize(count);
  lo.mult.resize(count);
  hi.prefix.resize(count);
  hi.mask.resize(count);
  hi.mult.resize(count);
  std::size_t nlo = 0, nhi = 0;
#ifndef SHC_BATCH_SCALAR
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex p = in.prefix[i];
    const Vertex m = in.mask[i];
    const std::uint64_t w = in.mult[i];
    const bool free_dim = (m & bit) != 0;
    const bool high = (p & bit) != 0;
    lo.prefix[nlo] = p;
    lo.mask[nlo] = m & ~bit;
    lo.mult[nlo] = w;
    nlo += static_cast<std::size_t>(free_dim || !high);
    hi.prefix[nhi] = p | bit;
    hi.mask[nhi] = m & ~bit;
    hi.mult[nhi] = w;
    nhi += static_cast<std::size_t>(free_dim || high);
  }
#else
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex p = in.prefix[i];
    const Vertex m = in.mask[i];
    const std::uint64_t w = in.mult[i];
    if (m & bit) {
      lo.prefix[nlo] = p;
      lo.mask[nlo] = m & ~bit;
      lo.mult[nlo] = w;
      ++nlo;
      hi.prefix[nhi] = p | bit;
      hi.mask[nhi] = m & ~bit;
      hi.mult[nhi] = w;
      ++nhi;
    } else if (p & bit) {
      hi.prefix[nhi] = p;
      hi.mask[nhi] = m;
      hi.mult[nhi] = w;
      ++nhi;
    } else {
      lo.prefix[nlo] = p;
      lo.mask[nlo] = m;
      lo.mult[nlo] = w;
      ++nlo;
    }
  }
#endif
  lo.prefix.resize(nlo);
  lo.mask.resize(nlo);
  lo.mult.resize(nlo);
  hi.prefix.resize(nhi);
  hi.mask.resize(nhi);
  hi.mult.resize(nhi);
}

/// OR/AND reductions a dyadic walk needs per node, in one pass over an
/// index family: the free-dimension union, the mask intersection (its
/// complement against `remaining` is the pinned-anywhere set), and the
/// prefix OR/AND (their XOR is the pinned-values-differ set).
struct MaskScan {
  Vertex mask_or = 0;
  Vertex mask_and = ~Vertex{0};
  Vertex pref_or = 0;
  Vertex pref_and = ~Vertex{0};
};

[[nodiscard]] inline MaskScan scan_ids(const std::uint32_t* ids,
                                       std::size_t count,
                                       const Vertex* prefixes,
                                       const Vertex* masks) noexcept {
  MaskScan s;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t id = ids[i];
    s.mask_or |= masks[id];
    s.mask_and &= masks[id];
    s.pref_or |= prefixes[id];
    s.pref_and &= prefixes[id];
  }
  return s;
}

/// scan_ids over a value family (SoA arrays directly).
[[nodiscard]] inline MaskScan scan_all(const Vertex* prefixes,
                                       const Vertex* masks,
                                       std::size_t count) noexcept {
  MaskScan s;
  for (std::size_t i = 0; i < count; ++i) {
    s.mask_or |= masks[i];
    s.mask_and &= masks[i];
    s.pref_or |= prefixes[i];
    s.pref_and &= prefixes[i];
  }
  return s;
}

/// Intersect every family entry with the query (qp, qm), appending the
/// overlapping entries' intersections to `out` (stable order).  Returns
/// the number appended.  Branch-light filter: unconditional store,
/// conditional bump.
inline std::size_t intersect_all(const Vertex* prefixes, const Vertex* masks,
                                 std::size_t count, Vertex qp, Vertex qm,
                                 SubcubeSoA& out) {
  const std::size_t base = out.size();
  out.prefix.resize(base + count);
  out.mask.resize(base + count);
  std::size_t k = base;
#ifndef SHC_BATCH_SCALAR
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex p = prefixes[i];
    const Vertex m = masks[i];
    const Vertex both_pinned = ~(m | qm);
    const bool hit = ((p ^ qp) & both_pinned) == 0;
    const Vertex im = m & qm;
    out.prefix[k] = (p | qp) & ~im;
    out.mask[k] = im;
    k += static_cast<std::size_t>(hit);
  }
#else
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex p = prefixes[i];
    const Vertex m = masks[i];
    if (((p ^ qp) & ~(m | qm)) == 0) {
      const Vertex im = m & qm;
      out.prefix[k] = (p | qp) & ~im;
      out.mask[k] = im;
      ++k;
    }
  }
#endif
  out.prefix.resize(k);
  out.mask.resize(k);
  return k - base;
}

/// Filter the family entries overlapping the query (qp, qm) into `out`
/// unchanged (stable order) — the prefilter of the set-union
/// subtraction.  `stride_prefix`/`stride_mask` walk AoS layouts too
/// (stride in Vertex units; pass 1/1 with separate arrays for SoA).
inline std::size_t overlap_filter(const Vertex* prefixes, const Vertex* masks,
                                  std::size_t count, std::size_t stride,
                                  Vertex qp, Vertex qm, SubcubeSoA& out) {
  const std::size_t base = out.size();
  out.prefix.resize(base + count);
  out.mask.resize(base + count);
  std::size_t k = base;
#ifndef SHC_BATCH_SCALAR
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex p = prefixes[i * stride];
    const Vertex m = masks[i * stride];
    const bool hit = ((p ^ qp) & ~(m | qm)) == 0;
    out.prefix[k] = p;
    out.mask[k] = m;
    k += static_cast<std::size_t>(hit);
  }
#else
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex p = prefixes[i * stride];
    const Vertex m = masks[i * stride];
    if (((p ^ qp) & ~(m | qm)) == 0) {
      out.prefix[k] = p;
      out.mask[k] = m;
      ++k;
    }
  }
#endif
  out.prefix.resize(k);
  out.mask.resize(k);
  return k - base;
}

/// Recycling pool of index vectors for the divide sweeps: a
/// divide-on-pinned-dimension recursion visits millions of nodes but is
/// at most 64 deep, so a handful of recycled vectors replaces two heap
/// allocations per node (the scratch-churn fix).  Not thread-safe; use
/// one pool per walk (or thread).
class IdVecPool {
 public:
  [[nodiscard]] std::vector<std::uint32_t> acquire() {
    if (pool_.empty()) return {};
    std::vector<std::uint32_t> v = std::move(pool_.back());
    pool_.pop_back();
    v.clear();
    return v;
  }
  void release(std::vector<std::uint32_t>&& v) {
    pool_.push_back(std::move(v));
  }

 private:
  std::vector<std::vector<std::uint32_t>> pool_;
};

/// IdVecPool for SubcubeSoA scratch halves.
class SoAPool {
 public:
  [[nodiscard]] SubcubeSoA acquire() {
    if (pool_.empty()) return {};
    SubcubeSoA v = std::move(pool_.back());
    pool_.pop_back();
    v.clear();
    return v;
  }
  void release(SubcubeSoA&& v) { pool_.push_back(std::move(v)); }

 private:
  std::vector<SubcubeSoA> pool_;
};

/// IdVecPool for SubcubeBatch scratch halves.
class BatchPool {
 public:
  [[nodiscard]] SubcubeBatch acquire() {
    if (pool_.empty()) return {};
    SubcubeBatch v = std::move(pool_.back());
    pool_.pop_back();
    v.clear();
    return v;
  }
  void release(SubcubeBatch&& v) { pool_.push_back(std::move(v)); }

 private:
  std::vector<SubcubeBatch> pool_;
};

/// Batched subtraction: `region` minus a *pairwise-disjoint* subcube
/// family, appending the uncovered pieces (multiplicity-one subcubes) to
/// `out` via push(prefix, mask).  One divide-on-pinned-dimension sweep
/// using the partition kernels; budget semantics are node-exact with the
/// scalar recursion it replaces (each node costs family_size + 1;
/// returns false on exhaustion, with `budget` reflecting the work done).
/// The sweep object owns the recycled scratch halves — reuse one
/// instance across calls to amortize them.
class SubtractSweep {
 public:
  /// Recycled family buffer for the caller to fill before run() — using
  /// it keeps the whole subtract allocation-free in steady state.
  [[nodiscard]] SubcubeSoA acquire() { return pool_.acquire(); }

  template <class Push>
  [[nodiscard]] bool run(Vertex region_prefix, Vertex region_mask,
                         SubcubeSoA family, std::uint64_t& budget, Push&& push) {
    const bool ok = recurse(region_prefix, region_mask, family, budget, push);
    pool_.release(std::move(family));
    return ok;
  }

 private:
  template <class Push>
  bool recurse(Vertex rp, Vertex rm, SubcubeSoA& family, std::uint64_t& budget,
               Push& push) {
    const std::size_t count = family.size();
    if (budget < count + 1) return false;
    budget -= count + 1;
    if (count == 0) {
      push(rp, rm);
      return true;
    }
    // Disjointness means at most one member can cover the whole region;
    // scan for it (and the pinned-dimension union) in one pass.
    bool covered = false;
    Vertex mask_and = ~Vertex{0};
    for (std::size_t i = 0; i < count; ++i) {
      const Vertex fp = family.prefix[i];
      const Vertex fm = family.mask[i];
      covered |= ((rm & ~fm) | ((rp ^ fp) & ~fm)) == 0;
      mask_and &= fm;
    }
    if (covered) return true;  // fully covered
    const Vertex pinned_any = rm & ~mask_and;
    if (pinned_any == 0) {
      // Every member spans all remaining free dims yet none contains
      // the region: they disagree on a pinned dim — no overlap left.
      push(rp, rm);
      return true;
    }
    const int d = 63 - __builtin_clzll(pinned_any);
    const Vertex b = Vertex{1} << d;
    SubcubeSoA lo = pool_.acquire();
    SubcubeSoA hi = pool_.acquire();
    partition_subcubes(family.prefix.data(), family.mask.data(), count, b, lo,
                       hi);
    family.clear();
    const bool ok = recurse(rp, rm & ~b, lo, budget, push) &&
                    recurse(rp | b, rm & ~b, hi, budget, push);
    pool_.release(std::move(lo));
    pool_.release(std::move(hi));
    return ok;
  }

  SoAPool pool_;
};

}  // namespace batch
}  // namespace shc
