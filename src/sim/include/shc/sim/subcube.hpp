// Subcube algebra — the representation layer of the symbolic schedule
// engine.
//
// A subcube of Q_n is written (prefix, mask): `mask` marks the free
// dimensions, `prefix` pins the rest (prefix & mask == 0), and the
// subcube is { prefix | a : a subset of mask } — 2^popcount(mask)
// vertices.  The symbolic pipeline represents informed sets, call
// groups, and edge families as collections of subcubes, so certifying a
// Broadcast_k schedule costs time/memory polynomial in the collection
// size instead of 2^n.
//
// Three tools live here:
//
//   * Subcube / overlap / intersection / containment — O(1) word ops;
//   * SubcubeFrontier — a *multiset* of subcubes keyed (mask, prefix)
//     with per-entry multiplicity.  insert() coalesces sibling subcubes
//     (equal mask, prefixes differing in one non-free bit, equal
//     multiplicity) into one subcube of one higher dimension, which is
//     what keeps the informed set of a 2^63-vertex broadcast at a few
//     million entries.  Multiplicity makes the structure faithful to
//     the *multiset* of inserted vertices: a vertex covered twice can
//     coalesce into hidden corners but can never disappear, so the
//     endgame check (canonical_reduce() == one full cube, multiplicity
//     one) proves every vertex was informed exactly once;
//   * canonical_reduce / find_overlapping_pairs — recursive
//     divide-on-pinned-dimension sweeps.  canonical_reduce computes the
//     order-independent normal form of a subcube multiset (greedy
//     sibling coalescing can wedge in a local optimum; the recursion
//     cannot).  find_overlapping_pairs reports which members of a
//     family intersect — the symbolic validator's collision-candidate
//     detector.  Both take an explicit node budget and fail (rather
//     than stall) on adversarially fragmented inputs.
//
// Storage is structure-of-arrays throughout (see subcube_batch.hpp for
// the kernel layer and the rationale): the frontier's per-class tables
// keep separate contiguous key/value arrays so the coalesce scan — the
// hottest loop of a designed-spec certification — runs as one
// vectorizable min-reduction, and mask classes live in a recycled dense
// pool instead of an unordered_map (class churn was ~11 % of the
// designed-63 profile).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "shc/bits/audit.hpp"
#include "shc/bits/checked.hpp"
#include "shc/bits/vertex.hpp"
#include "shc/sim/subcube_batch.hpp"

namespace shc {

/// A subcube of Q_n: free dims in `mask`, pinned values in `prefix`.
/// Invariant: (prefix & mask) == 0.
struct Subcube {
  Vertex prefix = 0;
  Vertex mask = 0;

  [[nodiscard]] int dim() const noexcept { return weight(mask); }
  /// Number of vertices.  Pre: dim() <= 63.
  [[nodiscard]] std::uint64_t size() const noexcept {
    return std::uint64_t{1} << static_cast<unsigned>(dim());
  }
  [[nodiscard]] bool contains_vertex(Vertex v) const noexcept {
    return (v & ~mask) == prefix;
  }
  friend bool operator==(const Subcube&, const Subcube&) = default;
};

/// True iff the subcubes share a vertex: they agree on every dimension
/// pinned by both.
[[nodiscard]] inline bool subcubes_overlap(const Subcube& a, const Subcube& b) noexcept {
  const Vertex both_pinned = ~(a.mask | b.mask);
  return ((a.prefix ^ b.prefix) & both_pinned) == 0;
}

/// True iff every vertex of `inner` lies in `outer`.
[[nodiscard]] inline bool subcube_contains(const Subcube& outer,
                                           const Subcube& inner) noexcept {
  return (inner.mask & ~outer.mask) == 0 &&
         ((inner.prefix ^ outer.prefix) & ~outer.mask) == 0;
}

/// Intersection, or nullopt when disjoint.
[[nodiscard]] inline std::optional<Subcube> subcube_intersection(
    const Subcube& a, const Subcube& b) noexcept {
  if (!subcubes_overlap(a, b)) return std::nullopt;
  const Vertex mask = a.mask & b.mask;
  return Subcube{(a.prefix | b.prefix) & ~mask, mask};
}

/// Splits `outer` minus `inner` into disjoint subcubes (one per free
/// dimension of outer that inner pins).  Pre: subcube_contains(outer,
/// inner).  The symbolic congestion overlay's refinement step.
[[nodiscard]] inline std::vector<Subcube> subcube_subtract(const Subcube& outer,
                                                           const Subcube& inner) {
  assert(subcube_contains(outer, inner));
  std::vector<Subcube> pieces;
  Subcube cur = outer;
  Vertex split = outer.mask & ~inner.mask;
  while (split) {
    const Vertex b = split & (~split + 1);
    split &= ~b;
    // The half that disagrees with inner on b is entirely outside.
    pieces.push_back(Subcube{(cur.prefix & ~b) | (~inner.prefix & b), cur.mask & ~b});
    cur.prefix = (cur.prefix & ~b) | (inner.prefix & b);
    cur.mask &= ~b;
  }
  return pieces;
}

/// A subcube with a coverage multiplicity (how many times the multiset
/// covers each of its vertices).
struct WeightedSubcube {
  Vertex prefix = 0;
  Vertex mask = 0;
  std::uint64_t mult = 1;
  friend bool operator==(const WeightedSubcube&, const WeightedSubcube&) = default;
};

namespace detail {

/// splitmix finalizer — the frontier tables hash prefixes with it.
inline std::uint64_t mix_u64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Open-addressing prefix -> value table for one mask class, stored SoA
/// (separate contiguous key and value arrays) so the sibling-coalesce
/// scan vectorizes — see batch::sibling_scan.  Prefixes are < 2^63
/// (n <= kMaxCubeDim), so the two top-bit-set sentinels can never
/// collide with a key.
class PrefixTable {
 public:
  static constexpr Vertex kEmpty = ~Vertex{0};
  static constexpr Vertex kTomb = ~Vertex{0} - 1;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Pointer to the value for `p`, or nullptr.
  [[nodiscard]] std::uint64_t* find(Vertex p) noexcept {
    if (keys_.empty()) return nullptr;
    std::size_t i = mix_u64(p) & mask_;
    for (;;) {
      const Vertex k = keys_[i];
      if (k == p) return &vals_[i];
      if (k == kEmpty) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  [[nodiscard]] const std::uint64_t* find(Vertex p) const noexcept {
    return const_cast<PrefixTable*>(this)->find(p);
  }

  /// First entry satisfying fn(prefix, value), or false.
  template <class Fn>
  [[nodiscard]] bool any_of(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] < kTomb && fn(keys_[i], vals_[i])) return true;
    }
    return false;
  }

  /// Inserts p -> v, or adds v to the existing value.
  void add(Vertex p, std::uint64_t v) {
    assert(p < kTomb);
    reserve_one();
    std::size_t i = mix_u64(p) & mask_;
    std::size_t tomb = SIZE_MAX;
    for (;;) {
      const Vertex k = keys_[i];
      if (k == p) {
        vals_[i] += v;
        return;
      }
      if (k == kTomb && tomb == SIZE_MAX) tomb = i;
      if (k == kEmpty) {
        const std::size_t at = tomb != SIZE_MAX ? tomb : i;
        keys_[at] = p;
        vals_[at] = v;
        ++size_;
        ++used_;
        if (tomb != SIZE_MAX) {
          --used_;  // reused a tombstone: occupancy unchanged
        }
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Removes p; returns false when absent.
  bool erase(Vertex p) noexcept {
    if (keys_.empty()) return false;
    std::size_t i = detail_probe_start(p);
    for (;;) {
      if (keys_[i] == p) {
        keys_[i] = kTomb;
        --size_;
        return true;
      }
      if (keys_[i] == kEmpty) return false;
      i = (i + 1) & mask_;
    }
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] < kTomb) fn(keys_[i], vals_[i]);
    }
  }

  /// Live prefix at Hamming distance 1 from `p` whose value is `want`,
  /// with the *lowest* differing bit (the same preference as probing
  /// candidate dimensions in ascending order, so the coalesced
  /// structure is identical either way); kEmpty when none.  For the
  /// small mask classes the frontier is made of, one vectorized scan
  /// over the slot arrays (batch::sibling_scan) beats probing every one
  /// of n candidate sibling keys.
  [[nodiscard]] Vertex find_sibling_scan(Vertex p, std::uint64_t want) const noexcept {
    return batch::sibling_scan(keys_.data(), vals_.data(), keys_.size(),
                               kTomb, p, want);
  }

  /// Slot-array length (scan cost of find_sibling_scan).
  [[nodiscard]] std::size_t capacity() const noexcept { return keys_.size(); }

  /// Back to empty without releasing the slot arrays — recycling a
  /// table keeps its capacity and clears its tombstones, which is what
  /// lets the frontier's class pool reuse tables instead of
  /// destroy/reconstruct cycles.
  void reset() noexcept {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    size_ = 0;
    used_ = 0;
  }

 private:
  [[nodiscard]] std::size_t detail_probe_start(Vertex p) const noexcept {
    return mix_u64(p) & mask_;
  }

  void reserve_one() {
    if (keys_.empty()) {
      keys_.assign(16, kEmpty);
      vals_.assign(16, 0);
      mask_ = 15;
      return;
    }
    if ((used_ + 1) * 10 <= keys_.size() * 7) return;
    std::vector<Vertex> old_keys = std::move(keys_);
    std::vector<std::uint64_t> old_vals = std::move(vals_);
    const std::size_t cap = std::max<std::size_t>(
        16, old_keys.size() * (size_ * 10 >= old_keys.size() * 3 ? 2 : 1));
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, 0);
    mask_ = cap - 1;
    used_ = 0;
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] < kTomb) add(old_keys[i], old_vals[i]);
    }
  }

  std::vector<Vertex> keys_;
  std::vector<std::uint64_t> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live + tombstones
};

/// Open-addressing mask -> PrefixTable map backed by a dense recycled
/// table pool.  The frontier's coalesce cascade erases and recreates
/// mask classes millions of times per certification; with an
/// unordered_map each cycle was a node deallocation plus a fresh table
/// construction (~11 % of the designed-63 profile).  Here an erased
/// class just reset()s its table and parks the index on a free list, so
/// steady-state operation performs no allocation at all.  Masks are
/// < 2^63 like prefixes, so the same sentinels work.
class MaskClassMap {
 public:
  static constexpr Vertex kEmpty = ~Vertex{0};
  static constexpr Vertex kTomb = ~Vertex{0} - 1;

  [[nodiscard]] std::size_t class_count() const noexcept { return size_; }

  /// Table for mask `m`, creating (or recycling) an empty one if absent.
  [[nodiscard]] PrefixTable& get_or_create(Vertex m) {
    assert(m < kTomb);
    reserve_one();
    std::size_t i = mix_u64(m) & mask_;
    std::size_t tomb = SIZE_MAX;
    for (;;) {
      const Vertex k = keys_[i];
      if (k == m) return tables_[vals_[i]];
      if (k == kTomb && tomb == SIZE_MAX) tomb = i;
      if (k == kEmpty) {
        const std::size_t at = tomb != SIZE_MAX ? tomb : i;
        std::uint32_t idx;
        if (!free_.empty()) {
          idx = free_.back();  // recycled: already reset()
          free_.pop_back();
        } else {
          idx = static_cast<std::uint32_t>(tables_.size());
          tables_.emplace_back();
          table_mask_.push_back(kEmpty);
        }
        keys_[at] = m;
        vals_[at] = idx;
        table_mask_[idx] = m;
        ++size_;
        ++used_;
        if (tomb != SIZE_MAX) --used_;
        return tables_[idx];
      }
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] PrefixTable* find_class(Vertex m) noexcept {
    if (keys_.empty()) return nullptr;
    std::size_t i = mix_u64(m) & mask_;
    for (;;) {
      const Vertex k = keys_[i];
      if (k == m) return &tables_[vals_[i]];
      if (k == kEmpty) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  [[nodiscard]] const PrefixTable* find_class(Vertex m) const noexcept {
    return const_cast<MaskClassMap*>(this)->find_class(m);
  }

  /// Drops mask class `m`, recycling its table (capacity kept).
  void erase(Vertex m) noexcept {
    if (keys_.empty()) return;
    std::size_t i = mix_u64(m) & mask_;
    for (;;) {
      const Vertex k = keys_[i];
      if (k == m) {
        const std::uint32_t idx = vals_[i];
        keys_[i] = kTomb;
        tables_[idx].reset();
        table_mask_[idx] = kEmpty;
        free_.push_back(idx);
        --size_;
        return;
      }
      if (k == kEmpty) return;
      i = (i + 1) & mask_;
    }
  }

  /// fn(mask, const PrefixTable&) per live class, in dense pool order
  /// (deterministic for a given operation sequence).
  template <class Fn>
  void for_each_class(Fn&& fn) const {
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (table_mask_[i] != kEmpty) fn(table_mask_[i], tables_[i]);
    }
  }

  /// Back to empty; every table is recycled, all capacity kept.
  void clear() noexcept {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    size_ = 0;
    used_ = 0;
    free_.clear();
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      tables_[i].reset();
      table_mask_[i] = kEmpty;
      free_.push_back(static_cast<std::uint32_t>(i));
    }
  }

 private:
  void reserve_one() {
    if (keys_.empty()) {
      keys_.assign(16, kEmpty);
      vals_.assign(16, 0);
      mask_ = 15;
      return;
    }
    if ((used_ + 1) * 10 <= keys_.size() * 7) return;
    std::vector<Vertex> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_vals = std::move(vals_);
    const std::size_t cap = std::max<std::size_t>(
        16, old_keys.size() * (size_ * 10 >= old_keys.size() * 3 ? 2 : 1));
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, 0);
    mask_ = cap - 1;
    used_ = 0;
    // Rehash the key -> index pairs; the dense pool itself never moves.
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] >= kTomb) continue;
      std::size_t j = mix_u64(old_keys[i]) & mask_;
      while (keys_[j] != kEmpty) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
      ++used_;
    }
  }

  std::vector<Vertex> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;  // live classes
  std::size_t used_ = 0;  // live + tombstones
  std::vector<PrefixTable> tables_;
  std::vector<Vertex> table_mask_;  // kEmpty when pool slot is free
  std::vector<std::uint32_t> free_;
};

}  // namespace detail

/// Multiset of subcubes with per-entry multiplicity, keyed (mask,
/// prefix).  Two insertion modes:
///
///   * insert() — coalescing: sibling entries (same mask and
///     multiplicity, prefixes one non-free bit apart) merge into a
///     subcube of one higher dimension, cascading.  The producer's and
///     validator's informed-set representation.
///   * add_raw() / take() — plain keyed accumulation / checked
///     consumption, used for the validator's round-local call-group
///     ledger (no geometric merging wanted there).
///
/// total_count() tracks the multiset cardinality (sum of mult * 2^dim)
/// with overflow-checked arithmetic — at n = 63 the count reaches 2^63
/// and one unchecked multiply away from wrapping.
class SubcubeFrontier {
 public:
  explicit SubcubeFrontier(int n) : n_(n) { assert(n >= 1 && n <= kMaxCubeDim); }

  /// Coalescing multiset insert of `mult` copies of (p, M).
  void insert(Vertex p, Vertex M, std::uint64_t mult = 1) {
    assert((p & M) == 0);
    SHC_AUDIT_CHECK((p & M) == 0 && ((p | M) & ~mask_low(n_)) == 0,
                    "SubcubeFrontier entries must be well-formed in-range "
                    "subcubes (mask-class disjointness depends on it)");
    bump_count(M, mult);
    for (;;) {
      detail::PrefixTable& t = classes_.get_or_create(M);
      if (std::uint64_t* v = t.find(p)) {
        // Duplicate coverage: record it as multiplicity — the endgame
        // canonical_reduce turns it into a hard validation failure.
        *v += mult;
        return;
      }
      bool merged = false;
      // A merge partner lives in the same mask class at Hamming distance
      // one.  Small classes (the common case: the frontier's distinct
      // masks outnumber entries-per-class) are scanned in one pass;
      // large ones are probed per candidate dimension.
      if (t.capacity() <= static_cast<std::size_t>(2 * n_)) {
        const Vertex sib = t.find_sibling_scan(p, mult);
        if (sib != detail::PrefixTable::kEmpty) {
          const Vertex b = sib ^ p;
          t.erase(sib);
          if (t.empty()) classes_.erase(M);
          p &= ~b;
          M |= b;
          merged = true;
        }
      } else {
        for (int d = 0; d < n_; ++d) {
          const Vertex b = Vertex{1} << d;
          if (M & b) continue;
          if (std::uint64_t* sv = t.find(p ^ b); sv && *sv == mult) {
            t.erase(p ^ b);
            if (t.empty()) classes_.erase(M);
            p &= ~b;
            M |= b;
            merged = true;
            break;
          }
        }
      }
      if (!merged) {
#if SHC_AUDIT_ENABLED
        // Coalesce postcondition: the greedy loop settles only when no
        // equal-multiplicity sibling remains in the destination class —
        // re-verify with direct probes (per-mask-class disjointness is
        // keyed uniqueness plus the (p & M) == 0 checks below).
        for (int d = 0; d < n_; ++d) {
          const Vertex b = Vertex{1} << d;
          if (M & b) continue;
          const std::uint64_t* sv = t.find(p ^ b);
          SHC_AUDIT_CHECK(!(sv && *sv == mult),
                          "SubcubeFrontier: insert() must not leave an "
                          "equal-multiplicity sibling uncoalesced");
        }
#endif
        t.add(p, mult);
        ++entries_;
        return;
      }
      --entries_;  // consumed the sibling; the loop re-inserts the merged cube
    }
  }

  /// Non-coalescing accumulate: value `v` onto key (p, M).
  void add_raw(Vertex p, Vertex M, std::uint64_t v) {
    assert((p & M) == 0);
    SHC_AUDIT_CHECK((p & M) == 0 && ((p | M) & ~mask_low(n_)) == 0,
                    "SubcubeFrontier raw keys must be well-formed in-range "
                    "subcubes");
    detail::PrefixTable& t = classes_.get_or_create(M);
    if (std::uint64_t* cur = t.find(p)) {
      *cur += v;
    } else {
      t.add(p, v);
      ++entries_;
    }
  }

  /// Deducts `v` from key (p, M); erases at zero.  Returns false when
  /// the key is absent or holds less than `v`.
  [[nodiscard]] bool take(Vertex p, Vertex M, std::uint64_t v) {
    detail::PrefixTable* t = classes_.find_class(M);
    if (!t) return false;
    std::uint64_t* cur = t->find(p);
    if (!cur || *cur < v) return false;
    *cur -= v;
    if (*cur == 0) {
      t->erase(p);
      --entries_;
      if (t->empty()) classes_.erase(M);
    }
    return true;
  }

  /// take() without the erase: deducts `v` but leaves the (possibly
  /// zero-valued) entry in place, so the table structure never mutates.
  /// This is what makes the parallel caller-tiling sweep race-free: the
  /// structure is read-only and the value deduction is a CAS loop, so
  /// even when two workers' entries descend to the *same* key (possible
  /// only for malformed schedules whose frontier entries overlap) the
  /// outcome is a correct lost-nothing decrement, not a data race.
  /// Callers scan for nonzero leftovers afterwards and clear() for the
  /// next round.
  [[nodiscard]] bool consume(Vertex p, Vertex M, std::uint64_t v) {
    detail::PrefixTable* t = classes_.find_class(M);
    if (!t) return false;
    std::uint64_t* cur = t->find(p);
    if (!cur) return false;
    std::atomic_ref<std::uint64_t> slot(*cur);
    std::uint64_t have = slot.load(std::memory_order_relaxed);
    do {
      if (have < v) return false;
    } while (!slot.compare_exchange_weak(have, have - v,
                                         std::memory_order_relaxed));
    return true;
  }

  [[nodiscard]] std::uint64_t* find(Vertex p, Vertex M) {
    detail::PrefixTable* t = classes_.find_class(M);
    return t ? t->find(p) : nullptr;
  }

  [[nodiscard]] bool empty() const noexcept { return entries_ == 0; }
  [[nodiscard]] std::uint64_t num_subcubes() const noexcept { return entries_; }
  [[nodiscard]] int n() const noexcept { return n_; }

  /// Multiset cardinality; valid only while count_ok().
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_count_; }
  [[nodiscard]] bool count_ok() const noexcept { return !count_overflow_; }

  /// fn(prefix, mask, mult) over every entry (unspecified order).
  template <class Fn>
  void for_each(Fn&& fn) const {
    classes_.for_each_class([&](Vertex mask, const detail::PrefixTable& table) {
      table.for_each([&](Vertex p, std::uint64_t mult) { fn(p, mask, mult); });
    });
  }

  /// fn(mask, const detail::PrefixTable&) per mask class — consumers
  /// that probe by projected prefix (the congestion overlay) iterate
  /// classes directly.
  template <class Fn>
  void for_each_class(Fn&& fn) const {
    classes_.for_each_class(std::forward<Fn>(fn));
  }

  [[nodiscard]] std::vector<WeightedSubcube> to_entries() const {
    std::vector<WeightedSubcube> out;
    out.reserve(static_cast<std::size_t>(entries_));
    for_each([&](Vertex p, Vertex m, std::uint64_t mult) {
      out.push_back({p, m, mult});
    });
    return out;
  }

  void clear() {
#if SHC_AUDIT_ENABLED
    // Entry accounting: entries_ must equal the live keys across mask
    // classes (checked here, where the O(entries) sweep rides on a walk
    // the caller already pays for at round boundaries).
    std::uint64_t live = 0;
    classes_.for_each_class([&](Vertex mask, const detail::PrefixTable& table) {
      static_cast<void>(mask);
      live += table.size();
    });
    SHC_AUDIT_CHECK(live == entries_,
                    "SubcubeFrontier entry count must match its mask-class "
                    "tables");
#endif
    classes_.clear();
    entries_ = 0;
    total_count_ = 0;
    count_overflow_ = false;
  }

 private:
  void bump_count(Vertex M, std::uint64_t mult) {
    std::uint64_t cube = 0;
    if (!checked_shift_u64(static_cast<unsigned>(weight(M)), cube) ||
        !checked_mul_u64(cube, mult, cube) ||
        !checked_acc_u64(total_count_, cube)) {
      count_overflow_ = true;
    }
  }

  int n_;
  detail::MaskClassMap classes_;
  std::uint64_t entries_ = 0;
  std::uint64_t total_count_ = 0;
  bool count_overflow_ = false;
};

/// Order-independent normal form of a subcube multiset: recursively
/// branches on the highest dimension any entry pins, reduces both
/// halves, and lifts entries that appear identically in both back to a
/// free dimension.  A multiset covering every vertex of Q_n exactly once
/// reduces to the single entry {0, mask_low(n), 1} regardless of how
/// greedy coalescing fragmented it; duplicate coverage surfaces as
/// mult > 1 entries.  Returns nullopt when the recursion exceeds
/// `budget` processed entries (pathologically interleaved inputs).
[[nodiscard]] std::optional<std::vector<WeightedSubcube>> canonical_reduce(
    std::vector<WeightedSubcube> entries, int n, std::uint64_t budget = 1u << 26);

class WorkerPool;

/// canonical_reduce with its serial tail removed: the reduce recursion
/// branches on one pinned dimension per level, so its top few levels
/// partition the input into independent subtrees.  Those levels are
/// descended serially (same branch choice, same budget accounting as
/// the serial form), the frontier subtrees are farmed over `pool`, and
/// the lifts join bottom-up afterwards.  The recursion tree is a
/// function of the input *multiset* alone, so the output — and the
/// refusal predicate "total processed entries > budget" — is
/// bit-for-bit identical to the serial form at every thread count.
/// Inputs at or below the chunk size, or a null / single-worker pool,
/// fall through to plain canonical_reduce (same output, same refusals,
/// zero overhead).  When `tree_tasks` is non-null, the number of
/// subtrees farmed over the pool is accumulated into it (saturating;
/// the fall-through paths add nothing) — a thread-count-dependent
/// effort counter, never part of any verdict.
[[nodiscard]] std::optional<std::vector<WeightedSubcube>> canonical_reduce_tree(
    std::vector<WeightedSubcube> entries, int n, std::uint64_t budget,
    WorkerPool* pool, std::uint64_t* tree_tasks = nullptr);

/// Finds intersecting pairs in a subcube family.  Returns, for each
/// unordered pair of family members that share at least one vertex, the
/// index pair (i < j) — at most `max_pairs` pairs (deduplicated), or
/// nullopt when the recursion exceeds `budget`.  This is the symbolic
/// validator's collision-candidate detector: pairs it reports undergo
/// exact route-pattern analysis, so over-reporting is safe and
/// under-reporting impossible.
[[nodiscard]] std::optional<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
find_overlapping_pairs(const std::vector<Subcube>& family,
                       std::uint64_t budget = 1u << 28,
                       std::size_t max_pairs = 1u << 16);

}  // namespace shc
