// Knowledge-class partition — the state layer of the symbolic gossip
// engine.
//
// The exact gossip validator tracks N^2 bits (who knows which token) and
// hard-fails at N > 2^13.  The symbolic engine exploits that gossip
// knowledge is *translation-covariant* under subcube-batched exchanges:
// a call group pairs every caller u of a subcube with the fixed
// translate u ^ delta, so if every vertex v of a region knows exactly
// { v ^ x : x in K } for one shared offset set K, the paired regions
// again share one offset set after the exchange — the union
// K ∪ (K' ^ delta), computed once and reused (translated) on the other
// side.  The partition therefore tracks, instead of N token bitsets:
//
//   * a set of *classes* — disjoint subcubes covering Q_n — where every
//     vertex of a class has the same knowledge *relative to itself*;
//   * per class, one shared GossipKnowledge: a canonical disjoint
//     subcube cover of the known offsets (structurally the same
//     representation as the broadcast engine's informed frontier).
//
// apply_round() refines classes along the exchange boundaries (a group
// bisecting a class splits it), computes each pairing's union exactly
// once (translation-keyed cache; genuine set union — overlapping
// knowledge deduplicates via subcube subtraction), and re-coalesces
// classes whose knowledge came out identical through canonical_reduce,
// which is what keeps dimension-exchange gossip at O(1) classes and
// gather-broadcast gossip at the broadcast frontier's polynomial size.
//
// The endgame check is all_complete(): every class's knowledge must be
// the full cube covered exactly once — the XOR-translate of the full
// cube is the full cube, so this certifies that every vertex knows
// every token, with no per-vertex state ever materialized.  All
// cardinality arithmetic (offset counts, coverage sums, the
// class-size x knowledge-count pair totals) goes through bits/checked.hpp:
// at n = 63 the counts reach 2^63 and the pair products overflow 64 bits
// first here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shc/bits/checked.hpp"
#include "shc/bits/vertex.hpp"
#include "shc/sim/subcube.hpp"

namespace shc {

class WorkerPool;

/// One immutable knowledge set of relative offsets, shared (via
/// shared_ptr) by every class whose vertices know exactly these offsets
/// of themselves.  Invariants: entries are pairwise disjoint, carry
/// multiplicity one, and are in canonical sorted form (canonical_reduce
/// output ordered by (mask, prefix)), so content equality is plain
/// vector equality and `sig` is a deterministic content hash.
struct GossipKnowledge {
  std::vector<WeightedSubcube> entries;
  std::uint64_t count = 0;  ///< offsets covered (sum of 2^dim, exact)
  std::uint64_t sig = 0;    ///< hash of (count, entries) for merge buckets

  /// True iff the set is all of Q_n covered exactly once.
  [[nodiscard]] bool complete(int n) const noexcept {
    return entries.size() == 1 && entries[0].prefix == 0 &&
           entries[0].mask == mask_low(n) && entries[0].mult == 1;
  }
};

using GossipKnowledgePtr = std::shared_ptr<const GossipKnowledge>;

/// Budgets and caps of the partition machinery — like the symbolic
/// broadcast validator's, these make adversarially fragmented input fail
/// explicitly instead of thrashing.
struct KnowledgeClassOptions {
  /// Hard cap on classes (memory guard).  The class count plateaus at
  /// the geometric complexity of the schedule's participation regions —
  /// roughly half the producer's total group count for gather-broadcast
  /// (~2M at n = 40 on the designed cuts).
  std::uint64_t max_classes = std::uint64_t{1} << 23;
  /// Node budget per canonical_reduce (knowledge unions, class merges).
  std::uint64_t reduce_budget = std::uint64_t{1} << 28;
  /// Node budget per refinement sweep and per round of subcube
  /// subtractions (union dedup + class remainders).
  std::uint64_t subtract_budget = std::uint64_t{1} << 32;
};

/// Size/effort counters of one partition run.
struct KnowledgeClassStats {
  std::uint64_t classes = 0;        ///< current class count
  std::uint64_t peak_classes = 0;
  /// High-water mark of the summed entry counts of the *distinct*
  /// knowledge sets alive at a round boundary.
  std::uint64_t peak_knowledge_subcubes = 0;
  std::uint64_t unions_computed = 0;
  std::uint64_t union_cache_hits = 0;
  /// Pairings whose union was genuinely computed this run (the
  /// translation-keyed cache had no entry) — hits + misses is the total
  /// pairing lookups.
  std::uint64_t union_cache_misses = 0;
  /// Subtrees farmed by canonical_reduce_tree (union canonicalization
  /// and the single-bucket merge path).  Thread-count dependent by
  /// design — the serial path farms nothing — so it is never gated for
  /// thread invariance.
  std::uint64_t reduce_tree_tasks = 0;
  /// Sum over classes of class-size x knowledge-count — the "who knows
  /// what" pair total the exact validator stores as N^2 bits.  Saturates
  /// at UINT64_MAX with known_pairs_exact cleared (at n = 63 the final
  /// total is 2^126; the overflow is expected and must be explicit).
  std::uint64_t known_pairs = 0;
  bool known_pairs_exact = true;
};

/// The partition of Q_n into equal-relative-knowledge classes.  Starts
/// as one class (the full cube) knowing offset {0} — every vertex knows
/// its own token.  Not thread-safe; one instance per validation run.
class KnowledgeClassPartition {
 public:
  explicit KnowledgeClassPartition(int n, KnowledgeClassOptions opt = {});

  /// One round's exchanges: every vertex v of `callers` exchanges with
  /// v ^ delta.  Pre (the symbolic gossip validator establishes all of
  /// these; apply_round re-checks the cheap ones and returns an error
  /// otherwise): delta != 0, delta and the caller subcube in range,
  /// delta disjoint from the caller subcube's free mask, and all 2R
  /// endpoint subcubes of the round pairwise disjoint.
  struct Exchange {
    Subcube callers;
    Vertex delta = 0;
  };

  /// Applies one round of simultaneous exchanges.  Returns the empty
  /// string on success, or an explicit error (budget/cap exhaustion,
  /// malformed exchange, or an internal coverage-loss check — the
  /// latter also fires when the endpoint-disjointness precondition was
  /// violated, so the partition never silently corrupts).
  [[nodiscard]] std::string apply_round(const std::vector<Exchange>& exchanges);

  /// True iff every class's knowledge is the full cube covered once —
  /// gossip completion.
  [[nodiscard]] bool all_complete() const noexcept;

  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_.size(); }
  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] const KnowledgeClassStats& stats() const noexcept { return stats_; }

  /// Relative knowledge of the class containing `v` (linear scan; for
  /// tests and diagnostics, not the hot path).
  [[nodiscard]] const GossipKnowledge& knowledge_of(Vertex v) const;

  /// Optional worker pool for the heavy reductions (knowledge unions
  /// and the class re-coalesce pass farm the reduce recursion's top
  /// split over it).  Results are bit-for-bit identical with or without
  /// a pool and at every thread count — the recursion tree is a
  /// deterministic function of the data (see canonical_reduce_tree).
  /// The pool must outlive the partition; nullptr (the default) runs
  /// everything inline.
  void set_pool(WorkerPool* pool) noexcept { pool_ = pool; }

 private:
  struct ClassEntry {
    Subcube cube;
    GossipKnowledgePtr know;
    /// True for classes created or re-cut this round: the merge pass
    /// only canonicalizes signature buckets containing a fresh member,
    /// so the plateau of settled classes is not re-reduced every round.
    bool fresh = false;
  };

  [[nodiscard]] std::string merge_equal_classes(std::vector<ClassEntry>& next);
  void refresh_stats();

  int n_;
  KnowledgeClassOptions opt_;
  std::vector<ClassEntry> classes_;
  KnowledgeClassStats stats_;
  WorkerPool* pool_ = nullptr;
};

}  // namespace shc
