// Mechanical validation of broadcast schedules under k-line
// communication.  The validator re-checks every clause of Definition 1
// and Definition 2 of the paper; the library's correctness claims in
// tests always go through it rather than trusting scheme proofs.
//
// The checking kernel is a template over the adjacency-oracle type, so
// concrete views (GraphView, HypercubeView, SpecView) validate with
// direct — devirtualized, inlinable — has_edge() calls.  The virtual
// NetworkView base remains usable as a type-erased adapter: passing a
// `const NetworkView&` instantiates the kernel over the base class and
// dispatches each edge probe virtually, which is exactly what tests that
// wrap ad-hoc oracles want.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "shc/bits/bitstring.hpp"
#include "shc/sim/flat_schedule.hpp"
#include "shc/sim/network.hpp"
#include "shc/sim/schedule.hpp"

namespace shc {

/// Anything that answers num_vertices() / has_edge() — materialized
/// graphs, implicit cubes, sparse-hypercube specs, or the type-erased
/// virtual NetworkView.
template <class Net>
concept AdjacencyOracle = requires(const Net& net, Vertex u, Vertex v) {
  { net.num_vertices() } -> std::convertible_to<std::uint64_t>;
  { net.has_edge(u, v) } -> std::convertible_to<bool>;
};

/// Validation policy.
struct ValidationOptions {
  /// Maximum call length k (Definition 1(2)).  Use num_vertices-1 for
  /// the unbounded line model of [14].
  int k = 1;

  /// Edge capacity per round.  1 is the paper's model; c > 1 models the
  /// dilated / multi-edge variant discussed in Section 5.
  int edge_capacity = 1;

  /// When true (default), calling an already-informed vertex is an
  /// error.  The model technically permits it, but a minimum-time
  /// schedule never can (the informed set must exactly double).
  bool forbid_redundant_receivers = true;

  /// When true (default), rounds must not be empty and the schedule
  /// must inform every vertex.
  bool require_completion = true;

  /// Section-5 variant: when true, calls placed in the same round must
  /// be pairwise *vertex*-disjoint (not just edge-disjoint) — no
  /// switching through a vertex touched by another call.  The sparse
  /// hypercube schemes satisfy this stronger model (concurrent calls
  /// live in disjoint subcubes); star switching does not.
  bool require_vertex_disjoint = false;
};

/// Outcome of validating one schedule.
struct ValidationReport {
  bool ok = false;
  std::string error;            ///< empty iff ok
  int rounds = 0;               ///< rounds examined
  std::uint64_t informed = 0;   ///< vertices informed at the end
  int max_call_length = 0;      ///< longest call seen

  /// Calls across all rounds.  Explicitly 64-bit: the symbolic engine
  /// certifies schedules of up to 2^63 - 1 calls, which must not wrap
  /// on any platform's size_t.
  std::uint64_t total_calls = 0;

  /// True iff ok and rounds == ceil(log2 N): the schedule witnesses a
  /// *minimum-time* k-line broadcast (Definition 2).
  bool minimum_time = false;

  /// Bit-for-bit comparability: the parallel and streaming validators
  /// are required (and tested) to reproduce the serial report exactly,
  /// including the error string and partial counters on failure.
  friend bool operator==(const ValidationReport&, const ValidationReport&) = default;
};

namespace detail {

/// Canonical undirected-edge key for 64-bit endpoints.
struct EdgeKey {
  Vertex a, b;
  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
};

struct EdgeKeyHash {
  std::size_t operator()(const EdgeKey& e) const noexcept {
    // splitmix-style mixing of the two endpoints.
    std::uint64_t x = e.a * 0x9E3779B97F4A7C15ULL ^ (e.b + 0xBF58476D1CE4E5B9ULL);
    x ^= x >> 31;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 29;
    return static_cast<std::size_t>(x);
  }
};

inline EdgeKey edge_key(Vertex u, Vertex v) {
  return u <= v ? EdgeKey{u, v} : EdgeKey{v, u};
}

/// Membership set over vertices 0..order-1.  Materializable orders get a
/// contiguous bitmap (one probe, no hashing); the implicit n <= 63 range
/// beyond falls back to a hash set.
class VertexSet {
 public:
  explicit VertexSet(std::uint64_t order) : bitmap_(order <= kBitmapLimit) {
    if (bitmap_) bits_.assign(static_cast<std::size_t>((order + 63) / 64), 0);
  }

  /// Inserts v; returns true iff it was not present.
  bool insert(Vertex v) {
    if (bitmap_) {
      std::uint64_t& word = bits_[static_cast<std::size_t>(v >> 6)];
      const std::uint64_t bit = std::uint64_t{1} << (v & 63);
      if (word & bit) return false;
      word |= bit;
      ++count_;
      return true;
    }
    const bool fresh = set_.insert(v).second;
    if (fresh) ++count_;
    return fresh;
  }

  [[nodiscard]] bool contains(Vertex v) const {
    if (bitmap_) {
      return (bits_[static_cast<std::size_t>(v >> 6)] >> (v & 63)) & 1;
    }
    return set_.contains(v);
  }

  [[nodiscard]] std::uint64_t size() const noexcept { return count_; }

  void clear() {
    if (bitmap_) {
      std::fill(bits_.begin(), bits_.end(), 0);
    } else {
      set_.clear();
    }
    count_ = 0;
  }

 private:
  // One bit per vertex for exactly the streaming validator's n <= 32
  // range (2^32 bits = 512 MiB worst case); truly implicit orders
  // beyond fall back to hashing rather than eagerly zeroing gigabyte
  // bitmaps for round-scoped sets.
  static constexpr std::uint64_t kBitmapLimit = std::uint64_t{1} << 32;

  bool bitmap_;
  std::uint64_t count_ = 0;
  std::vector<std::uint64_t> bits_;
  std::unordered_set<Vertex> set_;
};

/// Cross-round validator state, shared by the serial, parallel, and
/// streaming drivers.  `informed` persists across rounds; the rest is
/// round-scoped scratch cleared by the round kernel.
struct BroadcastRunState {
  VertexSet informed;
  VertexSet receivers;
  std::optional<VertexSet> touched;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> edge_use;
  std::vector<Vertex> round_receivers;

  BroadcastRunState(std::uint64_t order, const ValidationOptions& opt)
      : informed(order), receivers(order) {
    if (opt.require_vertex_disjoint) touched.emplace(order);
  }
};

/// Reference (serial) kernel for one round: validates calls
/// [first_call, last_call) of `schedule` as round `round_number`
/// (1-based, for error messages), updating `state` and the report's
/// counters exactly as the original monolithic loop did.  Returns false
/// and sets rep.error on the first violation.  The parallel fast path
/// re-runs this kernel verbatim whenever it detects *any* anomaly, which
/// is what makes parallel failure reports bit-for-bit serial.
template <AdjacencyOracle Net>
bool validate_round_serial(const Net& net, const FlatSchedule& schedule,
                           std::size_t first_call, std::size_t last_call,
                           int round_number, const ValidationOptions& opt,
                           BroadcastRunState& state, ValidationReport& rep) {
  const std::uint64_t order = net.num_vertices();
  auto fail = [&](const std::string& msg) {
    rep.ok = false;
    rep.error = msg;
    return false;
  };
  auto vname = [](Vertex v) { return std::to_string(v); };
  const std::string where = "round " + std::to_string(round_number) + ": ";

  if (opt.require_completion && first_call == last_call) {
    return fail(where + "empty round");
  }

  state.edge_use.clear();
  state.receivers.clear();
  if (state.touched) state.touched->clear();
  state.round_receivers.clear();

  for (std::size_t c = first_call; c < last_call; ++c) {
    const FlatSchedule::CallView call = schedule.call(c);
    if (call.size() < 2) {
      return fail(where + "empty or zero-length call (a call needs a caller, " +
                  "a receiver, and at least one edge)");
    }
    rep.max_call_length = std::max(rep.max_call_length, call.length());
    ++rep.total_calls;

    const Vertex caller = call.caller();
    const Vertex receiver = call.receiver();
    if (caller >= order || receiver >= order) {
      return fail(where + "endpoint out of range");
    }
    if (!state.informed.contains(caller)) {
      return fail(where + "caller " + vname(caller) + " not informed");
    }
    if (call.length() > opt.k) {
      return fail(where + "call " + vname(caller) + "->" + vname(receiver) +
                  " has length " + std::to_string(call.length()) + " > k=" +
                  std::to_string(opt.k));
    }
    if (opt.forbid_redundant_receivers && state.informed.contains(receiver)) {
      return fail(where + "receiver " + vname(receiver) + " already informed");
    }
    if (!state.receivers.insert(receiver)) {
      return fail(where + "receiver " + vname(receiver) +
                  " targeted by two calls");
    }
    state.round_receivers.push_back(receiver);

    if (state.touched) {
      for (const Vertex v : call) {
        // Range-check before the insert: the bitmap-backed set indexes
        // by vertex, so an out-of-range interior vertex must be
        // reported here, not written out of bounds.
        if (v >= order) {
          return fail(where + "path vertex out of range");
        }
        if (!state.touched->insert(v)) {
          return fail(where + "vertex " + vname(v) +
                      " touched by two calls (vertex-disjoint model)");
        }
      }
    }

    // Walk the path: every hop an edge, no edge reused beyond capacity
    // (the call's own edges also count toward the capacity — a single
    // call may not traverse one edge twice in the unit-capacity model).
    for (std::size_t i = 0; i + 1 < call.size(); ++i) {
      const Vertex x = call[i];
      const Vertex y = call[i + 1];
      if (x >= order || y >= order) {
        return fail(where + "path vertex out of range");
      }
      if (x == y || !net.has_edge(x, y)) {
        return fail(where + "no edge between " + vname(x) + " and " + vname(y));
      }
      const int uses = ++state.edge_use[edge_key(x, y)];
      if (uses > opt.edge_capacity) {
        return fail(where + "edge {" + vname(x) + "," + vname(y) + "} used " +
                    std::to_string(uses) + " times (capacity " +
                    std::to_string(opt.edge_capacity) + ")");
      }
    }
  }

  // Receivers become informed only after the full round resolves; a
  // vertex informed this round may not also have placed a call (it was
  // uninformed at round start, enforced by the caller check above).
  for (Vertex r : state.round_receivers) state.informed.insert(r);
  return true;
}

/// Shared tail: completion and minimum-time verdicts.
inline void finish_broadcast_report(std::uint64_t order,
                                    const ValidationOptions& opt,
                                    const BroadcastRunState& state,
                                    ValidationReport& rep) {
  rep.informed = state.informed.size();
  if (opt.require_completion && rep.informed != order) {
    rep.ok = false;
    rep.error = "incomplete: informed " + std::to_string(rep.informed) + " of " +
                std::to_string(order);
    return;
  }
  rep.ok = true;
  rep.minimum_time =
      rep.ok && rep.rounds == ceil_log2(order) && rep.informed == order;
}

}  // namespace detail

/// Validates `schedule` against `net` under `opt`.  Checks, per round:
/// callers informed, receivers distinct and (optionally) uninformed,
/// every path edge exists, call length <= k, no edge used more than
/// edge_capacity times in the round, no call re-uses an edge within its
/// own path; finally completion and minimum-time.  Degenerate calls
/// (empty or single-vertex paths) are rejected explicitly.
template <AdjacencyOracle Net>
[[nodiscard]] ValidationReport validate_broadcast(const Net& net,
                                                  const FlatSchedule& schedule,
                                                  const ValidationOptions& opt) {
  ValidationReport rep;
  const std::uint64_t order = net.num_vertices();

  if (schedule.source >= order) {
    rep.ok = false;
    rep.error = "source out of range";
    return rep;
  }

  detail::BroadcastRunState state(order, opt);
  state.informed.insert(schedule.source);

  std::size_t first = 0;
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    const std::size_t last = first + schedule.round(t).size();
    ++rep.rounds;
    if (!detail::validate_round_serial(net, schedule, first, last, t + 1, opt,
                                       state, rep)) {
      return rep;
    }
    first = last;
  }

  detail::finish_broadcast_report(order, opt, state, rep);
  return rep;
}

/// Legacy-schedule adapter: converts through the FlatSchedule shim.
template <AdjacencyOracle Net>
[[nodiscard]] ValidationReport validate_broadcast(const Net& net,
                                                  const BroadcastSchedule& schedule,
                                                  const ValidationOptions& opt) {
  return validate_broadcast(net, FlatSchedule::from_legacy(schedule), opt);
}

/// Convenience: validate under the paper's exact model and require a
/// minimum-time result.  Returns the report (callers assert report.ok &&
/// report.minimum_time).
template <AdjacencyOracle Net, class Sched>
[[nodiscard]] ValidationReport validate_minimum_time_k_line(const Net& net,
                                                            const Sched& schedule,
                                                            int k) {
  ValidationOptions opt;
  opt.k = k;
  return validate_broadcast(net, schedule, opt);
}

// The type-erased kernel instantiation lives in validator.cpp; every TU
// that validates through the virtual base shares it.
extern template ValidationReport validate_broadcast<NetworkView>(
    const NetworkView&, const FlatSchedule&, const ValidationOptions&);

}  // namespace shc
