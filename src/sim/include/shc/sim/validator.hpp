// Mechanical validation of broadcast schedules under k-line
// communication.  The validator re-checks every clause of Definition 1
// and Definition 2 of the paper; the library's correctness claims in
// tests always go through it rather than trusting scheme proofs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>

#include "shc/sim/network.hpp"
#include "shc/sim/schedule.hpp"

namespace shc {

/// Validation policy.
struct ValidationOptions {
  /// Maximum call length k (Definition 1(2)).  Use num_vertices-1 for
  /// the unbounded line model of [14].
  int k = 1;

  /// Edge capacity per round.  1 is the paper's model; c > 1 models the
  /// dilated / multi-edge variant discussed in Section 5.
  int edge_capacity = 1;

  /// When true (default), calling an already-informed vertex is an
  /// error.  The model technically permits it, but a minimum-time
  /// schedule never can (the informed set must exactly double).
  bool forbid_redundant_receivers = true;

  /// When true (default), rounds must not be empty and the schedule
  /// must inform every vertex.
  bool require_completion = true;

  /// Section-5 variant: when true, calls placed in the same round must
  /// be pairwise *vertex*-disjoint (not just edge-disjoint) — no
  /// switching through a vertex touched by another call.  The sparse
  /// hypercube schemes satisfy this stronger model (concurrent calls
  /// live in disjoint subcubes); star switching does not.
  bool require_vertex_disjoint = false;
};

/// Outcome of validating one schedule.
struct ValidationReport {
  bool ok = false;
  std::string error;            ///< empty iff ok
  int rounds = 0;               ///< rounds examined
  std::uint64_t informed = 0;   ///< vertices informed at the end
  int max_call_length = 0;      ///< longest call seen
  std::size_t total_calls = 0;  ///< calls across all rounds

  /// True iff ok and rounds == ceil(log2 N): the schedule witnesses a
  /// *minimum-time* k-line broadcast (Definition 2).
  bool minimum_time = false;
};

/// Validates `schedule` against `net` under `opt`.  Checks, per round:
/// callers informed, receivers distinct and (optionally) uninformed,
/// every path edge exists, call length <= k, no edge used more than
/// edge_capacity times in the round, no call re-uses an edge within its
/// own path; finally completion and minimum-time.
[[nodiscard]] ValidationReport validate_broadcast(const NetworkView& net,
                                                  const BroadcastSchedule& schedule,
                                                  const ValidationOptions& opt);

/// Convenience: validate under the paper's exact model and require a
/// minimum-time result.  Returns the report (callers assert report.ok &&
/// report.minimum_time).
[[nodiscard]] ValidationReport validate_minimum_time_k_line(
    const NetworkView& net, const BroadcastSchedule& schedule, int k);

}  // namespace shc
