// Edge-load accounting and failure injection for broadcast schedules —
// the quantitative side of the paper's Section-5 discussion: sparser
// graphs push more calls over fewer edges, so we measure exactly how the
// load distributes and what capacity a dilated network would need.
//
// Kernels operate on the flat schedule representation; legacy
// BroadcastSchedule overloads convert through the shim.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "shc/sim/flat_schedule.hpp"
#include "shc/sim/schedule.hpp"
#include "shc/sim/symbolic_schedule.hpp"

namespace shc {

/// Aggregate edge-load statistics of one schedule.
struct CongestionStats {
  std::size_t distinct_edges_used = 0;  ///< edges carrying >= 1 call hop
  std::uint64_t total_edge_hops = 0;    ///< sum of call lengths
  int max_edge_load_total = 0;          ///< max hops on one edge across all rounds
  int max_edge_load_per_round = 0;      ///< max hops on one edge within a round
  double mean_edge_load = 0.0;          ///< total_edge_hops / distinct_edges_used

  /// histogram[l] = number of edges whose total load is l (index 0 unused).
  std::vector<std::size_t> load_histogram;

  /// Folds in stats computed over an *edge-disjoint* shard of the same
  /// schedule (each edge owned by exactly one shard): counts add,
  /// maxima max, histograms add element-wise, and the mean is
  /// recomputed from the merged totals.  This is what lets
  /// analyze_congestion_parallel shard edges across workers and still
  /// reproduce the serial stats exactly (enforced by parity tests).
  CongestionStats& merge(const CongestionStats& other);

  friend bool operator==(const CongestionStats&, const CongestionStats&) = default;
};

/// Computes load statistics.  `max_edge_load_per_round` equals 1 for any
/// schedule that is feasible in the paper's unit-capacity model; larger
/// values tell the capacity a dilated (multi-edge) network would need to
/// run this schedule as-is.
[[nodiscard]] CongestionStats analyze_congestion(const FlatSchedule& schedule);
[[nodiscard]] CongestionStats analyze_congestion(const BroadcastSchedule& schedule);

/// Sharded analyze_congestion: edges are partitioned across `threads`
/// std::thread workers by hash, each worker accounts its own edges over
/// the whole schedule, and the per-shard stats are merge()d.  Identical
/// result to the serial analysis (including the histogram and the mean,
/// bit for bit).  threads <= 0 picks hardware_concurrency().
[[nodiscard]] CongestionStats analyze_congestion_parallel(const FlatSchedule& schedule,
                                                          int threads = 0);

/// Outcome of the symbolic congestion analysis.
struct SymbolicCongestionReport {
  bool ok = false;
  std::string error;       ///< empty iff ok
  CongestionStats stats;   ///< bit-for-bit the stats of the expanded schedule
  std::uint64_t load_entries = 0;  ///< final overlay size (subcubes across dims)
};

/// Exact congestion analysis of a symbolic schedule straight from its
/// group structure — per-round max load, cross-round total loads, and
/// the full load histogram, identical to analyze_congestion() on the
/// expanded schedule (parity-tested) but polynomial in the group count
/// instead of 2^n.  Edges are sharded by flip dimension into disjoint
/// per-dimension subcube overlays (intersect/split refinement with
/// same-load coalescing); per-dimension stats are folded with
/// CongestionStats::merge, which closes the ROADMAP's streaming-
/// congestion item: no whole-schedule edge table ever exists.
/// `max_entries` caps the overlay (explicit error beyond).
[[nodiscard]] SymbolicCongestionReport analyze_congestion_symbolic(
    const SymbolicSchedule& schedule,
    std::uint64_t max_entries = std::uint64_t{1} << 24);

/// Minimum per-round edge capacity that would make the schedule feasible
/// (= max_edge_load_per_round).
[[nodiscard]] int required_edge_capacity(const FlatSchedule& schedule);
[[nodiscard]] int required_edge_capacity(const BroadcastSchedule& schedule);

/// Failure injection: returns a copy of the schedule with each call
/// independently dropped with probability `drop_rate`.  Used by tests to
/// confirm the validator detects incomplete broadcasts, and by benches
/// to measure coverage degradation.
[[nodiscard]] FlatSchedule drop_calls(const FlatSchedule& schedule, double drop_rate,
                                      std::mt19937_64& rng);
[[nodiscard]] BroadcastSchedule drop_calls(const BroadcastSchedule& schedule,
                                           double drop_rate, std::mt19937_64& rng);

/// Overlays `flows` random unicast calls (each a shortest path in Q_n
/// between random endpoints, truncated to `k` hops) on each round and
/// counts how many collide with the broadcast's edges — a proxy for the
/// "competing communication processes" contention of Section 5.
/// Returns collisions per round.
[[nodiscard]] std::vector<std::size_t> competing_traffic_collisions(
    const FlatSchedule& schedule, int n, int k, std::size_t flows,
    std::mt19937_64& rng);
[[nodiscard]] std::vector<std::size_t> competing_traffic_collisions(
    const BroadcastSchedule& schedule, int n, int k, std::size_t flows,
    std::mt19937_64& rng);

}  // namespace shc
