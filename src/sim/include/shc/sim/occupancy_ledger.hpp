// Dyadic occupancy ledger — sub-quadratic disjointness certification for
// families of subcubes.
//
// The symbolic validators must prove, per round, that the edge subcubes
// (and, under the Section-5 vertex-disjoint model, the vertex subcubes)
// claimed by concurrent call groups are pairwise disjoint.  The original
// pair sweep (find_overlapping_pairs over coarse per-group call volumes,
// then exact route-pattern analysis per candidate) is effectively
// quadratic in the number of concurrent groups: the paper's *designed*
// n = 63 spec (m = 10) produces rounds of ~8.4 M groups whose sweep
// exceeds any reasonable node budget.  The ledger replaces candidate
// *pairs* with dyadic *consumption* — the same argument the caller-tiling
// check already uses for frontier/ledger key matching:
//
//   * every per-hop edge subcube is claimed into the family of its flip
//     dimension (edges of different dimensions can never coincide, so
//     the families are independent shards);
//   * within a family, claims are consumed into buckets of an
//     open-addressing ledger (detail::PrefixTable) keyed by the bits
//     that every claim pins but whose values differ — two overlapping
//     subcubes agree on all commonly pinned bits, so bucketing on any
//     subset of them is exact and costs O(1) per claim;
//   * each bucket is then resolved by a dyadic split walk: branch on a
//     pinned dimension (preferring dims pinned by every claim with
//     differing values — a zero-duplication split), duplicate claims
//     that leave the dimension free into both halves, and stop at nodes
//     where no claim pins anything — two claims meeting in such a leaf is a
//     *double-claim*, an exact collision witness (the claiming group
//     indices plus the shared subcube).  Disjoint families never
//     enumerate a single pair, so the cost is O(total pieces · n)
//     instead of O(candidate pairs · pattern length).
//
// Every bucket carries a deterministic budget proportional to its claim
// count (a hard ceiling on the dyadic duplication factor), so adversarially
// interleaved families fail explicitly — and the verdict, witness, and
// budget diagnostics are identical for every thread count: buckets are
// formed serially in claim order, walked independently (sharded over the
// persistent WorkerPool when one is supplied), and the outcome with the
// smallest bucket index wins, exactly as the serial loop picks it.
//
// Claims are stored structure-of-arrays per family (contiguous prefix /
// mask / group arrays) and the walk's divide step runs as batch kernels
// over them with recycled per-thread index scratch — see
// subcube_batch.hpp for the layout rationale.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "shc/bits/audit.hpp"
#include "shc/bits/vertex.hpp"
#include "shc/obs/recorder.hpp"
#include "shc/sim/subcube.hpp"
#include "shc/sim/subcube_batch.hpp"
#include "shc/sim/worker_pool.hpp"

namespace shc {

/// Which machinery the symbolic validators use for per-round concurrent
/// group disjointness.  kLedger is the default; kPairSweep keeps the
/// original candidate-pair machinery alive for parity testing and
/// small-n cross-checking (reports are bit-for-bit identical — enforced
/// by tests — except a round holding both an edge and a vertex
/// collision on different group pairs, which fails at the same round
/// but may pick the other collision's message; the checking orders
/// differ).
enum class CollisionMode {
  kLedger,     ///< dyadic occupancy ledger, O(total pieces * n)
  kPairSweep,  ///< volume sweep + exact analysis per candidate pair
};

/// Verdict of one OccupancyLedger::check() run.
enum class OccupancyStatus {
  kDisjoint,        ///< no two claims share a vertex
  kDoubleClaim,     ///< a collision witness was found
  kBudgetExceeded,  ///< a bucket walk outran its deterministic budget
};

/// Result of a check, including the exact witness on kDoubleClaim.
struct OccupancyOutcome {
  OccupancyStatus status = OccupancyStatus::kDisjoint;
  int family = 0;            ///< family id of the witness / budget hit
  std::uint32_t group_a = 0; ///< first claimant (claim insertion order)
  std::uint32_t group_b = 0; ///< second claimant
  Subcube piece;             ///< a subcube both groups claim (witness)
  std::uint64_t budget = 0;  ///< the exhausted bucket budget (diagnostics)
  std::uint64_t nodes = 0;   ///< dyadic walk visits (valid when kDisjoint)
};

/// Multiset-of-claims disjointness checker.  Families are independent
/// shards (claims in different families are never compared); within the
/// validators, edge claims use their flip dimension as the family id and
/// vertex claims use n + 1, so edge collisions are discovered before
/// vertex collisions, matching the pair sweep's per-candidate order.
class OccupancyLedger {
 public:
  explicit OccupancyLedger(int n) : n_(n) { assert(n >= 1 && n <= kMaxCubeDim); }

  /// Registers the subcube (prefix, mask) as claimed by `group` in
  /// `family` (0 <= family; families are checked in ascending order).
  void claim(int family, Vertex prefix, Vertex mask, std::uint32_t group) {
    assert((prefix & mask) == 0);
    if (families_.size() <= static_cast<std::size_t>(family)) {
      families_.resize(static_cast<std::size_t>(family) + 1);
    }
    FamilyClaims& f = families_[static_cast<std::size_t>(family)];
    f.prefix.push_back(prefix);
    f.mask.push_back(mask);
    f.group.push_back(group);
    ++claims_;
  }

  [[nodiscard]] std::uint64_t num_claims() const noexcept { return claims_; }

  /// Drops all claims but keeps the family/bucket capacity for the next
  /// round (the validators recycle one ledger across rounds).
  void clear() {
    for (auto& f : families_) {
      f.prefix.clear();
      f.mask.clear();
      f.group.clear();
    }
    claims_ = 0;
  }

  /// Resolves every family.  Deterministic for any `pool`/thread count:
  /// bucket formation is serial, each bucket's walk is independent with
  /// a budget of `bucket_budget_base + budget_per_claim * bucket_claims`,
  /// and the outcome with the smallest (family, bucket) index wins.
  [[nodiscard]] OccupancyOutcome check(
      WorkerPool* pool, std::uint64_t budget_per_claim,
      std::uint64_t bucket_budget_base = 4096) const {
    SHC_TRACE_SCOPE("ledger_check");
    SHC_TRACE_COUNTER("ledger_claims", claims_);
    // ---- bucket formation (serial, deterministic) --------------------
    struct Bucket {
      int family = 0;
      std::vector<std::uint32_t> ids;  ///< indices into families_[family]
    };
    std::vector<Bucket> buckets;
    detail::PrefixTable keys;
    for (std::size_t fam = 0; fam < families_.size(); ++fam) {
      const FamilyClaims& claims = families_[fam];
      if (claims.size() < 2) continue;
      // Bits every claim pins with differing values: bucketing on them
      // is exact (overlapping claims agree on all commonly pinned bits).
      const batch::MaskScan scan =
          batch::scan_all(claims.prefix.data(), claims.mask.data(),
                          claims.size());
      Vertex varying =
          mask_low(n_) & ~scan.mask_or & (scan.pref_or ^ scan.pref_and);
      Vertex bucket_bits = 0;
      for (int b = 0; b < kMaxBucketBits && varying != 0; ++b) {
        const Vertex bit = varying & (~varying + 1);
        bucket_bits |= bit;
        varying &= ~bit;
      }
      keys.reset();  // recycled across families (capacity kept)
      for (std::size_t i = 0; i < claims.size(); ++i) {
        const Vertex key = claims.prefix[i] & bucket_bits;
        std::size_t at;
        if (const std::uint64_t* v = keys.find(key)) {
          at = static_cast<std::size_t>(*v);
        } else {
          at = buckets.size();
          keys.add(key, static_cast<std::uint64_t>(at));
          buckets.push_back({static_cast<int>(fam), {}});
        }
        buckets[at].ids.push_back(static_cast<std::uint32_t>(i));
      }
#if SHC_AUDIT_ENABLED
      // Bucket partition exactness: every claim of the family must land
      // in exactly one bucket — the walks see each claim once, or the
      // disjointness verdict is void.
      std::uint64_t bucketed = 0;
      for (const Bucket& bk : buckets) {
        if (bk.family == static_cast<int>(fam)) bucketed += bk.ids.size();
      }
      SHC_AUDIT_CHECK(bucketed == claims.size(),
                      "OccupancyLedger buckets must partition the family's "
                      "claims exactly");
#endif
    }

    // ---- bucket walks (sharded; smallest bucket index wins) ----------
    std::atomic<std::uint64_t> total_nodes{0};
    std::mutex best_m;
    std::size_t best_index = buckets.size();
    OccupancyOutcome best;
    auto walk_bucket = [&](std::size_t bi) {
      // Per-thread recycled index scratch: a walk is at most 64 deep
      // but the designed specs resolve millions of buckets per round,
      // so per-node (or even per-bucket) vectors were pure churn.
      static thread_local batch::IdVecPool scratch;
      Bucket& bucket = buckets[bi];
      const FamilyClaims& claims =
          families_[static_cast<std::size_t>(bucket.family)];
      const std::uint64_t budget =
          bucket_budget_base +
          budget_per_claim * static_cast<std::uint64_t>(bucket.ids.size());
      DyadicWalk walk{claims.prefix.data(), claims.mask.data(), scratch,
                      budget, 0, false, false, 0, 0};
      walk.run(bucket.ids, mask_low(n_));
      total_nodes.fetch_add(walk.nodes, std::memory_order_relaxed);
      if (!walk.found && !walk.budget_hit) return false;
      OccupancyOutcome out;
      if (walk.budget_hit) {
        out.status = OccupancyStatus::kBudgetExceeded;
        out.family = bucket.family;
        out.budget = budget;
      } else {
        out.status = OccupancyStatus::kDoubleClaim;
        out.family = bucket.family;
        out.group_a = claims.group[walk.hit_a];
        out.group_b = claims.group[walk.hit_b];
        const auto piece = subcube_intersection(
            {claims.prefix[walk.hit_a], claims.mask[walk.hit_a]},
            {claims.prefix[walk.hit_b], claims.mask[walk.hit_b]});
        assert(piece.has_value());
        SHC_AUDIT_CHECK(
            piece.has_value() &&
                subcubes_overlap(
                    {claims.prefix[walk.hit_a], claims.mask[walk.hit_a]},
                    {claims.prefix[walk.hit_b], claims.mask[walk.hit_b]}),
            "OccupancyLedger double-claim witnesses must name two "
            "genuinely overlapping claims");
        if (piece) {
          SHC_AUDIT_CHECK(
              subcube_contains({claims.prefix[walk.hit_a],
                                claims.mask[walk.hit_a]},
                               *piece) &&
                  subcube_contains({claims.prefix[walk.hit_b],
                                    claims.mask[walk.hit_b]},
                                   *piece),
              "OccupancyLedger witness piece must be contained in both "
              "claims");
          out.piece = *piece;
        }
      }
      std::lock_guard<std::mutex> lock(best_m);
      if (bi < best_index) {
        best_index = bi;
        best = out;
      }
      return true;
    };

    if (pool == nullptr || pool->workers() <= 1 || buckets.size() < 2 ||
        buckets.size() >
            static_cast<std::size_t>(std::numeric_limits<int>::max())) {
      for (std::size_t bi = 0; bi < buckets.size(); ++bi) {
        if (walk_bucket(bi)) break;  // serial: the first outcome is final
      }
    } else {
      pool->run(static_cast<int>(buckets.size()),
                [&](int bi) { (void)walk_bucket(static_cast<std::size_t>(bi)); });
    }
    if (best_index < buckets.size()) return best;
    OccupancyOutcome ok;
    ok.nodes = total_nodes.load(std::memory_order_relaxed);
    return ok;
  }

 private:
  static constexpr int kMaxBucketBits = 16;

  /// One family's claims, structure-of-arrays: parallel prefix / mask /
  /// group arrays (the batch kernels' native layout).
  struct FamilyClaims {
    std::vector<Vertex> prefix;
    std::vector<Vertex> mask;
    std::vector<std::uint32_t> group;

    [[nodiscard]] std::size_t size() const noexcept { return prefix.size(); }
  };

  /// Divide-on-pinned-dimension descent over one bucket.  A node where
  /// no claim pins a remaining dimension holds claims that all cover the
  /// node's whole subspace: two of them is a double-claim.  Claims free
  /// on the branch dimension are split into both halves (the dyadic
  /// split); partition order is stable (batch::partition_ids), so
  /// hit_a/hit_b are the claims with the smallest insertion indices —
  /// deterministic everywhere.
  struct DyadicWalk {
    const Vertex* cprefix;
    const Vertex* cmask;
    batch::IdVecPool& scratch;
    std::uint64_t budget;
    std::uint64_t nodes;
    bool found;
    bool budget_hit;
    std::uint32_t hit_a, hit_b;

    void run(std::vector<std::uint32_t>& ids, Vertex remaining) {
      if (found || budget_hit || ids.size() <= 1) return;
      if (budget < ids.size()) {
        budget_hit = true;
        return;
      }
      budget -= ids.size();
      nodes += ids.size();

      const batch::MaskScan scan =
          batch::scan_ids(ids.data(), ids.size(), cprefix, cmask);
      Vertex pinned_any = remaining & ~scan.mask_and;
      // Dims every claim pins to the same value carry no overlap
      // information — drop them from `remaining` without spending a
      // branch.
      const Vertex pinned_all = remaining & ~scan.mask_or;
      const Vertex diff = (scan.pref_or ^ scan.pref_and) & remaining;
      remaining &= ~(pinned_all & ~diff);
      pinned_any &= remaining;
      if (pinned_any == 0) {
        hit_a = ids[0];
        hit_b = ids[1];
        found = true;
        return;
      }
      // Branch preference: a dim pinned by *every* claim with differing
      // values splits with zero duplication (for dyadic tilings this
      // mirrors the tiling's own generation tree, making acceptance
      // linear); next, a dim whose pinned values disagree; highest
      // pinned dim as the last resort.
      Vertex cand = pinned_all & diff;
      if (cand == 0) cand = pinned_any & diff;
      if (cand == 0) cand = pinned_any;
      const int d = 63 - __builtin_clzll(cand);
      const Vertex b = Vertex{1} << d;
      std::vector<std::uint32_t> lo = scratch.acquire();
      std::vector<std::uint32_t> hi = scratch.acquire();
      batch::partition_ids(ids.data(), ids.size(), cprefix, cmask, b, lo, hi);
      ids.clear();
      run(lo, remaining & ~b);
      run(hi, remaining & ~b);
      scratch.release(std::move(lo));
      scratch.release(std::move(hi));
    }
  };

  int n_;
  std::vector<FamilyClaims> families_;
  std::uint64_t claims_ = 0;
};

}  // namespace shc
