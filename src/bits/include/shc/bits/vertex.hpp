// Vertex representation for binary n-cubes and their subgraphs.
//
// Throughout the library a vertex of the binary n-cube Q_n is an n-bit
// string u = u_n u_{n-1} ... u_1, packed into a std::uint64_t with bit
// u_i stored at machine-bit position i-1.  Dimensions are 1-based to
// match the paper (Fujita & Farley, DAM 127 (2003) 431-446): dimension 1
// is the least significant bit, dimension n the most significant.
//
// All operations are O(1); the implicit representation supports n <= 63.
#pragma once

#include <cassert>
#include <cstdint>

namespace shc {

/// A vertex of Q_n, n <= 63.  Bit i-1 of the word holds coordinate u_i.
using Vertex = std::uint64_t;

/// 1-based dimension index into a vertex bit string.
using Dim = int;

/// Maximum cube dimension representable by Vertex.
inline constexpr int kMaxCubeDim = 63;

/// Single-bit mask for dimension `i` (1-based).  Pre: 1 <= i <= 63.
[[nodiscard]] constexpr Vertex dim_bit(Dim i) noexcept {
  return Vertex{1} << (i - 1);
}

/// Mask selecting dimensions 1..m (the low-order m coordinates).
/// Pre: 0 <= m <= 63.  mask_low(0) == 0.
[[nodiscard]] constexpr Vertex mask_low(int m) noexcept {
  return (m == 0) ? Vertex{0} : ((Vertex{1} << m) - 1);
}

/// Mask selecting the half-open dimension window (lo, hi], i.e. bits
/// lo+1 .. hi.  Pre: 0 <= lo <= hi <= 63.
[[nodiscard]] constexpr Vertex mask_window(int lo, int hi) noexcept {
  return mask_low(hi) & ~mask_low(lo);
}

/// The neighbor of `u` across dimension `i` in Q_n: flips coordinate u_i.
/// This is the paper's operator "⊕_i u".
[[nodiscard]] constexpr Vertex flip(Vertex u, Dim i) noexcept {
  return u ^ dim_bit(i);
}

/// Coordinate u_i of vertex `u` (0 or 1).
[[nodiscard]] constexpr int coord(Vertex u, Dim i) noexcept {
  return static_cast<int>((u >> (i - 1)) & 1U);
}

/// Extracts the window bits (lo, hi] of `u`, right-aligned: the result's
/// bit j-1 equals coordinate u_{lo+j}.  Used to read labeling windows.
[[nodiscard]] constexpr Vertex window_value(Vertex u, int lo, int hi) noexcept {
  return (u >> lo) & mask_low(hi - lo);
}

/// Number of vertices of Q_n.  Pre: 0 <= n <= 63.
[[nodiscard]] constexpr std::uint64_t cube_order(int n) noexcept {
  return std::uint64_t{1} << n;
}

/// Hamming weight (number of set coordinates).
[[nodiscard]] constexpr int weight(Vertex u) noexcept {
  return __builtin_popcountll(u);
}

/// Hamming distance between two vertices of the same cube; equals the
/// graph distance dist_{Q_n}(u, v).
[[nodiscard]] constexpr int hamming_distance(Vertex u, Vertex v) noexcept {
  return weight(u ^ v);
}

/// True iff `u` and `v` differ in exactly one coordinate (adjacent in Q_n).
[[nodiscard]] constexpr bool cube_adjacent(Vertex u, Vertex v) noexcept {
  Vertex d = u ^ v;
  return d != 0 && (d & (d - 1)) == 0;
}

/// The unique dimension in which adjacent vertices differ.
/// Pre: cube_adjacent(u, v).
[[nodiscard]] constexpr Dim differing_dim(Vertex u, Vertex v) noexcept {
  return __builtin_ctzll(u ^ v) + 1;
}

}  // namespace shc
