// Overflow-checked 64-bit counter arithmetic.
//
// Schedule counters reach the representation limit at n = 63: a full
// Broadcast_k run places 2^63 - 1 calls and informs 2^63 vertices, and a
// single multiplication (frontier size x path bound, histogram count x
// subcube size) silently wraps long before an assert would notice.  All
// round/total call accounting therefore goes through these helpers: on
// overflow they return false and leave the accumulator untouched, so the
// caller can surface an explicit error instead of certifying garbage.
#pragma once

#include <cstdint>

namespace shc {

/// out = a * b; returns false (out unchanged) on 64-bit overflow.
[[nodiscard]] inline bool checked_mul_u64(std::uint64_t a, std::uint64_t b,
                                          std::uint64_t& out) noexcept {
  std::uint64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) return false;
  out = r;
  return true;
}

/// out = a + b; returns false (out unchanged) on 64-bit overflow.
[[nodiscard]] inline bool checked_add_u64(std::uint64_t a, std::uint64_t b,
                                          std::uint64_t& out) noexcept {
  std::uint64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) return false;
  out = r;
  return true;
}

/// acc += v; returns false (acc unchanged) on overflow.
[[nodiscard]] inline bool checked_acc_u64(std::uint64_t& acc,
                                          std::uint64_t v) noexcept {
  return checked_add_u64(acc, v, acc);
}

/// out = 2^e; returns false for e >= 64.
[[nodiscard]] inline bool checked_shift_u64(unsigned e, std::uint64_t& out) noexcept {
  if (e >= 64) return false;
  out = std::uint64_t{1} << e;
  return true;
}

/// acc += v, saturating at UINT64_MAX; returns false when it saturated.
/// For diagnostics counters (stats, effort totals) where a pinned
/// ceiling is more useful than refusing the run — verdict-bearing
/// counters use checked_acc_u64 and fail explicitly instead.
inline bool saturating_acc_u64(std::uint64_t& acc, std::uint64_t v) noexcept {
  std::uint64_t r = 0;
  if (__builtin_add_overflow(acc, v, &r)) {
    acc = ~std::uint64_t{0};
    return false;
  }
  acc = r;
  return true;
}

}  // namespace shc
