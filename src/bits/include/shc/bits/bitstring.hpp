// Formatting and parsing of vertex bit strings, plus small combinatorial
// helpers (gray codes, subcube enumeration) used by tests and tools.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "shc/bits/vertex.hpp"

namespace shc {

/// Renders `u` as the paper's notation u_n u_{n-1} ... u_1 (most
/// significant coordinate first), e.g. to_bitstring(0b0011, 4) == "0011".
[[nodiscard]] std::string to_bitstring(Vertex u, int n);

/// Parses a bit string in the same orientation ("0011" -> 0b0011).
/// Returns nullopt on empty input, length > 63, or non-binary characters.
[[nodiscard]] std::optional<Vertex> parse_bitstring(std::string_view s);

/// The i-th vertex of the binary-reflected Gray code on n bits; walking
/// i = 0 .. 2^n - 1 traverses a Hamiltonian cycle of Q_n.
[[nodiscard]] constexpr Vertex gray_code(std::uint64_t i) noexcept {
  return i ^ (i >> 1);
}

/// Inverse of gray_code.
[[nodiscard]] constexpr std::uint64_t gray_rank(Vertex g) noexcept {
  std::uint64_t i = g;
  for (int shift = 1; shift < 64; shift <<= 1) i ^= i >> shift;
  return i;
}

/// Enumerates all vertices of the subcube of Q_n obtained by fixing the
/// coordinates outside `free_mask` to their values in `base`.  The result
/// has 2^popcount(free_mask) vertices, in lexicographic order of the free
/// bits.  Pre: popcount(free_mask) <= 20 (guards accidental blow-up).
[[nodiscard]] std::vector<Vertex> enumerate_subcube(Vertex base, Vertex free_mask);

/// All single-dimension neighbors of `u` in Q_n, dimensions 1..n in order.
[[nodiscard]] std::vector<Vertex> cube_neighbors(Vertex u, int n);

/// ceil(log2(x)) for x >= 1; the minimum broadcast time of an x-vertex
/// network under single-reception models.
[[nodiscard]] constexpr int ceil_log2(std::uint64_t x) noexcept {
  int r = 0;
  std::uint64_t p = 1;
  while (p < x) {
    p <<= 1;
    ++r;
  }
  return r;
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr int floor_log2(std::uint64_t x) noexcept {
  return 63 - __builtin_clzll(x);
}

/// ceil(a / b) for positive integers.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// ceil(x^(1/k)) for x >= 0, k >= 1, computed exactly with integer
/// arithmetic (no floating-point edge cases near perfect powers).
[[nodiscard]] int ceil_root(std::int64_t x, int k) noexcept;

/// r^k with saturation at int64 max (enough for bound tables).
[[nodiscard]] std::int64_t ipow(std::int64_t r, int k) noexcept;

}  // namespace shc
