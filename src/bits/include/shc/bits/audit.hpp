// SHC_AUDIT — the compile-time invariant auditor.
//
// The symbolic engines' verdicts are proofs, and the proofs lean on
// internal contracts the public test suite can only probe from the
// outside: the frontier's coalesce postconditions, the occupancy
// ledger's bucket partition, the knowledge partition's canonical order,
// the worker pool's generation discipline.  Building with -DSHC_AUDIT
// (CMake option SHC_AUDIT) compiles those contracts in as hard checks:
// a violation aborts with the failed condition, the contract's name,
// and the source location — turning "the invariant silently broke three
// PRs ago" into an immediate CI failure.  The checks are O(small) per
// operation by design (expensive sweeps are capped), but they are NOT
// free: audit builds are for the small-n parity suites (CI's
// audit+ASan leg), never for production certification runs.
//
// Usage:
//   SHC_AUDIT_CHECK(cond, "what contract this protects");
//   #if SHC_AUDIT_ENABLED
//     ... audit-only bookkeeping / sweeps ...
//   #endif
//
// When SHC_AUDIT is off (the default), SHC_AUDIT_CHECK compiles to
// nothing and evaluates nothing.
#pragma once

#if defined(SHC_AUDIT)

#include <cstdio>
#include <cstdlib>

#define SHC_AUDIT_ENABLED 1

namespace shc::detail {

[[noreturn]] inline void audit_fail(const char* cond, const char* what,
                                    const char* file, int line) noexcept {
  std::fprintf(stderr,
               "SHC_AUDIT violation: %s\n  contract: %s\n  at %s:%d\n", cond,
               what, file, line);
  std::abort();
}

}  // namespace shc::detail

#define SHC_AUDIT_CHECK(cond, what)                                   \
  ((cond) ? static_cast<void>(0)                                      \
          : ::shc::detail::audit_fail(#cond, (what), __FILE__, __LINE__))

#else  // !defined(SHC_AUDIT)

#define SHC_AUDIT_ENABLED 0
#define SHC_AUDIT_CHECK(cond, what) static_cast<void>(0)

#endif
