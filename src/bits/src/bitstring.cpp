#include "shc/bits/bitstring.hpp"

#include <cassert>
#include <limits>

namespace shc {

std::string to_bitstring(Vertex u, int n) {
  assert(n >= 1 && n <= kMaxCubeDim);
  std::string s(static_cast<std::size_t>(n), '0');
  for (int i = 1; i <= n; ++i) {
    if (coord(u, i) != 0) s[static_cast<std::size_t>(n - i)] = '1';
  }
  return s;
}

std::optional<Vertex> parse_bitstring(std::string_view s) {
  if (s.empty() || s.size() > static_cast<std::size_t>(kMaxCubeDim)) return std::nullopt;
  Vertex u = 0;
  for (char c : s) {
    if (c != '0' && c != '1') return std::nullopt;
    u = (u << 1) | static_cast<Vertex>(c - '0');
  }
  return u;
}

std::vector<Vertex> enumerate_subcube(Vertex base, Vertex free_mask) {
  const int f = weight(free_mask);
  assert(f <= 20 && "subcube enumeration guarded to 2^20 vertices");
  // Collect the positions (0-based) of the free coordinates.
  std::vector<int> pos;
  pos.reserve(static_cast<std::size_t>(f));
  for (int b = 0; b < 64; ++b) {
    if ((free_mask >> b) & 1U) pos.push_back(b);
  }
  std::vector<Vertex> out;
  out.reserve(std::size_t{1} << f);
  const Vertex fixed = base & ~free_mask;
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << f); ++x) {
    Vertex u = fixed;
    for (int j = 0; j < f; ++j) {
      if ((x >> j) & 1U) u |= Vertex{1} << pos[static_cast<std::size_t>(j)];
    }
    out.push_back(u);
  }
  return out;
}

std::vector<Vertex> cube_neighbors(Vertex u, int n) {
  assert(n >= 1 && n <= kMaxCubeDim);
  std::vector<Vertex> nb;
  nb.reserve(static_cast<std::size_t>(n));
  for (Dim i = 1; i <= n; ++i) nb.push_back(flip(u, i));
  return nb;
}

int ceil_root(std::int64_t x, int k) noexcept {
  assert(x >= 0 && k >= 1);
  if (k == 1 || x <= 1) return static_cast<int>(x);
  // Smallest r with r^k >= x; r <= x so a doubling + binary search fits.
  std::int64_t lo = 1, hi = 2;
  while (ipow(hi, k) < x) hi <<= 1;
  while (lo < hi) {
    std::int64_t mid = lo + (hi - lo) / 2;
    if (ipow(mid, k) >= x) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<int>(lo);
}

std::int64_t ipow(std::int64_t r, int k) noexcept {
  std::int64_t acc = 1;
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < k; ++i) {
    if (r != 0 && acc > kMax / r) return kMax;
    acc *= r;
  }
  return acc;
}

}  // namespace shc
