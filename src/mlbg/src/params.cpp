#include "shc/mlbg/params.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "shc/bits/bitstring.hpp"

namespace shc {
namespace {

/// ceil(m^(i/k)) computed exactly: the smallest x >= 1 with x^k >= m^i.
int ceil_pow_frac(int m, int i, int k) {
  assert(m >= 1 && i >= 0 && k >= 1 && i <= k);
  const std::int64_t target = ipow(m, i);
  int x = 1;
  while (ipow(x, k) < target) ++x;
  return x;
}

/// Cost of one level: cross dimensions split among the Lemma-2 label
/// count of the window.
int level_cost(int win, int span) {
  assert(win >= 1 && span >= 0);
  return static_cast<int>(
      ceil_div(span, static_cast<std::int64_t>(lemma2_num_labels(win))));
}

}  // namespace

int theorem5_core(int n) noexcept {
  assert(n >= 2);
  const int m = ceil_root(2 * n + 4, 2) - 2;
  return std::clamp(m, 1, n - 1);
}

std::vector<int> theorem7_cuts(int n, int k) {
  assert(n > k && k >= 2);
  if (k == 2) return {theorem5_core(n)};
  const int m = n - k;
  std::vector<int> cuts(static_cast<std::size_t>(k) - 1);
  for (int i = 1; i <= k - 1; ++i) {
    cuts[static_cast<std::size_t>(i) - 1] = ceil_pow_frac(m, i, k) + i - 1;
  }
  // Repair pass: strictly increasing inside [1, n-1].  The paper's
  // choice already satisfies this for n >> k; small n needs nudging.
  cuts.front() = std::max(cuts.front(), 1);
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    cuts[i] = std::max(cuts[i], cuts[i - 1] + 1);
  }
  cuts.back() = std::min(cuts.back(), n - 1);
  for (std::size_t i = cuts.size() - 1; i > 0; --i) {
    cuts[i - 1] = std::min(cuts[i - 1], cuts[i] - 1);
  }
  assert(cuts.front() >= 1);
  return cuts;
}

int realized_max_degree(int n, const std::vector<int>& cuts) noexcept {
  assert(!cuts.empty() && cuts.back() < n);
  int degree = cuts.front();
  int prev = 0;
  for (std::size_t t = 0; t < cuts.size(); ++t) {
    const int cur = cuts[t];
    const int next = (t + 1 < cuts.size()) ? cuts[t + 1] : n;
    degree += level_cost(cur - prev, next - cur);
    prev = cur;
  }
  return degree;
}

std::vector<int> optimal_cuts(int n, int k) {
  assert(n > k && k >= 2 && n <= 63);
  const int levels = k - 1;
  constexpr int kInf = std::numeric_limits<int>::max() / 4;

  // best[t][prev][cur] = min cost of levels t..levels-1 given window
  // (prev, cur]; level indices 0-based, n_k = n fixed.
  const std::size_t side = static_cast<std::size_t>(n) + 1;
  auto idx = [side](int t, int prev, int cur) {
    return (static_cast<std::size_t>(t) * side + static_cast<std::size_t>(prev)) * side +
           static_cast<std::size_t>(cur);
  };
  std::vector<int> best(static_cast<std::size_t>(levels) * side * side, -1);

  auto solve = [&](auto&& self, int t, int prev, int cur) -> int {
    int& memo = best[idx(t, prev, cur)];
    if (memo >= 0) return memo;
    if (t == levels - 1) {
      return memo = level_cost(cur - prev, n - cur);
    }
    int value = kInf;
    // Leave room for the remaining strictly increasing cuts.
    const int hi = n - (levels - 1 - t);
    for (int next = cur + 1; next <= hi; ++next) {
      value = std::min(value,
                       level_cost(cur - prev, next - cur) + self(self, t + 1, cur, next));
    }
    return memo = value;
  };

  int best_total = kInf;
  int best_first = 1;
  for (int c1 = 1; c1 <= n - levels; ++c1) {
    const int total = c1 + solve(solve, 0, 0, c1);
    if (total < best_total) {
      best_total = total;
      best_first = c1;
    }
  }

  // Reconstruct the argmin chain.
  std::vector<int> cuts;
  cuts.reserve(static_cast<std::size_t>(levels));
  cuts.push_back(best_first);
  int prev = 0;
  for (int t = 0; t < levels - 1; ++t) {
    const int cur = cuts.back();
    const int want = solve(solve, t, prev, cur);
    const int hi = n - (levels - 1 - t);
    for (int next = cur + 1; next <= hi; ++next) {
      if (level_cost(cur - prev, next - cur) + solve(solve, t + 1, cur, next) == want) {
        cuts.push_back(next);
        break;
      }
    }
    assert(static_cast<int>(cuts.size()) == t + 2 && "reconstruction must advance");
    prev = cur;
  }
  assert(realized_max_degree(n, cuts) == best_total);
  return cuts;
}

SparseHypercubeSpec design_sparse_hypercube(int n, int k) {
  return SparseHypercubeSpec::construct(n, optimal_cuts(n, k));
}

SparseHypercubeSpec design_best_sparse_hypercube(int n, int k_max) {
  assert(n > 2 && k_max >= 2);
  int best_degree = std::numeric_limits<int>::max();
  std::vector<int> best_cuts;
  for (int j = 2; j <= k_max && j < n; ++j) {
    const auto cuts = optimal_cuts(n, j);
    const int degree = realized_max_degree(n, cuts);
    // Strict improvement keeps the smallest k (shortest calls) on ties.
    if (degree < best_degree) {
      best_degree = degree;
      best_cuts = cuts;
    }
  }
  return SparseHypercubeSpec::construct(n, best_cuts);
}

}  // namespace shc
