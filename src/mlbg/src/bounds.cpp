#include "shc/mlbg/bounds.hpp"

#include <cassert>

#include "shc/bits/bitstring.hpp"

namespace shc {

int theorem1_k_threshold(std::uint64_t N) noexcept {
  assert(N >= 1);
  return 2 * ceil_log2((N + 2) / 3 + ((N + 2) % 3 != 0 ? 1 : 0));
}

int counting_lower_bound(int n, int k) noexcept {
  assert(n >= 1 && k >= 1);
  for (int delta = 1;; ++delta) {
    // Vertices within distance k of the source, excluding the source:
    // delta * sum_{i=0}^{k-1} (delta-1)^i.
    std::int64_t reach = 0;
    std::int64_t term = delta;
    for (int i = 0; i < k && reach < n; ++i) {
      reach += term;
      term *= (delta - 1);
    }
    if (reach >= n) return delta;
  }
}

int lower_bound_max_degree(int n, int k) noexcept {
  assert(n >= 1 && k >= 1);
  if (k == 1) return n;  // the source's n calls all go to direct neighbors
  if (k <= 4) return ceil_root(n, k);
  // Theorem 3: Delta >= 3 and n <= 3((Delta-1)^k - 1).
  int delta = 3;
  while (3 * (ipow(delta - 1, k) - 1) < n) ++delta;
  return delta;
}

int theorem5_upper(int n) noexcept {
  assert(n >= 1);
  return 2 * ceil_root(2 * n + 4, 2) - 4;
}

int theorem7_upper(int n, int k) noexcept {
  assert(n > k && k >= 2);
  return (2 * k - 1) * ceil_root(n, k) - k;
}

int corollary1_upper(int n) noexcept {
  assert(n >= 2);
  return 4 * ceil_log2(static_cast<std::uint64_t>(n)) - 2;
}

int diameter_upper(int n, int k) noexcept { return k * n; }

}  // namespace shc
