#include "shc/mlbg/symbolic_broadcast.hpp"

#include <stdexcept>

#include "shc/mlbg/params.hpp"

namespace shc {

SparseHypercubeSpec symbolic_showcase_spec(int n, int k) {
  return n <= 48 ? design_sparse_hypercube(n, k)
                 : SparseHypercubeSpec::construct_base(n, 6);
}

SymbolicSchedule make_symbolic_broadcast_schedule(const SparseHypercubeSpec& spec,
                                                  Vertex source) {
  SymbolicScheduleBuilder builder(source, spec.n());
  emit_broadcast_rounds_symbolic(spec, source, builder);
  return std::move(builder).take();
}

SymbolicCertification certify_broadcast_symbolic(const SparseHypercubeSpec& spec,
                                                 Vertex source,
                                                 const ValidationOptions& opt,
                                                 const SymbolicCheckOptions& sopt) {
  if (sopt.threads <= 0) {
    throw std::invalid_argument(
        "certify_broadcast_symbolic: threads must be >= 1 (got " +
        std::to_string(sopt.threads) + ")");
  }
  SymbolicCertification cert;
  if (source >= spec.num_vertices()) {
    // Same report the other validators give; guarded here so the
    // producer's explicit throw never preempts the sink's verdict.
    cert.report.ok = false;
    cert.report.error = "source out of range";
    return cert;
  }
  const SpecView view(spec);
  SymbolicBroadcastValidator<SpecView> sink(view, source, opt, sopt);
  try {
    cert.producer =
        emit_broadcast_rounds_symbolic(spec, source, sink, sopt.max_frontier_subcubes);
  } catch (const std::exception& e) {
    cert.checks = sink.stats();
    if (!sink.aborted()) {
      // Producer-side failure (caps, pathological splits): surface it
      // as a failed report rather than an escaped exception.
      cert.report.ok = false;
      cert.report.error = std::string("symbolic producer: ") + e.what();
      return cert;
    }
    // The sink failed first and the producer tripped over the abort —
    // fall through to the sink's own report.
  }
  cert.report = sink.finish();
  cert.checks = sink.stats();
  return cert;
}

}  // namespace shc
