#include "shc/mlbg/analysis.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "shc/bits/bitstring.hpp"

namespace shc {

std::vector<Vertex> greedy_route(const SparseHypercubeSpec& spec, Vertex u, Vertex v) {
  assert(u < spec.num_vertices() && v < spec.num_vertices());
  std::vector<Vertex> walk{u};
  Vertex cur = u;
  while (cur != v) {
    const Dim d = static_cast<Dim>(63 - __builtin_clzll(cur ^ v)) + 1;
    const std::vector<Vertex> leg = route_flip(spec, cur, d);
    // route_flip only disturbs dimensions below d and fixes dimension d,
    // so the highest differing dimension strictly decreases.
    walk.insert(walk.end(), leg.begin() + 1, leg.end());
    cur = leg.back();
    assert((cur >> (d - 1)) == (v >> (d - 1)));
  }
  return walk;
}

RoutingStats sample_routing(const SparseHypercubeSpec& spec, std::uint64_t pairs,
                            std::uint64_t seed) {
  RoutingStats stats;
  stats.footnote_bound = spec.k() * spec.n();
  const Vertex mask = mask_low(spec.n());
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL + 1;
  double stretch_sum = 0.0;
  for (std::uint64_t p = 0; p < pairs; ++p) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const Vertex a = (x >> 5) & mask;
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    Vertex b = (x >> 7) & mask;
    if (a == b) b = a ^ 1;
    const auto walk = greedy_route(spec, a, b);
    const int hops = static_cast<int>(walk.size()) - 1;
    const int hamming = hamming_distance(a, b);
    ++stats.pairs;
    stats.total_hops += static_cast<std::uint64_t>(hops);
    stats.max_hops = std::max(stats.max_hops, hops);
    const double stretch = static_cast<double>(hops) / static_cast<double>(hamming);
    stretch_sum += stretch;
    stats.max_stretch = std::max(stats.max_stretch, stretch);
  }
  stats.mean_stretch = stats.pairs ? stretch_sum / static_cast<double>(stats.pairs) : 0.0;
  stats.within_bound = stats.max_hops <= stats.footnote_bound;
  return stats;
}

std::vector<std::uint64_t> dimension_edge_profile(const SparseHypercubeSpec& spec) {
  const int n = spec.n();
  std::vector<std::uint64_t> profile(static_cast<std::size_t>(n), 0);
  for (Dim i = 1; i <= n; ++i) {
    const int t = spec.level_of_dim(i);
    if (t < 0) {
      profile[static_cast<std::size_t>(i - 1)] = cube_order(n - 1);
      continue;
    }
    const ConstructionLevel& lv = spec.levels()[static_cast<std::size_t>(t)];
    const Label owner = lv.dim_owner[static_cast<std::size_t>(i - lv.dim_lo - 1)];
    const std::uint64_t class_size = lv.labeling.class_sizes()[owner];
    const int window = lv.win_hi - lv.win_lo;
    // Vertices carrying the owner label: class_size * 2^(n - window);
    // each dimension-i edge joins two of them.
    profile[static_cast<std::size_t>(i - 1)] = class_size * cube_order(n - window) / 2;
  }
  return profile;
}

BroadcastTreeStats analyze_broadcast_tree(const FlatSchedule& schedule) {
  BroadcastTreeStats stats;
  std::unordered_map<Vertex, std::size_t> fanout;
  fanout[schedule.source] = 0;
  std::uint64_t informed = 1;
  for (int t = 0; t < schedule.num_rounds(); ++t) {
    for (const FlatSchedule::CallView c : schedule.round(t)) {
      ++fanout[c.caller()];
      fanout.emplace(c.receiver(), 0);
      ++informed;
      stats.height = t + 1;
    }
    stats.informed_per_round.push_back(informed);
  }
  stats.vertices = fanout.size();
  for (const auto& [v, f] : fanout) stats.max_fanout = std::max(stats.max_fanout, f);
  stats.fanout_histogram.assign(stats.max_fanout + 1, 0);
  for (const auto& [v, f] : fanout) ++stats.fanout_histogram[f];
  return stats;
}

BroadcastTreeStats analyze_broadcast_tree(const BroadcastSchedule& schedule) {
  return analyze_broadcast_tree(FlatSchedule::from_legacy(schedule));
}

}  // namespace shc
