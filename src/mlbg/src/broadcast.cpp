#include "shc/mlbg/broadcast.hpp"

#include <cassert>
#include <stdexcept>

#include "shc/sim/streaming_validator.hpp"

namespace shc {

std::vector<Vertex> route_flip(const SparseHypercubeSpec& spec, Vertex u, Dim i) {
  assert(i >= 1 && i <= spec.n());
  if (spec.has_edge_dim(u, i)) return {u, flip(u, i)};

  const int t = spec.level_of_dim(i);
  assert(t >= 0 && "core dimensions always have edges");
  const ConstructionLevel& lv = spec.levels()[static_cast<std::size_t>(t)];
  const Label owner = lv.dim_owner[static_cast<std::size_t>(i - lv.dim_lo - 1)];

  // Condition A: within u's window cube some neighbor (not u itself —
  // otherwise the edge would exist) carries the owner label.
  const Vertex win = window_value(u, lv.win_lo, lv.win_hi);
  const Dim rel = lv.labeling.flip_towards(win, owner);
  assert(rel >= 1 && "flip_towards returned self although edge is absent");
  const Dim bridge = lv.win_lo + rel;

  // Realize the bridge flip recursively; it only perturbs dimensions
  // below this level's window, so the label at the endpoint is exactly
  // the owner label and the i-edge exists there.
  std::vector<Vertex> path = route_flip(spec, u, bridge);
  const Vertex v = path.back();
  assert(spec.label_at(v, t) == owner);
  assert(spec.has_edge_dim(v, i));
  path.push_back(flip(v, i));
  return path;
}

int route_length_bound(const SparseHypercubeSpec& spec, Dim i) noexcept {
  const int t = spec.level_of_dim(i);
  // Core dims: direct edge.  Level t dims: one hop more than a window
  // dim of level t, which lives in the governed range of level t-1.
  return t < 0 ? 1 : t + 2;
}

namespace {

/// Exact upper bound on the flat path pool: the round sweeping dimension
/// i has 2^(n-i) calls of at most route_length_bound(i) + 1 vertices.
/// Overflow-audited (the callers' n <= 28/32 guards keep it far from the
/// 64-bit edge, but the arithmetic itself must not be the limiter).
std::uint64_t pool_upper_bound(const SparseHypercubeSpec& spec) {
  std::uint64_t bound = 0;
  for (Dim i = spec.n(); i >= 1; --i) {
    std::uint64_t term = 0;
    const bool fits =
        checked_mul_u64(static_cast<std::uint64_t>(route_length_bound(spec, i) + 1),
                        cube_order(spec.n() - i), term) &&
        checked_acc_u64(bound, term);
    assert(fits);
    (void)fits;
  }
  return bound;
}

}  // namespace

FlatSchedule make_broadcast_schedule(const SparseHypercubeSpec& spec, Vertex source) {
  assert(spec.n() <= 28 && "schedule materializes 2^n flat calls");
  assert(source < spec.num_vertices());
  const int n = spec.n();
  const std::uint64_t order = spec.num_vertices();

  // The whole-arena builder is just the streaming producer pointed at a
  // FlatSchedule sink with the full reservation made up front.
  FlatSchedule schedule;
  schedule.source = source;
  schedule.reserve(static_cast<std::size_t>(n), order - 1, pool_upper_bound(spec));
  emit_broadcast_rounds(spec, source, schedule);
  return schedule;
}

StreamingCertification certify_broadcast_streaming(const SparseHypercubeSpec& spec,
                                                   Vertex source,
                                                   const ValidationOptions& opt,
                                                   int threads) {
  // Every certify_* entry point rejects a non-positive worker count the
  // same way (a 0 here used to mean "hardware concurrency" in this
  // engine but "serial" in the symbolic ones — an inconsistency callers
  // tripped over).  The validators' internal threads<=1 paths still run
  // inline; only the public entry is strict.
  if (threads <= 0) {
    throw std::invalid_argument(
        "certify_broadcast_streaming: threads must be >= 1 (got " +
        std::to_string(threads) + ")");
  }
  const int n = spec.n();

  StreamingCertification cert;
  // Hard guard, not an assert: n reaches here from user input (e.g.
  // shc_sweep --big), and beyond 32 the producer's frontier reservation
  // alone is 2^n vertices — fail with an explicit report instead of
  // silently attempting a terabyte allocation in Release.
  if (n > 32) {
    cert.report.ok = false;
    cert.report.error =
        "n = " + std::to_string(n) +
        " exceeds the streaming pipeline limit 32 (the producer holds the "
        "2^n-vertex frontier in memory)";
    return cert;
  }
  if (source >= spec.num_vertices()) {
    // Same report the serial validator gives; guarded here so Debug
    // builds don't trip the producer's assert before the sink can say it.
    cert.report.ok = false;
    cert.report.error = "source out of range";
    return cert;
  }
  // Arena bound of the round sweeping dimension i: 2^(n-i) calls, each
  // at most route_length_bound + 1 path vertices, plus the call-offset
  // and round arrays — exactly what reserve_round() makes the scratch
  // arena hold.  The whole-schedule figure is what make_broadcast_schedule
  // would reserve.
  std::uint64_t whole_pool = 0;
  for (Dim i = n; i >= 1; --i) {
    const std::size_t calls = static_cast<std::size_t>(1)
                              << static_cast<unsigned>(n - i);
    std::uint64_t pool = 0;
    const bool fits = checked_mul_u64(
                          calls, static_cast<std::uint64_t>(
                                     route_length_bound(spec, i) + 1),
                          pool) &&
                      checked_acc_u64(whole_pool, pool);
    assert(fits);
    (void)fits;
    cert.largest_round_arena_bytes =
        std::max(cert.largest_round_arena_bytes,
                 FlatSchedule::arena_bytes(1, calls, pool));
  }
  cert.whole_schedule_arena_bytes = FlatSchedule::arena_bytes(
      static_cast<std::size_t>(n),
      static_cast<std::size_t>(spec.num_vertices()) - 1, whole_pool);

  const SpecView view(spec);
  StreamingBroadcastValidator<SpecView> sink(view, source, opt, threads);
  emit_broadcast_rounds(spec, source, sink);
  cert.report = sink.finish();
  cert.peak_round_arena_bytes = sink.peak_round_arena_bytes();
  cert.peak_edge_table_bytes = sink.peak_edge_table_bytes();
  cert.calls = sink.calls_seen();
  cert.path_vertices = sink.vertices_seen();
  return cert;
}

FlatSchedule make_broadcast2_literal(const SparseHypercubeSpec& spec, Vertex source) {
  assert(spec.k() == 2);
  assert(spec.n() <= 28);
  const int n = spec.n();
  const int m = spec.core_dim();
  const std::uint64_t order = spec.num_vertices();
  const ConstructionLevel& lv = spec.levels().front();

  FlatSchedule schedule;
  schedule.source = source;
  schedule.reserve(static_cast<std::size_t>(n), order - 1, 3 * (order - 1));

  std::vector<Vertex> informed;
  informed.reserve(order);
  informed.push_back(source);

  // Phase 1: dissemination between subcubes using the prefix of length
  // n - m.  For each informed w: call flip(w, i) directly when the edge
  // exists, else call flip_i(flip_j(w)) through the Rule-1 neighbor
  // flip_j(w) whose label owns dimension i.
  for (Dim i = n; i >= m + 1; --i) {
    schedule.begin_round();
    const std::size_t frontier = informed.size();
    const Label owner = lv.dim_owner[static_cast<std::size_t>(i - lv.dim_lo - 1)];
    for (std::size_t idx = 0; idx < frontier; ++idx) {
      const Vertex w = informed[idx];
      schedule.push_vertex(w);
      if (spec.has_edge_dim(w, i)) {
        schedule.push_vertex(flip(w, i));
      } else {
        const Dim j = lv.labeling.flip_towards(window_value(w, 0, m), owner);
        assert(j >= 1 && j <= m);
        const Vertex via = flip(w, j);
        schedule.push_vertex(via);
        schedule.push_vertex(flip(via, i));
      }
      informed.push_back(schedule.last_vertex());
      schedule.end_call();
    }
  }

  // Phase 2: dissemination inside each m-subcube by direct edges.
  for (Dim i = m; i >= 1; --i) {
    schedule.begin_round();
    const std::size_t frontier = informed.size();
    for (std::size_t idx = 0; idx < frontier; ++idx) {
      const Vertex w = informed[idx];
      schedule.push_vertex(w);
      schedule.push_vertex(flip(w, i));
      informed.push_back(schedule.last_vertex());
      schedule.end_call();
    }
  }
  return schedule;
}

}  // namespace shc
