#include "shc/mlbg/broadcast.hpp"

#include <cassert>

namespace shc {

std::vector<Vertex> route_flip(const SparseHypercubeSpec& spec, Vertex u, Dim i) {
  assert(i >= 1 && i <= spec.n());
  if (spec.has_edge_dim(u, i)) return {u, flip(u, i)};

  const int t = spec.level_of_dim(i);
  assert(t >= 0 && "core dimensions always have edges");
  const ConstructionLevel& lv = spec.levels()[static_cast<std::size_t>(t)];
  const Label owner = lv.dim_owner[static_cast<std::size_t>(i - lv.dim_lo - 1)];

  // Condition A: within u's window cube some neighbor (not u itself —
  // otherwise the edge would exist) carries the owner label.
  const Vertex win = window_value(u, lv.win_lo, lv.win_hi);
  const Dim rel = lv.labeling.flip_towards(win, owner);
  assert(rel >= 1 && "flip_towards returned self although edge is absent");
  const Dim bridge = lv.win_lo + rel;

  // Realize the bridge flip recursively; it only perturbs dimensions
  // below this level's window, so the label at the endpoint is exactly
  // the owner label and the i-edge exists there.
  std::vector<Vertex> path = route_flip(spec, u, bridge);
  const Vertex v = path.back();
  assert(spec.label_at(v, t) == owner);
  assert(spec.has_edge_dim(v, i));
  path.push_back(flip(v, i));
  return path;
}

int route_length_bound(const SparseHypercubeSpec& spec, Dim i) noexcept {
  const int t = spec.level_of_dim(i);
  // Core dims: direct edge.  Level t dims: one hop more than a window
  // dim of level t, which lives in the governed range of level t-1.
  return t < 0 ? 1 : t + 2;
}

BroadcastSchedule make_broadcast_schedule(const SparseHypercubeSpec& spec,
                                          Vertex source) {
  assert(spec.n() <= 24 && "schedule materializes 2^n calls");
  assert(source < spec.num_vertices());
  BroadcastSchedule schedule;
  schedule.source = source;
  schedule.rounds.reserve(static_cast<std::size_t>(spec.n()));

  std::vector<Vertex> informed{source};
  informed.reserve(spec.num_vertices());
  for (Dim i = spec.n(); i >= 1; --i) {
    Round round;
    round.calls.reserve(informed.size());
    const std::size_t frontier = informed.size();
    for (std::size_t w = 0; w < frontier; ++w) {
      Call call{route_flip(spec, informed[w], i)};
      informed.push_back(call.receiver());
      round.calls.push_back(std::move(call));
    }
    schedule.rounds.push_back(std::move(round));
  }
  return schedule;
}

BroadcastSchedule make_broadcast2_literal(const SparseHypercubeSpec& spec,
                                          Vertex source) {
  assert(spec.k() == 2);
  assert(spec.n() <= 24);
  const int n = spec.n();
  const int m = spec.core_dim();
  const ConstructionLevel& lv = spec.levels().front();

  BroadcastSchedule schedule;
  schedule.source = source;
  std::vector<Vertex> informed{source};

  // Phase 1: dissemination between subcubes using the prefix of length
  // n - m.  For each informed w: call flip(w, i) directly when the edge
  // exists, else call flip_i(flip_j(w)) through the Rule-1 neighbor
  // flip_j(w) whose label owns dimension i.
  for (Dim i = n; i >= m + 1; --i) {
    Round round;
    const std::size_t frontier = informed.size();
    const Label owner = lv.dim_owner[static_cast<std::size_t>(i - lv.dim_lo - 1)];
    for (std::size_t idx = 0; idx < frontier; ++idx) {
      const Vertex w = informed[idx];
      Call call;
      if (spec.has_edge_dim(w, i)) {
        call.path = {w, flip(w, i)};
      } else {
        const Dim j = lv.labeling.flip_towards(window_value(w, 0, m), owner);
        assert(j >= 1 && j <= m);
        const Vertex via = flip(w, j);
        call.path = {w, via, flip(via, i)};
      }
      informed.push_back(call.receiver());
      round.calls.push_back(std::move(call));
    }
    schedule.rounds.push_back(std::move(round));
  }

  // Phase 2: dissemination inside each m-subcube by direct edges.
  for (Dim i = m; i >= 1; --i) {
    Round round;
    const std::size_t frontier = informed.size();
    for (std::size_t idx = 0; idx < frontier; ++idx) {
      const Vertex w = informed[idx];
      Call call{{w, flip(w, i)}};
      informed.push_back(call.receiver());
      round.calls.push_back(std::move(call));
    }
    schedule.rounds.push_back(std::move(round));
  }
  return schedule;
}

}  // namespace shc
